// Command ksetd serves the Theorem 1 verification engine over HTTP:
// impossibility-check and consensus-failure-search jobs run on a bounded
// worker pool, progress is observable by polling, and completed verdicts are
// cached content-addressed by instance digest — resubmitting an instance
// answers from the cache instead of re-searching.
//
// With -journal the server is crash-safe: every job transition is appended
// durably, and a restart replays the journal, re-enqueueing every job that
// had not finished. Combined with -checkpoint and checkpoint-opted jobs, a
// kill -9 mid-search costs at most one BFS level of re-exploration and the
// recovered verdict is bit-identical to an uninterrupted run.
//
// Usage:
//
//	ksetd -addr :8418                                  # in-memory cache
//	ksetd -addr :8418 -cache disk -cache-dir ./verdicts
//	ksetd -pool 4 -checkpoint ./ckpt                   # resumable pauses
//	ksetd -journal ./jobs.jsonl -checkpoint ./ckpt \
//	      -cache disk -cache-dir ./verdicts            # crash-safe
//	ksetd -job-timeout 10m -retries 2                  # bounded jobs
//	ksetd -shards 4                                    # multi-process search jobs
//
// With -shards N > 1 the server runs eligible search-goal jobs (goal
// "search", no checkpoint opt-in) as N worker processes — re-execs of this
// binary coordinated over localhost HTTP — with verdicts bit-identical to
// single-process execution; other jobs run in-process as usual. The
// -shard-worker/-shard-index flags are the workers' internal entry point.
//
// See the README's "Running the service" and "Operations & crash recovery"
// sections for the endpoint reference and the recovery semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"kset/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8418", "listen address")
		pool       = flag.Int("pool", 2, "worker pool size (concurrently running jobs)")
		queue      = flag.Int("queue", 64, "submission queue depth (jobs waiting for a worker; full queue answers 503)")
		cacheKind  = flag.String("cache", "mem", "verdict cache backend: mem (in-process) or disk (survives restarts)")
		cacheDir   = flag.String("cache-dir", "", "directory for the disk cache (required with -cache disk)")
		ckptDir    = flag.String("checkpoint", "", "directory for checkpoint-opted jobs to pause resumably (empty disables checkpointing)")
		journal    = flag.String("journal", "", "durable job journal file; restarts replay it and resume unfinished jobs (empty disables crash safety)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock deadline; an expired job settles as failed with its partial progress (0 = unlimited)")
		retries    = flag.Int("retries", 0, "re-run attempts for jobs failing with transient errors, with exponential backoff")
		drain      = flag.Duration("drain", 5*time.Second, "graceful shutdown budget for in-flight jobs to reach their pause path")
		shards     = flag.Int("shards", 1, "worker processes per eligible search job (goal \"search\", no checkpoint); 1 runs everything in-process")
		shardURL   = flag.String("shard-worker", "", "internal: run as a shard worker against this coordinator URL")
		shardIdx   = flag.Int("shard-index", -1, "internal: shard index for -shard-worker")
	)
	flag.Parse()

	if *shardURL != "" {
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		if err := service.ShardWorkerMain(ctx, *shardURL, *shardIdx); err != nil {
			fmt.Fprintln(os.Stderr, "ksetd:", err)
			return 1
		}
		return 0
	}

	var cache service.Cache
	switch *cacheKind {
	case "mem":
		cache = service.NewMemoryCache()
	case "disk":
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "ksetd: -cache disk requires -cache-dir")
			return 2
		}
		dc, err := service.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksetd:", err)
			return 2
		}
		cache = dc
	default:
		fmt.Fprintf(os.Stderr, "ksetd: unknown -cache %q (want \"mem\" or \"disk\")\n", *cacheKind)
		return 2
	}

	var jnl *service.Journal
	if *journal != "" {
		var err error
		jnl, err = service.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksetd:", err)
			return 2
		}
		if n := len(jnl.Replayed()); n > 0 {
			log.Printf("ksetd: journal %s: replayed %d records", *journal, n)
		}
	}

	var runner service.Runner = service.KsetRunner{CheckpointDir: *ckptDir}
	if *shards > 1 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksetd:", err)
			return 1
		}
		runner = service.ShardedRunner{
			KsetRunner: service.KsetRunner{CheckpointDir: *ckptDir},
			Shards:     *shards,
			WorkerArgs: func(coordURL string, shard int) []string {
				return []string{exe, "-shard-worker", coordURL, "-shard-index", strconv.Itoa(shard)}
			},
		}
	}

	srv := service.New(service.Config{
		Runner:     runner,
		Cache:      cache,
		Workers:    *pool,
		QueueDepth: *queue,
		Journal:    jnl,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
	})

	// Conservative HTTP timeouts: the API is small JSON request/response —
	// no streaming — so a slow client is a stuck client, and an unbounded
	// one could pin goroutines forever.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Listen explicitly (rather than ListenAndServe) so ":0" test setups
	// can learn the real port from the log line before submitting.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ksetd:", err)
		srv.Close()
		return 1
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() {
		log.Printf("ksetd: listening on %s (pool %d, cache %s)", ln.Addr(), *pool, *cacheKind)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ksetd:", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown, both layers on the same bounded budget: stop
	// accepting HTTP, then cancel in-flight searches onto their cooperative
	// pause path and wait for the workers to drain. Jobs that don't settle
	// within the budget stay non-terminal in the journal — the next start
	// recovers them, so overrunning the drain loses no work.
	log.Print("ksetd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ksetd: shutdown:", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ksetd: drain:", err)
		return 1
	}
	return 0
}
