// Command ksetd serves the Theorem 1 verification engine over HTTP:
// impossibility-check and consensus-failure-search jobs run on a bounded
// worker pool, progress is observable by polling, and completed verdicts are
// cached content-addressed by instance digest — resubmitting an instance
// answers from the cache instead of re-searching.
//
// Usage:
//
//	ksetd -addr :8418                                  # in-memory cache
//	ksetd -addr :8418 -cache disk -cache-dir ./verdicts
//	ksetd -pool 4 -checkpoint ./ckpt                   # resumable pauses
//
// See the README's "Running the service" section for the endpoint reference
// and the job lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kset/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8418", "listen address")
		pool      = flag.Int("pool", 2, "worker pool size (concurrently running jobs)")
		queue     = flag.Int("queue", 64, "submission queue depth (jobs waiting for a worker; full queue answers 503)")
		cacheKind = flag.String("cache", "mem", "verdict cache backend: mem (in-process) or disk (survives restarts)")
		cacheDir  = flag.String("cache-dir", "", "directory for the disk cache (required with -cache disk)")
		ckptDir   = flag.String("checkpoint", "", "directory for checkpoint-opted jobs to pause resumably (empty disables checkpointing)")
	)
	flag.Parse()

	var cache service.Cache
	switch *cacheKind {
	case "mem":
		cache = service.NewMemoryCache()
	case "disk":
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "ksetd: -cache disk requires -cache-dir")
			return 2
		}
		dc, err := service.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksetd:", err)
			return 2
		}
		cache = dc
	default:
		fmt.Fprintf(os.Stderr, "ksetd: unknown -cache %q (want \"mem\" or \"disk\")\n", *cacheKind)
		return 2
	}

	srv := service.New(service.Config{
		Runner:     service.KsetRunner{CheckpointDir: *ckptDir},
		Cache:      cache,
		Workers:    *pool,
		QueueDepth: *queue,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("ksetd: listening on %s (pool %d, cache %s)", *addr, *pool, *cacheKind)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Immediate listen failure (bad address, port in use).
		fmt.Fprintln(os.Stderr, "ksetd:", err)
		return 1
	case <-ctx.Done():
	}

	log.Print("ksetd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ksetd: shutdown:", err)
		return 1
	}
	return 0
}
