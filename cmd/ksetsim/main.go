// Command ksetsim runs a single simulation of one of the library's
// agreement protocols under a fair asynchronous schedule with optional
// initial crashes, partitions, and failure detectors, and prints the
// decision census.
//
// Usage:
//
//	ksetsim -alg flpkset -n 6 -f 3 -dead 2,5
//	ksetsim -alg minwait -n 7 -f 2 -partition "1,2,3|4,5,6,7"
//	ksetsim -alg sigmaomega -n 4 -detector sigma-omega
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kset"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algName   = flag.String("alg", "flpkset", "algorithm: flpkset, minwait, sigmaomega, quorummin, decideown, firstheard")
		n         = flag.Int("n", 5, "number of processes")
		f         = flag.Int("f", 1, "fault parameter handed to the algorithm")
		dead      = flag.String("dead", "", "comma-separated ids of initially dead processes")
		partition = flag.String("partition", "", "groups like \"1,2|3,4,5\": cross-group messages delayed until all decided")
		detector  = flag.String("detector", "", "failure detector: empty, sigma-omega, partition")
		k         = flag.Int("k", 0, "detector index k (default: 1 or the group count)")
		maxSteps  = flag.Int("maxsteps", 0, "step horizon (0 = default)")
		verbose   = flag.Bool("v", false, "print per-process decisions")
		trace     = flag.Bool("trace", false, "print the full event trace")
		asJSON    = flag.Bool("json", false, "print the run summary as JSON and exit")
	)
	flag.Parse()

	alg, err := pickAlgorithm(*algName, *f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	opts := kset.SimOptions{MaxSteps: *maxSteps}
	if *dead != "" {
		ids, err := parseIDs(*dead)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -dead: %v\n", err)
			return 2
		}
		opts.InitialDead = ids
	}
	if *partition != "" {
		groups, err := parseGroups(*partition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -partition: %v\n", err)
			return 2
		}
		opts.Partition = groups
	}
	if *detector != "" {
		opts.Detector = kset.DetectorSpec{Kind: *detector, K: *k}
	}

	run, err := kset.Simulate(alg, kset.DistinctInputs(*n), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation: %v\n", err)
		if run == nil {
			return 1
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(run.Summarize()); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
		if len(run.Blocked) > 0 {
			return 1
		}
		return 0
	}

	fmt.Printf("algorithm: %s, n=%d, steps=%d\n", run.Algorithm, run.N(), len(run.Events))
	if *trace {
		if err := run.WriteTrace(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
	}
	if *verbose {
		for i, v := range run.Decisions() {
			status := "undecided"
			if v != kset.NoValue {
				status = fmt.Sprintf("decided %d", v)
			}
			crashed := ""
			if run.Final.Crashed(kset.ProcessID(i + 1)) {
				crashed = " (crashed)"
			}
			fmt.Printf("  p%d: %s%s\n", i+1, status, crashed)
		}
	}
	fmt.Printf("distinct decisions: %v\n", run.DistinctDecisions())
	if len(run.Blocked) > 0 {
		fmt.Printf("BLOCKED correct processes: %v\n", run.Blocked)
		return 1
	}
	return 0
}

func pickAlgorithm(name string, f int) (kset.Algorithm, error) {
	switch name {
	case "flpkset":
		return kset.NewFLPKSet(f), nil
	case "minwait":
		return kset.NewMinWait(f), nil
	case "sigmaomega":
		return kset.NewSigmaOmega(), nil
	case "quorummin":
		return kset.NewQuorumMin(), nil
	case "decideown":
		return kset.NewDecideOwn(), nil
	case "firstheard":
		return kset.NewFirstHeard(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func parseIDs(s string) ([]kset.ProcessID, error) {
	var out []kset.ProcessID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("id %q: %w", part, err)
		}
		out = append(out, kset.ProcessID(id))
	}
	return out, nil
}

func parseGroups(s string) ([][]kset.ProcessID, error) {
	var out [][]kset.ProcessID
	for _, g := range strings.Split(s, "|") {
		ids, err := parseIDs(g)
		if err != nil {
			return nil, err
		}
		if len(ids) > 0 {
			out = append(out, ids)
		}
	}
	return out, nil
}
