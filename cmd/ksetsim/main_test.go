package main

import (
	"reflect"
	"testing"

	"kset"
)

func TestParseIDs(t *testing.T) {
	got, err := parseIDs("1, 3,5")
	if err != nil {
		t.Fatal(err)
	}
	want := []kset.ProcessID{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseIDs = %v, want %v", got, want)
	}
	if _, err := parseIDs("1,x"); err == nil {
		t.Fatal("bad id accepted")
	}
	got, err = parseIDs("")
	if err != nil || got != nil {
		t.Fatalf("empty parse = %v, %v", got, err)
	}
}

func TestParseGroups(t *testing.T) {
	got, err := parseGroups("1,2|3|4,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("parseGroups = %v", got)
	}
	if _, err := parseGroups("1|a"); err == nil {
		t.Fatal("bad group accepted")
	}
}

func TestPickAlgorithm(t *testing.T) {
	for _, name := range []string{"flpkset", "minwait", "sigmaomega", "quorummin", "decideown", "firstheard"} {
		alg, err := pickAlgorithm(name, 1)
		if err != nil {
			t.Errorf("pickAlgorithm(%s): %v", name, err)
		}
		if alg == nil || alg.Name() == "" {
			t.Errorf("pickAlgorithm(%s) returned bad algorithm", name)
		}
	}
	if _, err := pickAlgorithm("bogus", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
