package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: kset
BenchmarkEngineTheorem2MinWait-4    	    5000	    200000 ns/op	  100000 B/op	    1367 allocs/op
BenchmarkEngineTheorem2MinWait-4    	    5000	    210000 ns/op
BenchmarkEngineTheorem2MinWait-4    	    5000	    190000 ns/op
BenchmarkE5FailureDetectorBorder-4  	     250	   4600000 ns/op
BenchmarkE5FailureDetectorBorder-4  	     250	   4700000 ns/op
BenchmarkUngated-4                  	    1000	   1000000 ns/op
PASS
`

func writeFiles(t *testing.T, newOut string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(basePath, []byte(baseOut), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, newPath
}

func gateArgs(basePath, newPath string) []string {
	return []string{"-baseline", basePath, "-new", newPath, "-max-regress", "20"}
}

func TestGatePassesWithinBudget(t *testing.T) {
	// +15% on the engine benchmark, improvement on E5: within the 20% gate.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    230000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4000000 ns/op
BenchmarkUngated-8                  	     100	  99000000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "all gated benchmarks within budget") {
		t.Fatalf("missing pass message:\n%s", out.String())
	}
	// The ungated benchmark regressed 99x but must only be informational.
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("ungated benchmark not reported as info:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// +50% median on the engine benchmark: must fail the 20% gate.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    300000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4650000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    200000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "missing") {
		t.Fatalf("missing-benchmark failure not reported:\n%s", errOut.String())
	}
}

func TestGateRejectsEmptyInput(t *testing.T) {
	basePath, newPath := writeFiles(t, "no benchmarks here\n")
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestParseLine(t *testing.T) {
	name, ns, ok := parseLine("BenchmarkParallelSearch/workers=2-16         \t       3\t 110033691 ns/op")
	if !ok || name != "BenchmarkParallelSearch/workers=2" || ns != 110033691 {
		t.Fatalf("parsed %q %v %t", name, ns, ok)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Fatal("PASS parsed as benchmark")
	}
	if _, _, ok := parseLine("ok  \tkset\t1.2s"); ok {
		t.Fatal("ok line parsed as benchmark")
	}
	// A sub-benchmark label ending in a number must keep the label intact
	// while the GOMAXPROCS suffix is stripped.
	name, _, ok = parseLine("BenchmarkFoo/shard=12-4 100 50 ns/op")
	if !ok || name != "BenchmarkFoo/shard=12" {
		t.Fatalf("parsed %q", name)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}
