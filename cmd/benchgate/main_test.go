package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: kset
BenchmarkEngineTheorem2MinWait-4    	    5000	    200000 ns/op	  100000 B/op	    1367 allocs/op
BenchmarkEngineTheorem2MinWait-4    	    5000	    210000 ns/op
BenchmarkEngineTheorem2MinWait-4    	    5000	    190000 ns/op
BenchmarkE5FailureDetectorBorder-4  	     250	   4600000 ns/op
BenchmarkE5FailureDetectorBorder-4  	     250	   4700000 ns/op
BenchmarkUngated-4                  	    1000	   1000000 ns/op
PASS
`

func writeFiles(t *testing.T, newOut string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(basePath, []byte(baseOut), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, newPath
}

// gateArgs pins the gate to the two fixture benchmarks: the default gate
// also names benchmarks the fixtures don't contain, which would fail the
// gated-missing-from-fresh check regardless of the behaviour under test.
func gateArgs(basePath, newPath string) []string {
	return []string{"-baseline", basePath, "-new", newPath, "-max-regress", "20",
		"-gate", "BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder"}
}

func TestGatePassesWithinBudget(t *testing.T) {
	// +15% on the engine benchmark, improvement on E5: within the 20% gate.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    230000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4000000 ns/op
BenchmarkUngated-8                  	     100	  99000000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "all gated benchmarks within budget") {
		t.Fatalf("missing pass message:\n%s", out.String())
	}
	// The ungated benchmark regressed 99x but must only be informational.
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("ungated benchmark not reported as info:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// +50% median on the engine benchmark: must fail the 20% gate.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    300000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4650000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    200000 ns/op
`)
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "missing") {
		t.Fatalf("missing-benchmark failure not reported:\n%s", errOut.String())
	}
}

func TestGateRejectsEmptyInput(t *testing.T) {
	basePath, newPath := writeFiles(t, "no benchmarks here\n")
	var out, errOut strings.Builder
	if code := run(gateArgs(basePath, newPath), &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkParallelSearch/workers=2-16         \t       3\t 110033691 ns/op")
	if !ok || name != "BenchmarkParallelSearch/workers=2" || s.ns != 110033691 {
		t.Fatalf("parsed %q %v %t", name, s, ok)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Fatal("PASS parsed as benchmark")
	}
	if _, _, ok := parseLine("ok  \tkset\t1.2s"); ok {
		t.Fatal("ok line parsed as benchmark")
	}
	// A sub-benchmark label ending in a number must keep the label intact
	// while the GOMAXPROCS suffix is stripped.
	name, _, ok = parseLine("BenchmarkFoo/shard=12-4 100 50 ns/op")
	if !ok || name != "BenchmarkFoo/shard=12" {
		t.Fatalf("parsed %q", name)
	}
	// The custom nodes/op metric of the search benchmarks is captured.
	name, s, ok = parseLine("BenchmarkSymmetrySearch/on-4 \t 5\t 25856058 ns/op\t      1266 nodes/op")
	if !ok || name != "BenchmarkSymmetrySearch/on" || s.ns != 25856058 || !s.hasNodes || s.nodes != 1266 {
		t.Fatalf("parsed %q %v %t", name, s, ok)
	}
}

func TestNodeDeltaReported(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	base := "BenchmarkSymmetrySearch/on-4 \t 5\t 25000000 ns/op\t 1266 nodes/op\n"
	fresh := "BenchmarkSymmetrySearch/on-8 \t 5\t 24000000 ns/op\t 1270 nodes/op\n"
	if err := os.WriteFile(basePath, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(fresh), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", basePath, "-new", newPath, "-gate", "BenchmarkSymmetrySearch/on"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[nodes 1266 -> 1270, +0.3%]") {
		t.Fatalf("node delta not reported:\n%s", out.String())
	}
}

func TestNewGatedBenchmarkOnlyWarns(t *testing.T) {
	// A gated benchmark absent from the baseline (newly added) must warn,
	// not fail, so the benchmark and its baseline land in one change.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    205000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4650000 ns/op
BenchmarkBrandNew-8                 	     100	   1000000 ns/op
`)
	var out, errOut strings.Builder
	args := append(gateArgs(basePath, newPath), "-gate",
		"BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder,BenchmarkBrandNew")
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "warning: gated benchmark BenchmarkBrandNew missing from baseline") {
		t.Fatalf("missing warning:\n%s", errOut.String())
	}
}

func TestGateFailsWhenGatedNameAbsentEverywhere(t *testing.T) {
	// A gated name present in neither file (typo'd -gate, or the benchmark
	// was removed) must fail, not silently disable the gate.
	basePath, newPath := writeFiles(t, `
BenchmarkEngineTheorem2MinWait-8    	    5000	    205000 ns/op
BenchmarkE5FailureDetectorBorder-8  	     250	   4650000 ns/op
`)
	var out, errOut strings.Builder
	args := append(gateArgs(basePath, newPath), "-gate", "BenchmarkTypoDoesNotExist")
	if code := run(args, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkTypoDoesNotExist missing from") {
		t.Fatalf("missing failure report:\n%s", errOut.String())
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

// memBase is a fully -benchmem baseline for the memory-gate tests.
const memBase = `goos: linux
pkg: kset/internal/explore
BenchmarkFrontierOnlySearch/inmem-4      	      50	  20000000 ns/op	  5000000 B/op	   40000 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/inmem-4      	      50	  21000000 ns/op	  5100000 B/op	   40100 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-4   	      50	  22000000 ns/op	  1000000 B/op	   30000 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-4   	      50	  22500000 ns/op	  1010000 B/op	   30050 allocs/op	 42683 nodes/op
PASS
`

func memGateArgs(basePath, newPath string) []string {
	return []string{"-baseline", basePath, "-new", newPath, "-max-regress", "20", "-max-regress-mem", "20",
		"-gate", "BenchmarkFrontierOnlySearch/inmem,BenchmarkFrontierOnlySearch/frontier"}
}

func writeMemFiles(t *testing.T, newOut string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(basePath, []byte(memBase), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, newPath
}

func TestMemoryGatePassesWithinBudget(t *testing.T) {
	// +10% B/op and +5% allocs/op: inside the 20% memory gate.
	basePath, newPath := writeMemFiles(t, `
BenchmarkFrontierOnlySearch/inmem-8      	      50	  20500000 ns/op	  5500000 B/op	   42000 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-8   	      50	  22000000 ns/op	  1100000 B/op	   31000 allocs/op	 42683 nodes/op
`)
	var out, errOut strings.Builder
	if code := run(memGateArgs(basePath, newPath), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "B/op") || !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("memory columns not reported:\n%s", out.String())
	}
}

func TestMemoryGateFailsOnBytesRegression(t *testing.T) {
	// ns/op flat, B/op +50% on a gated benchmark: the memory gate must fail.
	basePath, newPath := writeMemFiles(t, `
BenchmarkFrontierOnlySearch/inmem-8      	      50	  20500000 ns/op	  7500000 B/op	   40000 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-8   	      50	  22000000 ns/op	  1000000 B/op	   30000 allocs/op	 42683 nodes/op
`)
	var out, errOut strings.Builder
	if code := run(memGateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "B/op 5050000 -> 7500000") {
		t.Fatalf("B/op regression not reported:\n%s", out.String())
	}
}

func TestMemoryGateFailsOnAllocsRegression(t *testing.T) {
	basePath, newPath := writeMemFiles(t, `
BenchmarkFrontierOnlySearch/inmem-8      	      50	  20500000 ns/op	  5000000 B/op	   80000 allocs/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-8   	      50	  22000000 ns/op	  1000000 B/op	   30000 allocs/op	 42683 nodes/op
`)
	var out, errOut strings.Builder
	if code := run(memGateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
}

func TestMemoryGateFailsWhenFreshDropsBenchmem(t *testing.T) {
	// The fresh output lost the -benchmem columns on gated benchmarks: that
	// must fail rather than silently disable the memory gate.
	basePath, newPath := writeMemFiles(t, `
BenchmarkFrontierOnlySearch/inmem-8      	      50	  20500000 ns/op	 42683 nodes/op
BenchmarkFrontierOnlySearch/frontier-8   	      50	  22000000 ns/op	 42683 nodes/op
`)
	var out, errOut strings.Builder
	if code := run(memGateArgs(basePath, newPath), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "run with -benchmem") {
		t.Fatalf("missing -benchmem hint:\n%s", errOut.String())
	}
}

func TestMemoryGateSkipsUngatedAndLegacyBaselines(t *testing.T) {
	// A legacy baseline without memory columns gates ns/op only — landing
	// the -benchmem transition must not fail on old baselines.
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(basePath, []byte(`
BenchmarkFrontierOnlySearch/inmem-4      	      50	  20000000 ns/op
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`
BenchmarkFrontierOnlySearch/inmem-8      	      50	  20500000 ns/op	  9900000 B/op	   90000 allocs/op
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	args := []string{"-baseline", basePath, "-new", newPath, "-max-regress", "20",
		"-gate", "BenchmarkFrontierOnlySearch/inmem"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
}

func TestMemoryGateFailsFromZeroBaseline(t *testing.T) {
	// An allocation-free baseline regressing to any nonzero count must fail;
	// a naive ratio would divide by zero and silently pass.
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(basePath, []byte(`
BenchmarkFrontierOnlySearch/inmem-4      	   50000	      2000 ns/op	       0 B/op	       0 allocs/op
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`
BenchmarkFrontierOnlySearch/inmem-8      	   50000	      2000 ns/op	     128 B/op	       2 allocs/op
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	args := []string{"-baseline", basePath, "-new", newPath, "-max-regress", "20",
		"-gate", "BenchmarkFrontierOnlySearch/inmem"}
	if code := run(args, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out.String())
	}
}
