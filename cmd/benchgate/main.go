// Command benchgate enforces the CI benchmark-regression gate: it compares
// a freshly generated `go test -bench` output file against the committed
// baseline (bench_baseline.txt) and fails when a gated benchmark's median
// ns/op regressed by more than the allowed percentage.
//
// Usage:
//
//	benchgate -baseline bench_baseline.txt -new /tmp/bench_new.txt \
//	    -gate 'BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder' \
//	    -max-regress 20
//
// Both files are plain `go test -bench` output, ideally with -count > 1:
// benchgate takes the median across repetitions, which absorbs scheduler
// noise far better than single runs. Benchmark names are compared after
// stripping the trailing -GOMAXPROCS suffix, so baselines recorded on
// machines with different core counts still line up. Non-gated benchmarks
// present in both files are reported for context but never fail the gate;
// refreshing the baseline is documented in README.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "bench_baseline.txt", "committed baseline benchmark output")
	newPath := fs.String("new", "", "freshly generated benchmark output (required)")
	gate := fs.String("gate", "BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder",
		"comma-separated benchmark names that fail the gate on regression")
	maxRegress := fs.Float64("max-regress", 20, "maximum allowed regression of median ns/op, in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" {
		fmt.Fprintln(stderr, "benchgate: -new is required")
		return 2
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	fresh, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	gated := map[string]bool{}
	for _, name := range strings.Split(*gate, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gated[name] = true
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := fresh[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		bm, nm := median(base[name]), median(fresh[name])
		delta := 100 * (nm - bm) / bm
		verdict := "ok"
		if gated[name] && delta > *maxRegress {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", *maxRegress)
			failed++
		} else if !gated[name] {
			verdict = "info"
		}
		fmt.Fprintf(stdout, "%-60s %14.0f %14.0f %+8.1f%%  %s\n", name, bm, nm, delta, verdict)
	}

	for name := range gated {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(stderr, "benchgate: gated benchmark %s missing from baseline %s\n", name, *baselinePath)
			failed++
		} else if _, ok := fresh[name]; !ok {
			fmt.Fprintf(stderr, "benchgate: gated benchmark %s missing from %s\n", name, *newPath)
			failed++
		}
	}

	if failed > 0 {
		fmt.Fprintf(stderr, "benchgate: %d gate failure(s); see README.md for refreshing the baseline after intended changes\n", failed)
		return 1
	}
	fmt.Fprintln(stdout, "benchgate: all gated benchmarks within budget")
	return 0
}

// parseFile reads `go test -bench` output, returning ns/op samples per
// benchmark name (suffix-stripped), in file order.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], ns)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseLine extracts (name, ns/op) from one benchmark result line, reporting
// ok=false for any other line. The trailing -GOMAXPROCS suffix is stripped
// from the name so runs from machines with different core counts compare.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, false
		}
		return stripProcsSuffix(fields[0]), ns, true
	}
	return "", 0, false
}

// stripProcsSuffix removes a trailing -<digits> (the GOMAXPROCS marker go
// test appends to benchmark names).
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if suffix := name[i+1:]; suffix != "" {
		if _, err := strconv.Atoi(suffix); err == nil {
			return name[:i]
		}
	}
	return name
}

// median returns the median of samples (mean of the middle pair for even
// counts). samples is non-empty by construction.
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
