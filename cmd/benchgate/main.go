// Command benchgate enforces the CI benchmark-regression gate: it compares
// a freshly generated `go test -bench` output file against the committed
// baseline (bench_baseline.txt) and fails when a gated benchmark's median
// ns/op regressed by more than the allowed percentage.
//
// Usage:
//
//	benchgate -baseline bench_baseline.txt -new /tmp/bench_new.txt \
//	    -gate 'BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder' \
//	    -max-regress 20
//
// Both files are plain `go test -bench` output, ideally with -count > 1:
// benchgate takes the median across repetitions, which absorbs scheduler
// noise far better than single runs. Benchmark names are compared after
// stripping the trailing -GOMAXPROCS suffix, so baselines recorded on
// machines with different core counts still line up.
//
// Three metrics are gated. Median ns/op regressions beyond -max-regress
// percent fail. When both files carry the -benchmem columns, median B/op
// and allocs/op regressions beyond -max-regress-mem percent fail too —
// allocation counts are nearly deterministic, so the memory gate catches
// footprint regressions (a per-state allocation sneaking back into the
// search hot loop) that wall-clock noise would hide. A gated benchmark
// whose baseline carries memory columns but whose fresh output does not
// fails the gate outright: that shape means the CI command dropped
// -benchmem, which would otherwise silently disable the memory gate.
// Benchmarks reporting a custom nodes/op metric (the search benchmarks
// report their visited-node count) get the node-count delta printed
// alongside — node counts are deterministic, so that column separates real
// search-size regressions from scheduler noise. Non-gated benchmarks
// present in both files are reported for context but never fail the gate;
// a gated benchmark absent from the baseline (i.e. newly added) is
// reported as a warning and skipped, so landing a new gated benchmark and
// its baseline refresh in one change works; a gated benchmark that
// disappears from the fresh output fails. Refreshing the baseline is
// documented in README.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "bench_baseline.txt", "committed baseline benchmark output")
	newPath := fs.String("new", "", "freshly generated benchmark output (required)")
	gate := fs.String("gate", "BenchmarkEngineTheorem2MinWait,BenchmarkE5FailureDetectorBorder,BenchmarkE1Theorem2Border,BenchmarkSymmetrySearch/on,BenchmarkPORSearch/on,BenchmarkFrontierOnlySearch/inmem,BenchmarkFrontierOnlySearch/frontier",
		"comma-separated benchmark names that fail the gate on regression")
	maxRegress := fs.Float64("max-regress", 20, "maximum allowed regression of median ns/op, in percent")
	maxRegressMem := fs.Float64("max-regress-mem", 20, "maximum allowed regression of median B/op and allocs/op, in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" {
		fmt.Fprintln(stderr, "benchgate: -new is required")
		return 2
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	fresh, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	gated := map[string]bool{}
	for _, name := range strings.Split(*gate, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gated[name] = true
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := fresh[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		bm, nm := medianNs(base[name]), medianNs(fresh[name])
		delta := 100 * (nm - bm) / bm
		verdict := "ok"
		if gated[name] && delta > *maxRegress {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", *maxRegress)
			failed++
		} else if !gated[name] {
			verdict = "info"
		}
		line := fmt.Sprintf("%-60s %14.0f %14.0f %+8.1f%%  %s", name, bm, nm, delta, verdict)
		for _, mem := range []struct {
			label string
			sel   func(sample) (float64, bool)
		}{
			{"B/op", func(s sample) (float64, bool) { return s.bytes, s.hasBytes }},
			{"allocs/op", func(s sample) (float64, bool) { return s.allocs, s.hasAllocs }},
		} {
			bv, bok := medianMetric(base[name], mem.sel)
			nv, nok := medianMetric(fresh[name], mem.sel)
			switch {
			case bok && nok:
				// A zero baseline (an allocation-free hot loop — the very
				// case the gate protects) regresses on ANY nonzero fresh
				// value; a ratio would divide by zero and silently pass.
				memDelta := 0.0
				if bv > 0 {
					memDelta = 100 * (nv - bv) / bv
				} else if nv > 0 {
					memDelta = math.Inf(1)
				}
				memVerdict := ""
				if gated[name] && memDelta > *maxRegressMem {
					memVerdict = fmt.Sprintf(" FAIL (> +%.0f%%)", *maxRegressMem)
					failed++
				}
				line += fmt.Sprintf("  [%s %.0f -> %.0f, %+.1f%%%s]", mem.label, bv, nv, memDelta, memVerdict)
			case bok && !nok && gated[name]:
				// The baseline gates this metric but the fresh run dropped it:
				// the CI command lost -benchmem. Failing beats a silently
				// disabled memory gate.
				fmt.Fprintf(stderr, "benchgate: gated benchmark %s reports no %s in %s (baseline has it; run with -benchmem)\n",
					name, mem.label, *newPath)
				failed++
			}
		}
		if bn, nn, ok := medianNodes(base[name], fresh[name]); ok {
			line += fmt.Sprintf("  [nodes %.0f -> %.0f, %+.1f%%]", bn, nn, 100*(nn-bn)/bn)
		}
		fmt.Fprintln(stdout, line)
	}

	for name := range gated {
		_, inBase := base[name]
		_, inFresh := fresh[name]
		switch {
		case !inFresh:
			// Missing from the fresh run — whether or not the baseline has
			// it, the gate cannot observe this benchmark (removed, or a
			// typo'd -gate name), which must fail rather than silently
			// disable the gate.
			fmt.Fprintf(stderr, "benchgate: gated benchmark %s missing from %s\n", name, *newPath)
			failed++
		case !inBase:
			fmt.Fprintf(stderr, "benchgate: warning: gated benchmark %s missing from baseline %s (newly added? refresh the baseline)\n", name, *baselinePath)
		}
	}

	if failed > 0 {
		fmt.Fprintf(stderr, "benchgate: %d gate failure(s); see README.md for refreshing the baseline after intended changes\n", failed)
		return 1
	}
	fmt.Fprintln(stdout, "benchgate: all gated benchmarks within budget")
	return 0
}

// sample is one benchmark result line: the ns/op value plus the optional
// -benchmem columns and the nodes/op metric search benchmarks report.
type sample struct {
	ns        float64
	bytes     float64
	allocs    float64
	nodes     float64
	hasBytes  bool
	hasAllocs bool
	hasNodes  bool
}

// parseFile reads `go test -bench` output, returning samples per benchmark
// name (suffix-stripped), in file order.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]sample{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseLine extracts (name, sample) from one benchmark result line,
// reporting ok=false for any other line. The trailing -GOMAXPROCS suffix is
// stripped from the name so runs from machines with different core counts
// compare.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	var s sample
	haveNs := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.ns, haveNs = v, true
		case "B/op":
			s.bytes, s.hasBytes = v, true
		case "allocs/op":
			s.allocs, s.hasAllocs = v, true
		case "nodes/op":
			s.nodes, s.hasNodes = v, true
		}
	}
	if !haveNs {
		return "", sample{}, false
	}
	return stripProcsSuffix(fields[0]), s, true
}

// stripProcsSuffix removes a trailing -<digits> (the GOMAXPROCS marker go
// test appends to benchmark names).
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if suffix := name[i+1:]; suffix != "" {
		if _, err := strconv.Atoi(suffix); err == nil {
			return name[:i]
		}
	}
	return name
}

// medianNs returns the median ns/op of samples (mean of the middle pair for
// even counts). samples is non-empty by construction.
func medianNs(samples []sample) float64 {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.ns
	}
	return median(vals)
}

// medianMetric returns the median of an optional per-sample metric,
// reporting ok=false unless every sample carries it (a mixed file would
// yield a median over a different population than ns/op).
func medianMetric(samples []sample, sel func(sample) (float64, bool)) (float64, bool) {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		v, ok := sel(s)
		if !ok {
			return 0, false
		}
		vals[i] = v
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

// medianNodes returns the median nodes/op of both sample sets, reporting
// ok=false unless every sample on both sides carries the metric.
func medianNodes(base, fresh []sample) (float64, float64, bool) {
	collect := func(samples []sample) ([]float64, bool) {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			if !s.hasNodes {
				return nil, false
			}
			vals[i] = s.nodes
		}
		return vals, len(vals) > 0
	}
	bv, ok := collect(base)
	if !ok {
		return 0, 0, false
	}
	nv, ok := collect(fresh)
	if !ok {
		return 0, 0, false
	}
	return median(bv), median(nv), true
}

// median returns the median of vals (mean of the middle pair for even
// counts). vals is non-empty by construction.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
