// Command experiments regenerates every experiment table of the
// reproduction (E1-E12; see EXPERIMENTS.md for the index mapping each
// experiment to the paper's theorems and lemmas).
//
// Usage:
//
//	experiments                          # run the full suite
//	experiments E1 E5                    # run selected experiments
//	experiments -search-workers 1 E6     # force sequential frontier search
//	experiments -symmetry -por E6        # both search-space reductions (README, Reductions)
//	experiments -write-golden testdata/golden E1 E2   # refresh golden tables
//
// -write-golden writes each selected experiment's rendered table to
// <dir>/<ID>.txt (without the wall-clock footer, which is not
// deterministic); the repository's golden_test.go diffs regenerated tables
// against the committed files.
//
// A second mode runs one verification job instead of the experiment suite:
//
//	experiments -instance '{"alg":"minwait","n":3,"f":1,"goal":"search"}'
//	experiments -instance '...' -shards 4        # multi-process sharded search
//
// -instance takes a service.InstanceSpec JSON document, runs it to
// completion, and prints a single canonical JSON object
// {"verdict": ..., "progress": [[visited, level], ...]} on stdout. With
// -shards N > 1 the search runs as N worker processes (re-execs of this
// binary) coordinated over localhost HTTP; the output — verdict, visited
// count, and per-level profile — is bit-identical to -shards 1, which CI
// enforces by diffing the two. The -shard-worker/-shard-index flags are the
// internal re-exec entry point of those workers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"kset"
	"kset/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	sweepWorkers := fs.Int("sweep-workers", 0, "worker pool for independent sweep cells (0 = GOMAXPROCS, 1 = sequential)")
	searchWorkers := fs.Int("search-workers", 0, "worker goroutines per frontier search (0 = GOMAXPROCS, 1 = sequential)")
	symmetry := fs.Bool("symmetry", false, "orbit-canonical revisit detection in state-space searches (collapses process-renamed configurations; see README, Reductions)")
	por := fs.Bool("por", false, "partial-order reduction in state-space searches (prunes interleavings of commuting steps once sending is over; composes with -symmetry; see README, Reductions)")
	store := fs.String("store", "", "search memory regime: inmem (default), frontier (visited keys + two BFS levels only), or spill (frontier + sealed levels on disk); see README, Memory & checkpoints")
	checkpoint := fs.String("checkpoint", "", "directory for pausing truncated bounded searches and resuming them on the next run (requires -store frontier or spill)")
	faults := fs.String("faults", "", "fault model of state-space search adversaries beyond crashes: model[:budget[:maxfaulty]] with model send-omission, receive-omission, or byzantine (default crash-only); see README, Fault models")
	packed := fs.String("packed", "", "configuration engine: off (default, pointer-based) or on/auto (packed struct-of-arrays records where the algorithm supports them; bit-identical results, lower memory and time); see README, Packed engine")
	writeGolden := fs.String("write-golden", "", "write each table to <dir>/<ID>.txt instead of stdout")
	instance := fs.String("instance", "", "run one verification job (service.InstanceSpec JSON) instead of the experiment suite and print its verdict and level profile as JSON")
	shards := fs.Int("shards", 1, "worker processes for the -instance search (1 = single-process; results are bit-identical at every count)")
	shardWorker := fs.String("shard-worker", "", "internal: run as a shard worker against this coordinator URL")
	shardIndex := fs.Int("shard-index", -1, "internal: shard index for -shard-worker")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shardWorker != "" {
		if err := service.ShardWorkerMain(context.Background(), *shardWorker, *shardIndex); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		return 0
	}
	if *instance != "" {
		return runInstance(*instance, *shards)
	}
	if *shards != 1 {
		fmt.Fprintln(os.Stderr, "experiments: -shards requires -instance")
		return 2
	}
	if *checkpoint != "" && (*store == "" || *store == "inmem") {
		fmt.Fprintln(os.Stderr, "experiments: -checkpoint requires -store frontier or -store spill")
		return 2
	}
	// One Searcher value carries every search knob (and validates the store
	// and fault spellings) into the search-driven experiments; SweepWorkers
	// is experiment plumbing, not a search knob.
	search, err := kset.NewSearcher(kset.Options{
		Workers:    *searchWorkers,
		Symmetry:   *symmetry,
		POR:        *por,
		Store:      *store,
		Checkpoint: *checkpoint,
		Faults:     *faults,
		Packed:     *packed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	kset.SweepWorkers = *sweepWorkers

	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[a] = true
	}
	failed := 0
	for _, e := range kset.ExperimentsWith(search) {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *writeGolden != "" {
			if err := os.MkdirAll(*writeGolden, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failed++
				continue
			}
			path := filepath.Join(*writeGolden, e.ID+".txt")
			if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s  (%s completed in %v)\n", path, e.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return min(failed, 1)
}

// runInstance runs one verification job — sharded across worker processes
// when shards > 1 — and prints {"verdict", "progress"} as one canonical
// JSON object. Degradation notices are skipped: progress holds only the
// deterministic (visited, level) pairs the sharded CI smoke diffs.
func runInstance(specJSON string, shards int) int {
	dec := json.NewDecoder(strings.NewReader(specJSON))
	dec.DisallowUnknownFields()
	var spec service.InstanceSpec
	if err := dec.Decode(&spec); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: malformed -instance: %v\n", err)
		return 2
	}
	progress := [][2]int{}
	collect := func(u service.ProgressUpdate) {
		if u.Degraded != "" {
			return
		}
		progress = append(progress, [2]int{u.Visited, u.Level})
	}
	var verdict *service.Verdict
	var err error
	if shards > 1 {
		exe, eerr := os.Executable()
		if eerr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", eerr)
			return 1
		}
		verdict, err = service.RunShardedSearch(context.Background(), service.ShardConfig{
			Spec:   spec,
			Shards: shards,
			WorkerArgs: func(coordURL string, shard int) []string {
				return []string{exe, "-shard-worker", coordURL, "-shard-index", strconv.Itoa(shard)}
			},
			OnProgress: collect,
		})
	} else {
		verdict, err = service.KsetRunner{}.Run(context.Background(), spec, collect)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(struct {
		Verdict  *service.Verdict `json:"verdict"`
		Progress [][2]int         `json:"progress"`
	}{verdict, progress}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	return 0
}
