// Command experiments regenerates every experiment table of the
// reproduction (E1-E10; see EXPERIMENTS.md for the index mapping each
// experiment to the paper's theorems and lemmas).
//
// Usage:
//
//	experiments           # run the full suite
//	experiments E1 E5     # run selected experiments
package main

import (
	"fmt"
	"os"
	"time"

	"kset"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	want := make(map[string]bool, len(args))
	for _, a := range args {
		want[a] = true
	}
	failed := 0
	for _, e := range kset.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return min(failed, 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
