// Command experiments regenerates every experiment table of the
// reproduction (E1-E12; see EXPERIMENTS.md for the index mapping each
// experiment to the paper's theorems and lemmas).
//
// Usage:
//
//	experiments                          # run the full suite
//	experiments E1 E5                    # run selected experiments
//	experiments -search-workers 1 E6     # force sequential frontier search
//	experiments -symmetry -por E6        # both search-space reductions (README, Reductions)
//	experiments -write-golden testdata/golden E1 E2   # refresh golden tables
//
// -write-golden writes each selected experiment's rendered table to
// <dir>/<ID>.txt (without the wall-clock footer, which is not
// deterministic); the repository's golden_test.go diffs regenerated tables
// against the committed files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kset"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	sweepWorkers := fs.Int("sweep-workers", 0, "worker pool for independent sweep cells (0 = GOMAXPROCS, 1 = sequential)")
	searchWorkers := fs.Int("search-workers", 0, "worker goroutines per frontier search (0 = GOMAXPROCS, 1 = sequential)")
	symmetry := fs.Bool("symmetry", false, "orbit-canonical revisit detection in state-space searches (collapses process-renamed configurations; see README, Reductions)")
	por := fs.Bool("por", false, "partial-order reduction in state-space searches (prunes interleavings of commuting steps once sending is over; composes with -symmetry; see README, Reductions)")
	store := fs.String("store", "", "search memory regime: inmem (default), frontier (visited keys + two BFS levels only), or spill (frontier + sealed levels on disk); see README, Memory & checkpoints")
	checkpoint := fs.String("checkpoint", "", "directory for pausing truncated bounded searches and resuming them on the next run (requires -store frontier or spill)")
	faults := fs.String("faults", "", "fault model of state-space search adversaries beyond crashes: model[:budget[:maxfaulty]] with model send-omission, receive-omission, or byzantine (default crash-only); see README, Fault models")
	writeGolden := fs.String("write-golden", "", "write each table to <dir>/<ID>.txt instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkpoint != "" && (*store == "" || *store == "inmem") {
		fmt.Fprintln(os.Stderr, "experiments: -checkpoint requires -store frontier or -store spill")
		return 2
	}
	// One Searcher value carries every search knob (and validates the store
	// and fault spellings) into the search-driven experiments; SweepWorkers
	// is experiment plumbing, not a search knob.
	search, err := kset.NewSearcher(kset.Options{
		Workers:    *searchWorkers,
		Symmetry:   *symmetry,
		POR:        *por,
		Store:      *store,
		Checkpoint: *checkpoint,
		Faults:     *faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	kset.SweepWorkers = *sweepWorkers

	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[a] = true
	}
	failed := 0
	for _, e := range kset.ExperimentsWith(search) {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *writeGolden != "" {
			if err := os.MkdirAll(*writeGolden, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failed++
				continue
			}
			path := filepath.Join(*writeGolden, e.ID+".txt")
			if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s  (%s completed in %v)\n", path, e.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return min(failed, 1)
}
