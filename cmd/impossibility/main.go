// Command impossibility applies the Theorem 1 reduction engine to a
// candidate algorithm: it builds the partition, constructs the solo and
// pasted runs, searches the subsystem <D-bar> for a consensus failure, and
// prints the verdict with the witness run's decision census.
//
// Usage:
//
//	impossibility -alg minwait -n 5 -f 3 -k 2            # Theorem 2 setting
//	impossibility -alg quorummin -n 5 -k 2 -theorem10    # Theorem 10 setting
//	impossibility -alg firstheard -n 6 -k 3 -groups "1,2|3,4" -budget 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kset"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algName   = flag.String("alg", "minwait", "algorithm: minwait, flpkset, sigmaomega, quorummin, decideown, firstheard")
		n         = flag.Int("n", 5, "number of processes")
		f         = flag.Int("f", 3, "fault parameter handed to the algorithm / Theorem 2 partition")
		k         = flag.Int("k", 2, "agreement parameter k")
		groups    = flag.String("groups", "", "explicit decider groups like \"1,2|3,4\" (default: Theorem 2 partition)")
		theorem10 = flag.Bool("theorem10", false, "use the Theorem 10 construction with partition failure detectors")
		budget    = flag.Int("budget", 1, "crash budget inside <D-bar>")
		maxCfg    = flag.Int("maxconfigs", 80000, "subsystem exploration budget")
		strategy  = flag.String("strategy", "dfs", "subsystem search order: dfs (deep, default) or bfs (shortest witnesses)")
		workers   = flag.Int("search-workers", 0, "worker goroutines per bfs frontier search (0 = GOMAXPROCS, 1 = sequential)")
		symmetry  = flag.Bool("symmetry", false, "orbit-canonical revisit detection in the <D-bar> search (no-op for the distinct proposals Theorem 1 requires; pays off for repeated-input vetting)")
		por       = flag.Bool("por", false, "partial-order reduction in the <D-bar> search (prunes interleavings of commuting steps once every live process has finished sending; composes with -symmetry)")
		store     = flag.String("store", "", "search memory regime: inmem (default), frontier (visited keys + two BFS levels only), or spill (frontier + sealed levels on disk)")
		ckpt      = flag.String("checkpoint", "", "directory for pausing truncated bounded <D-bar> searches and resuming them on the next run (requires -store frontier or spill and -strategy bfs)")
		faults    = flag.String("faults", "", "fault model of the <D-bar> adversary beyond crashes: model[:budget[:maxfaulty]] with model send-omission, receive-omission, or byzantine (default crash-only)")
		packed    = flag.String("packed", "", "configuration engine: off (default, pointer-based) or on/auto (packed struct-of-arrays records where the algorithm supports them; bit-identical verdicts, lower memory and time)")
		verbose   = flag.Bool("v", false, "print the per-condition explanation")
	)
	flag.Parse()

	if *ckpt != "" && (*store == "" || *store == "inmem") {
		fmt.Fprintln(os.Stderr, "impossibility: -checkpoint requires -store frontier or -store spill")
		return 2
	}

	// One Searcher value carries every search knob (and validates the store
	// and fault spellings); both the Theorem 10 path and the generic engine
	// path below search through it, so a knob cannot be wired into one path
	// and silently dropped from the other — the drift the old
	// globals-mirroring helper papered over.
	search, err := kset.NewSearcher(kset.Options{
		Workers:    *workers,
		Symmetry:   *symmetry,
		POR:        *por,
		Store:      *store,
		Checkpoint: *ckpt,
		Faults:     *faults,
		Packed:     *packed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *theorem10 {
		rep, merged, err := search.Theorem10Construction(context.Background(), *n, *k, *maxCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "theorem 10 construction: %v\n", err)
			return 1
		}
		fmt.Println(rep.Summary())
		if merged != nil {
			fmt.Printf("Lemma 12 merged run: %d distinct decisions across the %d partitions (indistinguishable: %t)\n",
				len(merged.Distinct), *k, merged.IndistinguishableOK)
		}
		if rep.Refuted {
			return 0
		}
		return 1
	}

	alg, algErr := pickAlgorithm(*algName, *f)
	if algErr != nil {
		fmt.Fprintln(os.Stderr, algErr)
		return 2
	}

	var spec kset.PartitionSpec
	if *groups != "" {
		gs, err := parseGroups(*groups)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -groups: %v\n", err)
			return 2
		}
		spec, err = kset.NewPartitionSpec(*n, *k, gs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		spec, err = kset.Theorem2Partition(*n, *f, *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "Theorem 2 partition: %v\n", err)
			return 2
		}
	}

	// The Searcher stamps its knobs (workers, reductions, store, checkpoint,
	// faults) over the instance; only per-instance fields remain here.
	rep, err := search.CheckImpossibility(context.Background(), kset.ImpossibilityInstance{
		Alg:             alg,
		Inputs:          kset.DistinctInputs(*n),
		Spec:            spec,
		DBarCrashBudget: *budget,
		MaxConfigs:      *maxCfg,
		SearchStrategy:  *strategy,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine: %v\n", err)
		return 1
	}
	fmt.Println(rep.Summary())
	if *verbose {
		if err := rep.WriteExplanation(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "explanation: %v\n", err)
			return 1
		}
	}
	if rep.Pasted != nil {
		fmt.Printf("pasted run: %d events, decisions %v, blocked %v\n",
			len(rep.Pasted.Events), rep.DistinctDecided, rep.BlockedInPasted)
	}
	for i, decs := range rep.GroupDecisions {
		fmt.Printf("  D_%d solo decisions: %v\n", i+1, decs)
	}
	if rep.DBarWitness != nil {
		fmt.Printf("  D-bar witness: %s — %s (visited %d configurations)\n",
			rep.DBarWitness.Kind, rep.DBarWitness.Detail, rep.DBarWitness.Stats.Visited)
	}
	return 0
}

func pickAlgorithm(name string, f int) (kset.Algorithm, error) {
	return kset.NewAlgorithm(name, f)
}

func parseGroups(s string) ([][]kset.ProcessID, error) {
	var out [][]kset.ProcessID
	for _, g := range strings.Split(s, "|") {
		var ids []kset.ProcessID
		for _, part := range strings.Split(g, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("id %q: %w", part, err)
			}
			ids = append(ids, kset.ProcessID(id))
		}
		if len(ids) > 0 {
			out = append(out, ids)
		}
	}
	return out, nil
}
