package kset

import (
	"fmt"
	"os"

	"kset/internal/algorithms"
	"kset/internal/explore"
	"kset/internal/sim"
)

// E13Params parameterizes the memory-bounded exploration experiment: the
// uniform-input Theorem 2 shape (every process proposes the same value, all
// n live, a multi-crash adversary budget) scaled past what the in-memory
// arena engine can hold, explored exhaustively by the frontier-only store.
type E13Params struct {
	// N is the system size; all processes are live and propose value 0.
	N int
	// F is MinWait's resilience parameter (the protocol waits for n-f
	// values).
	F int
	// Budget is the adversary's crash budget.
	Budget int
	// InMemMaxConfigs caps the in-memory comparison row; the default arena
	// budget (explore.DefaultMaxConfigs), at which that engine truncates on
	// this instance.
	InMemMaxConfigs int
	// MaxConfigs caps the bounded rows, set above the instance's full
	// reduced state-space size so they run to exhaustion.
	MaxConfigs int
	// Spill adds a disk-spill row (same result as frontier; the sealed
	// levels stream to a temporary file instead of being dropped).
	Spill bool
	// Search configures the searches' worker count and checkpoint directory
	// (the store and reductions are the experiment's subject and fixed per
	// row); nil means default options.
	Search *Searcher
}

// DefaultE13Params returns the instance used by cmd/experiments: n = 8,
// whose ~766k-state reduced space is past the in-memory engine's default
// arena budget (the truncation contrast is real), overridable to a smaller
// system via the E13_N environment variable (6 or 7). The nightly
// GOMEMLIMIT=1GiB gate runs E13_N=7 — measured live heap ~280 MB for the
// bounded row, far under the cap — because at n = 8 the live BFS frontier
// itself (two levels of ~150k concrete configurations, each carrying
// O(n²) buffered messages) exceeds a gigabyte no matter which store mode
// tracks the visited set; see the experiment notes.
func DefaultE13Params() E13Params {
	p := E13Params{
		N:               8,
		F:               2,
		Budget:          2,
		InMemMaxConfigs: explore.DefaultMaxConfigs,
		MaxConfigs:      8_000_000,
		Spill:           true,
	}
	switch os.Getenv("E13_N") {
	case "6":
		p.N = 6
	case "7":
		p.N = 7
	}
	return p
}

// ExperimentBoundedExploration (E13) demonstrates the memory-bounded
// exploration core on an instance the in-memory engine cannot finish: the
// uniform-input Theorem 2 shape at n processes with a multi-crash budget,
// symmetry and partial-order reduction stacked (uniform proposals give the
// full symmetric group as stabilizer — the reductions' best case — and the
// space is still out of the arena engine's reach). Uniform proposals make
// disagreement unreachable (validity), so the exhaustive verification "no
// disagreement exists" is the product — precisely the workload whose visited
// set dwarfs its frontier.
//
// The in-memory row truncates at its arena budget: every visited
// configuration costs it an arena node plus a visited key (~45 B today
// with the compact visited set; ~90 B under the pre-compaction map), so
// its default budget stops the search at a fraction of the space and
// raising the budget multiplies a footprint the bounded store simply does
// not carry. The frontier-only row completes the same search, retaining
// ~11-16 B per visited state (the open-addressed visited-key set) plus two
// BFS levels; the spill row additionally streams the 8 B/state
// level-generation log to disk, which is what witness reconstruction and
// checkpoints read back. All rows are deterministic, and the bounded rows'
// visited counts are the instance's exact reduced state-space size. The
// nightly CI workflow re-runs this experiment at E13_N=7 under
// GOMEMLIMIT=1GiB (measured live heap ~280 MB) and at full scale without
// the cap.
func ExperimentBoundedExploration(p E13Params) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Memory-bounded exploration: uniform Theorem 2 beyond the in-memory arena",
		Columns: []string{
			"store", "n", "f", "budget", "maxconfigs", "visited", "outcome", "detail",
		},
		Notes: []string{
			"uniform inputs, all processes live, symmetry+POR stacked; MinWait(f) under a crash-budget adversary",
			"inmem retains ~45 B/state (arena node + visited key) and truncates at its default budget;",
			"frontier retains ~11-16 B/state (open-addressed visited keys) plus two live BFS levels and completes;",
			"spill additionally streams the 8 B/state level-generation log to disk (checkpoint/witness source)",
			"nightly CI re-runs this experiment at E13_N=7 under GOMEMLIMIT=1GiB and at full scale uncapped",
		},
	}

	type row struct {
		store      string
		maxConfigs int
	}
	rows := []row{
		{"inmem", p.InMemMaxConfigs},
		{"frontier", p.MaxConfigs},
	}
	if p.Spill {
		rows = append(rows, row{"spill", p.MaxConfigs})
	}

	inputs := make([]sim.Value, p.N)
	live := make([]sim.ProcessID, p.N)
	for i := range live {
		live[i] = sim.ProcessID(i + 1)
	}
	search := orDefault(p.Search)
	exhaustiveVisited := -1
	for _, r := range rows {
		store, err := explore.ParseStore(r.store)
		if err != nil {
			return nil, fmt.Errorf("E13: %w", err)
		}
		// Checkpointing requires a bounded store, so the in-memory
		// comparison row must not inherit the configured checkpoint
		// directory — with it, `-checkpoint` would abort the one experiment
		// built to demonstrate checkpointing.
		checkpoint := search.Options().Checkpoint
		if store == explore.StoreInMemory {
			checkpoint = ""
		}
		e := explore.New(algorithms.MinWait{F: p.F}, inputs, explore.Options{
			Live:       live,
			MaxCrashes: p.Budget,
			MaxConfigs: r.maxConfigs,
			Workers:    search.Options().Workers,
			Symmetry:   true,
			POR:        true,
			Store:      store,
			Checkpoint: checkpoint,
		})
		w, found, err := e.FindDisagreement()
		if err != nil {
			return nil, fmt.Errorf("E13: %s search: %w", r.store, err)
		}
		if found {
			return nil, fmt.Errorf("E13: uniform inputs disagreed (validity violated): %s", w.Detail)
		}
		outcome, detail := "exhausted", "no disagreement reachable (validity verified exhaustively)"
		if w.Stats.Truncated {
			outcome = "truncated"
			detail = "arena budget reached; verdict inconclusive"
			if w.Checkpoint != "" {
				detail += " (paused state checkpointed)"
			}
		} else {
			if exhaustiveVisited == -1 {
				exhaustiveVisited = w.Stats.Visited
			} else if w.Stats.Visited != exhaustiveVisited {
				return nil, fmt.Errorf("E13: bounded stores diverged: %d vs %d visited", w.Stats.Visited, exhaustiveVisited)
			}
		}
		t.AddRow(r.store, p.N, p.F, p.Budget, r.maxConfigs, w.Stats.Visited, outcome, detail)
	}
	return t, nil
}
