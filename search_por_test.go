package kset

import (
	"testing"

	"kset/internal/testutil"
)

// TestSearchPORFacadeParity proves the SearchPOR knob is purely a
// performance control on the public facade: the condition-(C) search
// reaches the same verdict with and without partial-order reduction,
// visiting at most as many configurations, and on the uniform-input
// instance strictly (at least 2x) fewer — alone and stacked on
// SearchSymmetry.
func TestSearchPORFacadeParity(t *testing.T) {
	defer func(p, s bool) { SearchPOR, SearchSymmetry = p, s }(SearchPOR, SearchSymmetry)

	cases := []struct {
		name   string
		inputs []Value
	}{
		{"distinct", DistinctInputs(4)},
		{"uniform", []Value{0, 0, 0, 0}},
	}
	live := []ProcessID{1, 2, 3, 4}
	for _, c := range cases {
		for _, symmetry := range []bool{false, true} {
			name := c.name
			if symmetry {
				name += "+symmetry"
			}
			t.Run(name, func(t *testing.T) {
				SearchSymmetry = symmetry
				SearchPOR = false
				plainW, plainFound, err := FindConsensusFailure(NewMinWait(1), c.inputs, live, 1, 0)
				if err != nil {
					t.Fatal(err)
				}
				SearchPOR = true
				porW, porFound, err := FindConsensusFailure(NewMinWait(1), c.inputs, live, 1, 0)
				if err != nil {
					t.Fatal(err)
				}
				if porFound != plainFound {
					t.Fatalf("verdict diverged: por found=%t, plain found=%t", porFound, plainFound)
				}
				if porW.Stats.Visited > plainW.Stats.Visited {
					t.Fatalf("por visited %d > plain %d", porW.Stats.Visited, plainW.Stats.Visited)
				}
				if c.name == "uniform" && 2*porW.Stats.Visited > plainW.Stats.Visited {
					t.Fatalf("expected >= 2x reduction on uniform inputs: por %d, plain %d",
						porW.Stats.Visited, plainW.Stats.Visited)
				}
				if porFound {
					testutil.RevalidateWitness(t, porW.Kind, porW.Run)
				}
			})
		}
	}
}

// TestSearchPORBivalenceTable proves the E6 valence table — whose searches
// enumerate reduced action sets when SearchPOR is set, while the
// critical-step analysis still lists every first action — renders
// identically with the knob on and off, alone and composed with
// SearchSymmetry.
func TestSearchPORBivalenceTable(t *testing.T) {
	defer func(p, s bool) { SearchPOR, SearchSymmetry = p, s }(SearchPOR, SearchSymmetry)

	for _, symmetry := range []bool{false, true} {
		SearchSymmetry = symmetry
		SearchPOR = false
		plain, err := ExperimentBivalence()
		if err != nil {
			t.Fatal(err)
		}
		SearchPOR = true
		por, err := ExperimentBivalence()
		if err != nil {
			t.Fatal(err)
		}
		if por.String() != plain.String() {
			t.Fatalf("E6 table changed under SearchPOR (symmetry=%t):\n%s\nvs plain:\n%s",
				symmetry, por.String(), plain.String())
		}
	}
}

// TestSearchPORTheorem2Engine proves the POR knob threads through the full
// Theorem 1 pipeline: the E1 engine row refutes MinWait identically with
// the reduction on and off (distinct proposals, DFS condition-(C) search).
func TestSearchPORTheorem2Engine(t *testing.T) {
	defer func(p bool) { SearchPOR = p }(SearchPOR)

	SearchPOR = false
	plain, err := VerifyTheorem2Row(5, 3, 2, 60000)
	if err != nil {
		t.Fatal(err)
	}
	SearchPOR = true
	por, err := VerifyTheorem2Row(5, 3, 2, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if por.Refuted != plain.Refuted || por.Violation != plain.Violation {
		t.Fatalf("engine verdict diverged: por (refuted=%t, %q), plain (refuted=%t, %q)",
			por.Refuted, por.Violation, plain.Refuted, plain.Violation)
	}
	if len(por.DistinctDecided) != len(plain.DistinctDecided) {
		t.Fatalf("pasted decision census diverged: por %v, plain %v", por.DistinctDecided, plain.DistinctDecided)
	}
}
