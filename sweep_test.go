package kset

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestForEachCellCoversAllCells(t *testing.T) {
	const cells = 57
	hits := make([]int, cells)
	if err := forEachCell(cells, func(i int) error {
		hits[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("cell %d evaluated %d times", i, h)
		}
	}
}

func TestForEachCellReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := forEachCell(40, func(i int) error {
		switch i {
		case 7:
			return errLow
		case 31:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-indexed error", err)
	}
}

func TestSweepRowsPreservesOrder(t *testing.T) {
	rows, err := sweepRows(20, func(i int) ([]string, error) {
		return rowOf(i, fmt.Sprintf("cell-%d", i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row[0] != fmt.Sprintf("%d", i) || row[1] != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
}

// TestSweepDeterministicAcrossWorkerCounts regenerates experiment tables
// sequentially and with a saturated worker pool and requires identical rows
// — the differential guarantee that parallelizing the sweeps changed no
// result.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison skipped in -short mode")
	}
	old := SweepWorkers
	defer func() { SweepWorkers = old }()

	runs := []struct {
		name string
		gen  func() (*Table, error)
	}{
		{"E1", func() (*Table, error) {
			return ExperimentTheorem2Border(E1Params{MinN: 4, MaxN: 4, MaxConfigs: 60000})
		}},
		{"E5", func() (*Table, error) {
			return ExperimentFailureDetectorBorder(E5Params{MinN: 5, MaxN: 5, MaxConfigs: 80000})
		}},
		{"E12", ExperimentSynchronyLadder},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			SweepWorkers = 1
			seq, err := r.gen()
			if err != nil {
				t.Fatal(err)
			}
			SweepWorkers = 8
			par, err := r.gen()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Rows, par.Rows) {
				t.Fatalf("parallel sweep rows differ from sequential:\n%s\n%s", seq, par)
			}
		})
	}
}
