package kset

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SweepWorkers caps the number of worker goroutines used to evaluate
// independent sweep cells of the experiment runners (E1, E5, E12, ...).
// Zero, the default, means GOMAXPROCS; 1 forces sequential evaluation.
// Every sweep cell is self-contained — it builds its own explorer, oracle,
// and runs — so cells parallelize without shared state, and results are
// written into per-cell slots so the emitted table rows keep the exact
// deterministic order of the sequential sweep.
//
// Unlike the deprecated Search* globals, SweepWorkers is not part of the
// Options/Searcher API: it configures table generation in the CLI process,
// never a search result, so it has no server-side twin and no effect on
// verdicts or digests. Per-search parallelism is Options.Workers.
var SweepWorkers = 0

// sweepWorkerCount resolves SweepWorkers against the cell count.
func sweepWorkerCount(cells int) int {
	w := SweepWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachCell evaluates fn(i) for every cell index in [0, cells) on a
// bounded worker pool. fn must only write state owned by cell i. The
// returned error is the lowest-indexed one, so failures are as deterministic
// as the sequential loop's.
func forEachCell(cells int, fn func(i int) error) error {
	if cells <= 0 {
		return nil
	}
	workers := sweepWorkerCount(cells)
	if workers == 1 {
		for i := 0; i < cells; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, cells)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepRows evaluates cell(i) — one table row per cell — across the worker
// pool and returns the rows in cell order.
func sweepRows(cells int, cell func(i int) ([]string, error)) ([][]string, error) {
	rows := make([][]string, cells)
	err := forEachCell(cells, func(i int) error {
		row, err := cell(i)
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// rowOf stringifies cells exactly like Table.AddRow.
func rowOf(cells ...interface{}) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	return row
}
