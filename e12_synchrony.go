package kset

import (
	"errors"
	"fmt"

	"kset/internal/algorithms"
	"kset/internal/sched"
	"kset/internal/sim"
)

// ExperimentSynchronyLadder sweeps the model dimensions of Section II (the
// paper builds on Dolev-Dwork-Stockmeyer's 32-model taxonomy, varying
// process synchrony and communication behaviour): the same protocols run
// under four scheduler/adversary combinations —
//
//	async          fair asynchronous scheduling, prompt delivery
//	async+part     fair scheduling, cross-group delivery delayed
//	lockstep       synchronous processes, prompt delivery
//	lockstep+part  synchronous processes, cross-group delivery delayed
//
// The table shows what each dimension buys: prompt delivery yields
// consensus-like convergence for every protocol; partitioned delivery
// splits the unconditional protocols regardless of process synchrony
// (Theorem 2's hypothesis: process synchrony alone does not help); and the
// synchronous-only RoundFlood is correct exactly on the lockstep-prompt
// rung.
func ExperimentSynchronyLadder() (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Synchrony ladder: the same protocols across model dimensions (Section II / DDS)",
		Columns: []string{
			"algorithm", "n", "model", "distinct", "blocked", "within claim",
		},
		Notes: []string{
			"partition gates delay cross-group messages until every process decided (groups of size n/2)",
			"'within claim' compares against each protocol's own correctness envelope in that model",
		},
	}

	n := 6
	groups := [][]sim.ProcessID{{1, 2, 3}, {4, 5, 6}}
	type rung struct {
		name     string
		lockstep bool
		gated    bool
	}
	rungs := []rung{
		{"async", false, false},
		{"async+part", false, true},
		{"lockstep", true, false},
		{"lockstep+part", true, true},
	}
	type subject struct {
		alg sim.Algorithm
		// claim returns whether the observed (distinct, blocked) outcome is
		// within the protocol's correctness envelope on the given rung.
		claim func(r rung, distinct, blocked int) bool
	}
	subjects := []subject{
		{
			alg: algorithms.MinWait{F: 3},
			// f-resilient: terminates everywhere; <= f+1 = 4 values. The
			// partition rungs split it into one value per group (2), still
			// within f+1 but above k for any k < 2 claim.
			claim: func(r rung, d, b int) bool { return b == 0 && d <= 4 },
		},
		{
			alg: algorithms.FLPKSet{F: 3},
			// Initial-crash protocol, L = 3: <= floor(6/3) = 2 values,
			// terminates under every rung (failure-free here).
			claim: func(r rung, d, b int) bool { return b == 0 && d <= 2 },
		},
		{
			alg: algorithms.RoundFlood{F: 2},
			// Synchronous FloodSet: consensus is guaranteed only with
			// prompt delivery; the gated rungs may split it (that is the
			// E9/Theorem 2 story), so the envelope there is just
			// termination.
			claim: func(r rung, d, b int) bool {
				if r.gated {
					return b == 0
				}
				return b == 0 && d == 1
			},
		},
	}

	// Each (protocol, rung) cell runs its own scheduler and gate, so the
	// grid fans out over the SweepWorkers pool; per-cell slots keep the row
	// order of the sequential nested loop.
	rows, err := sweepRows(len(subjects)*len(rungs), func(i int) ([]string, error) {
		sub, r := subjects[i/len(rungs)], rungs[i%len(rungs)]
		run, err := runLadder(sub.alg, n, groups, r.lockstep, r.gated)
		if err != nil {
			return nil, fmt.Errorf("E12: %s on %s: %w", sub.alg.Name(), r.name, err)
		}
		d := len(run.DistinctDecisions())
		b := len(run.Blocked)
		return rowOf(sub.alg.Name(), n, r.name, d, b, sub.claim(r, d, b)), nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func runLadder(alg sim.Algorithm, n int, groups [][]sim.ProcessID, lockstep, gated bool) (*sim.Run, error) {
	cp := sched.CrashPlan{}
	var gate sched.Gate
	if gated {
		all := make([]sim.ProcessID, n)
		for i := range all {
			all[i] = sim.ProcessID(i + 1)
		}
		gate = sched.PartitionUntilDecidedGate(groups, all)
	}
	var s sim.Scheduler
	if lockstep {
		s = &sched.Lockstep{Crash: cp, Gate: gate, Stop: sched.AllCorrectDecided(cp)}
	} else {
		s = &sched.Fair{Crash: cp, Gate: gate, Stop: sched.AllCorrectDecided(cp)}
	}
	run, err := sim.Execute(alg, DistinctInputs(n), s, sim.Options{})
	if err != nil && !errors.Is(err, sim.ErrHorizon) {
		return nil, err
	}
	return run, nil
}
