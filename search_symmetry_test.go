package kset

import (
	"testing"

	"kset/internal/testutil"
)

// TestSearchSymmetryFacadeParity proves the SearchSymmetry knob is purely a
// performance control on the public facade: the condition-(C) search
// reaches the same verdict with and without orbit reduction, visiting at
// most as many configurations, and on the uniform-input instance strictly
// (at least 2x) fewer.
func TestSearchSymmetryFacadeParity(t *testing.T) {
	defer func(s bool) { SearchSymmetry = s }(SearchSymmetry)

	cases := []struct {
		name   string
		inputs []Value
	}{
		{"distinct", DistinctInputs(4)},
		{"uniform", []Value{0, 0, 0, 0}},
	}
	live := []ProcessID{1, 2, 3, 4}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			SearchSymmetry = false
			plainW, plainFound, err := FindConsensusFailure(NewMinWait(1), c.inputs, live, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			SearchSymmetry = true
			symW, symFound, err := FindConsensusFailure(NewMinWait(1), c.inputs, live, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if symFound != plainFound {
				t.Fatalf("verdict diverged: symmetry found=%t, plain found=%t", symFound, plainFound)
			}
			if symW.Stats.Visited > plainW.Stats.Visited {
				t.Fatalf("symmetry visited %d > plain %d", symW.Stats.Visited, plainW.Stats.Visited)
			}
			if c.name == "uniform" && 2*symW.Stats.Visited > plainW.Stats.Visited {
				t.Fatalf("expected >= 2x reduction on uniform inputs: symmetry %d, plain %d",
					symW.Stats.Visited, plainW.Stats.Visited)
			}
			if symFound {
				testutil.RevalidateWitness(t, symW.Kind, symW.Run)
			}
		})
	}
}

// TestSearchSymmetryBivalenceTable proves the E6 valence table — whose
// searches use orbit-canonical keys when Options.Symmetry is set — renders
// identically with the knob on and off (decision values are
// orbit-invariant).
func TestSearchSymmetryBivalenceTable(t *testing.T) {
	plain, err := ExperimentBivalenceWith(nil)
	if err != nil {
		t.Fatal(err)
	}
	symS, err := NewSearcher(Options{Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := ExperimentBivalenceWith(symS)
	if err != nil {
		t.Fatal(err)
	}
	if sym.String() != plain.String() {
		t.Fatalf("E6 table changed under Options.Symmetry:\n%s\nvs plain:\n%s", sym.String(), plain.String())
	}
}
