package kset

import (
	"strings"
	"testing"

	"kset/internal/testutil"
)

// TestSearchFaultsFacadeParity proves the SearchFaults knob behaves on the
// public facade exactly as the substrate promises: the empty string and the
// explicit "crash" spelling drive bit-identical searches (stats and
// verdict), and arming a fault model only strengthens the adversary — a
// crash-only witness stays findable, and its replayed run carries the
// armed model's fault events when the adversary uses them.
func TestSearchFaultsFacadeParity(t *testing.T) {
	defer func(s string) { SearchFaults = s }(SearchFaults)

	inputs := DistinctInputs(3)
	live := []ProcessID{1, 2, 3}

	SearchFaults = ""
	plainW, plainFound, err := FindConsensusFailure(NewMinWait(1), inputs, live, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	SearchFaults = "crash"
	crashW, crashFound, err := FindConsensusFailure(NewMinWait(1), inputs, live, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if crashFound != plainFound || crashW.Stats != plainW.Stats {
		t.Fatalf("SearchFaults=crash diverged from empty: %+v/%t vs %+v/%t",
			crashW.Stats, crashFound, plainW.Stats, plainFound)
	}

	for _, spec := range []string{"send-omission:1:1", "receive-omission:1:1", "byzantine:1:1"} {
		SearchFaults = spec
		w, found, err := FindConsensusFailure(NewMinWait(1), inputs, live, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if found != plainFound {
			t.Fatalf("SearchFaults=%s flipped the verdict: found=%t, crash-only %t", spec, found, plainFound)
		}
		if found {
			testutil.RevalidateWitness(t, w.Kind, w.Run)
		}
	}
}

// TestApplySearchConfigFaults pins the shared flag-mirroring helper's fault
// handling: a valid spec lands in SearchFaults, an invalid one is rejected
// before any global mutates.
func TestApplySearchConfigFaults(t *testing.T) {
	defer func(w int, sym, por bool, st, ck, f string) {
		SearchWorkers, SearchSymmetry, SearchPOR, SearchStore, SearchCheckpoint, SearchFaults = w, sym, por, st, ck, f
	}(SearchWorkers, SearchSymmetry, SearchPOR, SearchStore, SearchCheckpoint, SearchFaults)

	if err := ApplySearchConfig(SearchConfig{Workers: 2, Faults: "send-omission:2:1", Store: "frontier"}); err != nil {
		t.Fatal(err)
	}
	if SearchFaults != "send-omission:2:1" || SearchWorkers != 2 || SearchStore != "frontier" {
		t.Fatalf("config not mirrored: faults=%q workers=%d store=%q", SearchFaults, SearchWorkers, SearchStore)
	}

	before := SearchFaults
	err := ApplySearchConfig(SearchConfig{Faults: "meteor"})
	if err == nil {
		t.Fatal("ApplySearchConfig accepted an unknown fault model")
	}
	if !strings.Contains(err.Error(), "meteor") {
		t.Fatalf("error %q does not name the bad model", err)
	}
	if SearchFaults != before {
		t.Fatalf("failed ApplySearchConfig mutated SearchFaults to %q", SearchFaults)
	}

	if err := ApplySearchConfig(SearchConfig{Faults: "crash:1"}); err == nil {
		t.Fatal("ApplySearchConfig accepted a budgeted crash model")
	}
}
