package kset

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenExperiments lists the experiments gated by committed golden tables:
// every fully deterministic one, E1-E12 complete. E5 — long excluded
// because its detector-border sweep once explored ~80000 configurations per
// impossible (n, k) cell — joined the gate when the engine speedups of the
// fingerprint/parallel/symmetry PRs brought the full default grid (n = 5-6)
// near 100ms, cheaper than several rows the gate already ran; no grid
// reduction was needed. E13 is deterministic too but explores ~1.8M
// configurations across its three rows (minutes of wall clock), so the
// nightly workflow exercises it instead; its bounded-vs-in-memory parity is
// already pinned at test scale by internal/explore/bounded_test.go. E14
// (fault models) joined the gate immediately: its eight rows complete in
// milliseconds and its visited counts pin the exact branching the omission
// and Byzantine adversaries add to the search space. E15 (sharded
// exploration) likewise: millisecond-scale searches whose rows are the
// bit-identity of sharded and plain verdicts, visited counts, and level
// profiles.
// Regenerate the files with:
//
//	go run ./cmd/experiments -write-golden testdata/golden E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 E11 E12 E14 E15
var goldenExperiments = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E14", "E15"}

// TestGoldenTables regenerates each gated experiment table and diffs it
// against the committed golden file. The tables are deterministic at any
// sweep or search worker count, so a mismatch means an intended
// output change (refresh the golden files) or a real regression.
func TestGoldenTables(t *testing.T) {
	byID := map[string]Experiment{}
	for _, e := range Experiments() {
		byID[e.ID] = e
	}
	for _, id := range goldenExperiments {
		exp, ok := byID[id]
		if !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id == "E4" {
				t.Skip("E4 (randomized-digraph sweep) skipped in -short mode")
			}
			wantBytes, err := os.ReadFile(filepath.Join("testdata", "golden", id+".txt"))
			if err != nil {
				t.Fatalf("golden file missing (regenerate with cmd/experiments -write-golden): %v", err)
			}
			tab, err := exp.Run()
			if err != nil {
				t.Fatal(err)
			}
			got, want := tab.String(), string(wantBytes)
			if got != want {
				t.Fatalf("table diverged from golden:\n%s", firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first differing line of two table dumps.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
	return "(no line diff; check trailing whitespace)"
}
