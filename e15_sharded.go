package kset

import (
	"context"
	"fmt"
	"strings"

	"kset/internal/algorithms"
	"kset/internal/explore"
)

// E15Params parameterizes the sharded-exploration experiment: small
// consensus-failure searches run plain and then sharded across in-process
// worker explorers, with every result asserted bit-identical.
type E15Params struct {
	// MaxConfigs bounds the truncation row's search; BlockingMaxConfigs
	// bounds the blocking row's (large enough to reach its witness, small
	// enough to keep the golden gate at milliseconds — the full FLPKSet
	// space costs seconds per sweep cell).
	MaxConfigs         int
	BlockingMaxConfigs int
	// Shards lists the shard counts swept per instance.
	Shards []int
	// Search supplies the base search configuration; nil means default
	// options. E15 derives from it:
	// Checkpoint is stripped (sharded searches do not checkpoint) and an
	// in-memory store is promoted to "frontier" so the plain baseline
	// reports the same per-level profile the sharded coordinator does.
	Search *Searcher
}

// DefaultE15Params returns the instance used by cmd/experiments: shard
// counts {1, 2, 4} over millisecond-scale searches.
func DefaultE15Params() E15Params {
	return E15Params{MaxConfigs: 100, BlockingMaxConfigs: 500, Shards: []int{1, 2, 4}}
}

// e15Instance is one searched system of the E15 sweep.
type e15Instance struct {
	label      string
	req        SearchRequest
	maxConfigs int
}

// ExperimentShardedExploration (E15) exercises the multi-process sharding
// substrate's core invariant in-process: partitioning the fingerprint space
// across N worker explorers (explore.ShardOwner, level-synchronous frontier
// exchange) changes how the search is executed, never what it computes. Each
// instance runs the plain FindConsensusFailure once, then
// FindConsensusFailureSharded at every shard count; outcome, witness
// detail, visited count, and per-level profile must match bit for bit —
// covering a disagreement witness, a blocking witness, and a mid-level
// truncation. The multi-process form of the same guarantee (worker
// processes exchanging frontiers with a coordinator over localhost HTTP
// behind `-shards N`) is exercised by the process tests in
// internal/service and the CI sharded smoke, which diff the full verdict
// JSON across shard counts.
func ExperimentShardedExploration(p E15Params) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Sharded exploration: bit-identical verdicts at every shard count",
		Columns: []string{
			"instance", "mode", "outcome", "visited", "profile", "match",
		},
		Notes: []string{
			"mode plain is the single-explorer FindConsensusFailure baseline; shards=N partitions the",
			"fingerprint space across N worker explorers with level-synchronous frontier exchange;",
			"profile is the cumulative visited count at each sealed BFS level; every sharded row is",
			"asserted bit-identical to its plain baseline (outcome, detail, visited, profile)",
		},
	}

	base := orDefault(p.Search).Options()
	base.Checkpoint = ""
	if base.Store == "" || base.Store == "inmem" {
		base.Store = "frontier"
	}
	search, err := NewSearcher(base)
	if err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}

	instances := []e15Instance{
		{
			label: "minwait(1) n=3 budget=1",
			req: SearchRequest{
				Alg:         algorithms.MinWait{F: 1},
				Inputs:      DistinctInputs(3),
				Live:        []ProcessID{1, 2, 3},
				CrashBudget: 1,
			},
		},
		{
			label: fmt.Sprintf("flpkset(1) n=3 budget=0 max=%d", p.BlockingMaxConfigs),
			req: SearchRequest{
				Alg:    algorithms.FLPKSet{F: 1},
				Inputs: DistinctInputs(3),
				Live:   []ProcessID{1, 2, 3},
			},
			maxConfigs: p.BlockingMaxConfigs,
		},
		{
			label: fmt.Sprintf("flpkset(1) n=3 budget=0 max=%d", p.MaxConfigs),
			req: SearchRequest{
				Alg:    algorithms.FLPKSet{F: 1},
				Inputs: DistinctInputs(3),
				Live:   []ProcessID{1, 2, 3},
			},
			maxConfigs: p.MaxConfigs,
		},
	}

	type outcome struct {
		kind, detail, profile string
		found                 bool
		visited               int
	}
	describe := func(w *explore.Witness, found bool, profile []int) outcome {
		o := outcome{found: found, visited: w.Stats.Visited, profile: e15Profile(profile)}
		if found {
			o.kind, o.detail = w.Kind, w.Detail
		} else if w.Stats.Truncated {
			o.kind = "truncated"
		} else {
			o.kind = "no witness"
		}
		return o
	}

	for _, inst := range instances {
		req := inst.req
		req.MaxConfigs = inst.maxConfigs
		var profile []int
		req.OnProgress = func(visited, level int) { profile = append(profile, visited) }
		w, found, err := search.FindConsensusFailure(context.Background(), req)
		if err != nil {
			return nil, fmt.Errorf("E15: %s: %w", inst.label, err)
		}
		want := describe(w, found, profile)
		t.AddRow(inst.label, "plain", want.kind, want.visited, want.profile, "baseline")

		for _, shards := range p.Shards {
			profile = nil
			w, found, err := search.FindConsensusFailureSharded(context.Background(), req, shards)
			if err != nil {
				return nil, fmt.Errorf("E15: %s shards=%d: %w", inst.label, shards, err)
			}
			got := describe(w, found, profile)
			if got != want {
				return nil, fmt.Errorf("E15: %s shards=%d diverged: %+v vs plain %+v",
					inst.label, shards, got, want)
			}
			t.AddRow(inst.label, fmt.Sprintf("shards=%d", shards), got.kind, got.visited, got.profile, "ok")
		}
	}
	return t, nil
}

// e15Profile renders a per-level visited profile for the golden table.
func e15Profile(profile []int) string {
	if len(profile) == 0 {
		return "-"
	}
	parts := make([]string, len(profile))
	for i, v := range profile {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}
