package kset_test

import (
	"context"
	"fmt"

	"kset"
)

// ExampleSimulate runs the Section VI initial-crash protocol to decision.
func ExampleSimulate() {
	run, err := kset.Simulate(kset.NewFLPKSet(3), kset.DistinctInputs(6), kset.SimOptions{
		InitialDead: []kset.ProcessID{2, 5},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct decisions:", len(run.DistinctDecisions()))
	fmt.Println("blocked:", len(run.Blocked))
	// Output:
	// distinct decisions: 1
	// blocked: 0
}

// ExampleSimulate_partition shows the partition adversary driving the
// protocol to its k-agreement bound.
func ExampleSimulate_partition() {
	run, err := kset.Simulate(kset.NewFLPKSet(3), kset.DistinctInputs(6), kset.SimOptions{
		Partition: [][]kset.ProcessID{{1, 2, 3}, {4, 5, 6}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct decisions:", len(run.DistinctDecisions()))
	// Output:
	// distinct decisions: 2
}

// ExampleCheckImpossibility vets a flawed candidate with the Theorem 1
// engine: MinWait with f = 3 crashes cannot solve 2-set agreement for
// n = 5 (Theorem 2: k <= (n-1)/(n-f) = 2), and the engine constructs the
// violating run.
func ExampleCheckImpossibility() {
	spec, err := kset.Theorem2Partition(5, 3, 2)
	if err != nil {
		panic(err)
	}
	rep, err := kset.CheckImpossibility(kset.ImpossibilityInstance{
		Alg:             kset.NewMinWait(3),
		Inputs:          kset.DistinctInputs(5),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("refuted:", rep.Refuted)
	fmt.Println("violation:", rep.Violation)
	fmt.Println("decisions in witness run:", len(rep.DistinctDecided))
	// Output:
	// refuted: true
	// violation: k-agreement
	// decisions in witness run: 3
}

// ExampleSearcher_Theorem10Construction reproduces the failure-detector
// impossibility: (Sigma_2, Omega_2) cannot solve 2-set agreement for n = 5.
func ExampleSearcher_Theorem10Construction() {
	s, err := kset.NewSearcher(kset.Options{})
	if err != nil {
		panic(err)
	}
	rep, merged, err := s.Theorem10Construction(context.Background(), 5, 2, 80000)
	if err != nil {
		panic(err)
	}
	fmt.Println("refuted:", rep.Refuted)
	fmt.Println("merged partitions decided:", len(merged.Distinct))
	// Output:
	// refuted: true
	// merged partitions decided: 2
}
