package kset

import (
	"fmt"
	"math/rand"

	"kset/internal/algorithms"
	"kset/internal/core"
)

// E2Params parameterizes the Theorem 8 possibility sweep.
type E2Params struct {
	MinN, MaxN int
	// TrialsPerPoint is the number of random initial-crash patterns tried
	// per (n, f).
	TrialsPerPoint int
	// Seed feeds the crash-pattern generator.
	Seed int64
}

// DefaultE2Params returns the sweep used by cmd/experiments and benchmarks.
func DefaultE2Params() E2Params {
	return E2Params{MinN: 3, MaxN: 8, TrialsPerPoint: 5, Seed: 1}
}

// ExperimentInitialCrashPossibility sweeps the solvable region of Theorem 8
// (kn > (k+1)f with k = floor(n/L), L = n-f): for each point, the
// generalized FLP protocol of Section VI runs against random initial-crash
// patterns of size f under a fair schedule; every correct process must
// decide and at most k distinct values may appear.
func ExperimentInitialCrashPossibility(p E2Params) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 8 possibility: FLP-style k-set agreement with f initial crashes (L = n-f)",
		Columns: []string{
			"n", "f", "L", "k=floor(n/L)", "trials", "max distinct", "partitioned distinct", "all decided", "ok",
		},
		Notes: []string{
			"covers every (n, f) in range with kn > (k+1)f, i.e. the paper's solvable region",
			"'partitioned distinct' is the decision count when the adversary isolates floor(n/L) groups — the runs that make the bound floor(n/L) tight",
		},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for n := p.MinN; n <= p.MaxN; n++ {
		for f := 0; f < n; f++ {
			l := n - f
			k := n / l
			if k*n <= (k+1)*f {
				continue
			}
			maxDistinct := 0
			allDecided := true
			for trial := 0; trial < p.TrialsPerPoint; trial++ {
				var dead []ProcessID
				perm := rng.Perm(n)
				for i := 0; i < f; i++ {
					dead = append(dead, ProcessID(perm[i]+1))
				}
				run, err := Simulate(algorithms.FLPKSet{F: f}, DistinctInputs(n), SimOptions{InitialDead: dead})
				if err != nil {
					return nil, fmt.Errorf("E2: n=%d f=%d trial=%d: %w", n, f, trial, err)
				}
				if len(run.Blocked) > 0 {
					allDecided = false
				}
				if d := len(run.DistinctDecisions()); d > maxDistinct {
					maxDistinct = d
				}
			}
			// Adversarial partition run: isolate k groups of size >= L
			// (failure-free), which drives the decision count to exactly k.
			partDistinct := "-"
			if k >= 2 {
				groups := make([][]ProcessID, k)
				next := 1
				for gi := 0; gi < k; gi++ {
					size := n / k
					if gi < n%k {
						size++
					}
					for j := 0; j < size; j++ {
						groups[gi] = append(groups[gi], ProcessID(next))
						next++
					}
				}
				prun, err := Simulate(algorithms.FLPKSet{F: f}, DistinctInputs(n), SimOptions{Partition: groups})
				if err != nil {
					return nil, fmt.Errorf("E2: partitioned n=%d f=%d: %w", n, f, err)
				}
				partDistinct = fmt.Sprintf("%d", len(prun.DistinctDecisions()))
				if d := len(prun.DistinctDecisions()); d > maxDistinct {
					maxDistinct = d
				}
			}
			ok := allDecided && maxDistinct <= k
			t.AddRow(n, f, l, k, p.TrialsPerPoint, maxDistinct, partDistinct, allDecided, ok)
		}
	}
	return t, nil
}

// ExperimentBorderImpossibility reproduces the border case of Theorem 8
// (kn = (k+1)f): the system splits into k+1 groups of n-f processes, each
// decides its own value in a solo run, and the merged run — which is
// indistinguishable (until decision) from the solo runs for every group —
// carries k+1 > k distinct decisions.
func ExperimentBorderImpossibility() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Theorem 8 border (kn = (k+1)f): the k+1-partition argument",
		Columns: []string{
			"n", "f", "k", "groups", "distinct in merged run", "indistinguishable", "violates k-agreement",
		},
	}
	cases := []struct{ n, f, k int }{
		{2, 1, 1},
		{4, 2, 1},
		{6, 3, 1},
		{3, 2, 2},
		{6, 4, 2},
		{4, 3, 3},
		{8, 6, 3},
		{5, 4, 4},
	}
	for _, c := range cases {
		groups, err := core.BorderPartition(c.n, c.f, c.k)
		if err != nil {
			return nil, fmt.Errorf("E3: partition n=%d f=%d k=%d: %w", c.n, c.f, c.k, err)
		}
		rep, err := core.BuildMergedGroupsRun(algorithms.FLPKSet{F: c.f}, DistinctInputs(c.n), groups, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("E3: merged run n=%d f=%d k=%d: %w", c.n, c.f, c.k, err)
		}
		violates := len(rep.Distinct) > c.k
		t.AddRow(c.n, c.f, c.k, len(groups), len(rep.Distinct), rep.IndistinguishableOK, violates)
	}
	return t, nil
}

// MergedBorderRun exposes the E3 construction for one parameter point,
// returning the merged run (used by examples and tests).
func MergedBorderRun(n, f, k int) (*core.MergedGroupsReport, error) {
	groups, err := core.BorderPartition(n, f, k)
	if err != nil {
		return nil, err
	}
	return core.BuildMergedGroupsRun(algorithms.FLPKSet{F: f}, DistinctInputs(n), groups, nil, 0)
}
