package core

import (
	"errors"
	"fmt"

	"kset/internal/explore"
	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

// buildPastedRun constructs the run beta' of Lemma 11 for the Theorem 1
// pipeline: starting from the initial configuration of the *full* system,
//
//  1. each decider group D_i executes exactly its solo-run schedule, with
//     all cross-group messages withheld and the group's recorded
//     failure-detector values replayed, so D_i's processes move through the
//     same state sequence as in alpha_i;
//  2. then D-bar executes the subsystem witness schedule step by step, with
//     deliveries matched by message content among intra-D-bar messages and
//     the witness's recorded detector values presented verbatim.
//
// The result is one admissible full-system run in which the k-1 groups have
// decided k-1 distinct values and D-bar exhibits the consensus failure.
func buildPastedRun(inst Instance, soloRuns []*sim.Run, witness *explore.Witness) (*sim.Run, error) {
	cfg := sim.NewConfiguration(inst.Alg, inst.Inputs)
	combined := &sim.Run{
		Algorithm: inst.Alg.Name(),
		Inputs:    append([]sim.Value(nil), inst.Inputs...),
		Final:     cfg,
	}
	gate := sched.IntraGroupGate(inst.Spec.AllGroups())

	for i, g := range inst.Spec.Groups {
		s := &sched.Fair{
			Only:   g,
			Gate:   gate,
			Oracle: fd.ReplayFromRun(soloRuns[i]),
			Stop:   sched.SetDecided(g),
		}
		phase, err := sim.Continue(inst.Alg.Name(), inst.Inputs, cfg, s, sim.Options{MaxSteps: inst.MaxSteps})
		if err != nil && !errors.Is(err, sim.ErrHorizon) {
			return nil, fmt.Errorf("phase D_%d: %w", i+1, err)
		}
		if err != nil {
			return nil, fmt.Errorf("phase D_%d did not reach its solo decisions: %w", i+1, err)
		}
		combined.Events = append(combined.Events, phase.Events...)
	}

	if err := replayWitnessPhase(combined, cfg, inst.Spec.DBar(), witness.Run); err != nil {
		return nil, err
	}

	var blocked []sim.ProcessID
	for _, p := range cfg.ProcessIDs() {
		if _, decided := cfg.Decision(p); !decided && !cfg.Crashed(p) {
			blocked = append(blocked, p)
		}
	}
	combined.Blocked = blocked
	return combined, nil
}

// replayWitnessPhase re-executes the D-bar witness schedule on the combined
// configuration. Deliveries are matched by content: the witness's delivered
// messages are located among the pending intra-D-bar messages of the
// combined configuration (cross-partition messages stay withheld, which is
// exactly property (dec-D-bar)).
func replayWitnessPhase(combined *sim.Run, cfg *sim.Configuration, dbar []sim.ProcessID, wrun *sim.Run) error {
	member := make(map[sim.ProcessID]bool, len(dbar))
	for _, p := range dbar {
		member[p] = true
	}
	for _, ev := range wrun.Events {
		if ev.Silent {
			// Initial deaths of Pi \ D-bar in the restricted witness; the
			// combined run keeps those processes alive (they already ran).
			continue
		}
		if !member[ev.Proc] {
			return fmt.Errorf("witness schedules non-D-bar process %d", ev.Proc)
		}
		req := sim.StepRequest{Proc: ev.Proc, Crash: ev.Crashed, FD: ev.FD}
		switch ev.Fault {
		// Fault steps replay as fault steps: the witness's omissions and
		// corruptions are part of the adversary's schedule, and the StateKey
		// check below confirms the pasted process evolves identically.
		case sim.FaultSendOmission:
			req.OmitSends = true
		case sim.FaultReceiveOmission:
			req.DropDeliver = true
		case sim.FaultByzantine:
			req.Corrupt = true
		}
		if ev.Crashed && len(ev.Sent) == 0 {
			// The witness's crash step sent nothing: replay it with
			// omit-all, which is identical whether the witness omitted its
			// sends (MASYNC clause (2)) or simply had nothing to send.
			req.OmitTo = make(map[sim.ProcessID]bool, cfg.N())
			for _, q := range cfg.ProcessIDs() {
				req.OmitTo[q] = true
			}
		}
		deliver, err := matchDeliveries(cfg, ev.Proc, ev.Delivered, member)
		if err != nil {
			return err
		}
		req.Deliver = deliver
		applied, err := cfg.Apply(req)
		if err != nil {
			return fmt.Errorf("replaying witness step at t=%d: %w", cfg.Time(), err)
		}
		if applied.StateKey != ev.StateKey {
			return fmt.Errorf("pasting diverged for process %d: state %q != witness %q", ev.Proc, applied.StateKey, ev.StateKey)
		}
		combined.Events = append(combined.Events, applied)
	}
	return nil
}

// matchDeliveries finds, among the pending intra-D-bar messages of p in
// cfg, messages whose content matches the witness's delivered messages, in
// order. Determinism of the state machines guarantees a content match
// exists when the pasted prefix is faithful.
func matchDeliveries(cfg *sim.Configuration, p sim.ProcessID, want []sim.Message, member map[sim.ProcessID]bool) ([]int64, error) {
	if len(want) == 0 {
		return nil, nil
	}
	// Matching only reads the pending messages, so the non-copying view
	// suffices; the collected ids are consumed before cfg is stepped.
	buf := cfg.BufferView(p)
	used := make(map[int64]bool, len(want))
	out := make([]int64, 0, len(want))
	for _, w := range want {
		found := false
		for _, m := range buf {
			if used[m.ID] || !member[m.From] {
				continue
			}
			if m.Key() == w.Key() {
				used[m.ID] = true
				out = append(out, m.ID)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("no pending message matching %q for process %d (pasting out of sync)", w.Key(), p)
		}
	}
	return out, nil
}

// MergedGroupsReport is the outcome of BuildMergedGroupsRun.
type MergedGroupsReport struct {
	SoloRuns []*sim.Run
	Merged   *sim.Run
	Distinct []sim.Value
	// IndistinguishableOK confirms every group's processes observed the
	// same states in the merged run as in their solo run (Definition 2).
	IndistinguishableOK bool
}

// BuildMergedGroupsRun realizes the k+1-partition argument of Section VI's
// border case and Lemma 12's run alpha: every group executes its solo
// schedule inside one full-system configuration, with all cross-group
// communication delayed. Each group therefore decides exactly as when the
// others are initially dead, and the merged failure-free run collects one
// decision value per group.
func BuildMergedGroupsRun(alg sim.Algorithm, inputs []sim.Value, groups [][]sim.ProcessID, oracle func(i int, g []sim.ProcessID) sched.Oracle, maxSteps int) (*MergedGroupsReport, error) {
	n := len(inputs)
	rep := &MergedGroupsReport{}

	for i, g := range groups {
		var o sched.Oracle
		if oracle != nil {
			o = oracle(i, g)
		}
		run, err := sim.Execute(alg, inputs, sched.Solo(n, g, o), sim.Options{MaxSteps: maxSteps})
		if err != nil {
			return nil, fmt.Errorf("core: solo run of group %d: %w", i+1, err)
		}
		if !run.Final.AllDecided(g) {
			return nil, fmt.Errorf("core: group %d did not decide in isolation", i+1)
		}
		rep.SoloRuns = append(rep.SoloRuns, run)
	}

	cfg := sim.NewConfiguration(alg, inputs)
	merged := &sim.Run{Algorithm: alg.Name(), Inputs: append([]sim.Value(nil), inputs...), Final: cfg}
	gate := sched.IntraGroupGate(groups)
	for i, g := range groups {
		s := &sched.Fair{
			Only:   g,
			Gate:   gate,
			Oracle: fd.ReplayFromRun(rep.SoloRuns[i]),
			Stop:   sched.SetDecided(g),
		}
		phase, err := sim.Continue(alg.Name(), inputs, cfg, s, sim.Options{MaxSteps: maxSteps})
		if err != nil {
			return nil, fmt.Errorf("core: merged phase %d: %w", i+1, err)
		}
		merged.Events = append(merged.Events, phase.Events...)
	}
	rep.Merged = merged
	rep.Distinct = cfg.DistinctDecisions()

	rep.IndistinguishableOK = true
	for i, g := range groups {
		if !sim.IndistinguishableForAll(rep.SoloRuns[i], merged, g) {
			rep.IndistinguishableOK = false
		}
	}
	return rep, nil
}
