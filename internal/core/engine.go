package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"kset/internal/explore"
	"kset/internal/sched"
	"kset/internal/sim"
)

// Status reports the outcome of checking one of Theorem 1's conditions on a
// concrete algorithm.
type Status int

// Condition outcomes.
const (
	// StatusUnchecked means the pipeline did not reach the condition.
	StatusUnchecked Status = iota
	// StatusSatisfied means the condition's witness was constructed and
	// machine-checked.
	StatusSatisfied
	// StatusFailed means the condition could not be established for this
	// algorithm (for condition (A) this is the expected outcome for a
	// correct algorithm: isolated partitions refuse to decide).
	StatusFailed
	// StatusInconclusive means a bounded search ended without a witness but
	// without exhausting the space.
	StatusInconclusive
)

func (s Status) String() string {
	switch s {
	case StatusSatisfied:
		return "satisfied"
	case StatusFailed:
		return "failed"
	case StatusInconclusive:
		return "inconclusive"
	default:
		return "unchecked"
	}
}

// Instance describes one application of the Theorem 1 engine: the algorithm
// under test, the proposal vector (distinct values, as the theorem
// requires), the partition, and the model plumbing.
type Instance struct {
	Alg    sim.Algorithm
	Inputs []sim.Value
	Spec   PartitionSpec

	// SoloOracle, when non-nil, supplies the failure-detector oracle for the
	// solo run of group index i (0-based; len(Spec.Groups) is not passed —
	// solo runs exist only for the decider groups). Nil for detector-free
	// models.
	SoloOracle func(i int, group []sim.ProcessID) sched.Oracle

	// DBarCrashBudget is the number of crashes the adversary may use inside
	// the subsystem <D-bar> (condition (C)): 1 for Theorem 2's model,
	// |D-bar|-1 for the wait-free setting of Theorem 10.
	DBarCrashBudget int

	// DBarOracle, when non-nil, supplies detector values to the restricted
	// algorithm during the subsystem exploration.
	DBarOracle sched.Oracle

	// Faults selects the fault model of the condition-(C) adversary beyond
	// crashes, in explore.ParseFaults form: "" or "crash" for the crash-only
	// engine, or "model[:budget[:maxfaulty]]" with model send-omission,
	// receive-omission, or byzantine (e.g. "send-omission:1:1"). Witness
	// replay reproduces fault steps exactly, so conditions (B)/(D) still
	// verify on the pasted run.
	Faults string

	// MaxSteps bounds each constructed run; MaxConfigs bounds the subsystem
	// exploration. Zero means package defaults.
	MaxSteps   int
	MaxConfigs int

	// SearchStrategy selects the subsystem exploration order: "dfs" (the
	// default — it dives to complete executions, which finds witnesses in
	// subsystems whose breadth drowns BFS) or "bfs" (shortest witnesses).
	SearchStrategy string
	// SearchWorkers caps the goroutines of the condition-(C) exploration
	// (0 = GOMAXPROCS, 1 = sequential). Only breadth-first searches
	// parallelize — DFS order is inherently serial — so this takes effect
	// with SearchStrategy "bfs". A DBarOracle queried from a parallel
	// search must be pure and safe for concurrent use.
	SearchWorkers int

	// Symmetry enables orbit-canonical revisit detection in the
	// condition-(C) exploration: configurations that are renamings of each
	// other under process permutations preserving the proposal assignment
	// and the D-bar membership are explored once (explore.Options.Symmetry).
	// Note that Theorem 1 instances propose distinct values, so the
	// stabilizer is trivial and the knob changes nothing there; it pays off
	// for uniform- or block-input vetting searches. A DBarOracle must be
	// symmetric under the same renamings.
	Symmetry bool

	// SearchStore selects the memory regime of the condition-(C)
	// exploration: "" or "inmem" for the default arena-backed engine,
	// "frontier" to retain only the compact fingerprint visited set plus the
	// current and next BFS levels (witnesses reconstruct by bounded
	// re-search), "spill" to additionally stream sealed levels to disk. The
	// bounded stores apply to breadth-first searches in full and to DFS as a
	// cons-list-path engine; results are bit-identical to the in-memory
	// engine in every mode (see explore.Options.Store).
	SearchStore string

	// SearchPacked selects the configuration engine of the condition-(C)
	// exploration in explore.ParsePacked form: "" or "off" for the pointer
	// engine, "on"/"auto" for the packed struct-of-arrays engine with
	// silent fallback where unsupported (explore.Options.Packed). Like
	// SearchWorkers and SearchStore it is excluded from InstanceDigest —
	// verdicts are bit-identical across engines.
	SearchPacked string

	// Checkpoint, when non-empty, names a directory in which truncated
	// bounded breadth-first condition-(C) searches persist their paused
	// state and from which a later run of the same instance resumes;
	// requires a bounded SearchStore and SearchStrategy "bfs" (see
	// explore.Options.Checkpoint).
	Checkpoint string

	// Ctx, when non-nil, cancels the condition-(C) exploration
	// cooperatively: a cancelled search stops at the next poll point with
	// its truncation flag set (explore.Options.Context), so the report comes
	// back inconclusive rather than erroring, and — with Checkpoint set — the
	// paused state is persisted for a later resume. The solo runs and the
	// pasting of conditions (A)/(B)/(D) are not interruptible; they are
	// cheap deterministic replays.
	Ctx context.Context

	// OnSearchProgress, when non-nil, receives periodic progress from the
	// condition-(C) exploration (explore.Options.OnProgress): the cumulative
	// visited count and the sealed BFS level, or level -1 from engines that
	// do not track depth. Called from the search goroutine; must be fast.
	OnSearchProgress func(visited, level int)

	// OnSnapshotError, when non-nil, is notified once if the condition-(C)
	// exploration's best-effort level-boundary checkpoint snapshots start
	// failing (explore.Options.OnSnapshotError): the verdict is unaffected
	// but crash durability degraded. CondCStats.SnapshotFailed records the
	// same fact on the report.
	OnSnapshotError func(error)

	// POR enables commutativity-based partial-order reduction in the
	// condition-(C) exploration (explore.Options.POR): once every live
	// process of <D-bar> has provably finished sending, redundant
	// interleavings of commuting steps are pruned while disagreement,
	// blocking, and valence verdicts — and the crash budget's reach — are
	// preserved exactly. A full, sound no-op when a DBarOracle is set
	// (detector values may observe the reordered time and crash flags); for
	// algorithms without sim.SendQuiescent the pruning stands down while
	// the sound inert-crashed-slot key collapsing remains. Composes with
	// Symmetry.
	POR bool
}

// Report is the outcome of the pipeline: which conditions were established,
// the constructed runs, and the final verdict.
type Report struct {
	Spec PartitionSpec

	// Condition (A): solo runs of the decider groups.
	CondA       Status
	CondADetail string
	SoloRuns    []*sim.Run
	// GroupDecisions[i] lists the distinct decisions of group i's solo run.
	GroupDecisions [][]sim.Value

	// Condition (C): consensus failure in <D-bar>.
	CondC       Status
	CondCDetail string
	DBarWitness *explore.Witness

	// CondCStats aggregates the condition-(C) exploration effort across the
	// disagreement and blocking searches: Visited sums, the flags are sticky.
	// Populated even when no witness is found, so callers can report search
	// effort and cancellation for inconclusive verdicts.
	CondCStats explore.Stats

	// Conditions (B) and (D): machine-checked indistinguishability between
	// the pasted run and the solo/witness runs.
	CondB Status
	CondD Status

	// The combined full-system run and its decision census.
	Pasted          *sim.Run
	DistinctDecided []sim.Value
	BlockedInPasted []sim.ProcessID

	// Refuted is true when a full-system violation run was constructed.
	Refuted   bool
	Violation string // "k-agreement" or "termination" when refuted
}

// Summary renders a human-readable verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition: %d groups + D-bar %v; ", len(r.Spec.Groups), r.Spec.DBar())
	fmt.Fprintf(&b, "(A)=%s (B)=%s (C)=%s (D)=%s; ", r.CondA, r.CondB, r.CondC, r.CondD)
	if r.Refuted {
		fmt.Fprintf(&b, "REFUTED: %s violation", r.Violation)
		if r.Violation == "k-agreement" {
			fmt.Fprintf(&b, " (%d distinct decisions > k=%d)", len(r.DistinctDecided), r.Spec.K)
		}
	} else {
		b.WriteString("not refuted")
		if r.CondADetail != "" {
			fmt.Fprintf(&b, " — %s", r.CondADetail)
		}
		if r.CondCDetail != "" {
			fmt.Fprintf(&b, " — %s", r.CondCDetail)
		}
	}
	return b.String()
}

// CheckImpossibility runs the full Theorem 1 pipeline on the instance. The
// returned report is never nil; err is reserved for mechanical failures
// (illegal instance), not for "the algorithm survived vetting".
func CheckImpossibility(inst Instance) (*Report, error) {
	if len(inst.Inputs) != inst.Spec.N {
		return nil, fmt.Errorf("core: %d inputs for %d processes", len(inst.Inputs), inst.Spec.N)
	}
	if err := requireDistinct(inst.Inputs); err != nil {
		return nil, err
	}
	r := &Report{Spec: inst.Spec}

	// --- Condition (A): solo runs of each decider group. ---
	inputOf := func(p sim.ProcessID) sim.Value { return inst.Inputs[p-1] }
	for i, g := range inst.Spec.Groups {
		var oracle sched.Oracle
		if inst.SoloOracle != nil {
			oracle = inst.SoloOracle(i, g)
		}
		run, err := sim.Execute(inst.Alg, inst.Inputs, sched.Solo(inst.Spec.N, g, oracle), sim.Options{MaxSteps: inst.MaxSteps})
		if err != nil && !errors.Is(err, sim.ErrHorizon) {
			return nil, fmt.Errorf("core: solo run of D_%d: %w", i+1, err)
		}
		r.SoloRuns = append(r.SoloRuns, run)
		if err != nil || !run.Final.AllDecided(g) {
			r.CondA = StatusFailed
			r.CondADetail = fmt.Sprintf("group D_%d %v cannot decide in isolation (condition (A) fails; the partition argument does not apply)", i+1, g)
			return r, nil
		}
		decs := groupDecisions(run, g)
		r.GroupDecisions = append(r.GroupDecisions, decs)
		// Validity within the group: each decision must be a group member's
		// proposal, which also guarantees cross-group distinctness.
		for _, v := range decs {
			ok := false
			for _, p := range g {
				if inputOf(p) == v {
					ok = true
					break
				}
			}
			if !ok {
				r.CondA = StatusFailed
				r.CondADetail = fmt.Sprintf("group D_%d decided %d, not proposed inside the group; distinctness of the v_i is not guaranteed", i+1, v)
				return r, nil
			}
		}
	}
	r.CondA = StatusSatisfied

	// --- Condition (C): consensus failure of A|D-bar in <D-bar>. ---
	ex, err := subsystemExplorer(inst)
	if err != nil {
		return nil, err
	}
	witness, found, err := ex.FindDisagreement()
	if err != nil {
		return nil, fmt.Errorf("core: subsystem disagreement search: %w", err)
	}
	if witness != nil {
		r.CondCStats = witness.Stats
	}
	if !found {
		truncated := witness != nil && witness.Stats.Truncated
		witness, found, err = ex.FindBlocking()
		if err != nil {
			return nil, fmt.Errorf("core: subsystem blocking search: %w", err)
		}
		if witness != nil {
			r.CondCStats.Visited += witness.Stats.Visited
			r.CondCStats.Truncated = r.CondCStats.Truncated || witness.Stats.Truncated
			r.CondCStats.Cancelled = r.CondCStats.Cancelled || witness.Stats.Cancelled
			r.CondCStats.SnapshotFailed = r.CondCStats.SnapshotFailed || witness.Stats.SnapshotFailed
		}
		if !found {
			if truncated || (witness != nil && witness.Stats.Truncated) {
				r.CondC = StatusInconclusive
				if r.CondCStats.Cancelled {
					r.CondCDetail = "bounded subsystem search found no consensus failure (cancelled)"
				} else {
					r.CondCDetail = "bounded subsystem search found no consensus failure (truncated)"
				}
			} else {
				r.CondC = StatusFailed
				r.CondCDetail = "A|D-bar solves consensus in <D-bar> under the explored adversary (condition (C) fails for this algorithm/model)"
			}
			return r, nil
		}
	}
	r.CondC = StatusSatisfied
	r.CondCDetail = witness.Detail
	r.DBarWitness = witness

	// --- Paste everything into one full-system run. ---
	pasted, err := buildPastedRun(inst, r.SoloRuns, witness)
	if err != nil {
		return nil, fmt.Errorf("core: pasting: %w", err)
	}
	r.Pasted = pasted
	r.DistinctDecided = pasted.DistinctDecisions()
	r.BlockedInPasted = pasted.Blocked

	// --- Conditions (B)/(D): machine-check indistinguishability. ---
	r.CondB = StatusSatisfied
	for i, g := range inst.Spec.Groups {
		if !sim.IndistinguishableForAll(r.SoloRuns[i], pasted, g) {
			r.CondB = StatusFailed
			return r, fmt.Errorf("core: pasted run distinguishable from solo run for D_%d", i+1)
		}
	}
	r.CondD = StatusSatisfied
	if !sim.IndistinguishableForAll(witness.Run, pasted, inst.Spec.DBar()) {
		r.CondD = StatusFailed
		return r, fmt.Errorf("core: pasted run distinguishable from subsystem witness for D-bar")
	}

	// --- Verdict. ---
	switch witness.Kind {
	case "disagreement":
		if len(r.DistinctDecided) > inst.Spec.K {
			r.Refuted = true
			r.Violation = "k-agreement"
		}
	case "blocking":
		if len(r.BlockedInPasted) > 0 {
			r.Refuted = true
			r.Violation = "termination"
		}
	}
	if !r.Refuted {
		r.CondCDetail += " (pasted run did not exceed k decisions; report inspected manually)"
	}
	return r, nil
}

// subsystemExplorer validates the instance's search knobs and builds the
// condition-(C) explorer over <D-bar>: the single construction point shared
// by CheckImpossibility and InstanceDigest, so the content address always
// reflects exactly the search the engine would run.
func subsystemExplorer(inst Instance) (*explore.Explorer, error) {
	dbar := inst.Spec.DBar()
	restricted := sim.Restrict(inst.Alg, dbar)
	// DFS (the default) dives to complete executions first, which finds
	// disagreement and blocking witnesses in subsystems too large for
	// breadth-first search; BFS instances fan the frontier out over
	// SearchWorkers goroutines with sequential-identical results.
	strategy := inst.SearchStrategy
	switch strategy {
	case "":
		strategy = "dfs"
	case "dfs", "bfs":
	default:
		// explore treats every string other than "dfs" as BFS, so a typo'd
		// "dfs" would silently run a search order that drowns in breadth and
		// reports "not refuted" where DFS refutes. Reject it here instead.
		return nil, fmt.Errorf("core: unknown SearchStrategy %q (want \"dfs\" or \"bfs\")", inst.SearchStrategy)
	}
	store, err := explore.ParseStore(inst.SearchStore)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	faults, err := explore.ParseFaults(inst.Faults)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	packed, err := explore.ParsePacked(inst.SearchPacked)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return explore.New(restricted, inst.Inputs, explore.Options{
		Live:            dbar,
		MaxCrashes:      inst.DBarCrashBudget,
		MaxConfigs:      inst.MaxConfigs,
		Oracle:          inst.DBarOracle,
		Faults:          faults,
		Strategy:        strategy,
		Workers:         inst.SearchWorkers,
		Symmetry:        inst.Symmetry,
		POR:             inst.POR,
		Store:           store,
		Packed:          packed,
		Checkpoint:      inst.Checkpoint,
		Context:         inst.Ctx,
		OnProgress:      inst.OnSearchProgress,
		OnSnapshotError: inst.OnSnapshotError,
	}), nil
}

// InstanceDigest computes the content address of an instance's verdict: a
// fingerprint of everything that determines CheckImpossibility's result.
// It folds together the explorer's per-goal search digests (algorithm,
// inputs, live set, crash budget, reductions, fault model — see
// explore.(*Explorer).Digest) with the partition shape and the
// verdict-relevant bounds. SearchWorkers, SearchStore, and SearchPacked are
// deliberately excluded: results are bit-identical across them. MaxConfigs and the
// strategy are included: a truncated or differently-ordered search can
// produce a different (inconclusive vs refuted) verdict.
func InstanceDigest(inst Instance) (uint64, error) {
	if len(inst.Inputs) != inst.Spec.N {
		return 0, fmt.Errorf("core: %d inputs for %d processes", len(inst.Inputs), inst.Spec.N)
	}
	if err := requireDistinct(inst.Inputs); err != nil {
		return 0, err
	}
	ex, err := subsystemExplorer(inst)
	if err != nil {
		return 0, err
	}
	h := sim.HashSeed()
	h = sim.HashUint(h, ex.Digest("disagreement"))
	h = sim.HashUint(h, ex.Digest("blocking"))
	h = sim.HashUint(h, uint64(inst.Spec.N))
	h = sim.HashUint(h, uint64(inst.Spec.K))
	h = sim.HashUint(h, uint64(len(inst.Spec.Groups)))
	for _, g := range inst.Spec.Groups {
		h = sim.HashUint(h, uint64(len(g)))
		for _, p := range g {
			h = sim.HashUint(h, uint64(p))
		}
	}
	h = sim.HashUint(h, uint64(inst.MaxSteps))
	h = sim.HashUint(h, uint64(inst.MaxConfigs))
	strategy := inst.SearchStrategy
	if strategy == "" {
		strategy = "dfs"
	}
	h = sim.HashString(h, strategy)
	return sim.HashMix(h), nil
}

func requireDistinct(vs []sim.Value) error {
	seen := make(map[sim.Value]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return fmt.Errorf("core: Theorem 1 requires distinct proposal values; %d repeats", v)
		}
		seen[v] = true
	}
	return nil
}

func groupDecisions(run *sim.Run, g []sim.ProcessID) []sim.Value {
	seen := make(map[sim.Value]bool)
	var out []sim.Value
	for _, p := range g {
		if v, ok := run.Final.Decision(p); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
