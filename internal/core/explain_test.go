package core

import (
	"strings"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func TestWriteExplanationRefuted(t *testing.T) {
	spec, err := Theorem2Partition(5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: 3},
		Inputs:          distinctInputs(5),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteExplanation(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Theorem 1 instance: k=2, n=5",
		"condition (A)",
		"condition (C)",
		"conditions (B)/(D)",
		"REFUTED",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestWriteExplanationCondAFailure(t *testing.T) {
	spec, err := NewPartitionSpec(5, 2, [][]sim.ProcessID{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: 1},
		Inputs:          distinctInputs(5),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxSteps:        3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteExplanation(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "not refuted") {
		t.Fatalf("explanation should conclude not refuted:\n%s", out)
	}
	if !strings.Contains(out, "partition argument does not apply") {
		t.Fatalf("explanation missing condition (A) narrative:\n%s", out)
	}
}
