package core

import (
	"fmt"
	"io"
)

// WriteExplanation renders the report as a narrative walk through Theorem
// 1's conditions — what was constructed, what was checked, and how the
// pieces combine into the verdict. It is the -v output of
// cmd/impossibility and a debugging aid when a condition unexpectedly
// fails.
func (r *Report) WriteExplanation(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Theorem 1 instance: k=%d, n=%d\n", r.Spec.K, r.Spec.N); err != nil {
		return err
	}
	for i, g := range r.Spec.Groups {
		if err := p("  D_%d = %v\n", i+1, g); err != nil {
			return err
		}
	}
	if err := p("  D-bar = %v\n\n", r.Spec.DBar()); err != nil {
		return err
	}

	// Condition (A).
	if err := p("condition (A) — runs R(D) where each D_i decides its own value: %s\n", r.CondA); err != nil {
		return err
	}
	if r.CondA == StatusSatisfied {
		for i, decs := range r.GroupDecisions {
			if err := p("  D_%d solo run: %d events, decisions %v\n", i+1, len(r.SoloRuns[i].Events), decs); err != nil {
				return err
			}
		}
	} else if r.CondADetail != "" {
		if err := p("  %s\n", r.CondADetail); err != nil {
			return err
		}
	}
	if r.CondA != StatusSatisfied {
		return p("\nverdict: not refuted — the partition argument does not apply to this algorithm.\n")
	}

	// Condition (C).
	if err := p("\ncondition (C) — consensus failure of A|D-bar in <D-bar>: %s\n", r.CondC); err != nil {
		return err
	}
	if r.DBarWitness != nil {
		if err := p("  witness: %s — %s (%d configurations explored)\n",
			r.DBarWitness.Kind, r.DBarWitness.Detail, r.DBarWitness.Stats.Visited); err != nil {
			return err
		}
	} else if r.CondCDetail != "" {
		if err := p("  %s\n", r.CondCDetail); err != nil {
			return err
		}
	}
	if r.CondC != StatusSatisfied {
		return p("\nverdict: not refuted — no consensus failure was exhibited in the subsystem.\n")
	}

	// Conditions (B)/(D) and the pasted run.
	if err := p("\nconditions (B)/(D) — indistinguishability of the pasted run (Definition 2): (B)=%s (D)=%s\n",
		r.CondB, r.CondD); err != nil {
		return err
	}
	if r.Pasted != nil {
		if err := p("  pasted run: %d events, distinct decisions %v, blocked %v\n",
			len(r.Pasted.Events), r.DistinctDecided, r.BlockedInPasted); err != nil {
			return err
		}
	}

	if r.Refuted {
		switch r.Violation {
		case "k-agreement":
			return p("\nverdict: REFUTED — the pasted run has %d > k = %d distinct decisions.\n",
				len(r.DistinctDecided), r.Spec.K)
		case "termination":
			return p("\nverdict: REFUTED — correct processes %v can never decide in the pasted run.\n",
				r.BlockedInPasted)
		}
	}
	return p("\nverdict: not refuted by this instantiation.\n")
}
