package core

import (
	"strings"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func distinctInputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

func TestNewPartitionSpecValidation(t *testing.T) {
	if _, err := NewPartitionSpec(5, 3, [][]sim.ProcessID{{1}, {1}}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewPartitionSpec(5, 3, [][]sim.ProcessID{{1}}); err == nil {
		t.Error("wrong group count accepted")
	}
	if _, err := NewPartitionSpec(5, 3, [][]sim.ProcessID{{1}, {}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewPartitionSpec(3, 3, [][]sim.ProcessID{{1, 2}, {3}}); err == nil {
		t.Error("empty D-bar accepted")
	}
	if _, err := NewPartitionSpec(3, 2, [][]sim.ProcessID{{9}}); err == nil {
		t.Error("out-of-range id accepted")
	}
	ps, err := NewPartitionSpec(5, 3, [][]sim.ProcessID{{2, 1}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	dbar := ps.DBar()
	if len(dbar) != 2 || dbar[0] != 3 || dbar[1] != 5 {
		t.Fatalf("DBar = %v, want [3 5]", dbar)
	}
	d := ps.D()
	if len(d) != 3 || d[0] != 1 || d[2] != 4 {
		t.Fatalf("D = %v", d)
	}
	if got := len(ps.AllGroups()); got != 3 {
		t.Fatalf("AllGroups = %d, want 3", got)
	}
}

func TestTheorem2PartitionShape(t *testing.T) {
	// n=7, f=4: l=3, bound k <= (7-1)/3 = 2.
	ps, err := Theorem2Partition(7, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Groups) != 1 || len(ps.Groups[0]) != 3 {
		t.Fatalf("groups = %v", ps.Groups)
	}
	if got := len(ps.DBar()); got != 4 {
		t.Fatalf("|D-bar| = %d, want n-f+1 <= 4", got)
	}
	// Lemma 3: |D-bar| >= n-f+1.
	if got := len(ps.DBar()); got < 7-4+1 {
		t.Fatalf("|D-bar| = %d < n-f+1", got)
	}
	if _, err := Theorem2Partition(7, 4, 3); err == nil {
		t.Error("k above the Theorem 2 bound accepted")
	}
	if _, err := Theorem2Partition(4, 4, 1); err == nil {
		t.Error("n-f <= 0 accepted")
	}
}

func TestTheorem10PartitionShape(t *testing.T) {
	ps, err := Theorem10Partition(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	// j = n-k+1 = 5; groups are singletons {6}, {7}.
	if got := len(ps.DBar()); got != 5 {
		t.Fatalf("|D-bar| = %d, want 5", got)
	}
	if len(ps.Groups) != 2 {
		t.Fatalf("groups = %v", ps.Groups)
	}
	for _, g := range ps.Groups {
		if len(g) != 1 {
			t.Fatalf("non-singleton group %v", g)
		}
	}
	if _, err := Theorem10Partition(7, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Theorem10Partition(7, 6); err == nil {
		t.Error("k=n-1 accepted")
	}
}

func TestBorderPartition(t *testing.T) {
	// k=2, n=6, f=4: kn = 12 = (k+1)f. Groups of size 2, three of them.
	groups, err := BorderPartition(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	for _, g := range groups {
		if len(g) != 2 {
			t.Fatalf("group size = %d, want 2", len(g))
		}
	}
	if _, err := BorderPartition(6, 3, 2); err == nil {
		t.Error("non-border parameters accepted")
	}
}

// TestTheorem2RefutesMinWait applies the Theorem 1 pipeline in the Theorem
// 2 setting to the f-resilient MinWait protocol: n=7, f=4, k=2. MinWait
// requires f < k to be correct (here 4 >= 2), and the engine must construct
// the full violation run: D_1 decides its own value in isolation, and
// adversarial delivery makes D-bar split, exceeding k decisions.
func TestTheorem2RefutesMinWait(t *testing.T) {
	n, f, k := 5, 3, 2
	spec, err := Theorem2Partition(n, f, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: f},
		Inputs:          distinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatalf("CheckImpossibility: %v", err)
	}
	if !rep.Refuted {
		t.Fatalf("not refuted: %s", rep.Summary())
	}
	if rep.Violation != "k-agreement" {
		t.Fatalf("violation = %q, want k-agreement", rep.Violation)
	}
	if len(rep.DistinctDecided) <= k {
		t.Fatalf("distinct = %v, want > k", rep.DistinctDecided)
	}
	if rep.CondA != StatusSatisfied || rep.CondB != StatusSatisfied ||
		rep.CondC != StatusSatisfied || rep.CondD != StatusSatisfied {
		t.Fatalf("conditions: %s", rep.Summary())
	}
	// The pasted run must be admissible.
	if vs := sim.CheckAdmissible(rep.Pasted, sim.AdmissibilityOptions{}); len(vs) != 0 {
		t.Fatalf("pasted run inadmissible: %v", vs)
	}
}

// TestTheorem2RefutesFLPKSetWithLateCrash: the paper's Theorem 2 holds
// "even if, of the f possibly faulty processes, f-1 can fail by crashing
// initially and only one process can crash during the execution". The
// initial-crash protocol of Section VI survives the disagreement search
// (its stage-1 graph has one source component in D-bar) but succumbs to the
// single late crash with a Termination violation.
func TestTheorem2RefutesFLPKSetWithLateCrash(t *testing.T) {
	n, f, k := 5, 3, 2
	spec, err := Theorem2Partition(n, f, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.FLPKSet{F: f},
		Inputs:          distinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatalf("CheckImpossibility: %v", err)
	}
	if !rep.Refuted {
		t.Fatalf("not refuted: %s", rep.Summary())
	}
	if rep.Violation != "termination" {
		t.Fatalf("violation = %q, want termination: %s", rep.Violation, rep.Summary())
	}
	if len(rep.BlockedInPasted) == 0 {
		t.Fatal("no blocked process in pasted run")
	}
}

// TestConditionAFailsForConservativeAlgorithm: when the isolated group
// cannot decide (MinWait waiting for more values than the group holds), the
// pipeline must stop at condition (A) and report the algorithm as not
// refutable by this partition — the expected outcome for parameters where
// k-set agreement is solvable.
func TestConditionAFailsForConservativeAlgorithm(t *testing.T) {
	n := 7
	spec, err := NewPartitionSpec(n, 2, [][]sim.ProcessID{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: 1}, // waits for 6 of 7 values
		Inputs:          distinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxSteps:        3000,
	})
	if err != nil {
		t.Fatalf("CheckImpossibility: %v", err)
	}
	if rep.Refuted {
		t.Fatalf("spuriously refuted: %s", rep.Summary())
	}
	if rep.CondA != StatusFailed {
		t.Fatalf("CondA = %s, want failed", rep.CondA)
	}
}

// TestFLPConsensusImpossibilityViaEngine: the k=1 corner of the pipeline is
// exactly the FLP setting — no decider groups, D-bar = Pi, one crash: the
// engine reduces to finding the consensus failure of the algorithm itself.
func TestFLPConsensusImpossibilityViaEngine(t *testing.T) {
	n := 3
	spec, err := NewPartitionSpec(n, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: 1},
		Inputs:          distinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatalf("CheckImpossibility: %v", err)
	}
	if !rep.Refuted {
		t.Fatalf("MinWait{F:1} should be refuted as a consensus algorithm: %s", rep.Summary())
	}
}

// TestTheorem8BorderMergedRun reproduces the k+1-partition argument of
// Section VI: at kn = (k+1)f the system splits into k+1 groups of n-f that
// each decide their own value, so the merged run has k+1 > k distinct
// decisions while being indistinguishable from the solo runs.
func TestTheorem8BorderMergedRun(t *testing.T) {
	n, f, k := 6, 4, 2
	groups, err := BorderPartition(n, f, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildMergedGroupsRun(algorithms.FLPKSet{F: f}, distinctInputs(n), groups, nil, 0)
	if err != nil {
		t.Fatalf("BuildMergedGroupsRun: %v", err)
	}
	if got := len(rep.Distinct); got != k+1 {
		t.Fatalf("distinct = %v, want k+1 = %d values", rep.Distinct, k+1)
	}
	if !rep.IndistinguishableOK {
		t.Fatal("merged run distinguishable from solo runs")
	}
	if vs := sim.CheckAdmissible(rep.Merged, sim.AdmissibilityOptions{}); len(vs) != 0 {
		t.Fatalf("merged run inadmissible: %v", vs)
	}
}

// TestVettingCandidates runs the Section III vetting pipeline over the
// deliberately flawed candidates: each must be refuted.
func TestVettingCandidates(t *testing.T) {
	// DecideOwn decides solo, so singleton decider groups suffice and no
	// crash budget is needed (its D-bar disagrees crash-free).
	n := 5
	specSingles, err := NewPartitionSpec(n, 3, [][]sim.ProcessID{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.DecideOwn{},
		Inputs:          distinctInputs(n),
		Spec:            specSingles,
		DBarCrashBudget: 0,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatalf("decideown: %v", err)
	}
	if !rep.Refuted {
		t.Errorf("decideown survived vetting: %s", rep.Summary())
	}

	// FirstHeard needs a peer before deciding, so the decider groups are
	// pairs; its D-bar pair always agrees crash-free, but one crash blocks
	// the survivor forever (Termination violation).
	n = 6
	specPairs, err := NewPartitionSpec(n, 3, [][]sim.ProcessID{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = CheckImpossibility(Instance{
		Alg:             algorithms.FirstHeard{},
		Inputs:          distinctInputs(n),
		Spec:            specPairs,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatalf("firstheard: %v", err)
	}
	if !rep.Refuted {
		t.Errorf("firstheard survived vetting: %s", rep.Summary())
	}
}

func TestReportSummaryReadable(t *testing.T) {
	n, f, k := 5, 3, 2
	spec, err := Theorem2Partition(n, f, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckImpossibility(Instance{
		Alg:             algorithms.MinWait{F: f},
		Inputs:          distinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

// TestTheorem2RefutesMinWaitParallelBFS runs the same refutation with the
// breadth-first strategy on the parallel frontier search and asserts the
// engine verdict is independent of both the strategy and the worker count.
func TestTheorem2RefutesMinWaitParallelBFS(t *testing.T) {
	n, f, k := 5, 3, 2
	spec, err := Theorem2Partition(n, f, k)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Report {
		rep, err := CheckImpossibility(Instance{
			Alg:             algorithms.MinWait{F: f},
			Inputs:          distinctInputs(n),
			Spec:            spec,
			DBarCrashBudget: 1,
			MaxConfigs:      60000,
			SearchStrategy:  "bfs",
			SearchWorkers:   workers,
		})
		if err != nil {
			t.Fatalf("CheckImpossibility(workers=%d): %v", workers, err)
		}
		if !rep.Refuted {
			t.Fatalf("workers=%d: not refuted: %s", workers, rep.Summary())
		}
		return rep
	}
	seq := run(1)
	par := run(4)
	if par.Violation != seq.Violation || par.CondCDetail != seq.CondCDetail {
		t.Fatalf("parallel BFS engine diverged: %q/%q vs %q/%q",
			par.Violation, par.CondCDetail, seq.Violation, seq.CondCDetail)
	}
}

// TestUnknownSearchStrategyRejected guards against typo'd strategies
// silently selecting BFS (which truncates where DFS refutes).
func TestUnknownSearchStrategyRejected(t *testing.T) {
	spec, err := Theorem2Partition(5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckImpossibility(Instance{
		Alg:            algorithms.MinWait{F: 3},
		Inputs:         distinctInputs(5),
		Spec:           spec,
		SearchStrategy: "dsf",
	})
	if err == nil || !strings.Contains(err.Error(), "SearchStrategy") {
		t.Fatalf("typo'd strategy not rejected: %v", err)
	}
}
