// Package core implements the paper's primary contribution: the generic
// k-set agreement impossibility theorem (Theorem 1) as an executable
// reduction engine. Given a candidate algorithm, a system model (scheduler
// family and failure-detector oracles), and a partition specification
// (D_1, ..., D_{k-1}, D-bar), the engine mechanically
//
//  1. constructs the solo runs establishing (dec-D) — condition (A);
//  2. constructs the pasted run of Lemmas 11 and 12 in which the k-1
//     partitions decide k-1 distinct values while D-bar runs in isolation —
//     the runs R(D, D-bar), with the indistinguishability claims of
//     conditions (B) and (D) machine-checked against Definition 2;
//  3. drives the bounded explorer over the restricted algorithm A|D-bar in
//     the subsystem <D-bar> to exhibit the consensus failure that condition
//     (C) asserts — a disagreement or a blocking schedule; and
//  4. combines the pieces into a single full-system run in which the
//     algorithm visibly violates k-Agreement or Termination.
//
// For a correct algorithm the pipeline reports which condition failed to
// materialize (typically (A): the partitions refuse to decide on their own),
// which is exactly how the paper suggests using Theorem 1 as a vetting tool.
package core

import (
	"fmt"

	"kset/internal/sim"
)

// PartitionSpec fixes the sets of Theorem 1: the k-1 disjoint decider
// groups D_1, ..., D_{k-1} and the remainder D-bar = Pi \ D on which the
// consensus reduction happens.
type PartitionSpec struct {
	N      int
	K      int
	Groups [][]sim.ProcessID // D_1, ..., D_{k-1}
	dbar   []sim.ProcessID
}

// NewPartitionSpec validates and builds a partition specification: the
// groups must be nonempty, pairwise disjoint, contain only ids in 1..n, and
// leave a nonempty D-bar; there must be exactly k-1 groups.
func NewPartitionSpec(n, k int, groups [][]sim.ProcessID) (PartitionSpec, error) {
	if k < 1 {
		return PartitionSpec{}, fmt.Errorf("core: k = %d < 1", k)
	}
	if len(groups) != k-1 {
		return PartitionSpec{}, fmt.Errorf("core: %d groups, want k-1 = %d", len(groups), k-1)
	}
	seen := make(map[sim.ProcessID]bool)
	for gi, g := range groups {
		if len(g) == 0 {
			return PartitionSpec{}, fmt.Errorf("core: group D_%d is empty", gi+1)
		}
		for _, p := range g {
			if p < 1 || int(p) > n {
				return PartitionSpec{}, fmt.Errorf("core: process %d out of range 1..%d", p, n)
			}
			if seen[p] {
				return PartitionSpec{}, fmt.Errorf("core: process %d in two groups", p)
			}
			seen[p] = true
		}
	}
	var dbar []sim.ProcessID
	for p := 1; p <= n; p++ {
		if !seen[sim.ProcessID(p)] {
			dbar = append(dbar, sim.ProcessID(p))
		}
	}
	if len(dbar) == 0 {
		return PartitionSpec{}, fmt.Errorf("core: D-bar is empty; Theorem 1 needs a nonempty remainder")
	}
	cp := make([][]sim.ProcessID, len(groups))
	for i, g := range groups {
		cp[i] = append([]sim.ProcessID(nil), g...)
		sim.SortProcessIDs(cp[i])
	}
	return PartitionSpec{N: n, K: k, Groups: cp, dbar: dbar}, nil
}

// DBar returns D-bar = Pi \ (D_1 u ... u D_{k-1}), sorted.
func (ps PartitionSpec) DBar() []sim.ProcessID {
	return append([]sim.ProcessID(nil), ps.dbar...)
}

// D returns the union of the decider groups, sorted.
func (ps PartitionSpec) D() []sim.ProcessID {
	var out []sim.ProcessID
	for _, g := range ps.Groups {
		out = append(out, g...)
	}
	return sim.SortProcessIDs(out)
}

// AllGroups returns D_1, ..., D_{k-1}, D-bar — the k-way split used by the
// partition failure detector of Definition 7 (there D-bar is called D_k).
func (ps PartitionSpec) AllGroups() [][]sim.ProcessID {
	out := make([][]sim.ProcessID, 0, len(ps.Groups)+1)
	for _, g := range ps.Groups {
		out = append(out, append([]sim.ProcessID(nil), g...))
	}
	out = append(out, ps.DBar())
	return out
}

// Theorem2Partition builds the partition used in the proof of Theorem 2 for
// a system of n processes with f faults: with l = n-f, the groups are
// D_i = {p_{(i-1)l+1}, ..., p_{il}} for 1 <= i < k, which exist exactly
// when the failure bound k <= (n-1)/(n-f) holds (equivalently
// k(n-f)+1 <= n, Lemma 3), leaving |D-bar| >= n-f+1.
func Theorem2Partition(n, f, k int) (PartitionSpec, error) {
	l := n - f
	if l <= 0 {
		return PartitionSpec{}, fmt.Errorf("core: n-f = %d <= 0", l)
	}
	if k*l+1 > n {
		return PartitionSpec{}, fmt.Errorf("core: k=%d exceeds the Theorem 2 bound (n-1)/(n-f) = %d/%d", k, n-1, l)
	}
	groups := make([][]sim.ProcessID, 0, k-1)
	for i := 1; i < k; i++ {
		var g []sim.ProcessID
		for j := (i-1)*l + 1; j <= i*l; j++ {
			g = append(g, sim.ProcessID(j))
		}
		groups = append(groups, g)
	}
	return NewPartitionSpec(n, k, groups)
}

// Theorem10Partition builds the partition used in the proof of Theorem 10:
// D-bar = {p_1, ..., p_j} with j = n-k+1 >= 3 (so 2 <= k <= n-2), and the
// k-1 singleton groups {p_{j+1}}, ..., {p_n}.
func Theorem10Partition(n, k int) (PartitionSpec, error) {
	if k < 2 || k > n-2 {
		return PartitionSpec{}, fmt.Errorf("core: Theorem 10 needs 2 <= k <= n-2, got k=%d n=%d", k, n)
	}
	j := n - k + 1
	groups := make([][]sim.ProcessID, 0, k-1)
	for p := j + 1; p <= n; p++ {
		groups = append(groups, []sim.ProcessID{sim.ProcessID(p)})
	}
	return NewPartitionSpec(n, k, groups)
}

// BorderPartition builds the k+1-way partition of the Theorem 8 border
// argument (kn = (k+1)f): the system splits into k+1 disjoint groups of
// size n-f = n/(k+1) each; every group can decide its own value in
// isolation, forcing k+1 distinct decisions. The groups are returned as a
// plain slice (this argument needs no D-bar).
func BorderPartition(n, f, k int) ([][]sim.ProcessID, error) {
	if k*n != (k+1)*f {
		return nil, fmt.Errorf("core: border partition needs kn = (k+1)f, got k=%d n=%d f=%d", k, n, f)
	}
	size := n - f
	if size*(k+1) != n {
		return nil, fmt.Errorf("core: n=%d not divisible into k+1=%d groups of n-f=%d", n, k+1, size)
	}
	groups := make([][]sim.ProcessID, 0, k+1)
	for i := 0; i <= k; i++ {
		var g []sim.ProcessID
		for j := i*size + 1; j <= (i+1)*size; j++ {
			g = append(g, sim.ProcessID(j))
		}
		groups = append(groups, g)
	}
	return groups, nil
}
