package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// testPayload is a minimal payload for kernel tests.
type testPayload struct {
	Tag  string
	From ProcessID
}

func (p testPayload) Key() string { return fmt.Sprintf("%s(%d)", p.Tag, p.From) }

// echoAlg decides its own input at its first step and broadcasts a HELLO.
type echoAlg struct{}

func (echoAlg) Name() string { return "echo" }

func (echoAlg) Init(n int, id ProcessID, input Value) State {
	return &echoState{n: n, id: id, input: input, decision: NoValue}
}

type echoState struct {
	n        int
	id       ProcessID
	input    Value
	sent     bool
	got      int
	decision Value
}

func (s *echoState) Step(in Input) (State, []Send) {
	next := *s
	var sends []Send
	if !next.sent {
		next.sent = true
		sends = Broadcast(next.n, testPayload{Tag: "HELLO", From: next.id})
	}
	next.got += len(in.Delivered)
	next.decision = next.input
	return &next, sends
}

func (s *echoState) Decided() (Value, bool) { return s.decision, s.decision != NoValue }

func (s *echoState) Key() string {
	return fmt.Sprintf("echo{%d,%d,%t,%d,%d}", s.id, s.input, s.sent, s.got, s.decision)
}

// stepAll is a trivial scheduler stepping processes round-robin delivering
// everything, for maxSteps steps.
type stepAll struct {
	steps, maxSteps int
	rr              int
}

func (s *stepAll) Next(c *Configuration) (StepRequest, bool) {
	if s.steps >= s.maxSteps {
		return StepRequest{}, false
	}
	s.steps++
	p := ProcessID(s.rr%c.N() + 1)
	s.rr++
	return StepRequest{Proc: p, Deliver: c.DeliverAll(p)}, true
}

func TestNewConfigurationInitialState(t *testing.T) {
	inputs := []Value{10, 20, 30}
	c := NewConfiguration(echoAlg{}, inputs)
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	if c.Time() != 0 {
		t.Fatalf("Time = %d, want 0", c.Time())
	}
	for p := ProcessID(1); p <= 3; p++ {
		if c.Crashed(p) {
			t.Errorf("process %d crashed in initial configuration", p)
		}
		if got := c.BufferSize(p); got != 0 {
			t.Errorf("buffer of %d = %d, want empty", p, got)
		}
		if _, decided := c.Decision(p); decided {
			t.Errorf("process %d decided in initial configuration", p)
		}
	}
}

func TestApplyDeliversAndSends(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	ev, err := c.Apply(StepRequest{Proc: 1})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(ev.Sent) != 2 {
		t.Fatalf("sent %d messages, want 2 (broadcast)", len(ev.Sent))
	}
	if !ev.Decided || ev.Decision != 1 {
		t.Fatalf("event decision = (%d,%t), want (1,true)", ev.Decision, ev.Decided)
	}
	if got := c.BufferSize(2); got != 1 {
		t.Fatalf("buffer of 2 = %d, want 1", got)
	}
	// Deliver to 2.
	ids := c.DeliverAll(2)
	ev2, err := c.Apply(StepRequest{Proc: 2, Deliver: ids})
	if err != nil {
		t.Fatalf("Apply for 2: %v", err)
	}
	if len(ev2.Delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(ev2.Delivered))
	}
	// p2's step consumed p1's message but broadcast its own HELLO, whose
	// self-copy is now the only pending message.
	buf := c.Buffer(2)
	if len(buf) != 1 || buf[0].From != 2 {
		t.Fatalf("buffer of 2 after delivery = %v, want only p2's self-message", buf)
	}
}

func TestApplyRejectsUnknownProcess(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 5}); err == nil {
		t.Fatal("step for unknown process succeeded")
	}
	if _, err := c.Apply(StepRequest{Proc: 0}); err == nil {
		t.Fatal("step for process 0 succeeded")
	}
}

func TestApplyRejectsStepAfterCrash(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1, Crash: true}); err != nil {
		t.Fatalf("crash step: %v", err)
	}
	if !c.Crashed(1) {
		t.Fatal("process 1 not marked crashed")
	}
	if _, err := c.Apply(StepRequest{Proc: 1}); err == nil {
		t.Fatal("step after crash succeeded")
	}
}

func TestApplyRejectsUnknownDelivery(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1, Deliver: []int64{42}}); err == nil {
		t.Fatal("delivering a non-pending message succeeded")
	}
}

func TestApplyRejectsDuplicateDelivery(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	ids := c.DeliverAll(2)
	dup := append(ids, ids...)
	if _, err := c.Apply(StepRequest{Proc: 2, Deliver: dup}); err == nil {
		t.Fatal("duplicate delivery succeeded")
	}
}

func TestCrashOmissions(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	ev, err := c.Apply(StepRequest{
		Proc:   1,
		Crash:  true,
		OmitTo: map[ProcessID]bool{2: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast to 3 processes, omission to 2 only.
	if len(ev.Sent) != 2 {
		t.Fatalf("sent %d, want 2 after omitting one receiver", len(ev.Sent))
	}
	if got := c.BufferSize(2); got != 0 {
		t.Fatalf("omitted receiver got %d messages, want 0", got)
	}
	if got := c.BufferSize(3); got != 1 {
		t.Fatalf("non-omitted receiver got %d messages, want 1", got)
	}
}

func TestExecuteRecordsRun(t *testing.T) {
	run, err := Execute(echoAlg{}, []Value{5, 6, 7}, &stepAll{maxSteps: 6}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(run.Events))
	}
	decs := run.Decisions()
	want := []Value{5, 6, 7}
	for i, v := range want {
		if decs[i] != v {
			t.Errorf("decision[%d] = %d, want %d", i, decs[i], v)
		}
	}
	if got := run.DistinctDecisions(); len(got) != 3 {
		t.Errorf("distinct decisions = %v, want 3 values", got)
	}
	if len(run.Blocked) != 0 {
		t.Errorf("blocked = %v, want none", run.Blocked)
	}
}

func TestExecuteHorizon(t *testing.T) {
	run, err := Execute(echoAlg{}, []Value{1, 2}, &stepAll{maxSteps: 1 << 30}, Options{MaxSteps: 10})
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	if run == nil || len(run.Events) != 10 {
		t.Fatalf("partial run not returned correctly: %+v", run)
	}
}

func TestDecisionWriteOnce(t *testing.T) {
	// flipAlg illegally changes its decision on the second step.
	run, err := Execute(flipAlg{}, []Value{1}, &stepAll{maxSteps: 2}, Options{})
	if err == nil {
		t.Fatalf("decision flip not rejected; run: %+v", run)
	}
	if !strings.Contains(err.Error(), "changed decision") {
		t.Fatalf("unexpected error: %v", err)
	}
}

type flipAlg struct{}

func (flipAlg) Name() string { return "flip" }
func (flipAlg) Init(n int, id ProcessID, input Value) State {
	return flipState{step: 0}
}

type flipState struct{ step int }

func (s flipState) Step(in Input) (State, []Send) { return flipState{step: s.step + 1}, nil }
func (s flipState) Decided() (Value, bool)        { return Value(s.step), true }
func (s flipState) Key() string                   { return fmt.Sprintf("flip{%d}", s.step) }

func TestRestrictDropsOutsideSends(t *testing.T) {
	alg := Restrict(echoAlg{}, []ProcessID{1, 2})
	c := NewConfiguration(alg, []Value{1, 2, 3})
	ev, err := c.Apply(StepRequest{Proc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Sent) != 2 {
		t.Fatalf("restricted send count = %d, want 2", len(ev.Sent))
	}
	for _, m := range ev.Sent {
		if m.To == 3 {
			t.Fatalf("restricted algorithm sent to process 3: %+v", m)
		}
	}
	if got := c.BufferSize(3); got != 0 {
		t.Fatalf("process 3 received %d messages from restricted algorithm", got)
	}
}

func TestRestrictKeepsNameAndStateKeys(t *testing.T) {
	alg := Restrict(echoAlg{}, []ProcessID{2, 1, 2})
	if want := "echo|{1,2}"; alg.Name() != want {
		t.Fatalf("Name = %q, want %q", alg.Name(), want)
	}
	s := alg.Init(3, 1, 9)
	inner := echoAlg{}.Init(3, 1, 9)
	if s.Key() != inner.Key() {
		t.Fatalf("restricted state key %q differs from inner %q", s.Key(), inner.Key())
	}
	if Unrestricted(s).Key() != inner.Key() {
		t.Fatal("Unrestricted did not unwrap")
	}
}

func TestConfigurationCloneIsolation(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	cp := c.Clone()
	if cp.Key() != c.Key() {
		t.Fatal("clone key differs")
	}
	if _, err := c.Apply(StepRequest{Proc: 2, Deliver: c.DeliverAll(2)}); err != nil {
		t.Fatal(err)
	}
	if cp.Key() == c.Key() {
		t.Fatal("mutating original changed the clone")
	}
	if cp.BufferSize(2) != 1 {
		t.Fatalf("clone buffer = %d, want 1", cp.BufferSize(2))
	}
}

func TestConfigurationKeyIgnoresBufferOrder(t *testing.T) {
	// Two configurations that received the same messages in different order
	// must have the same key.
	c1 := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	c2 := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	if _, err := c1.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Apply(StepRequest{Proc: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Apply(StepRequest{Proc: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	if c1.Key() != c2.Key() {
		t.Fatalf("keys differ:\n%s\n%s", c1.Key(), c2.Key())
	}
}

func TestDistinctDecisions(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{7, 7, 9})
	for p := ProcessID(1); p <= 3; p++ {
		if _, err := c.Apply(StepRequest{Proc: p}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.DistinctDecisions()
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("DistinctDecisions = %v, want [7 9]", got)
	}
}

func TestComplement(t *testing.T) {
	got := Complement(5, []ProcessID{2, 4})
	want := []ProcessID{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Complement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Complement = %v, want %v", got, want)
		}
	}
}

func TestBroadcastCoversAll(t *testing.T) {
	sends := Broadcast(4, testPayload{Tag: "X", From: 1})
	if len(sends) != 4 {
		t.Fatalf("Broadcast produced %d sends, want 4", len(sends))
	}
	seen := map[ProcessID]bool{}
	for _, s := range sends {
		seen[s.To] = true
	}
	for p := ProcessID(1); p <= 4; p++ {
		if !seen[p] {
			t.Errorf("Broadcast missed process %d", p)
		}
	}
}
