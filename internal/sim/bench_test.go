package sim

import "testing"

func BenchmarkApplyStep(b *testing.B) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ProcessID(i%8 + 1)
		if c.Crashed(p) {
			b.Fatal("crashed")
		}
		if _, err := c.Apply(StepRequest{Proc: p, Deliver: c.DeliverAll(p)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigurationKey(b *testing.B) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3, 4, 5, 6, 7, 8})
	for p := ProcessID(1); p <= 8; p++ {
		if _, err := c.Apply(StepRequest{Proc: p}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := c.Key(); len(k) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkConfigurationClone(b *testing.B) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3, 4, 5, 6, 7, 8})
	for p := ProcessID(1); p <= 8; p++ {
		if _, err := c.Apply(StepRequest{Proc: p}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cp := c.Clone(); cp == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkExecuteEcho(b *testing.B) {
	inputs := []Value{1, 2, 3, 4, 5, 6}
	for i := 0; i < b.N; i++ {
		if _, err := Execute(echoAlg{}, inputs, &stepAll{maxSteps: 60}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndistinguishability(b *testing.B) {
	r1, err := Execute(echoAlg{}, []Value{1, 2, 3, 4}, &stepAll{maxSteps: 40}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	r2, err := Execute(echoAlg{}, []Value{1, 2, 3, 4}, &stepAll{maxSteps: 40}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ps := []ProcessID{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IndistinguishableForAll(r1, r2, ps) {
			b.Fatal("distinguishable")
		}
	}
}
