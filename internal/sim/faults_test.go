package sim

import (
	"strings"
	"testing"
)

// sinkAlg ignores everything it receives and sends one broadcast per step:
// its state key is identical whether a delivery reached the process or was
// dropped on the last hop, which is exactly the shape that forces the fault
// COUNT (not just the visible state) to carry the distinction.
type sinkAlg struct{}

func (sinkAlg) Name() string { return "sink" }

func (sinkAlg) Init(n int, id ProcessID, input Value) State {
	return sinkState{n: n, id: id}
}

type sinkState struct {
	n  int
	id ProcessID
}

func (s sinkState) Step(in Input) (State, []Send) {
	return s, Broadcast(s.n, testPayload{Tag: "S", From: s.id})
}

func (s sinkState) Decided() (Value, bool) { return NoValue, false }
func (s sinkState) Key() string            { return "sink" }

func TestSendOmissionDropsSends(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	ev, err := c.Apply(StepRequest{Proc: 1, OmitSends: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ev.Fault != FaultSendOmission {
		t.Fatalf("event fault = %v, want send-omission", ev.Fault)
	}
	if len(ev.Sent) != 0 {
		t.Fatalf("event recorded %d sends, want 0 (all omitted)", len(ev.Sent))
	}
	if got := c.BufferSize(1) + c.BufferSize(2); got != 0 {
		t.Fatalf("%d messages buffered after omitted broadcast, want 0", got)
	}
	if got := c.FaultsUsed(1); got != 1 {
		t.Fatalf("FaultsUsed(1) = %d, want 1", got)
	}
	if got := c.FaultyProcesses(); got != 1 {
		t.Fatalf("FaultyProcesses = %d, want 1", got)
	}
}

func TestReceiveOmissionConsumesButHides(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	ids := c.DeliverAll(2)
	if len(ids) != 1 {
		t.Fatalf("p2 has %d pending messages, want 1", len(ids))
	}
	ev, err := c.Apply(StepRequest{Proc: 2, Deliver: ids, DropDeliver: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ev.Fault != FaultReceiveOmission {
		t.Fatalf("event fault = %v, want receive-omission", ev.Fault)
	}
	// The messages are consumed (gone from the buffer, listed in the event)
	// but the process never saw them: echoState counts deliveries.
	if len(ev.Delivered) != 1 {
		t.Fatalf("event recorded %d deliveries, want 1 (consumed)", len(ev.Delivered))
	}
	if !strings.Contains(ev.StateKey, ",0,") {
		t.Fatalf("p2 state %q counted a delivery it should never have seen", ev.StateKey)
	}
	if got := c.FaultsUsed(2); got != 1 {
		t.Fatalf("FaultsUsed(2) = %d, want 1", got)
	}
}

func TestByzantineCorruptsPayloads(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	ev, err := c.Apply(StepRequest{Proc: 1, Corrupt: true})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ev.Fault != FaultByzantine {
		t.Fatalf("event fault = %v, want byzantine", ev.Fault)
	}
	if len(ev.Sent) != 2 {
		t.Fatalf("corrupted broadcast sent %d, want 2", len(ev.Sent))
	}
	for _, m := range ev.Sent {
		if _, ok := m.Payload.(Corrupted); !ok {
			t.Fatalf("payload %T not wrapped in Corrupted", m.Payload)
		}
		if !strings.HasPrefix(m.Payload.Key(), "byz(") {
			t.Fatalf("corrupted payload key %q lacks byz( prefix", m.Payload.Key())
		}
	}
	// echoState's type assertion rejects the wrapper: delivering the
	// corrupted message must not count as a heard testPayload... but echo
	// counts raw deliveries, so just check the buffer content survived.
	if got := c.FaultsUsed(1); got != 1 {
		t.Fatalf("FaultsUsed(1) = %d, want 1", got)
	}
}

func TestFaultChargedOnlyWhenEffective(t *testing.T) {
	// echoAlg broadcasts only on its first step: a second OmitSends step has
	// nothing to drop, and a DropDeliver with an empty delivery set hides
	// nothing. Neither may charge the budget or perturb the fingerprint.
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	plain := c.Clone()
	if _, err := c.Apply(StepRequest{Proc: 1, OmitSends: true}); err != nil {
		t.Fatalf("ineffective OmitSends: %v", err)
	}
	if _, err := plain.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatalf("plain twin: %v", err)
	}
	if got := c.FaultsUsed(1); got != 0 {
		t.Fatalf("ineffective send omission charged %d fault events", got)
	}
	if c.Fingerprint() != plain.Fingerprint() {
		t.Fatalf("ineffective fault step diverged from its plain twin: %#x != %#x",
			c.Fingerprint(), plain.Fingerprint())
	}
	if _, err := c.Apply(StepRequest{Proc: 2, DropDeliver: true}); err != nil {
		t.Fatalf("ineffective DropDeliver: %v", err)
	}
	if got := c.FaultsUsed(2); got != 0 {
		t.Fatalf("ineffective receive omission charged %d fault events", got)
	}
}

func TestFaultRejectsCombinedActions(t *testing.T) {
	for _, req := range []StepRequest{
		{Proc: 1, OmitSends: true, Corrupt: true},
		{Proc: 1, OmitSends: true, DropDeliver: true},
		{Proc: 1, DropDeliver: true, Corrupt: true},
		{Proc: 1, OmitSends: true, Crash: true},
		{Proc: 1, Corrupt: true, SilentCrash: true},
	} {
		c := NewConfiguration(echoAlg{}, []Value{1, 2})
		if _, err := c.Apply(req); err == nil {
			t.Errorf("Apply(%+v) succeeded, want combination error", req)
		}
	}
}

func TestFaultCountDistinguishesFingerprints(t *testing.T) {
	// sinkAlg's state is delivery-blind, so a receive-omission flush and a
	// plain flush reach configurations whose every visible part — states,
	// buffers, decisions, crashes — is identical. Only the charged fault
	// event separates them, and the fingerprint, canonical fingerprint, and
	// Key must all see it: the faulty configuration has adversarial futures
	// (more omissions already spent) the clean one does not.
	inputs := []Value{1, 1}
	mk := func(drop bool) *Configuration {
		c := NewConfiguration(sinkAlg{}, inputs)
		c.AttachSymmetry(NewSymmetry(inputs, []ProcessID{1, 2}))
		if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		req := StepRequest{Proc: 2, Deliver: c.DeliverAll(2), DropDeliver: drop}
		if _, err := c.Apply(req); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		return c
	}
	faulty, clean := mk(true), mk(false)
	if faulty.Key() == clean.Key() {
		t.Fatalf("fault count invisible in Key: %s", faulty.Key())
	}
	if faulty.Fingerprint() == clean.Fingerprint() {
		t.Fatalf("fault count invisible in fingerprint %#x", faulty.Fingerprint())
	}
	if faulty.Canonical64() == clean.Canonical64() {
		t.Fatalf("fault count invisible in canonical fingerprint %#x", faulty.Canonical64())
	}
	// And the counts survive both clone paths.
	if got := faulty.Clone().FaultsUsed(2); got != 1 {
		t.Fatalf("Clone dropped fault count: %d", got)
	}
	var pool ClonePool
	if got := faulty.CloneInto(pool.Get()).FaultsUsed(2); got != 1 {
		t.Fatalf("CloneInto dropped fault count: %d", got)
	}
}

func TestParseFaultModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FaultModel
	}{
		{"", FaultCrash},
		{"crash", FaultCrash},
		{"send-omission", FaultSendOmission},
		{"receive-omission", FaultReceiveOmission},
		{"byzantine", FaultByzantine},
	} {
		got, err := ParseFaultModel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFaultModel(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
		// Every canonical spelling round-trips; "" renders as "crash".
		if s := got.String(); tc.in != "" && s != tc.in {
			t.Errorf("String() = %q, want %q", s, tc.in)
		}
	}
	if _, err := ParseFaultModel("meteor"); err == nil {
		t.Error("ParseFaultModel accepted an unknown model")
	}
}
