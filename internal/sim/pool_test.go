package sim

import "testing"

// TestClonePoolRecycles checks the free-list contract: Get returns pooled
// configurations LIFO, nil on empty, and Put(nil) is a no-op.
func TestClonePoolRecycles(t *testing.T) {
	var p ClonePool
	if c := p.Get(); c != nil {
		t.Fatalf("empty pool returned %v", c)
	}
	a := NewConfiguration(echoAlg{}, []Value{1, 2})
	b := NewConfiguration(echoAlg{}, []Value{3, 4})
	p.Put(a)
	p.Put(b)
	p.Put(nil)
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2 (nil Put must be ignored)", p.Len())
	}
	if got := p.Get(); got != b {
		t.Fatal("pool is not LIFO")
	}
	if got := p.Get(); got != a {
		t.Fatal("second Get did not return the first Put")
	}
	if p.Len() != 0 || p.Get() != nil {
		t.Fatal("pool not drained")
	}
}

// TestClonePoolCloneIntoRoundTrip checks the intended usage: a retired
// configuration recycled through a pool is a correct CloneInto destination.
func TestClonePoolCloneIntoRoundTrip(t *testing.T) {
	var p ClonePool
	src := NewConfiguration(echoAlg{}, []Value{7, 8, 9})
	p.Put(NewConfiguration(echoAlg{}, []Value{0, 0, 0}))
	dst := src.CloneInto(p.Get())
	if dst.Key() != src.Key() || dst.Fingerprint() != src.Fingerprint() {
		t.Fatal("pooled clone does not match source")
	}
}
