package sim

import (
	"fmt"
	"sort"
)

// Violation describes one admissibility violation found in a recorded run.
type Violation struct {
	Clause string
	Detail string
}

func (v Violation) String() string { return v.Clause + ": " + v.Detail }

// CheckAdmissible verifies the mechanically checkable MASYNC admissibility
// conditions of Section II against a recorded finite run prefix:
//
//	(1) every correct process keeps taking steps — on a finite prefix this is
//	    approximated by requiring that every correct process either decided
//	    or appears in Blocked (i.e. the run did not silently stop scheduling
//	    a live, undecided process without flagging it);
//	(2) faulty processes execute finitely many steps and may omit sends only
//	    in the very last step — guaranteed structurally by Configuration, so
//	    the check here is that no event follows a process's crash event;
//	(3) every message sent to a correct receiver is eventually received — on
//	    a finite prefix this means: if all correct processes decided, pending
//	    messages are allowed (delivery may happen after the prefix), but a
//	    run claiming completeness via opts.RequireEmptyBuffers must have
//	    delivered everything addressed to correct processes.
//
// It returns the list of violations found (empty means admissible so far).
func CheckAdmissible(r *Run, opts AdmissibilityOptions) []Violation {
	var out []Violation

	crashedAt := make(map[ProcessID]int)
	for _, ev := range r.Events {
		if prev, ok := crashedAt[ev.Proc]; ok {
			out = append(out, Violation{
				Clause: "faulty-stops",
				Detail: fmt.Sprintf("process %d stepped at time %d after crashing at time %d", ev.Proc, ev.Time, prev),
			})
		}
		if ev.Crashed {
			crashedAt[ev.Proc] = ev.Time
		}
	}

	blocked := make(map[ProcessID]bool, len(r.Blocked))
	for _, p := range r.Blocked {
		blocked[p] = true
	}
	for _, p := range r.Final.ProcessIDs() {
		if r.Final.Crashed(p) {
			continue
		}
		if _, decided := r.Final.Decision(p); !decided && !blocked[p] {
			out = append(out, Violation{
				Clause: "correct-steps",
				Detail: fmt.Sprintf("correct process %d undecided but not reported blocked", p),
			})
		}
	}

	if opts.RequireEmptyBuffers {
		for _, p := range r.Final.ProcessIDs() {
			if r.Final.Crashed(p) {
				continue
			}
			if n := r.Final.BufferSize(p); n > 0 {
				out = append(out, Violation{
					Clause: "eventual-delivery",
					Detail: fmt.Sprintf("%d messages still pending for correct process %d", n, p),
				})
			}
		}
	}
	return out
}

// AdmissibilityOptions tunes CheckAdmissible.
type AdmissibilityOptions struct {
	// RequireEmptyBuffers additionally demands that no message addressed to
	// a correct process is left undelivered, for runs claiming to be
	// "complete" (every sent message already received).
	RequireEmptyBuffers bool
}

// IndistinguishableFor reports whether runs alpha and beta are
// indistinguishable until decision for process p (Definition 2): p moves
// through the same sequence of states in both runs until it decides. If p
// never decides in one of the runs, the comparison covers the full recorded
// prefix of that run, and the shorter sequence must be a prefix of the
// longer (the paper's runs are infinite; on finite prefixes prefix-equality
// is the checkable analogue for undecided processes).
func IndistinguishableFor(alpha, beta *Run, p ProcessID) bool {
	sa := alpha.StateSequence(p)
	sb := beta.StateSequence(p)
	da := decidedIn(alpha, p)
	db := decidedIn(beta, p)
	if da && db {
		return equalStrings(sa, sb)
	}
	// At least one side undecided: compare the common prefix.
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	return equalStrings(sa[:n], sb[:n])
}

// IndistinguishableForAll reports whether alpha ~D beta: indistinguishable
// until decision for every process in d.
func IndistinguishableForAll(alpha, beta *Run, d []ProcessID) bool {
	for _, p := range d {
		if !IndistinguishableFor(alpha, beta, p) {
			return false
		}
	}
	return true
}

// CompatibleFor reports whether the set of runs rs1 is compatible with rs2
// for the processes in d (Definition 3): for every run alpha in rs1 there is
// a run beta in rs2 with alpha ~D beta. It returns the first alpha without a
// match, or nil when compatible.
func CompatibleFor(rs1, rs2 []*Run, d []ProcessID) (bool, *Run) {
	for _, alpha := range rs1 {
		found := false
		for _, beta := range rs2 {
			if IndistinguishableForAll(alpha, beta, d) {
				found = true
				break
			}
		}
		if !found {
			return false, alpha
		}
	}
	return true, nil
}

func decidedIn(r *Run, p ProcessID) bool {
	_, ok := r.Final.Decision(p)
	return ok
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortProcessIDs sorts a slice of process ids in place and returns it.
func SortProcessIDs(ps []ProcessID) []ProcessID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Complement returns Pi \ d for a system of n processes, sorted.
func Complement(n int, d []ProcessID) []ProcessID {
	member := make(map[ProcessID]bool, len(d))
	for _, p := range d {
		member[p] = true
	}
	var out []ProcessID
	for p := 1; p <= n; p++ {
		if !member[ProcessID(p)] {
			out = append(out, ProcessID(p))
		}
	}
	return out
}
