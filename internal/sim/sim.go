package sim

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process. Processes are numbered 1..n as in the
// paper; 0 is never a valid id.
type ProcessID int

// NoProcess is the zero ProcessID, used when no process is meant.
const NoProcess ProcessID = 0

// Value is a proposal or decision value drawn from the finite value universe
// V of Section II-A. The paper assumes |V| > n so that runs exist in which
// every process proposes a distinct value; using integers satisfies that for
// any n.
type Value int

// NoValue represents the undecided output ("bottom"), which by Section II is
// not an element of V. Algorithms must never propose or decide NoValue.
const NoValue Value = -1 << 62

// Payload is the algorithm-defined content of a message. Implementations
// must be immutable values, and Key must be a deterministic encoding: two
// payloads are the same message content if and only if their keys are equal.
// Keys are what make runs comparable (Definition 2, indistinguishability)
// and configurations hashable for bounded exploration.
type Payload interface {
	Key() string
}

// FDValue is a failure-detector output handed to a process at the beginning
// of a step, per the paper's sixth model dimension (Section II). A nil
// FDValue means the process has no failure detector (the unfavourable
// choice U).
type FDValue interface {
	Key() string
}

// Message is a message in transit or delivered. From/To are process ids,
// Payload the algorithm content. ID is unique within a run and SentAt is the
// global time (step index) of the sending step; both are bookkeeping owned
// by the configuration, not visible to algorithms except for ordering.
type Message struct {
	ID      int64
	From    ProcessID
	To      ProcessID
	SentAt  int
	Payload Payload

	// fp caches the message's fingerprint component (see fingerprint.go),
	// assigned when the configuration buffers the message, so removal on
	// delivery is a subtraction rather than a re-hash. sfp caches the
	// orbit-canonical term (see symmetry.go) when a Symmetry is attached.
	fp  uint64
	sfp uint64
}

// Key returns a deterministic encoding of the message content as observed by
// the receiving process (sender and payload; the bookkeeping fields are
// excluded so that pasted runs with renumbered messages stay
// indistinguishable).
func (m Message) Key() string {
	return fmt.Sprintf("%d>%d:%s", m.From, m.To, m.Payload.Key())
}

// Send describes one outgoing message produced by a step, before the
// configuration assigns bookkeeping fields. A Send with To outside 1..n is
// rejected by the step driver.
type Send struct {
	To      ProcessID
	Payload Payload
}

// Broadcast returns sends of payload to every process in 1..n, including the
// sender itself. The paper's Theorem 2 model allows broadcasting in an
// atomic step; algorithms for weaker models can still use Broadcast because
// the sends are placed in buffers individually and delivered independently.
func Broadcast(n int, payload Payload) []Send {
	sends := make([]Send, 0, n)
	for p := 1; p <= n; p++ {
		sends = append(sends, Send{To: ProcessID(p), Payload: payload})
	}
	return sends
}

// Input is everything a process observes in one atomic step: the global time
// (which processes must not use for computation — it is carried for trace
// purposes only), the delivered subset L of its buffer, and the failure
// detector value if any.
type Input struct {
	Time      int
	Delivered []Message
	FD        FDValue
}

// State is an immutable snapshot of a process's local state.
//
// Step applies the transition relation and message sending function of
// Section II: given the step input it returns the successor state and the
// messages to send. Implementations must be pure — they must not mutate the
// receiver or the input, and equal (state, input) pairs must produce equal
// results. Decided returns the write-once output value y_p; once a state
// reports decided, every successor must report the same value (the driver
// enforces this).
type State interface {
	Step(in Input) (State, []Send)
	Decided() (Value, bool)
	Key() string
}

// SendQuiescent is an optional interface for State implementations that can
// prove their process is done sending. SendsDone must return true only when
// this state's Step — and the Step of every state reachable from it, under
// ANY admissible input (any delivered subset, any detector value) — returns
// no sends; the property must therefore be monotone: every successor of a
// SendsDone state must report SendsDone as well. Package explore's
// partial-order reduction uses it to detect send-quiescent regions of the
// state space, where steps of distinct processes have disjoint effect
// footprints and commute exactly. States without the interface (or whose
// sending phase is still open) conservatively report false, which keeps the
// reduction sound by disabling it.
type SendQuiescent interface {
	SendsDone() bool
}

// StateSendsDone reports whether s guarantees, through the SendQuiescent
// interface, that its process never sends again. It is the conservative
// accessor used by package explore: states that do not implement the
// interface report false.
func StateSendsDone(s State) bool {
	if q, ok := s.(SendQuiescent); ok {
		return q.SendsDone()
	}
	return false
}

// Algorithm constructs initial process states. Init receives the system size
// n (note: restricted algorithms per Definition 1 still receive the original
// |Pi|), the process id, and the proposal value x_p.
type Algorithm interface {
	Name() string
	Init(n int, id ProcessID, input Value) State
}

// Restrict returns the restricted algorithm A|D of Definition 1 for the
// process set D: the message sending function is changed to drop all
// messages addressed to processes outside D, and nothing else changes. In
// particular Init still receives the full system size n.
func Restrict(a Algorithm, d []ProcessID) Algorithm {
	member := make(map[ProcessID]bool, len(d))
	ids := make([]ProcessID, 0, len(d))
	for _, p := range d {
		if !member[p] {
			member[p] = true
			ids = append(ids, p)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &restricted{inner: a, member: member, ids: ids}
}

type restricted struct {
	inner  Algorithm
	member map[ProcessID]bool
	ids    []ProcessID
}

func (r *restricted) Name() string {
	parts := make([]string, len(r.ids))
	for i, p := range r.ids {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return r.inner.Name() + "|{" + strings.Join(parts, ",") + "}"
}

func (r *restricted) Init(n int, id ProcessID, input Value) State {
	return &restrictedState{inner: r.inner.Init(n, id, input), member: r.member}
}

type restrictedState struct {
	inner  State
	member map[ProcessID]bool
}

func (s *restrictedState) Step(in Input) (State, []Send) {
	next, sends := s.inner.Step(in)
	kept := make([]Send, 0, len(sends))
	for _, snd := range sends {
		if s.member[snd.To] {
			kept = append(kept, snd)
		}
	}
	return &restrictedState{inner: next, member: s.member}, kept
}

func (s *restrictedState) Decided() (Value, bool) { return s.inner.Decided() }

func (s *restrictedState) Key() string { return s.inner.Key() }

// Hash64 delegates to the inner state (Key does too), keeping restricted
// algorithms on the fingerprint fast path.
func (s *restrictedState) Hash64() uint64 { return stateHash(s.inner) }

// SendsDone delegates to the inner state: restriction only drops sends, so
// an inner state that is done sending stays done under the restriction.
func (s *restrictedState) SendsDone() bool { return StateSendsDone(s.inner) }

// SymHash64 delegates to the inner state: the restriction's member set is
// part of the search's fixed initial conditions (it equals the live set any
// admissible renaming preserves), so it contributes nothing per-state.
func (s *restrictedState) SymHash64(relabel func(ProcessID) uint64) uint64 {
	if h, ok := s.inner.(SymHasher64); ok {
		return h.SymHash64(relabel)
	}
	return stateHash(s.inner)
}

// Unrestricted unwraps a state produced by a restricted algorithm, returning
// the underlying state. It returns the state itself when it is not
// restricted. Indistinguishability comparisons (Definition 2) use it so that
// a run of A|D can be compared state-by-state against a run of A.
func Unrestricted(s State) State {
	if rs, ok := s.(*restrictedState); ok {
		return rs.inner
	}
	return s
}
