package sim

import "encoding/json"

// Summary is a serializable digest of a run for tooling: per-process
// outcomes, the failure pattern, and the decision census. Message payloads
// are represented by their deterministic keys.
type Summary struct {
	Algorithm string           `json:"algorithm"`
	N         int              `json:"n"`
	Steps     int              `json:"steps"`
	Inputs    []Value          `json:"inputs"`
	Processes []ProcessOutcome `json:"processes"`
	Distinct  []Value          `json:"distinct_decisions"`
	Blocked   []ProcessID      `json:"blocked,omitempty"`
}

// ProcessOutcome is one process's final status in a run.
type ProcessOutcome struct {
	ID        ProcessID `json:"id"`
	Input     Value     `json:"input"`
	Decided   bool      `json:"decided"`
	Decision  Value     `json:"decision,omitempty"`
	Crashed   bool      `json:"crashed"`
	CrashTime int       `json:"crash_time,omitempty"`
	StepCount int       `json:"step_count"`
}

// Summarize builds the digest of a recorded run.
func (r *Run) Summarize() Summary {
	s := Summary{
		Algorithm: r.Algorithm,
		N:         r.N(),
		Steps:     len(r.Events),
		Inputs:    append([]Value(nil), r.Inputs...),
		Distinct:  r.DistinctDecisions(),
		Blocked:   append([]ProcessID(nil), r.Blocked...),
	}
	stepCount := make(map[ProcessID]int)
	for _, ev := range r.Events {
		if !ev.Silent {
			stepCount[ev.Proc]++
		}
	}
	for _, p := range r.Final.ProcessIDs() {
		out := ProcessOutcome{
			ID:        p,
			Input:     r.Inputs[p-1],
			Crashed:   r.Final.Crashed(p),
			StepCount: stepCount[p],
		}
		if v, ok := r.Final.Decision(p); ok {
			out.Decided = true
			out.Decision = v
		}
		if out.Crashed {
			out.CrashTime = r.CrashTime(p)
		}
		s.Processes = append(s.Processes, out)
	}
	return s
}

// MarshalJSON renders the summary (not the full event log) of the run.
func (r *Run) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Summarize())
}
