package sim

// This file implements the incremental 64-bit configuration fingerprint used
// by package explore for revisit detection. The fingerprint is a commutative
// sum (mod 2^64) of independently hashed components — one per process slot
// (state, crash flag, decision) and one per buffered message — so that
// Apply, take, and SilentCrash can maintain it in O(changed) instead of
// rebuilding Key()'s O(n·|buffers|) string on every visit:
//
//	fp = Σ_i procComponent(i) + Σ_i Σ_{m ∈ buffer(i)} msgComponent(i, m)
//
// Each component is an FNV-1a hash of the slot's deterministic encoding,
// diffused through a splitmix64 finalizer and multiplied by an odd
// per-process salt so that equal content at different slots contributes
// different values. Summation (rather than XOR) makes buffers true
// multisets: a message that is buffered twice shifts the fingerprint twice.
//
// The fingerprint covers exactly the information Key() encodes — local
// states, crash flags, buffer contents as per-receiver multisets of
// (sender, payload), plus the write-once decisions — and, like Key(),
// excludes global time and message ids, which do not influence future
// behaviour. Two configurations with equal Key() always have equal
// fingerprints; distinct keys collide with probability ~2^-64 per pair.

// FingerprintVersion identifies the fingerprint encoding: the FNV/splitmix
// construction above, the per-slot salts, and the Hash64/SymHash64
// encodings of every algorithm's states and payloads. The encoding is
// deliberately stable across processes and runs — it uses no per-process
// hash seed, no map iteration order, and no addresses — which is what lets
// package explore persist fingerprint-derived artifacts (search
// checkpoints, whose deduplication decisions are only valid under the key
// function that made them) and read them back in a different process. Bump
// this constant whenever the encoding changes observably — a changed
// constant, salt, fold order, or any algorithm's Hash64 — so stale on-disk
// state is rejected instead of silently resumed under a different state
// quotient; internal/sim's stability test pins the v1 values.
const FingerprintVersion = 1

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds s into an FNV-1a hash state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvUint folds an integer into an FNV-1a hash state byte by byte.
func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// full-avalanche diffusion of the raw FNV state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hasher64 is an optional fast-hash interface for State and Payload
// implementations. Hash64 must be equality-compatible with Key: two values
// with equal keys must return equal hashes, and values with distinct keys
// must return distinct hashes up to 64-bit collision probability. States and
// payloads that implement it skip the Key() string materialization on the
// fingerprint hot path; everything else falls back to hashing Key().
type Hasher64 interface {
	Hash64() uint64
}

// HashSeed returns the initial accumulator for building a Hash64 value.
func HashSeed() uint64 { return fnvOffset64 }

// HashUint folds an integer into a Hash64 accumulator.
func HashUint(h, v uint64) uint64 { return fnvUint(h, v) }

// HashString folds a string into a Hash64 accumulator.
func HashString(h uint64, s string) uint64 { return fnvString(h, s) }

// HashMix diffuses an accumulator or builds one commutative-sum term; use it
// to hash map entries order-independently (sum the mixed terms).
func HashMix(x uint64) uint64 { return splitmix64(x) }

// stateHash returns the 64-bit hash of a state: the fast path for Hasher64
// implementations, an FNV-1a over Key() otherwise.
func stateHash(s State) uint64 {
	if h, ok := s.(Hasher64); ok {
		return h.Hash64()
	}
	return fnvString(fnvOffset64, s.Key())
}

// payloadHash is stateHash for message payloads.
func payloadHash(p Payload) uint64 {
	if h, ok := p.(Hasher64); ok {
		return h.Hash64()
	}
	return fnvString(fnvOffset64, p.Key())
}

// procSalt returns the odd multiplier salting process slot i's state
// component; bufSalt the one salting its buffered-message components.
func procSalt(i int) uint64 { return splitmix64(uint64(i)*2+1) | 1 }
func bufSalt(i int) uint64  { return splitmix64(uint64(i)*2+2) | 1 }

// stateHash64 returns slot i's state hash on either engine: the packer's
// record hash on the packed engine, stateHash of the pointer state
// otherwise. The packer hash contract (see Packer) makes the two
// bit-identical.
func (c *Configuration) stateHash64(i int) uint64 {
	if c.pk != nil {
		return c.pk.Hash64(c.prec(i), i)
	}
	return stateHash(c.states[i])
}

// procComponent hashes process slot i's behaviourally relevant content:
// crash flag, state key, and write-once decision.
func (c *Configuration) procComponent(i int) uint64 {
	h := uint64(fnvOffset64)
	if c.crashed[i] {
		h = fnvUint(h, 1)
	}
	h = fnvUint(h, c.stateHash64(i))
	h = fnvUint(h, uint64(c.decisions[i]))
	if f := c.faultCount(i); f != 0 {
		// Spent fault budget distinguishes otherwise-identical
		// configurations with different adversarial futures. Guarded so a
		// crash-only run's components stay bit-identical to the pre-fault
		// engine.
		h = fnvUint(h, uint64(f))
	}
	return splitmix64(h) * procSalt(i)
}

// msgComponent hashes one message buffered at receiver slot recv. The
// receiver is encoded by the salt; the id and send time are excluded for the
// same reason Message.Key excludes them.
func msgComponent(recv int, m *Message) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint(h, uint64(m.From))
	h = fnvUint(h, payloadHash(m.Payload))
	return splitmix64(h) * bufSalt(recv)
}

// Fingerprint returns the incremental 64-bit fingerprint of the
// configuration. It is maintained by NewConfiguration, Apply, and Clone;
// reading it is free.
func (c *Configuration) Fingerprint() uint64 { return c.fp }

// recomputeFingerprint rebuilds the fingerprint and per-slot caches from
// scratch. NewConfiguration uses it once; the fingerprint tests use it to
// cross-check the incremental maintenance.
func (c *Configuration) recomputeFingerprint() {
	if cap(c.procFP) < c.n {
		c.procFP = make([]uint64, c.n)
	}
	c.procFP = c.procFP[:c.n]
	c.fp = 0
	for i := 0; i < c.n; i++ {
		c.procFP[i] = c.procComponent(i)
		c.fp += c.procFP[i]
		if c.pk != nil {
			for j := range c.pbuf[i] {
				m := &c.pbuf[i][j]
				m.fp = c.packedMsgComponent(i, *m)
				c.fp += m.fp
			}
			continue
		}
		for j := range c.buffers[i] {
			m := &c.buffers[i][j]
			m.fp = msgComponent(i, m)
			c.fp += m.fp
		}
	}
}

// LiveFingerprint returns the fingerprint of the configuration's
// behaviourally live content: crashed processes contribute only their crash
// flag and write-once decision — their local state and their undelivered
// buffered messages are excluded. A crashed process never steps again, so
// nothing else in its slot can influence any future step, send, delivery
// resolution, or verdict predicate; two configurations with equal
// LiveFingerprint have identical futures even when their crashed slots
// differ. Package explore's partial-order-reduced searches key their
// visited sets by it, collapsing the crash-timing junk states the plain
// fingerprint keeps apart (same crash, same decision, different absorbed
// values or different undelivered leftovers). Computed on demand in
// O(n + crashed buffers) from the cached per-slot components.
func (c *Configuration) LiveFingerprint() uint64 {
	fp := c.fp
	for i := 0; i < c.n; i++ {
		if !c.crashed[i] {
			continue
		}
		fp += crashedSlotComponent(i, c.decisions[i]) - c.procFP[i]
		if c.pk != nil {
			for j := range c.pbuf[i] {
				fp -= c.pbuf[i][j].fp
			}
			continue
		}
		for j := range c.buffers[i] {
			fp -= c.buffers[i][j].fp
		}
	}
	return fp
}

// crashedSlotComponent is the normalized component of a crashed process
// slot: crash flag and decision only (compare procComponent).
func crashedSlotComponent(i int, decision Value) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint(h, 1)
	h = fnvUint(h, uint64(decision))
	return splitmix64(h) * procSalt(i)
}

// refreshProc re-hashes process slot i after its state, crash flag, or
// decision changed, and folds the delta into the fingerprint (and into the
// orbit-canonical fingerprint when a Symmetry is attached).
func (c *Configuration) refreshProc(i int) {
	h := c.procComponent(i)
	c.fp += h - c.procFP[i]
	c.procFP[i] = h
	if c.sym != nil {
		c.symRefreshBase(i)
	}
}
