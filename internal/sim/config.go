package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// sharedIDs holds the immutable ascending id slice backing Processes():
// readers slice a read-only array; growth swaps in a longer copy.
var sharedIDs atomic.Pointer[[]ProcessID]

// sharedProcessIDs returns the shared read-only slice [1..n].
func sharedProcessIDs(n int) []ProcessID {
	if p := sharedIDs.Load(); p != nil && len(*p) >= n {
		return (*p)[:n:n]
	}
	size := n
	if size < 64 {
		size = 64
	}
	ids := make([]ProcessID, size)
	for i := range ids {
		ids[i] = ProcessID(i + 1)
	}
	for {
		cur := sharedIDs.Load()
		if cur != nil && len(*cur) >= n {
			return (*cur)[:n:n]
		}
		if sharedIDs.CompareAndSwap(cur, &ids) {
			return ids[:n:n]
		}
	}
}

// Configuration is a global system configuration per Section II: the vector
// of local states plus the message buffer of every process, together with
// the global time (number of steps taken so far) and the crash record.
type Configuration struct {
	n         int
	states    []State     // index p-1 holds the state of process p
	buffers   [][]Message // index p-1 holds messages sent to p, not yet received
	crashed   []bool      // index p-1: p has taken its final step
	decisions []Value     // index p-1: write-once output, NoValue while undecided
	time      int
	nextMsgID int64

	// faults counts, per process, the committed fault events of the
	// pluggable fault models (see faults.go). It stays nil — and contributes
	// nothing to any fingerprint — until the first effective fault action,
	// so crash-only runs are bit-identical to the pre-fault-model engine.
	faults []int32

	// fp is the incremental fingerprint (see fingerprint.go); procFP caches
	// the per-process components so state changes fold in as deltas.
	fp     uint64
	procFP []uint64

	// sym, when non-nil, enables maintenance of the orbit-canonical
	// fingerprint symfp (see symmetry.go); symBase/symMsg cache the
	// per-process base components and buffered-message term sums.
	sym     *Symmetry
	symfp   uint64
	symBase []uint64
	symMsg  []uint64

	// pk, when non-nil, switches the configuration to the packed engine
	// (see packed.go): states/buffers stay nil and process records live in
	// the flat pstates slice (n stride-pwords records) with buffered
	// messages in pbuf. Everything else — crash flags, decisions, fault
	// counts, fingerprint caches, symmetry caches — is shared between the
	// two representations, so the fingerprint and symmetry maintenance is
	// engine-agnostic. psend is the send-membership bitmask of a restricted
	// algorithm; pdeliver and pem are per-configuration scratch for
	// applyPacked.
	pk       Packer
	psend    uint64
	pwords   int
	pstates  []uint64
	pbuf     [][]PackedMsg
	pdeliver []PackedMsg
	pem      PackedEmitter
}

// NewConfiguration builds the initial configuration for algorithm a with the
// given proposal values (inputs[p-1] is x_p). All buffers start empty and no
// process has crashed, as required of initial configurations.
func NewConfiguration(a Algorithm, inputs []Value) *Configuration {
	n := len(inputs)
	c := &Configuration{
		n:         n,
		states:    make([]State, n),
		buffers:   make([][]Message, n),
		crashed:   make([]bool, n),
		decisions: make([]Value, n),
		nextMsgID: 1,
	}
	for i := 0; i < n; i++ {
		c.states[i] = a.Init(n, ProcessID(i+1), inputs[i])
		c.decisions[i] = NoValue
		if v, ok := c.states[i].Decided(); ok {
			c.decisions[i] = v
		}
	}
	c.recomputeFingerprint()
	return c
}

// N returns the number of processes.
func (c *Configuration) N() int { return c.n }

// Time returns the global time, i.e. the number of steps taken so far.
func (c *Configuration) Time() int { return c.time }

// State returns the local state of process p. On a packed configuration it
// materializes the state from the packed record (allocating) — an
// inspection view for debug/explain paths, not a hot-path accessor there.
func (c *Configuration) State(p ProcessID) State {
	if c.pk != nil {
		return c.pk.Unpack(c.prec(int(p)-1), int(p)-1)
	}
	return c.states[p-1]
}

// Crashed reports whether process p has taken its final step.
func (c *Configuration) Crashed(p ProcessID) bool { return c.crashed[p-1] }

// Decision returns the write-once output of process p and whether it has
// decided.
func (c *Configuration) Decision(p ProcessID) (Value, bool) {
	v := c.decisions[p-1]
	return v, v != NoValue
}

// Buffer returns a copy of the pending messages addressed to p, in sending
// order. Hot paths that only read the buffer should use BufferView. On a
// packed configuration the messages are materialized from their packed
// form.
func (c *Configuration) Buffer(p ProcessID) []Message {
	if c.pk != nil {
		pb := c.pbuf[p-1]
		out := make([]Message, len(pb))
		for j, m := range pb {
			out[j] = c.unpackMessage(int(p)-1, m)
		}
		return out
	}
	buf := c.buffers[p-1]
	out := make([]Message, len(buf))
	copy(out, buf)
	return out
}

// BufferView returns the live slice of pending messages addressed to p, in
// sending order, without copying. The view is read-only and is invalidated
// by the next Apply/ApplyQuiet/CloneInto on c; callers that need the
// messages to outlive the configuration must use Buffer. On a packed
// configuration there is no pointer-based buffer to view, so this
// materializes a copy like Buffer (debug paths only; hot paths on packed
// configurations use BufferSize/OldestMessageID/AppendDeliveryIDs).
func (c *Configuration) BufferView(p ProcessID) []Message {
	if c.pk != nil {
		return c.Buffer(p)
	}
	return c.buffers[p-1]
}

// BufferSize returns the number of pending messages addressed to p without
// copying.
func (c *Configuration) BufferSize(p ProcessID) int {
	if c.pk != nil {
		return len(c.pbuf[p-1])
	}
	return len(c.buffers[p-1])
}

// Processes returns the ids 1..n as a fresh slice the caller may modify.
// Loops that only iterate should use ProcessIDs, which allocates nothing.
func (c *Configuration) Processes() []ProcessID {
	out := make([]ProcessID, c.n)
	copy(out, sharedProcessIDs(c.n))
	return out
}

// ProcessIDs returns the ids 1..n as a shared, read-only slice: process ids
// are the same for every configuration of a given size, so repeated calls
// in scheduler and analysis loops allocate nothing. Callers must not modify
// the returned slice (its capacity is clipped, so appending is safe).
func (c *Configuration) ProcessIDs() []ProcessID { return sharedProcessIDs(c.n) }

// AllDecided reports whether every process in ps has decided or crashed.
func (c *Configuration) AllDecided(ps []ProcessID) bool {
	for _, p := range ps {
		if c.decisions[p-1] == NoValue && !c.crashed[p-1] {
			return false
		}
	}
	return true
}

// DistinctDecisions returns the set of distinct decision values across all
// processes (correct or faulty — the k-agreement property of Section II-A
// binds faulty processes' decisions too), in ascending order.
func (c *Configuration) DistinctDecisions() []Value {
	seen := make(map[Value]bool)
	for _, v := range c.decisions {
		if v != NoValue {
			seen[v] = true
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the configuration. States and message
// payloads are immutable by contract and therefore shared.
func (c *Configuration) Clone() *Configuration {
	if c.pk != nil {
		return c.clonePacked()
	}
	cp := &Configuration{
		n:         c.n,
		states:    append([]State(nil), c.states...),
		buffers:   make([][]Message, c.n),
		crashed:   append([]bool(nil), c.crashed...),
		decisions: append([]Value(nil), c.decisions...),
		time:      c.time,
		nextMsgID: c.nextMsgID,
		faults:    append([]int32(nil), c.faults...),
		fp:        c.fp,
		procFP:    append([]uint64(nil), c.procFP...),
		sym:       c.sym,
		symfp:     c.symfp,
		symBase:   append([]uint64(nil), c.symBase...),
		symMsg:    append([]uint64(nil), c.symMsg...),
	}
	for i, buf := range c.buffers {
		cp.buffers[i] = append([]Message(nil), buf...)
	}
	return cp
}

// clonePacked is Clone for the packed engine. All the fixed-width uint64
// caches — procFP, the symmetry caches, the packed records — are carved out
// of one slab, and every buffered message out of one flat PackedMsg slab,
// with full-capacity subslices so a later append cannot bleed into a
// neighbour. None of the uint64 regions ever grows, so sharing the slab is
// permanent; a buffer region that grows (new sends) reallocates away from
// the slab on its own.
func (c *Configuration) clonePacked() *Configuration {
	n := c.n
	cp := &Configuration{
		n:         n,
		crashed:   append([]bool(nil), c.crashed...),
		decisions: append([]Value(nil), c.decisions...),
		time:      c.time,
		nextMsgID: c.nextMsgID,
		faults:    append([]int32(nil), c.faults...),
		fp:        c.fp,
		sym:       c.sym,
		symfp:     c.symfp,
		pk:        c.pk,
		psend:     c.psend,
		pwords:    c.pwords,
	}
	words := n + n*c.pwords
	if c.sym != nil {
		words += 2 * n
	}
	slab := make([]uint64, words)
	off := 0
	carve := func(src []uint64) []uint64 {
		s := slab[off : off+len(src) : off+len(src)]
		copy(s, src)
		off += len(src)
		return s
	}
	cp.procFP = carve(c.procFP)
	if c.sym != nil {
		cp.symBase = carve(c.symBase)
		cp.symMsg = carve(c.symMsg)
	}
	cp.pstates = carve(c.pstates)
	cp.pbuf = make([][]PackedMsg, n)
	total := 0
	for _, buf := range c.pbuf {
		total += len(buf)
	}
	if total > 0 {
		msgs := make([]PackedMsg, total)
		moff := 0
		for i, buf := range c.pbuf {
			if len(buf) == 0 {
				continue
			}
			dst := msgs[moff : moff+len(buf) : moff+len(buf)]
			copy(dst, buf)
			cp.pbuf[i] = dst
			moff += len(buf)
		}
	}
	return cp
}

// CloneInto copies c into dst, reusing dst's allocations where capacities
// allow, and returns dst. A nil dst behaves like Clone. It is the pooled
// clone behind package explore's per-action copies: a configuration retired
// from a search can be recycled as the destination of the next clone,
// keeping the search's allocation rate flat in the number of visits.
func (c *Configuration) CloneInto(dst *Configuration) *Configuration {
	if dst == nil || dst == c {
		return c.Clone()
	}
	dst.n = c.n
	dst.time = c.time
	dst.nextMsgID = c.nextMsgID
	dst.fp = c.fp
	dst.sym = c.sym
	dst.symfp = c.symfp
	dst.states = append(dst.states[:0], c.states...)
	dst.crashed = append(dst.crashed[:0], c.crashed...)
	dst.decisions = append(dst.decisions[:0], c.decisions...)
	dst.faults = append(dst.faults[:0], c.faults...)
	dst.procFP = append(dst.procFP[:0], c.procFP...)
	dst.symBase = append(dst.symBase[:0], c.symBase...)
	dst.symMsg = append(dst.symMsg[:0], c.symMsg...)
	dst.pk = c.pk
	dst.psend = c.psend
	dst.pwords = c.pwords
	if c.pk != nil {
		dst.pstates = append(dst.pstates[:0], c.pstates...)
		if cap(dst.pbuf) < c.n {
			dst.pbuf = make([][]PackedMsg, c.n)
		}
		dst.pbuf = dst.pbuf[:c.n]
		for i, buf := range c.pbuf {
			dst.pbuf[i] = append(dst.pbuf[i][:0], buf...)
		}
		// dst's stale pointer buffers (if it was ever a pointer clone) are
		// never read while dst.pk is set, so the pointer-buffer block below
		// is skipped entirely — c.buffers is nil here anyway.
		return dst
	}
	if cap(dst.buffers) < c.n {
		dst.buffers = make([][]Message, c.n)
	}
	dst.buffers = dst.buffers[:c.n]
	for i, buf := range c.buffers {
		dst.buffers[i] = append(dst.buffers[i][:0], buf...)
	}
	return dst
}

// Key returns a deterministic encoding of the configuration: all local
// states and all buffer contents. Two configurations with equal keys are
// behaviourally identical for every deterministic algorithm; package explore
// uses keys to detect revisited configurations. Time and message ids are
// excluded on purpose — they do not influence future behaviour.
func (c *Configuration) Key() string {
	if c.pk != nil {
		return c.packedKey()
	}
	var b strings.Builder
	for i, s := range c.states {
		fmt.Fprintf(&b, "p%d[", i+1)
		if c.crashed[i] {
			b.WriteString("X;")
		}
		if f := c.faultCount(i); f != 0 {
			// Spent fault budget changes the adversary's remaining choices,
			// so it is part of behavioural identity — exactly like the crash
			// flag. Zero counts add nothing: crash-only keys are unchanged.
			fmt.Fprintf(&b, "F%d;", f)
		}
		b.WriteString(s.Key())
		b.WriteString("]{")
		// Buffers are multisets from the process's point of view: the
		// scheduler can deliver any subset in any order. Sort message keys so
		// that configurations differing only in arrival order coincide.
		keys := make([]string, len(c.buffers[i]))
		for j, m := range c.buffers[i] {
			keys[j] = m.Key()
		}
		sort.Strings(keys)
		b.WriteString(strings.Join(keys, "|"))
		b.WriteString("}")
	}
	return b.String()
}

// packedKey is Key over the packed encoding: it materializes states and
// payloads slot by slot, producing the byte-identical string the pointer
// engine would (a restriction wrapper delegates Key to the inner state, so
// unpacking to the inner state preserves equality).
func (c *Configuration) packedKey() string {
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		fmt.Fprintf(&b, "p%d[", i+1)
		if c.crashed[i] {
			b.WriteString("X;")
		}
		if f := c.faultCount(i); f != 0 {
			fmt.Fprintf(&b, "F%d;", f)
		}
		b.WriteString(c.pk.Unpack(c.prec(i), i).Key())
		b.WriteString("]{")
		keys := make([]string, len(c.pbuf[i]))
		for j, m := range c.pbuf[i] {
			keys[j] = c.unpackMessage(i, m).Key()
		}
		sort.Strings(keys)
		b.WriteString(strings.Join(keys, "|"))
		b.WriteString("}")
	}
	return b.String()
}

// StepRequest is the scheduler's choice for one atomic step: the process to
// step, the ids of buffered messages to deliver (the subset L, possibly
// empty), the failure-detector value to present (nil when the model has no
// detector), and the crash directive. When Crash is true this is p's final
// step and OmitTo lists the receivers to which the final step's messages are
// dropped (MASYNC admissibility clause (2) allows omitting sends to a subset
// of receivers in the very last step).
type StepRequest struct {
	Proc    ProcessID
	Deliver []int64
	FD      FDValue
	Crash   bool
	OmitTo  map[ProcessID]bool

	// OmitSends drops every send of this step before it reaches a buffer (a
	// send-omission fault event, FaultSendOmission). DropDeliver consumes
	// the Deliver subset from the buffer without handing it to the process —
	// the messages are lost (a receive-omission fault event,
	// FaultReceiveOmission). Corrupt replaces the payload of every send with
	// its deterministic corrupted variant (a Byzantine value fault,
	// FaultByzantine; see Corruptible). At most one may be set, none may be
	// combined with Crash or SilentCrash, and the event is charged to the
	// process's fault count only when it had an effect (see faults.go).
	OmitSends   bool
	DropDeliver bool
	Corrupt     bool

	// SilentCrash marks the process as crashed without executing a step:
	// the process is in F(t) for the current time t onward and, if it never
	// stepped before, it is initially dead (in F(0)). No transition runs, no
	// messages are sent, and global time does not advance — silently
	// crashing is not a step of the run.
	SilentCrash bool
}

// DeliverAll returns the ids of every message pending for p, for building
// step requests that flush the buffer.
func (c *Configuration) DeliverAll(p ProcessID) []int64 {
	return c.AppendDeliveryIDs(nil, p)
}

// AppendDeliveryIDs appends the ids of every message pending for p to dst
// (in buffer order) and returns the extended slice. Passing a reused scratch
// slice avoids the per-call allocation of DeliverAll on hot paths.
func (c *Configuration) AppendDeliveryIDs(dst []int64, p ProcessID) []int64 {
	if c.pk != nil {
		for i := range c.pbuf[p-1] {
			dst = append(dst, c.pbuf[p-1][i].ID)
		}
		return dst
	}
	for i := range c.buffers[p-1] {
		dst = append(dst, c.buffers[p-1][i].ID)
	}
	return dst
}

// OldestMessageID returns the id of the oldest pending message for p,
// without copying the buffer; ok is false when the buffer is empty.
func (c *Configuration) OldestMessageID(p ProcessID) (id int64, ok bool) {
	if c.pk != nil {
		buf := c.pbuf[p-1]
		if len(buf) == 0 {
			return 0, false
		}
		return buf[0].ID, true
	}
	buf := c.buffers[p-1]
	if len(buf) == 0 {
		return 0, false
	}
	return buf[0].ID, true
}

// Disagreement reports whether two processes have decided different values —
// the disagreement-witness predicate, without materializing the distinct
// decision set.
func (c *Configuration) Disagreement() bool {
	first := NoValue
	for _, v := range c.decisions {
		if v == NoValue {
			continue
		}
		if first == NoValue {
			first = v
		} else if v != first {
			return true
		}
	}
	return false
}

// Apply executes one atomic step in place and returns the step's event
// record. It enforces the model's sanity rules: the process must exist and
// not have crashed, delivered ids must be pending for the process, and
// decisions are write-once.
func (c *Configuration) Apply(req StepRequest) (Event, error) {
	return c.apply(req, true)
}

// ApplyQuiet executes one atomic step exactly like Apply but skips
// materializing the event record (state-key string, sent/delivered
// bookkeeping). It is the step driver for exploration hot paths that only
// need the successor configuration; recorded runs keep using Apply.
func (c *Configuration) ApplyQuiet(req StepRequest) error {
	_, err := c.apply(req, false)
	return err
}

func (c *Configuration) apply(req StepRequest, record bool) (Event, error) {
	if c.pk != nil {
		// The packed engine never materializes events (witness replay runs
		// on the pointer engine); record is accepted and ignored.
		return c.applyPacked(req)
	}
	p := req.Proc
	if p < 1 || int(p) > c.n {
		return Event{}, fmt.Errorf("sim: step for unknown process %d", p)
	}
	i := int(p) - 1
	if c.crashed[i] {
		return Event{}, fmt.Errorf("sim: process %d stepped after crashing", p)
	}
	nfaults := 0
	if req.OmitSends {
		nfaults++
	}
	if req.DropDeliver {
		nfaults++
	}
	if req.Corrupt {
		nfaults++
	}
	if nfaults > 1 {
		return Event{}, fmt.Errorf("sim: process %d step combines multiple fault actions", p)
	}
	if nfaults > 0 && (req.Crash || req.SilentCrash) {
		return Event{}, fmt.Errorf("sim: process %d step combines a fault action with a crash", p)
	}

	if req.SilentCrash {
		c.crashed[i] = true
		c.refreshProc(i)
		if !record {
			return Event{}, nil
		}
		return Event{
			Time:     c.time,
			Proc:     p,
			StateKey: c.states[i].Key(),
			Crashed:  true,
			Silent:   true,
		}, nil
	}

	delivered, err := c.take(i, req.Deliver)
	if err != nil {
		return Event{}, err
	}

	faulted := false
	in := Input{Time: c.time, Delivered: delivered, FD: req.FD}
	if req.DropDeliver && len(delivered) > 0 {
		// Receive omission: the messages left the buffer but the process
		// never sees them. The event still records them as consumed.
		in.Delivered = nil
		faulted = true
	}
	next, sends := c.states[i].Step(in)
	if next == nil {
		return Event{}, fmt.Errorf("sim: process %d returned nil state", p)
	}

	prevDecision := c.decisions[i]
	c.states[i] = next
	if v, ok := next.Decided(); ok {
		if v == NoValue {
			return Event{}, fmt.Errorf("sim: process %d decided the reserved NoValue", p)
		}
		if prevDecision != NoValue && prevDecision != v {
			return Event{}, fmt.Errorf("sim: process %d changed decision %d -> %d", p, prevDecision, v)
		}
		c.decisions[i] = v
	} else if prevDecision != NoValue {
		return Event{}, fmt.Errorf("sim: process %d retracted its decision", p)
	}

	var sent []Message
	if record {
		sent = make([]Message, 0, len(sends))
	}
	for _, snd := range sends {
		if snd.To < 1 || int(snd.To) > c.n {
			return Event{}, fmt.Errorf("sim: process %d sent to unknown process %d", p, snd.To)
		}
		if snd.Payload == nil {
			return Event{}, fmt.Errorf("sim: process %d sent nil payload", p)
		}
		if req.Crash && req.OmitTo[snd.To] {
			continue
		}
		if req.OmitSends {
			// Send omission: the send is validated but never enqueued.
			faulted = true
			continue
		}
		payload := snd.Payload
		if req.Corrupt {
			payload = corruptPayload(payload)
			faulted = true
		}
		m := Message{
			ID:      c.nextMsgID,
			From:    p,
			To:      snd.To,
			SentAt:  c.time,
			Payload: payload,
		}
		m.fp = msgComponent(int(snd.To)-1, &m)
		c.fp += m.fp
		if c.sym != nil {
			m.sfp = symMsgTerm(c.sym, &m)
			c.symAddMsg(int(snd.To)-1, m.sfp)
		}
		c.nextMsgID++
		c.buffers[snd.To-1] = append(c.buffers[snd.To-1], m)
		if record {
			sent = append(sent, m)
		}
	}

	if req.Crash {
		c.crashed[i] = true
	}
	if faulted {
		c.bumpFault(i)
	}
	c.refreshProc(i)
	c.time++

	if !record {
		return Event{}, nil
	}
	ev := Event{
		Time:      c.time - 1,
		Proc:      p,
		Delivered: delivered,
		FD:        req.FD,
		Sent:      sent,
		StateKey:  next.Key(),
		Crashed:   req.Crash,
	}
	// Only an effective fault step is recorded on the event: an ineffective
	// one (nothing dropped, nothing corrupted) is bit-identical to its plain
	// twin, so replaying it without the fault flag reproduces the same
	// configuration and the event stream stays free of phantom fault marks.
	if faulted {
		switch {
		case req.OmitSends:
			ev.Fault = FaultSendOmission
		case req.DropDeliver:
			ev.Fault = FaultReceiveOmission
		case req.Corrupt:
			ev.Fault = FaultByzantine
		}
	}
	if v, ok := next.Decided(); ok {
		ev.Decision, ev.Decided = v, true
	}
	return ev, nil
}

// take removes the messages with the given ids from buffer i and returns
// them in buffer order. The returned slice never aliases the live buffer:
// delivered messages escape into Events and step Inputs, while the buffer's
// backing array is reused for future sends.
func (c *Configuration) take(i int, ids []int64) ([]Message, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	buf := c.buffers[i]
	// Fast path: ids matches a buffer prefix in order — the shape produced
	// by DeliverAll / AppendDeliveryIDs ("flush") and OldestMessageID
	// ("oldest"), which are all the delivery patterns the explorer uses.
	if len(ids) <= len(buf) {
		match := true
		for j, id := range ids {
			if buf[j].ID != id {
				match = false
				break
			}
		}
		if match {
			taken := make([]Message, len(ids))
			copy(taken, buf[:len(ids)])
			for j := range taken {
				c.fp -= taken[j].fp
				if c.sym != nil {
					c.symAddMsg(i, -taken[j].sfp)
				}
			}
			c.buffers[i] = append(buf[:0], buf[len(ids):]...)
			return taken, nil
		}
	}
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, fmt.Errorf("sim: duplicate delivery of message %d", id)
		}
		want[id] = true
	}
	taken := make([]Message, 0, len(ids))
	restCap := len(buf) - len(ids)
	if restCap < 0 {
		restCap = 0
	}
	rest := make([]Message, 0, restCap)
	for _, m := range buf {
		if want[m.ID] {
			taken = append(taken, m)
			delete(want, m.ID)
		} else {
			rest = append(rest, m)
		}
	}
	if len(want) > 0 {
		missing := make([]int64, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Slice(missing, func(a, b int) bool { return missing[a] < missing[b] })
		return nil, fmt.Errorf("sim: messages %v not pending for process %d", missing, i+1)
	}
	for j := range taken {
		c.fp -= taken[j].fp
		if c.sym != nil {
			c.symAddMsg(i, -taken[j].sfp)
		}
	}
	c.buffers[i] = rest
	return taken, nil
}
