package sim

import (
	"fmt"
	"testing"
)

// checkFingerprint asserts that c's incrementally maintained fingerprint
// equals a from-scratch recompute of the same content.
func checkFingerprint(t *testing.T, c *Configuration, context string) {
	t.Helper()
	cp := c.Clone()
	cp.recomputeFingerprint()
	if cp.fp != c.Fingerprint() {
		t.Fatalf("%s: incremental fingerprint %#x != recomputed %#x", context, c.Fingerprint(), cp.fp)
	}
}

func TestFingerprintIncrementalMaintenance(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3, 4})
	checkFingerprint(t, c, "initial")

	steps := []StepRequest{
		{Proc: 1},                                     // broadcast, decide
		{Proc: 2, Deliver: c.DeliverAll(2)},           // deliver p1's message, broadcast
		{Proc: 3, Crash: true},                        // crash step with sends
		{Proc: 4, SilentCrash: true},                  // silent crash, no step
		{Proc: 1, Crash: true, OmitTo: omitAllSet(4)}, // final step, all sends dropped
	}
	for i, req := range steps {
		if req.Proc == 2 {
			req.Deliver = c.DeliverAll(2)
		}
		if _, err := c.Apply(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		checkFingerprint(t, c, fmt.Sprintf("after step %d", i))
	}
}

func omitAllSet(n int) map[ProcessID]bool {
	out := make(map[ProcessID]bool, n)
	for p := 1; p <= n; p++ {
		out[ProcessID(p)] = true
	}
	return out
}

func TestFingerprintFollowsKeyEquality(t *testing.T) {
	// Same messages received in different order: equal keys must mean equal
	// fingerprints (the buffer components sum commutatively).
	c1 := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	c2 := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	for _, p := range []ProcessID{1, 2} {
		if _, err := c1.Apply(StepRequest{Proc: p}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []ProcessID{2, 1} {
		if _, err := c2.Apply(StepRequest{Proc: p}); err != nil {
			t.Fatal(err)
		}
	}
	if c1.Key() != c2.Key() {
		t.Fatalf("test setup broken: keys differ")
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatalf("equal keys but fingerprints %#x != %#x", c1.Fingerprint(), c2.Fingerprint())
	}
	// Advancing c2 must change both key and fingerprint.
	if _, err := c2.Apply(StepRequest{Proc: 3}); err != nil {
		t.Fatal(err)
	}
	if c1.Key() == c2.Key() || c1.Fingerprint() == c2.Fingerprint() {
		t.Fatalf("distinct configurations share key or fingerprint")
	}
}

// dupAlg broadcasts the identical payload on every step and never changes
// state, isolating the buffer-multiset component of the fingerprint.
type dupAlg struct{}

func (dupAlg) Name() string                                { return "dup" }
func (dupAlg) Init(n int, id ProcessID, input Value) State { return dupState{n: n, id: id} }

type dupState struct {
	n  int
	id ProcessID
}

func (s dupState) Step(in Input) (State, []Send) {
	return s, Broadcast(s.n, testPayload{Tag: "DUP", From: s.id})
}
func (s dupState) Decided() (Value, bool) { return 0, false }
func (s dupState) Key() string            { return fmt.Sprintf("dup{%d}", s.id) }

func TestFingerprintBuffersAreMultisets(t *testing.T) {
	// A buffer holding two copies of an identical message must not cancel to
	// the empty buffer (the failure mode of XOR-combined multiset hashes).
	fresh := NewConfiguration(dupAlg{}, []Value{1, 2})
	once := NewConfiguration(dupAlg{}, []Value{1, 2})
	twice := NewConfiguration(dupAlg{}, []Value{1, 2})
	if _, err := once.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := twice.Apply(StepRequest{Proc: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if twice.Fingerprint() == fresh.Fingerprint() {
		t.Fatal("duplicate buffered messages cancelled out of the fingerprint")
	}
	if twice.Fingerprint() == once.Fingerprint() {
		t.Fatal("second copy of a buffered message did not change the fingerprint")
	}
	checkFingerprint(t, twice, "after duplicate broadcasts")
}

func TestFingerprintCollisionSweep(t *testing.T) {
	// Enumerate a few hundred behaviourally distinct small configurations
	// (distinct keys) and require pairwise distinct fingerprints. A 64-bit
	// fingerprint colliding on a sweep this small would indicate a broken
	// mixing function rather than bad luck.
	byFP := make(map[uint64]string)
	byKey := make(map[string]bool)
	record := func(c *Configuration) {
		key := c.Key()
		if byKey[key] {
			return
		}
		byKey[key] = true
		if prev, dup := byFP[c.Fingerprint()]; dup {
			t.Fatalf("fingerprint collision %#x:\n%s\n%s", c.Fingerprint(), prev, key)
		}
		byFP[c.Fingerprint()] = key
	}
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			c := NewConfiguration(echoAlg{}, []Value{Value(a), Value(b), Value(a + b)})
			record(c)
			for _, p := range []ProcessID{1, 2, 3} {
				if _, err := c.Apply(StepRequest{Proc: p, Deliver: c.DeliverAll(p)}); err != nil {
					t.Fatal(err)
				}
				record(c.Clone())
			}
		}
	}
	if len(byKey) < 100 {
		t.Fatalf("sweep too small: %d distinct configurations", len(byKey))
	}
}

func TestCloneIntoReusesAllocations(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2, 3})
	if _, err := c.Apply(StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	// Seed the destination with unrelated content to prove it is fully
	// overwritten.
	dst := NewConfiguration(echoAlg{}, []Value{9, 8, 7})
	if _, err := dst.Apply(StepRequest{Proc: 2}); err != nil {
		t.Fatal(err)
	}
	got := c.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto did not return dst")
	}
	if dst.Key() != c.Key() || dst.Fingerprint() != c.Fingerprint() {
		t.Fatalf("CloneInto result differs from source:\n%s\n%s", dst.Key(), c.Key())
	}
	// Mutating the destination must not touch the source.
	if _, err := dst.Apply(StepRequest{Proc: 2, Deliver: dst.DeliverAll(2)}); err != nil {
		t.Fatal(err)
	}
	if dst.Key() == c.Key() {
		t.Fatal("mutating CloneInto destination changed the source")
	}
	checkFingerprint(t, dst, "after mutation")
	if c.CloneInto(nil).Key() != c.Key() {
		t.Fatal("CloneInto(nil) did not clone")
	}
}
