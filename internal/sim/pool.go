package sim

// ClonePool is a free list of retired Configurations used as pooled-clone
// destinations (CloneInto). Package explore keeps the allocation rate of its
// searches flat by recycling every configuration that leaves the search
// through a pool; the parallel frontier search keeps one pool per worker so
// that the hot clone/release cycle never contends on shared state.
//
// A ClonePool is NOT safe for concurrent use; that is the point — give each
// goroutine its own. Configurations put into a pool must no longer be
// referenced by the caller: their allocations are reused by the next Get.
type ClonePool struct {
	free []*Configuration
}

// Get pops a retired configuration to reuse as a CloneInto destination, or
// returns nil when the pool is empty (CloneInto then allocates fresh).
func (p *ClonePool) Get() *Configuration {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	return nil
}

// Put returns a configuration to the free list. The caller must not touch it
// afterwards.
func (p *ClonePool) Put(c *Configuration) {
	if c == nil {
		return
	}
	p.free = append(p.free, c)
}

// Len reports the number of pooled configurations.
func (p *ClonePool) Len() int { return len(p.free) }
