package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	run := mustRun(t, []Value{7, 8}, 4)
	s := run.Summarize()
	if s.Algorithm != "echo" || s.N != 2 || s.Steps != 4 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	if len(s.Processes) != 2 {
		t.Fatalf("processes = %d", len(s.Processes))
	}
	for i, p := range s.Processes {
		if !p.Decided {
			t.Errorf("p%d undecided in summary", i+1)
		}
		if p.StepCount != 2 {
			t.Errorf("p%d step count = %d, want 2", i+1, p.StepCount)
		}
	}
	if len(s.Distinct) != 2 {
		t.Fatalf("distinct = %v", s.Distinct)
	}
}

func TestSummarizeCrash(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	run := &Run{Algorithm: "echo", Inputs: []Value{1, 2}, Final: c}
	ev, err := c.Apply(StepRequest{Proc: 1, Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)
	ev, err = c.Apply(StepRequest{Proc: 2, SilentCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)
	s := run.Summarize()
	if !s.Processes[0].Crashed || s.Processes[0].CrashTime != 0 {
		t.Fatalf("p1 outcome: %+v", s.Processes[0])
	}
	if !s.Processes[1].Crashed || s.Processes[1].StepCount != 0 {
		t.Fatalf("p2 outcome: %+v", s.Processes[1])
	}
}

func TestRunMarshalJSON(t *testing.T) {
	run := mustRun(t, []Value{7, 8}, 4)
	raw, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{`"algorithm":"echo"`, `"distinct_decisions":[7,8]`, `"step_count":2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json missing %s:\n%s", want, out)
		}
	}
	// Round-trips as a Summary.
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.N != 2 {
		t.Fatalf("round-trip N = %d", s.N)
	}
}
