package sim

// This file implements the packed configuration engine: a struct-of-arrays
// encoding of Configuration in which every process's local state is a
// fixed-width record of uint64 words in one flat slice and every buffered
// message is a fixed-width PackedMsg value in a per-receiver slice — no
// interface values, no per-state allocations, no pointer chasing on the
// exploration hot path. The pointer-based Configuration remains the
// explain/debug/witness-replay view; a packed configuration converts to it
// on demand (State, Buffer, Key unpack lazily), and package explore's
// differential gate proves both engines visit the identical set in the
// identical order.
//
// The encoding is algorithm-specific: a Packer supplied by the algorithm
// (via PackableAlgorithm) defines the record layout, the transition
// function over records, and hash functions that are BIT-IDENTICAL to the
// pointer states' Hash64/SymHash64 and to the payloads' hash chains. That
// bit-identity is the load-bearing invariant — the incremental fingerprint,
// the orbit-canonical fingerprint, and therefore every visited-set key,
// insertion order, tie-break, and truncation point of a search are equal
// between the two engines, so verdicts, witnesses, and stats coincide
// exactly (package explore's packed differential tests and FuzzPackedParity
// pin this).
//
// Packed configurations support at most 64 processes (process sets are
// bitmasks); PackerFor reports false beyond that, and callers fall back to
// the pointer engine.

import "fmt"

// PackedMsg is the fixed-width encoding of one buffered message: the
// bookkeeping id, the sender, a packer-defined kind tag and auxiliary word
// (e.g. a heard-set bitmask), and the Byzantine-corruption flag. The
// fingerprint component caches fp/sfp mirror Message's.
type PackedMsg struct {
	ID   int64
	From ProcessID
	// Kind tags the payload variant; its values are private to the packer
	// that emitted the message.
	Kind uint8
	// Corrupt marks a Byzantine value fault: the payload is the generic
	// Corrupted wrapping of the genuine one (see faults.go). Receivers'
	// packers must ignore corrupt messages, mirroring the pointer engine's
	// failing type assertions.
	Corrupt bool
	// Aux is one packer-defined payload word (0 when unused).
	Aux uint64

	fp  uint64
	sfp uint64
}

// PackedInput is Input over packed messages: everything a packed step
// observes. The Delivered slice aliases configuration scratch and must not
// be retained by the packer.
type PackedInput struct {
	Time      int
	Delivered []PackedMsg
	FD        FDValue
}

// PackedEmitter collects the sends of one packed step. It applies the
// restricted algorithm's membership filter at emission — the packed
// equivalent of restrictedState dropping non-member sends before the step
// driver sees them, so no message id is consumed for a dropped send.
type PackedEmitter struct {
	n     int
	mask  uint64 // bit p-1 set: sends to p are kept
	sends []packedSend
}

type packedSend struct {
	To   ProcessID
	Kind uint8
	Aux  uint64
}

// Send emits one message to process to; sends to processes outside the
// restriction's member set are silently dropped.
func (em *PackedEmitter) Send(to ProcessID, kind uint8, aux uint64) {
	if to >= 1 && int(to) <= em.n && em.mask&(1<<uint(to-1)) == 0 {
		return
	}
	em.sends = append(em.sends, packedSend{To: to, Kind: kind, Aux: aux})
}

// Broadcast emits one message to every process 1..n (the sender included),
// in ascending order — exactly sim.Broadcast filtered by the membership
// mask.
func (em *PackedEmitter) Broadcast(kind uint8, aux uint64) {
	for p := 1; p <= em.n; p++ {
		if em.mask&(1<<uint(p-1)) == 0 {
			continue
		}
		em.sends = append(em.sends, packedSend{To: ProcessID(p), Kind: kind, Aux: aux})
	}
}

// Packer defines an algorithm's packed encoding: the per-process record
// layout and the transition, decision, and hash functions over it. A Packer
// is built for one concrete (n, inputs) instance and is shared read-only by
// every configuration cloned from that instance's initial configuration —
// implementations must be safe for concurrent readers after construction
// (AttachSymmetry is called before any concurrent use; see below).
//
// The hash contract is strict bit-identity with the pointer engine:
// Hash64(rec, i) must equal the pointer state's Hash64 (or FNV over Key for
// states without Hasher64), SymHash64 must equal symStateHash of the
// pointer state, and PayloadHash64/PayloadSymHash64 must equal the
// payload's chains — for every reachable record and message. Packers for
// algorithms whose states or payloads deliberately opt out of SymHasher64
// (FLPKSet) must return the concrete hash from SymHash64 and ok=false from
// PayloadSymHash64, reproducing the pointer fallback.
type Packer interface {
	// Words returns the fixed record width in uint64 words.
	Words() int
	// Init writes process i's initial state into rec (rec is zeroed).
	Init(rec []uint64, i int)
	// Step applies one atomic step to rec in place, emitting sends through
	// em. It must mirror the pointer Step exactly: same state evolution,
	// same sends in the same order, and it must ignore corrupt messages.
	// in.Delivered aliases scratch and must not be retained.
	Step(rec []uint64, i int, in PackedInput, em *PackedEmitter)
	// Decided returns process i's decision, mirroring State.Decided.
	Decided(rec []uint64, i int) (Value, bool)
	// SendsDone mirrors the state's SendQuiescent answer (false for
	// algorithms without the interface).
	SendsDone(rec []uint64, i int) bool
	// Hash64 returns the state hash of rec, bit-identical to the pointer
	// state's (see stateHash).
	Hash64(rec []uint64, i int) uint64
	// SymHash64 returns the relabeled state hash under sym, bit-identical
	// to symStateHash of the pointer state. Implementations should cache
	// relabeling tables via AttachSymmetry but must stay correct for any
	// sym passed (compute on the fly when it is not the cached one).
	SymHash64(rec []uint64, i int, sym *Symmetry) uint64
	// AttachSymmetry lets the packer precompute relabeling tables for sym.
	// It is called from the search's initial configuration setup, before
	// any concurrent use, and may be called repeatedly with the same sym.
	AttachSymmetry(sym *Symmetry)
	// PayloadHash64 returns the GENUINE payload hash of m (ignoring
	// m.Corrupt — the configuration applies the Corrupted wrapping).
	PayloadHash64(m PackedMsg) uint64
	// PayloadSymHash64 returns the relabeled payload hash and ok=true when
	// the payload type implements SymHasher64, or ok=false for the concrete
	// fallback (again ignoring m.Corrupt).
	PayloadSymHash64(m PackedMsg, sym *Symmetry) (uint64, bool)
	// Unpack materializes process i's pointer-based State (the algorithm's
	// own state type, unwrapped from any restriction) for debug/explain
	// paths.
	Unpack(rec []uint64, i int) State
	// UnpackPayload materializes m's genuine Payload (the configuration
	// wraps it in Corrupted when m.Corrupt is set).
	UnpackPayload(m PackedMsg) Payload
}

// PackableAlgorithm is the opt-in interface algorithms implement to support
// the packed engine. NewPacker builds the packer for one concrete instance;
// inputs[i] is process i+1's proposal. The packed encoding assumes the
// algorithm's payloads do not implement Corruptible (Byzantine corruption
// uses the generic Corrupted wrapper) — true for every algorithm in this
// repository.
type PackableAlgorithm interface {
	Algorithm
	NewPacker(n int, inputs []Value) Packer
}

// PackerFor resolves the packed encoding for alg over the given proposal
// vector: it unwraps a Restrict wrapper into the send-membership mask,
// requires the (inner) algorithm to implement PackableAlgorithm, and
// requires n <= 64. ok=false means the caller must use the pointer engine.
func PackerFor(alg Algorithm, inputs []Value) (pk Packer, sendMask uint64, ok bool) {
	n := len(inputs)
	if n < 1 || n > 64 {
		return nil, 0, false
	}
	mask := uint64(1)<<uint(n) - 1
	if n == 64 {
		mask = ^uint64(0)
	}
	for {
		r, isR := alg.(*restricted)
		if !isR {
			break
		}
		mask = 0
		for _, p := range r.ids {
			if p >= 1 && int(p) <= n {
				mask |= 1 << uint(p-1)
			}
		}
		alg = r.inner
	}
	pa, isP := alg.(PackableAlgorithm)
	if !isP {
		return nil, 0, false
	}
	return pa.NewPacker(n, inputs), mask, true
}

// NewPackedConfiguration builds the initial packed configuration for alg
// with the given proposals, or ok=false when the algorithm has no packed
// encoding (see PackerFor). The result behaves exactly like
// NewConfiguration's for every Configuration method; Apply never records
// events (it returns a zero Event) — witness replay uses the pointer
// engine.
func NewPackedConfiguration(alg Algorithm, inputs []Value) (*Configuration, bool) {
	pk, mask, ok := PackerFor(alg, inputs)
	if !ok {
		return nil, false
	}
	n := len(inputs)
	w := pk.Words()
	c := &Configuration{
		n:         n,
		crashed:   make([]bool, n),
		decisions: make([]Value, n),
		nextMsgID: 1,
		pk:        pk,
		psend:     mask,
		pwords:    w,
		pstates:   make([]uint64, n*w),
		pbuf:      make([][]PackedMsg, n),
	}
	for i := 0; i < n; i++ {
		pk.Init(c.prec(i), i)
		c.decisions[i] = NoValue
		if v, decided := pk.Decided(c.prec(i), i); decided {
			c.decisions[i] = v
		}
	}
	c.recomputeFingerprint()
	return c, true
}

// Packed reports whether this configuration uses the packed engine.
func (c *Configuration) Packed() bool { return c.pk != nil }

// prec returns process slot i's packed record.
func (c *Configuration) prec(i int) []uint64 {
	return c.pstates[i*c.pwords : (i+1)*c.pwords]
}

// StateSendsDone reports whether process p's state proves, through the
// send-quiescence contract, that it never sends again — without
// materializing the state on the packed engine (package explore's
// partial-order reduction probes every live process per expansion).
func (c *Configuration) StateSendsDone(p ProcessID) bool {
	i := int(p) - 1
	if c.pk != nil {
		return c.pk.SendsDone(c.prec(i), i)
	}
	return StateSendsDone(c.states[i])
}

// packedPayloadHash is payloadHash for a packed message: the genuine
// payload hash from the packer, pushed through the Corrupted wrapper's
// chain when the message is corrupt.
func (c *Configuration) packedPayloadHash(m PackedMsg) uint64 {
	h := c.pk.PayloadHash64(m)
	if m.Corrupt {
		return fnvUint(fnvString(fnvOffset64, "byz"), h)
	}
	return h
}

// packedMsgComponent is msgComponent for a packed message.
func (c *Configuration) packedMsgComponent(recv int, m PackedMsg) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint(h, uint64(m.From))
	h = fnvUint(h, c.packedPayloadHash(m))
	return splitmix64(h) * bufSalt(recv)
}

// packedSymMsgTerm is symMsgTerm for a packed message. A corrupt message
// always takes the equivariant branch — the Corrupted wrapper implements
// SymHasher64 unconditionally, relabeling through the inner payload when it
// is equivariant and falling back to its concrete hash otherwise.
func (c *Configuration) packedSymMsgTerm(m PackedMsg) uint64 {
	h := uint64(fnvOffset64)
	if m.Corrupt {
		inner, ok := c.pk.PayloadSymHash64(m, c.sym)
		if !ok {
			inner = c.pk.PayloadHash64(m)
		}
		h = fnvUint(h, c.sym.relabel(m.From))
		h = fnvUint(h, fnvUint(fnvString(fnvOffset64, "byz"), inner))
	} else if sp, ok := c.pk.PayloadSymHash64(m, c.sym); ok {
		h = fnvUint(h, c.sym.relabel(m.From))
		h = fnvUint(h, sp)
	} else {
		h = fnvUint(h, uint64(m.From))
		h = fnvUint(h, c.pk.PayloadHash64(m))
	}
	return splitmix64(h)
}

// unpackPayload materializes a packed message's Payload, applying the
// Corrupted wrapper when the message carries a Byzantine value fault.
func (c *Configuration) unpackPayload(m PackedMsg) Payload {
	p := c.pk.UnpackPayload(m)
	if m.Corrupt {
		return Corrupted{Inner: p}
	}
	return p
}

// unpackMessage materializes a packed message as a Message addressed to
// process recv+1. SentAt is not tracked by the packed engine (Key and the
// fingerprints exclude it) and reads back as 0.
func (c *Configuration) unpackMessage(recv int, m PackedMsg) Message {
	return Message{
		ID:      m.ID,
		From:    m.From,
		To:      ProcessID(recv + 1),
		Payload: c.unpackPayload(m),
		fp:      m.fp,
		sfp:     m.sfp,
	}
}

// applyPacked is apply for packed configurations: the same validation, the
// same mutation order, the same fingerprint maintenance — but over records
// and PackedMsgs, with zero allocations on the non-fault path. It never
// materializes an Event (witness replay runs on the pointer engine), so
// record is accepted and ignored.
func (c *Configuration) applyPacked(req StepRequest) (Event, error) {
	p := req.Proc
	if p < 1 || int(p) > c.n {
		return Event{}, fmt.Errorf("sim: step for unknown process %d", p)
	}
	i := int(p) - 1
	if c.crashed[i] {
		return Event{}, fmt.Errorf("sim: process %d stepped after crashing", p)
	}
	nfaults := 0
	if req.OmitSends {
		nfaults++
	}
	if req.DropDeliver {
		nfaults++
	}
	if req.Corrupt {
		nfaults++
	}
	if nfaults > 1 {
		return Event{}, fmt.Errorf("sim: process %d step combines multiple fault actions", p)
	}
	if nfaults > 0 && (req.Crash || req.SilentCrash) {
		return Event{}, fmt.Errorf("sim: process %d step combines a fault action with a crash", p)
	}

	if req.SilentCrash {
		c.crashed[i] = true
		c.refreshProc(i)
		return Event{}, nil
	}

	delivered, drop, err := c.takePacked(i, req.Deliver)
	if err != nil {
		return Event{}, err
	}

	faulted := false
	in := PackedInput{Time: c.time, Delivered: delivered, FD: req.FD}
	if req.DropDeliver && len(delivered) > 0 {
		in.Delivered = nil
		faulted = true
	}
	em := &c.pem
	em.n = c.n
	em.mask = c.psend
	em.sends = em.sends[:0]
	c.pk.Step(c.prec(i), i, in, em)
	if drop > 0 {
		// The delivered slice aliased the buffer's prefix; now that Step has
		// consumed it (packers must not retain it), compact the buffer in
		// place. This must happen before the send loop appends new messages.
		buf := c.pbuf[i]
		c.pbuf[i] = append(buf[:0], buf[drop:]...)
	}

	prevDecision := c.decisions[i]
	if v, ok := c.pk.Decided(c.prec(i), i); ok {
		if v == NoValue {
			return Event{}, fmt.Errorf("sim: process %d decided the reserved NoValue", p)
		}
		if prevDecision != NoValue && prevDecision != v {
			return Event{}, fmt.Errorf("sim: process %d changed decision %d -> %d", p, prevDecision, v)
		}
		c.decisions[i] = v
	} else if prevDecision != NoValue {
		return Event{}, fmt.Errorf("sim: process %d retracted its decision", p)
	}

	for _, snd := range em.sends {
		if snd.To < 1 || int(snd.To) > c.n {
			return Event{}, fmt.Errorf("sim: process %d sent to unknown process %d", p, snd.To)
		}
		if req.Crash && req.OmitTo[snd.To] {
			continue
		}
		if req.OmitSends {
			faulted = true
			continue
		}
		m := PackedMsg{ID: c.nextMsgID, From: p, Kind: snd.Kind, Aux: snd.Aux}
		if req.Corrupt {
			m.Corrupt = true
			faulted = true
		}
		recv := int(snd.To) - 1
		m.fp = c.packedMsgComponent(recv, m)
		c.fp += m.fp
		if c.sym != nil {
			m.sfp = c.packedSymMsgTerm(m)
			c.symAddMsg(recv, m.sfp)
		}
		c.nextMsgID++
		c.pbuf[recv] = append(c.pbuf[recv], m)
	}

	if req.Crash {
		c.crashed[i] = true
	}
	if faulted {
		c.bumpFault(i)
	}
	c.refreshProc(i)
	c.time++
	return Event{}, nil
}

// takePacked is take over the packed buffer, returning the delivered
// messages in buffer order (the packer consumes them synchronously inside
// Step). On the prefix fast path the returned slice ALIASES the buffer and
// drop > 0 instructs the caller to compact c.pbuf[i] by that many leading
// messages after Step returns — deferring the compaction makes the take
// allocation-free. The fingerprint deltas are applied here either way (they
// are sums, so the order relative to the compaction is immaterial).
func (c *Configuration) takePacked(i int, ids []int64) (taken []PackedMsg, drop int, err error) {
	if len(ids) == 0 {
		return nil, 0, nil
	}
	buf := c.pbuf[i]
	// Fast path: ids matches a buffer prefix in order — the only delivery
	// shapes the explorer emits (flush and oldest).
	if len(ids) <= len(buf) {
		match := true
		for j, id := range ids {
			if buf[j].ID != id {
				match = false
				break
			}
		}
		if match {
			taken = buf[:len(ids):len(ids)]
			for j := range taken {
				c.fp -= taken[j].fp
				if c.sym != nil {
					c.symAddMsg(i, -taken[j].sfp)
				}
			}
			return taken, len(ids), nil
		}
	}
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, 0, fmt.Errorf("sim: duplicate delivery of message %d", id)
		}
		want[id] = true
	}
	taken = c.pdeliver[:0]
	rest := make([]PackedMsg, 0, len(buf))
	for _, m := range buf {
		if want[m.ID] {
			taken = append(taken, m)
			delete(want, m.ID)
		} else {
			rest = append(rest, m)
		}
	}
	if len(want) > 0 {
		missing := make([]int64, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sortInt64s(missing)
		return nil, 0, fmt.Errorf("sim: messages %v not pending for process %d", missing, i+1)
	}
	c.pdeliver = taken
	for j := range taken {
		c.fp -= taken[j].fp
		if c.sym != nil {
			c.symAddMsg(i, -taken[j].sfp)
		}
	}
	c.pbuf[i] = rest
	return taken, 0, nil
}

func sortInt64s(xs []int64) {
	for a := 1; a < len(xs); a++ {
		for b := a; b > 0 && xs[b] < xs[b-1]; b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
}
