package sim

import "fmt"

// This file implements the pluggable fault-model vocabulary of the
// simulator. The paper's impossibility arguments are not specific to clean
// crashes: Section II's model discussion and the Discussion section both
// point out that the partition and indistinguishability constructions apply
// verbatim in message-passing models with restricted communication —
// send-omission and receive-omission faulty processes, and (for the safety
// side of the argument) even value-faulty ones. The simulator therefore
// exposes, next to the crash directives of StepRequest, three per-step fault
// actions an adversary may charge against a process's fault budget:
//
//   - send omission: the step executes normally but ALL of its sends are
//     dropped before they reach any buffer;
//   - receive omission: the delivered subset L is consumed from the buffer
//     but never handed to the process (the messages are lost, exactly as if
//     the channel dropped them on the last hop);
//   - Byzantine value corruption: the step's sends are delivered, but every
//     payload is replaced by its deterministic corrupted variant (see
//     Corruptible and Corrupted).
//
// The configuration tracks, per process, how many fault events it has
// committed (FaultsUsed); budget enforcement is the caller's job — package
// sched enforces FaultPlan budgets and package explore enumerates fault
// actions only while budgets remain. A fault event is charged only when it
// had an effect (a dropped send set or delivered set that was non-empty, a
// corrupted send that existed): ineffective fault steps produce successors
// identical to their plain twins and deduplicate for free.
//
// Fingerprint contract: the per-process fault counts participate in the
// configuration fingerprint and in the orbit-canonical fingerprint — the
// same configuration with different spent budgets has different adversarial
// futures — through components that are EXACTLY ZERO while every count is
// zero (see procComponent and symBaseComponent). A run or search that never
// requests a fault action therefore produces bit-identical fingerprints,
// canonical fingerprints, and keys to the crash-only engine this layer was
// grafted onto; the differential tests pin that identity.

// FaultModel identifies a fault model of the adversary: which fault actions
// beyond crashes it may charge against faulty processes. The zero value is
// the crash-only model of the original engine.
type FaultModel int

// Fault models.
const (
	// FaultCrash is the crash-only model: processes fail only by stopping
	// (possibly omitting sends in their very last step, MASYNC clause (2)).
	FaultCrash FaultModel = iota
	// FaultSendOmission lets faulty processes drop all sends of a step.
	FaultSendOmission
	// FaultReceiveOmission lets faulty processes lose the messages delivered
	// to a step (consumed from the buffer, never seen by the process).
	FaultReceiveOmission
	// FaultByzantine lets faulty processes corrupt the payload of every send
	// of a step (deterministic value corruption; see Corruptible).
	FaultByzantine
)

func (m FaultModel) String() string {
	switch m {
	case FaultCrash:
		return "crash"
	case FaultSendOmission:
		return "send-omission"
	case FaultReceiveOmission:
		return "receive-omission"
	case FaultByzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("fault(%d)", int(m))
	}
}

// ParseFaultModel parses the CLI spelling of a fault model: "" or "crash",
// "send-omission", "receive-omission", or "byzantine".
func ParseFaultModel(s string) (FaultModel, error) {
	switch s {
	case "", "crash":
		return FaultCrash, nil
	case "send-omission":
		return FaultSendOmission, nil
	case "receive-omission":
		return FaultReceiveOmission, nil
	case "byzantine":
		return FaultByzantine, nil
	default:
		return 0, fmt.Errorf("sim: unknown fault model %q (want crash, send-omission, receive-omission, or byzantine)", s)
	}
}

// Corruptible is an optional Payload capability: a payload that can produce
// its deterministic Byzantine-corrupted variant. The returned payload must
// be immutable like every payload, must differ from the original under Key,
// and must be deterministic — corruption is part of the adversary's
// strategy, and witness replay re-corrupts the same sends to reproduce the
// same run. Payloads without the capability are wrapped in Corrupted, which
// the repository's algorithms do not recognize and therefore ignore: the
// weakest value fault, an unintelligible message.
type Corruptible interface {
	Corrupt() Payload
}

// Corrupted is the generic Byzantine wrapper applied to payloads that do not
// implement Corruptible: the original payload garbled beyond the receiving
// algorithm's type assertions.
type Corrupted struct {
	Inner Payload
}

// Key implements Payload.
func (c Corrupted) Key() string { return "byz(" + c.Inner.Key() + ")" }

// Hash64 implements Hasher64, equality-compatible with Key.
func (c Corrupted) Hash64() uint64 {
	return fnvUint(fnvString(fnvOffset64, "byz"), payloadHash(c.Inner))
}

// SymHash64 implements SymHasher64: the wrapper relabels through the inner
// payload when it is equivariant, and falls back to the concrete hash
// otherwise (mirroring symMsgTerm's fallback).
func (c Corrupted) SymHash64(relabel func(ProcessID) uint64) uint64 {
	h := fnvString(fnvOffset64, "byz")
	if sh, ok := c.Inner.(SymHasher64); ok {
		return fnvUint(h, sh.SymHash64(relabel))
	}
	return fnvUint(h, payloadHash(c.Inner))
}

// corruptPayload returns the deterministic corrupted variant of p: its
// Corruptible self-corruption when implemented, the generic Corrupted
// wrapper otherwise.
func corruptPayload(p Payload) Payload {
	if c, ok := p.(Corruptible); ok {
		return c.Corrupt()
	}
	return Corrupted{Inner: p}
}

// FaultsUsed returns the number of fault events process p has committed
// (send/receive omissions or corruptions that had an effect). It is 0 for
// every process of a run that never requested a fault action.
func (c *Configuration) FaultsUsed(p ProcessID) int {
	i := int(p) - 1
	if i < 0 || i >= len(c.faults) {
		return 0
	}
	return int(c.faults[i])
}

// FaultyProcesses returns the number of processes that have committed at
// least one fault event.
func (c *Configuration) FaultyProcesses() int {
	n := 0
	for _, f := range c.faults {
		if f != 0 {
			n++
		}
	}
	return n
}

// bumpFault charges one fault event to process slot i. The caller must
// refresh the slot's fingerprint components afterwards (apply does, via its
// trailing refreshProc).
func (c *Configuration) bumpFault(i int) {
	if len(c.faults) != c.n {
		f := make([]int32, c.n)
		copy(f, c.faults)
		c.faults = f
	}
	c.faults[i]++
}

// faultCount returns slot i's committed fault events without forcing the
// lazily allocated slice.
func (c *Configuration) faultCount(i int) int32 {
	if i >= len(c.faults) {
		return 0
	}
	return c.faults[i]
}
