package sim

// Native fuzz targets for the incremental fingerprint maintenance: random
// Apply/crash/clone sequences driven by the fuzzer's byte stream, asserting
// after every operation that the incrementally maintained hashes equal a
// from-scratch recomputation. This is the property the whole search stack
// leans on — a drifting incremental hash would silently merge or duplicate
// configurations in every explorer — so it gets fuzzed, not just unit
// tested. CI runs each target briefly (see the fuzz-smoke step); the seed
// corpus below also runs as ordinary tests on every `go test`.

import (
	"fmt"
	"testing"
)

// fuzzAlg is a deterministic two-phase broadcaster exercising every
// fingerprint path: a first-step broadcast, a second broadcast once two
// messages were absorbed (so sends happen at different depths), a growing
// per-sender receipt multiset (order-independent state hashing), and a
// decision once three distinct senders were heard.
type fuzzAlg struct{}

func (fuzzAlg) Name() string { return "fuzz" }

func (fuzzAlg) Init(n int, id ProcessID, input Value) State {
	return &fuzzState{n: n, id: id, input: input, heard: map[ProcessID]int{}, decision: NoValue}
}

type fuzzState struct {
	n        int
	id       ProcessID
	input    Value
	phase    int // 0 = first broadcast pending, 1 = second pending, 2 = done
	total    int
	heard    map[ProcessID]int
	decision Value
}

func (s *fuzzState) clone() *fuzzState {
	cp := *s
	cp.heard = make(map[ProcessID]int, len(s.heard))
	for p, c := range s.heard {
		cp.heard[p] = c
	}
	return &cp
}

func (s *fuzzState) Step(in Input) (State, []Send) {
	next := s.clone()
	var sends []Send
	if next.phase == 0 {
		next.phase = 1
		sends = Broadcast(next.n, testPayload{Tag: "F1", From: next.id})
	}
	for _, m := range in.Delivered {
		if p, ok := m.Payload.(testPayload); ok {
			next.heard[p.From]++
			next.total++
		}
	}
	if next.phase == 1 && next.total >= 2 {
		next.phase = 2
		sends = append(sends, Broadcast(next.n, testPayload{Tag: "F2", From: next.id})...)
	}
	if next.decision == NoValue && len(next.heard) >= 3 {
		next.decision = next.input
	}
	return next, sends
}

func (s *fuzzState) Decided() (Value, bool) { return s.decision, s.decision != NoValue }

func (s *fuzzState) Key() string {
	return fmt.Sprintf("fz{%d,%d,%d,%d,%s,%d}", s.id, s.input, s.phase, s.total, encodeHeard(s.heard), s.decision)
}

// Hash64 implements Hasher64 (the heard multiset folds as a commutative
// sum, mirroring the production states).
func (s *fuzzState) Hash64() uint64 {
	h := HashString(HashSeed(), "fz")
	h = HashUint(h, uint64(s.id))
	h = HashUint(h, uint64(s.input))
	h = HashUint(h, uint64(s.phase))
	h = HashUint(h, uint64(s.total))
	h = HashUint(h, hashHeard(s.heard, func(p ProcessID) uint64 { return uint64(p) }))
	h = HashUint(h, uint64(s.decision))
	return h
}

// SymHash64 implements SymHasher64: Hash64 with embedded ids relabeled.
func (s *fuzzState) SymHash64(relabel func(ProcessID) uint64) uint64 {
	h := HashString(HashSeed(), "fz")
	h = HashUint(h, relabel(s.id))
	h = HashUint(h, uint64(s.input))
	h = HashUint(h, uint64(s.phase))
	h = HashUint(h, uint64(s.total))
	h = HashUint(h, hashHeard(s.heard, relabel))
	h = HashUint(h, uint64(s.decision))
	return h
}

func hashHeard(heard map[ProcessID]int, label func(ProcessID) uint64) uint64 {
	var sum uint64
	for p, c := range heard {
		sum += HashMix(HashUint(HashUint(HashSeed(), label(p)), uint64(c)))
	}
	return sum
}

func encodeHeard(heard map[ProcessID]int) string {
	// Deterministic by scanning ids in order; n is tiny in these tests.
	out := ""
	for p := ProcessID(1); int(p) <= 8; p++ {
		if c, ok := heard[p]; ok {
			out += fmt.Sprintf("%d:%d;", p, c)
		}
	}
	return out
}

// testPayload gains fast and symmetric hashes here so the canonical fuzz
// target exercises the Hasher64 and relabeled-payload paths too (both are
// equality-compatible with its Key).
func (p testPayload) Hash64() uint64 {
	return HashUint(HashString(HashSeed(), p.Tag), uint64(p.From))
}

func (p testPayload) SymHash64(relabel func(ProcessID) uint64) uint64 {
	return HashUint(HashString(HashSeed(), p.Tag), relabel(p.From))
}

// fuzzDrive interprets the fuzzer's byte stream as a sequence of simulator
// operations on a fresh 4-process configuration (proposals [0,0,1,1]: two
// non-trivial symmetry classes) and invokes check after every mutation.
// Inapplicable operations (stepping a crashed process, empty deliveries)
// are skipped, so every byte stream is a valid schedule prefix.
func fuzzDrive(t *testing.T, data []byte, attachSym bool, check func(t *testing.T, cfg *Configuration)) {
	inputs := []Value{0, 0, 1, 1}
	live := []ProcessID{1, 2, 3, 4}
	cfg := NewConfiguration(fuzzAlg{}, inputs)
	if attachSym {
		cfg.AttachSymmetry(NewSymmetry(inputs, live))
	}
	var pool ClonePool
	check(t, cfg)
	for i := 0; i+1 < len(data) && i < 120; i += 2 {
		p := ProcessID(int(data[i])%len(inputs) + 1)
		if cfg.Crashed(p) {
			continue
		}
		req := StepRequest{Proc: p}
		switch data[i+1] % 11 {
		case 0: // empty-delivery step
		case 1: // deliver the oldest pending message
			if id, ok := cfg.OldestMessageID(p); ok {
				req.Deliver = []int64{id}
			}
		case 2: // flush the buffer
			req.Deliver = cfg.DeliverAll(p)
		case 3: // crash after flushing
			req.Deliver = cfg.DeliverAll(p)
			req.Crash = true
		case 4: // crash with full omission
			req.Crash = true
			req.OmitTo = map[ProcessID]bool{1: true, 2: true, 3: true, 4: true}
		case 5: // silent crash
			req.SilentCrash = true
		case 6: // deep clone swap: continue on the copy
			cfg = cfg.Clone()
			check(t, cfg)
			continue
		case 7: // pooled clone swap: continue on a recycled destination
			next := cfg.CloneInto(pool.Get())
			pool.Put(cfg)
			cfg = next
			check(t, cfg)
			continue
		case 8: // send-omission step
			req.OmitSends = true
		case 9: // receive-omission flush
			req.Deliver = cfg.DeliverAll(p)
			req.DropDeliver = true
		case 10: // Byzantine value-corruption step
			req.Corrupt = true
		}
		if err := cfg.ApplyQuiet(req); err != nil {
			t.Fatalf("apply %+v: %v", req, err)
		}
		check(t, cfg)
	}
}

// fuzzSeeds is the shared seed corpus: empty, short, and long op streams
// plus patterns that force crashes, omissions, and clone churn early.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0})
	f.Add([]byte{0, 2, 1, 2, 2, 2, 3, 2, 0, 1, 1, 1})
	f.Add([]byte{0, 0, 1, 0, 0, 3, 1, 4, 2, 5, 3, 2})
	f.Add([]byte{0, 0, 1, 6, 2, 7, 3, 0, 0, 2, 1, 2, 2, 2, 3, 2, 0, 7, 1, 1})
	f.Add([]byte{3, 0, 2, 0, 1, 0, 0, 0, 3, 2, 2, 2, 1, 2, 0, 2, 3, 1, 2, 1, 1, 1, 0, 1})
	// Omission/corruption fault op streams: send-omission broadcasts,
	// receive-omission flushes, corrupted broadcasts, interleaved with
	// crashes and clone churn so fault counts survive copying.
	f.Add([]byte{0, 8, 1, 8, 2, 0, 3, 0, 0, 9, 1, 9, 2, 2, 3, 2})
	f.Add([]byte{0, 10, 1, 10, 2, 2, 3, 2, 0, 2, 1, 9, 2, 8, 3, 10})
	f.Add([]byte{0, 8, 0, 6, 1, 9, 1, 7, 2, 10, 2, 3, 3, 9, 0, 5, 1, 2})
}

// FuzzFingerprintIncremental drives random Apply/crash/clone sequences and
// asserts that the incrementally maintained fingerprint — and its
// crash-normalized LiveFingerprint projection — always equal a from-scratch
// recomputation on a fresh clone.
func FuzzFingerprintIncremental(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDrive(t, data, false, func(t *testing.T, cfg *Configuration) {
			scratch := cfg.Clone()
			scratch.recomputeFingerprint()
			if scratch.Fingerprint() != cfg.Fingerprint() {
				t.Fatalf("incremental fingerprint %#x != recomputed %#x\nconfig: %s",
					cfg.Fingerprint(), scratch.Fingerprint(), cfg.Key())
			}
			if got, want := cfg.LiveFingerprint(), scratch.LiveFingerprint(); got != want {
				t.Fatalf("incremental LiveFingerprint %#x != recomputed %#x\nconfig: %s", got, want, cfg.Key())
			}
		})
	})
}

// FuzzCanonical64 is FuzzFingerprintIncremental for the orbit-canonical
// fingerprint: the incrementally patched canonical sum (and its
// crash-normalized LiveCanonical64 projection) must equal the from-scratch
// recomputation after every operation.
func FuzzCanonical64(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDrive(t, data, true, func(t *testing.T, cfg *Configuration) {
			scratch := cfg.Clone()
			scratch.recomputeSymmetry()
			if scratch.Canonical64() != cfg.Canonical64() {
				t.Fatalf("incremental canonical %#x != recomputed %#x\nconfig: %s",
					cfg.Canonical64(), scratch.Canonical64(), cfg.Key())
			}
			if got, want := cfg.LiveCanonical64(), scratch.LiveCanonical64(); got != want {
				t.Fatalf("incremental LiveCanonical64 %#x != recomputed %#x\nconfig: %s", got, want, cfg.Key())
			}
		})
	})
}
