package sim

import "testing"

func mustRun(t *testing.T, inputs []Value, steps int) *Run {
	t.Helper()
	run, err := Execute(echoAlg{}, inputs, &stepAll{maxSteps: steps}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return run
}

func TestCheckAdmissibleCleanRun(t *testing.T) {
	run := mustRun(t, []Value{1, 2}, 4)
	if vs := CheckAdmissible(run, AdmissibilityOptions{}); len(vs) != 0 {
		t.Fatalf("violations on clean run: %v", vs)
	}
}

func TestCheckAdmissiblePendingBuffers(t *testing.T) {
	// One step each: broadcasts are still pending.
	run := mustRun(t, []Value{1, 2}, 2)
	vs := CheckAdmissible(run, AdmissibilityOptions{RequireEmptyBuffers: true})
	if len(vs) == 0 {
		t.Fatal("expected eventual-delivery violations for pending buffers")
	}
	for _, v := range vs {
		if v.Clause != "eventual-delivery" {
			t.Fatalf("unexpected violation %v", v)
		}
	}
}

func TestCheckAdmissibleBlockedReporting(t *testing.T) {
	// neverDecide leaves all processes undecided; a run that ends without
	// reporting them blocked violates clause (1)'s finite-prefix analogue.
	run, err := Execute(neverDecideAlg{}, []Value{1, 2}, &stepAll{maxSteps: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want both processes", run.Blocked)
	}
	if vs := CheckAdmissible(run, AdmissibilityOptions{}); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Forge a run that hides the blocked processes.
	run.Blocked = nil
	vs := CheckAdmissible(run, AdmissibilityOptions{})
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2 correct-steps violations", vs)
	}
}

type neverDecideAlg struct{}

func (neverDecideAlg) Name() string { return "never" }
func (neverDecideAlg) Init(n int, id ProcessID, input Value) State {
	return neverState{}
}

type neverState struct{ ticks int }

func (s neverState) Step(in Input) (State, []Send) { return neverState{ticks: s.ticks + 1}, nil }
func (s neverState) Decided() (Value, bool)        { return NoValue, false }
func (s neverState) Key() string                   { return "never" }

func TestIndistinguishableForSameSchedule(t *testing.T) {
	a := mustRun(t, []Value{1, 2, 3}, 6)
	b := mustRun(t, []Value{1, 2, 3}, 6)
	for p := ProcessID(1); p <= 3; p++ {
		if !IndistinguishableFor(a, b, p) {
			t.Errorf("identical runs distinguishable for %d", p)
		}
	}
	if !IndistinguishableForAll(a, b, []ProcessID{1, 2, 3}) {
		t.Error("identical runs not ~D")
	}
}

func TestIndistinguishableForDifferentInputs(t *testing.T) {
	a := mustRun(t, []Value{1, 2}, 4)
	b := mustRun(t, []Value{9, 2}, 4)
	if IndistinguishableFor(a, b, 1) {
		t.Error("runs with different inputs for p1 indistinguishable for p1")
	}
	// echoAlg decides before observing others, so p2 cannot distinguish.
	if !IndistinguishableFor(a, b, 2) {
		t.Error("p2 distinguished runs although its own input and observations agree")
	}
}

func TestIndistinguishabilityTruncatesAtDecision(t *testing.T) {
	// Same inputs, different run lengths: states after the decision step
	// may differ (message counters), but Definition 2 only compares until
	// decision.
	a := mustRun(t, []Value{1, 2}, 2)
	b := mustRun(t, []Value{1, 2}, 6)
	for p := ProcessID(1); p <= 2; p++ {
		if !IndistinguishableFor(a, b, p) {
			t.Errorf("runs distinguishable for %d despite equal prefixes until decision", p)
		}
	}
}

func TestCompatibleFor(t *testing.T) {
	a1 := mustRun(t, []Value{1, 2}, 4)
	a2 := mustRun(t, []Value{3, 2}, 4)
	b1 := mustRun(t, []Value{1, 2}, 6)
	ok, _ := CompatibleFor([]*Run{a1}, []*Run{b1}, []ProcessID{1, 2})
	if !ok {
		t.Fatal("a1 should be compatible with {b1}")
	}
	ok, witness := CompatibleFor([]*Run{a1, a2}, []*Run{b1}, []ProcessID{1})
	if ok {
		t.Fatal("a2 should not match b1 for p1 (different input)")
	}
	if witness != a2 {
		t.Fatalf("witness = %v, want a2", witness)
	}
}

func TestRunFailurePatternHelpers(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	run := &Run{Algorithm: "echo", Inputs: []Value{1, 2}, Final: c}
	ev, err := c.Apply(StepRequest{Proc: 1, Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)
	ev, err = c.Apply(StepRequest{Proc: 2})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)

	if got := run.CrashTime(1); got != 0 {
		t.Errorf("CrashTime(1) = %d, want 0", got)
	}
	if got := run.CrashTime(2); got != -1 {
		t.Errorf("CrashTime(2) = %d, want -1", got)
	}
	if !run.InFailurePattern(1, 1) {
		t.Error("p1 should be in F(1)")
	}
	if run.InFailurePattern(1, 0) {
		t.Error("p1 stepped at time 0, so p1 not in F(0)")
	}
	if run.InFailurePattern(2, 5) {
		t.Error("correct p2 must never be in F(t)")
	}
	faulty := run.Faulty()
	if len(faulty) != 1 || faulty[0] != 1 {
		t.Errorf("Faulty = %v, want [1]", faulty)
	}
}
