package sim_test

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

// This file pins the on-disk stability of the fingerprint encoding
// (sim.FingerprintVersion): the 64-bit fingerprints and orbit-canonical
// hashes of a fixed corpus of configurations, computed once and committed
// as constants. The encoding intentionally contains no per-process seed, so
// these values must be identical on every machine, architecture, and run.
// Package explore persists fingerprint-derived artifacts (search
// checkpoints) whose deduplication decisions are only valid under the key
// function that made them; if this test fails, the encoding changed — bump
// sim.FingerprintVersion (invalidating outstanding checkpoints) and
// re-record the constants below.

// stableCase builds one corpus configuration and states its pinned hashes.
type stableCase struct {
	name      string
	build     func(t *testing.T) *sim.Configuration
	fp        uint64
	canonical uint64 // 0 = concrete-only case (no symmetry attached)
}

// step applies a request, failing the test on error.
func step(t *testing.T, c *sim.Configuration, req sim.StepRequest) {
	t.Helper()
	if _, err := c.Apply(req); err != nil {
		t.Fatal(err)
	}
}

func stableCases() []stableCase {
	return []stableCase{
		{
			name: "minwait-n3-initial",
			build: func(t *testing.T) *sim.Configuration {
				return sim.NewConfiguration(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2})
			},
			fp: 0x4a68a7d1b366af35,
		},
		{
			name: "minwait-n3-broadcasts-and-crash",
			build: func(t *testing.T) *sim.Configuration {
				c := sim.NewConfiguration(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2})
				step(t, c, sim.StepRequest{Proc: 1})
				step(t, c, sim.StepRequest{Proc: 2})
				step(t, c, sim.StepRequest{Proc: 3, Crash: true, OmitTo: map[sim.ProcessID]bool{2: true}})
				step(t, c, sim.StepRequest{Proc: 1, Deliver: c.DeliverAll(1)})
				return c
			},
			fp: 0x146c997210637b52,
		},
		{
			name: "minwait-n4-uniform-symmetric",
			build: func(t *testing.T) *sim.Configuration {
				inputs := []sim.Value{7, 7, 7, 7}
				live := []sim.ProcessID{1, 2, 3, 4}
				c := sim.NewConfiguration(algorithms.MinWait{F: 1}, inputs)
				c.AttachSymmetry(sim.NewSymmetry(inputs, live))
				step(t, c, sim.StepRequest{Proc: 2})
				step(t, c, sim.StepRequest{Proc: 4})
				step(t, c, sim.StepRequest{Proc: 1, Deliver: c.DeliverAll(1)})
				return c
			},
			fp:        0xb9d95477febbf41a,
			canonical: 0xfe8a0dfbbde6596e,
		},
		{
			name: "flpkset-n3-initial",
			build: func(t *testing.T) *sim.Configuration {
				return sim.NewConfiguration(algorithms.FLPKSet{F: 1}, []sim.Value{0, 1, 2})
			},
			fp: 0x4506fa633670dbc3,
		},
		{
			name: "firstheard-n3-delivery-decides",
			build: func(t *testing.T) *sim.Configuration {
				c := sim.NewConfiguration(algorithms.FirstHeard{}, []sim.Value{5, 6, 7})
				step(t, c, sim.StepRequest{Proc: 1})
				step(t, c, sim.StepRequest{Proc: 2, Deliver: c.DeliverAll(2)})
				return c
			},
			fp: 0x97c11205703f8164,
		},
		{
			name: "quorummin-n3-silent-crash",
			build: func(t *testing.T) *sim.Configuration {
				c := sim.NewConfiguration(algorithms.QuorumMin{}, []sim.Value{3, 1, 2})
				step(t, c, sim.StepRequest{Proc: 2, SilentCrash: true})
				step(t, c, sim.StepRequest{Proc: 1})
				return c
			},
			fp: 0x26fcf7939fb03032,
		},
	}
}

// TestFingerprintEncodingStable asserts the committed corpus hashes under
// fingerprint encoding v1. Record mode: run with -run TestFingerprintEncodingStable
// -v after an intended change, copy the logged values, and bump
// sim.FingerprintVersion.
func TestFingerprintEncodingStable(t *testing.T) {
	if got, want := sim.FingerprintVersion, 1; got != want {
		t.Fatalf("FingerprintVersion = %d; this test pins v%d — update the corpus constants alongside the bump", got, want)
	}
	for _, tc := range stableCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build(t)
			t.Logf("fp=%#x canonical-applicable=%t", c.Fingerprint(), tc.canonical != 0)
			if got := c.Fingerprint(); got != tc.fp {
				t.Errorf("Fingerprint() = %#x, want %#x — the encoding changed; bump sim.FingerprintVersion and re-record", got, tc.fp)
			}
			if tc.canonical != 0 {
				t.Logf("canonical=%#x", c.Canonical64())
				if got := c.Canonical64(); got != tc.canonical {
					t.Errorf("Canonical64() = %#x, want %#x — the symmetric encoding changed; bump sim.FingerprintVersion and re-record", got, tc.canonical)
				}
			}
		})
	}
}
