package sim

// This file implements the orbit-canonical configuration fingerprint behind
// package explore's symmetry reduction. The impossibility arguments of the
// paper are symmetric in process identities: a partition or
// indistinguishability argument never depends on WHICH processes form a
// group, only on the group's size, inputs, and crash pattern. Exploration
// can therefore identify configurations that are process-renamings of each
// other — provided the renaming preserves everything the search fixed up
// front: the proposal assignment and the live set. The permutations with
// that property form the stabilizer of the initial input assignment, and
// Canonical64 is a fingerprint that is invariant under exactly those
// renamings:
//
//	sig(p)      = mix(class(p), crashed(p), decision(p), symStateHash(p)
//	                  + Σ_{m ∈ buffer(p)} mix(class(m.From), symPayloadHash(m)))
//	Canonical64 = Σ_p mix(sig(p))
//
// Process identities appear only through their input class (class(p) = the
// equivalence class of processes with p's proposal and liveness), both in
// the per-process slot (the outer sum is unsalted, so slots of the same
// class are interchangeable) and inside states and payloads (states opt in
// via SymHasher64, hashing embedded process ids through a relabeling
// function instead of raw). Renaming two same-class processes permutes the
// summands of the outer sum and fixes every inner term, so the canonical
// fingerprint is unchanged; renaming across classes changes class labels
// and is correctly distinguished.
//
// Like the plain fingerprint, Canonical64 is maintained incrementally in
// O(changed) by Apply/take/SilentCrash when a Symmetry is attached: per
// process the base component and the buffered-message term sum are cached,
// and the outer sum is patched by subtracting the stale mixed signature and
// adding the fresh one.
//
// Soundness caveat (documented for explore's users): the signature is a
// one-round refinement, not a full graph canonicalization, so two
// configurations that are NOT renamings of each other can in principle
// share a canonical fingerprint when their per-process signatures form
// equal multisets with different "wiring" between same-class processes.
// For the paper's protocols the differential tests show verdict parity;
// symmetry reduction is nevertheless an explicit opt-in knob.

// SymHasher64 is an optional interface for State and Payload
// implementations that can hash themselves under a process-id relabeling:
// SymHash64 must hash exactly the content Hash64/Key covers, but fold every
// embedded ProcessID through relabel instead of raw, and fold collections
// keyed or ordered by process id as multisets of relabeled entries (a
// concrete-id sort order is not preserved by renaming). Implementations
// make their algorithm eligible for orbit-collapsing symmetry reduction;
// states and payloads without it fall back to their concrete hash, which
// keeps searches correct but collapses nothing.
type SymHasher64 interface {
	SymHash64(relabel func(ProcessID) uint64) uint64
}

// Symmetry captures the stabilizer of one search's initial conditions: the
// partition of 1..n into classes of interchangeable processes (equal
// proposal, equal liveness). It is immutable and safe to share across the
// configurations and worker goroutines of a search.
type Symmetry struct {
	labels  []uint64 // labels[p-1]: mixed class label of process p
	relabel func(ProcessID) uint64
	classes int
}

// NewSymmetry builds the input-stabilizer classes for a system with the
// given proposals in which exactly the processes in live are scheduled
// (everyone else is initially dead). Two processes are interchangeable iff
// they propose the same value and are both live or both initially dead.
func NewSymmetry(inputs []Value, live []ProcessID) *Symmetry {
	n := len(inputs)
	isLive := make([]bool, n)
	for _, p := range live {
		if p >= 1 && int(p) <= n {
			isLive[p-1] = true
		}
	}
	sym := &Symmetry{labels: make([]uint64, n)}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		h := uint64(fnvOffset64)
		h = fnvUint(h, uint64(inputs[i]))
		if isLive[i] {
			h = fnvUint(h, 1)
		}
		sym.labels[i] = splitmix64(h) | 1
		if !seen[sym.labels[i]] {
			seen[sym.labels[i]] = true
			sym.classes++
		}
	}
	sym.relabel = func(p ProcessID) uint64 {
		if p < 1 || int(p) > n {
			return uint64(p) // out-of-range ids hash as themselves
		}
		return sym.labels[p-1]
	}
	return sym
}

// Classes returns the number of distinct interchangeability classes; a
// count equal to n means the stabilizer is trivial and symmetry reduction
// cannot collapse anything.
func (s *Symmetry) Classes() int { return s.classes }

// Label returns the class label of process p.
func (s *Symmetry) Label(p ProcessID) uint64 { return s.relabel(p) }

// symStateHash hashes a state under the symmetry's relabeling: the fast
// path for SymHasher64 implementations, the concrete state hash otherwise.
func symStateHash(s State, sym *Symmetry) uint64 {
	if h, ok := s.(SymHasher64); ok {
		return h.SymHash64(sym.relabel)
	}
	return stateHash(s)
}

// symStateHash64 returns slot i's relabeled state hash on either engine:
// the packer's SymHash64 on the packed engine (which reproduces the pointer
// fallback for non-equivariant algorithms), symStateHash otherwise.
func (c *Configuration) symStateHash64(i int) uint64 {
	if c.pk != nil {
		return c.pk.SymHash64(c.prec(i), i, c.sym)
	}
	return symStateHash(c.states[i], c.sym)
}

// symBaseComponent hashes process slot i's relabeled content: class label,
// crash flag, write-once decision, and relabeled state.
func (c *Configuration) symBaseComponent(i int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint(h, c.sym.labels[i])
	if c.crashed[i] {
		h = fnvUint(h, 1)
	}
	h = fnvUint(h, uint64(c.decisions[i]))
	h = fnvUint(h, c.symStateHash64(i))
	if f := c.faultCount(i); f != 0 {
		// Fault counts fold inside the per-slot signature (not as a separate
		// additive term) so renamings must match counts slot-by-slot; guarded
		// to keep crash-only canonical fingerprints bit-identical.
		h = fnvUint(h, uint64(f))
	}
	return splitmix64(h)
}

// symMsgTerm hashes one buffered message for the receiver's signature: the
// sender's class label plus the relabeled payload. The receiver is encoded
// by which process's signature the term is summed into, not by a salt, so
// renaming receivers within a class permutes whole signatures. Payloads
// that did not opt into SymHasher64 are hashed fully concretely — sender id
// included — so a non-equivariant algorithm's messages never collapse.
func symMsgTerm(sym *Symmetry, m *Message) uint64 {
	h := uint64(fnvOffset64)
	if sh, ok := m.Payload.(SymHasher64); ok {
		h = fnvUint(h, sym.relabel(m.From))
		h = fnvUint(h, sh.SymHash64(sym.relabel))
	} else {
		h = fnvUint(h, uint64(m.From))
		h = fnvUint(h, payloadHash(m.Payload))
	}
	return splitmix64(h)
}

// symSig returns the mixed signature of process slot i from the cached
// components.
func (c *Configuration) symSig(i int) uint64 {
	return splitmix64(c.symBase[i] + c.symMsg[i])
}

// symRefreshBase re-hashes slot i's base component after its state, crash
// flag, or decision changed, patching the canonical sum.
func (c *Configuration) symRefreshBase(i int) {
	old := c.symSig(i)
	c.symBase[i] = c.symBaseComponent(i)
	c.symfp += c.symSig(i) - old
}

// symAddMsg folds message term delta into receiver slot i's buffered-message
// sum (pass a negated term to remove), patching the canonical sum.
func (c *Configuration) symAddMsg(i int, delta uint64) {
	old := c.symSig(i)
	c.symMsg[i] += delta
	c.symfp += c.symSig(i) - old
}

// AttachSymmetry enables orbit-canonical fingerprint maintenance on the
// configuration (and, through Clone/CloneInto, on every configuration
// derived from it). The symmetry must describe this configuration's system:
// same process count, and classes grouping exactly the processes the caller
// treats as interchangeable.
func (c *Configuration) AttachSymmetry(sym *Symmetry) {
	c.sym = sym
	if c.pk != nil {
		// Let the packer precompute its relabeling tables once, before the
		// search shares it across worker goroutines.
		c.pk.AttachSymmetry(sym)
	}
	c.recomputeSymmetry()
}

// HasSymmetry reports whether an orbit-canonical fingerprint is being
// maintained.
func (c *Configuration) HasSymmetry() bool { return c.sym != nil }

// DetachSymmetry stops orbit-canonical maintenance on this configuration
// only (clones taken FROM it still inherit nothing; clones INTO it re-arm
// it when the source has symmetry). Scratch configurations that are stepped
// but never keyed — package explore's quiescence probe — call it after each
// pooled clone so probe steps skip the canonical hashing entirely.
func (c *Configuration) DetachSymmetry() { c.sym = nil }

// Canonical64 returns the orbit-canonical 64-bit fingerprint maintained
// since AttachSymmetry: equal for configurations that are renamings of each
// other under input/liveness-preserving process permutations (for
// algorithms implementing SymHasher64). It is 0-valued and meaningless
// before AttachSymmetry.
func (c *Configuration) Canonical64() uint64 { return c.symfp }

// LiveCanonical64 is LiveFingerprint for the orbit-canonical fingerprint:
// the canonical sum with every crashed slot's signature replaced by a
// normalized one covering only the class label, the crash flag, and the
// write-once decision — the crashed state hash and the crashed slot's
// buffered-message terms are dropped as behaviourally inert. Like
// Canonical64 it is meaningless before AttachSymmetry. The normalization is
// sound independently of SymHasher64 opt-ins: it never merges by renaming,
// only by inertness, and the live slots keep their Canonical64 hashing.
func (c *Configuration) LiveCanonical64() uint64 {
	s := c.symfp
	for i := 0; i < c.n; i++ {
		if !c.crashed[i] {
			continue
		}
		h := uint64(fnvOffset64)
		h = fnvUint(h, c.sym.labels[i])
		h = fnvUint(h, 1)
		h = fnvUint(h, uint64(c.decisions[i]))
		s += splitmix64(splitmix64(h)) - c.symSig(i)
	}
	return s
}

// recomputeSymmetry rebuilds the canonical fingerprint and its per-slot
// caches from scratch: AttachSymmetry uses it once, the symmetry tests use
// it to cross-check the incremental maintenance.
func (c *Configuration) recomputeSymmetry() {
	if cap(c.symBase) < c.n {
		c.symBase = make([]uint64, c.n)
		c.symMsg = make([]uint64, c.n)
	}
	c.symBase = c.symBase[:c.n]
	c.symMsg = c.symMsg[:c.n]
	c.symfp = 0
	for i := 0; i < c.n; i++ {
		c.symBase[i] = c.symBaseComponent(i)
		c.symMsg[i] = 0
		if c.pk != nil {
			for j := range c.pbuf[i] {
				m := &c.pbuf[i][j]
				m.sfp = c.packedSymMsgTerm(*m)
				c.symMsg[i] += m.sfp
			}
		} else {
			for j := range c.buffers[i] {
				m := &c.buffers[i][j]
				m.sfp = symMsgTerm(c.sym, m)
				c.symMsg[i] += m.sfp
			}
		}
		c.symfp += c.symSig(i)
	}
}
