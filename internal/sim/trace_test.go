package sim

import (
	"strings"
	"testing"
)

func TestWriteTraceContainsEvents(t *testing.T) {
	run := mustRun(t, []Value{1, 2}, 4)
	s := run.TraceString()
	for _, want := range []string{
		"run of echo, n=2",
		"t=0",
		"send{",
		"DECIDE 1",
		"final: distinct decisions [1 2]",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q:\n%s", want, s)
		}
	}
}

func TestWriteTraceSilentCrash(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	run := &Run{Algorithm: "echo", Inputs: []Value{1, 2}, Final: c}
	ev, err := c.Apply(StepRequest{Proc: 2, SilentCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)
	s := run.TraceString()
	if !strings.Contains(s, "crashes silently") {
		t.Fatalf("trace missing silent crash:\n%s", s)
	}
}

func TestWriteTraceBlocked(t *testing.T) {
	run, err := Execute(neverDecideAlg{}, []Value{1}, &stepAll{maxSteps: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := run.TraceString()
	if !strings.Contains(s, "blocked [1]") {
		t.Fatalf("trace missing blocked report:\n%s", s)
	}
}

func TestWriteTraceCrashAndFD(t *testing.T) {
	c := NewConfiguration(echoAlg{}, []Value{1, 2})
	run := &Run{Algorithm: "echo", Inputs: []Value{1, 2}, Final: c}
	ev, err := c.Apply(StepRequest{Proc: 1, Crash: true, FD: testPayload{Tag: "FD", From: 0}})
	if err != nil {
		t.Fatal(err)
	}
	run.Events = append(run.Events, ev)
	s := run.TraceString()
	if !strings.Contains(s, "CRASH") {
		t.Fatalf("trace missing CRASH:\n%s", s)
	}
	if !strings.Contains(s, "fd=FD(0)") {
		t.Fatalf("trace missing fd value:\n%s", s)
	}
}
