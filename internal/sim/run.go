package sim

import (
	"errors"
	"fmt"
)

// Event records one atomic step of a run: who stepped at what time, what was
// delivered (the subset L), the failure-detector value presented, what was
// sent, the successor state's key, and the decision/crash effects.
type Event struct {
	Time      int
	Proc      ProcessID
	Delivered []Message
	FD        FDValue
	Sent      []Message
	StateKey  string
	Decision  Value
	Decided   bool
	Crashed   bool

	// Silent marks a crash-without-step event (initial death or a crash
	// after the last normal step). Silent events are not steps of the run:
	// they advance no time and are skipped by state/observation sequences
	// and the failure-pattern helpers.
	Silent bool

	// Fault records the fault action requested for this step (zero —
	// FaultCrash — for normal steps): FaultSendOmission when the step's
	// sends were dropped, FaultReceiveOmission when Delivered was consumed
	// but withheld from the process, FaultByzantine when the sends were
	// corrupted. Replaying the run must re-request the same action.
	Fault FaultModel
}

// Run is a recorded finite run prefix: the algorithm name, the proposal
// vector, every step event in order, and the final configuration.
type Run struct {
	Algorithm string
	Inputs    []Value
	Events    []Event
	Final     *Configuration

	// Blocked lists the correct (never crashed) processes that had not
	// decided when the run ended. A run that executed to its scheduler's
	// natural completion with Blocked empty satisfies Termination for every
	// correct process; a nonempty Blocked under a fair scheduler at the step
	// horizon is the empirical witness of a Termination violation.
	Blocked []ProcessID
}

// N returns the number of processes in the run.
func (r *Run) N() int { return len(r.Inputs) }

// Decisions returns the final decision vector: index p-1 holds process p's
// output or NoValue.
func (r *Run) Decisions() []Value {
	out := make([]Value, r.N())
	for i := range out {
		v, _ := r.Final.Decision(ProcessID(i + 1))
		out[i] = v
	}
	return out
}

// DistinctDecisions returns the distinct decision values in the run.
func (r *Run) DistinctDecisions() []Value { return r.Final.DistinctDecisions() }

// Faulty returns the set of processes that crashed during the run (the set F
// of Section II-C).
func (r *Run) Faulty() []ProcessID {
	var out []ProcessID
	for _, p := range r.Final.ProcessIDs() {
		if r.Final.Crashed(p) {
			out = append(out, p)
		}
	}
	return out
}

// CrashTime returns the global time at which p crashed: the time of its
// final step, or the time its silent crash was recorded (0 for initially
// dead processes). It returns -1 if p never crashed.
func (r *Run) CrashTime(p ProcessID) int {
	for _, ev := range r.Events {
		if ev.Proc == p && ev.Crashed {
			return ev.Time
		}
	}
	if r.Final.Crashed(p) {
		return 0
	}
	return -1
}

// InFailurePattern reports whether p is in F(t) for this run: p crashed and
// takes no step at or after time t. Silent crash records are not steps.
func (r *Run) InFailurePattern(p ProcessID, t int) bool {
	for _, ev := range r.Events {
		if ev.Proc == p && !ev.Silent && ev.Time >= t {
			return false
		}
	}
	return r.Final.Crashed(p)
}

// StateSequence returns the sequence of state keys process p moved through,
// truncated at (and including) p's deciding step. This is the object that
// Definition 2's indistinguishability-until-decision compares.
func (r *Run) StateSequence(p ProcessID) []string {
	var out []string
	for _, ev := range r.Events {
		if ev.Proc != p || ev.Silent {
			continue
		}
		out = append(out, ev.StateKey)
		if ev.Decided {
			break
		}
	}
	return out
}

// ObservationSequence returns, for process p, the sequence of per-step
// observations (delivered message keys and failure-detector keys) up to and
// including p's deciding step. Two runs in which p makes equal observations
// from equal initial state are indistinguishable for p because processes are
// deterministic.
func (r *Run) ObservationSequence(p ProcessID) []string {
	var out []string
	for _, ev := range r.Events {
		if ev.Proc != p || ev.Silent {
			continue
		}
		key := "L{"
		for i, m := range ev.Delivered {
			if i > 0 {
				key += "|"
			}
			key += m.Key()
		}
		key += "}"
		if ev.FD != nil {
			key += "fd{" + ev.FD.Key() + "}"
		}
		out = append(out, key)
		if ev.Decided {
			break
		}
	}
	return out
}

// Scheduler chooses the next atomic step given the current configuration.
// Returning ok=false ends the run. Schedulers embody the adversary and the
// admissibility conditions of the model in force.
type Scheduler interface {
	Next(c *Configuration) (StepRequest, bool)
}

// Options configures Execute.
type Options struct {
	// MaxSteps bounds the run length as a safety net against non-terminating
	// schedules; 0 means DefaultMaxSteps.
	MaxSteps int
}

// DefaultMaxSteps is the step horizon used when Options.MaxSteps is zero.
const DefaultMaxSteps = 200000

// ErrHorizon is returned (wrapped) by Execute when the scheduler was still
// willing to schedule steps at the MaxSteps horizon. The partial run is
// still returned alongside the error so callers can inspect it.
var ErrHorizon = errors.New("sim: step horizon reached")

// Execute drives algorithm a from the initial configuration for the given
// inputs under scheduler sch, recording every event. It returns the recorded
// run. The run ends when the scheduler declines to schedule (normal end) or
// at the step horizon (ErrHorizon, with the partial run returned).
func Execute(a Algorithm, inputs []Value, sch Scheduler, opts Options) (*Run, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("sim: no processes")
	}
	cfg := NewConfiguration(a, inputs)
	return Continue(a.Name(), inputs, cfg, sch, opts)
}

// Continue drives an existing configuration forward under sch, recording
// events. It is the building block for pasted runs (Lemma 11): a
// configuration reached under one scheduler can be continued under another.
func Continue(name string, inputs []Value, cfg *Configuration, sch Scheduler, opts Options) (*Run, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	run := &Run{
		Algorithm: name,
		Inputs:    append([]Value(nil), inputs...),
		Final:     cfg,
	}
	for steps := 0; ; steps++ {
		req, ok := sch.Next(cfg)
		if !ok {
			break
		}
		if steps >= maxSteps {
			run.Blocked = blocked(cfg)
			return run, fmt.Errorf("%w after %d steps (algorithm %s)", ErrHorizon, maxSteps, name)
		}
		ev, err := cfg.Apply(req)
		if err != nil {
			return run, fmt.Errorf("sim: scheduler produced illegal step at time %d: %w", cfg.Time(), err)
		}
		run.Events = append(run.Events, ev)
	}
	run.Blocked = blocked(cfg)
	return run, nil
}

func blocked(cfg *Configuration) []ProcessID {
	var out []ProcessID
	for _, p := range cfg.ProcessIDs() {
		if _, decided := cfg.Decision(p); !decided && !cfg.Crashed(p) {
			out = append(out, p)
		}
	}
	return out
}
