// Package sim implements the deterministic message-passing computing model of
// Section II of Biely, Robinson and Schmid, "Easy Impossibility Proofs for
// k-Set Agreement in Message Passing Systems" (OPODIS 2011), which in turn
// follows Dolev, Dwork and Stockmeyer (JACM 1987) and Fischer, Lynch and
// Paterson (JACM 1985).
//
// A system consists of n processes with ids 1..n that communicate by
// message passing. Each process is a deterministic state machine. The
// communication subsystem is one buffer per process holding messages sent to
// it but not yet received. A step is atomic: a scheduler (adversary) picks a
// process p, a subset L of p's buffer, and, when failure detectors are
// enabled, the history value H(p, t); p's transition function maps its state,
// L and the detector value to a new state and a set of messages to send.
// Global time is the step index, exactly as in the paper's Section II-C.
//
// Process state machines are pure: Step returns a fresh State and the sends,
// never mutating the receiver. That purity is what makes configurations
// snapshottable, runs replayable and pasteable (Lemmas 11 and 12), and the
// bounded exploration of package explore exact.
//
// Runs are finite prefixes of the paper's infinite runs: schedulers execute
// until every correct process has decided or a step horizon is reached.
// Correct processes left undecided at the horizon are reported as blocked,
// which is the empirical stand-in for a violated Termination property.
package sim
