package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// symAlg is a minimal value-equivariant broadcast algorithm for symmetry
// tests: every process broadcasts its input once, collects values keyed by
// sender, and decides the minimum after hearing from quorum processes. Its
// state embeds process ids exactly the way the real protocols do (own id
// plus an id-keyed value map), so the SymHash64 relabeling is load-bearing.
type symAlg struct{ quorum int }

func (a symAlg) Name() string { return fmt.Sprintf("symalg(q=%d)", a.quorum) }

func (a symAlg) Init(n int, id ProcessID, input Value) State {
	return &symState{n: n, quorum: a.quorum, id: id, input: input,
		vals: map[ProcessID]Value{id: input}, decision: NoValue}
}

type symState struct {
	n, quorum int
	id        ProcessID
	input     Value
	sent      bool
	vals      map[ProcessID]Value
	decision  Value
}

type symPayload struct {
	From  ProcessID
	Value Value
}

func (p symPayload) Key() string { return fmt.Sprintf("SYM(%d,%d)", p.From, p.Value) }

func (p symPayload) Hash64() uint64 {
	return HashUint(HashUint(HashSeed(), uint64(p.From)), uint64(p.Value))
}

func (p symPayload) SymHash64(relabel func(ProcessID) uint64) uint64 {
	return HashUint(HashUint(HashSeed(), relabel(p.From)), uint64(p.Value))
}

func (s *symState) Step(in Input) (State, []Send) {
	next := *s
	next.vals = make(map[ProcessID]Value, len(s.vals)+len(in.Delivered))
	for p, v := range s.vals {
		next.vals[p] = v
	}
	var sends []Send
	if !next.sent {
		next.sent = true
		sends = Broadcast(next.n, symPayload{From: next.id, Value: next.input})
	}
	for _, m := range in.Delivered {
		if sp, ok := m.Payload.(symPayload); ok {
			next.vals[sp.From] = sp.Value
		}
	}
	if next.decision == NoValue && len(next.vals) >= next.quorum {
		minV := next.input
		for _, v := range next.vals {
			if v < minV {
				minV = v
			}
		}
		next.decision = minV
	}
	return &next, sends
}

func (s *symState) Decided() (Value, bool) { return s.decision, s.decision != NoValue }

func (s *symState) Key() string {
	// Encode the vals contents, not just the count: Hasher64 requires equal
	// keys to imply equal hashes, and the collision cross-checks key on this.
	ids := make([]int, 0, len(s.vals))
	for p := range s.vals {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "sym{id=%d in=%d sent=%t dec=%d vals=[", s.id, s.input, s.sent, s.decision)
	for i, p := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", p, s.vals[ProcessID(p)])
	}
	b.WriteString("]}")
	return b.String()
}

func (s *symState) Hash64() uint64 {
	h := HashUint(HashSeed(), uint64(s.id))
	h = HashUint(h, uint64(s.input))
	if s.sent {
		h = HashUint(h, 1)
	}
	h = HashUint(h, uint64(s.decision))
	var sum uint64
	for p, v := range s.vals {
		sum += HashMix(HashUint(HashUint(HashSeed(), uint64(p)), uint64(v)))
	}
	return HashUint(h, sum)
}

func (s *symState) SymHash64(relabel func(ProcessID) uint64) uint64 {
	h := HashUint(HashSeed(), relabel(s.id))
	h = HashUint(h, uint64(s.input))
	if s.sent {
		h = HashUint(h, 1)
	}
	h = HashUint(h, uint64(s.decision))
	var sum uint64
	for p, v := range s.vals {
		sum += HashMix(HashUint(HashUint(HashSeed(), relabel(p)), uint64(v)))
	}
	return HashUint(h, sum)
}

// checkSymmetry asserts that c's incrementally maintained canonical
// fingerprint equals a from-scratch recompute.
func checkSymmetry(t *testing.T, c *Configuration, context string) {
	t.Helper()
	cp := c.Clone()
	cp.recomputeSymmetry()
	if cp.symfp != c.Canonical64() {
		t.Fatalf("%s: incremental canonical %#x != recomputed %#x", context, c.Canonical64(), cp.symfp)
	}
}

func allProcs(n int) []ProcessID {
	out := make([]ProcessID, n)
	for i := range out {
		out[i] = ProcessID(i + 1)
	}
	return out
}

func TestSymmetryIncrementalMaintenance(t *testing.T) {
	inputs := []Value{7, 7, 7, 7}
	c := NewConfiguration(symAlg{quorum: 3}, inputs)
	c.AttachSymmetry(NewSymmetry(inputs, allProcs(4)))
	checkSymmetry(t, c, "initial")

	steps := []StepRequest{
		{Proc: 1},                    // broadcast
		{Proc: 2},                    // broadcast
		{Proc: 3, Crash: true},       // crash step with sends
		{Proc: 4, SilentCrash: true}, // silent crash
	}
	for i, req := range steps {
		if _, err := c.Apply(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		checkSymmetry(t, c, fmt.Sprintf("after step %d", i))
	}
	// Deliveries through both take() paths: prefix flush and out-of-order.
	if _, err := c.Apply(StepRequest{Proc: 1, Deliver: c.DeliverAll(1)}); err != nil {
		t.Fatal(err)
	}
	checkSymmetry(t, c, "after flush delivery")
	if buf := c.BufferView(2); len(buf) >= 2 {
		if _, err := c.Apply(StepRequest{Proc: 2, Deliver: []int64{buf[len(buf)-1].ID}}); err != nil {
			t.Fatal(err)
		}
		checkSymmetry(t, c, "after out-of-order delivery")
	}
}

// abstract actions for schedule renaming: mode 0 = deliver none, 1 = oldest,
// 2 = all; crash marks the process's final step.
type symAction struct {
	proc  ProcessID
	mode  int
	crash bool
}

// applySym executes one abstract action on c, resolving delivery ids against
// c's current buffers.
func applySym(t *testing.T, c *Configuration, a symAction) {
	t.Helper()
	req := StepRequest{Proc: a.proc, Crash: a.crash}
	switch a.mode {
	case 1:
		if id, ok := c.OldestMessageID(a.proc); ok {
			req.Deliver = []int64{id}
		}
	case 2:
		req.Deliver = c.DeliverAll(a.proc)
	}
	if _, err := c.Apply(req); err != nil {
		t.Fatalf("apply %+v: %v", a, err)
	}
}

// TestCanonicalInvariantUnderStabilizerPermutation is the tentpole property
// test: for random schedules S and random input-stabilizer permutations π,
// the configuration reached by S and the one reached by the renamed
// schedule π(S) — which is exactly the π-renaming of the former, since
// symAlg is equivariant — have equal canonical fingerprints, while their
// concrete fingerprints differ whenever the renaming is non-trivial.
func TestCanonicalInvariantUnderStabilizerPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	vectors := [][]Value{
		{5, 5, 5, 5},    // uniform: stabilizer S4
		{5, 5, 9, 9},    // two blocks: stabilizer S2 x S2
		{5, 5, 5, 9, 9}, // 3+2 blocks
	}
	collapsed := 0
	for _, inputs := range vectors {
		n := len(inputs)
		live := allProcs(n)
		sym := NewSymmetry(inputs, live)
		for trial := 0; trial < 60; trial++ {
			pi := stabilizerPermutation(rng, inputs)
			var schedule []symAction
			for len(schedule) < 8 {
				schedule = append(schedule, symAction{
					proc:  ProcessID(rng.Intn(n) + 1),
					mode:  rng.Intn(3),
					crash: rng.Intn(5) == 0, // crash steps must be orbit-invariant too
				})
			}
			c1 := NewConfiguration(symAlg{quorum: n - 1}, inputs)
			c1.AttachSymmetry(sym)
			c2 := NewConfiguration(symAlg{quorum: n - 1}, inputs)
			c2.AttachSymmetry(sym)
			crashed := map[ProcessID]bool{}
			for _, a := range schedule {
				if crashed[a.proc] {
					continue
				}
				applySym(t, c1, a)
				applySym(t, c2, symAction{proc: pi[a.proc], mode: a.mode, crash: a.crash})
				if a.crash {
					crashed[a.proc] = true
				}
			}
			checkSymmetry(t, c1, "schedule")
			checkSymmetry(t, c2, "renamed schedule")
			if c1.Canonical64() != c2.Canonical64() {
				t.Fatalf("inputs %v, π=%v: canonical %#x != renamed canonical %#x",
					inputs, pi, c1.Canonical64(), c2.Canonical64())
			}
			if c1.Fingerprint() != c2.Fingerprint() {
				collapsed++ // concretely distinct configurations merged by the orbit key
			}
		}
	}
	if collapsed == 0 {
		t.Fatal("no trial produced concretely distinct orbit-equivalent configurations; the property test is vacuous")
	}
}

// stabilizerPermutation draws a random permutation of 1..n that permutes
// processes only within equal-input classes.
func stabilizerPermutation(rng *rand.Rand, inputs []Value) map[ProcessID]ProcessID {
	byInput := map[Value][]ProcessID{}
	for i, v := range inputs {
		byInput[v] = append(byInput[v], ProcessID(i+1))
	}
	pi := make(map[ProcessID]ProcessID, len(inputs))
	for _, class := range byInput {
		shuffled := append([]ProcessID(nil), class...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, p := range class {
			pi[p] = shuffled[i]
		}
	}
	return pi
}

// TestCanonicalDistinguishesClasses asserts that renamings OUTSIDE the
// stabilizer are not identified: stepping a process of one input class
// yields a different canonical fingerprint than stepping a process of
// another class.
func TestCanonicalDistinguishesClasses(t *testing.T) {
	inputs := []Value{5, 5, 9}
	sym := NewSymmetry(inputs, allProcs(3))
	if sym.Classes() != 2 {
		t.Fatalf("expected 2 classes, got %d", sym.Classes())
	}
	mk := func(step ProcessID) *Configuration {
		c := NewConfiguration(symAlg{quorum: 3}, inputs)
		c.AttachSymmetry(sym)
		applySym(t, c, symAction{proc: step, mode: 0})
		return c
	}
	sameClass1, sameClass2, otherClass := mk(1), mk(2), mk(3)
	if sameClass1.Canonical64() != sameClass2.Canonical64() {
		t.Fatalf("same-class steps not identified: %#x != %#x", sameClass1.Canonical64(), sameClass2.Canonical64())
	}
	if sameClass1.Canonical64() == otherClass.Canonical64() {
		t.Fatal("cross-class steps identified: stepping p1 and p3 must differ")
	}
}

// TestSymmetryTrivialStabilizerMatchesConcrete asserts that with pairwise
// distinct inputs (trivial stabilizer) the canonical fingerprint
// distinguishes exactly the configurations the concrete fingerprint does,
// on a behaviourally diverse corpus.
func TestSymmetryTrivialStabilizerMatchesConcrete(t *testing.T) {
	inputs := []Value{1, 2, 3}
	sym := NewSymmetry(inputs, allProcs(3))
	if sym.Classes() != 3 {
		t.Fatalf("expected trivial stabilizer, got %d classes", sym.Classes())
	}
	byKey := map[string]uint64{}
	canonOf := map[uint64]string{}
	record := func(c *Configuration) {
		key := c.Key()
		if prev, seen := byKey[key]; seen {
			if prev != c.Canonical64() {
				t.Fatalf("equal keys, different canonicals for %s", key)
			}
			return
		}
		byKey[key] = c.Canonical64()
		if prev, dup := canonOf[c.Canonical64()]; dup {
			t.Fatalf("trivial-stabilizer canonical collision:\n%s\n%s", prev, key)
		}
		canonOf[c.Canonical64()] = key
	}
	var walk func(c *Configuration, depth int)
	walk = func(c *Configuration, depth int) {
		record(c)
		if depth == 0 {
			return
		}
		for p := ProcessID(1); p <= 3; p++ {
			if c.Crashed(p) {
				continue
			}
			for mode := 0; mode < 3; mode++ {
				cp := c.Clone()
				applySym(t, cp, symAction{proc: p, mode: mode})
				walk(cp, depth-1)
			}
		}
	}
	c := NewConfiguration(symAlg{quorum: 2}, inputs)
	c.AttachSymmetry(sym)
	walk(c, 3)
	if len(byKey) < 50 {
		t.Fatalf("corpus too small: %d distinct configurations", len(byKey))
	}
}

func TestSharedProcessIDs(t *testing.T) {
	small := sharedProcessIDs(3)
	big := sharedProcessIDs(200)
	again := sharedProcessIDs(3)
	for i, p := range big {
		if p != ProcessID(i+1) {
			t.Fatalf("big[%d] = %d", i, p)
		}
	}
	if len(small) != 3 || len(again) != 3 {
		t.Fatalf("lengths %d, %d", len(small), len(again))
	}
	c := NewConfiguration(symAlg{quorum: 2}, []Value{1, 2, 3})
	ps := c.Processes()
	if len(ps) != 3 || ps[0] != 1 || ps[2] != 3 {
		t.Fatalf("Processes() = %v", ps)
	}
}
