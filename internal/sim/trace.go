package sim

import (
	"fmt"
	"io"
	"strings"
)

// WriteTrace renders the run as a human-readable event log: one line per
// step with the acting process, delivered messages, detector value, sends,
// and decision/crash effects. It is the debugging view used by the CLI
// tools' -trace flags.
func (r *Run) WriteTrace(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "run of %s, n=%d, inputs=%v\n", r.Algorithm, r.N(), r.Inputs); err != nil {
		return err
	}
	for _, ev := range r.Events {
		if err := writeEvent(w, ev); err != nil {
			return err
		}
	}
	decided := r.DistinctDecisions()
	if _, err := fmt.Fprintf(w, "final: distinct decisions %v", decided); err != nil {
		return err
	}
	if len(r.Blocked) > 0 {
		if _, err := fmt.Fprintf(w, ", blocked %v", r.Blocked); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeEvent(w io.Writer, ev Event) error {
	if ev.Silent {
		_, err := fmt.Fprintf(w, "  t=%-4d p%d crashes silently (initially dead or post-step)\n", ev.Time, ev.Proc)
		return err
	}
	var parts []string
	if len(ev.Delivered) > 0 {
		keys := make([]string, len(ev.Delivered))
		for i, m := range ev.Delivered {
			keys[i] = m.Key()
		}
		parts = append(parts, "recv{"+strings.Join(keys, " ")+"}")
	}
	if ev.FD != nil {
		parts = append(parts, "fd="+ev.FD.Key())
	}
	if len(ev.Sent) > 0 {
		keys := make([]string, len(ev.Sent))
		for i, m := range ev.Sent {
			keys[i] = m.Key()
		}
		parts = append(parts, "send{"+strings.Join(keys, " ")+"}")
	}
	if ev.Decided {
		parts = append(parts, fmt.Sprintf("DECIDE %d", ev.Decision))
	}
	if ev.Crashed {
		parts = append(parts, "CRASH")
	}
	_, err := fmt.Fprintf(w, "  t=%-4d p%d %s\n", ev.Time, ev.Proc, strings.Join(parts, " "))
	return err
}

// TraceString renders WriteTrace to a string.
func (r *Run) TraceString() string {
	var b strings.Builder
	// strings.Builder's Write never fails.
	_ = r.WriteTrace(&b)
	return b.String()
}
