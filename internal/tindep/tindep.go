// Package tindep implements the T-independence notion of Section IV
// (Definition 6): an algorithm A satisfies T-independence in a model M if
// for every set S in the family T there is a run of A in which the
// processes of S receive messages only from S until every member has
// decided or crashed. Strong T-independence requires runs where this holds
// only eventually.
//
// The package provides the families corresponding to the classic progress
// conditions the paper lists — wait-freedom (2^Pi), obstruction-freedom
// (singletons), f-resilience (all sets of size >= n-f), and asymmetric
// progress (all sets containing a fixed process) — and empirical checkers
// that construct the isolating runs with the partition adversary.
package tindep

import (
	"errors"
	"fmt"
	"strings"

	"kset/internal/sched"
	"kset/internal/sim"
)

// Family is a family of process sets T, named after the progress condition
// it encodes.
type Family struct {
	Name string
	Sets [][]sim.ProcessID
}

// WaitFree returns the family 2^Pi \ {} for an n-process system: wait-free
// algorithms satisfy strong 2^Pi-independence. The family has 2^n - 1 sets;
// n is capped at 16 to keep enumeration sane.
func WaitFree(n int) (Family, error) {
	if n > 16 {
		return Family{}, fmt.Errorf("tindep: wait-free family for n=%d is too large; cap is 16", n)
	}
	var sets [][]sim.ProcessID
	for mask := 1; mask < 1<<n; mask++ {
		var s []sim.ProcessID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, sim.ProcessID(i+1))
			}
		}
		sets = append(sets, s)
	}
	return Family{Name: "wait-free (2^Pi)", Sets: sets}, nil
}

// ObstructionFree returns the singleton family {{p_1}, ..., {p_n}}:
// obstruction-freedom implies independence for it.
func ObstructionFree(n int) Family {
	sets := make([][]sim.ProcessID, n)
	for i := 0; i < n; i++ {
		sets[i] = []sim.ProcessID{sim.ProcessID(i + 1)}
	}
	return Family{Name: "obstruction-free (singletons)", Sets: sets}
}

// FResilient returns the family {S : |S| >= n-f}: an f-resilient algorithm
// guarantees strong independence for it, and plain independence suffices
// when only initial crashes are tolerated (Section IV).
func FResilient(n, f int) (Family, error) {
	if n > 16 {
		return Family{}, fmt.Errorf("tindep: f-resilient family for n=%d is too large; cap is 16", n)
	}
	var sets [][]sim.ProcessID
	for mask := 1; mask < 1<<n; mask++ {
		var s []sim.ProcessID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, sim.ProcessID(i+1))
			}
		}
		if len(s) >= n-f {
			sets = append(sets, s)
		}
	}
	return Family{Name: fmt.Sprintf("%d-resilient (|S| >= n-%d)", f, f), Sets: sets}, nil
}

// Asymmetric returns the family {S : p in S}: wait-freedom of the single
// process p guarantees strong independence for it (the paper's example of
// an asymmetric progress condition).
func Asymmetric(n int, p sim.ProcessID) (Family, error) {
	if n > 16 {
		return Family{}, fmt.Errorf("tindep: asymmetric family for n=%d is too large; cap is 16", n)
	}
	var sets [][]sim.ProcessID
	for mask := 1; mask < 1<<n; mask++ {
		if mask&(1<<(int(p)-1)) == 0 {
			continue
		}
		var s []sim.ProcessID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, sim.ProcessID(i+1))
			}
		}
		sets = append(sets, s)
	}
	return Family{Name: fmt.Sprintf("asymmetric ({%d} subset S)", p), Sets: sets}, nil
}

// Partition returns the family consisting of the given explicit sets — the
// form Theorem 2's Lemma 4 uses ({D_1, ..., D_{k-1}, D-bar}).
func Partition(groups ...[]sim.ProcessID) Family {
	cp := make([][]sim.ProcessID, len(groups))
	names := make([]string, len(groups))
	for i, g := range groups {
		cp[i] = append([]sim.ProcessID(nil), g...)
		parts := make([]string, len(g))
		for j, p := range g {
			parts[j] = fmt.Sprintf("%d", p)
		}
		names[i] = "{" + strings.Join(parts, ",") + "}"
	}
	return Family{Name: "partition " + strings.Join(names, " "), Sets: cp}
}

// SetResult is the outcome of checking one set of the family.
type SetResult struct {
	Set      []sim.ProcessID
	Isolated bool // an isolating run in which every member decided exists
	Blocked  []sim.ProcessID
}

// Report is the outcome of a family check.
type Report struct {
	Family Family
	// Holds is true when every set of the family has an isolating run.
	Holds   bool
	Results []SetResult
	// Failing lists the indexes of sets without isolating runs.
	Failing []int
}

// Options configures Check.
type Options struct {
	// Oracle optionally supplies detector values during the isolating run
	// of a set (given the set).
	Oracle func(s []sim.ProcessID) sched.Oracle
	// MaxSteps bounds each constructed run (0 = default).
	MaxSteps int
	// Strong checks the strong variant: the isolating run first lets the
	// whole system communicate freely for WarmupSteps steps, then isolates
	// S — the run only *eventually* confines S's deliveries to S.
	Strong      bool
	WarmupSteps int
}

// Check empirically verifies T-independence of the algorithm for the family
// in the asynchronous model: for each set S it constructs the isolating run
// (everyone outside S initially dead — the strongest form of "receives only
// from S", trivially admissible under asynchrony) and reports whether every
// member of S decides.
func Check(alg sim.Algorithm, inputs []sim.Value, fam Family, opts Options) (*Report, error) {
	n := len(inputs)
	rep := &Report{Family: fam, Holds: true}
	for i, s := range fam.Sets {
		res, err := checkSet(alg, inputs, n, s, opts)
		if err != nil {
			return nil, fmt.Errorf("tindep: set %d %v: %w", i, s, err)
		}
		rep.Results = append(rep.Results, res)
		if !res.Isolated {
			rep.Holds = false
			rep.Failing = append(rep.Failing, i)
		}
	}
	return rep, nil
}

func checkSet(alg sim.Algorithm, inputs []sim.Value, n int, s []sim.ProcessID, opts Options) (SetResult, error) {
	var oracle sched.Oracle
	if opts.Oracle != nil {
		oracle = opts.Oracle(s)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 20000
	}

	var run *sim.Run
	var err error
	if !opts.Strong {
		run, err = sim.Execute(alg, inputs, sched.Solo(n, s, oracle), sim.Options{MaxSteps: maxSteps})
	} else {
		// Strong variant: free communication for WarmupSteps, then isolate.
		warmup := opts.WarmupSteps
		if warmup <= 0 {
			warmup = 2 * n
		}
		cp := sched.CrashPlan{}
		gate := func(m sim.Message, c *sim.Configuration) bool {
			if c.Time() < warmup {
				return true
			}
			// After warmup: S receives only from S; everyone else is
			// unrestricted (they keep running, S just no longer hears them).
			inS := map[sim.ProcessID]bool{}
			for _, p := range s {
				inS[p] = true
			}
			return !inS[m.To] || inS[m.From]
		}
		sched1 := &sched.Fair{Crash: cp, Gate: gate, Oracle: oracle, Stop: sched.SetDecided(s)}
		run, err = sim.Execute(alg, inputs, sched1, sim.Options{MaxSteps: maxSteps})
	}
	if err != nil && !errors.Is(err, sim.ErrHorizon) {
		return SetResult{}, err
	}
	res := SetResult{Set: append([]sim.ProcessID(nil), s...)}
	res.Isolated = err == nil && run.Final.AllDecided(s)
	if !res.Isolated {
		for _, p := range s {
			if _, ok := run.Final.Decision(p); !ok && !run.Final.Crashed(p) {
				res.Blocked = append(res.Blocked, p)
			}
		}
	}
	return res, nil
}
