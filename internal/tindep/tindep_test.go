package tindep

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func distinctInputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

func TestFamilyConstructors(t *testing.T) {
	wf, err := WaitFree(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wf.Sets) != 7 {
		t.Fatalf("wait-free family size = %d, want 7", len(wf.Sets))
	}
	of := ObstructionFree(4)
	if len(of.Sets) != 4 {
		t.Fatalf("obstruction-free size = %d", len(of.Sets))
	}
	fr, err := FResilient(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sets of size >= 3 among 4 processes: C(4,3)+C(4,4) = 5.
	if len(fr.Sets) != 5 {
		t.Fatalf("1-resilient family size = %d, want 5", len(fr.Sets))
	}
	as, err := Asymmetric(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Subsets of {1,2,3} containing 2: 4.
	if len(as.Sets) != 4 {
		t.Fatalf("asymmetric family size = %d, want 4", len(as.Sets))
	}
	for _, s := range as.Sets {
		found := false
		for _, p := range s {
			if p == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("asymmetric set %v misses p2", s)
		}
	}
	if _, err := WaitFree(20); err == nil {
		t.Error("oversized wait-free family accepted")
	}
}

// TestLemma4MinWaitPartitionIndependence reproduces Lemma 4: the
// f-resilient algorithm is {D_1, ..., D_{k-1}, D-bar}-independent when each
// group has >= n-f members.
func TestLemma4MinWaitPartitionIndependence(t *testing.T) {
	// n=7, f=4, l=3: D_1 = {1,2,3}, D-bar = {4,5,6,7}.
	n, f := 7, 4
	fam := Partition([]sim.ProcessID{1, 2, 3}, []sim.ProcessID{4, 5, 6, 7})
	rep, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), fam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("partition independence fails: %+v", rep.Failing)
	}
}

// TestFResilienceImpliesIndependence: MinWait{F:f} is f-resilient, so every
// set of size >= n-f must be able to decide in isolation.
func TestFResilienceImpliesIndependence(t *testing.T) {
	n, f := 5, 2
	fam, err := FResilient(n, f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), fam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("f-resilient independence fails for sets %v", rep.Failing)
	}
}

// TestSmallSetsBlock: sets smaller than n-f cannot decide in isolation for
// MinWait — independence correctly fails for the full wait-free family.
func TestSmallSetsBlock(t *testing.T) {
	n, f := 4, 1
	fam, err := WaitFree(n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), fam, Options{MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("MinWait cannot be wait-free")
	}
	// Every failing set must be smaller than n-f.
	for _, i := range rep.Failing {
		if len(fam.Sets[i]) >= n-f {
			t.Errorf("large set %v failed isolation", fam.Sets[i])
		}
	}
	// And every set of size >= n-f must pass.
	for i, res := range rep.Results {
		if len(fam.Sets[i]) >= n-f && !res.Isolated {
			t.Errorf("set %v should decide in isolation", fam.Sets[i])
		}
	}
}

// TestObservation1Monotonicity: if independence holds for T, it holds for
// any subfamily T' (Observation 1(b)) — checked empirically by subsetting.
func TestObservation1Monotonicity(t *testing.T) {
	n, f := 5, 2
	fam, err := FResilient(n, f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), fam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Skip("base family does not hold; monotonicity untestable")
	}
	sub := Family{Name: "subfamily", Sets: fam.Sets[:len(fam.Sets)/2]}
	rep2, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Holds {
		t.Fatal("Observation 1(b) violated: subfamily fails though family holds")
	}
}

// TestStrongVariantWarmup: the strong check lets the system communicate
// before isolating; an f-resilient algorithm still satisfies it (decisions
// may even happen during warmup).
func TestStrongVariantWarmup(t *testing.T) {
	n, f := 5, 2
	fam, err := FResilient(n, f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(algorithms.MinWait{F: f}, distinctInputs(n), fam, Options{Strong: true, WarmupSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("strong independence fails for sets %v", rep.Failing)
	}
}

// TestObstructionFreeDecideOwn: DecideOwn decides solo instantly, so it is
// {singletons}-independent (the obstruction-free family).
func TestObstructionFreeDecideOwn(t *testing.T) {
	n := 4
	rep, err := Check(algorithms.DecideOwn{}, distinctInputs(n), ObstructionFree(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("DecideOwn not singleton-independent: %v", rep.Failing)
	}
}
