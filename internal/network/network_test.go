package network

import (
	"testing"
	"time"

	"kset/internal/algorithms"
	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

func distinctInputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

func TestRunMinWaitFailureFree(t *testing.T) {
	n, f := 5, 2
	res, err := Run(algorithms.MinWait{F: f}, distinctInputs(n), Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if len(res.Decisions) != n {
		t.Fatalf("decided %d of %d", len(res.Decisions), n)
	}
	if got := len(res.DistinctDecisions()); got > f+1 {
		t.Fatalf("distinct = %d, want <= f+1 = %d", got, f+1)
	}
}

func TestRunMinWaitInitialDead(t *testing.T) {
	n, f := 5, 2
	res, err := Run(algorithms.MinWait{F: f}, distinctInputs(n), Options{
		InitialDead: []sim.ProcessID{2, 4},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if len(res.Decisions) != 3 {
		t.Fatalf("decided %d of 3 live", len(res.Decisions))
	}
	if _, ok := res.Decisions[2]; ok {
		t.Fatal("dead process decided")
	}
}

func TestRunFLPKSetAgreementBound(t *testing.T) {
	n, f := 6, 3 // L = 3: at most floor(6/3) = 2 distinct decisions
	res, err := Run(algorithms.FLPKSet{F: f}, distinctInputs(n), Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := len(res.DistinctDecisions()); got > 2 {
		t.Fatalf("distinct = %d, want <= 2", got)
	}
}

func TestRunPartitionedGroups(t *testing.T) {
	// Intra-group-only communication: each group of size n-f decides its
	// own minimum concurrently — the concurrent version of the Section VI
	// border run.
	n, f := 6, 4
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	// Cross-group messages are withheld until everyone has decided.
	gate := GroupGate(groups, fd.AllProcesses(n))
	res, err := Run(algorithms.MinWait{F: f}, distinctInputs(n), Options{
		Gate:    gate,
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := len(res.DistinctDecisions()); got != 3 {
		t.Fatalf("distinct = %d, want 3 (one per isolated pair)", got)
	}
}

func TestRunSigmaOmegaConsensus(t *testing.T) {
	n := 4
	pattern := fd.NewPattern(n)
	oracle := fd.CombinedOracle{
		Sigma: fd.SigmaOracle{K: 1, Pattern: pattern},
		Omega: fd.OmegaOracle{K: 1, Pattern: pattern, GST: 0},
	}
	res, err := Run(algorithms.SigmaOmega{}, distinctInputs(n), Options{
		Oracle:  sched.Oracle(oracle),
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := len(res.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1 (consensus)", got)
	}
}

func TestRunCrashAtStep(t *testing.T) {
	// Crash three of five processes after their first step; MinWait{F:3}
	// survivors must still decide (they wait for only 2 values).
	n := 5
	res, err := Run(algorithms.MinWait{F: 3}, distinctInputs(n), Options{
		CrashAtStep: map[sim.ProcessID]int{3: 1, 4: 1, 5: 1},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The crashed processes broadcast in their first step, so survivors
	// have plenty of values. (Crashed processes may or may not have decided
	// before crashing; uniform k-agreement still binds them.)
	if _, ok := res.Decisions[1]; !ok {
		t.Fatal("survivor 1 undecided")
	}
	if _, ok := res.Decisions[2]; !ok {
		t.Fatal("survivor 2 undecided")
	}
	if got := len(res.DistinctDecisions()); got > 4 {
		t.Fatalf("distinct = %d, want <= f+1 = 4", got)
	}
}

// TestRuntimeAblationAgainstKernel cross-checks the two runtimes (E10): for
// the same algorithm and failure setting, the k-agreement invariant holds
// on both and the decided values come from the same proposal set.
func TestRuntimeAblationAgainstKernel(t *testing.T) {
	n, f := 6, 2
	inputs := distinctInputs(n)

	// Kernel run.
	cp := sched.CrashPlan{InitialDead: []sim.ProcessID{6}}
	krun, err := sim.Execute(algorithms.MinWait{F: f}, inputs, sched.NewFair(cp), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent run.
	res, err := Run(algorithms.MinWait{F: f}, inputs, Options{
		InitialDead: []sim.ProcessID{6},
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("concurrent run timed out")
	}
	if kd, cd := len(krun.DistinctDecisions()), len(res.DistinctDecisions()); kd > f+1 || cd > f+1 {
		t.Fatalf("agreement bound broken: kernel %d, concurrent %d", kd, cd)
	}
	proposed := map[sim.Value]bool{}
	for _, v := range inputs {
		proposed[v] = true
	}
	for _, v := range res.DistinctDecisions() {
		if !proposed[v] {
			t.Fatalf("concurrent runtime decided unproposed %d", v)
		}
	}
}

func TestRunRejectsEmptySystem(t *testing.T) {
	if _, err := Run(algorithms.DecideOwn{}, nil, Options{}); err == nil {
		t.Fatal("empty system accepted")
	}
}
