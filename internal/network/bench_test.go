package network

import (
	"testing"
	"time"

	"kset/internal/algorithms"
)

func BenchmarkConcurrentMinWait(b *testing.B) {
	in := distinctInputs(8)
	for i := 0; i < b.N; i++ {
		res, err := Run(algorithms.MinWait{F: 3}, in, Options{Timeout: 10 * time.Second})
		if err != nil || res.TimedOut {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

func BenchmarkConcurrentFLPKSet(b *testing.B) {
	in := distinctInputs(8)
	for i := 0; i < b.N; i++ {
		res, err := Run(algorithms.FLPKSet{F: 3}, in, Options{Timeout: 10 * time.Second})
		if err != nil || res.TimedOut {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}
