package network

import (
	"testing"
	"time"

	"kset/internal/algorithms"
	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

// TestStressManyProcesses runs the baseline protocol with 24 goroutine
// processes and random interleavings; the agreement bound must hold.
func TestStressManyProcesses(t *testing.T) {
	n, f := 24, 7
	res, err := Run(algorithms.MinWait{F: f}, distinctInputs(n), Options{
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if len(res.Decisions) != n {
		t.Fatalf("decided %d of %d", len(res.Decisions), n)
	}
	if got := len(res.DistinctDecisions()); got > f+1 {
		t.Fatalf("distinct = %d > f+1 = %d", got, f+1)
	}
}

// TestStressRepeatedRunsStableInvariants repeats a concurrent run many
// times; scheduling varies, the invariants must not.
func TestStressRepeatedRunsStableInvariants(t *testing.T) {
	n, f := 8, 3
	in := distinctInputs(n)
	proposed := map[sim.Value]bool{}
	for _, v := range in {
		proposed[v] = true
	}
	for trial := 0; trial < 20; trial++ {
		res, err := Run(algorithms.FLPKSet{F: f}, in, Options{
			InitialDead: []sim.ProcessID{2, 7},
			Timeout:     15 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("trial %d timed out", trial)
		}
		// L = 5, floor(8/5) = 1: consensus expected among survivors.
		if got := len(res.DistinctDecisions()); got > 1 {
			t.Fatalf("trial %d: distinct = %d", trial, got)
		}
		for _, v := range res.DistinctDecisions() {
			if !proposed[v] {
				t.Fatalf("trial %d: unproposed %d", trial, v)
			}
		}
	}
}

// TestNetworkSigmaOmegaWithCrash runs the ballot protocol concurrently with
// a crash-scheduled process; uniform agreement must bind any early
// decision of the crashed process.
func TestNetworkSigmaOmegaWithCrash(t *testing.T) {
	n := 5
	pattern := fd.NewPattern(n) // oracle view: failure-free (conservative quorums)
	oracle := fd.CombinedOracle{
		Sigma: fd.SigmaOracle{K: 1, Pattern: pattern},
		Omega: fd.OmegaOracle{K: 1, Pattern: pattern, GST: 0},
	}
	res, err := Run(algorithms.SigmaOmega{}, distinctInputs(n), Options{
		Oracle:  sched.Oracle(oracle),
		Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := len(res.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1", got)
	}
}

// TestGroupGateReleasesAfterDecisions: cross-group traffic withheld until
// the awaited set decided, then released — late messages arrive without
// breaking write-once decisions.
func TestGroupGateReleasesAfterDecisions(t *testing.T) {
	n := 4
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}}
	gate := GroupGate(groups, []sim.ProcessID{1, 2, 3, 4})
	res, err := Run(algorithms.MinWait{F: 2}, distinctInputs(n), Options{
		Gate:    gate,
		Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := len(res.DistinctDecisions()); got != 2 {
		t.Fatalf("distinct = %d, want 2 (one per pair)", got)
	}
}
