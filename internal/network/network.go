// Package network is the concurrent counterpart of package sim: it executes
// the same pure process state machines as real goroutines communicating
// through an in-memory message bus with injectable delivery gates, delays,
// and crash schedules.
//
// The deterministic kernel (package sim) is the ground truth for the
// paper's constructions; this runtime exists to exercise the algorithms
// under genuine concurrency — examples and the runtime-ablation experiment
// (E10) run the same algorithm on both and compare the agreement invariants
// that must hold regardless of scheduling.
package network

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kset/internal/sched"
	"kset/internal/sim"
)

// Options configures a concurrent execution.
type Options struct {
	// Gate filters deliveries exactly like sched.Gate; nil delivers all.
	// The configuration passed to the gate is nil in this runtime; gates
	// that need configuration state (e.g. decision-dependent partitions)
	// should use the DecidedFn-aware helpers below.
	Gate func(m sim.Message, decided func(sim.ProcessID) bool) bool
	// Oracle supplies failure-detector values; the time argument is a
	// logical step counter shared across processes.
	Oracle sched.Oracle
	// CrashAtStep maps a process to the logical step count at which it
	// stops (its goroutine exits without flushing sends).
	CrashAtStep map[sim.ProcessID]int
	// InitialDead processes never start.
	InitialDead []sim.ProcessID
	// Timeout bounds the whole execution; zero means 5 seconds.
	Timeout time.Duration
	// StepDelay, when positive, is slept between process steps to provoke
	// interleavings.
	StepDelay time.Duration
}

// Result is the outcome of a concurrent execution.
type Result struct {
	// Decisions maps each process to its decision; missing means undecided.
	Decisions map[sim.ProcessID]sim.Value
	// Steps is the total number of process steps executed.
	Steps int
	// TimedOut reports that the timeout expired before all live processes
	// decided.
	TimedOut bool
}

// DistinctDecisions returns the distinct decided values, ascending.
func (r *Result) DistinctDecisions() []sim.Value {
	seen := map[sim.Value]bool{}
	for _, v := range r.Decisions {
		seen[v] = true
	}
	out := make([]sim.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bus is the shared in-memory network.
type bus struct {
	mu      sync.Mutex
	queues  map[sim.ProcessID][]sim.Message
	decided map[sim.ProcessID]sim.Value
	steps   int
	nextID  int64
}

func (b *bus) send(msgs []sim.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range msgs {
		b.queues[m.To] = append(b.queues[m.To], m)
	}
}

func (b *bus) assignIDs(from sim.ProcessID, at int, sends []sim.Send) []sim.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]sim.Message, 0, len(sends))
	for _, s := range sends {
		b.nextID++
		out = append(out, sim.Message{
			ID: b.nextID, From: from, To: s.To, SentAt: at, Payload: s.Payload,
		})
	}
	return out
}

// drain removes and returns the gated-deliverable pending messages for p.
func (b *bus) drain(p sim.ProcessID, gate func(m sim.Message, decided func(sim.ProcessID) bool) bool) []sim.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[p]
	if len(q) == 0 {
		return nil
	}
	isDecided := func(q sim.ProcessID) bool {
		_, ok := b.decided[q]
		return ok
	}
	var take, keep []sim.Message
	for _, m := range q {
		if gate == nil || gate(m, isDecided) {
			take = append(take, m)
		} else {
			keep = append(keep, m)
		}
	}
	b.queues[p] = keep
	return take
}

func (b *bus) recordDecision(p sim.ProcessID, v sim.Value) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.decided[p]; !ok {
		b.decided[p] = v
	}
}

func (b *bus) tick() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.steps++
	return b.steps
}

// Run executes the algorithm concurrently: one goroutine per live process,
// stepping its pure state machine in a loop — each iteration drains the
// process's deliverable messages, queries the oracle, applies Step, and
// publishes the sends. The run ends when every live process has decided or
// the timeout expires. All goroutines are joined before Run returns.
func Run(alg sim.Algorithm, inputs []sim.Value, opts Options) (*Result, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("network: no processes")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dead := make(map[sim.ProcessID]bool, len(opts.InitialDead))
	for _, p := range opts.InitialDead {
		dead[p] = true
	}

	b := &bus{
		queues:  make(map[sim.ProcessID][]sim.Message, n),
		decided: make(map[sim.ProcessID]sim.Value, n),
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Processes scheduled to crash are not required to decide, so the run
	// ends once every other live process has.
	liveCount := 0
	for p := 1; p <= n; p++ {
		pid := sim.ProcessID(p)
		if dead[pid] {
			continue
		}
		if _, crashes := opts.CrashAtStep[pid]; crashes {
			continue
		}
		liveCount++
	}
	allDecided := make(chan struct{})
	var decidedCount sync.Map
	var decidedTotal int
	var decidedMu sync.Mutex
	markDecided := func(p sim.ProcessID) {
		if _, crashes := opts.CrashAtStep[p]; crashes {
			// Processes scheduled to crash are excluded from liveCount; a
			// decision they happen to reach before crashing must not count
			// toward run completion, or the run can end with a genuine
			// survivor still undecided.
			return
		}
		if _, loaded := decidedCount.LoadOrStore(p, true); !loaded {
			decidedMu.Lock()
			decidedTotal++
			done := decidedTotal >= liveCount
			decidedMu.Unlock()
			if done {
				close(allDecided)
			}
		}
	}

	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		pid := sim.ProcessID(p)
		if dead[pid] {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := alg.Init(n, pid, inputs[pid-1])
			mySteps := 0
			decidedAlready := false
			for {
				select {
				case <-ctx.Done():
					return
				case <-allDecided:
					return
				default:
				}
				if limit, ok := opts.CrashAtStep[pid]; ok && mySteps >= limit {
					return // crash: stop stepping, sends already out
				}
				t := b.tick()
				in := sim.Input{Time: t, Delivered: b.drain(pid, opts.Gate)}
				if opts.Oracle != nil {
					in.FD = opts.Oracle.Query(pid, t, nil)
				}
				var sends []sim.Send
				state, sends = state.Step(in)
				if len(sends) > 0 {
					b.send(b.assignIDs(pid, t, sends))
				}
				if v, ok := state.Decided(); ok {
					b.recordDecision(pid, v)
					if !decidedAlready {
						decidedAlready = true
						markDecided(pid)
					}
				}
				mySteps++
				if opts.StepDelay > 0 {
					time.Sleep(opts.StepDelay)
				} else if len(in.Delivered) == 0 {
					// Idle: yield to avoid a busy spin while waiting.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	res := &Result{Decisions: map[sim.ProcessID]sim.Value{}}
	b.mu.Lock()
	for p, v := range b.decided {
		res.Decisions[p] = v
	}
	res.Steps = b.steps
	b.mu.Unlock()
	// Completion counts only processes required to decide: decisions that
	// crash-scheduled processes happened to reach before crashing are
	// reported but must not mask an undecided survivor at the timeout.
	decidedLive := 0
	for p := range res.Decisions {
		if _, crashes := opts.CrashAtStep[p]; !crashes && !dead[p] {
			decidedLive++
		}
	}
	res.TimedOut = ctx.Err() != nil && decidedLive < liveCount
	return res, nil
}

// GroupGate returns a gate admitting only intra-group messages until every
// process in `await` has decided — the concurrent analogue of
// sched.PartitionUntilDecidedGate.
func GroupGate(groups [][]sim.ProcessID, await []sim.ProcessID) func(sim.Message, func(sim.ProcessID) bool) bool {
	group := map[sim.ProcessID]int{}
	for gi, g := range groups {
		for _, p := range g {
			group[p] = gi
		}
	}
	watch := append([]sim.ProcessID(nil), await...)
	return func(m sim.Message, decided func(sim.ProcessID) bool) bool {
		gf, okf := group[m.From]
		gt, okt := group[m.To]
		if okf && okt && gf == gt {
			return true
		}
		for _, p := range watch {
			if !decided(p) {
				return false
			}
		}
		return true
	}
}
