package fd

import (
	"testing"

	"kset/internal/sim"
)

// TestLemma9TransformForwardsAdmissibleHistories is the constructive side
// of Lemma 9: forwarding (Sigma'_k, Omega'_k) outputs verbatim yields an
// admissible (Sigma_k, Omega_k) history.
func TestLemma9TransformForwardsAdmissibleHistories(t *testing.T) {
	n, k := 6, 3
	pattern := NewPattern(n).WithCrash(4, 7)
	partition := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	oracle := PartitionCombinedOracle{
		Sigma: NewPartitionSigmaOracle(partition, pattern),
		Omega: OmegaOracle{K: k, Pattern: pattern, GST: 12},
	}
	h := NewHistory(n)
	for t0 := 0; t0 < 30; t0++ {
		for p := 1; p <= n; p++ {
			pid := sim.ProcessID(p)
			if pattern.Crashed(pid, t0) {
				continue
			}
			h.Add(pid, t0, oracle.Query(pid, t0, nil))
		}
	}
	emulated := ApplyTransform(h, Lemma9Transform())
	if err := CheckSigmaIntersection(emulated, k); err != nil {
		t.Errorf("emulated Sigma_k intersection: %v", err)
	}
	if err := CheckSigmaLiveness(emulated, pattern); err != nil {
		t.Errorf("emulated Sigma_k liveness: %v", err)
	}
	if err := CheckOmegaValidity(emulated, k); err != nil {
		t.Errorf("emulated Omega_k validity: %v", err)
	}
	if err := CheckOmegaEventualLeadership(emulated, pattern); err != nil {
		t.Errorf("emulated Omega_k leadership: %v", err)
	}
}

func TestGammaToOmega2Projection(t *testing.T) {
	dbar := []sim.ProcessID{1, 2, 3}
	tr, err := GammaToOmega2(dbar)
	if err != nil {
		t.Fatal(err)
	}
	// Gamma output intersecting dbar in two processes: projected verbatim.
	out := tr(1, 0, NewLeaders(2, 3, 5))
	ld, ok := out.(Leaders)
	if !ok {
		t.Fatalf("output %T, want Leaders", out)
	}
	if len(ld.IDs) != 2 || ld.IDs[0] != 2 || ld.IDs[1] != 3 {
		t.Fatalf("projected = %v, want [2 3]", ld.IDs)
	}
	// Output with one member in dbar: padded deterministically.
	out = tr(1, 1, NewLeaders(3, 5, 6))
	ld = out.(Leaders)
	if len(ld.IDs) != 2 {
		t.Fatalf("padded = %v, want 2 ids", ld.IDs)
	}
	for _, id := range ld.IDs {
		found := false
		for _, q := range dbar {
			if q == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("emulated leader %d outside D-bar", id)
		}
	}
	// Non-leader values pass through as nil.
	if got := tr(1, 2, NewTrustSet(1)); got != nil {
		t.Fatalf("non-leader input produced %v", got)
	}
}

func TestGammaToOmega2StabilizesWithGamma(t *testing.T) {
	// A Gamma that stabilizes on {2, 3, 9} at t >= 5 must yield an Omega_2
	// history for dbar = {1,2,3,4} that stabilizes on {2, 3}.
	dbar := []sim.ProcessID{1, 2, 3, 4}
	tr, err := GammaToOmega2(dbar)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistory(9)
	for t0 := 0; t0 < 10; t0++ {
		var g Leaders
		if t0 < 5 {
			g = NewLeaders(sim.ProcessID(t0%9+1), 9, 8)
		} else {
			g = NewLeaders(2, 3, 9)
		}
		for _, p := range dbar {
			h.Add(p, t0, g)
		}
	}
	emulated := ApplyTransform(h, tr)
	pattern := NewPattern(9)
	if err := CheckOmegaValidity(emulated, 2); err != nil {
		t.Errorf("validity: %v", err)
	}
	if err := CheckOmegaEventualLeadership(emulated, pattern); err != nil {
		t.Errorf("leadership: %v", err)
	}
	// The stable suffix must be exactly {2,3}.
	for _, p := range dbar {
		ss := emulated.Samples(p)
		last := ss[len(ss)-1]
		ld, _ := leadersOf(last.V)
		if ld.Key() != "LD[2 3]" {
			t.Fatalf("stable emulated leaders = %s, want LD[2 3]", ld.Key())
		}
	}
}

func TestGammaToOmega2RejectsTinyDBar(t *testing.T) {
	if _, err := GammaToOmega2([]sim.ProcessID{1}); err == nil {
		t.Fatal("singleton D-bar accepted")
	}
}
