// Package fd implements the failure-detector machinery of Sections II-C and
// VII of the paper: failure patterns F(t), failure-detector histories
// H(p, t), the generalized quorum detector Sigma_k (Definition 4), the
// generalized leader oracle Omega_k (Definition 5), the partition detector
// (Sigma'_k, Omega'_k) of Definition 7, and machine checkers that validate
// recorded histories against those definitions (used to reproduce Lemma 9
// and the pasting Lemmas 11 and 12).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/sim"
)

// TrustSet is a quorum output of Sigma_k: a set of trusted process ids.
type TrustSet struct {
	IDs []sim.ProcessID // sorted ascending
}

// NewTrustSet returns a TrustSet over the given ids, sorted and
// deduplicated.
func NewTrustSet(ids ...sim.ProcessID) TrustSet {
	return TrustSet{IDs: normalizeIDs(ids)}
}

// Key implements sim.FDValue.
func (t TrustSet) Key() string { return "Q" + encodeIDs(t.IDs) }

// Contains reports whether p is trusted.
func (t TrustSet) Contains(p sim.ProcessID) bool {
	for _, q := range t.IDs {
		if q == p {
			return true
		}
	}
	return false
}

// Intersects reports whether two trust sets share a member.
func (t TrustSet) Intersects(o TrustSet) bool {
	i, j := 0, 0
	for i < len(t.IDs) && j < len(o.IDs) {
		switch {
		case t.IDs[i] == o.IDs[j]:
			return true
		case t.IDs[i] < o.IDs[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Leaders is an output of Omega_k: a set of exactly k leader candidates.
type Leaders struct {
	IDs []sim.ProcessID // sorted ascending
}

// NewLeaders returns a Leaders value over the given ids, sorted and
// deduplicated.
func NewLeaders(ids ...sim.ProcessID) Leaders {
	return Leaders{IDs: normalizeIDs(ids)}
}

// Key implements sim.FDValue.
func (l Leaders) Key() string { return "LD" + encodeIDs(l.IDs) }

// Contains reports whether p is a leader candidate.
func (l Leaders) Contains(p sim.ProcessID) bool {
	for _, q := range l.IDs {
		if q == p {
			return true
		}
	}
	return false
}

// Combined is the output of querying the pair (Sigma_k, Omega_k) in one
// step, as algorithms in Section VII do.
type Combined struct {
	Quorum  TrustSet
	Leaders Leaders
}

// Key implements sim.FDValue.
func (c Combined) Key() string { return c.Quorum.Key() + c.Leaders.Key() }

// Pattern is a failure pattern F(.): for each process, the global time from
// which it takes no more steps. The zero time means initially dead.
type Pattern struct {
	n       int
	crashAt map[sim.ProcessID]int
}

// NewPattern returns an n-process pattern with no failures.
func NewPattern(n int) *Pattern {
	return &Pattern{n: n, crashAt: make(map[sim.ProcessID]int)}
}

// N returns the system size.
func (f *Pattern) N() int { return f.n }

// WithCrash returns the pattern extended so that p crashes at time t (takes
// no step at or after t). t = 0 is an initial crash.
func (f *Pattern) WithCrash(p sim.ProcessID, t int) *Pattern {
	cp := f.clone()
	cp.crashAt[p] = t
	return cp
}

// WithInitiallyDead returns the pattern extended with initial crashes of all
// the given processes.
func (f *Pattern) WithInitiallyDead(ps ...sim.ProcessID) *Pattern {
	cp := f.clone()
	for _, p := range ps {
		cp.crashAt[p] = 0
	}
	return cp
}

func (f *Pattern) clone() *Pattern {
	cp := NewPattern(f.n)
	for p, t := range f.crashAt {
		cp.crashAt[p] = t
	}
	return cp
}

// Crashed reports whether p is in F(t): p crashed and takes no step at or
// after time t.
func (f *Pattern) Crashed(p sim.ProcessID, t int) bool {
	at, ok := f.crashAt[p]
	return ok && at <= t
}

// Faulty reports whether p is in F = union of F(t).
func (f *Pattern) Faulty(p sim.ProcessID) bool {
	_, ok := f.crashAt[p]
	return ok
}

// Correct returns the sorted ids of processes that never crash.
func (f *Pattern) Correct() []sim.ProcessID {
	var out []sim.ProcessID
	for p := 1; p <= f.n; p++ {
		if !f.Faulty(sim.ProcessID(p)) {
			out = append(out, sim.ProcessID(p))
		}
	}
	return out
}

// FaultySet returns the sorted ids of processes that crash.
func (f *Pattern) FaultySet() []sim.ProcessID {
	var out []sim.ProcessID
	for p := 1; p <= f.n; p++ {
		if f.Faulty(sim.ProcessID(p)) {
			out = append(out, sim.ProcessID(p))
		}
	}
	return out
}

// Alive returns the sorted ids of processes not in F(t).
func (f *Pattern) Alive(t int) []sim.ProcessID {
	var out []sim.ProcessID
	for p := 1; p <= f.n; p++ {
		if !f.Crashed(sim.ProcessID(p), t) {
			out = append(out, sim.ProcessID(p))
		}
	}
	return out
}

// MaxCrashTime returns the latest crash time in the pattern, or -1 when
// failure-free.
func (f *Pattern) MaxCrashTime() int {
	maxT := -1
	for _, t := range f.crashAt {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// String returns a deterministic rendering of the pattern.
func (f *Pattern) String() string {
	ps := make([]int, 0, len(f.crashAt))
	for p := range f.crashAt {
		ps = append(ps, int(p))
	}
	sort.Ints(ps)
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%d@%d", p, f.crashAt[sim.ProcessID(p)])
	}
	return fmt.Sprintf("F{n=%d %s}", f.n, strings.Join(parts, " "))
}

// PatternFromRun extracts the failure pattern of a recorded run.
func PatternFromRun(r *sim.Run) *Pattern {
	f := NewPattern(r.N())
	for _, p := range r.Final.ProcessIDs() {
		if r.Final.Crashed(p) {
			t := r.CrashTime(p)
			if t < 0 {
				t = 0
			}
			f.crashAt[p] = t
		}
	}
	return f
}

func normalizeIDs(ids []sim.ProcessID) []sim.ProcessID {
	seen := make(map[sim.ProcessID]bool, len(ids))
	out := make([]sim.ProcessID, 0, len(ids))
	for _, p := range ids {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func encodeIDs(ids []sim.ProcessID) string {
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// AllProcesses returns 1..n.
func AllProcesses(n int) []sim.ProcessID {
	out := make([]sim.ProcessID, n)
	for i := range out {
		out[i] = sim.ProcessID(i + 1)
	}
	return out
}
