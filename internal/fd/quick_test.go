package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kset/internal/sim"
)

// idSet is a quick.Generator for small process-id sets.
type idSet []sim.ProcessID

// Generate implements quick.Generator.
func (idSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(8)
	out := make(idSet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sim.ProcessID(1+rng.Intn(10)))
	}
	return reflect.ValueOf(out)
}

var _ quick.Generator = idSet{}

// TestQuickIntersectsSymmetricAndCorrect: Intersects agrees with the brute
// force and is symmetric.
func TestQuickIntersectsSymmetricAndCorrect(t *testing.T) {
	prop := func(a, b idSet) bool {
		ta, tb := NewTrustSet(a...), NewTrustSet(b...)
		brute := false
		for _, x := range ta.IDs {
			for _, y := range tb.IDs {
				if x == y {
					brute = true
				}
			}
		}
		return ta.Intersects(tb) == brute && tb.Intersects(ta) == brute
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrustSetNormalized: NewTrustSet sorts and deduplicates, and Key
// is canonical (same set of ids, same key).
func TestQuickTrustSetNormalized(t *testing.T) {
	prop := func(a idSet) bool {
		ts := NewTrustSet(a...)
		for i := 1; i < len(ts.IDs); i++ {
			if ts.IDs[i-1] >= ts.IDs[i] {
				return false
			}
		}
		// Shuffle-invariance of the key.
		shuffled := append(idSet(nil), a...)
		for i := range shuffled {
			j := (i * 7) % len(shuffled)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		return NewTrustSet(shuffled...).Key() == ts.Key()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAliveSigmaSatisfiesIntersection: for any crash pattern with at
// least one correct process, histories of the alive-set Sigma oracle always
// satisfy the Sigma_1 (and hence every Sigma_k) intersection property.
func TestQuickAliveSigmaSatisfiesIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		pattern := NewPattern(n)
		// Crash up to n-1 processes at random times.
		crashes := rng.Intn(n)
		perm := rng.Perm(n)
		for i := 0; i < crashes; i++ {
			pattern = pattern.WithCrash(sim.ProcessID(perm[i]+1), rng.Intn(20))
		}
		oracle := SigmaOracle{K: 1, Pattern: pattern}
		h := NewHistory(n)
		for t := 0; t < 25; t++ {
			for p := 1; p <= n; p++ {
				pid := sim.ProcessID(p)
				if pattern.Crashed(pid, t) {
					continue
				}
				h.Add(pid, t, oracle.Query(pid, t, nil))
			}
		}
		if err := CheckSigmaIntersection(h, 1); err != nil {
			return false
		}
		return CheckSigmaLiveness(h, pattern) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPatternMonotone: Crashed(p, t) is monotone in t.
func TestQuickPatternMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		pattern := NewPattern(n)
		for p := 1; p <= n; p++ {
			if rng.Intn(2) == 0 {
				pattern = pattern.WithCrash(sim.ProcessID(p), rng.Intn(10))
			}
		}
		for p := 1; p <= n; p++ {
			pid := sim.ProcessID(p)
			was := false
			for tt := 0; tt < 15; tt++ {
				now := pattern.Crashed(pid, tt)
				if was && !now {
					return false
				}
				was = now
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCheckSigmaIntersection(b *testing.B) {
	n, k := 8, 3
	pattern := NewPattern(n).WithCrash(2, 9)
	part := [][]sim.ProcessID{{1, 2}, {3, 4, 5}, {6, 7, 8}}
	oracle := NewPartitionSigmaOracle(part, pattern)
	h := NewHistory(n)
	for t := 0; t < 30; t++ {
		for p := 1; p <= n; p++ {
			pid := sim.ProcessID(p)
			if pattern.Crashed(pid, t) {
				continue
			}
			h.Add(pid, t, oracle.Query(pid, t, nil))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckSigmaIntersection(h, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigmaOracleQuery(b *testing.B) {
	pattern := NewPattern(16).WithCrash(3, 5).WithCrash(9, 12)
	oracle := SigmaOracle{K: 2, Pattern: pattern}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = oracle.Query(sim.ProcessID(i%16+1), i%40, nil)
	}
}
