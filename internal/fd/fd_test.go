package fd

import (
	"reflect"
	"testing"

	"kset/internal/sim"
)

func TestTrustSetBasics(t *testing.T) {
	ts := NewTrustSet(3, 1, 2, 3)
	if !reflect.DeepEqual(ts.IDs, []sim.ProcessID{1, 2, 3}) {
		t.Fatalf("IDs = %v", ts.IDs)
	}
	if ts.Key() != "Q[1 2 3]" {
		t.Fatalf("Key = %q", ts.Key())
	}
	if !ts.Contains(2) || ts.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestTrustSetIntersects(t *testing.T) {
	cases := []struct {
		a, b []sim.ProcessID
		want bool
	}{
		{[]sim.ProcessID{1, 2}, []sim.ProcessID{2, 3}, true},
		{[]sim.ProcessID{1, 2}, []sim.ProcessID{3, 4}, false},
		{[]sim.ProcessID{}, []sim.ProcessID{1}, false},
		{[]sim.ProcessID{5}, []sim.ProcessID{5}, true},
		{[]sim.ProcessID{1, 3, 5}, []sim.ProcessID{2, 4, 5}, true},
	}
	for _, c := range cases {
		got := NewTrustSet(c.a...).Intersects(NewTrustSet(c.b...))
		if got != c.want {
			t.Errorf("Intersects(%v,%v) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
}

func TestLeadersKey(t *testing.T) {
	l := NewLeaders(2, 1)
	if l.Key() != "LD[1 2]" {
		t.Fatalf("Key = %q", l.Key())
	}
	if !l.Contains(1) || l.Contains(3) {
		t.Fatal("Contains wrong")
	}
	c := Combined{Quorum: NewTrustSet(1), Leaders: l}
	if c.Key() != "Q[1]LD[1 2]" {
		t.Fatalf("Combined key = %q", c.Key())
	}
}

func TestPatternBasics(t *testing.T) {
	f := NewPattern(4).WithCrash(2, 5).WithInitiallyDead(3)
	if f.Crashed(2, 4) {
		t.Error("p2 crashed before its crash time")
	}
	if !f.Crashed(2, 5) || !f.Crashed(2, 100) {
		t.Error("p2 should be in F(t) for t >= 5")
	}
	if !f.Crashed(3, 0) {
		t.Error("initially dead p3 should be in F(0)")
	}
	if f.Faulty(1) || !f.Faulty(2) || !f.Faulty(3) {
		t.Error("Faulty wrong")
	}
	if got := f.Correct(); !reflect.DeepEqual(got, []sim.ProcessID{1, 4}) {
		t.Errorf("Correct = %v", got)
	}
	if got := f.FaultySet(); !reflect.DeepEqual(got, []sim.ProcessID{2, 3}) {
		t.Errorf("FaultySet = %v", got)
	}
	if got := f.Alive(0); !reflect.DeepEqual(got, []sim.ProcessID{1, 2, 4}) {
		t.Errorf("Alive(0) = %v", got)
	}
	if got := f.Alive(10); !reflect.DeepEqual(got, []sim.ProcessID{1, 4}) {
		t.Errorf("Alive(10) = %v", got)
	}
	if f.MaxCrashTime() != 5 {
		t.Errorf("MaxCrashTime = %d", f.MaxCrashTime())
	}
	if NewPattern(3).MaxCrashTime() != -1 {
		t.Error("failure-free MaxCrashTime should be -1")
	}
}

func TestPatternImmutability(t *testing.T) {
	base := NewPattern(3)
	_ = base.WithCrash(1, 2)
	if base.Faulty(1) {
		t.Fatal("WithCrash mutated the receiver")
	}
}

func TestSigmaOracleOutputs(t *testing.T) {
	f := NewPattern(4).WithCrash(4, 10)
	o := SigmaOracle{K: 1, Pattern: f}
	got := o.trust(1, 0)
	if !reflect.DeepEqual(got.IDs, []sim.ProcessID{1, 2, 3, 4}) {
		t.Errorf("trust at t=0 = %v", got.IDs)
	}
	got = o.trust(1, 10)
	if !reflect.DeepEqual(got.IDs, []sim.ProcessID{1, 2, 3}) {
		t.Errorf("trust at t=10 = %v", got.IDs)
	}
	// A crashed process queries the whole system (Definition 4 convention).
	got = o.trust(4, 10)
	if len(got.IDs) != 4 {
		t.Errorf("crashed query = %v, want Pi", got.IDs)
	}
}

func TestOmegaOracleStabilizes(t *testing.T) {
	f := NewPattern(5).WithInitiallyDead(1)
	o := OmegaOracle{K: 2, Pattern: f, GST: 7}
	before := o.leaders(3)
	if len(before.IDs) != 2 {
		t.Fatalf("pre-GST leaders = %v", before.IDs)
	}
	at := o.leaders(7)
	later := o.leaders(100)
	if at.Key() != later.Key() {
		t.Fatalf("leaders changed after GST: %s vs %s", at.Key(), later.Key())
	}
	// Must contain the smallest correct process (2).
	if !at.Contains(2) {
		t.Fatalf("stable LD %v misses smallest correct process", at.IDs)
	}
}

func TestPartitionSigmaOracleConfinesQuorums(t *testing.T) {
	f := NewPattern(5)
	part := [][]sim.ProcessID{{1, 2}, {3}, {4, 5}}
	o := NewPartitionSigmaOracle(part, f)
	got := o.trust(1, 0)
	if !reflect.DeepEqual(got.IDs, []sim.ProcessID{1, 2}) {
		t.Errorf("trust(1) = %v", got.IDs)
	}
	got = o.trust(3, 0)
	if !reflect.DeepEqual(got.IDs, []sim.ProcessID{3}) {
		t.Errorf("trust(3) = %v", got.IDs)
	}
	// After a crash the output is Pi.
	f2 := NewPattern(5).WithCrash(3, 4)
	o2 := NewPartitionSigmaOracle(part, f2)
	if got := o2.trust(3, 4); len(got.IDs) != 5 {
		t.Errorf("post-crash trust = %v, want Pi", got.IDs)
	}
}

func TestReplayOracleSequencesAndMerge(t *testing.T) {
	a := NewReplayOracle(map[sim.ProcessID][]sim.FDValue{
		1: {NewTrustSet(1), NewTrustSet(1, 2)},
	})
	b := NewReplayOracle(map[sim.ProcessID][]sim.FDValue{
		2: {NewTrustSet(2)},
	})
	a.Merge(b)
	if got := a.Query(1, 99, nil); got.Key() != "Q[1]" {
		t.Errorf("first query = %v", got)
	}
	if got := a.Query(1, 5, nil); got.Key() != "Q[1 2]" {
		t.Errorf("second query = %v", got)
	}
	// Exhausted: repeats last.
	if got := a.Query(1, 6, nil); got.Key() != "Q[1 2]" {
		t.Errorf("exhausted query = %v", got)
	}
	if got := a.Query(2, 0, nil); got.Key() != "Q[2]" {
		t.Errorf("merged query = %v", got)
	}
	if got := a.Query(3, 0, nil); got != nil {
		t.Errorf("unknown process query = %v, want nil", got)
	}
}

func TestBallotlessHistoryChecks(t *testing.T) {
	// Empty history: all checks pass vacuously.
	h := NewHistory(3)
	if err := CheckSigmaIntersection(h, 1); err != nil {
		t.Errorf("empty intersection: %v", err)
	}
	if err := CheckSigmaLiveness(h, NewPattern(3)); err != nil {
		t.Errorf("empty liveness: %v", err)
	}
	if err := CheckOmegaValidity(h, 2); err != nil {
		t.Errorf("empty validity: %v", err)
	}
	if err := CheckOmegaEventualLeadership(h, NewPattern(3)); err != nil {
		t.Errorf("empty leadership: %v", err)
	}
}

func TestCheckSigmaIntersectionViolation(t *testing.T) {
	// Three processes with pairwise-disjoint quorums violate Sigma_2 (k=2:
	// every 3 processes must have two intersecting quorums).
	h := NewHistory(3)
	h.Add(1, 0, NewTrustSet(1))
	h.Add(2, 0, NewTrustSet(2))
	h.Add(3, 0, NewTrustSet(3))
	if err := CheckSigmaIntersection(h, 2); err == nil {
		t.Fatal("disjoint singletons accepted for Sigma_2")
	}
	// But they are fine for Sigma_3 in a 3-process system (no 4-subset).
	if err := CheckSigmaIntersection(h, 3); err != nil {
		t.Fatalf("Sigma_3 check failed: %v", err)
	}
}

func TestCheckSigmaIntersectionPigeonhole(t *testing.T) {
	// Lemma 9's argument: quorums confined to k partitions satisfy Sigma_k
	// by pigeonhole. Partition {1,2},{3,4} with k=2, n=4.
	h := NewHistory(4)
	h.Add(1, 0, NewTrustSet(1, 2))
	h.Add(2, 1, NewTrustSet(2))
	h.Add(3, 2, NewTrustSet(3, 4))
	h.Add(4, 3, NewTrustSet(4))
	// Any 3 of the 4 processes include two from the same partition whose
	// Sigma_1-valid quorums intersect... but {2}, {3,4}, {4}? p2 and p4:
	// different partitions. Note {1,2} vs {2}: intersect; {3,4} vs {4}:
	// intersect. Every 3-subset has two processes of the same partition,
	// and within a partition all quorums pairwise intersect here.
	if err := CheckSigmaIntersection(h, 2); err != nil {
		t.Fatalf("pigeonhole case rejected: %v", err)
	}
}

func TestCheckSigmaLiveness(t *testing.T) {
	f := NewPattern(3).WithCrash(3, 5)
	good := NewHistory(3)
	good.Add(1, 4, NewTrustSet(1, 3)) // trusting faulty before last crash: fine
	good.Add(1, 6, NewTrustSet(1, 2))
	if err := CheckSigmaLiveness(good, f); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	bad := NewHistory(3)
	bad.Add(2, 9, NewTrustSet(2, 3)) // still trusting faulty 3 after t=6
	if err := CheckSigmaLiveness(bad, f); err == nil {
		t.Fatal("liveness violation accepted")
	}
}

func TestCheckOmegaValidity(t *testing.T) {
	h := NewHistory(3)
	h.Add(1, 0, NewLeaders(1, 2))
	if err := CheckOmegaValidity(h, 2); err != nil {
		t.Fatalf("valid leaders rejected: %v", err)
	}
	if err := CheckOmegaValidity(h, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	h2 := NewHistory(3)
	h2.Add(1, 0, NewLeaders(1, 9))
	if err := CheckOmegaValidity(h2, 2); err == nil {
		t.Fatal("out-of-range leader accepted")
	}
}

func TestCheckOmegaEventualLeadership(t *testing.T) {
	f := NewPattern(3).WithCrash(3, 2)
	h := NewHistory(3)
	h.Add(1, 0, NewLeaders(3))
	h.Add(2, 1, NewLeaders(2))
	h.Add(1, 5, NewLeaders(1))
	h.Add(2, 6, NewLeaders(1))
	if err := CheckOmegaEventualLeadership(h, f); err != nil {
		t.Fatalf("stabilized history rejected: %v", err)
	}
	// Stable suffix on a faulty-only set violates the property.
	bad := NewHistory(3)
	bad.Add(1, 5, NewLeaders(3))
	bad.Add(2, 6, NewLeaders(3))
	if err := CheckOmegaEventualLeadership(bad, f); err == nil {
		t.Fatal("faulty-only stable LD accepted")
	}
}

func TestCheckPartitionSigma(t *testing.T) {
	f := NewPattern(4)
	part := [][]sim.ProcessID{{1, 2}, {3, 4}}
	good := NewHistory(4)
	good.Add(1, 0, NewTrustSet(1, 2))
	good.Add(2, 1, NewTrustSet(1, 2))
	good.Add(3, 2, NewTrustSet(3, 4))
	good.Add(4, 3, NewTrustSet(4, 3))
	if err := CheckPartitionSigma(good, f, part); err != nil {
		t.Fatalf("good partition history rejected: %v", err)
	}
	bad := NewHistory(4)
	bad.Add(1, 0, NewTrustSet(1, 3)) // trusts outsider
	if err := CheckPartitionSigma(bad, f, part); err == nil {
		t.Fatal("outsider quorum accepted")
	}
	// Disjoint quorums inside one partition violate Sigma_1 there.
	bad2 := NewHistory(4)
	bad2.Add(1, 0, NewTrustSet(1))
	bad2.Add(2, 1, NewTrustSet(2))
	if err := CheckPartitionSigma(bad2, f, part); err == nil {
		t.Fatal("disjoint intra-partition quorums accepted")
	}
}

// TestLemma9PartitionHistoriesAreSigmaKOmegaK is the machine check of Lemma
// 9: histories of the partition detector (Sigma'_k, Omega'_k) satisfy the
// Sigma_k intersection and liveness properties and the Omega_k properties.
func TestLemma9PartitionHistoriesAreSigmaKOmegaK(t *testing.T) {
	n, k := 7, 3
	f := NewPattern(n).WithCrash(2, 9)
	part := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6, 7}} // k partitions
	sigma := NewPartitionSigmaOracle(part, f)
	omega := OmegaOracle{K: k, Pattern: f, GST: 12}
	oracle := PartitionCombinedOracle{Sigma: sigma, Omega: omega}

	h := NewHistory(n)
	for t0 := 0; t0 < 30; t0++ {
		for p := 1; p <= n; p++ {
			pid := sim.ProcessID(p)
			if f.Crashed(pid, t0) {
				continue
			}
			h.Add(pid, t0, oracle.Query(pid, t0, nil))
		}
	}
	if err := CheckSigmaIntersection(h, k); err != nil {
		t.Errorf("Lemma 9 Sigma_k intersection: %v", err)
	}
	if err := CheckSigmaLiveness(h, f); err != nil {
		t.Errorf("Lemma 9 Sigma_k liveness: %v", err)
	}
	if err := CheckOmegaValidity(h, k); err != nil {
		t.Errorf("Lemma 9 Omega_k validity: %v", err)
	}
	if err := CheckOmegaEventualLeadership(h, f); err != nil {
		t.Errorf("Lemma 9 Omega_k leadership: %v", err)
	}
	if err := CheckPartitionSigma(h, f, part); err != nil {
		t.Errorf("Definition 7 clause 1: %v", err)
	}
}

func TestPatternFromRunAndAllProcesses(t *testing.T) {
	if got := AllProcesses(3); !reflect.DeepEqual(got, []sim.ProcessID{1, 2, 3}) {
		t.Fatalf("AllProcesses = %v", got)
	}
}
