package fd

import (
	"fmt"
	"sort"

	"kset/internal/sim"
)

// Sample is one recorded failure-detector query: process p queried at global
// time T and observed V.
type Sample struct {
	T int
	V sim.FDValue
}

// History is a recorded failure-detector history: the samples of H(p, t)
// observed in a run, per process, in time order. It is the checkable,
// finite-window analogue of the paper's history function H.
type History struct {
	n       int
	samples map[sim.ProcessID][]Sample
}

// NewHistory returns an empty history for an n-process system.
func NewHistory(n int) *History {
	return &History{n: n, samples: make(map[sim.ProcessID][]Sample)}
}

// N returns the system size.
func (h *History) N() int { return h.n }

// Add records that p observed v at time t.
func (h *History) Add(p sim.ProcessID, t int, v sim.FDValue) {
	h.samples[p] = append(h.samples[p], Sample{T: t, V: v})
}

// Samples returns p's recorded samples in time order.
func (h *History) Samples(p sim.ProcessID) []Sample {
	return h.samples[p]
}

// Processes returns the ids with at least one sample, sorted.
func (h *History) Processes() []sim.ProcessID {
	out := make([]sim.ProcessID, 0, len(h.samples))
	for p := range h.samples {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HistoryFromRun collects the failure-detector values observed in a recorded
// run into a History.
func HistoryFromRun(r *sim.Run) *History {
	h := NewHistory(r.N())
	for _, ev := range r.Events {
		if ev.Silent || ev.FD == nil {
			continue
		}
		h.Add(ev.Proc, ev.Time, ev.FD)
	}
	return h
}

// quorumOf extracts the Sigma part of a detector value, accepting both bare
// TrustSets and Combined outputs.
func quorumOf(v sim.FDValue) (TrustSet, bool) {
	switch x := v.(type) {
	case TrustSet:
		return x, true
	case Combined:
		return x.Quorum, true
	default:
		return TrustSet{}, false
	}
}

// leadersOf extracts the Omega part of a detector value.
func leadersOf(v sim.FDValue) (Leaders, bool) {
	switch x := v.(type) {
	case Leaders:
		return x, true
	case Combined:
		return x.Leaders, true
	default:
		return Leaders{}, false
	}
}

// distinctQuorums returns the distinct quorum values p observed, in first
// occurrence order.
func (h *History) distinctQuorums(p sim.ProcessID) []TrustSet {
	var out []TrustSet
	seen := make(map[string]bool)
	for _, s := range h.samples[p] {
		q, ok := quorumOf(s.V)
		if !ok {
			continue
		}
		if !seen[q.Key()] {
			seen[q.Key()] = true
			out = append(out, q)
		}
	}
	return out
}

// quorumsAfter returns the distinct quorum values p observed at times >= t.
func (h *History) quorumsAfter(p sim.ProcessID, t int) []TrustSet {
	var out []TrustSet
	seen := make(map[string]bool)
	for _, s := range h.samples[p] {
		if s.T < t {
			continue
		}
		q, ok := quorumOf(s.V)
		if !ok {
			continue
		}
		if !seen[q.Key()] {
			seen[q.Key()] = true
			out = append(out, q)
		}
	}
	return out
}

// lastSampleTime returns the largest sample time in the history, or -1.
func (h *History) lastSampleTime() int {
	last := -1
	for _, ss := range h.samples {
		for _, s := range ss {
			if s.T > last {
				last = s.T
			}
		}
	}
	return last
}

func (h *History) String() string {
	return fmt.Sprintf("History{n=%d procs=%d last=%d}", h.n, len(h.samples), h.lastSampleTime())
}
