package fd

import (
	"fmt"

	"kset/internal/sim"
)

// This file implements the failure-detector transformation notion of
// Section II-C: an algorithm A_{D -> D'} transforms detector D into D' when
// processes can maintain output variables emulating admissible D' histories
// from their D queries. Transformations are what the paper's comparison
// relation ("weaker/stronger") is made of; two are built here:
//
//   - the identity-style transformation behind Lemma 9: every history of
//     the partition detector (Sigma'_k, Omega'_k) is *already* an
//     admissible (Sigma_k, Omega_k) history, so the transformation simply
//     forwards the output (the lemma's content is the admissibility proof,
//     which CheckSigma*/CheckOmega* verify on recorded histories);
//   - the Gamma -> Omega_2 transformation used in the proof of condition
//     (C) of Theorem 10: Gamma eventually stabilizes on a leader set
//     intersecting D-bar in exactly two processes, so projecting the output
//     onto D-bar (keeping the two smallest members, padding determinist-
//     ically while fewer are visible) emulates Omega_2 for the subsystem.
//
// A Transform is a per-process stateless rewriting of each queried value;
// stateful transformations would take the previous output, which none of
// the ones reproduced here need.

// Transform rewrites one detector value observed by process p at time t
// into the emulated detector's value.
type Transform func(p sim.ProcessID, t int, v sim.FDValue) sim.FDValue

// Lemma9Transform returns the transformation A_{(Sigma'_k, Omega'_k) ->
// (Sigma_k, Omega_k)}: the identity. Its correctness is exactly Lemma 9,
// checked on histories by CheckSigmaIntersection, CheckSigmaLiveness,
// CheckOmegaValidity and CheckOmegaEventualLeadership.
func Lemma9Transform() Transform {
	return func(_ sim.ProcessID, _ int, v sim.FDValue) sim.FDValue { return v }
}

// GammaToOmega2 returns the transformation used in Theorem 10's condition
// (C): given Gamma outputs (leader sets eventually stabilizing on a set
// that intersects dbar in exactly two processes), emulate Omega_2 for the
// subsystem <dbar> by projecting each leader set onto dbar and padding to
// exactly two ids deterministically from dbar.
func GammaToOmega2(dbar []sim.ProcessID) (Transform, error) {
	if len(dbar) < 2 {
		return nil, fmt.Errorf("fd: Omega_2 emulation needs |D-bar| >= 2, got %d", len(dbar))
	}
	member := make(map[sim.ProcessID]bool, len(dbar))
	for _, p := range dbar {
		member[p] = true
	}
	pad := append([]sim.ProcessID(nil), dbar...)
	return func(_ sim.ProcessID, _ int, v sim.FDValue) sim.FDValue {
		ld, ok := leadersOf(v)
		if !ok {
			return nil
		}
		var kept []sim.ProcessID
		for _, id := range ld.IDs {
			if member[id] {
				kept = append(kept, id)
			}
		}
		for _, id := range pad {
			if len(kept) >= 2 {
				break
			}
			dup := false
			for _, q := range kept {
				if q == id {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, id)
			}
		}
		return NewLeaders(kept[:2]...)
	}, nil
}

// ApplyTransform rewrites every sample of a history through the transform,
// producing the emulated history (the "output variables" of Section II-C
// sampled at the same query times).
func ApplyTransform(h *History, tr Transform) *History {
	out := NewHistory(h.N())
	for _, p := range h.Processes() {
		for _, s := range h.Samples(p) {
			if v := tr(p, s.T, s.V); v != nil {
				out.Add(p, s.T, v)
			}
		}
	}
	return out
}
