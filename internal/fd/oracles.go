package fd

import (
	"kset/internal/sim"
)

// SigmaOracle realizes an admissible Sigma_k history for a known failure
// pattern: the quorum output at an alive process at time t is the set of
// processes not in F(t). Any two alive-sets contain every correct process,
// so the intersection property of Definition 4 holds for every k (even
// k = 1) as long as one process is correct, and liveness holds because the
// output equals the correct set once the last crash has happened. Queries by
// crashed processes return the whole system, matching Definition 4's
// convention.
type SigmaOracle struct {
	K       int
	Pattern *Pattern
}

// Query implements the sched.Oracle contract.
func (o SigmaOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	return o.trust(p, t)
}

func (o SigmaOracle) trust(p sim.ProcessID, t int) TrustSet {
	if o.Pattern.Crashed(p, t) {
		return NewTrustSet(AllProcesses(o.Pattern.N())...)
	}
	return NewTrustSet(o.Pattern.Alive(t)...)
}

// OmegaOracle realizes an admissible Omega_k history: before the
// stabilization time GST the k-sized leader set rotates deterministically
// over the processes; from GST on every query returns the fixed set LD
// consisting of the smallest-id correct process padded with its successors,
// which intersects the correct set as Definition 5 requires.
type OmegaOracle struct {
	K       int
	Pattern *Pattern
	GST     int
}

// Query implements the sched.Oracle contract.
func (o OmegaOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	return o.leaders(t)
}

func (o OmegaOracle) leaders(t int) Leaders {
	n := o.Pattern.N()
	if t < o.GST {
		// Rotate: k consecutive ids starting at (t mod n) + 1.
		ids := make([]sim.ProcessID, 0, o.K)
		for i := 0; i < o.K; i++ {
			ids = append(ids, sim.ProcessID((t+i)%n+1))
		}
		return NewLeaders(ids...)
	}
	return o.stable()
}

func (o OmegaOracle) stable() Leaders {
	n := o.Pattern.N()
	correct := o.Pattern.Correct()
	ids := make([]sim.ProcessID, 0, o.K)
	if len(correct) > 0 {
		ids = append(ids, correct[0])
	} else {
		ids = append(ids, 1)
	}
	// Pad with successive ids (wrapping) until |LD| = k.
	next := ids[0]
	for len(ids) < o.K {
		next = next%sim.ProcessID(n) + 1
		dup := false
		for _, q := range ids {
			if q == next {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, next)
		}
	}
	return NewLeaders(ids...)
}

// CombinedOracle pairs a Sigma_k oracle with an Omega_k oracle into the
// (Sigma_k, Omega_k) detector queried by Section VII algorithms.
type CombinedOracle struct {
	Sigma SigmaOracle
	Omega OmegaOracle
}

// Query implements the sched.Oracle contract.
func (o CombinedOracle) Query(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue {
	return Combined{
		Quorum:  o.Sigma.trust(p, t),
		Leaders: o.Omega.leaders(t),
	}
}

// PartitionSigmaOracle realizes the Sigma'_k part of Definition 7 for a
// fixed partitioning {D_1, ..., D_k} of the system: the output at a process
// p in D_i is a valid Sigma (= Sigma_1) history of the restricted model
// <D_i> — here, the alive members of D_i — and after p crashes the output is
// the whole system Pi, exactly as the definition stipulates.
type PartitionSigmaOracle struct {
	Partition [][]sim.ProcessID
	Pattern   *Pattern

	group map[sim.ProcessID]int
}

// NewPartitionSigmaOracle builds the oracle, indexing the partition.
func NewPartitionSigmaOracle(partition [][]sim.ProcessID, pattern *Pattern) *PartitionSigmaOracle {
	o := &PartitionSigmaOracle{Partition: partition, Pattern: pattern, group: map[sim.ProcessID]int{}}
	for gi, g := range partition {
		for _, p := range g {
			o.group[p] = gi
		}
	}
	return o
}

// Query implements the sched.Oracle contract.
func (o *PartitionSigmaOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	return o.trust(p, t)
}

func (o *PartitionSigmaOracle) trust(p sim.ProcessID, t int) TrustSet {
	if o.Pattern.Crashed(p, t) {
		return NewTrustSet(AllProcesses(o.Pattern.N())...)
	}
	gi, ok := o.group[p]
	if !ok {
		return NewTrustSet(o.Pattern.Alive(t)...)
	}
	var alive []sim.ProcessID
	for _, q := range o.Partition[gi] {
		if !o.Pattern.Crashed(q, t) {
			alive = append(alive, q)
		}
	}
	if len(alive) == 0 {
		alive = append(alive, p)
	}
	return NewTrustSet(alive...)
}

// PartitionCombinedOracle is the full (Sigma'_k, Omega'_k) partition
// detector of Definition 7: quorums confined to the querying process's
// partition, leaders per Omega_k (Omega'_k = Omega_k in the paper).
type PartitionCombinedOracle struct {
	Sigma *PartitionSigmaOracle
	Omega OmegaOracle
}

// Query implements the sched.Oracle contract.
func (o PartitionCombinedOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	return Combined{
		Quorum:  o.Sigma.trust(p, t),
		Leaders: o.Omega.leaders(t),
	}
}

// ReplayOracle replays per-process sequences of failure-detector values: the
// i-th query of process p returns the i-th recorded value, regardless of
// global time. This is how Lemma 11 pastes histories: processes in D-bar
// observe exactly the detector values of run alpha even though the pasted
// run beta' schedules their steps at different global times. When a process
// exhausts its sequence the last value is repeated (histories are constant
// after the recorded window).
type ReplayOracle struct {
	seq  map[sim.ProcessID][]sim.FDValue
	next map[sim.ProcessID]int
}

// NewReplayOracle builds a replay oracle from per-process value sequences.
func NewReplayOracle(seq map[sim.ProcessID][]sim.FDValue) *ReplayOracle {
	cp := make(map[sim.ProcessID][]sim.FDValue, len(seq))
	for p, vs := range seq {
		cp[p] = append([]sim.FDValue(nil), vs...)
	}
	return &ReplayOracle{seq: cp, next: make(map[sim.ProcessID]int)}
}

// ReplayFromRun builds a replay oracle from the detector values each process
// observed in a recorded run, in step order.
func ReplayFromRun(r *sim.Run) *ReplayOracle {
	seq := make(map[sim.ProcessID][]sim.FDValue)
	for _, ev := range r.Events {
		if ev.Silent {
			continue
		}
		if ev.FD != nil {
			seq[ev.Proc] = append(seq[ev.Proc], ev.FD)
		}
	}
	return NewReplayOracle(seq)
}

// Merge adds the sequences of another replay oracle for processes this one
// has no sequence for. It is used to combine the solo-run histories of
// disjoint partitions into one pasted history (Lemma 12).
func (o *ReplayOracle) Merge(other *ReplayOracle) {
	for p, vs := range other.seq {
		if _, ok := o.seq[p]; !ok {
			o.seq[p] = append([]sim.FDValue(nil), vs...)
		}
	}
}

// Query implements the sched.Oracle contract.
func (o *ReplayOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	vs := o.seq[p]
	if len(vs) == 0 {
		return nil
	}
	i := o.next[p]
	if i >= len(vs) {
		i = len(vs) - 1
	} else {
		o.next[p] = i + 1
	}
	return vs[i]
}
