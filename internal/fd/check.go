package fd

import (
	"fmt"

	"kset/internal/sim"
)

// CheckSigmaIntersection verifies the Intersection property of Definition 4
// over a recorded history: for every set of k+1 processes and every choice
// of one observed quorum per member (the observable analogue of "for all
// k+1 time instants"), some two chosen quorums intersect. It returns nil
// when the property holds, or an error naming a violating selection.
//
// The search enumerates choices with pairwise-disjointness pruning, so its
// cost is bounded by the number of *distinct* quorum values per process,
// which is small for real detector implementations (alive-sets change at
// most f+1 times).
func CheckSigmaIntersection(h *History, k int) error {
	procs := h.Processes()
	if len(procs) < k+1 {
		return nil // no (k+1)-subset of queried processes exists
	}
	quorums := make(map[sim.ProcessID][]TrustSet, len(procs))
	for _, p := range procs {
		qs := h.distinctQuorums(p)
		if len(qs) == 0 {
			return fmt.Errorf("fd: process %d has samples but no quorum outputs", p)
		}
		quorums[p] = qs
	}
	var subset []sim.ProcessID
	var chosen []TrustSet
	var violation []string

	var chooseQuorums func(idx int) bool
	chooseQuorums = func(idx int) bool {
		if idx == len(subset) {
			// All chosen quorums are pairwise disjoint: violation.
			violation = violation[:0]
			for i, q := range chosen {
				violation = append(violation, fmt.Sprintf("p%d:%s", subset[i], q.Key()))
			}
			return true
		}
		p := subset[idx]
		for _, q := range quorums[p] {
			disjoint := true
			for _, prev := range chosen {
				if q.Intersects(prev) {
					disjoint = false
					break
				}
			}
			if !disjoint {
				continue
			}
			chosen = append(chosen, q)
			if chooseQuorums(idx + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}

	var chooseSubset func(start int) bool
	chooseSubset = func(start int) bool {
		if len(subset) == k+1 {
			return chooseQuorums(0)
		}
		for i := start; i < len(procs); i++ {
			subset = append(subset, procs[i])
			if chooseSubset(i + 1) {
				return true
			}
			subset = subset[:len(subset)-1]
		}
		return false
	}

	if chooseSubset(0) {
		return fmt.Errorf("fd: Sigma_%d intersection violated by pairwise-disjoint quorums %v", k, violation)
	}
	return nil
}

// CheckSigmaLiveness verifies the Liveness property of Definition 4 on the
// recorded window: there is a time t such that for all recorded samples at
// t' >= t of correct processes, the quorum contains no faulty process. On a
// finite window this is checked by requiring the property from the last
// crash time onward — the canonical choice of t.
func CheckSigmaLiveness(h *History, pattern *Pattern) error {
	t := pattern.MaxCrashTime() + 1
	for _, p := range pattern.Correct() {
		for _, q := range h.quorumsAfter(p, t) {
			for _, id := range q.IDs {
				if pattern.Faulty(id) {
					return fmt.Errorf("fd: Sigma liveness violated: correct %d trusted faulty %d after time %d", p, id, t)
				}
			}
		}
	}
	return nil
}

// CheckOmegaValidity verifies the Validity property of Definition 5: every
// recorded leader output is a set of exactly k process identifiers in 1..n.
func CheckOmegaValidity(h *History, k int) error {
	for _, p := range h.Processes() {
		for _, s := range h.Samples(p) {
			ld, ok := leadersOf(s.V)
			if !ok {
				continue
			}
			if len(ld.IDs) != k {
				return fmt.Errorf("fd: Omega_%d validity violated: %d leaders at p%d t=%d", k, len(ld.IDs), p, s.T)
			}
			for _, id := range ld.IDs {
				if id < 1 || int(id) > h.N() {
					return fmt.Errorf("fd: Omega validity violated: leader id %d out of range at p%d", id, p)
				}
			}
		}
	}
	return nil
}

// CheckOmegaEventualLeadership verifies Eventual Leadership (Definition 5)
// on the recorded window: there is a time tGST and a set LD intersecting the
// correct processes such that every sample at or after tGST equals LD. A
// finite window can only refute stabilization *within* the window, so the
// check passes when some suffix (possibly empty) of every process's samples
// is constant and equal across processes with the required intersection;
// the returned error reports the latest conflicting samples otherwise.
func CheckOmegaEventualLeadership(h *History, pattern *Pattern) error {
	// Find the smallest candidate tGST: walk backward while all samples
	// agree on one leader set.
	var all []tagged
	for _, p := range h.Processes() {
		for _, s := range h.Samples(p) {
			if _, ok := leadersOf(s.V); ok {
				all = append(all, tagged{p: p, s: s})
			}
		}
	}
	if len(all) == 0 {
		return nil // nothing recorded: stabilization after the window
	}
	// Sort by time descending using insertion from scan (times are already
	// nondecreasing per process; do a simple global sort).
	sortTagged(all)
	lastKey := ""
	var lastLD Leaders
	stableFrom := -1
	for i := len(all) - 1; i >= 0; i-- {
		ld, _ := leadersOf(all[i].s.V)
		if lastKey == "" {
			lastKey = ld.Key()
			lastLD = ld
			stableFrom = all[i].s.T
			continue
		}
		if ld.Key() != lastKey {
			break
		}
		stableFrom = all[i].s.T
	}
	if lastKey == "" {
		return nil
	}
	// The suffix [stableFrom, end] is constant; Definition 5 additionally
	// needs LD to intersect the correct processes.
	for _, id := range lastLD.IDs {
		if !pattern.Faulty(id) {
			return nil
		}
	}
	return fmt.Errorf("fd: Omega eventual leadership violated: stable LD %s (from t=%d) contains only faulty processes", lastLD.Key(), stableFrom)
}

func sortTagged(all []tagged) {
	// insertion sort by sample time ascending; windows are small.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].s.T < all[j-1].s.T; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
}

// tagged is declared at package scope for sortTagged.
type tagged struct {
	p sim.ProcessID
	s Sample
}

// CheckPartitionSigma verifies clause 1 of Definition 7 for a recorded
// history: the quorum output at every process of partition D_i, while
// alive, contains only members of D_i and is a valid Sigma history of the
// restricted model <D_i> (intersection with k=1 inside the partition, and
// liveness w.r.t. the pattern restricted to D_i).
func CheckPartitionSigma(h *History, pattern *Pattern, partition [][]sim.ProcessID) error {
	for gi, group := range partition {
		member := make(map[sim.ProcessID]bool, len(group))
		for _, p := range group {
			member[p] = true
		}
		sub := NewHistory(h.N())
		for _, p := range group {
			for _, s := range h.Samples(p) {
				if pattern.Crashed(p, s.T) {
					continue // Definition 7 forces output Pi after the crash
				}
				q, ok := quorumOf(s.V)
				if !ok {
					continue
				}
				for _, id := range q.IDs {
					if !member[id] {
						return fmt.Errorf("fd: partition Sigma violated: p%d in D_%d trusted outsider %d at t=%d", p, gi+1, id, s.T)
					}
				}
				sub.Add(p, s.T, q)
			}
		}
		if err := CheckSigmaIntersection(sub, 1); err != nil {
			return fmt.Errorf("fd: partition D_%d: %w", gi+1, err)
		}
		if err := CheckSigmaLiveness(sub, pattern); err != nil {
			return fmt.Errorf("fd: partition D_%d: %w", gi+1, err)
		}
	}
	return nil
}
