package ho

import (
	"testing"

	"kset/internal/sim"
)

func inputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

func TestFloodMinCompleteAssignmentConsensus(t *testing.T) {
	n := 5
	res, err := Execute(FloodMin{R: 1}, inputs(n), Complete(n), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided(n) {
		t.Fatalf("only %d decided", len(res.Decisions))
	}
	if got := res.DistinctDecisions(); len(got) != 1 || got[0] != 100 {
		t.Fatalf("decisions = %v, want [100]", got)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

// TestFloodMinPartitionedTheorem1Shape: the Theorem 1 adversary in the
// round model — heard-of sets confined to k groups until everyone decided
// force one decision per group.
func TestFloodMinPartitionedTheorem1Shape(t *testing.T) {
	n := 6
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	res, err := Execute(FloodMin{R: 3}, inputs(n), Partitioned(n, groups, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided(n) {
		t.Fatalf("only %d decided", len(res.Decisions))
	}
	if got := len(res.DistinctDecisions()); got != 3 {
		t.Fatalf("distinct = %d, want 3 (one per group)", got)
	}
	// The decided values are the per-group minima.
	want := map[sim.Value]bool{100: true, 102: true, 104: true}
	for _, v := range res.DistinctDecisions() {
		if !want[v] {
			t.Fatalf("unexpected decision %d", v)
		}
	}
}

// TestFloodMinPartitionHealsAfterDecision: if the partition heals before
// the decision round, consensus is restored — decisions depend only on the
// heard-of prefix, exactly like the paper's (dec-D) timing condition.
func TestFloodMinPartitionHealsEarly(t *testing.T) {
	n := 6
	groups := [][]sim.ProcessID{{1, 2, 3}, {4, 5, 6}}
	// Partitioned for 1 round, deciding after 3: the flood completes.
	res, err := Execute(FloodMin{R: 3}, inputs(n), Partitioned(n, groups, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1 after healing", got)
	}
}

// TestFloodMinCrashFaultyBound: with f crash failures and R = f+1 rounds,
// the classic flooding argument bounds the spread to f+1 values; with
// crashes only in round 0 (initial), one value survives per weakly
// connected flooding component — here everyone alive hears everyone alive,
// giving consensus on the surviving minimum.
func TestFloodMinCrashFaultyInitial(t *testing.T) {
	n := 5
	res, err := Execute(FloodMin{R: 2}, inputs(n), CrashFaulty(n, map[sim.ProcessID]int{1: 0}), 10)
	if err != nil {
		t.Fatal(err)
	}
	// p1 (holder of the global minimum) is never heard: survivors agree on
	// the next minimum, 101. p1 itself still runs (the assignment models
	// others not hearing it) and also floods down to 101? No: p1 keeps its
	// own estimate 100 since it hears everyone and 100 is minimal.
	got := res.DistinctDecisions()
	if len(got) != 2 {
		t.Fatalf("distinct = %v, want [100 101]", got)
	}
	if got[0] != 100 || got[1] != 101 {
		t.Fatalf("distinct = %v, want [100 101]", got)
	}
}

func TestCheckNonemptyKernel(t *testing.T) {
	n := 4
	if !CheckNonemptyKernel(n, Complete(n), 5) {
		t.Error("complete assignment should have nonempty kernel")
	}
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}}
	if CheckNonemptyKernel(n, Partitioned(n, groups, 5), 5) {
		t.Error("partitioned assignment cannot have a kernel")
	}
	// After healing, the kernel exists again — check a window past the
	// partition.
	hoAssign := Partitioned(n, groups, 2)
	healed := func(p sim.ProcessID, r int) []sim.ProcessID { return hoAssign(p, r+2) }
	if !CheckNonemptyKernel(n, healed, 3) {
		t.Error("healed assignment should have nonempty kernel")
	}
}

func TestCheckMinHeard(t *testing.T) {
	n := 5
	if !CheckMinHeard(n, Complete(n), 3, n) {
		t.Error("complete hears everyone")
	}
	crashed := CrashFaulty(n, map[sim.ProcessID]int{2: 0, 3: 1})
	if CheckMinHeard(n, crashed, 3, n) {
		t.Error("crashed assignment cannot hear everyone")
	}
	if !CheckMinHeard(n, crashed, 3, n-2) {
		t.Error("crashed assignment hears at least n-2")
	}
}

func TestExecuteRejectsEmpty(t *testing.T) {
	if _, err := Execute(FloodMin{R: 1}, nil, Complete(0), 5); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestExecuteStopsAtMaxRounds(t *testing.T) {
	// R larger than maxRounds: nobody decides, executor stops at the bound.
	n := 3
	res, err := Execute(FloodMin{R: 50}, inputs(n), Complete(n), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Rounds)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("decisions = %v, want none", res.Decisions)
	}
}

func TestFloodMinStateKey(t *testing.T) {
	s := FloodMin{R: 2}.Init(3, 1, 7)
	if s.Key() == "" {
		t.Fatal("empty key")
	}
	next := s.Transition(map[sim.ProcessID]sim.Payload{2: MinPayload{From: 2, Est: 3}})
	if next.Key() == s.Key() {
		t.Fatal("transition did not change key")
	}
	if _, decided := s.Decided(); decided {
		t.Fatal("decided before R rounds")
	}
}
