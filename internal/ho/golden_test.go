package ho

import (
	"testing"

	"kset/internal/sim"
)

// TestExecuteGoldenE11Cases pins, as literals, the exact executor outputs
// that feed the E11 experiment (and through it the E12 synchrony ladder's
// round-model rows): FloodMin under the complete and partitioned
// assignments and OneThirdRule under the complete one, for every (n, k)
// cell of the experiment, with the kernel-predicate verdicts that separate
// the assignments. The round model shares the simulator's value and payload
// types but none of its fault machinery, so changes elsewhere in the
// substrate — fault models, fingerprints, scheduling — must leave every
// number here untouched; a diff in this test means the round-model executor
// itself changed semantics, which the E11/E12 golden tables would surface
// only indirectly.
func TestExecuteGoldenE11Cases(t *testing.T) {
	cases := []struct {
		n, k int
		// groups is E11's balanced consecutive partition of 1..n into k.
		groups [][]sim.ProcessID
		// partDecisions is FloodMin's decision map under the partitioned
		// assignment: each group floods its own minimum.
		partDecisions map[sim.ProcessID]sim.Value
	}{
		{4, 2, [][]sim.ProcessID{{1, 2}, {3, 4}},
			map[sim.ProcessID]sim.Value{1: 100, 2: 100, 3: 102, 4: 102}},
		{6, 2, [][]sim.ProcessID{{1, 2, 3}, {4, 5, 6}},
			map[sim.ProcessID]sim.Value{1: 100, 2: 100, 3: 100, 4: 103, 5: 103, 6: 103}},
		{6, 3, [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}},
			map[sim.ProcessID]sim.Value{1: 100, 2: 100, 3: 102, 4: 102, 5: 104, 6: 104}},
		{8, 4, [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
			map[sim.ProcessID]sim.Value{1: 100, 2: 100, 3: 102, 4: 102, 5: 104, 6: 104, 7: 106, 8: 106}},
		{9, 3, [][]sim.ProcessID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
			map[sim.ProcessID]sim.Value{1: 100, 2: 100, 3: 100, 4: 103, 5: 103, 6: 103, 7: 106, 8: 106, 9: 106}},
	}
	const r = 3
	for _, c := range cases {
		inputs := make([]sim.Value, c.n)
		for i := range inputs {
			inputs[i] = sim.Value(100 + i)
		}
		complete := Complete(c.n)
		partitioned := Partitioned(c.n, c.groups, r)

		// FloodMin, complete assignment: everyone floods to the global
		// minimum in exactly R rounds.
		full, err := Execute(FloodMin{R: r}, inputs, complete, 3*r)
		if err != nil {
			t.Fatalf("n=%d complete: %v", c.n, err)
		}
		if full.Rounds != 3 {
			t.Errorf("n=%d: FloodMin complete decided in %d rounds, want 3", c.n, full.Rounds)
		}
		for p := sim.ProcessID(1); int(p) <= c.n; p++ {
			if full.Decisions[p] != 100 {
				t.Errorf("n=%d: FloodMin complete p%d decided %v, want 100", c.n, p, full.Decisions[p])
			}
		}

		// FloodMin, partitioned assignment: one minimum per group, same
		// round count — the Theorem 1 violation shape.
		part, err := Execute(FloodMin{R: r}, inputs, partitioned, 3*r)
		if err != nil {
			t.Fatalf("n=%d k=%d partitioned: %v", c.n, c.k, err)
		}
		if part.Rounds != 3 {
			t.Errorf("n=%d k=%d: FloodMin partitioned decided in %d rounds, want 3", c.n, c.k, part.Rounds)
		}
		if len(part.Decisions) != len(c.partDecisions) {
			t.Errorf("n=%d k=%d: %d partitioned decisions, want %d", c.n, c.k, len(part.Decisions), len(c.partDecisions))
		}
		for p, want := range c.partDecisions {
			if got := part.Decisions[p]; got != want {
				t.Errorf("n=%d k=%d: FloodMin partitioned p%d decided %v, want %v", c.n, c.k, p, got, want)
			}
		}

		// OneThirdRule, complete assignment: unanimous threshold reached in
		// exactly 2 rounds, everyone decides the minimum.
		otr, err := Execute(OneThirdRule{}, inputs, complete, 12)
		if err != nil {
			t.Fatalf("n=%d one-third complete: %v", c.n, err)
		}
		if otr.Rounds != 2 {
			t.Errorf("n=%d: OneThirdRule complete decided in %d rounds, want 2", c.n, otr.Rounds)
		}
		for p := sim.ProcessID(1); int(p) <= c.n; p++ {
			if otr.Decisions[p] != 100 {
				t.Errorf("n=%d: OneThirdRule complete p%d decided %v, want 100", c.n, p, otr.Decisions[p])
			}
		}

		// The kernel predicate is what separates the assignments in E11.
		if !CheckNonemptyKernel(c.n, complete, r) {
			t.Errorf("n=%d: complete assignment kernel empty, want nonempty", c.n)
		}
		if CheckNonemptyKernel(c.n, partitioned, r) {
			t.Errorf("n=%d k=%d: partitioned assignment kernel nonempty, want empty", c.n, c.k)
		}
	}
}
