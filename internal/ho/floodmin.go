package ho

import (
	"fmt"

	"kset/internal/sim"
)

// MinPayload carries the sender's current estimate in FloodMin.
type MinPayload struct {
	From sim.ProcessID
	Est  sim.Value
}

// Key implements sim.Payload.
func (p MinPayload) Key() string { return fmt.Sprintf("MIN(%d,%d)", p.From, p.Est) }

// FloodMin is the classic flooding algorithm in the Heard-Of model: each
// round broadcast your estimate, adopt the minimum heard, decide after R
// rounds. Under the complete assignment one round suffices for consensus;
// under crash-faulty assignments R = f+1 rounds bound the decision spread
// by the usual flooding argument; under the partitioned assignment every
// group floods internally and decides its own minimum — the Theorem 1
// shape transported to the round model.
type FloodMin struct {
	// R is the number of rounds before deciding.
	R int
}

// Name implements Algorithm.
func (a FloodMin) Name() string { return fmt.Sprintf("ho-floodmin(R=%d)", a.R) }

// Init implements Algorithm.
func (a FloodMin) Init(n int, id sim.ProcessID, input sim.Value) RoundState {
	return floodMinState{id: id, est: input, round: 0, r: a.R}
}

type floodMinState struct {
	id    sim.ProcessID
	est   sim.Value
	round int
	r     int
}

// Message implements RoundState.
func (s floodMinState) Message() sim.Payload { return MinPayload{From: s.id, Est: s.est} }

// Transition implements RoundState.
func (s floodMinState) Transition(heard map[sim.ProcessID]sim.Payload) RoundState {
	next := s
	for _, payload := range heard {
		if mp, ok := payload.(MinPayload); ok && mp.Est < next.est {
			next.est = mp.Est
		}
	}
	next.round++
	return next
}

// Decided implements RoundState.
func (s floodMinState) Decided() (sim.Value, bool) {
	if s.round >= s.r {
		return s.est, true
	}
	return sim.NoValue, false
}

// Key implements RoundState.
func (s floodMinState) Key() string {
	return fmt.Sprintf("fm{%d,%d,%d/%d}", s.id, s.est, s.round, s.r)
}
