package ho

import (
	"fmt"
	"sort"

	"kset/internal/sim"
)

// OneThirdRule is the classic predicate-conditioned consensus algorithm of
// the Heard-Of model (Charron-Bost and Schiper): each round broadcast your
// estimate; adopt the smallest most-frequent value among the messages
// heard; decide a value v once more than 2n/3 of the heard values equal v.
//
// Its safety needs no synchrony at all, and that is exactly the contrast
// the partition experiment draws: under the Theorem 1 adversary (heard-of
// sets confined to groups smaller than 2n/3), OneThirdRule simply never
// decides — the HO-model incarnation of "condition (A) fails" — while the
// unconditional flooding algorithm decides unsafely, one value per group.
// An algorithm escapes the paper's partitioning argument only by refusing
// to decide inside partitions.
type OneThirdRule struct{}

// Name implements Algorithm.
func (OneThirdRule) Name() string { return "ho-onethird" }

// Init implements Algorithm.
func (OneThirdRule) Init(n int, id sim.ProcessID, input sim.Value) RoundState {
	return oneThirdState{n: n, id: id, est: input, decision: sim.NoValue}
}

type oneThirdState struct {
	n        int
	id       sim.ProcessID
	est      sim.Value
	decision sim.Value
}

// Message implements RoundState.
func (s oneThirdState) Message() sim.Payload { return MinPayload{From: s.id, Est: s.est} }

// Transition implements RoundState.
func (s oneThirdState) Transition(heard map[sim.ProcessID]sim.Payload) RoundState {
	next := s
	counts := map[sim.Value]int{}
	for _, payload := range heard {
		if mp, ok := payload.(MinPayload); ok {
			counts[mp.Est]++
		}
	}
	if len(counts) > 0 {
		// Adopt the smallest most frequent value among those heard.
		vals := make([]sim.Value, 0, len(counts))
		for v := range counts {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		best := vals[0]
		for _, v := range vals {
			if counts[v] > counts[best] {
				best = v
			}
		}
		next.est = best
		// Decide once some value was heard from more than 2n/3 processes.
		for _, v := range vals {
			if 3*counts[v] > 2*next.n {
				if next.decision == sim.NoValue {
					next.decision = v
				}
				break
			}
		}
	}
	return next
}

// Decided implements RoundState.
func (s oneThirdState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// Key implements RoundState.
func (s oneThirdState) Key() string {
	return fmt.Sprintf("otr{%d,%d,%d}", s.id, s.est, s.decision)
}
