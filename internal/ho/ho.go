// Package ho implements the Heard-Of round model of Charron-Bost and
// Schiper, which the paper's Discussion names as a natural next target for
// Theorem 1 ("we are confident it can also be used to establish
// impossibility results in round models like [8]").
//
// Computation proceeds in communication-closed rounds: in round r every
// process broadcasts a message computed from its state, receives exactly
// the round-r messages of the processes in its heard-of set HO(p, r), and
// transitions. Failures and asynchrony are folded into the heard-of
// assignment; communication predicates classify assignments.
//
// The package provides the executor, predicate checkers, a k-set agreement
// algorithm for the model, and — the point of the exercise — the partition
// predicates under which Theorem 1's argument goes through verbatim: when a
// communication predicate admits assignments whose heard-of sets are
// confined to k partitions for long enough, the partitions decide
// independently and k-set agreement requires consensus inside one of them.
package ho

import (
	"fmt"
	"sort"

	"kset/internal/sim"
)

// Algorithm is a round-based state machine factory.
type Algorithm interface {
	Name() string
	Init(n int, id sim.ProcessID, input sim.Value) RoundState
}

// RoundState is an immutable per-round process state. Message returns the
// payload broadcast in the current round; Transition consumes the heard
// messages of the round (keyed by sender) and returns the next round's
// state.
type RoundState interface {
	Message() sim.Payload
	Transition(heard map[sim.ProcessID]sim.Payload) RoundState
	Decided() (sim.Value, bool)
	Key() string
}

// Assignment fixes the heard-of sets: HO(p, r) is the set of processes
// whose round-r messages p receives. The paper's crash and asynchrony
// adversaries become choices of assignment.
type Assignment func(p sim.ProcessID, r int) []sim.ProcessID

// Result is the outcome of an execution.
type Result struct {
	Rounds    int
	Decisions map[sim.ProcessID]sim.Value
	// States holds the final round states (for inspection/tests).
	States map[sim.ProcessID]RoundState
}

// DistinctDecisions returns the distinct decided values, ascending.
func (r *Result) DistinctDecisions() []sim.Value {
	seen := map[sim.Value]bool{}
	for _, v := range r.Decisions {
		seen[v] = true
	}
	out := make([]sim.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllDecided reports whether every process decided.
func (r *Result) AllDecided(n int) bool { return len(r.Decisions) == n }

// Execute runs the algorithm for at most maxRounds communication-closed
// rounds under the given heard-of assignment, stopping early once every
// process has decided.
func Execute(alg Algorithm, inputs []sim.Value, ho Assignment, maxRounds int) (*Result, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("ho: no processes")
	}
	if maxRounds <= 0 {
		maxRounds = 100
	}
	states := make([]RoundState, n)
	for i := 0; i < n; i++ {
		states[i] = alg.Init(n, sim.ProcessID(i+1), inputs[i])
	}
	res := &Result{Decisions: map[sim.ProcessID]sim.Value{}, States: map[sim.ProcessID]RoundState{}}

	for r := 0; r < maxRounds; r++ {
		// Collect the round's messages.
		msgs := make([]sim.Payload, n)
		for i, s := range states {
			msgs[i] = s.Message()
		}
		// Deliver per heard-of set and transition.
		next := make([]RoundState, n)
		for i := range states {
			p := sim.ProcessID(i + 1)
			heard := map[sim.ProcessID]sim.Payload{}
			for _, q := range ho(p, r) {
				if q >= 1 && int(q) <= n {
					heard[q] = msgs[q-1]
				}
			}
			next[i] = states[i].Transition(heard)
			if next[i] == nil {
				return nil, fmt.Errorf("ho: process %d returned nil state in round %d", p, r)
			}
		}
		states = next
		res.Rounds = r + 1

		allDecided := true
		for i, s := range states {
			p := sim.ProcessID(i + 1)
			if v, ok := s.Decided(); ok {
				if prev, had := res.Decisions[p]; had && prev != v {
					return nil, fmt.Errorf("ho: process %d changed decision %d -> %d", p, prev, v)
				}
				res.Decisions[p] = v
			} else {
				allDecided = false
			}
		}
		if allDecided {
			break
		}
	}
	for i, s := range states {
		res.States[sim.ProcessID(i+1)] = s
	}
	return res, nil
}

// --- Assignments ---

// Complete returns the failure-free synchronous assignment HO(p, r) = Pi.
func Complete(n int) Assignment {
	all := make([]sim.ProcessID, n)
	for i := range all {
		all[i] = sim.ProcessID(i + 1)
	}
	return func(sim.ProcessID, int) []sim.ProcessID { return all }
}

// Partitioned returns the Theorem 1 adversary in HO clothing: for the first
// `rounds` rounds every process hears exactly its own group; afterwards the
// assignment is complete. With rounds large enough for the algorithm to
// decide, the groups decide independently.
func Partitioned(n int, groups [][]sim.ProcessID, rounds int) Assignment {
	group := map[sim.ProcessID][]sim.ProcessID{}
	for _, g := range groups {
		cp := append([]sim.ProcessID(nil), g...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		for _, p := range g {
			group[p] = cp
		}
	}
	complete := Complete(n)
	return func(p sim.ProcessID, r int) []sim.ProcessID {
		if r < rounds {
			if g, ok := group[p]; ok {
				return g
			}
			return []sim.ProcessID{p}
		}
		return complete(p, r)
	}
}

// CrashFaulty returns the assignment induced by crash failures: processes
// in dead are heard by nobody from their crash round on (initial crashes:
// round 0), everyone else is always heard.
func CrashFaulty(n int, crashRound map[sim.ProcessID]int) Assignment {
	return func(p sim.ProcessID, r int) []sim.ProcessID {
		var out []sim.ProcessID
		for q := 1; q <= n; q++ {
			qid := sim.ProcessID(q)
			if cr, ok := crashRound[qid]; ok && r >= cr {
				continue
			}
			out = append(out, qid)
		}
		return out
	}
}

// --- Communication predicates ---

// CheckNonemptyKernel verifies, over the first `rounds` rounds, the global
// kernel predicate: some process is heard by everyone in every round (the
// classic no-split predicate sufficient for consensus safety in HO models).
func CheckNonemptyKernel(n int, ho Assignment, rounds int) bool {
	for r := 0; r < rounds; r++ {
		kernel := map[sim.ProcessID]bool{}
		for q := 1; q <= n; q++ {
			kernel[sim.ProcessID(q)] = true
		}
		for p := 1; p <= n; p++ {
			heard := map[sim.ProcessID]bool{}
			for _, q := range ho(sim.ProcessID(p), r) {
				heard[q] = true
			}
			for q := range kernel {
				if !heard[q] {
					delete(kernel, q)
				}
			}
		}
		if len(kernel) == 0 {
			return false
		}
	}
	return true
}

// CheckMinHeard verifies that every process hears at least m processes in
// every one of the first `rounds` rounds (the HO analogue of "at most n-m
// crashes").
func CheckMinHeard(n int, ho Assignment, rounds, m int) bool {
	for r := 0; r < rounds; r++ {
		for p := 1; p <= n; p++ {
			if len(ho(sim.ProcessID(p), r)) < m {
				return false
			}
		}
	}
	return true
}
