package ho

import (
	"testing"

	"kset/internal/sim"
)

func TestOneThirdRuleCompleteConsensus(t *testing.T) {
	n := 6
	// Majority proposes 100: the complete round hears 6 values, none above
	// the 2n/3 = 4 threshold with all-distinct inputs, so use a skewed
	// vector: four processes propose 100.
	in := []sim.Value{100, 100, 100, 100, 105, 106}
	res, err := Execute(OneThirdRule{}, in, Complete(n), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided(n) {
		t.Fatalf("only %d decided", len(res.Decisions))
	}
	got := res.DistinctDecisions()
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("decisions = %v, want [100]", got)
	}
}

func TestOneThirdRuleConvergesFromDistinctInputs(t *testing.T) {
	// With all-distinct inputs the first complete round makes everyone
	// adopt the smallest value; the second crosses the threshold.
	n := 5
	res, err := Execute(OneThirdRule{}, inputs(n), Complete(n), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided(n) {
		t.Fatalf("only %d decided after %d rounds", len(res.Decisions), res.Rounds)
	}
	got := res.DistinctDecisions()
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("decisions = %v, want [100]", got)
	}
}

// TestOneThirdRuleSafeUnderPartition is the E11 narrative's second half:
// the predicate-conditioned algorithm never decides inside partitions
// smaller than the 2n/3 threshold — safety is preserved by sacrificing
// liveness, the HO incarnation of "condition (A) fails".
func TestOneThirdRuleSafeUnderPartition(t *testing.T) {
	n := 6
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	res, err := Execute(OneThirdRule{}, inputs(n), Partitioned(n, groups, 50), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("decisions %v inside partitions below threshold", res.Decisions)
	}
}

// TestOneThirdRuleLargePartitionDecides: a group larger than 2n/3 *can*
// decide alone — consistent with the threshold semantics.
func TestOneThirdRuleLargePartitionDecides(t *testing.T) {
	n := 6
	groups := [][]sim.ProcessID{{1, 2, 3, 4, 5}, {6}}
	res, err := Execute(OneThirdRule{}, inputs(n), Partitioned(n, groups, 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The big group converges to 100 and crosses 2n/3 = 4 within the
	// partition; p6 alone cannot.
	if v, ok := res.Decisions[1]; !ok || v != 100 {
		t.Fatalf("p1 decision = (%d,%t), want (100,true)", v, ok)
	}
}

// TestOneThirdRuleAgreementUnderAdversarialHO: random-ish heard-of
// assignments above the threshold never produce two decisions.
func TestOneThirdRuleAgreementUnderMixedHO(t *testing.T) {
	n := 6
	// Alternate between complete rounds and rounds where everyone hears
	// only processes 1..5 (still above 2n/3).
	ho := func(p sim.ProcessID, r int) []sim.ProcessID {
		if r%2 == 0 {
			return []sim.ProcessID{1, 2, 3, 4, 5, 6}
		}
		return []sim.ProcessID{1, 2, 3, 4, 5}
	}
	res, err := Execute(OneThirdRule{}, inputs(n), ho, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.DistinctDecisions()); got > 1 {
		t.Fatalf("distinct = %d, want <= 1", got)
	}
}

func TestOneThirdRuleStateKey(t *testing.T) {
	s := OneThirdRule{}.Init(3, 1, 9)
	if s.Key() == "" {
		t.Fatal("empty key")
	}
	if _, decided := s.Decided(); decided {
		t.Fatal("decided at init")
	}
}
