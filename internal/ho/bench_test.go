package ho

import (
	"testing"

	"kset/internal/sim"
)

func BenchmarkFloodMinComplete(b *testing.B) {
	n := 16
	in := inputs(n)
	assign := Complete(n)
	for i := 0; i < b.N; i++ {
		res, err := Execute(FloodMin{R: 3}, in, assign, 10)
		if err != nil || !res.AllDecided(n) {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

func BenchmarkFloodMinPartitioned(b *testing.B) {
	n := 16
	in := inputs(n)
	groups := [][]sim.ProcessID{}
	for g := 0; g < 4; g++ {
		var grp []sim.ProcessID
		for j := 1; j <= 4; j++ {
			grp = append(grp, sim.ProcessID(g*4+j))
		}
		groups = append(groups, grp)
	}
	assign := Partitioned(n, groups, 3)
	for i := 0; i < b.N; i++ {
		res, err := Execute(FloodMin{R: 3}, in, assign, 10)
		if err != nil || len(res.DistinctDecisions()) != 4 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

func BenchmarkOneThirdRuleComplete(b *testing.B) {
	n := 16
	in := inputs(n)
	assign := Complete(n)
	for i := 0; i < b.N; i++ {
		res, err := Execute(OneThirdRule{}, in, assign, 10)
		if err != nil || !res.AllDecided(n) {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

func BenchmarkKernelPredicate(b *testing.B) {
	n := 32
	assign := Complete(n)
	for i := 0; i < b.N; i++ {
		if !CheckNonemptyKernel(n, assign, 5) {
			b.Fatal("kernel lost")
		}
	}
}
