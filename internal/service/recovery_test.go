package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func getReadyz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func waitReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := getReadyz(t, ts); code == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// selectiveRunner behaves like mockRunner but blocks only the job whose
// digest matches blockDigest (until block closes or the ctx cancels).
type selectiveRunner struct {
	mockRunner
	blockDigest string
	block       chan struct{}
}

func (r *selectiveRunner) Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error) {
	d, _ := r.Digest(spec)
	if d == r.blockDigest {
		if r.started != nil {
			r.started <- d
		}
		select {
		case <-r.block:
		case <-ctx.Done():
			return &Verdict{Digest: d, Summary: "cancelled", Visited: 1, Truncated: true}, nil
		}
		return &Verdict{Digest: d, Summary: "ok", Refuted: true, Visited: 1000}, nil
	}
	return r.mockRunner.Run(ctx, spec, progress)
}

// A server with no journal (or an empty one) is ready immediately.
func TestReadyzNoRecovery(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: NewMemoryCache()})
	code, body := getReadyz(t, ts)
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz: HTTP %d %v", code, body)
	}
}

// Restart recovery: jobs that had not settled when the process died are
// re-enqueued and re-run; settled jobs come back with their final state and
// verdict and are NOT re-run.
func TestRecoveryRerunsUnfinishedJobs(t *testing.T) {
	path := testJournalPath(t)

	// First life: one job completes, one is still running when the process
	// "dies". Close() deliberately journals nothing terminal for in-flight
	// jobs, so it doubles as a crash for the journal's purposes.
	started := make(chan string, 4)
	stuckDigest, _ := (&mockRunner{}).Digest(InstanceSpec{Alg: "minwait", N: 5, K: 2})
	r1 := &selectiveRunner{
		mockRunner:  mockRunner{started: started},
		blockDigest: stuckDigest,
		block:       make(chan struct{}),
	}
	s1 := New(Config{
		Runner:  r1,
		Cache:   NewMemoryCache(),
		Journal: mustOpenJournal(t, path),
	})
	ts1 := httptest.NewServer(s1.Handler())
	code, done := postJob(t, ts1, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit done-job: HTTP %d", code)
	}
	<-started
	waitState(t, ts1, done.JobID, StateDone)
	// This job's digest is the blocked one: it will still be running at
	// shutdown.
	code, stuck := postJob(t, ts1, `{"alg": "minwait", "n": 5, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit stuck-job: HTTP %d", code)
	}
	<-started
	ts1.Close()
	s1.Close() // in-flight job stays non-terminal in the journal

	// Second life: only the unfinished job runs again.
	started2 := make(chan string, 4)
	s2 := New(Config{
		Runner:  &mockRunner{started: started2},
		Cache:   NewMemoryCache(),
		Journal: mustOpenJournal(t, path),
	})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	waitReady(t, ts2)

	st := waitState(t, ts2, stuck.JobID, StateDone)
	if !st.Recovered {
		t.Fatalf("re-run job not flagged recovered: %+v", st)
	}
	if st.Digest != stuck.Digest {
		t.Fatalf("recovered job digest %s, want %s", st.Digest, stuck.Digest)
	}

	_, doneSt := getStatus(t, ts2, done.JobID)
	if doneSt.State != StateDone || doneSt.Verdict == nil || !doneSt.Verdict.Refuted {
		t.Fatalf("completed job not recovered with its verdict: %+v", doneSt)
	}

	// Exactly one Run in the second life: the stuck job, never the done one.
	select {
	case d := <-started2:
		if d != stuck.Digest {
			t.Fatalf("second life ran digest %s, want %s", d, stuck.Digest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovered job never started")
	}
	select {
	case d := <-started2:
		t.Fatalf("second life ran an extra job (digest %s)", d)
	case <-time.After(100 * time.Millisecond):
	}
}

// A client-cancelled job is terminal in the journal: a restart recovers its
// state but does not re-run it.
func TestUserCancelNotRecovered(t *testing.T) {
	path := testJournalPath(t)
	started := make(chan string, 1)
	s1 := New(Config{
		Runner:  &mockRunner{block: make(chan struct{}), started: started},
		Cache:   NewMemoryCache(),
		Journal: mustOpenJournal(t, path),
	})
	ts1 := httptest.NewServer(s1.Handler())
	code, sub := postJob(t, ts1, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started
	resp, err := http.Post(ts1.URL+"/v1/jobs/"+sub.JobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts1, sub.JobID, StateCancelled)
	ts1.Close()
	s1.Close()

	started2 := make(chan string, 1)
	s2 := New(Config{
		Runner:  &mockRunner{started: started2},
		Cache:   NewMemoryCache(),
		Journal: mustOpenJournal(t, path),
	})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	// Nothing to recover: ready at once, cancelled state preserved, no run.
	if code, _ := getReadyz(t, ts2); code != http.StatusOK {
		t.Fatalf("readyz with only terminal jobs: HTTP %d", code)
	}
	if _, st := getStatus(t, ts2, sub.JobID); st.State != StateCancelled {
		t.Fatalf("cancelled job recovered as %q", st.State)
	}
	select {
	case d := <-started2:
		t.Fatalf("cancelled job was re-run (digest %s)", d)
	case <-time.After(100 * time.Millisecond):
	}
}

// Satellite regression: while startup recovery is still re-enqueueing
// journalled jobs, a duplicate submission must dedup onto the recovered job
// — not race it into a second execution — because the dedup index is built
// synchronously before the server accepts traffic. /readyz reports 503
// until the backlog is fully enqueued.
func TestStartupDedupAgainstRecoveringJobs(t *testing.T) {
	path := testJournalPath(t)
	// Hand-build a journal with three unfinished jobs whose digests match
	// what the server's runner will compute.
	mock := &mockRunner{}
	j := mustOpenJournal(t, path)
	specs := []InstanceSpec{
		{Alg: "minwait", N: 4, K: 2},
		{Alg: "minwait", N: 5, K: 2},
		{Alg: "minwait", N: 6, K: 2},
	}
	for i, sp := range specs {
		sp := sp
		d, _ := mock.Digest(sp)
		if err := j.Append(JournalRecord{
			Job: []string{"j1", "j2", "j3"}[i], Digest: d, Event: EventSubmitted, Spec: &sp,
		}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Workers=1 and QueueDepth=1 wedge recovery deterministically: the
	// worker holds j1 (blocked runner), the queue holds j2, and the
	// re-enqueue goroutine is still blocked sending j3.
	block := make(chan struct{})
	started := make(chan string, 3)
	s := New(Config{
		Runner:     &mockRunner{block: block, started: started},
		Cache:      NewMemoryCache(),
		Workers:    1,
		QueueDepth: 1,
		Journal:    mustOpenJournal(t, path),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	<-started // j1 is running; j2/j3 still in the recovery pipeline

	// Recovery must still be in progress with j3 unenqueued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getReadyz(t, ts)
		if code == http.StatusServiceUnavailable && body["pending"].(float64) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never wedged at pending=1 (readyz %d %v)", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Submitting j3's spec now must dedup onto the journalled job.
	code, dup := postJob(t, ts, `{"alg": "minwait", "n": 6, "k": 2}`)
	if code != http.StatusAccepted || !dup.Deduped || dup.JobID != "j3" {
		t.Fatalf("submit during recovery: HTTP %d %+v, want dedup onto j3", code, dup)
	}
	// A genuinely new spec gets an ID beyond the recovered range. It lands
	// in StateFailed (queue full) — fine; only the ID matters here.
	code, fresh := postJob(t, ts, `{"alg": "minwait", "n": 7, "k": 2}`)
	if fresh.JobID == "j1" || fresh.JobID == "j2" || fresh.JobID == "j3" {
		t.Fatalf("fresh submit reused a recovered job ID: HTTP %d %+v", code, fresh)
	}

	close(block)
	waitReady(t, ts)
	for _, id := range []string{"j1", "j2", "j3"} {
		if st := waitState(t, ts, id, StateDone); !st.Recovered {
			t.Fatalf("%s not flagged recovered: %+v", id, st)
		}
	}
}

// Checkpoint-opted jobs journal their level progress so an operator can see
// how far a crashed job had gotten; the record also survives folding.
func TestCheckpointProgressJournalled(t *testing.T) {
	path := testJournalPath(t)
	s := New(Config{
		Runner:  &mockRunner{},
		Cache:   NewMemoryCache(),
		Journal: mustOpenJournal(t, path),
	})
	ts := httptest.NewServer(s.Handler())
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2, "checkpoint": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, ts, sub.JobID, StateDone)
	ts.Close()
	s.Close()

	j := mustOpenJournal(t, path)
	defer j.Close()
	var ckpt *JournalRecord
	for i, rec := range j.Replayed() {
		if rec.Event == EventCheckpointed {
			ckpt = &j.Replayed()[i]
		}
	}
	if ckpt == nil {
		t.Fatal("no checkpointed record for a checkpoint-opted job")
	}
	if ckpt.Visited != 500 || ckpt.Level != 3 {
		t.Fatalf("checkpointed progress: %+v", ckpt)
	}
}
