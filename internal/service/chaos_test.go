package service

// Process-level chaos e2e: build the real ksetd binary, SIGKILL it mid-
// search, restart it over the same journal/cache/checkpoint state, and
// assert the recovered job's verdict is bit-for-bit what an uninterrupted
// library run produces. This is the acceptance gate of the crash-safety
// tentpole: kill -9 costs re-exploration, never a verdict.
//
// The workload is chosen to be deterministic under interruption: a
// quorummin n=5 consensus-failure search truncated at max_configs=30000
// (the witness lies beyond 800k configs, so truncation always wins).
// Truncation is digest-relevant and the checkpoint resume is level-exact,
// so the verdict cannot depend on where the kill landed.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"kset"
)

// chaosSpec is the interruptible workload; ~2.5s single-worker on a dev
// machine, long enough that a kill after the first sealed level lands
// mid-search with high margin.
const chaosSpec = `{"alg": "quorummin", "n": 5, "f": 4, "goal": "search", "budget": 1, "max_configs": 30000, "workers": 1, "store": "spill", "checkpoint": true}`

// ksetdProc is one life of the ksetd process.
type ksetdProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

// startKsetd launches bin with the shared state directories and waits for
// its listen log line to learn the port.
func startKsetd(t *testing.T, bin, stateDir string) *ksetdProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-pool", "1",
		"-cache", "disk",
		"-cache-dir", filepath.Join(stateDir, "verdicts"),
		"-checkpoint", filepath.Join(stateDir, "ckpt"),
		"-journal", filepath.Join(stateDir, "jobs.jsonl"),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				addrCh <- addr
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &ksetdProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(15 * time.Second):
		t.Fatal("ksetd never logged its listen address")
		return nil
	}
}

func (p *ksetdProc) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestChaosKillMidSearchVerdictParity(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "ksetd")
	build := exec.Command("go", "build", "-o", bin, "kset/cmd/ksetd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ksetd: %v\n%s", err, out)
	}
	stateDir := t.TempDir()

	// First life: submit and let the search get past its first sealed
	// level, then kill -9.
	p1 := startKsetd(t, bin, stateDir)
	resp, err := http.Post(p1.base+"/v1/jobs", "application/json", strings.NewReader(chaosSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.Cached {
		t.Fatalf("submit: HTTP %d %+v (%v)", resp.StatusCode, sub, err)
	}

	killDeadline := time.Now().Add(60 * time.Second)
	var atKill JobStatus
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("job never reported running progress to kill under")
		}
		var st JobStatus
		if code := p1.get(t, "/v1/jobs/"+sub.JobID, &st); code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		if st.State == StateDone {
			t.Fatalf("search finished before the kill landed — shrink the kill trigger or grow max_configs (visited %d)", st.Progress.Visited)
		}
		// Wait for a few sealed levels so the restart resumes a genuinely
		// mid-flight checkpoint, not a near-fresh search. 5000 of the 30000
		// configs still leaves most of the wall clock ahead of the kill
		// (the deepest level dominates).
		if st.State == StateRunning && st.Progress.Visited >= 5000 {
			atKill = st
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()
	t.Logf("killed mid-search at visited=%d level=%d", atKill.Progress.Visited, atKill.Progress.Level)

	// Second life over the same state: the journal replays the job, the
	// checkpoint resumes the search, and the verdict settles.
	p2 := startKsetd(t, bin, stateDir)
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		if code := p2.get(t, "/readyz", nil); code == http.StatusOK {
			break
		}
		if time.Now().After(readyDeadline) {
			t.Fatal("restarted server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var final JobStatus
	doneDeadline := time.Now().Add(120 * time.Second)
	for {
		if code := p2.get(t, "/v1/jobs/"+sub.JobID, &final); code != http.StatusOK {
			t.Fatalf("restarted status: HTTP %d", code)
		}
		if final.State == StateDone {
			break
		}
		if final.State == StateFailed || final.State == StateCancelled {
			t.Fatalf("recovered job settled %s: %s", final.State, final.Error)
		}
		if time.Now().After(doneDeadline) {
			t.Fatalf("recovered job never completed (state %s, visited %d)", final.State, final.Progress.Visited)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !final.Recovered {
		t.Fatalf("job not flagged recovered after restart: %+v", final)
	}
	if final.Verdict == nil {
		t.Fatal("recovered job has no verdict")
	}

	// Ground truth: the same search, uninterrupted, straight through the
	// library. The recovered verdict must match field for field.
	var spec InstanceSpec
	if err := json.Unmarshal([]byte(chaosSpec), &spec); err != nil {
		t.Fatal(err)
	}
	search, err := kset.NewSearcher(kset.Options{Store: "spill"})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := kset.NewAlgorithm(spec.Alg, spec.F)
	if err != nil {
		t.Fatal(err)
	}
	live := make([]kset.ProcessID, spec.N)
	for i := range live {
		live[i] = kset.ProcessID(i + 1)
	}
	w, found, err := search.FindConsensusFailure(context.Background(), kset.SearchRequest{
		Alg:         alg,
		Inputs:      kset.DistinctInputs(spec.N),
		Live:        live,
		CrashBudget: spec.Budget,
		MaxConfigs:  spec.MaxConfigs,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := final.Verdict
	if v.Found != found || v.Visited != w.Stats.Visited || v.Truncated != w.Stats.Truncated {
		t.Fatalf("recovered verdict diverges from uninterrupted library run:\n  server:  found=%t visited=%d truncated=%t\n  library: found=%t visited=%d truncated=%t",
			v.Found, v.Visited, v.Truncated, found, w.Stats.Visited, w.Stats.Truncated)
	}
	if found && (v.WitnessKind != w.Kind || v.WitnessDetail != w.Detail) {
		t.Fatalf("witness disagrees: server (%s %q), library (%s %q)", v.WitnessKind, v.WitnessDetail, w.Kind, w.Detail)
	}

	// And the recovered verdict is now a cache hit for any client.
	resp, err = http.Post(p2.base+"/v1/jobs", "application/json", strings.NewReader(chaosSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub2)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !sub2.Cached {
		t.Fatalf("post-recovery submit: HTTP %d %+v (%v)", resp.StatusCode, sub2, err)
	}
	got, _ := json.Marshal(sub2.Verdict)
	want, _ := json.Marshal(v)
	if string(got) != string(want) {
		t.Fatalf("cached verdict differs from recovered verdict:\n  cached:    %s\n  recovered: %s", got, want)
	}

	// The journal itself must replay cleanly (the kill may have torn its
	// last line — that is tolerated, not an error).
	j, err := OpenJournal(filepath.Join(stateDir, "jobs.jsonl"))
	if err != nil {
		t.Fatalf("journal unreadable after chaos: %v", err)
	}
	defer j.Close()
	var events []string
	for _, rec := range j.Replayed() {
		if rec.Job == sub.JobID {
			events = append(events, rec.Event)
		}
	}
	if events[0] != EventSubmitted || events[len(events)-1] != EventDone {
		t.Fatalf("journal lifecycle for %s: %v", sub.JobID, events)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "jobs.jsonl.corrupt")); err == nil {
		t.Log("note: kill landed mid-append; journal was quarantined and salvaged")
	}
}
