package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kset"
)

// e2eSpec is the end-to-end workhorse: the Theorem 2 setting the CLI and the
// E14 engine rows use, small enough to complete in well under a second and
// refuted (3 distinct decisions > k).
func e2eSpec() InstanceSpec {
	return InstanceSpec{Alg: "minwait", N: 4, F: 3, K: 2, MaxConfigs: 60000}
}

// TestE2ECacheHitBitIdentical is the acceptance gate of the verdict cache:
// two submissions of the same instance against a live server return
// bit-identical verdicts, the second answered from the disk cache with the
// hit counter incremented — and a fresh server over the same cache directory
// answers from the cache without running anything at all.
func TestE2ECacheHitBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Runner: KsetRunner{}, Cache: cache})
	body, err := json.Marshal(e2eSpec())
	if err != nil {
		t.Fatal(err)
	}

	code, sub := postJob(t, ts, string(body))
	if code != 202 || sub.Cached {
		t.Fatalf("first submit: HTTP %d %+v", code, sub)
	}
	st := waitState(t, ts, sub.JobID, StateDone)
	if st.Verdict == nil || !st.Verdict.Refuted {
		t.Fatalf("e2e verdict: %+v", st.Verdict)
	}
	first, err := json.Marshal(st.Verdict)
	if err != nil {
		t.Fatal(err)
	}

	code, sub2 := postJob(t, ts, string(body))
	if code != 200 || !sub2.Cached || sub2.Verdict == nil {
		t.Fatalf("second submit: HTTP %d %+v", code, sub2)
	}
	second, err := json.Marshal(sub2.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("verdicts differ:\n  run:    %s\n  cached: %s", first, second)
	}
	if cs := cacheStats(t, ts); cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats: %+v", cs)
	}

	// The disk cache outlives the server: a fresh server over the same
	// directory answers the same submission as a pure hit.
	cache2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Runner: KsetRunner{}, Cache: cache2})
	code, sub3 := postJob(t, ts2, string(body))
	if code != 200 || !sub3.Cached {
		t.Fatalf("fresh-server submit: HTTP %d %+v", code, sub3)
	}
	third, err := json.Marshal(sub3.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(third) {
		t.Fatalf("persisted verdict differs:\n  run:  %s\n  disk: %s", first, third)
	}
}

// submitAndWait submits a spec and returns its verdict, whether freshly
// computed or answered from the cache. Knob combinations that collapse to
// the same effective search share a digest — POR is forced off under
// non-crash fault models, for instance — so a matrix sweep legitimately sees
// cache hits on later cells.
func submitAndWait(t *testing.T, ts *httptest.Server, spec InstanceSpec) *Verdict {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, sub := postJob(t, ts, string(body))
	switch {
	case code == 200 && sub.Cached:
		return sub.Verdict
	case code == 202:
		return waitState(t, ts, sub.JobID, StateDone).Verdict
	}
	t.Fatalf("submit: HTTP %d %+v", code, sub)
	return nil
}

// TestDifferentialServerVsLibrary cross-checks the service against direct
// kset.Searcher calls across the reduction and fault knob matrix: for every
// combination the HTTP verdict must agree field by field with the library's
// report, for both goals.
func TestDifferentialServerVsLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: KsetRunner{}, Cache: NewMemoryCache(), Workers: 4})
	for _, symmetry := range []bool{false, true} {
		for _, por := range []bool{false, true} {
			for _, faults := range []string{"", "send-omission:1"} {
				name := fmt.Sprintf("sym=%t/por=%t/faults=%q", symmetry, por, faults)
				search, err := kset.NewSearcher(kset.Options{Symmetry: symmetry, POR: por, Faults: faults})
				if err != nil {
					t.Fatal(err)
				}

				// Impossibility goal.
				spec := e2eSpec()
				spec.Symmetry, spec.POR, spec.Faults = symmetry, por, faults
				v := submitAndWait(t, ts, spec)

				part, err := kset.Theorem2Partition(spec.N, spec.F, spec.K)
				if err != nil {
					t.Fatal(err)
				}
				alg, err := kset.NewAlgorithm(spec.Alg, spec.F)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := search.CheckImpossibility(context.Background(), kset.ImpossibilityInstance{
					Alg:             alg,
					Inputs:          kset.DistinctInputs(spec.N),
					Spec:            part,
					DBarCrashBudget: 1,
					MaxConfigs:      spec.MaxConfigs,
					SearchStrategy:  "dfs",
				})
				if err != nil {
					t.Fatal(err)
				}
				if v.Refuted != rep.Refuted || v.Violation != rep.Violation || v.Summary != rep.Summary() {
					t.Errorf("%s: verdict disagrees with library:\n  server: refuted=%t %q %q\n  library: refuted=%t %q %q",
						name, v.Refuted, v.Violation, v.Summary, rep.Refuted, rep.Violation, rep.Summary())
				}
				if v.CondA != rep.CondA.String() || v.CondB != rep.CondB.String() ||
					v.CondC != rep.CondC.String() || v.CondD != rep.CondD.String() {
					t.Errorf("%s: condition statuses disagree: server (%s %s %s %s), library (%s %s %s %s)",
						name, v.CondA, v.CondB, v.CondC, v.CondD, rep.CondA, rep.CondB, rep.CondC, rep.CondD)
				}
				if v.Visited != rep.CondCStats.Visited || v.Truncated != rep.CondCStats.Truncated {
					t.Errorf("%s: stats disagree: server visited=%d truncated=%t, library visited=%d truncated=%t",
						name, v.Visited, v.Truncated, rep.CondCStats.Visited, rep.CondCStats.Truncated)
				}

				// Search goal over the full system.
				sspec := spec
				sspec.Goal = GoalSearch
				sspec.K = 0
				sspec.MaxConfigs = 20000
				sv := submitAndWait(t, ts, sspec)

				live := make([]kset.ProcessID, sspec.N)
				for i := range live {
					live[i] = kset.ProcessID(i + 1)
				}
				w, found, err := search.FindConsensusFailure(context.Background(), kset.SearchRequest{
					Alg:         alg,
					Inputs:      kset.DistinctInputs(sspec.N),
					Live:        live,
					CrashBudget: 1,
					MaxConfigs:  sspec.MaxConfigs,
				})
				if err != nil {
					t.Fatal(err)
				}
				if sv.Found != found {
					t.Errorf("%s: search found=%t, library found=%t", name, sv.Found, found)
				}
				if w != nil && (sv.Visited != w.Stats.Visited || sv.Truncated != w.Stats.Truncated) {
					t.Errorf("%s: search stats disagree: server visited=%d truncated=%t, library visited=%d truncated=%t",
						name, sv.Visited, sv.Truncated, w.Stats.Visited, w.Stats.Truncated)
				}
				if found && (sv.WitnessKind != w.Kind || sv.WitnessDetail != w.Detail) {
					t.Errorf("%s: search witness disagrees: server (%s %q), library (%s %q)",
						name, sv.WitnessKind, sv.WitnessDetail, w.Kind, w.Detail)
				}
			}
		}
	}
}

// TestConcurrentJobs drives several real searches through the pool at once
// (the -race acceptance workload) and then replays every one of them as a
// cache hit with an identical verdict.
func TestConcurrentJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: KsetRunner{}, Cache: NewMemoryCache(), Workers: 3})
	algs := []string{"minwait", "decideown", "firstheard", "quorummin"}

	verdicts := make([]*Verdict, len(algs))
	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := e2eSpec()
			spec.Alg = alg
			body, err := json.Marshal(spec)
			if err != nil {
				t.Error(err)
				return
			}
			// Raw HTTP without the postJob/waitState helpers: t.Fatal must
			// not be called from a spawned goroutine.
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("%s: %v", alg, err)
				return
			}
			var sub SubmitResponse
			err = json.NewDecoder(resp.Body).Decode(&sub)
			resp.Body.Close()
			if err != nil || resp.StatusCode != 202 {
				t.Errorf("%s: submit HTTP %d (%v)", alg, resp.StatusCode, err)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID)
				if err != nil {
					t.Errorf("%s: %v", alg, err)
					return
				}
				var st JobStatus
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: %v", alg, err)
					return
				}
				switch st.State {
				case StateDone:
					verdicts[i] = st.Verdict
					return
				case StateFailed:
					t.Errorf("%s: job failed: %s", alg, st.Error)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Errorf("%s: job never completed", alg)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, alg := range algs {
		spec := e2eSpec()
		spec.Alg = alg
		body, _ := json.Marshal(spec)
		code, sub := postJob(t, ts, string(body))
		if code != 200 || !sub.Cached {
			t.Fatalf("%s: replay HTTP %d %+v", alg, code, sub)
		}
		if *sub.Verdict != *verdicts[i] {
			t.Fatalf("%s: replay verdict differs: %+v vs %+v", alg, sub.Verdict, verdicts[i])
		}
	}
	if cs := cacheStats(t, ts); cs.Hits != int64(len(algs)) || cs.Entries != len(algs) {
		t.Fatalf("cache stats after replay: %+v", cs)
	}
}
