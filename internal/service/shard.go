package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"kset/internal/explore"
)

// Multi-process sharded exploration: the coordinator half of
// kset.ShardCoordinate served over localhost HTTP, plus the worker-side
// client and process plumbing behind the `-shards N` flag of
// cmd/experiments and cmd/ksetd.
//
// The coordinator embeds an explore.LocalShardHub and exposes its
// non-blocking Try/Post surface as HTTP endpoints on an ephemeral
// 127.0.0.1 listener — handlers never park (the job server's write
// timeouts forbid it); workers poll the 202-until-ready reads. Worker
// processes bootstrap from GET /v1/shard/instance, which carries the full
// InstanceSpec plus the coordinator's content digest; a worker recomputes
// the digest from the spec it decoded and refuses to participate on
// mismatch, so a version-skewed binary fails fast instead of corrupting a
// bit-identical search. Frontier exchange bodies use the length-prefixed
// binary codec of internal/explore (EncodeShardBatches and friends), not
// JSON: candidate batches are the protocol's hot path.
//
//	GET  /v1/shard/instance                      spec + shards + digest
//	GET  /v1/shard/phase?seq=N                   200 phase JSON | 202
//	POST /v1/shard/buckets?phase&level&shard     KSB1 body
//	GET  /v1/shard/owned?phase&level&shard       200 KSC1 | 202
//	POST /v1/shard/winners?phase&level&shard     KSC1 body
//	GET  /v1/shard/seal?phase&level              200 KSS1 | 202
//	POST /v1/shard/error                         {"error": ...} -> hub.Fail
//
// A poisoned hub answers 500 with the error everywhere, which each
// participant converts back into a local failure — exactly the
// LocalShardHub poisoning semantics, stretched over HTTP.

// shardInstance is the GET /v1/shard/instance reply: everything a worker
// process needs to reconstruct the coordinator's search bit for bit.
type shardInstance struct {
	Spec   InstanceSpec `json:"spec"`
	Shards int          `json:"shards"`
	Digest string       `json:"digest"`
}

// shardHub serves one sharded search's coordination state.
type shardHub struct {
	hub  *explore.LocalShardHub
	inst shardInstance
}

// shardQuery parses the integer query parameters of a shard endpoint.
func shardQuery(r *http.Request, names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, name := range names {
		v, err := strconv.Atoi(r.URL.Query().Get(name))
		if err != nil {
			return nil, fmt.Errorf("bad %s: %v", name, err)
		}
		out[i] = v
	}
	return out, nil
}

func (h *shardHub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard/instance", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.inst)
	})
	mux.HandleFunc("GET /v1/shard/phase", func(w http.ResponseWriter, r *http.Request) {
		q, err := shardQuery(r, "seq")
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ph, ok, err := h.hub.TryPhase(q[0])
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !ok {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		writeJSON(w, http.StatusOK, ph)
	})
	mux.HandleFunc("POST /v1/shard/buckets", func(w http.ResponseWriter, r *http.Request) {
		q, err := shardQuery(r, "phase", "level", "shard")
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		batches, err := explore.DecodeShardBatches(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := h.hub.PostBuckets(q[0], q[1], q[2], batches); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/shard/owned", func(w http.ResponseWriter, r *http.Request) {
		q, err := shardQuery(r, "phase", "level", "shard")
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cands, ok, err := h.hub.TryOwned(q[0], q[1], q[2])
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !ok {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		enc, err := explore.EncodeShardCandidates(cands)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(enc)
	})
	mux.HandleFunc("POST /v1/shard/winners", func(w http.ResponseWriter, r *http.Request) {
		q, err := shardQuery(r, "phase", "level", "shard")
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		winners, err := explore.DecodeShardCandidates(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := h.hub.PostWinners(q[0], q[1], q[2], winners); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/shard/seal", func(w http.ResponseWriter, r *http.Request) {
		q, err := shardQuery(r, "phase", "level")
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		seal, ok, err := h.hub.TrySeal(q[0], q[1])
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !ok {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(explore.EncodeLevelSeal(seal))
	})
	mux.HandleFunc("POST /v1/shard/error", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Error == "" {
			writeError(w, http.StatusBadRequest, "missing error")
			return
		}
		h.hub.Fail(errors.New(body.Error))
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// shardPollInterval paces the workers' 202 polls. Exchange rounds are
// milliseconds on realistic levels, so a short fixed interval stays
// responsive without hammering the coordinator.
const shardPollInterval = 2 * time.Millisecond

// shardClient implements explore.ShardExchange over the coordinator's HTTP
// hub: posts go through once, reads poll until the rendezvous completes.
// Like the in-process exchange handle it tracks its phase cursor locally.
type shardClient struct {
	ctx    context.Context
	client *http.Client
	base   string
	shard  int
	phase  int
}

// do performs one request, distinguishing ready (200/204), still-filling
// (202), and failure.
func (c *shardClient) do(method, path string, body []byte) (data []byte, ready bool, err error) {
	req, err := http.NewRequestWithContext(c.ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return data, true, nil
	case http.StatusAccepted:
		return nil, false, nil
	default:
		var msg struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &msg) == nil && msg.Error != "" {
			return nil, false, fmt.Errorf("service: coordinator: %s", msg.Error)
		}
		return nil, false, fmt.Errorf("service: coordinator: unexpected status %d", resp.StatusCode)
	}
}

// poll repeats a read until the coordinator reports it ready.
func (c *shardClient) poll(path string) ([]byte, error) {
	for {
		data, ready, err := c.do(http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		if ready {
			return data, nil
		}
		select {
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		case <-time.After(shardPollInterval):
		}
	}
}

// NextPhase implements explore.ShardExchange.
func (c *shardClient) NextPhase() (explore.ShardPhase, error) {
	seq := c.phase + 1
	data, err := c.poll(fmt.Sprintf("/v1/shard/phase?seq=%d", seq))
	if err != nil {
		return explore.ShardPhase{}, err
	}
	var ph explore.ShardPhase
	if err := json.Unmarshal(data, &ph); err != nil {
		return explore.ShardPhase{}, fmt.Errorf("service: malformed phase: %w", err)
	}
	if !ph.Done {
		c.phase = seq
	}
	return ph, nil
}

// Exchange implements explore.ShardExchange.
func (c *shardClient) Exchange(level int, byOwner [][]explore.ShardCandidate) ([]explore.ShardCandidate, error) {
	body, err := explore.EncodeShardBatches(byOwner)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.do(http.MethodPost,
		fmt.Sprintf("/v1/shard/buckets?phase=%d&level=%d&shard=%d", c.phase, level, c.shard), body); err != nil {
		return nil, err
	}
	data, err := c.poll(fmt.Sprintf("/v1/shard/owned?phase=%d&level=%d&shard=%d", c.phase, level, c.shard))
	if err != nil {
		return nil, err
	}
	return explore.DecodeShardCandidates(data)
}

// SubmitWinners implements explore.ShardExchange.
func (c *shardClient) SubmitWinners(level int, winners []explore.ShardCandidate) (explore.LevelSeal, error) {
	body, err := explore.EncodeShardCandidates(winners)
	if err != nil {
		return explore.LevelSeal{}, err
	}
	if _, _, err := c.do(http.MethodPost,
		fmt.Sprintf("/v1/shard/winners?phase=%d&level=%d&shard=%d", c.phase, level, c.shard), body); err != nil {
		return explore.LevelSeal{}, err
	}
	data, err := c.poll(fmt.Sprintf("/v1/shard/seal?phase=%d&level=%d", c.phase, level))
	if err != nil {
		return explore.LevelSeal{}, err
	}
	return explore.DecodeLevelSeal(data)
}

// ShardConfig parameterizes RunShardedSearch.
type ShardConfig struct {
	// Spec is the search job; must have Goal == GoalSearch and no
	// checkpoint opt-in (distributed pause/resume is future work).
	Spec InstanceSpec
	// Shards is the worker-process count (>= 1).
	Shards int
	// WorkerArgs builds the command line of one worker process given the
	// coordinator's base URL; typically a re-exec of the current binary
	// with hidden worker flags. Workers inherit the coordinator's stderr.
	WorkerArgs func(coordURL string, shard int) []string
	// OnProgress, when non-nil, receives the coordinator's per-level
	// progress updates.
	OnProgress func(ProgressUpdate)
}

// RunShardedSearch runs one GoalSearch job as a multi-process sharded
// exploration: an in-process coordinator serving the shard hub on an
// ephemeral localhost listener, plus cfg.Shards worker processes spawned
// from cfg.WorkerArgs. The verdict is bit-identical to KsetRunner.Run on
// the same spec at any shard count.
func RunShardedSearch(ctx context.Context, cfg ShardConfig) (*Verdict, error) {
	spec := cfg.Spec.withDefaults()
	if spec.Goal != GoalSearch {
		return nil, fmt.Errorf("service: sharded execution requires goal %q (got %q)", GoalSearch, spec.Goal)
	}
	if spec.Checkpoint {
		return nil, fmt.Errorf("service: sharded execution does not support checkpointing")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: shard count %d out of range", cfg.Shards)
	}
	if cfg.WorkerArgs == nil {
		return nil, fmt.Errorf("service: ShardConfig.WorkerArgs is required")
	}
	r := KsetRunner{}
	p, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	digest, err := r.Digest(spec)
	if err != nil {
		return nil, err
	}
	hub := explore.NewLocalShardHub(cfg.Shards)
	h := &shardHub{hub: hub, inst: shardInstance{Spec: spec, Shards: cfg.Shards, Digest: digest}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("service: shard listener: %w", err)
	}
	srv := &http.Server{Handler: h.handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	coordURL := "http://" + ln.Addr().String()

	// procCtx is a cleanup backstop, not the cancellation path: a user
	// cancel flows cooperatively through the coordinator (truncated
	// verdict, Halt seal, workers drain and exit zero); the hard kill only
	// fires once RunShardedSearch itself returns.
	procCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		args := cfg.WorkerArgs(coordURL, i)
		if len(args) == 0 {
			hub.Fail(fmt.Errorf("service: empty worker command for shard %d", i))
			break
		}
		cmd := exec.CommandContext(procCtx, args[0], args[1:]...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			hub.Fail(fmt.Errorf("service: starting shard %d worker: %w", i, err))
			break
		}
		wg.Add(1)
		go func(shard int, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				// A worker that died mid-protocol would otherwise leave the
				// coordinator parked in a gather; poisoning the hub turns the
				// crash into a prompt coordinator error. After a clean finish
				// the Fail is a no-op for the already-returned coordinator.
				hub.Fail(fmt.Errorf("service: shard %d worker: %w", shard, err))
			}
		}(i, cmd)
	}

	onProgress, _ := progressFuncs(cfg.OnProgress)
	w, found, err := p.search.ShardCoordinate(ctx, p.request(onProgress), hub)
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("service: sharded search: %w", err)
	}
	return searchVerdict(digest, w, found), nil
}

// ShardWorkerMain is the entry point of a worker process: it bootstraps the
// instance from the coordinator, verifies the content digest, and runs its
// shard until the coordinator finishes the phase sequence. Protocol errors
// are reported back to the coordinator (best effort) before returning.
func ShardWorkerMain(ctx context.Context, coordURL string, shard int) error {
	client := &http.Client{}
	c := &shardClient{ctx: ctx, client: client, base: coordURL, shard: shard, phase: -1}
	var inst shardInstance
	// Brief retry: the coordinator always listens before spawning workers,
	// but a loaded machine can still glitch the first connect.
	var data []byte
	var err error
	for attempt := 0; ; attempt++ {
		data, _, err = c.do(http.MethodGet, "/v1/shard/instance", nil)
		if err == nil || attempt >= 20 || ctx.Err() != nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("service: fetching shard instance: %w", err)
	}
	if err := json.Unmarshal(data, &inst); err != nil {
		return fmt.Errorf("service: malformed shard instance: %w", err)
	}
	if shard < 0 || shard >= inst.Shards {
		return c.reportError(fmt.Errorf("service: shard index %d out of range [0,%d)", shard, inst.Shards))
	}
	r := KsetRunner{}
	digest, err := r.Digest(inst.Spec)
	if err != nil {
		return c.reportError(fmt.Errorf("service: shard %d: %w", shard, err))
	}
	if digest != inst.Digest {
		return c.reportError(fmt.Errorf(
			"service: shard %d digest mismatch: coordinator %s, worker %s (version skew?)", shard, inst.Digest, digest))
	}
	p, err := r.prepare(inst.Spec)
	if err != nil {
		return c.reportError(fmt.Errorf("service: shard %d: %w", shard, err))
	}
	if err := p.search.ShardWorkerRun(ctx, p.request(nil), shard, inst.Shards, c); err != nil {
		return c.reportError(fmt.Errorf("service: shard %d: %w", shard, err))
	}
	return nil
}

// reportError forwards a worker-side failure to the coordinator's hub so
// every participant unblocks, then returns it for the worker's own exit.
func (c *shardClient) reportError(err error) error {
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	_, _, _ = c.do(http.MethodPost, "/v1/shard/error", body)
	return err
}

// ShardedRunner is a Runner that executes eligible GoalSearch jobs as
// multi-process sharded explorations and delegates everything else
// (impossibility jobs, checkpoint-opted jobs, Shards <= 1) to the embedded
// KsetRunner. Digest is inherited unchanged: the shard count is a
// deployment knob, not part of the verdict's content address, because
// verdicts are bit-identical at every shard count.
type ShardedRunner struct {
	KsetRunner
	// Shards is the worker-process count; <= 1 disables sharding.
	Shards int
	// WorkerArgs builds worker command lines (see ShardConfig.WorkerArgs).
	WorkerArgs func(coordURL string, shard int) []string
}

// Run implements Runner.
func (r ShardedRunner) Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error) {
	s := spec.withDefaults()
	if r.Shards > 1 && s.Goal == GoalSearch && !s.Checkpoint {
		return RunShardedSearch(ctx, ShardConfig{
			Spec:       spec,
			Shards:     r.Shards,
			WorkerArgs: r.WorkerArgs,
			OnProgress: progress,
		})
	}
	return r.KsetRunner.Run(ctx, spec, progress)
}
