package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Satellite regression: a corrupt or truncated disk-cache entry is a miss,
// not an error and never a wrong verdict — the bad bytes are quarantined
// aside (".corrupt") and the next Put overwrites the slot cleanly.
func TestDiskCacheQuarantinesCorruptEntry(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":   func([]byte) []byte { return []byte("not json at all") },
		"empty":     func([]byte) []byte { return nil },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff // breaks the leading '{'
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			const digest = "00000000deadbeef"
			want := &Verdict{Digest: digest, Goal: GoalImpossibility, Summary: "ok", Refuted: true, Visited: 42}
			if err := c.Put(digest, want); err != nil {
				t.Fatal(err)
			}
			entry := filepath.Join(dir, digest+".json")
			data, err := os.ReadFile(entry)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entry, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			v, ok, err := c.Get(digest)
			if err != nil {
				t.Fatalf("corrupt entry surfaced as an error: %v", err)
			}
			if ok || v != nil {
				t.Fatalf("corrupt entry surfaced as a hit: %+v", v)
			}
			if _, err := os.Stat(entry + ".corrupt"); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(entry); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still present at the live path")
			}
			// Quarantined files never count as entries.
			if n, _ := c.Len(); n != 0 {
				t.Fatalf("Len counts quarantined entries: %d", n)
			}
			// The slot heals: re-put, then a clean hit.
			if err := c.Put(digest, want); err != nil {
				t.Fatal(err)
			}
			v, ok, err = c.Get(digest)
			if err != nil || !ok || *v != *want {
				t.Fatalf("healed entry: %+v ok=%v err=%v", v, ok, err)
			}
		})
	}
}

// A missing entry is a plain miss, and invalid digests cannot escape the
// cache directory.
func TestDiskCacheMissAndBadDigest(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("0123456789abcdef"); ok || err != nil {
		t.Fatalf("absent entry: ok=%v err=%v", ok, err)
	}
	for _, bad := range []string{"", "../escape", "a/b", `a\b`, "x.json"} {
		if _, _, err := c.Get(bad); err == nil {
			t.Errorf("digest %q accepted", bad)
		}
		if err := c.Put(bad, &Verdict{}); err == nil {
			t.Errorf("digest %q accepted for put", bad)
		}
	}
	if !strings.Contains(func() string {
		_, _, err := c.Get("../x")
		return err.Error()
	}(), "invalid digest") {
		t.Error("bad digest error unclear")
	}
}

// Repeated corruption of the same slot must not overwrite the quarantined
// evidence of the previous incident: the first quarantine keeps the
// historical ".corrupt" name, subsequent ones take numbered suffixes.
func TestDiskCacheDoubleCorruptionKeepsBothSpecimens(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const digest = "00000000deadbeef"
	entry := filepath.Join(dir, digest+".json")
	corruptOnce := func(garbage string) {
		if err := c.Put(digest, &Verdict{Digest: digest, Summary: "ok"}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(entry, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.Get(digest); ok || err != nil {
			t.Fatalf("corrupt entry: ok=%v err=%v", ok, err)
		}
	}
	corruptOnce("first incident")
	corruptOnce("second incident")

	for name, want := range map[string]string{
		entry + ".corrupt":   "first incident",
		entry + ".corrupt.1": "second incident",
	} {
		got, err := os.ReadFile(name)
		if err != nil {
			t.Errorf("quarantine specimen missing: %v", err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s holds %q, want %q", name, got, want)
		}
	}
	if n, _ := c.Len(); n != 0 {
		t.Fatalf("Len counts quarantined specimens: %d", n)
	}
}
