package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Job lifecycle states.
const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued = "queued"
	// StateRunning: a worker is executing the search.
	StateRunning = "running"
	// StateDone: completed; the verdict is final and cached.
	StateDone = "done"
	// StateFailed: the runner returned an error; see the status Error.
	StateFailed = "failed"
	// StateCancelled: cancelled before completion. A cancelled job may
	// still carry a partial (truncated) verdict, which is never cached.
	StateCancelled = "cancelled"
)

// Retryable wraps err to mark it transient: the server re-runs the job (up
// to Config.Retries times, with exponential backoff) instead of failing it.
// Errors not wrapped this way are treated as permanent — a deterministic
// search that failed once will fail identically on every retry, so retrying
// by default would only burn worker time.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// IsRetryable reports whether err (or anything it wraps) was marked with
// Retryable.
func IsRetryable(err error) bool {
	var r *retryableError
	return errors.As(err, &r)
}

// job is one submitted verification job. Progress counters are atomics
// (written from the search goroutine, read by status polls); the remaining
// mutable fields are guarded by the server mutex.
type job struct {
	id        string
	digest    string
	spec      InstanceSpec
	recovered bool // re-enqueued from the journal at startup

	visited   atomic.Int64
	level     atomic.Int64
	ckptLevel atomic.Int64 // deepest level journalled as checkpointed

	// Guarded by Server.mu.
	state           string
	attempts        int // started attempts, across process restarts
	cancel          context.CancelFunc
	cancelRequested bool
	verdict         *Verdict
	errMsg          string
	degraded        string // durability degradation notice; sticky
}

// Config parameterizes New.
type Config struct {
	// Runner executes jobs; required.
	Runner Runner
	// Cache stores completed verdicts; required.
	Cache Cache
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64); a full
	// queue rejects submissions with 503.
	QueueDepth int
	// Journal, when non-nil, makes the server crash-safe: every job
	// transition is appended durably, and New replays the journal's
	// non-terminal jobs back into the queue so a kill -9 loses no accepted
	// work. The server owns the journal from here on (Close closes it).
	Journal *Journal
	// JobTimeout bounds each job's wall clock (0 = unlimited). A job past
	// its deadline is cancelled onto the search's cooperative pause path
	// and settles as failed; its partial verdict is kept for inspection
	// but never cached.
	JobTimeout time.Duration
	// Retries is how many times a job whose runner error is marked
	// Retryable is re-run before settling as failed (default 0: no
	// retries). Permanent errors never retry.
	Retries int
	// RetryDelay is the base backoff before retry attempt n, scaled by
	// 2^n and jittered ±50% (default 100ms). Tests shrink it.
	RetryDelay time.Duration
}

// Server is the verification job server: a bounded worker pool draining a
// submission queue, a job registry for status polling and cancellation, and
// a content-addressed verdict cache consulted before any work is queued.
// With a Journal configured it is also crash-safe: accepted jobs survive
// kill -9 and resume from their search checkpoints after restart.
// All methods are safe for concurrent use.
type Server struct {
	runner     Runner
	cache      Cache
	journal    *Journal
	jobTimeout time.Duration
	retries    int
	retryDelay time.Duration

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string        // submission order, for deterministic listing
	byDigest map[string]*job // queued/running jobs, for duplicate-submit dedup
	nextID   int

	queue   chan *job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	closing atomic.Bool

	ready      atomic.Bool // recovery re-enqueue finished
	recovering atomic.Int64

	hits   atomic.Int64
	misses atomic.Int64
}

// New builds the server and starts its worker pool. Call Close (or
// Shutdown) to stop it.
//
// When cfg.Journal is set, New first recovers: it folds the journal's
// replayed records into the job registry — terminal jobs come back with
// their final state and verdict, non-terminal jobs come back queued — and
// re-enqueues the non-terminal ones in submission order. The registry and
// dedup index are rebuilt synchronously before New returns, so a duplicate
// submitted while recovery is still enqueueing dedups onto the recovered
// job rather than racing it; the re-enqueueing itself runs in the
// background (recovered jobs may outnumber the queue depth) and /readyz
// reports 503 until it completes.
func New(cfg Config) *Server {
	if cfg.Runner == nil || cfg.Cache == nil {
		panic("service: Config.Runner and Config.Cache are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 100 * time.Millisecond
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		runner:     cfg.Runner,
		cache:      cfg.Cache,
		journal:    cfg.Journal,
		jobTimeout: cfg.JobTimeout,
		retries:    cfg.Retries,
		retryDelay: cfg.RetryDelay,
		jobs:       make(map[string]*job),
		byDigest:   make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
		baseCtx:    ctx,
		stop:       stop,
	}
	var pending []*job
	if s.journal != nil {
		pending = s.recover(recoverJobs(s.journal.Replayed()))
	}
	s.recovering.Store(int64(len(pending)))
	if len(pending) == 0 {
		s.ready.Store(true)
	} else {
		s.wg.Add(1)
		go s.reenqueue(pending)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// recover rebuilds the registry from folded journal records and returns the
// non-terminal jobs to re-enqueue, in submission order. Runs before the
// worker pool starts; no locking needed.
func (s *Server) recover(recovered []*recoveredJob) []*job {
	var pending []*job
	for _, r := range recovered {
		j := &job{
			id:        r.id,
			digest:    r.digest,
			spec:      r.spec,
			recovered: true,
			state:     r.state,
			attempts:  r.attempts,
			verdict:   r.verdict,
			errMsg:    r.errMsg,
		}
		j.visited.Store(r.visited)
		j.level.Store(r.level)
		j.ckptLevel.Store(r.level)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state == StateQueued {
			s.byDigest[j.digest] = j
			pending = append(pending, j)
		}
		var n int
		if _, err := fmt.Sscanf(j.id, "j%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	return pending
}

// reenqueue feeds recovered jobs into the queue through the same bounded
// admission path as live submissions: a non-blocking try-send retried on a
// short tick. Recovered jobs may outnumber the queue depth, so this runs
// off New's critical path and fills queue slots as the workers free them —
// but never parks in a blocking send, so a wedged pool cannot pin this
// goroutine beyond its next tick and /readyz can always report the real
// backlog (recovering count plus queue occupancy) while recovery drains.
// Submissions racing recovery dedup against byDigest, which recover
// already populated.
func (s *Server) reenqueue(pending []*job) {
	defer s.wg.Done()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for _, j := range pending {
	admit:
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case s.queue <- j:
				s.recovering.Add(-1)
				break admit
			default:
				select {
				case <-s.baseCtx.Done():
					return
				case <-tick.C:
				}
			}
		}
	}
	s.ready.Store(true)
}

// Shutdown stops the server gracefully: no new work starts, in-flight
// searches are cancelled onto their cooperative pause path, and Shutdown
// blocks until the workers drain or ctx expires (returning ctx.Err() in
// that case, with workers abandoned mid-cleanup). Jobs interrupted by
// shutdown are NOT journalled as cancelled — they stay non-terminal in the
// journal so the next start recovers and finishes them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			// In-memory only: the journal keeps these non-terminal.
			j.state = StateCancelled
			delete(s.byDigest, j.digest)
		}
	}
	s.mu.Unlock()
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// Close is Shutdown without a deadline: it blocks until the workers drain.
func (s *Server) Close() {
	_ = s.Shutdown(context.Background())
}

// journalAppend appends best-effort: failures after the submitted record
// are swallowed by design (see journal.go — a lost record only costs a
// re-run on the next restart, never a wrong verdict).
func (s *Server) journalAppend(rec JournalRecord) {
	if s.journal == nil {
		return
	}
	_ = s.journal.Append(rec)
}

// worker drains the queue until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job — retrying runner errors marked Retryable with
// exponentially backed-off, jittered delays — and settles its final state.
// Cancelled and deadline-failed jobs keep their partial verdict for
// inspection but never populate the cache: only completed searches are
// deterministic functions of the digest.
func (s *Server) runJob(j *job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.jobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.jobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	s.mu.Unlock()

	progress := func(u ProgressUpdate) {
		if u.Degraded != "" {
			// A durability degradation notice (checkpoint snapshots
			// failing): record it once on the job — it fires at most once
			// per search attempt, so the lock is off the hot path.
			s.mu.Lock()
			if j.degraded == "" {
				j.degraded = u.Degraded
			}
			s.mu.Unlock()
			return
		}
		j.visited.Store(int64(u.Visited))
		j.level.Store(int64(u.Level))
		// Each sealed level of a checkpoint-opted job has a resumable
		// snapshot on disk; record the progress durably so an operator can
		// see how far a crashed job had gotten.
		if lv := int64(u.Level); j.spec.Checkpoint && lv > j.ckptLevel.Load() {
			j.ckptLevel.Store(lv)
			s.journalAppend(JournalRecord{
				Job: j.id, Digest: j.digest, Event: EventCheckpointed,
				Visited: int64(u.Visited), Level: lv,
			})
		}
	}

	var v *Verdict
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts++
		seq := j.attempts - 1
		s.mu.Unlock()
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventStarted, Attempt: seq})

		v, err = s.runner.Run(ctx, j.spec, progress)
		if err == nil || ctx.Err() != nil || attempt >= s.retries || !IsRetryable(err) {
			break
		}
		// Exponential backoff with ±50% jitter, abandoned on cancellation.
		delay := s.retryDelay << uint(attempt)
		delay += time.Duration(rand.Int63n(int64(delay)+1)) - delay/2
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
		if ctx.Err() != nil {
			break
		}
	}
	timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
	cancelled := ctx.Err() != nil && !timedOut

	var cacheErr error
	if err == nil && ctx.Err() == nil && v != nil {
		cacheErr = s.cache.Put(j.digest, v)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byDigest, j.digest)
	j.cancel = nil
	switch {
	case timedOut:
		j.state = StateFailed
		j.verdict = v // partial, uncached
		j.errMsg = fmt.Sprintf("job exceeded deadline %v", s.jobTimeout)
		if err != nil {
			j.errMsg = fmt.Sprintf("%s: %v", j.errMsg, err)
		}
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventFailed, Error: j.errMsg})
	case cancelled && s.closing.Load() && !j.cancelRequested:
		// Shutdown, not a client cancel: settle in memory only. The journal
		// keeps the job non-terminal so the next start recovers it.
		j.state = StateCancelled
		if err != nil {
			j.errMsg = err.Error()
		} else {
			j.verdict = v
		}
	case cancelled:
		j.state = StateCancelled
		if err != nil {
			j.errMsg = err.Error()
		} else {
			j.verdict = v
		}
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventCancelled, Error: j.errMsg})
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventFailed, Error: j.errMsg})
	default:
		j.state = StateDone
		j.verdict = v
		if cacheErr != nil {
			j.errMsg = fmt.Sprintf("verdict complete but not cached: %v", cacheErr)
		}
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventDone, Verdict: v})
	}
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs             submit a job (InstanceSpec JSON body)
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        poll one job's status and progress
//	POST /v1/jobs/{id}/cancel request cooperative cancellation
//	GET  /v1/cache/stats      verdict-cache hit/miss/entry counters
//	GET  /healthz             liveness probe
//	GET  /readyz              readiness: 503 while startup recovery is
//	                          still re-enqueueing journalled jobs
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":    "recovering",
		"pending":   s.recovering.Load(),
		"queue_len": len(s.queue),
		"queue_cap": cap(s.queue),
	})
}

// SubmitResponse is the POST /v1/jobs reply: a cached verdict (Cached),
// an already-in-flight duplicate (Deduped, with the existing job), or a
// freshly queued job.
type SubmitResponse struct {
	Digest  string   `json:"digest"`
	Cached  bool     `json:"cached,omitempty"`
	Deduped bool     `json:"deduped,omitempty"`
	JobID   string   `json:"job_id,omitempty"`
	State   string   `json:"state,omitempty"`
	Verdict *Verdict `json:"verdict,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec InstanceSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed instance: %v", err))
		return
	}
	digest, err := s.runner.Digest(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if v, ok, err := s.cache.Get(digest); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	} else if ok {
		s.hits.Add(1)
		writeJSON(w, http.StatusOK, SubmitResponse{Digest: digest, Cached: true, Verdict: v})
		return
	}
	s.misses.Add(1)

	s.mu.Lock()
	if dup := s.byDigest[digest]; dup != nil {
		resp := SubmitResponse{Digest: digest, Deduped: true, JobID: dup.id, State: dup.state}
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	s.nextID++
	j := &job{id: fmt.Sprintf("j%d", s.nextID), digest: digest, spec: spec, state: StateQueued}
	j.level.Store(-1)
	j.ckptLevel.Store(-1)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byDigest[digest] = j
	s.mu.Unlock()

	// The submitted record is the one durability-critical write: a job the
	// journal does not know about would silently vanish on restart, so a
	// failed append rejects the submission outright.
	if s.journal != nil {
		err := s.journal.Append(JournalRecord{
			Job: j.id, Digest: digest, Event: EventSubmitted, Spec: &spec,
		})
		if err != nil {
			s.mu.Lock()
			delete(s.jobs, j.id)
			delete(s.byDigest, digest)
			s.order = s.order[:len(s.order)-1]
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("journal write failed: %v", err))
			return
		}
	}

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		j.state = StateFailed
		j.errMsg = "job queue full"
		delete(s.byDigest, digest)
		s.mu.Unlock()
		s.journalAppend(JournalRecord{Job: j.id, Digest: digest, Event: EventFailed, Error: "job queue full"})
		writeError(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{Digest: digest, JobID: j.id, State: StateQueued})
}

// Progress is a job's live search progress: the cumulative visited count
// and the most recently sealed BFS level (-1 before the first report and
// for depth-unaware engines).
type Progress struct {
	Visited int64 `json:"visited"`
	Level   int64 `json:"level"`
}

// JobStatus is the GET /v1/jobs/{id} reply.
type JobStatus struct {
	ID              string       `json:"id"`
	Digest          string       `json:"digest"`
	State           string       `json:"state"`
	CancelRequested bool         `json:"cancel_requested,omitempty"`
	Recovered       bool         `json:"recovered,omitempty"`
	Attempts        int          `json:"attempts,omitempty"`
	Spec            InstanceSpec `json:"spec"`
	Progress        Progress     `json:"progress"`
	Verdict         *Verdict     `json:"verdict,omitempty"`
	Error           string       `json:"error,omitempty"`
	// Degraded, when non-empty, reports that the job's crash durability
	// degraded mid-run (checkpoint snapshots failing): the verdict is
	// unaffected, but a crash now costs re-exploration from the last
	// snapshot that succeeded.
	Degraded string `json:"degraded,omitempty"`
}

// status snapshots a job; callers must hold s.mu.
func (s *Server) status(j *job) JobStatus {
	return JobStatus{
		ID:              j.id,
		Digest:          j.digest,
		State:           j.state,
		CancelRequested: j.cancelRequested,
		Recovered:       j.recovered,
		Attempts:        j.attempts,
		Spec:            j.spec,
		Progress:        Progress{Visited: j.visited.Load(), Level: j.level.Load()},
		Verdict:         j.verdict,
		Error:           j.errMsg,
		Degraded:        j.degraded,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.status(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = s.status(j)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	var cancel context.CancelFunc
	var journalCancel bool
	switch j.state {
	case StateQueued:
		// Never started: settle immediately; the worker will skip it.
		j.state = StateCancelled
		j.cancelRequested = true
		delete(s.byDigest, j.digest)
		journalCancel = true
	case StateRunning:
		j.cancelRequested = true
		cancel = j.cancel
	}
	st := s.status(j)
	s.mu.Unlock()
	if journalCancel {
		s.journalAppend(JournalRecord{Job: j.id, Digest: j.digest, Event: EventCancelled})
	}
	if cancel != nil {
		// Cooperative: the search notices at its next poll point and the
		// worker settles the job to cancelled; poll the status to observe.
		cancel()
	}
	writeJSON(w, http.StatusOK, st)
}

// CacheStats is the GET /v1/cache/stats reply.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	n, err := s.cache.Len()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Entries: n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
