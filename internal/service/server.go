package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// Job lifecycle states.
const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued = "queued"
	// StateRunning: a worker is executing the search.
	StateRunning = "running"
	// StateDone: completed; the verdict is final and cached.
	StateDone = "done"
	// StateFailed: the runner returned an error; see the status Error.
	StateFailed = "failed"
	// StateCancelled: cancelled before completion. A cancelled job may
	// still carry a partial (truncated) verdict, which is never cached.
	StateCancelled = "cancelled"
)

// job is one submitted verification job. Progress counters are atomics
// (written from the search goroutine, read by status polls); the remaining
// mutable fields are guarded by the server mutex.
type job struct {
	id     string
	digest string
	spec   InstanceSpec

	visited atomic.Int64
	level   atomic.Int64

	// Guarded by Server.mu.
	state           string
	cancel          context.CancelFunc
	cancelRequested bool
	verdict         *Verdict
	errMsg          string
}

// Config parameterizes New.
type Config struct {
	// Runner executes jobs; required.
	Runner Runner
	// Cache stores completed verdicts; required.
	Cache Cache
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64); a full
	// queue rejects submissions with 503.
	QueueDepth int
}

// Server is the verification job server: a bounded worker pool draining a
// submission queue, a job registry for status polling and cancellation, and
// a content-addressed verdict cache consulted before any work is queued.
// All methods are safe for concurrent use.
type Server struct {
	runner Runner
	cache  Cache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string        // submission order, for deterministic listing
	byDigest map[string]*job // queued/running jobs, for duplicate-submit dedup
	nextID   int

	queue   chan *job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	hits   atomic.Int64
	misses atomic.Int64
}

// New builds the server and starts its worker pool. Call Close to stop it.
func New(cfg Config) *Server {
	if cfg.Runner == nil || cfg.Cache == nil {
		panic("service: Config.Runner and Config.Cache are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		runner:   cfg.Runner,
		cache:    cfg.Cache,
		jobs:     make(map[string]*job),
		byDigest: make(map[string]*job),
		queue:    make(chan *job, cfg.QueueDepth),
		baseCtx:  ctx,
		stop:     stop,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close cancels every in-flight job and stops the worker pool, blocking
// until the workers have drained. Jobs still queued are marked cancelled.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			j.state = StateCancelled
			delete(s.byDigest, j.digest)
		}
	}
}

// worker drains the queue until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job and settles its final state. Cancelled jobs keep
// their partial verdict for inspection but never populate the cache: only
// completed searches are deterministic functions of the digest.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	s.mu.Unlock()

	v, err := s.runner.Run(ctx, j.spec, func(visited, level int) {
		j.visited.Store(int64(visited))
		j.level.Store(int64(level))
	})
	cancelled := ctx.Err() != nil

	var cacheErr error
	if err == nil && !cancelled && v != nil {
		cacheErr = s.cache.Put(j.digest, v)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byDigest, j.digest)
	j.cancel = nil
	switch {
	case err != nil && cancelled:
		j.state = StateCancelled
		j.errMsg = err.Error()
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	case cancelled:
		j.state = StateCancelled
		j.verdict = v
	default:
		j.state = StateDone
		j.verdict = v
		if cacheErr != nil {
			j.errMsg = fmt.Sprintf("verdict complete but not cached: %v", cacheErr)
		}
	}
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs             submit a job (InstanceSpec JSON body)
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        poll one job's status and progress
//	POST /v1/jobs/{id}/cancel request cooperative cancellation
//	GET  /v1/cache/stats      verdict-cache hit/miss/entry counters
//	GET  /healthz             liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// SubmitResponse is the POST /v1/jobs reply: a cached verdict (Cached),
// an already-in-flight duplicate (Deduped, with the existing job), or a
// freshly queued job.
type SubmitResponse struct {
	Digest  string   `json:"digest"`
	Cached  bool     `json:"cached,omitempty"`
	Deduped bool     `json:"deduped,omitempty"`
	JobID   string   `json:"job_id,omitempty"`
	State   string   `json:"state,omitempty"`
	Verdict *Verdict `json:"verdict,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec InstanceSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed instance: %v", err))
		return
	}
	digest, err := s.runner.Digest(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if v, ok, err := s.cache.Get(digest); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	} else if ok {
		s.hits.Add(1)
		writeJSON(w, http.StatusOK, SubmitResponse{Digest: digest, Cached: true, Verdict: v})
		return
	}
	s.misses.Add(1)

	s.mu.Lock()
	if dup := s.byDigest[digest]; dup != nil {
		resp := SubmitResponse{Digest: digest, Deduped: true, JobID: dup.id, State: dup.state}
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	s.nextID++
	j := &job{id: fmt.Sprintf("j%d", s.nextID), digest: digest, spec: spec, state: StateQueued}
	j.level.Store(-1)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byDigest[digest] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		j.state = StateFailed
		j.errMsg = "job queue full"
		delete(s.byDigest, digest)
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{Digest: digest, JobID: j.id, State: StateQueued})
}

// Progress is a job's live search progress: the cumulative visited count
// and the most recently sealed BFS level (-1 before the first report and
// for depth-unaware engines).
type Progress struct {
	Visited int64 `json:"visited"`
	Level   int64 `json:"level"`
}

// JobStatus is the GET /v1/jobs/{id} reply.
type JobStatus struct {
	ID              string       `json:"id"`
	Digest          string       `json:"digest"`
	State           string       `json:"state"`
	CancelRequested bool         `json:"cancel_requested,omitempty"`
	Spec            InstanceSpec `json:"spec"`
	Progress        Progress     `json:"progress"`
	Verdict         *Verdict     `json:"verdict,omitempty"`
	Error           string       `json:"error,omitempty"`
}

// status snapshots a job; callers must hold s.mu.
func (s *Server) status(j *job) JobStatus {
	return JobStatus{
		ID:              j.id,
		Digest:          j.digest,
		State:           j.state,
		CancelRequested: j.cancelRequested,
		Spec:            j.spec,
		Progress:        Progress{Visited: j.visited.Load(), Level: j.level.Load()},
		Verdict:         j.verdict,
		Error:           j.errMsg,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.status(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = s.status(j)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	var cancel context.CancelFunc
	switch j.state {
	case StateQueued:
		// Never started: settle immediately; the worker will skip it.
		j.state = StateCancelled
		j.cancelRequested = true
		delete(s.byDigest, j.digest)
	case StateRunning:
		j.cancelRequested = true
		cancel = j.cancel
	}
	st := s.status(j)
	s.mu.Unlock()
	if cancel != nil {
		// Cooperative: the search notices at its next poll point and the
		// worker settles the job to cancelled; poll the status to observe.
		cancel()
	}
	writeJSON(w, http.StatusOK, st)
}

// CacheStats is the GET /v1/cache/stats reply.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	n, err := s.cache.Len()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Entries: n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
