package service

import (
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kset/internal/explore"
)

// shardSearchSpec is the fast search instance the exchange tests shard: a
// MinWait system with a disagreement witness a few BFS levels deep, on the
// frontier store so per-level progress is emitted.
func shardSearchSpec() InstanceSpec {
	return InstanceSpec{Alg: "minwait", N: 3, F: 1, Goal: GoalSearch, Store: "frontier"}
}

// The HTTP exchange path end to end, in-process: a shardHub served over
// httptest, worker goroutines running the real ShardWorkerMain bootstrap
// (instance fetch, digest verification, shardClient polling), and the
// coordinator half on the test goroutine. The verdict and the per-level
// progress must be bit-identical to KsetRunner.Run on the same spec.
// Run under -race in CI: it is the data-race gate for the exchange path.
func TestShardedHTTPSearchMatchesSingleProcess(t *testing.T) {
	spec := shardSearchSpec()
	r := KsetRunner{}
	var wantProg []ProgressUpdate
	want, err := r.Run(context.Background(), spec, func(u ProgressUpdate) { wantProg = append(wantProg, u) })
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(strconv.Itoa(shards), func(t *testing.T) {
			digest, err := r.Digest(spec)
			if err != nil {
				t.Fatal(err)
			}
			hub := explore.NewLocalShardHub(shards)
			srv := httptest.NewServer((&shardHub{
				hub:  hub,
				inst: shardInstance{Spec: spec.withDefaults(), Shards: shards, Digest: digest},
			}).handler())
			defer srv.Close()

			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				wg.Add(1)
				go func(shard int) {
					defer wg.Done()
					if err := ShardWorkerMain(context.Background(), srv.URL, shard); err != nil {
						t.Errorf("shard %d: %v", shard, err)
					}
				}(i)
			}

			p, err := r.prepare(spec)
			if err != nil {
				t.Fatal(err)
			}
			var gotProg []ProgressUpdate
			onProgress, _ := progressFuncs(func(u ProgressUpdate) { gotProg = append(gotProg, u) })
			w, found, err := p.search.ShardCoordinate(context.Background(), p.request(onProgress), hub)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			got := searchVerdict(digest, w, found)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("verdict diverged:\n got: %+v\nwant: %+v", got, want)
			}
			if !reflect.DeepEqual(gotProg, wantProg) {
				t.Errorf("progress diverged:\n got: %+v\nwant: %+v", gotProg, wantProg)
			}
		})
	}
}

// A worker whose recomputed digest disagrees with the coordinator's refuses
// to participate and poisons the hub, so the coordinator fails promptly
// instead of waiting on a shard that will never exchange.
func TestShardWorkerDigestMismatch(t *testing.T) {
	spec := shardSearchSpec()
	hub := explore.NewLocalShardHub(1)
	srv := httptest.NewServer((&shardHub{
		hub:  hub,
		inst: shardInstance{Spec: spec.withDefaults(), Shards: 1, Digest: "badc0ffeebadc0ff"},
	}).handler())
	defer srv.Close()

	err := ShardWorkerMain(context.Background(), srv.URL, 0)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("want digest-mismatch error, got %v", err)
	}
	// The refusal was reported: the hub is poisoned for every participant.
	if _, _, err := hub.TryPhase(1); err == nil {
		t.Fatal("hub not poisoned after worker digest refusal")
	}
}

// A worker with an out-of-range shard index likewise refuses and reports.
func TestShardWorkerIndexOutOfRange(t *testing.T) {
	spec := shardSearchSpec()
	r := KsetRunner{}
	digest, err := r.Digest(spec)
	if err != nil {
		t.Fatal(err)
	}
	hub := explore.NewLocalShardHub(2)
	srv := httptest.NewServer((&shardHub{
		hub:  hub,
		inst: shardInstance{Spec: spec.withDefaults(), Shards: 2, Digest: digest},
	}).handler())
	defer srv.Close()

	if err := ShardWorkerMain(context.Background(), srv.URL, 7); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
	if _, _, err := hub.TryPhase(1); err == nil {
		t.Fatal("hub not poisoned after worker index refusal")
	}
}

// RunShardedSearch rejects jobs the sharded engine cannot execute before
// spawning anything.
func TestRunShardedSearchValidation(t *testing.T) {
	workers := func(string, int) []string { return []string{"true"} }
	for name, cfg := range map[string]ShardConfig{
		"impossibility goal": {
			Spec:       InstanceSpec{Alg: "minwait", N: 3, F: 1, K: 1, Goal: GoalImpossibility},
			Shards:     2,
			WorkerArgs: workers,
		},
		"checkpoint opt-in": {
			Spec:       InstanceSpec{Alg: "minwait", N: 3, F: 1, Goal: GoalSearch, Checkpoint: true},
			Shards:     2,
			WorkerArgs: workers,
		},
		"zero shards": {
			Spec:       shardSearchSpec(),
			Shards:     0,
			WorkerArgs: workers,
		},
		"nil worker args": {
			Spec:   shardSearchSpec(),
			Shards: 2,
		},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := RunShardedSearch(context.Background(), cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// ShardedRunner delegates ineligible jobs — impossibility goal, checkpoint
// opt-in, Shards <= 1 — to the embedded KsetRunner, and its Digest is the
// KsetRunner digest unchanged (the shard count is a deployment knob, not
// part of the verdict's content address).
func TestShardedRunnerDelegates(t *testing.T) {
	// WorkerArgs that would fail any sharded attempt: delegation is proven
	// by the jobs succeeding anyway.
	sr := ShardedRunner{Shards: 2, WorkerArgs: nil}
	for name, spec := range map[string]InstanceSpec{
		"impossibility": {Alg: "minwait", N: 3, F: 1, K: 1, Goal: GoalImpossibility, MaxConfigs: 2000},
	} {
		t.Run(name, func(t *testing.T) {
			want, err := KsetRunner{}.Run(context.Background(), spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sr.Run(context.Background(), spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("delegated verdict diverged:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
	t.Run("shards=1", func(t *testing.T) {
		spec := shardSearchSpec()
		one := ShardedRunner{Shards: 1, WorkerArgs: nil}
		want, err := KsetRunner{}.Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := one.Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Shards=1 verdict diverged:\n got: %+v\nwant: %+v", got, want)
		}
	})
	t.Run("digest unchanged", func(t *testing.T) {
		spec := shardSearchSpec()
		want, err := KsetRunner{}.Digest(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sr.Digest(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ShardedRunner digest %s != KsetRunner digest %s", got, want)
		}
	})
}

// The real thing: worker processes. RunShardedSearch re-execing the test
// binary's cmd/experiments build at several shard counts must produce
// byte-identical verdicts to the single-process runner. Skipped in -short
// (it builds a binary and forks workers).
func TestShardedProcessSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, "kset/cmd/experiments")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building cmd/experiments: %v", err)
	}

	spec := shardSearchSpec()
	want, err := KsetRunner{}.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		t.Run(strconv.Itoa(shards), func(t *testing.T) {
			got, err := RunShardedSearch(context.Background(), ShardConfig{
				Spec:   spec,
				Shards: shards,
				WorkerArgs: func(coordURL string, shard int) []string {
					return []string{bin, "-shard-worker", coordURL, "-shard-index", strconv.Itoa(shard)}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("multi-process verdict diverged:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// A worker whose process dies mid-protocol poisons the hub instead of
// leaving the coordinator parked in a gather forever.
func TestShardedProcessWorkerCrashFailsSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("process test skipped in -short mode")
	}
	_, err := RunShardedSearch(context.Background(), ShardConfig{
		Spec:   shardSearchSpec(),
		Shards: 2,
		WorkerArgs: func(coordURL string, shard int) []string {
			// "Workers" that exit immediately with failure, never joining
			// the exchange.
			return []string{"false"}
		},
	})
	if err == nil {
		t.Fatal("search succeeded despite both workers dying")
	}
}
