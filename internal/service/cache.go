package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache stores completed verdicts content-addressed by instance digest.
// Implementations must be safe for concurrent use. Only final verdicts are
// stored: the server never caches a cancelled job's partial verdict, so a
// Get hit is always the deterministic result of a completed search.
type Cache interface {
	// Get returns the cached verdict for digest, reporting whether one
	// exists. An I/O error is an error, not a miss; a corrupt entry is a
	// miss, not an error — implementations quarantine it aside and let the
	// search re-run, because corruption must cost re-exploration, never a
	// wrong verdict or a dead server.
	Get(digest string) (*Verdict, bool, error)
	// Put stores the verdict under digest, overwriting any previous entry
	// (entries are content-addressed, so an overwrite rewrites equal bytes).
	Put(digest string, v *Verdict) error
	// Len reports the number of cached verdicts.
	Len() (int, error)
}

// MemoryCache is the in-process Cache: a mutex-guarded map. The zero value
// is ready to use.
type MemoryCache struct {
	mu sync.Mutex
	m  map[string]*Verdict
}

// NewMemoryCache returns an empty in-memory cache.
func NewMemoryCache() *MemoryCache { return &MemoryCache{} }

// Get implements Cache.
func (c *MemoryCache) Get(digest string) (*Verdict, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[digest]
	if !ok {
		return nil, false, nil
	}
	cp := *v
	return &cp, true, nil
}

// Put implements Cache.
func (c *MemoryCache) Put(digest string, v *Verdict) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*Verdict)
	}
	cp := *v
	c.m[digest] = &cp
	return nil
}

// Len implements Cache.
func (c *MemoryCache) Len() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m), nil
}

// DiskCache persists verdicts as one JSON file per digest in a directory,
// written atomically (temp file + rename) so a crashed write never leaves a
// corrupt entry. Entries survive server restarts — the on-disk twin of the
// digest-keyed checkpoint files, but for finished searches.
type DiskCache struct {
	dir string
	mu  sync.Mutex
}

// NewDiskCache creates (if needed) and wraps the cache directory.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// path maps a digest to its entry file, rejecting anything that is not a
// plain hex digest so a malicious digest cannot escape the directory.
func (c *DiskCache) path(digest string) (string, error) {
	if digest == "" || strings.ContainsAny(digest, "/\\.") {
		return "", fmt.Errorf("service: invalid digest %q", digest)
	}
	return filepath.Join(c.dir, digest+".json"), nil
}

// Get implements Cache.
func (c *DiskCache) Get(digest string) (*Verdict, bool, error) {
	p, err := c.path(digest)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("service: cache read: %w", err)
	}
	var v Verdict
	if err := json.Unmarshal(data, &v); err != nil {
		// Corrupt or truncated entry (e.g. bit rot, manual tampering — a
		// crashed Put cannot leave one thanks to temp+rename): quarantine it
		// aside and report a miss. The search re-runs and overwrites the
		// entry; the quarantined bytes stay for inspection.
		quarantineAside(p)
		return nil, false, nil
	}
	return &v, true, nil
}

// Put implements Cache.
func (c *DiskCache) Put(digest string, v *Verdict) error {
	p, err := c.path(digest)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("service: cache encode: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp, err := os.CreateTemp(c.dir, ".cache-*")
	if err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache write: %w", err)
	}
	return nil
}

// Len implements Cache.
func (c *DiskCache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("service: cache dir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
