package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// mockRunner drives the handler tests without real searches. Digest keys on
// (N, K) so tests steer dedup and cache behaviour by varying those; Run can
// block on a channel to hold a job in the running state, and honours ctx
// cancellation by returning a partial truncated verdict (the Runner
// contract).
type mockRunner struct {
	block   chan struct{} // non-nil: Run waits for close or cancellation
	started chan string   // non-nil: receives the digest when a Run begins
	fail    bool          // Run returns an error
}

func (m *mockRunner) Digest(spec InstanceSpec) (string, error) {
	if spec.Alg == "" {
		return "", errors.New("service: spec missing alg")
	}
	return fmt.Sprintf("%016x", uint64(spec.N)<<16|uint64(spec.K)), nil
}

func (m *mockRunner) Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error) {
	d, _ := m.Digest(spec)
	if m.started != nil {
		m.started <- d
	}
	if progress != nil {
		progress(ProgressUpdate{Visited: 500, Level: 3})
	}
	if m.block != nil {
		select {
		case <-m.block:
		case <-ctx.Done():
			return &Verdict{Digest: d, Goal: GoalImpossibility, Summary: "cancelled", Visited: 500, Truncated: true}, nil
		}
	}
	if m.fail {
		return nil, errors.New("mock runner failure")
	}
	return &Verdict{Digest: d, Goal: GoalImpossibility, Summary: "ok", Refuted: true, Visited: 1000}, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, SubmitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// waitState polls the status endpoint until the job reaches want.
func waitState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

func cacheStats(t *testing.T, ts *httptest.Server) CacheStats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestSubmitMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: NewMemoryCache()})
	for name, body := range map[string]string{
		"invalid-json":  `{"alg": "minwait",`,
		"unknown-field": `{"alg": "minwait", "n": 4, "k": 2, "bogus": true}`,
		"bad-spec":      `{"n": 4, "k": 2}`, // mock rejects a missing alg
	} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	// Malformed submissions must not create jobs.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("malformed submissions created %d jobs", len(list.Jobs))
	}
}

func TestSubmitRunPollAndCacheHit(t *testing.T) {
	cache := NewMemoryCache()
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: cache})
	body := `{"alg": "minwait", "n": 4, "f": 3, "k": 2}`

	code, sub := postJob(t, ts, body)
	if code != http.StatusAccepted || sub.JobID == "" || sub.Cached {
		t.Fatalf("first submit: HTTP %d %+v", code, sub)
	}
	st := waitState(t, ts, sub.JobID, StateDone)
	if st.Verdict == nil || !st.Verdict.Refuted || st.Verdict.Digest != sub.Digest {
		t.Fatalf("done status verdict: %+v", st.Verdict)
	}
	if st.Progress.Visited != 500 || st.Progress.Level != 3 {
		t.Fatalf("progress not surfaced: %+v", st.Progress)
	}

	code, sub2 := postJob(t, ts, body)
	if code != http.StatusOK || !sub2.Cached || sub2.Verdict == nil {
		t.Fatalf("second submit: HTTP %d %+v", code, sub2)
	}
	if *sub2.Verdict != *st.Verdict {
		t.Fatalf("cached verdict differs: %+v vs %+v", sub2.Verdict, st.Verdict)
	}
	cs := cacheStats(t, ts)
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats: %+v", cs)
	}
}

func TestDuplicateSubmitDedup(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{Runner: &mockRunner{block: block}, Cache: NewMemoryCache()})
	body := `{"alg": "minwait", "n": 5, "k": 2}`

	code, first := postJob(t, ts, body)
	if code != http.StatusAccepted || first.Deduped {
		t.Fatalf("first submit: HTTP %d %+v", code, first)
	}
	code, second := postJob(t, ts, body)
	if code != http.StatusAccepted || !second.Deduped || second.JobID != first.JobID {
		t.Fatalf("duplicate submit: HTTP %d %+v (want dedup onto %s)", code, second, first.JobID)
	}
	// A different instance is not a duplicate.
	code, other := postJob(t, ts, `{"alg": "minwait", "n": 6, "k": 2}`)
	if code != http.StatusAccepted || other.Deduped || other.JobID == first.JobID {
		t.Fatalf("distinct submit: HTTP %d %+v", code, other)
	}
	close(block)
	waitState(t, ts, first.JobID, StateDone)
	// Once the verdict is cached, a resubmission is a hit, not a dedup.
	code, third := postJob(t, ts, body)
	if code != http.StatusOK || !third.Cached {
		t.Fatalf("post-completion submit: HTTP %d %+v", code, third)
	}
}

func TestCancelRunningJobNotCached(t *testing.T) {
	cache := NewMemoryCache()
	started := make(chan string, 1)
	_, ts := newTestServer(t, Config{
		Runner: &mockRunner{block: make(chan struct{}), started: started},
		Cache:  cache,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started

	resp, err := http.Post(ts.URL+"/v1/jobs/"+sub.JobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.CancelRequested {
		t.Fatalf("cancel reply: %+v", st)
	}

	st = waitState(t, ts, sub.JobID, StateCancelled)
	if st.Verdict == nil || !st.Verdict.Truncated {
		t.Fatalf("cancelled job's partial verdict: %+v", st.Verdict)
	}
	if n, _ := cache.Len(); n != 0 {
		t.Fatalf("cancelled job's verdict was cached (%d entries)", n)
	}
	// The settled digest is free again: a resubmission starts a fresh job
	// rather than deduping onto the cancelled one.
	code, sub2 := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted || sub2.Deduped || sub2.JobID == sub.JobID {
		t.Fatalf("resubmit after cancel: HTTP %d %+v", code, sub2)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Runner:  &mockRunner{block: block, started: started},
		Cache:   NewMemoryCache(),
		Workers: 1,
	})
	// Occupy the single worker, then queue a second job and cancel it.
	code, running := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	<-started
	code, queued := postJob(t, ts, `{"alg": "minwait", "n": 5, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+queued.JobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("queued job after cancel: state %q, want %q", st.State, StateCancelled)
	}
	close(block)
	waitState(t, ts, running.JobID, StateDone)
	// The cancelled queued job must stay cancelled (the worker skips it).
	if _, st := getStatus(t, ts, queued.JobID); st.State != StateCancelled {
		t.Fatalf("queued job resurrected: state %q", st.State)
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: NewMemoryCache()})
	if code, _ := getStatus(t, ts, "j999"); code != http.StatusNotFound {
		t.Fatalf("status of unknown job: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/j999/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: HTTP %d", resp.StatusCode)
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan string, 1)
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{
		Runner:     &mockRunner{block: block, started: started},
		Cache:      NewMemoryCache(),
		Workers:    1,
		QueueDepth: 1,
	})
	if code, _ := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`); code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	<-started // worker holds job 1; the queue is empty again
	if code, _ := postJob(t, ts, `{"alg": "minwait", "n": 5, "k": 2}`); code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	code, _ := postJob(t, ts, `{"alg": "minwait", "n": 6, "k": 2}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit 3 with a full queue: HTTP %d, want 503", code)
	}
}

func TestRunnerFailure(t *testing.T) {
	cache := NewMemoryCache()
	_, ts := newTestServer(t, Config{Runner: &mockRunner{fail: true}, Cache: cache})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateFailed)
	if st.Error == "" {
		t.Fatal("failed job carries no error")
	}
	if n, _ := cache.Len(); n != 0 {
		t.Fatalf("failed job's verdict was cached (%d entries)", n)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: NewMemoryCache()})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}
