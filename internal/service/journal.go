package service

// This file implements the durable job journal behind crash-safe ksetd: an
// append-only JSONL log of job transitions (submitted, started,
// checkpointed, done, failed, cancelled) that the server replays on startup
// to rebuild its registry and re-enqueue every job that had not reached a
// terminal state — so a kill -9 or redeploy loses no accepted work, and a
// job that was mid-search resumes from its level checkpoint (see
// explore's Options.Checkpoint) instead of starting over.
//
// Durability discipline, in the same spirit as DiskCache's atomic
// temp+rename writes:
//
//   - Appends are single write(2) calls of one newline-terminated JSON
//     record to an O_APPEND descriptor, fsync'd before Append returns, so a
//     record either exists completely or not at all — except for the one
//     torn tail a crash mid-write can leave, which replay tolerates.
//   - Replay drops a final line that fails to parse (the torn tail) and
//     quarantines the whole file aside (".corrupt" rename) when a line
//     *before* the end fails — that is real corruption, not a crash
//     artifact — salvaging every record up to the first bad line.
//   - Whenever replay had to drop anything, the journal is rewritten from
//     the salvaged records via temp file + rename, so the on-disk file is
//     always a clean prefix-complete log.
//
// Journal write failures after the submitted record are deliberately
// non-fatal to the job (see Server.runJob): a lost "done" record only means
// the job is re-run on the next restart, where it hits the verdict cache or
// its checkpoint — re-execution is always safe, a wrong verdict never
// possible. Only the submitted record is durability-critical: if it cannot
// be written, the submission is rejected, because accepting a job the
// journal does not know about would break the crash-safety contract.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"kset/internal/quarantine"
)

// Journal events, in job-lifecycle order.
const (
	// EventSubmitted opens a job: the record carries the full InstanceSpec.
	EventSubmitted = "submitted"
	// EventStarted marks a run attempt (Attempt counts from 0; retries of
	// retryable runner failures append further started records).
	EventStarted = "started"
	// EventCheckpointed marks search progress of a checkpoint-opted job: a
	// sealed BFS level whose paused state is on disk (Visited/Level).
	EventCheckpointed = "checkpointed"
	// EventDone closes a job with its verdict.
	EventDone = "done"
	// EventFailed closes a job with its error.
	EventFailed = "failed"
	// EventCancelled closes a job cancelled by a client. Jobs interrupted by
	// a shutdown are deliberately NOT journalled as cancelled: they stay
	// non-terminal so the next start recovers them.
	EventCancelled = "cancelled"
)

// JournalRecord is one line of the journal: a job transition.
type JournalRecord struct {
	// Seq is the record's 1-based sequence number within the journal file;
	// assigned by Append, renumbered on compaction.
	Seq int64 `json:"seq"`
	// Job and Digest identify the job this record belongs to.
	Job    string `json:"job"`
	Digest string `json:"digest,omitempty"`
	// Event is one of the Event* constants.
	Event string `json:"event"`
	// Spec accompanies EventSubmitted: everything needed to re-run the job.
	Spec *InstanceSpec `json:"spec,omitempty"`
	// Attempt accompanies EventStarted (0 for the first run attempt).
	Attempt int `json:"attempt,omitempty"`
	// Visited and Level accompany EventCheckpointed.
	Visited int64 `json:"visited,omitempty"`
	Level   int64 `json:"level,omitempty"`
	// Error accompanies EventFailed (and EventCancelled when the runner
	// reported one).
	Error string `json:"error,omitempty"`
	// Verdict accompanies EventDone.
	Verdict *Verdict `json:"verdict,omitempty"`
}

// Journal is the durable job journal. All methods are safe for concurrent
// use. Open with OpenJournal; the server appends through it and reads the
// replayed records once at construction.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	seq      int64
	replayed []JournalRecord
}

// OpenJournal opens (creating if absent) the journal at path, replaying any
// existing records: a torn final line — the expected artifact of a crash
// mid-append — is dropped; corruption before the end quarantines the file
// aside (path + ".corrupt") and salvages the records up to the first bad
// line. In either case the journal is compacted back to disk atomically
// (temp + rename) so it is clean for appending. The replayed records are
// available via Replayed until the first Append.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: journal dir: %w", err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: journal read: %w", err)
	}
	records, dirty := parseJournal(raw)
	if dirty {
		if tornOnly(raw, records) {
			// A torn tail is a normal crash artifact; rewrite silently.
		} else {
			// Mid-file corruption: keep the evidence, never crash.
			quarantineAside(path)
		}
		if err := rewriteJournal(path, records); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal open: %w", err)
	}
	return &Journal{f: f, path: path, seq: int64(len(records)), replayed: records}, nil
}

// parseJournal decodes raw line by line, stopping at the first bad line.
// dirty reports that some bytes were dropped (torn tail or corruption).
func parseJournal(raw []byte) (records []JournalRecord, dirty bool) {
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		var line []byte
		if nl < 0 {
			// No trailing newline: an append was cut mid-write.
			line, off, dirty = raw[off:], len(raw), true
		} else {
			line = raw[off : off+nl]
			off += nl + 1
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Event == "" {
			return records, true
		}
		records = append(records, rec)
	}
	return records, dirty
}

// tornOnly reports whether the only dropped bytes of a dirty parse are a
// single unterminated or unparsable final line — the benign crash artifact —
// as opposed to corruption with intact records after it.
func tornOnly(raw []byte, salvaged []JournalRecord) bool {
	// Count the newline-terminated lines plus a trailing fragment; if the
	// salvaged records cover all but the last line, only the tail was lost.
	lines := bytes.Count(raw, []byte{'\n'})
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		lines++
	}
	return len(salvaged) >= lines-1
}

// rewriteJournal writes records as a fresh journal file atomically.
func rewriteJournal(path string, records []JournalRecord) error {
	var buf bytes.Buffer
	for i := range records {
		records[i].Seq = int64(i + 1)
		line, err := json.Marshal(&records[i])
		if err != nil {
			return fmt.Errorf("service: journal compact: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	return nil
}

// quarantineAside renames a corrupt file to path + ".corrupt" — or a
// numbered suffix when that name already holds an earlier incident's
// evidence — keeping it for inspection while guaranteeing it is never read
// as live data again. Rename failures are ignored: quarantine is
// best-effort evidence preservation, and the caller rewrites the live path
// regardless.
func quarantineAside(path string) {
	quarantine.Aside(path)
}

// Replayed returns the records replayed at open, in order.
func (j *Journal) Replayed() []JournalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Append assigns the next sequence number and durably appends rec: one
// newline-terminated JSON line written in a single call and fsync'd, so a
// crash leaves at most one torn tail for the next open to drop.
func (j *Journal) Append(rec JournalRecord) error {
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq = j.seq
	// Re-marshal with the sequence number stamped (the first marshal only
	// validated encodability before taking the lock).
	line, err = json.Marshal(&rec)
	if err != nil {
		j.seq--
		return fmt.Errorf("service: journal append: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.seq--
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// recoveredJob is the folded per-job outcome of a journal replay.
type recoveredJob struct {
	id       string
	digest   string
	spec     InstanceSpec
	state    string // StateQueued for non-terminal jobs; the terminal state otherwise
	attempts int    // started records seen
	visited  int64  // last checkpointed progress
	level    int64
	errMsg   string
	verdict  *Verdict
}

// recoverJobs folds journal records into per-job outcomes, in first-
// submission order. Jobs without a terminal record come back StateQueued —
// the server re-enqueues them; a job that was mid-search resumes from its
// checkpoint file because checkpoints are content-addressed by the search
// digest, not by anything the dead process held in memory. Records for jobs
// with no submitted record (possible only after a corruption salvage cut
// the log) are dropped: without the spec there is nothing to re-run.
func recoverJobs(records []JournalRecord) []*recoveredJob {
	byID := make(map[string]*recoveredJob)
	var order []*recoveredJob
	for i := range records {
		rec := &records[i]
		if rec.Event == EventSubmitted {
			if rec.Spec == nil || byID[rec.Job] != nil {
				continue
			}
			r := &recoveredJob{
				id:     rec.Job,
				digest: rec.Digest,
				spec:   *rec.Spec,
				state:  StateQueued,
				level:  -1,
			}
			byID[rec.Job] = r
			order = append(order, r)
			continue
		}
		r := byID[rec.Job]
		if r == nil {
			continue
		}
		switch rec.Event {
		case EventStarted:
			r.attempts++
		case EventCheckpointed:
			r.visited, r.level = rec.Visited, rec.Level
		case EventDone:
			r.state, r.verdict = StateDone, rec.Verdict
		case EventFailed:
			r.state, r.errMsg = StateFailed, rec.Error
		case EventCancelled:
			r.state, r.errMsg = StateCancelled, rec.Error
		}
	}
	return order
}
