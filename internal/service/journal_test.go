package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testJournalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.jsonl")
}

func mustOpenJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalAppendAndReplay(t *testing.T) {
	path := testJournalPath(t)
	j := mustOpenJournal(t, path)
	recs := []JournalRecord{
		{Job: "j1", Digest: "d1", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait", N: 4, K: 2}},
		{Job: "j1", Digest: "d1", Event: EventStarted},
		{Job: "j1", Digest: "d1", Event: EventDone, Verdict: &Verdict{Digest: "d1", Summary: "ok"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpenJournal(t, path)
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Seq != int64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Event != recs[i].Event || r.Job != recs[i].Job {
			t.Errorf("record %d: %+v, want event %s", i, r, recs[i].Event)
		}
	}
	if got[0].Spec == nil || got[0].Spec.Alg != "minwait" {
		t.Fatalf("submitted spec not round-tripped: %+v", got[0].Spec)
	}
	if got[2].Verdict == nil || got[2].Verdict.Summary != "ok" {
		t.Fatalf("done verdict not round-tripped: %+v", got[2].Verdict)
	}
	// Appends continue the sequence after a reopen.
	if err := j2.Append(JournalRecord{Job: "j2", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}}); err != nil {
		t.Fatal(err)
	}
	j3 := mustOpenJournal(t, path)
	defer j3.Close()
	all := j3.Replayed()
	if len(all) != 4 || all[3].Seq != 4 {
		t.Fatalf("after reopen+append: %d records, last seq %d", len(all), all[len(all)-1].Seq)
	}
}

// A torn final line — what a crash mid-append leaves — is dropped silently:
// all complete records survive, the file is compacted clean, and no
// quarantine file appears (a torn tail is normal, not corruption).
func TestJournalTornTailDropped(t *testing.T) {
	for name, tail := range map[string]string{
		"unterminated": `{"seq":3,"job":"j2","event":"star`,
		"half-json":    `{"seq":3,"job"` + "\n",
		"binary":       "\x00\x7f\xba\xad" + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := testJournalPath(t)
			j := mustOpenJournal(t, path)
			j.Append(JournalRecord{Job: "j1", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}})
			j.Append(JournalRecord{Job: "j1", Event: EventStarted})
			j.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tail)
			f.Close()

			j2 := mustOpenJournal(t, path)
			defer j2.Close()
			if got := j2.Replayed(); len(got) != 2 {
				t.Fatalf("replayed %d records, want 2", len(got))
			}
			if _, err := os.Stat(path + ".corrupt"); !os.IsNotExist(err) {
				t.Fatal("torn tail produced a quarantine file; it should rewrite silently")
			}
			// The live file must have been compacted back to clean JSONL.
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if recs, dirty := parseJournal(raw); dirty || len(recs) != 2 {
				t.Fatalf("compacted file still dirty (%d records, dirty=%v)", len(recs), dirty)
			}
		})
	}
}

// Corruption before the end of the file — intact records follow the bad
// line — is not a torn tail: the original is quarantined aside for
// inspection and the clean prefix is salvaged.
func TestJournalMidFileCorruptionQuarantined(t *testing.T) {
	path := testJournalPath(t)
	j := mustOpenJournal(t, path)
	j.Append(JournalRecord{Job: "j1", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}})
	j.Append(JournalRecord{Job: "j1", Event: EventStarted})
	j.Close()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle: flip bytes of line 1, keep line 2 intact.
	lines := strings.SplitAfter(string(orig), "\n")
	mangled := "XX" + lines[0][2:] + lines[1]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpenJournal(t, path)
	defer j2.Close()
	// Nothing salvaged before the first bad line (it was line 0).
	if got := j2.Replayed(); len(got) != 0 {
		t.Fatalf("replayed %d records from a log corrupt at line 0, want 0", len(got))
	}
	quarantined, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if string(quarantined) != mangled {
		t.Fatal("quarantine file does not preserve the corrupt original")
	}
	// The journal stays usable: appends land in a clean file.
	if err := j2.Append(JournalRecord{Job: "j2", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}}); err != nil {
		t.Fatal(err)
	}
	j3 := mustOpenJournal(t, path)
	defer j3.Close()
	if got := j3.Replayed(); len(got) != 1 || got[0].Job != "j2" {
		t.Fatalf("post-quarantine journal: %+v", got)
	}
}

// Salvage keeps the clean prefix when corruption strikes later in the file.
func TestJournalSalvagePrefix(t *testing.T) {
	path := testJournalPath(t)
	j := mustOpenJournal(t, path)
	j.Append(JournalRecord{Job: "j1", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}})
	j.Append(JournalRecord{Job: "j1", Event: EventDone, Verdict: &Verdict{Summary: "ok"}})
	j.Append(JournalRecord{Job: "j2", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait", N: 5}})
	j.Close()
	orig, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(orig), "\n")
	// Garbage replaces record 2; record 3 is intact after it.
	mangled := lines[0] + lines[1][:4] + "\n" + lines[2]
	os.WriteFile(path, []byte(mangled), 0o644)

	j2 := mustOpenJournal(t, path)
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 1 || got[0].Job != "j1" || got[0].Event != EventSubmitted {
		t.Fatalf("salvaged %+v, want the single clean leading record", got)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("mid-file corruption not quarantined: %v", err)
	}
}

func TestRecoverJobsFolding(t *testing.T) {
	spec := func(n int) *InstanceSpec { return &InstanceSpec{Alg: "minwait", N: n, K: 2} }
	records := []JournalRecord{
		// j1: completed.
		{Job: "j1", Digest: "d1", Event: EventSubmitted, Spec: spec(4)},
		{Job: "j1", Digest: "d1", Event: EventStarted},
		{Job: "j1", Digest: "d1", Event: EventDone, Verdict: &Verdict{Digest: "d1", Summary: "done"}},
		// j2: mid-flight with checkpoint progress — must come back queued.
		{Job: "j2", Digest: "d2", Event: EventSubmitted, Spec: spec(5)},
		{Job: "j2", Digest: "d2", Event: EventStarted},
		{Job: "j2", Digest: "d2", Event: EventCheckpointed, Visited: 1000, Level: 4},
		{Job: "j2", Digest: "d2", Event: EventCheckpointed, Visited: 2500, Level: 5},
		// j3: failed twice (one retry).
		{Job: "j3", Digest: "d3", Event: EventSubmitted, Spec: spec(6)},
		{Job: "j3", Digest: "d3", Event: EventStarted},
		{Job: "j3", Digest: "d3", Event: EventStarted, Attempt: 1},
		{Job: "j3", Digest: "d3", Event: EventFailed, Error: "boom"},
		// j4: cancelled by a client.
		{Job: "j4", Digest: "d4", Event: EventSubmitted, Spec: spec(7)},
		{Job: "j4", Digest: "d4", Event: EventCancelled},
		// Orphan records (salvage cut their submit): dropped.
		{Job: "j9", Digest: "d9", Event: EventStarted},
		{Job: "j9", Digest: "d9", Event: EventDone},
	}
	got := recoverJobs(records)
	if len(got) != 4 {
		t.Fatalf("recovered %d jobs, want 4", len(got))
	}
	byID := map[string]*recoveredJob{}
	for _, r := range got {
		byID[r.id] = r
	}
	if r := byID["j1"]; r.state != StateDone || r.verdict == nil || r.verdict.Summary != "done" {
		t.Fatalf("j1: %+v", r)
	}
	if r := byID["j2"]; r.state != StateQueued || r.visited != 2500 || r.level != 5 || r.attempts != 1 {
		t.Fatalf("j2: %+v", r)
	}
	if r := byID["j3"]; r.state != StateFailed || r.errMsg != "boom" || r.attempts != 2 {
		t.Fatalf("j3: %+v", r)
	}
	if r := byID["j4"]; r.state != StateCancelled {
		t.Fatalf("j4: %+v", r)
	}
	// Submission order preserved.
	for i, id := range []string{"j1", "j2", "j3", "j4"} {
		if got[i].id != id {
			t.Fatalf("order[%d] = %s, want %s", i, got[i].id, id)
		}
	}
}

// The journal file is valid JSONL end to end — each line decodes on its own.
func TestJournalLinesAreValidJSON(t *testing.T) {
	path := testJournalPath(t)
	j := mustOpenJournal(t, path)
	j.Append(JournalRecord{Job: "j1", Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait", N: 4}})
	j.Append(JournalRecord{Job: "j1", Event: EventDone, Verdict: &Verdict{Summary: "ok"}})
	j.Close()
	raw, _ := os.ReadFile(path)
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not standalone JSON: %v", i, err)
		}
	}
}

// Two corruption incidents on the same journal leave two quarantine files —
// ".corrupt" for the first, ".corrupt.1" for the second — with both
// specimens preserved for inspection.
func TestJournalDoubleCorruptionKeepsBothSpecimens(t *testing.T) {
	path := testJournalPath(t)
	corruptOnce := func(marker string) string {
		j := mustOpenJournal(t, path)
		j.Append(JournalRecord{Job: marker, Event: EventSubmitted, Spec: &InstanceSpec{Alg: "minwait"}})
		j.Append(JournalRecord{Job: marker, Event: EventStarted})
		j.Close()
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Mangle line 1, keep line 2 intact: mid-file corruption, not a
		// torn tail, so reopening quarantines.
		lines := strings.SplitAfter(string(orig), "\n")
		mangled := marker + lines[0][len(marker):] + lines[1]
		if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
			t.Fatal(err)
		}
		j2 := mustOpenJournal(t, path)
		j2.Close()
		return mangled
	}
	first := corruptOnce("AA")
	second := corruptOnce("BB")

	for name, want := range map[string]string{
		path + ".corrupt":   first,
		path + ".corrupt.1": second,
	} {
		got, err := os.ReadFile(name)
		if err != nil {
			t.Errorf("quarantine specimen missing: %v", err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s does not preserve its incident's bytes", name)
		}
	}
}
