// Package service implements the verification-as-a-service layer behind
// cmd/ksetd: an HTTP/JSON job server that accepts impossibility-check and
// consensus-failure-search jobs, runs them on a bounded worker pool through
// the globals-free kset.Searcher API with per-job context cancellation, and
// caches completed verdicts content-addressed by the instance digest — a
// repeat query for the same instance is a cache hit, not a re-search.
package service

import (
	"fmt"

	"kset"
)

// Job goals.
const (
	// GoalImpossibility runs the full Theorem 1 pipeline (conditions
	// (A)-(D), pasted run, verdict) on the instance.
	GoalImpossibility = "impossibility"
	// GoalSearch runs the standalone condition-(C) search: a disagreement
	// or blocking witness hunt over the full system with a crash budget.
	GoalSearch = "search"
)

// InstanceSpec is the wire form of a verification job: everything that
// determines the verdict, in the CLI spellings of cmd/impossibility. The
// digest of a spec — and therefore the verdict-cache key — covers exactly
// the fields that can change the result: Workers, Store, and Packed are
// excluded (results are bit-identical across them), everything else is
// included.
type InstanceSpec struct {
	// Alg names the algorithm under test (kset.NewAlgorithm spelling).
	Alg string `json:"alg"`
	// N is the system size; F parameterizes the resilience-bound
	// algorithms and the Theorem 2 partition.
	N int `json:"n"`
	F int `json:"f"`
	// K is the agreement parameter. Required for the impossibility goal;
	// ignored by the search goal.
	K int `json:"k,omitempty"`
	// Goal selects the pipeline: GoalImpossibility (default) or GoalSearch.
	Goal string `json:"goal,omitempty"`
	// Groups optionally fixes explicit decider groups (1-based process
	// ids) for the impossibility goal; empty uses the Theorem 2 partition.
	Groups [][]int `json:"groups,omitempty"`
	// Budget is the adversary's crash budget: inside <D-bar> for the
	// impossibility goal (default 1), over the full system for the search
	// goal (default 1).
	Budget int `json:"budget,omitempty"`
	// MaxConfigs bounds the exploration (default 80000).
	MaxConfigs int `json:"max_configs,omitempty"`
	// Strategy selects the impossibility goal's search order: "dfs"
	// (default) or "bfs". The search goal always runs breadth-first.
	Strategy string `json:"strategy,omitempty"`
	// Workers caps the search goroutines (0 = GOMAXPROCS). Not part of
	// the digest: results are bit-identical at every worker count.
	Workers int `json:"workers,omitempty"`
	// Symmetry and POR arm the search-space reductions.
	Symmetry bool `json:"symmetry,omitempty"`
	POR      bool `json:"por,omitempty"`
	// Store selects the memory regime: "" or "inmem", "frontier", or
	// "spill". Not part of the digest.
	Store string `json:"store,omitempty"`
	// Packed selects the configuration engine: "" or "off", "on"/"auto"
	// (explore.ParsePacked spelling, silent fallback where unsupported).
	// Not part of the digest: verdicts are bit-identical across engines.
	Packed string `json:"packed,omitempty"`
	// Faults selects the fault adversary (explore.ParseFaults spelling).
	Faults string `json:"faults,omitempty"`
	// Checkpoint opts the job into the server's checkpoint directory:
	// a cancelled or truncated bounded search pauses resumably. Requires a
	// bounded Store and the "bfs" strategy.
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// withDefaults returns the spec with the documented defaults filled in.
func (sp InstanceSpec) withDefaults() InstanceSpec {
	if sp.Goal == "" {
		sp.Goal = GoalImpossibility
	}
	if sp.Budget == 0 {
		sp.Budget = 1
	}
	if sp.MaxConfigs == 0 {
		sp.MaxConfigs = 80000
	}
	if sp.Strategy == "" && sp.Goal == GoalImpossibility {
		sp.Strategy = "dfs"
	}
	return sp
}

// validate rejects malformed specs with the error the submit handler turns
// into a 400. It normalizes nothing; call on a withDefaults() result.
func (sp InstanceSpec) validate() error {
	if sp.N < 2 {
		return fmt.Errorf("service: n = %d < 2", sp.N)
	}
	if _, err := kset.NewAlgorithm(sp.Alg, sp.F); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	switch sp.Goal {
	case GoalImpossibility:
		if sp.K < 1 {
			return fmt.Errorf("service: impossibility goal requires k >= 1 (got %d)", sp.K)
		}
		switch sp.Strategy {
		case "dfs", "bfs":
		default:
			return fmt.Errorf("service: unknown strategy %q (want \"dfs\" or \"bfs\")", sp.Strategy)
		}
	case GoalSearch:
	default:
		return fmt.Errorf("service: unknown goal %q (want %q or %q)", sp.Goal, GoalImpossibility, GoalSearch)
	}
	if sp.Budget < 0 {
		return fmt.Errorf("service: negative budget %d", sp.Budget)
	}
	if sp.MaxConfigs < 1 {
		return fmt.Errorf("service: max_configs = %d < 1", sp.MaxConfigs)
	}
	if err := (kset.Options{Store: sp.Store, Faults: sp.Faults, Packed: sp.Packed}).Validate(); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if sp.Checkpoint {
		if sp.Store == "" || sp.Store == "inmem" {
			return fmt.Errorf("service: checkpoint requires store \"frontier\" or \"spill\"")
		}
		if sp.Goal == GoalImpossibility && sp.Strategy != "bfs" {
			return fmt.Errorf("service: checkpoint requires strategy \"bfs\"")
		}
	}
	return nil
}

// options maps the spec's search knobs onto a kset.Options value;
// checkpointDir is the server's checkpoint directory, applied only when the
// spec opted in.
func (sp InstanceSpec) options(checkpointDir string) kset.Options {
	o := kset.Options{
		Workers:  sp.Workers,
		Symmetry: sp.Symmetry,
		POR:      sp.POR,
		Store:    sp.Store,
		Faults:   sp.Faults,
		Packed:   sp.Packed,
	}
	if sp.Checkpoint {
		o.Checkpoint = checkpointDir
	}
	return o
}

// Verdict is the deterministic result of a completed job: a pure function
// of the InstanceSpec digest fields, safe to cache and compare bit for bit.
// It deliberately carries no timing, host, or job-id information.
type Verdict struct {
	// Digest is the instance's content address (16 hex digits).
	Digest string `json:"digest"`
	// Goal echoes the spec's goal.
	Goal string `json:"goal"`
	// Summary is the human-readable one-liner (Report.Summary for the
	// impossibility goal, a witness description for the search goal).
	Summary string `json:"summary"`
	// Refuted and Violation report the impossibility goal's verdict.
	Refuted   bool   `json:"refuted,omitempty"`
	Violation string `json:"violation,omitempty"`
	// CondA..CondD report the condition statuses of the impossibility goal.
	CondA string `json:"cond_a,omitempty"`
	CondB string `json:"cond_b,omitempty"`
	CondC string `json:"cond_c,omitempty"`
	CondD string `json:"cond_d,omitempty"`
	// DistinctDecisions counts the pasted run's decision census
	// (impossibility goal).
	DistinctDecisions int `json:"distinct_decisions,omitempty"`
	// Found reports whether the search goal found a witness.
	Found bool `json:"found,omitempty"`
	// WitnessKind/WitnessDetail describe the found witness ("disagreement"
	// or "blocking"), for both goals.
	WitnessKind   string `json:"witness_kind,omitempty"`
	WitnessDetail string `json:"witness_detail,omitempty"`
	// Visited counts explored configurations; Truncated reports a search
	// stopped at its budget.
	Visited   int  `json:"visited"`
	Truncated bool `json:"truncated,omitempty"`
}
