package service

import (
	"context"
	"fmt"

	"kset"
	"kset/internal/explore"
)

// ProgressUpdate is one report from a running job: either search progress
// (Degraded empty) or a durability degradation notice (Degraded set, the
// progress fields unset). Splitting the two keeps progress consumers from
// misreading a degradation notice as the counters jumping backward.
type ProgressUpdate struct {
	// Visited is the cumulative visited-configuration count; Level is the
	// sealed BFS level (-1 from depth-unaware engines).
	Visited int
	Level   int
	// Degraded, when non-empty, reports that the job's crash durability
	// degraded mid-run (checkpoint snapshots failing — see
	// explore.Options.OnSnapshotError). The verdict is unaffected; the
	// notice is surfaced on the job's status record.
	Degraded string
}

// Runner executes verification jobs. The production implementation is
// KsetRunner; handler tests substitute a mock to exercise the HTTP layer
// without running real searches.
type Runner interface {
	// Digest validates the spec and returns its content address (the
	// verdict-cache key) as 16 lowercase hex digits. An error marks the
	// spec malformed: the submit handler answers 400 with it.
	Digest(spec InstanceSpec) (string, error)
	// Run executes the job to completion, reporting periodic progress and
	// degradation notices through the callback (may be nil). A ctx
	// cancellation is not an error: Run returns ctx.Err() only when no
	// meaningful verdict exists — a cancelled search otherwise comes back
	// as a truncated, inconclusive verdict.
	Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error)
}

// KsetRunner is the production Runner: it maps InstanceSpec onto the
// kset.Searcher API. The zero value is ready to use; set CheckpointDir to
// let checkpoint-opted jobs pause resumably.
type KsetRunner struct {
	// CheckpointDir is the directory checkpoint-opted jobs pause into
	// (empty disables checkpointing regardless of the spec).
	CheckpointDir string
}

// prepared is the validated, default-filled form of a spec plus the
// Searcher and instance pieces shared by Digest and Run.
type prepared struct {
	spec   InstanceSpec
	search *kset.Searcher
	alg    kset.Algorithm
}

func (r KsetRunner) prepare(spec InstanceSpec) (*prepared, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	search, err := kset.NewSearcher(spec.options(r.CheckpointDir))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	alg, err := kset.NewAlgorithm(spec.Alg, spec.F)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return &prepared{spec: spec, search: search, alg: alg}, nil
}

// instance builds the impossibility goal's engine instance. The Searcher
// stamps the search knobs; only per-instance fields are set here.
func (p *prepared) instance() (kset.ImpossibilityInstance, error) {
	var spec kset.PartitionSpec
	var err error
	if len(p.spec.Groups) > 0 {
		groups := make([][]kset.ProcessID, len(p.spec.Groups))
		for i, g := range p.spec.Groups {
			ids := make([]kset.ProcessID, len(g))
			for j, id := range g {
				ids[j] = kset.ProcessID(id)
			}
			groups[i] = ids
		}
		spec, err = kset.NewPartitionSpec(p.spec.N, p.spec.K, groups)
	} else {
		spec, err = kset.Theorem2Partition(p.spec.N, p.spec.F, p.spec.K)
	}
	if err != nil {
		return kset.ImpossibilityInstance{}, fmt.Errorf("service: %w", err)
	}
	return kset.ImpossibilityInstance{
		Alg:             p.alg,
		Inputs:          kset.DistinctInputs(p.spec.N),
		Spec:            spec,
		DBarCrashBudget: p.spec.Budget,
		MaxConfigs:      p.spec.MaxConfigs,
		SearchStrategy:  p.spec.Strategy,
	}, nil
}

// request builds the search goal's condition-(C) request over the full
// system.
func (p *prepared) request(progress func(visited, level int)) kset.SearchRequest {
	live := make([]kset.ProcessID, p.spec.N)
	for i := range live {
		live[i] = kset.ProcessID(i + 1)
	}
	return kset.SearchRequest{
		Alg:         p.alg,
		Inputs:      kset.DistinctInputs(p.spec.N),
		Live:        live,
		CrashBudget: p.spec.Budget,
		MaxConfigs:  p.spec.MaxConfigs,
		OnProgress:  progress,
	}
}

// Digest implements Runner.
func (r KsetRunner) Digest(spec InstanceSpec) (string, error) {
	p, err := r.prepare(spec)
	if err != nil {
		return "", err
	}
	switch p.spec.Goal {
	case GoalSearch:
		return fmt.Sprintf("%016x", p.search.SearchDigest(p.request(nil))), nil
	default:
		inst, err := p.instance()
		if err != nil {
			return "", err
		}
		d, err := p.search.InstanceDigest(inst)
		if err != nil {
			return "", fmt.Errorf("service: %w", err)
		}
		return fmt.Sprintf("%016x", d), nil
	}
}

// searchVerdict builds the GoalSearch verdict from a search outcome; shared
// by the single-process runner and the sharded coordinator so both produce
// identical verdicts for identical search results.
func searchVerdict(digest string, w *explore.Witness, found bool) *Verdict {
	v := &Verdict{Digest: digest, Goal: GoalSearch, Found: found}
	if w != nil {
		v.Visited = w.Stats.Visited
		v.Truncated = w.Stats.Truncated
		if found {
			v.WitnessKind = w.Kind
			v.WitnessDetail = w.Detail
			v.Summary = fmt.Sprintf("%s witness: %s", w.Kind, w.Detail)
		}
	}
	if !found {
		v.Summary = "no consensus failure found"
		if v.Truncated {
			v.Summary += " (truncated)"
		}
	}
	return v
}

// progressFuncs splits a ProgressUpdate callback into the two lower-level
// callbacks the search engines expose: periodic (visited, level) progress
// and the once-per-search snapshot-failure notice.
func progressFuncs(progress func(ProgressUpdate)) (onProgress func(visited, level int), onSnapErr func(error)) {
	if progress == nil {
		return nil, nil
	}
	onProgress = func(visited, level int) {
		progress(ProgressUpdate{Visited: visited, Level: level})
	}
	onSnapErr = func(err error) {
		progress(ProgressUpdate{Degraded: fmt.Sprintf("checkpoint snapshots failing: %v", err)})
	}
	return onProgress, onSnapErr
}

// Run implements Runner.
func (r KsetRunner) Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error) {
	p, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	digest, err := r.Digest(spec)
	if err != nil {
		return nil, err
	}
	onProgress, onSnapErr := progressFuncs(progress)
	switch p.spec.Goal {
	case GoalSearch:
		req := p.request(onProgress)
		req.OnSnapshotError = onSnapErr
		w, found, err := p.search.FindConsensusFailure(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("service: search: %w", err)
		}
		return searchVerdict(digest, w, found), nil
	default:
		inst, err := p.instance()
		if err != nil {
			return nil, err
		}
		inst.OnSearchProgress = onProgress
		inst.OnSnapshotError = onSnapErr
		rep, err := p.search.CheckImpossibility(ctx, inst)
		if err != nil {
			return nil, fmt.Errorf("service: engine: %w", err)
		}
		v := &Verdict{
			Digest:            digest,
			Goal:              GoalImpossibility,
			Summary:           rep.Summary(),
			Refuted:           rep.Refuted,
			Violation:         rep.Violation,
			CondA:             rep.CondA.String(),
			CondB:             rep.CondB.String(),
			CondC:             rep.CondC.String(),
			CondD:             rep.CondD.String(),
			DistinctDecisions: len(rep.DistinctDecided),
			Visited:           rep.CondCStats.Visited,
			Truncated:         rep.CondCStats.Truncated,
		}
		if rep.DBarWitness != nil && rep.DBarWitness.Run != nil {
			v.WitnessKind = rep.DBarWitness.Kind
			v.WitnessDetail = rep.DBarWitness.Detail
		}
		return v, nil
	}
}
