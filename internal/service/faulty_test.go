package service

// Fault-injection layer: wrappers that make the runner and the cache fail
// on demand, driving the server's retry, deadline, and degradation paths
// without touching a real filesystem fault. The invariant under test is the
// PR's contract: no injected fault sequence crashes the server or caches a
// wrong verdict — faults cost retries or re-runs, never correctness.

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// faultyRunner fails its first `failures` Run calls with err, then
// delegates to the inner Runner. Digest always delegates.
type faultyRunner struct {
	inner    Runner
	err      error
	failures int

	mu    sync.Mutex
	calls int
}

func (f *faultyRunner) Digest(spec InstanceSpec) (string, error) {
	return f.inner.Digest(spec)
}

func (f *faultyRunner) Run(ctx context.Context, spec InstanceSpec, progress func(ProgressUpdate)) (*Verdict, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failures {
		return nil, f.err
	}
	return f.inner.Run(ctx, spec, progress)
}

func (f *faultyRunner) runCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// faultyCache injects errors around an inner Cache: Get fails while getErr
// is set, Put fails while putErr is set.
type faultyCache struct {
	inner  Cache
	mu     sync.Mutex
	getErr error
	putErr error
}

func (c *faultyCache) Get(digest string) (*Verdict, bool, error) {
	c.mu.Lock()
	err := c.getErr
	c.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return c.inner.Get(digest)
}

func (c *faultyCache) Put(digest string, v *Verdict) error {
	c.mu.Lock()
	err := c.putErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.Put(digest, v)
}

func (c *faultyCache) Len() (int, error) { return c.inner.Len() }

func TestRetryableErrorRetriesUntilSuccess(t *testing.T) {
	fr := &faultyRunner{
		inner:    &mockRunner{},
		err:      Retryable(errors.New("transient store hiccup")),
		failures: 2,
	}
	_, ts := newTestServer(t, Config{
		Runner:     fr,
		Cache:      NewMemoryCache(),
		Retries:    3,
		RetryDelay: time.Millisecond,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateDone)
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures + success)", st.Attempts)
	}
	if st.Verdict == nil || !st.Verdict.Refuted {
		t.Fatalf("verdict after retries: %+v", st.Verdict)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	fr := &faultyRunner{
		inner:    &mockRunner{},
		err:      Retryable(errors.New("still down")),
		failures: 100,
	}
	cache := NewMemoryCache()
	_, ts := newTestServer(t, Config{
		Runner:     fr,
		Cache:      cache,
		Retries:    2,
		RetryDelay: time.Millisecond,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateFailed)
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", st.Attempts)
	}
	if !strings.Contains(st.Error, "still down") {
		t.Fatalf("failed job error: %q", st.Error)
	}
	if n, _ := cache.Len(); n != 0 {
		t.Fatalf("failed job cached a verdict (%d entries)", n)
	}
}

// Permanent (unmarked) errors never retry: a deterministic search that
// failed once will fail identically every time.
func TestPermanentErrorNoRetry(t *testing.T) {
	fr := &faultyRunner{
		inner:    &mockRunner{},
		err:      errors.New("spec hits an engine limit"),
		failures: 100,
	}
	_, ts := newTestServer(t, Config{
		Runner:     fr,
		Cache:      NewMemoryCache(),
		Retries:    5,
		RetryDelay: time.Millisecond,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateFailed)
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (permanent errors never retry)", st.Attempts)
	}
	if fr.runCount() != 1 {
		t.Fatalf("runner called %d times, want 1", fr.runCount())
	}
}

func TestIsRetryable(t *testing.T) {
	base := errors.New("x")
	if IsRetryable(base) {
		t.Fatal("plain error reported retryable")
	}
	if !IsRetryable(Retryable(base)) {
		t.Fatal("Retryable-wrapped error not reported retryable")
	}
	// Survives further wrapping, and Unwrap reaches the original.
	wrapped := errors.Join(errors.New("context"), Retryable(base))
	if !IsRetryable(wrapped) {
		t.Fatal("retryable mark lost under wrapping")
	}
	if !errors.Is(Retryable(base), base) {
		t.Fatal("Retryable breaks errors.Is")
	}
	if Retryable(nil) != nil {
		t.Fatal("Retryable(nil) != nil")
	}
}

// A job past its wall-clock deadline settles as failed — keeping its
// partial verdict for inspection but never caching it — because the
// deadline cancellation rides the same cooperative pause path as a client
// cancel.
func TestJobDeadlineFailsWithPartialVerdict(t *testing.T) {
	cache := NewMemoryCache()
	_, ts := newTestServer(t, Config{
		Runner:     &mockRunner{block: make(chan struct{})}, // never unblocks
		Cache:      cache,
		JobTimeout: 50 * time.Millisecond,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateFailed)
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline failure error: %q", st.Error)
	}
	if st.Verdict == nil || !st.Verdict.Truncated {
		t.Fatalf("partial verdict not kept: %+v", st.Verdict)
	}
	if n, _ := cache.Len(); n != 0 {
		t.Fatalf("deadline-failed job cached a verdict (%d entries)", n)
	}
}

// A cache write failure degrades, never blocks: the job still settles done
// with its verdict, and the miss is simply paid again next time.
func TestCachePutFailureStillDone(t *testing.T) {
	fc := &faultyCache{inner: NewMemoryCache(), putErr: errors.New("disk full")}
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: fc})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateDone)
	if st.Verdict == nil || !st.Verdict.Refuted {
		t.Fatalf("verdict lost to a cache fault: %+v", st.Verdict)
	}
	if !strings.Contains(st.Error, "not cached") {
		t.Fatalf("cache failure not surfaced: %q", st.Error)
	}
}

// A cache read I/O error (not corruption — that quarantines to a miss) is
// surfaced as a 500, not silently treated as a miss that would duplicate
// work forever.
func TestCacheGetIOErrorSurfaced(t *testing.T) {
	fc := &faultyCache{inner: NewMemoryCache(), getErr: errors.New("input/output error")}
	_, ts := newTestServer(t, Config{Runner: &mockRunner{}, Cache: fc})
	code, _ := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("submit with failing cache read: HTTP %d, want 500", code)
	}
}

// Faults on both layers at once: retryable runner errors plus a flaky cache
// must still converge to a correct, settled verdict.
func TestCombinedFaultsStillConverge(t *testing.T) {
	fr := &faultyRunner{
		inner:    &mockRunner{},
		err:      Retryable(errors.New("flap")),
		failures: 1,
	}
	fc := &faultyCache{inner: NewMemoryCache(), putErr: errors.New("flap")}
	_, ts := newTestServer(t, Config{
		Runner:     fr,
		Cache:      fc,
		Retries:    2,
		RetryDelay: time.Millisecond,
	})
	code, sub := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitState(t, ts, sub.JobID, StateDone)
	if st.Verdict == nil || !st.Verdict.Refuted || st.Attempts != 2 {
		t.Fatalf("converged status: %+v", st)
	}
	// Heal the cache: the next submission re-runs (the put failed) and
	// this time the verdict sticks.
	fc.mu.Lock()
	fc.putErr = nil
	fc.mu.Unlock()
	code, sub2 := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	st2 := waitState(t, ts, sub2.JobID, StateDone)
	if *st2.Verdict != *st.Verdict {
		t.Fatalf("re-run verdict differs: %+v vs %+v", st2.Verdict, st.Verdict)
	}
	code, sub3 := postJob(t, ts, `{"alg": "minwait", "n": 4, "k": 2}`)
	if code != http.StatusOK || !sub3.Cached {
		t.Fatalf("post-heal submit: HTTP %d %+v, want cache hit", code, sub3)
	}
}
