package explore

import (
	"fmt"
	"sort"

	"kset/internal/sim"
)

// Witness is an adversarial schedule found by the explorer, replayable as a
// recorded run.
type Witness struct {
	// Kind is "disagreement" or "blocking".
	Kind string
	// Run is the replayed run exhibiting the witness.
	Run *sim.Run
	// Detail describes the violation.
	Detail string
	// Stats reports exploration effort.
	Stats Stats
}

// FindDisagreement searches for a reachable configuration in which two
// live processes have decided different values. A witness proves that the
// algorithm does not solve consensus in the explored (sub)system under the
// explored adversary. The boolean reports whether a witness was found; the
// Stats of the returned witness (also set on failure) report whether the
// search was exhaustive.
func (e *Explorer) FindDisagreement() (*Witness, bool, error) {
	return e.search(func(cfg *sim.Configuration) (string, bool) {
		if vs := cfg.DistinctDecisions(); len(vs) >= 2 {
			return fmt.Sprintf("decisions %v reached", vs), true
		}
		return "", false
	}, "disagreement")
}

// FindBlocking searches for a reachable quiescent configuration in which
// some live, non-crashed process is undecided: all buffers of live processes
// are empty and stepping any live process (with nothing to deliver) changes
// nothing, so no continuation can ever decide — a Termination violation.
func (e *Explorer) FindBlocking() (*Witness, bool, error) {
	return e.search(func(cfg *sim.Configuration) (string, bool) {
		p, ok := e.quiescentBlocked(cfg)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("process %d can never decide (quiescent configuration)", p), true
	}, "blocking")
}

// quiescentBlocked reports whether cfg is quiescent (no pending messages at
// live processes, and every live process's empty-delivery step is a no-op
// producing no sends) while some live process is undecided.
func (e *Explorer) quiescentBlocked(cfg *sim.Configuration) (sim.ProcessID, bool) {
	var undecided sim.ProcessID
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		if cfg.BufferSize(p) > 0 {
			return 0, false
		}
		if _, ok := cfg.Decision(p); !ok && undecided == 0 {
			undecided = p
		}
	}
	if undecided == 0 {
		return 0, false
	}
	// Quiescence: stepping any live process without deliveries must neither
	// change its state key nor send anything. (With a detector the output
	// could change behaviour; the oracle is part of the step here.)
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		probe := cfg.Clone()
		req := sim.StepRequest{Proc: p}
		if e.opts.Oracle != nil {
			req.FD = e.opts.Oracle.Query(p, probe.Time(), probe)
		}
		ev, err := probe.Apply(req)
		if err != nil {
			return 0, false
		}
		if len(ev.Sent) > 0 || ev.StateKey != cfg.State(p).Key() {
			return 0, false
		}
	}
	return undecided, true
}

// search runs a BFS or DFS (per Options.Strategy) from the initial
// configuration until goal holds.
func (e *Explorer) search(goal func(*sim.Configuration) (string, bool), kind string) (*Witness, bool, error) {
	start, err := e.initial()
	if err != nil {
		return nil, false, err
	}
	type qent struct {
		cfg     *sim.Configuration
		key     string
		crashes int
	}
	startKey := nodeKey(start, 0)
	parents := map[string]node{startKey: {parent: "", crashes: 0}}
	queue := []qent{{cfg: start, key: startKey, crashes: 0}}
	dfs := e.opts.Strategy == "dfs"
	stats := Stats{}

	if detail, ok := goal(start); ok {
		run, err := e.replay(parents, startKey, start)
		if err != nil {
			return nil, false, err
		}
		return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, nil
	}

	for len(queue) > 0 {
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		var cur qent
		if dfs {
			cur = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			cur = queue[0]
			queue = queue[1:]
		}
		stats.Visited++

		for _, act := range e.actions(cur.cfg, cur.crashes) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			key := nodeKey(next, crashes)
			if _, seen := parents[key]; seen {
				continue
			}
			parents[key] = node{parent: cur.key, act: act, crashes: crashes}
			if detail, ok := goal(next); ok {
				run, err := e.replay(parents, key, next)
				if err != nil {
					return nil, false, err
				}
				return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, nil
			}
			queue = append(queue, qent{cfg: next, key: key, crashes: crashes})
		}
	}
	return &Witness{Kind: kind, Stats: stats}, false, nil
}

// replay reconstructs the action path to key and re-executes it from the
// initial configuration, producing a recorded run.
func (e *Explorer) replay(parents map[string]node, key string, final *sim.Configuration) (*sim.Run, error) {
	var acts []action
	for key != "" {
		n, ok := parents[key]
		if !ok {
			return nil, fmt.Errorf("explore: broken parent chain at %q", key)
		}
		if n.parent == "" {
			break
		}
		acts = append(acts, n.act)
		key = n.parent
	}
	// Reverse into execution order.
	for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
		acts[i], acts[j] = acts[j], acts[i]
	}

	cfg, err := e.initial()
	if err != nil {
		return nil, err
	}
	run := &sim.Run{Algorithm: e.alg.Name(), Inputs: append([]sim.Value(nil), e.inputs...), Final: cfg}
	// Record the initial silent crashes as events for failure-pattern
	// extraction. They were applied inside initial(); reconstruct them.
	liveSet := make(map[sim.ProcessID]bool, len(e.opts.Live))
	for _, p := range e.opts.Live {
		liveSet[p] = true
	}
	for _, p := range cfg.Processes() {
		if !liveSet[p] {
			run.Events = append(run.Events, sim.Event{Proc: p, StateKey: cfg.State(p).Key(), Crashed: true, Silent: true})
		}
	}
	for _, act := range acts {
		req := sim.StepRequest{Proc: act.Proc, Crash: act.Crash}
		if act.Crash && act.Omit {
			req.OmitTo = make(map[sim.ProcessID]bool, cfg.N())
			for _, q := range cfg.Processes() {
				req.OmitTo[q] = true
			}
		}
		switch act.Mode {
		case DeliverOldest:
			buf := cfg.Buffer(act.Proc)
			if len(buf) == 0 {
				return nil, fmt.Errorf("explore: replay divergence: empty buffer for oldest delivery at %d", act.Proc)
			}
			req.Deliver = []int64{buf[0].ID}
		case DeliverAll:
			req.Deliver = cfg.DeliverAll(act.Proc)
		}
		if e.opts.Oracle != nil {
			req.FD = e.opts.Oracle.Query(act.Proc, cfg.Time(), cfg)
		}
		ev, err := cfg.Apply(req)
		if err != nil {
			return nil, fmt.Errorf("explore: replay failed: %w", err)
		}
		run.Events = append(run.Events, ev)
	}
	var blocked []sim.ProcessID
	for _, p := range cfg.Processes() {
		if _, decided := cfg.Decision(p); !decided && !cfg.Crashed(p) {
			blocked = append(blocked, p)
		}
	}
	run.Blocked = blocked
	return run, nil
}

// Valence classifies the decision values reachable from the initial
// configuration: the set of values v such that some reachable configuration
// contains a process decided on v. A configuration with two or more
// reachable values is bivalent in the FLP sense. The search stops early
// once `stopAt` distinct values are found (0 = collect every value).
func (e *Explorer) Valence(stopAt int) ([]sim.Value, Stats, error) {
	start, err := e.initial()
	if err != nil {
		return nil, Stats{}, err
	}
	seenVals := map[sim.Value]bool{}
	collect := func(cfg *sim.Configuration) {
		for _, v := range cfg.DistinctDecisions() {
			seenVals[v] = true
		}
	}
	collect(start)
	stats := Stats{}
	visited := map[string]bool{nodeKey(start, 0): true}
	type qent struct {
		cfg     *sim.Configuration
		crashes int
	}
	queue := []qent{{cfg: start, crashes: 0}}
	for len(queue) > 0 {
		if stopAt > 0 && len(seenVals) >= stopAt {
			break
		}
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			break
		}
		cur := queue[0]
		queue = queue[1:]
		stats.Visited++
		for _, act := range e.actions(cur.cfg, cur.crashes) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			key := nodeKey(next, crashes)
			if visited[key] {
				continue
			}
			visited[key] = true
			collect(next)
			queue = append(queue, qent{cfg: next, crashes: crashes})
		}
	}
	vals := make([]sim.Value, 0, len(seenVals))
	for v := range seenVals {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals, stats, nil
}
