package explore

import (
	"fmt"

	"kset/internal/sim"
)

// Witness is an adversarial schedule found by the explorer, replayable as a
// recorded run.
type Witness struct {
	// Kind is "disagreement" or "blocking".
	Kind string
	// Run is the replayed run exhibiting the witness.
	Run *sim.Run
	// Detail describes the violation.
	Detail string
	// Stats reports exploration effort.
	Stats Stats
	// Checkpoint is the file a truncated bounded search saved its paused
	// state to (Options.Checkpoint); empty when no checkpoint was written.
	// A later search of the same instance resumes from it.
	Checkpoint string
}

// FindDisagreement searches for a reachable configuration in which two
// live processes have decided different values. A witness proves that the
// algorithm does not solve consensus in the explored (sub)system under the
// explored adversary. The boolean reports whether a witness was found; the
// Stats of the returned witness (also set on failure) report whether the
// search was exhaustive.
func (e *Explorer) FindDisagreement() (*Witness, bool, error) {
	return e.search(disagreementGoal, "disagreement")
}

// disagreementGoal is the disagreement-witness predicate of FindDisagreement.
func disagreementGoal(_ *searchCtx, cfg *sim.Configuration) (string, bool) {
	if !cfg.Disagreement() {
		return "", false
	}
	return fmt.Sprintf("decisions %v reached", cfg.DistinctDecisions()), true
}

// FindBlocking searches for a reachable quiescent configuration in which
// some live, non-crashed process is undecided: all buffers of live processes
// are empty and stepping any live process (with nothing to deliver) changes
// nothing, so no continuation can ever decide — a Termination violation.
func (e *Explorer) FindBlocking() (*Witness, bool, error) {
	return e.search(blockingGoal, "blocking")
}

// blockingGoal is the blocking-witness predicate of FindBlocking.
func blockingGoal(sc *searchCtx, cfg *sim.Configuration) (string, bool) {
	p, ok := sc.quiescentBlocked(cfg)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("process %d can never decide (quiescent configuration)", p), true
}

// goalFunc is a witness predicate evaluated on candidate configurations. It
// receives the evaluating goroutine's search context so predicates needing
// scratch state (quiescentBlocked's probe clone) stay allocation-free and
// contention-free under the parallel frontier search. Goals must be pure
// functions of the configuration's content: two configurations with equal
// keys must produce equal results.
type goalFunc func(sc *searchCtx, cfg *sim.Configuration) (string, bool)

// quiescentBlocked reports whether cfg is quiescent (no pending messages at
// live processes, and every live process's empty-delivery step is a no-op
// producing no sends) while some live process is undecided.
func (sc *searchCtx) quiescentBlocked(cfg *sim.Configuration) (sim.ProcessID, bool) {
	e := sc.e
	var undecided sim.ProcessID
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		if cfg.BufferSize(p) > 0 {
			return 0, false
		}
		if _, ok := cfg.Decision(p); !ok && undecided == 0 {
			undecided = p
		}
	}
	if undecided == 0 {
		return 0, false
	}
	// Quiescence: stepping any live process without deliveries must neither
	// change its state nor send anything — equivalently, the step must leave
	// the configuration fingerprint unchanged (the fingerprint covers local
	// states, decisions, and buffered messages, and excludes time). (With a
	// detector the output could change behaviour; the oracle is part of the
	// step here.) Probing reuses one scratch clone across all live processes
	// and all visited candidates instead of deep-cloning per probe.
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		sc.probe = cfg.CloneInto(sc.probe)
		// The probe is stepped but never keyed: only concrete fingerprints
		// are compared below, so skip the canonical maintenance a symmetric
		// search's clone would otherwise pay on every probe step.
		sc.probe.DetachSymmetry()
		req := sim.StepRequest{Proc: p}
		if e.opts.Oracle != nil {
			req.FD = e.opts.Oracle.Query(p, sc.probe.Time(), sc.probe)
		}
		if err := sc.probe.ApplyQuiet(req); err != nil {
			return 0, false
		}
		if sc.probe.Fingerprint() != cfg.Fingerprint() {
			return 0, false
		}
	}
	return undecided, true
}

// qent is one frontier entry of a search: a live configuration, its arena
// index, and the crash budget already spent reaching it.
type qent struct {
	cfg     *sim.Configuration
	idx     int32
	crashes int32
}

// search runs a BFS or DFS (per Options.Strategy) from the initial
// configuration until goal holds. Visited detection keys the arena by
// configuration fingerprint; retired configurations are recycled through the
// search context's free list. BFS searches with more than one worker run on
// the level-synchronous parallel frontier of parallel.go, which produces
// results identical to the sequential search. Bounded stores
// (Options.Store != StoreInMemory) route to the frontier-only engines of
// bounded.go, whose results are bit-identical too.
func (e *Explorer) search(goal goalFunc, kind string) (*Witness, bool, error) {
	if e.opts.Checkpoint != "" && e.opts.Store == StoreInMemory {
		return nil, false, fmt.Errorf("explore: Options.Checkpoint requires a bounded store (StoreFrontierOnly or StoreSpill)")
	}
	if e.opts.Store != StoreInMemory {
		if e.opts.Strategy == "dfs" {
			return e.searchBoundedDFS(goal, kind)
		}
		return e.searchBounded(goal, kind)
	}
	w, found, _, err := e.searchArena(goal, kind)
	return w, found, err
}

// searchArena is search exposing the final arena, which the differential
// tests inspect to prove visited-set equality between the sequential and
// parallel engines.
func (e *Explorer) searchArena(goal goalFunc, kind string) (*Witness, bool, *arena, error) {
	dfs := e.opts.Strategy == "dfs"
	if !dfs && e.searchWorkers() > 1 {
		return e.searchParallel(goal, kind)
	}

	start, err := e.initial()
	if err != nil {
		return nil, false, nil, err
	}
	ar := newArena()
	rootIdx := ar.root(e.key(start, 0))
	queue := []qent{{cfg: start, idx: rootIdx}}
	stats := Stats{}

	if detail, ok := goal(&e.sc, start); ok {
		run, err := e.replay(ar, rootIdx)
		if err != nil {
			return nil, false, nil, err
		}
		return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, ar, nil
	}

	for len(queue) > 0 {
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, ar, nil
		}
		if stats.Visited%cancelInterval == 0 && e.cancelled() {
			stats.Truncated = true
			stats.Cancelled = true
			return &Witness{Kind: kind, Stats: stats}, false, ar, nil
		}
		if stats.Visited > 0 && stats.Visited%progressInterval == 0 {
			// The arena engine interleaves its queue (BFS) or stack (DFS)
			// without tracking depth, so progress reports carry no level.
			e.progress(stats.Visited, -1)
		}
		var cur qent
		if dfs {
			cur = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			cur = queue[0]
			queue = queue[1:]
		}
		stats.Visited++

		for _, act := range e.actions(cur.cfg, int(cur.crashes)) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			idx, fresh := ar.insert(e.key(next, int(crashes)), cur.idx, act)
			if !fresh {
				e.release(next)
				continue
			}
			if detail, ok := goal(&e.sc, next); ok {
				run, err := e.replay(ar, idx)
				if err != nil {
					return nil, false, nil, err
				}
				return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, ar, nil
			}
			queue = append(queue, qent{cfg: next, idx: idx, crashes: crashes})
		}
		e.release(cur.cfg)
	}
	return &Witness{Kind: kind, Stats: stats}, false, ar, nil
}

// replay re-executes the arena path to idx from the initial configuration,
// producing a recorded run.
func (e *Explorer) replay(ar *arena, idx int32) (*sim.Run, error) {
	return e.replayActions(ar.path(idx))
}

// replayActions re-executes an explicit action sequence from the initial
// configuration, producing a recorded run: the shared tail of arena-path
// replay and of the bounded engines' log-reconstructed witnesses.
func (e *Explorer) replayActions(acts []action) (*sim.Run, error) {
	// Always replay on the pointer engine: the Run and its Final
	// configuration escape to callers (state inspection, further Apply
	// calls, event trails), which is exactly the explain/debug surface the
	// packed engine trades away. Verdicts never depend on the engine, so
	// the replayed witness is the same run the packed search found.
	cfg, err := e.initialView()
	if err != nil {
		return nil, err
	}
	run := &sim.Run{Algorithm: e.alg.Name(), Inputs: append([]sim.Value(nil), e.inputs...), Final: cfg}
	// Record the initial silent crashes as events for failure-pattern
	// extraction. They were applied inside initial(); reconstruct them.
	liveSet := make(map[sim.ProcessID]bool, len(e.opts.Live))
	for _, p := range e.opts.Live {
		liveSet[p] = true
	}
	for _, p := range cfg.ProcessIDs() {
		if !liveSet[p] {
			run.Events = append(run.Events, sim.Event{Proc: p, StateKey: cfg.State(p).Key(), Crashed: true, Silent: true})
		}
	}
	for _, act := range acts {
		req := sim.StepRequest{Proc: act.Proc, Crash: act.Crash}
		if act.Crash && act.Omit {
			req.OmitTo = e.omitAll
		}
		faultRequest(&req, act.Fault)
		switch act.Mode {
		case DeliverOldest:
			id, ok := cfg.OldestMessageID(act.Proc)
			if !ok {
				return nil, fmt.Errorf("explore: replay divergence: empty buffer for oldest delivery at %d", act.Proc)
			}
			req.Deliver = []int64{id}
		case DeliverAll:
			req.Deliver = cfg.DeliverAll(act.Proc)
		}
		if e.opts.Oracle != nil {
			req.FD = e.opts.Oracle.Query(act.Proc, cfg.Time(), cfg)
		}
		ev, err := cfg.Apply(req)
		if err != nil {
			return nil, fmt.Errorf("explore: replay failed: %w", err)
		}
		run.Events = append(run.Events, ev)
	}
	var blocked []sim.ProcessID
	for _, p := range cfg.ProcessIDs() {
		if _, decided := cfg.Decision(p); !decided && !cfg.Crashed(p) {
			blocked = append(blocked, p)
		}
	}
	run.Blocked = blocked
	return run, nil
}

// Valence classifies the decision values reachable from the initial
// configuration: the set of values v such that some reachable configuration
// contains a process decided on v. A configuration with two or more
// reachable values is bivalent in the FLP sense. The search stops early
// once `stopAt` distinct values are found (0 = collect every value).
func (e *Explorer) Valence(stopAt int) ([]sim.Value, Stats, error) {
	start, err := e.initial()
	if err != nil {
		return nil, Stats{}, err
	}
	// valenceFrom returns the values already sorted.
	return e.valenceFrom(start, 0, stopAt)
}

// collectDecisions folds cfg's decided values into seen without allocating.
func collectDecisions(seen map[sim.Value]bool, cfg *sim.Configuration) {
	for p := 1; p <= cfg.N(); p++ {
		if v, ok := cfg.Decision(sim.ProcessID(p)); ok {
			seen[v] = true
		}
	}
}
