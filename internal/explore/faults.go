package explore

import (
	"fmt"
	"strconv"
	"strings"

	"kset/internal/sim"
)

// FaultAdversary configures non-crash fault injection for a search: in
// addition to its crash budget, the adversary may schedule fault steps of
// the given model — send omission, receive omission, or Byzantine value
// corruption — against live processes. Each effective fault step charges
// one fault event to its process (see sim.StepRequest); Budget caps the
// events per process and MaxFaulty caps how many distinct processes may
// commit any. The zero value (Model FaultCrash) disables fault branching
// entirely and is bit-identical to the crash-only engine.
type FaultAdversary struct {
	// Model selects the fault actions enumerated; FaultCrash means none.
	Model sim.FaultModel
	// Budget is the per-process fault-event budget. Non-positive values are
	// normalized to 1 when a non-crash Model is selected: the adversary is
	// always budgeted, mirroring the crash budget MaxCrashes.
	Budget int
	// MaxFaulty bounds the number of distinct processes that may commit
	// fault events; 0 means no bound beyond Budget.
	MaxFaulty int
}

// ParseFaults parses the CLI spelling of a fault adversary:
// "model[:budget[:maxfaulty]]", e.g. "send-omission", "receive-omission:2",
// "byzantine:1:1". The empty string (and "crash") selects the crash-only
// engine.
func ParseFaults(s string) (FaultAdversary, error) {
	if s == "" {
		return FaultAdversary{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return FaultAdversary{}, fmt.Errorf("explore: bad fault spec %q (want model[:budget[:maxfaulty]])", s)
	}
	model, err := sim.ParseFaultModel(parts[0])
	if err != nil {
		return FaultAdversary{}, err
	}
	fa := FaultAdversary{Model: model}
	if len(parts) > 1 {
		if fa.Budget, err = strconv.Atoi(parts[1]); err != nil || fa.Budget < 0 {
			return FaultAdversary{}, fmt.Errorf("explore: bad fault budget %q in %q", parts[1], s)
		}
	}
	if len(parts) > 2 {
		if fa.MaxFaulty, err = strconv.Atoi(parts[2]); err != nil || fa.MaxFaulty < 0 {
			return FaultAdversary{}, fmt.Errorf("explore: bad maxfaulty %q in %q", parts[2], s)
		}
	}
	if fa.Model == sim.FaultCrash && (fa.Budget != 0 || fa.MaxFaulty != 0) {
		return FaultAdversary{}, fmt.Errorf("explore: fault spec %q budgets the crash-only model", s)
	}
	return fa, nil
}

// String renders the adversary in ParseFaults form.
func (fa FaultAdversary) String() string {
	if fa.Model == sim.FaultCrash {
		return "crash"
	}
	s := fa.Model.String()
	if fa.Budget != 0 || fa.MaxFaulty != 0 {
		s += ":" + strconv.Itoa(fa.Budget)
	}
	if fa.MaxFaulty != 0 {
		s += ":" + strconv.Itoa(fa.MaxFaulty)
	}
	return s
}

// canFault reports whether the adversary may schedule a fault step for p at
// cfg: a non-crash model is selected, p's budget is not exhausted, and —
// when MaxFaulty bounds the faulty set — p is already faulty or the set has
// room.
func (e *Explorer) canFault(cfg *sim.Configuration, p sim.ProcessID) bool {
	fa := e.opts.Faults
	if fa.Model == sim.FaultCrash {
		return false
	}
	used := cfg.FaultsUsed(p)
	if used >= fa.Budget {
		return false
	}
	return fa.MaxFaulty <= 0 || used > 0 || cfg.FaultyProcesses() < fa.MaxFaulty
}

// faultRequest marks req as act's fault step, the single mapping shared by
// the search hot path (searchCtx.apply) and witness replay (replayActions).
func faultRequest(req *sim.StepRequest, f sim.FaultModel) {
	switch f {
	case sim.FaultSendOmission:
		req.OmitSends = true
	case sim.FaultReceiveOmission:
		req.DropDeliver = true
	case sim.FaultByzantine:
		req.Corrupt = true
	}
}
