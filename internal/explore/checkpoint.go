package explore

// This file implements checkpoint persistence for bounded breadth-first
// searches: Snapshot/Restore on the Explorer plus the automatic
// save-on-truncate / resume-on-start flow driven by Options.Checkpoint
// (see boundedStart and pauseBounded in bounded.go).
//
// A checkpoint is deliberately tiny relative to the search it pauses: the
// level logs (8 bytes per visited configuration) plus a fixed header. The
// visited-key set and the frontier configurations are NOT serialized — both
// regenerate deterministically from the logs in one O(visited) replay pass
// (Explorer.regenerate), which doubles as an integrity check: a log that
// revisits a sealed key or replays an inapplicable action is rejected.
//
// The file format is versioned and checksummed:
//
//	magic "KSETCKP1"
//	u32 format version (1)
//	u32 sim.FingerprintVersion — the revisit-key encoding the logs' dedup
//	    decisions were made under; a mismatch invalidates the checkpoint
//	    because resuming under a different key function would continue with
//	    a different visited quotient than a fresh run
//	u16 goal kind length, kind bytes
//	u64 search digest (algorithm, inputs, live set, crash budget, modes,
//	    reductions, kind — everything that shapes the traversal except the
//	    resumable knobs MaxConfigs/Workers/Store)
//	u64 visited count, u32 frontier level, u32 position within it
//	u32 level count; per level: u32 record count, records (8 bytes each,
//	    recBits encoding)
//	u64 FNV-1a checksum of everything above
//
// Checkpoint files are self-keyed: checkpointFile names them by digest and
// kind, so unrelated searches sharing one checkpoint directory can never
// clobber or accidentally resume each other.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"kset/internal/quarantine"
	"kset/internal/sim"
)

const (
	ckptMagic   = "KSETCKP1"
	ckptVersion = 1
)

// searchDigest fingerprints everything that determines the traversal of a
// search for the given goal kind: the algorithm, inputs, live set, crash
// budget, delivery modes, active reductions, and the goal itself.
// MaxConfigs, Workers, and Store are deliberately excluded — resuming with
// a larger budget, a different worker count, or a different bounded store
// is exactly the point of a checkpoint, and none of them changes results.
func (e *Explorer) searchDigest(kind string) uint64 {
	h := sim.HashSeed()
	h = sim.HashString(h, e.alg.Name())
	h = sim.HashUint(h, uint64(len(e.inputs)))
	for _, v := range e.inputs {
		h = sim.HashUint(h, uint64(v))
	}
	h = sim.HashUint(h, uint64(len(e.opts.Live)))
	for _, p := range e.opts.Live {
		h = sim.HashUint(h, uint64(p))
	}
	h = sim.HashUint(h, uint64(e.opts.MaxCrashes))
	for _, m := range e.opts.Modes {
		h = sim.HashUint(h, uint64(m))
	}
	var flags uint64
	if e.sym != nil {
		flags |= 1
	}
	if e.por {
		flags |= 2
	}
	if e.opts.Oracle != nil {
		// Oracles are opaque; two searches differing only in their oracle
		// share a digest, which the documentation flags as the caller's
		// responsibility (checkpoint directories are per-experiment anyway).
		flags |= 4
	}
	h = sim.HashUint(h, flags)
	// Fault-adversary fields fold in only under a non-crash model, so
	// crash-only digests — and checkpoints recorded before the fault layer
	// existed — are unchanged.
	if fa := e.opts.Faults; fa.Model != sim.FaultCrash {
		h = sim.HashUint(h, uint64(fa.Model))
		h = sim.HashUint(h, uint64(fa.Budget))
		h = sim.HashUint(h, uint64(fa.MaxFaulty))
	}
	h = sim.HashString(h, kind)
	return sim.HashMix(h)
}

// Digest exposes the search digest for the given goal kind ("disagreement"
// or "blocking"): the content address of the search, identical across
// worker counts and store modes. Verdict caches key completed results by it.
func (e *Explorer) Digest(kind string) uint64 {
	return e.searchDigest(kind)
}

// checkpointFile names the checkpoint for this search and goal kind inside
// the configured checkpoint directory.
func (e *Explorer) checkpointFile(kind string) string {
	return filepath.Join(e.opts.Checkpoint, fmt.Sprintf("%016x-%s.ckpt", e.searchDigest(kind), kind))
}

// quarantineFile renames a corrupt file aside (path + ".corrupt", or a
// numbered suffix when that name is already a previous incident's evidence)
// so it can never be read again but stays available for post-mortem
// inspection. A checkpoint is an optimization, never the source of truth —
// the search regenerates everything from the root — so the automatic resume
// path quarantines unreadable files and starts fresh instead of failing the
// search.
func quarantineFile(path string) {
	quarantine.Aside(path)
}

// clearCheckpoint removes the checkpoint for kind after a search ran to
// completion: the paused state it held is obsolete.
func (e *Explorer) clearCheckpoint(kind string) {
	if e.opts.Checkpoint != "" {
		os.Remove(e.checkpointFile(kind))
	}
}

// Snapshot persists the paused state of the explorer's most recent
// truncated bounded search to path. A paused state exists after a bounded
// breadth-first search stopped at MaxConfigs with a retained level log —
// that is, with Options.Checkpoint set or Store == StoreSpill. The search
// resumes from the file via Restore on an explorer of the same instance
// (typically one constructed with a larger MaxConfigs).
func (e *Explorer) Snapshot(path string) error {
	if e.pending == nil {
		return fmt.Errorf("explore: no paused search to snapshot (a bounded BFS must first truncate with a retained level log)")
	}
	return writeCheckpoint(path, e.pending)
}

// Restore loads a checkpoint written by Snapshot (or by the automatic
// Options.Checkpoint flow) and stages it as the explorer's pending paused
// search: the next witness search for the same goal kind resumes from it
// instead of starting at the root. The checkpoint must have been written by
// a search of the same instance — same algorithm, inputs, live set, crash
// budget, modes, and reductions — which Restore verifies via the embedded
// digest.
func (e *Explorer) Restore(path string) error {
	p, err := readCheckpoint(path)
	if err != nil {
		return err
	}
	if want := e.searchDigest(p.kind); p.digest != want {
		return fmt.Errorf("explore: checkpoint %s digest %016x does not match this search instance (%016x); it was written by a different algorithm, inputs, live set, budget, modes, or reductions", path, p.digest, want)
	}
	// Under StoreSpill, move the decoded log back onto disk: the resumed
	// search keeps appending to this sink, and retaining it in memory would
	// silently void the spill contract on exactly the workloads spill
	// exists for.
	if e.opts.Store == StoreSpill {
		ds, err := newDiskSink(e.opts.SpillDir)
		if err != nil {
			return err
		}
		if err := copySink(p.sink, ds); err != nil {
			ds.discard()
			return fmt.Errorf("explore: re-spilling checkpoint %s: %w", path, err)
		}
		p.sink = ds
	}
	// A previously pending paused search is superseded; release its log's
	// resources (its own state was persisted at its pause time when
	// checkpointing is configured).
	if e.pending != nil {
		e.pending.sink.discard()
	}
	e.pending = p
	return nil
}

// copySink replays every level record of src into dst.
func copySink(src, dst levelSink) error {
	for l := 0; l < src.levels(); l++ {
		if err := dst.beginLevel(); err != nil {
			return err
		}
		for j, n := 0, src.levelLen(l); j < n; j++ {
			rec, err := src.record(l, j)
			if err != nil {
				return err
			}
			if err := dst.append(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCheckpoint serializes p atomically (temp file + rename).
func writeCheckpoint(path string, p *pausedSearch) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("explore: checkpoint dir: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("explore: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := encodeCheckpoint(tmp, p); err != nil {
		tmp.Close()
		return fmt.Errorf("explore: writing checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("explore: writing checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("explore: writing checkpoint %s: %w", path, err)
	}
	return nil
}

func encodeCheckpoint(f io.Writer, p *pausedSearch) error {
	h := fnv.New64a()
	bw := bufio.NewWriter(f)
	w := &ckptWriter{w: io.MultiWriter(bw, h)}
	w.bytes([]byte(ckptMagic))
	w.u32(ckptVersion)
	w.u32(sim.FingerprintVersion)
	w.u16(uint16(len(p.kind)))
	w.bytes([]byte(p.kind))
	w.u64(p.digest)
	w.u64(uint64(p.visited))
	w.u32(uint32(p.level))
	w.u32(uint32(p.pos))
	n := p.sink.levels()
	w.u32(uint32(n))
	for l := 0; l < n; l++ {
		cnt := p.sink.levelLen(l)
		w.u32(uint32(cnt))
		for j := 0; j < cnt; j++ {
			rec, err := p.sink.record(l, j)
			if err != nil {
				return err
			}
			w.u64(recBits(rec))
		}
	}
	if w.err != nil {
		return w.err
	}
	// The checksum trailer is not part of its own input.
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// readCheckpoint parses a checkpoint file into a pausedSearch whose level
// logs live in a memSink.
func readCheckpoint(path string) (*pausedSearch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("explore: checkpoint: %w", err)
	}
	defer f.Close()
	p, err := decodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("explore: reading checkpoint %s: %w", path, err)
	}
	return p, nil
}

func decodeCheckpoint(f io.Reader) (*pausedSearch, error) {
	h := fnv.New64a()
	br := bufio.NewReader(f)
	r := &ckptReader{r: io.TeeReader(br, h)}
	magic := r.bytes(len(ckptMagic))
	if r.err == nil && string(magic) != ckptMagic {
		return nil, fmt.Errorf("not a checkpoint file (bad magic)")
	}
	if v := r.u32(); r.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("unsupported checkpoint format version %d (want %d)", v, ckptVersion)
	}
	if v := r.u32(); r.err == nil && v != sim.FingerprintVersion {
		return nil, fmt.Errorf("checkpoint was written under fingerprint encoding v%d, this binary uses v%d; the paused search's dedup decisions no longer apply — restart it", v, sim.FingerprintVersion)
	}
	kind := string(r.bytes(int(r.u16())))
	p := &pausedSearch{kind: kind}
	p.digest = r.u64()
	p.visited = int(r.u64())
	p.level = int(r.u32())
	p.pos = int(r.u32())
	n := int(r.u32())
	sink := &memSink{}
	for l := 0; l < n && r.err == nil; l++ {
		cnt := int(r.u32())
		if err := sink.beginLevel(); err != nil {
			return nil, err
		}
		// Cap the preallocation: cnt comes from unvalidated file bytes (the
		// checksum is only verifiable after the whole stream is read), and a
		// corrupt count must surface as a decode error, not a giant
		// allocation. The append loop below stops at the sticky read error,
		// so an honest large level still loads fine.
		prealloc := cnt
		if prealloc > 1<<20 {
			prealloc = 1 << 20
		}
		recs := make([]uint64, 0, prealloc)
		for j := 0; j < cnt && r.err == nil; j++ {
			recs = append(recs, r.u64())
		}
		sink.recs[l] = recs
	}
	if r.err != nil {
		return nil, r.err
	}
	want := h.Sum64()
	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("truncated checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("checksum mismatch (file corrupt)")
	}
	p.sink = sink
	return p, nil
}

// ckptWriter/ckptReader are minimal little-endian codec helpers with sticky
// errors, so the encode/decode paths read as flat field lists.
type ckptWriter struct {
	w   io.Writer
	err error
}

func (c *ckptWriter) bytes(b []byte) {
	if c.err == nil {
		_, c.err = c.w.Write(b)
	}
}
func (c *ckptWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.bytes(b[:])
}
func (c *ckptWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.bytes(b[:])
}
func (c *ckptWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.bytes(b[:])
}

type ckptReader struct {
	r   io.Reader
	err error
}

func (c *ckptReader) bytes(n int) []byte {
	b := make([]byte, n)
	if c.err == nil {
		_, c.err = io.ReadFull(c.r, b)
	}
	return b
}
func (c *ckptReader) u16() uint16 { return binary.LittleEndian.Uint16(c.bytes(2)) }
func (c *ckptReader) u32() uint32 { return binary.LittleEndian.Uint32(c.bytes(4)) }
func (c *ckptReader) u64() uint64 { return binary.LittleEndian.Uint64(c.bytes(8)) }
