package explore

import (
	"math"
	"math/bits"
	"reflect"
	"sync"
	"testing"

	"kset/internal/sim"
	"kset/internal/testutil"
)

// TestShardOwnerProperty checks the ownership function's contract over
// boundary keys and a deterministic pseudo-random sample: every key has
// exactly one owner (ShardOwner is total and in-range) at any shard count,
// ownership is stable, one shard owns everything at shards == 1, and the
// fixed-point arithmetic matches the wide-integer reference
// floor(top32(key) * shards / 2^32).
func TestShardOwnerProperty(t *testing.T) {
	keys := []uint64{
		0, 1, math.MaxUint64, math.MaxUint64 - 1,
		1<<32 - 1, 1 << 32, 1<<32 + 1, 1 << 63, 1<<63 - 1,
		0xffffffff00000000, 0x00000000ffffffff,
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys = append(keys, x)
	}
	for _, shards := range []int{1, 2, 3, 4, 5, 7, 8, 13, 64, 1000} {
		counts := make([]int, shards)
		for _, key := range keys {
			o := ShardOwner(key, shards)
			if o < 0 || o >= shards {
				t.Fatalf("ShardOwner(%#x, %d) = %d out of range", key, shards, o)
			}
			if o2 := ShardOwner(key, shards); o2 != o {
				t.Fatalf("ShardOwner(%#x, %d) unstable: %d then %d", key, shards, o, o2)
			}
			hi, _ := bits.Mul64(key>>32<<32, uint64(shards))
			if want := int(hi); o != want {
				t.Fatalf("ShardOwner(%#x, %d) = %d, wide reference %d", key, shards, o, want)
			}
			counts[o]++
		}
		if shards == 1 && counts[0] != len(keys) {
			t.Fatalf("single shard owns %d of %d keys", counts[0], len(keys))
		}
		// The sample is splitmix-diffused, as real fingerprints are; every
		// shard of a reasonable count should own a nontrivial slice.
		if shards <= 8 {
			for o, c := range counts {
				if c == 0 {
					t.Fatalf("shard %d of %d owns no keys from a %d-key uniform sample", o, shards, len(keys))
				}
			}
		}
	}
}

// runShardedConsensusFailure drives a full sharded consensus-failure search
// in-process: a coordinator plus `shards` goroutine workers, each on its own
// explorer from mk, over a LocalShardHub. It mirrors the
// kset.Searcher.FindConsensusFailureSharded composition (disagreement
// phase, then blocking even when disagreement truncated).
func runShardedConsensusFailure(mk func() *Explorer, shards int) (*Witness, bool, error) {
	hub := NewLocalShardHub(shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			if err := mk().ShardWorker(shard, shards, hub.Exchange(shard)); err != nil {
				hub.Fail(err)
			}
		}(i)
	}
	coord := mk()
	w, found, err := func() (*Witness, bool, error) {
		defer hub.Finish()
		w, found, err := coord.ShardSearch("disagreement", hub)
		if err != nil {
			hub.Fail(err)
			return nil, false, err
		}
		if found {
			return w, true, nil
		}
		w, found, err = coord.ShardSearch("blocking", hub)
		if err != nil {
			hub.Fail(err)
		}
		return w, found, err
	}()
	wg.Wait()
	return w, found, err
}

// plainConsensusFailure is the single-process reference: FindDisagreement,
// then FindBlocking on the same explorer — the FindConsensusFailure shape.
func plainConsensusFailure(e *Explorer) (*Witness, bool, error) {
	w, found, err := e.FindDisagreement()
	if err != nil || found {
		return w, found, err
	}
	return e.FindBlocking()
}

// shardDiffOpts is the reduction/store matrix of the sharded differential
// tests.
type shardDiffOpts struct {
	name     string
	symmetry bool
	por      bool
	store    Store
}

func shardDiffMatrix() []shardDiffOpts {
	return []shardDiffOpts{
		{name: "plain", store: StoreInMemory},
		{name: "sym", symmetry: true, store: StoreInMemory},
		{name: "por", por: true, store: StoreInMemory},
		{name: "sym-por-spill", symmetry: true, por: true, store: StoreSpill},
	}
}

func (d diffInstance) explorerOpts(o shardDiffOpts, maxConfigs int) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Symmetry:   o.symmetry,
		POR:        o.por,
		Store:      o.store,
		MaxConfigs: maxConfigs,
		Workers:    1,
	})
}

// TestShardedSearchMatchesSequential is the sharded differential matrix:
// instances × reductions/stores × shard counts {1, 2, 3, 4}, asserting the
// sharded search reproduces the single-process consensus-failure search
// bit-identically — found flag, witness kind/detail, scheduled witness run,
// and stats — and that found witnesses replay to genuine violations.
func TestShardedSearchMatchesSequential(t *testing.T) {
	for _, d := range diffInstances() {
		for _, o := range shardDiffMatrix() {
			t.Run(d.name+"/"+o.name, func(t *testing.T) {
				want, wantFound, err := plainConsensusFailure(d.explorerOpts(o, 0))
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 3, 4} {
					got, found, err := runShardedConsensusFailure(func() *Explorer {
						return d.explorerOpts(o, 0)
					}, shards)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if found != wantFound {
						t.Fatalf("shards=%d: found=%t, sequential says %t", shards, found, wantFound)
					}
					if got.Kind != want.Kind || got.Detail != want.Detail {
						t.Fatalf("shards=%d: witness (%s, %q), sequential (%s, %q)",
							shards, got.Kind, got.Detail, want.Kind, want.Detail)
					}
					if got.Stats != want.Stats {
						t.Fatalf("shards=%d: stats %+v, sequential %+v", shards, got.Stats, want.Stats)
					}
					if found {
						if runSignature(got.Run) != runSignature(want.Run) {
							t.Fatalf("shards=%d: witness run diverged:\n got %s\nwant %s",
								shards, runSignature(got.Run), runSignature(want.Run))
						}
						testutil.RevalidateWitness(t, got.Kind, got.Run)
					}
				}
			})
		}
	}
}

// TestShardedSearchTruncationParity pins the budget arithmetic: truncated
// sharded searches (including mid-level truncation, where the budget runs
// out partway through a frontier) report exactly the sequential engine's
// visited counts and flags.
func TestShardedSearchTruncationParity(t *testing.T) {
	d := diffInstances()[1] // minwait-n3-crash: a larger space with witnesses
	for _, maxConfigs := range []int{1, 7, 57, 200, 1000} {
		seq := d.explorerOpts(shardDiffOpts{store: StoreFrontierOnly}, maxConfigs)
		want, wantFound, err := plainConsensusFailure(seq)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3} {
			got, found, err := runShardedConsensusFailure(func() *Explorer {
				return d.explorerOpts(shardDiffOpts{store: StoreFrontierOnly}, maxConfigs)
			}, shards)
			if err != nil {
				t.Fatalf("max=%d shards=%d: %v", maxConfigs, shards, err)
			}
			if found != wantFound || got.Stats != want.Stats {
				t.Fatalf("max=%d shards=%d: (found=%t, %+v), sequential (found=%t, %+v)",
					maxConfigs, shards, found, got.Stats, wantFound, want.Stats)
			}
		}
	}
}

// TestShardedSearchLevelProfile pins the per-level progress stream: the
// coordinator reports the same (visited, level) sequence as the
// single-process bounded engine — the level profile the multi-process CI
// smoke diffs too. Both sides run with a retained sink (StoreSpill) so the
// single-process engine builds its witness directly instead of re-searching,
// which would emit the profile twice.
func (d diffInstance) spillExplorer(dir string, prog func(v, l int)) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Store:      StoreSpill,
		SpillDir:   dir,
		Workers:    1,
		OnProgress: prog,
	})
}

func TestShardedSearchLevelProfile(t *testing.T) {
	for _, d := range []diffInstance{diffInstances()[0], diffInstances()[1]} {
		t.Run(d.name, func(t *testing.T) {
			var wantProg, gotProg [][2]int
			seq := d.spillExplorer(t.TempDir(), func(v, l int) {
				wantProg = append(wantProg, [2]int{v, l})
			})
			_, wantFound, err := plainConsensusFailure(seq)
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			dir := t.TempDir()
			_, found, err := runShardedConsensusFailure(func() *Explorer {
				return d.spillExplorer(dir, func(v, l int) {
					mu.Lock()
					gotProg = append(gotProg, [2]int{v, l})
					mu.Unlock()
				})
			}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if found != wantFound {
				t.Fatalf("found=%t, sequential says %t", found, wantFound)
			}
			if !reflect.DeepEqual(gotProg, wantProg) {
				t.Fatalf("level profile diverged:\n got %v\nwant %v", gotProg, wantProg)
			}
		})
	}
}

// TestShardCodecRoundTrip pins the exchange codec on a representative
// payload, including empty buckets, goal candidates with details, and a
// halt seal.
func TestShardCodecRoundTrip(t *testing.T) {
	batches := [][]ShardCandidate{
		{
			{Key: 1, Ord: 2, Bits: 3},
			{Key: math.MaxUint64, Ord: 1 << 40, Bits: 1 << 56, Goal: true, Detail: "decisions [0 1] reached"},
		},
		nil,
		{{Key: 0xdeadbeef, Ord: 0, Bits: 0}},
	}
	enc, err := EncodeShardBatches(batches)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeShardBatches(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(batches) {
		t.Fatalf("decoded %d batches, want %d", len(dec), len(batches))
	}
	for i := range batches {
		if len(batches[i]) == 0 && len(dec[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec[i], batches[i]) {
			t.Fatalf("batch %d diverged: %+v vs %+v", i, dec[i], batches[i])
		}
	}
	cands, err := EncodeShardCandidates(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DecodeShardCandidates(cands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dc, batches[0]) {
		t.Fatalf("candidate list diverged: %+v vs %+v", dc, batches[0])
	}
	for _, seal := range []LevelSeal{
		{},
		{Halt: true},
		{Records: []uint64{1, 2, 3, math.MaxUint64}},
	} {
		got, err := DecodeLevelSeal(EncodeLevelSeal(seal))
		if err != nil {
			t.Fatal(err)
		}
		if got.Halt != seal.Halt || !reflect.DeepEqual(append([]uint64{}, got.Records...), append([]uint64{}, seal.Records...)) {
			t.Fatalf("seal diverged: %+v vs %+v", got, seal)
		}
	}
}

// TestShardCodecRejectsCorrupt spot-checks the decoder's defenses; the fuzz
// target explores far beyond these.
func TestShardCodecRejectsCorrupt(t *testing.T) {
	valid, err := EncodeShardBatches([][]ShardCandidate{{{Key: 1, Ord: 2, Bits: 3, Detail: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{},
		[]byte("KSB1"),
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0),
	}
	hdr := append([]byte{}, valid...)
	hdr[0] = 'X'
	bad = append(bad, hdr)
	for i, data := range bad {
		if _, err := DecodeShardBatches(data); err == nil {
			t.Fatalf("corrupt input %d decoded without error", i)
		}
	}
	if _, err := DecodeShardCandidates([]byte("KSC1")); err == nil {
		t.Fatal("truncated candidate list decoded without error")
	}
	if _, err := DecodeLevelSeal([]byte("KSS1\x02\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad halt flag decoded without error")
	}
}

// FuzzShardCodec asserts the exchange codec never panics or over-allocates
// on arbitrary input, and that anything that decodes re-encodes to a
// decodable equal value (a full round-trip law on the valid subset).
func FuzzShardCodec(f *testing.F) {
	if enc, err := EncodeShardBatches([][]ShardCandidate{
		{{Key: 1, Ord: 2, Bits: 3, Goal: true, Detail: "d"}},
		nil,
	}); err == nil {
		f.Add(enc)
	}
	if enc, err := EncodeShardCandidates([]ShardCandidate{{Key: 9, Ord: 8, Bits: 7}}); err == nil {
		f.Add(enc)
	}
	f.Add(EncodeLevelSeal(LevelSeal{Records: []uint64{1, 2, 3}}))
	f.Add(EncodeLevelSeal(LevelSeal{Halt: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if batches, err := DecodeShardBatches(data); err == nil {
			enc, err := EncodeShardBatches(batches)
			if err != nil {
				t.Fatalf("re-encoding decoded batches: %v", err)
			}
			again, err := DecodeShardBatches(enc)
			if err != nil {
				t.Fatalf("decoding re-encoded batches: %v", err)
			}
			if len(again) != len(batches) {
				t.Fatalf("round trip changed batch count: %d vs %d", len(again), len(batches))
			}
		}
		if cands, err := DecodeShardCandidates(data); err == nil {
			enc, err := EncodeShardCandidates(cands)
			if err != nil {
				t.Fatalf("re-encoding decoded candidates: %v", err)
			}
			if again, err := DecodeShardCandidates(enc); err != nil || len(again) != len(cands) {
				t.Fatalf("candidate round trip: err=%v len %d vs %d", err, len(again), len(cands))
			}
		}
		if seal, err := DecodeLevelSeal(data); err == nil {
			if again, err := DecodeLevelSeal(EncodeLevelSeal(seal)); err != nil || again.Halt != seal.Halt || len(again.Records) != len(seal.Records) {
				t.Fatalf("seal round trip: err=%v %+v vs %+v", err, again, seal)
			}
		}
	})
}

// TestLocalShardHubFailUnblocks asserts Fail poisons every blocked
// participant instead of deadlocking the rendezvous.
func TestLocalShardHubFailUnblocks(t *testing.T) {
	hub := NewLocalShardHub(2)
	if err := hub.StartPhase("disagreement", false); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	ex := hub.Exchange(0)
	if _, err := ex.NextPhase(); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Blocks: shard 1 never posts.
		_, err := ex.Exchange(0, make([][]ShardCandidate, 2))
		done <- err
	}()
	go func() {
		_, err := hub.GatherWinners(0)
		done <- err
	}()
	hub.Fail(errDeliberate)
	for i := 0; i < 2; i++ {
		if err := <-done; err == nil {
			t.Fatal("blocked participant returned nil after Fail")
		}
	}
	if _, _, err := hub.TryPhase(0); err == nil {
		t.Fatal("TryPhase returned nil after Fail")
	}
}

var errDeliberate = errDeliberateType{}

type errDeliberateType struct{}

func (errDeliberateType) Error() string { return "deliberate failure" }
