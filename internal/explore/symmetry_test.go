package explore

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
	"kset/internal/testutil"
)

// explorerSym builds the instance's explorer with symmetry reduction and an
// explicit worker count.
func (d diffInstance) explorerSym(workers int) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Workers:    workers,
		Symmetry:   true,
	})
}

// symInstances extends the differential suite with the repeated-input
// instances where the stabilizer is non-trivial and orbit reduction
// actually collapses configurations. uniform-t2 is the uniform-input
// Theorem 2 shape (one late crash among four interchangeable processes).
func symInstances() []diffInstance {
	return append(diffInstances(),
		diffInstance{"minwait-n3-uniform", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0}, []sim.ProcessID{1, 2, 3}, 1},
		diffInstance{"minwait-n4-uniform-t2", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0, 0}, []sim.ProcessID{1, 2, 3, 4}, 1},
		diffInstance{"minwait-n4-twoblock", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 1, 1}, []sim.ProcessID{1, 2, 3, 4}, 0},
		diffInstance{"firstheard-n4-uniform", algorithms.FirstHeard{}, []sim.Value{3, 3, 3, 3}, []sim.ProcessID{1, 2, 3, 4}, 0},
		diffInstance{"flpkset-n3-uniform", algorithms.FLPKSet{F: 1}, []sim.Value{2, 2, 2}, []sim.ProcessID{1, 2, 3}, 0},
		// FLPKSet with a non-trivial stabilizer across MIXED inputs is the
		// shape where its minimum-id decide rule is not renaming-equivariant
		// (component {1,2} decides x_1, its renaming {3,2} decides x_2):
		// FLPKSet opts out of SymHasher64, so parity must hold because the
		// flag collapses nothing for it — this instance guards that opt-out.
		diffInstance{"flpkset-n3-mixed", algorithms.FLPKSet{F: 1}, []sim.Value{0, 1, 0}, []sim.ProcessID{1, 2, 3}, 0},
		diffInstance{"decideown-n3-uniform", algorithms.DecideOwn{}, []sim.Value{0, 0, 0}, []sim.ProcessID{1, 2, 3}, 0},
	)
}

// TestSymmetryVerdictParity is the acceptance gate of the symmetry layer:
// for every instance of the extended differential suite and both witness
// goals, the symmetry-reduced search must (1) reach the same
// possible/impossible verdict as the plain search, (2) visit at most as
// many configurations, and (3) emit witnesses that independently revalidate
// — the replayed run concretely exhibits the violation.
func TestSymmetryVerdictParity(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	for _, d := range symInstances() {
		for _, g := range goals {
			t.Run(d.name+"/"+g.name, func(t *testing.T) {
				plainW, plainFound, _, err := d.explorerWorkers(1).searchArena(g.goal, g.name)
				if err != nil {
					t.Fatal(err)
				}
				symW, symFound, _, err := d.explorerSym(1).searchArena(g.goal, g.name)
				if err != nil {
					t.Fatal(err)
				}
				if plainW.Stats.Truncated || symW.Stats.Truncated {
					t.Fatalf("instance not exhaustive (plain %d, sym %d)", plainW.Stats.Visited, symW.Stats.Visited)
				}
				if symFound != plainFound {
					t.Fatalf("verdict diverged: symmetry found=%t, plain found=%t", symFound, plainFound)
				}
				if symW.Stats.Visited > plainW.Stats.Visited {
					t.Fatalf("symmetry visited %d > plain %d", symW.Stats.Visited, plainW.Stats.Visited)
				}
				if symFound {
					testutil.RevalidateWitness(t, symW.Kind, symW.Run)
				}
			})
		}
	}
}

// TestSymmetryStrictReductionUniformTheorem2 pins the asymptotic payoff:
// on the uniform-input Theorem 2 instance the orbit-reduced exhaustive
// search must visit strictly fewer — in fact at least 2x fewer —
// configurations than the plain search.
func TestSymmetryStrictReductionUniformTheorem2(t *testing.T) {
	d := diffInstance{"minwait-n4-uniform-t2", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0, 0}, []sim.ProcessID{1, 2, 3, 4}, 1}
	plainW, plainFound, _, err := d.explorerWorkers(1).searchArena(disagreementGoal, "disagreement")
	if err != nil {
		t.Fatal(err)
	}
	symW, symFound, _, err := d.explorerSym(1).searchArena(disagreementGoal, "disagreement")
	if err != nil {
		t.Fatal(err)
	}
	if plainFound || symFound {
		t.Fatalf("uniform inputs cannot disagree (validity): plain=%t sym=%t", plainFound, symFound)
	}
	if plainW.Stats.Truncated || symW.Stats.Truncated {
		t.Fatal("search truncated; raise MaxConfigs")
	}
	if 2*symW.Stats.Visited > plainW.Stats.Visited {
		t.Fatalf("expected >= 2x node reduction: symmetry visited %d, plain visited %d",
			symW.Stats.Visited, plainW.Stats.Visited)
	}
	t.Logf("uniform Theorem 2 instance: plain %d nodes, symmetry %d nodes (%.1fx reduction)",
		plainW.Stats.Visited, symW.Stats.Visited, float64(plainW.Stats.Visited)/float64(symW.Stats.Visited))
}

// TestSymmetryParallelMatchesSerial asserts that the level-synchronous
// parallel frontier with symmetry reduction produces results bit-identical
// to the serial symmetry-reduced search at every worker count: the claim
// arbitration is key-agnostic, so the PR 2 determinism guarantee carries
// over to orbit-canonical keys. Run under -race in CI.
func TestSymmetryParallelMatchesSerial(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	for _, d := range symInstances() {
		for _, g := range goals {
			t.Run(d.name+"/"+g.name, func(t *testing.T) {
				seqW, seqFound, seqAr, err := d.explorerSym(1).searchArena(g.goal, g.name)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4} {
					parW, parFound, parAr, err := d.explorerSym(workers).searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					if parFound != seqFound {
						t.Fatalf("workers=%d: found=%t, serial found=%t", workers, parFound, seqFound)
					}
					if parW.Stats != seqW.Stats {
						t.Fatalf("workers=%d: stats %+v, serial %+v", workers, parW.Stats, seqW.Stats)
					}
					if seqFound {
						if parW.Detail != seqW.Detail {
							t.Fatalf("workers=%d: detail %q, serial %q", workers, parW.Detail, seqW.Detail)
						}
						if got, want := runSignature(parW.Run), runSignature(seqW.Run); got != want {
							t.Fatalf("workers=%d: witness run diverged:\n got %s\nwant %s", workers, got, want)
						}
						continue
					}
					if parAr.visited.Len() != seqAr.visited.Len() || len(parAr.nodes) != len(seqAr.nodes) {
						t.Fatalf("workers=%d: visited %d nodes %d, serial visited %d nodes %d",
							workers, parAr.visited.Len(), len(parAr.nodes), seqAr.visited.Len(), len(seqAr.nodes))
					}
					seqAr.visited.Range(func(key uint64) bool {
						if !parAr.visited.Contains(key) {
							t.Fatalf("workers=%d: parallel search missed visited key %#x", workers, key)
						}
						return true
					})
				}
			})
		}
	}
}

// TestSymmetryValenceParity asserts that valence classification — the
// engine behind E6 and the critical-step analysis — returns the same
// reachable decision values with and without symmetry reduction (decision
// values are orbit-invariant: renamings permute which process holds a
// decision, never the value).
func TestSymmetryValenceParity(t *testing.T) {
	for _, d := range symInstances() {
		t.Run(d.name, func(t *testing.T) {
			plainVals, plainStats, err := d.explorerWorkers(1).Valence(0)
			if err != nil {
				t.Fatal(err)
			}
			symVals, symStats, err := d.explorerSym(1).Valence(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(plainVals) != len(symVals) {
				t.Fatalf("valence diverged: plain %v, symmetry %v", plainVals, symVals)
			}
			for i := range plainVals {
				if plainVals[i] != symVals[i] {
					t.Fatalf("valence diverged: plain %v, symmetry %v", plainVals, symVals)
				}
			}
			if symStats.Visited > plainStats.Visited {
				t.Fatalf("symmetry valence visited %d > plain %d", symStats.Visited, plainStats.Visited)
			}
		})
	}
}

// TestSymmetryTrivialStabilizerCollisionCorpus asserts that on the original
// differential suite — whose distinct proposals make the stabilizer trivial
// — the orbit-canonical key distinguishes exactly the configurations the
// legacy string key does: symmetry reduction introduces no collisions
// beyond the plain fingerprint's on the existing corpus.
func TestSymmetryTrivialStabilizerCollisionCorpus(t *testing.T) {
	for _, d := range diffInstances() {
		t.Run(d.name, func(t *testing.T) {
			const maxConfigs = 400000
			legacy := enumerate(t, d.explorer(), false, maxConfigs)
			e := d.explorerSym(1)
			start, err := e.initial()
			if err != nil {
				t.Fatal(err)
			}
			type qent struct {
				cfg     *sim.Configuration
				crashes int
			}
			reached := map[string]bool{legacyKey(start, 0): true}
			visited := map[uint64]bool{e.key(start, 0): true}
			queue := []qent{{cfg: start}}
			for len(queue) > 0 {
				if len(reached) > maxConfigs {
					t.Fatalf("state space exceeds %d configurations", maxConfigs)
				}
				cur := queue[0]
				queue = queue[1:]
				for _, act := range e.actions(cur.cfg, cur.crashes) {
					next, ok := e.apply(cur.cfg, act)
					if !ok {
						continue
					}
					crashes := cur.crashes
					if act.Crash {
						crashes++
					}
					if visited[e.key(next, crashes)] {
						e.release(next)
						continue
					}
					visited[e.key(next, crashes)] = true
					reached[legacyKey(next, crashes)] = true
					queue = append(queue, qent{cfg: next, crashes: crashes})
				}
			}
			if len(reached) != len(legacy) {
				t.Fatalf("trivial-stabilizer canonical search reached %d configurations, legacy %d",
					len(reached), len(legacy))
			}
			for key := range legacy {
				if !reached[key] {
					t.Fatalf("canonical search missed configuration %s", key)
				}
			}
		})
	}
}
