package explore

// Multi-process sharded exploration.
//
// The level-synchronous bounded BFS of bounded.go distributes naturally:
// partition the fingerprint space across N shards by key top bits
// (ShardOwner), let each shard expand the frontier states it owns, and
// exchange the successor candidates so every candidate is deduplicated by
// the shard that owns its key. One coordinator sequences the levels and is
// the single authority for goal hits, truncation, and statistics; it holds
// no configurations at all — only the visited-key set of sealed winners and
// the 8-byte generation records needed to read a witness path back.
//
// Per level the protocol is:
//
//  1. expand — each worker expands its owned slice of the frontier exactly
//     as the serial engine would (same action enumeration, same sealed-key
//     skip, same goal evaluation), tagging every surviving candidate with
//     the deterministic order key ord = parentPos<<ordShift | actionIndex
//     used by the in-process parallel engine.
//  2. exchange — candidates are batched by owner (ShardOwner of the
//     candidate key) and routed through the hub; each shard receives every
//     candidate it owns, from all workers.
//  3. dedup — the owner sorts its candidates by ord and keeps the first
//     per key: exactly the min-ord claim rule of parallel.go's claim
//     table, so the surviving candidate set is bit-identical to the
//     single-process search at any shard count.
//  4. seal — the coordinator gathers the winner lists (disjoint by
//     construction: each key has one owner), merges them by ord — the
//     sequential insertion order — appends the generation records, applies
//     the goal/budget arithmetic of runBoundedParallel, and publishes the
//     sealed record list. Workers materialize the next frontier from the
//     sealed records, which keeps frontier positions identical everywhere.
//
// Workers and coordinator compute the exhaustion and budget-truncation
// conditions from identical inputs (same MaxConfigs, same per-level
// frontier and visited counts), so they agree on when a phase ends without
// any extra control message; goal hits and cancellation end a phase early
// through an explicit Halt seal. A search (FindConsensusFailure shape) is a
// sequence of phases — one per goal kind — announced to the workers by the
// coordinator.
//
// The hub is transport-agnostic: LocalShardHub implements the rendezvous
// in-process (goroutine workers, tests, and experiment E15), and
// internal/service wraps the same hub behind localhost HTTP for the
// multi-process `-shards N` mode, using the length-prefixed binary codec of
// shardcodec.go.

import (
	"fmt"
	"sort"
	"sync"

	"kset/internal/sim"
)

// ShardOwner maps a fingerprint key to its owning shard: the fixed-point
// product floor(top32(key) · shards / 2^32). Every key has exactly one
// owner in [0, shards) at any shard count, ownership is consistent (a
// function of the key alone), and keys spread evenly because fingerprints
// are splitmix-diffused. shards must be >= 1; one shard owns everything.
func ShardOwner(key uint64, shards int) int {
	return int((key >> 32) * uint64(shards) >> 32)
}

// ShardCandidate is one successor produced by frontier expansion, routed to
// the shard owning Key for deduplication. Bits is the packed levelRec
// (parent frontier position + generating action) appended to the level log
// if the candidate wins; Ord is the deterministic order key
// parentPos<<ordShift | actionIndex that makes dedup and level-merge
// reproduce the sequential insertion order exactly.
type ShardCandidate struct {
	Key    uint64
	Ord    uint64
	Bits   uint64
	Goal   bool
	Detail string
}

// LevelSeal closes one exchange round. Records lists the packed generation
// records of the level's winners in sequential insertion order — the next
// frontier, which every worker materializes identically. Halt ends the
// phase instead (goal hit, cancellation, or mid-level truncation); Records
// is empty then.
type LevelSeal struct {
	Records []uint64
	Halt    bool
}

// ShardPhase announces one goal search of a phase sequence to the workers.
// RootHit means the coordinator found the goal on the root configuration
// and the phase needs no exploration. Done means the sequence is over and
// workers should exit.
type ShardPhase struct {
	Kind    string
	RootHit bool
	Done    bool
}

// ShardExchange is a worker's stateful handle to the exchange protocol. The
// handle tracks the phase cursor internally: NextPhase advances it, and the
// level-scoped calls implicitly address the current phase.
type ShardExchange interface {
	// NextPhase blocks until the coordinator announces the next phase (or
	// the end of the sequence) and advances the handle's phase cursor.
	NextPhase() (ShardPhase, error)
	// Exchange posts this worker's candidates batched by owner
	// (len(byOwner) == shards) and blocks until every worker has posted,
	// returning all candidates owned by this shard.
	Exchange(level int, byOwner [][]ShardCandidate) ([]ShardCandidate, error)
	// SubmitWinners posts this shard's deduplicated winners and blocks
	// until the coordinator seals the level.
	SubmitWinners(level int, winners []ShardCandidate) (LevelSeal, error)
}

// ShardHub is the coordinator's side of the rendezvous.
type ShardHub interface {
	// StartPhase announces the next phase of the sequence.
	StartPhase(kind string, rootHit bool) error
	// GatherWinners blocks until every shard has submitted its winner list
	// for the level and returns the lists indexed by shard.
	GatherWinners(level int) ([][]ShardCandidate, error)
	// Seal publishes the level's seal to the workers.
	Seal(level int, seal LevelSeal) error
	// Finish announces the end of the phase sequence.
	Finish()
	// Fail poisons the hub: every pending and future call on any side
	// returns the error, so no participant blocks forever after one fails.
	Fail(err error)
}

// goalForKind maps a phase kind to its witness predicate.
func goalForKind(kind string) (goalFunc, error) {
	switch kind {
	case "disagreement":
		return disagreementGoal, nil
	case "blocking":
		return blockingGoal, nil
	}
	return nil, fmt.Errorf("explore: unknown shard phase kind %q", kind)
}

// shardPrecheck rejects option combinations the sharded engine does not
// support: DFS has no level structure to exchange, and checkpoint
// pause/resume of a distributed search is future work — reject it loudly
// rather than silently writing single-process checkpoints that a resumed
// sharded search could not honor.
func (e *Explorer) shardPrecheck(shards int) error {
	if shards < 1 {
		return fmt.Errorf("explore: shard count %d out of range", shards)
	}
	if e.opts.Strategy == "dfs" {
		return fmt.Errorf("explore: sharded search requires the BFS strategy")
	}
	if e.opts.Checkpoint != "" {
		return fmt.Errorf("explore: sharded search does not support Options.Checkpoint")
	}
	return nil
}

// ShardSearch runs one goal search as the coordinator of a sharded
// exploration. It mirrors searchBounded/runBoundedParallel exactly — same
// visited arithmetic, same truncation and cancellation points, same
// progress callbacks — but receives each level's deduplicated winners from
// the hub instead of expanding configurations itself. The returned Witness,
// found flag, and Stats are bit-identical to the single-process search of
// the same instance and options.
func (e *Explorer) ShardSearch(kind string, hub ShardHub) (*Witness, bool, error) {
	if err := e.shardPrecheck(1); err != nil {
		return nil, false, err
	}
	goal, err := goalForKind(kind)
	if err != nil {
		return nil, false, err
	}
	start, err := e.initial()
	if err != nil {
		return nil, false, err
	}
	rootKey := e.key(start, 0)
	detail, rootHit := goal(&e.sc, start)
	e.release(start)
	if err := hub.StartPhase(kind, rootHit); err != nil {
		return nil, false, err
	}
	if rootHit {
		run, err := e.replayActions(nil)
		if err != nil {
			return nil, false, err
		}
		return &Witness{Kind: kind, Run: run, Detail: detail}, true, nil
	}

	// The coordinator retains every level's records so a goal hit reads
	// the witness path straight off — no re-search is ever needed.
	var sink levelSink
	if e.opts.Store == StoreSpill {
		ds, err := newDiskSink(e.opts.SpillDir)
		if err != nil {
			return nil, false, err
		}
		sink = ds
	} else {
		sink = &memSink{}
	}
	defer sink.discard()

	vis := newVisitedSet()
	vis.Insert(rootKey)
	var stats Stats
	frontierLen := 1
	level := 0
	for frontierLen > 0 {
		if err := sink.beginLevel(); err != nil {
			return nil, false, err
		}
		remaining := e.opts.MaxConfigs - stats.Visited
		if remaining <= 0 {
			// Workers compute the identical condition from the identical
			// inputs and stop without posting, so no exchange is pending.
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		limit := frontierLen
		if limit > remaining {
			limit = remaining
		}
		perShard, err := hub.GatherWinners(level)
		if err != nil {
			return nil, false, err
		}
		if e.cancelled() {
			// As in runBoundedParallel, cancellation takes the truncation
			// path before the level's visits are counted. The gather above
			// already happened — workers post unconditionally — so the
			// winners are simply discarded.
			stats.Truncated = true
			stats.Cancelled = true
			if err := hub.Seal(level, LevelSeal{Halt: true}); err != nil {
				return nil, false, err
			}
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		merged := mergeWinners(perShard)
		records := make([]uint64, 0, len(merged))
		for _, w := range merged {
			if !vis.Insert(w.Key) {
				err := fmt.Errorf("explore: shard protocol violation: duplicate winner key %#x at level %d", w.Key, level)
				hub.Fail(err)
				return nil, false, err
			}
			if int(w.Ord>>ordShift) >= limit {
				err := fmt.Errorf("explore: shard protocol violation: winner parent %d beyond level limit %d", w.Ord>>ordShift, limit)
				hub.Fail(err)
				return nil, false, err
			}
			if err := sink.append(recFromBits(w.Bits)); err != nil {
				hub.Fail(err)
				return nil, false, err
			}
			records = append(records, w.Bits)
			if w.Goal {
				// The sequential search finds this witness while expanding
				// the winner's parent, having counted every parent up to
				// and including it — and stops appending there.
				stats.Visited += int(w.Ord>>ordShift) + 1
				hit := &boundedHit{level: level + 1, pos: sink.levelLen(level) - 1, detail: w.Detail}
				if err := hub.Seal(level, LevelSeal{Halt: true}); err != nil {
					return nil, false, err
				}
				witness, err := e.boundedWitness(sink, hit, kind, stats)
				if err != nil {
					return nil, false, err
				}
				return witness, true, nil
			}
		}
		stats.Visited += limit
		if limit < frontierLen {
			// Mid-level budget exhaustion: the single-process engine
			// appends this chunk's winners, then trips the remaining <= 0
			// check on its next iteration. Same stats, same verdict.
			stats.Truncated = true
			if err := hub.Seal(level, LevelSeal{Halt: true}); err != nil {
				return nil, false, err
			}
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		if err := hub.Seal(level, LevelSeal{Records: records}); err != nil {
			return nil, false, err
		}
		frontierLen = len(records)
		level++
		e.progress(stats.Visited, level)
	}
	return &Witness{Kind: kind, Stats: stats}, false, nil
}

// mergeWinners concatenates the per-shard winner lists and orders them by
// ord. Keys are disjoint across shards (each key has one owner) and ords
// are globally unique (each frontier position is expanded by exactly one
// worker), so the merge is a permutation-free total order: the sequential
// insertion order.
func mergeWinners(perShard [][]ShardCandidate) []ShardCandidate {
	n := 0
	for _, ws := range perShard {
		n += len(ws)
	}
	merged := make([]ShardCandidate, 0, n)
	for _, ws := range perShard {
		merged = append(merged, ws...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Ord < merged[j].Ord })
	return merged
}

// dedupWinners applies the owner's claim rule: order candidates by ord and
// keep the first per key — the min-ord winner, exactly as parallel.go's
// claim table resolves within-level duplicates.
func dedupWinners(cands []ShardCandidate) []ShardCandidate {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Ord < cands[j].Ord })
	seen := make(map[uint64]struct{}, len(cands))
	winners := cands[:0]
	for _, c := range cands {
		if _, dup := seen[c.Key]; dup {
			continue
		}
		seen[c.Key] = struct{}{}
		winners = append(winners, c)
	}
	return winners
}

// shardEnt is one frontier entry of a worker: the configuration, its crash
// budget spent, and its key (computed once — ownership tests and child
// sealing reuse it).
type shardEnt struct {
	cfg     *sim.Configuration
	crashes int32
	key     uint64
}

// ShardWorker runs this explorer as shard `shard` of a sharded exploration:
// it consumes the coordinator's phase announcements and runs the worker
// side of each phase until the sequence ends. The explorer must be
// configured identically to the coordinator's (the service layer enforces
// this with an instance-digest handshake).
func (e *Explorer) ShardWorker(shard, shards int, ex ShardExchange) error {
	if err := e.shardPrecheck(shards); err != nil {
		return err
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("explore: shard index %d out of range [0,%d)", shard, shards)
	}
	for {
		ph, err := ex.NextPhase()
		if err != nil {
			return err
		}
		if ph.Done {
			return nil
		}
		if ph.RootHit {
			continue
		}
		goal, err := goalForKind(ph.Kind)
		if err != nil {
			return err
		}
		if err := e.shardExpand(goal, shard, shards, ex); err != nil {
			return err
		}
	}
}

// shardExpand is the worker half of one phase: every worker materializes
// the full frontier (so any owner distribution works without configuration
// transfer — states rebuild from 8-byte records, cheaper to recompute than
// to ship) but expands only the positions it owns, sending each surviving
// candidate to the owner of its key. Sealed records then advance the
// frontier one level everywhere at once.
func (e *Explorer) shardExpand(goal goalFunc, shard, shards int, ex ShardExchange) error {
	start, err := e.initial()
	if err != nil {
		return err
	}
	vis := newVisitedSet()
	rootKey := e.key(start, 0)
	vis.Insert(rootKey)
	frontier := []shardEnt{{cfg: start, key: rootKey}}
	releaseFrontier := func() {
		for i := range frontier {
			e.release(frontier[i].cfg)
		}
		frontier = nil
	}
	byOwner := make([][]ShardCandidate, shards)
	visited := 0
	level := 0
	for len(frontier) > 0 {
		// Identical arithmetic to the coordinator's level top, from
		// identical inputs: both sides agree on exhaustion and truncation
		// without a control round-trip.
		remaining := e.opts.MaxConfigs - visited
		if remaining <= 0 {
			break
		}
		limit := len(frontier)
		if limit > remaining {
			limit = remaining
		}
		for i := range byOwner {
			byOwner[i] = byOwner[i][:0]
		}
		for pos := 0; pos < limit; pos++ {
			ent := frontier[pos]
			if ShardOwner(ent.key, shards) != shard {
				continue
			}
			for ai, act := range e.sc.actions(ent.cfg, int(ent.crashes)) {
				next, ok := e.sc.apply(ent.cfg, act)
				if !ok {
					continue
				}
				crashes := ent.crashes
				if act.Crash {
					crashes++
				}
				key := e.key(next, int(crashes))
				if vis.Contains(key) {
					e.sc.release(next)
					continue
				}
				cand := ShardCandidate{
					Key:  key,
					Ord:  uint64(pos)<<ordShift | uint64(ai),
					Bits: recBits(levelRec{parent: int32(pos), act: act}),
				}
				// Goals are pure functions of configuration content, so
				// evaluating before dedup — as the parallel engine does —
				// cannot change which detail the winning candidate carries.
				cand.Detail, cand.Goal = goal(&e.sc, next)
				e.sc.release(next)
				byOwner[ShardOwner(key, shards)] = append(byOwner[ShardOwner(key, shards)], cand)
			}
		}
		mine, err := ex.Exchange(level, byOwner)
		if err != nil {
			releaseFrontier()
			return err
		}
		seal, err := ex.SubmitWinners(level, dedupWinners(mine))
		if err != nil {
			releaseFrontier()
			return err
		}
		if seal.Halt {
			break
		}
		next := make([]shardEnt, 0, len(seal.Records))
		fail := func(format string, args ...any) error {
			for i := range next {
				e.release(next[i].cfg)
			}
			releaseFrontier()
			return fmt.Errorf(format, args...)
		}
		for idx, bits := range seal.Records {
			rec := recFromBits(bits)
			if int(rec.parent) < 0 || int(rec.parent) >= limit {
				return fail("explore: shard seal level %d record %d: parent %d beyond limit %d", level, idx, rec.parent, limit)
			}
			parent := frontier[rec.parent]
			cfg, ok := e.sc.apply(parent.cfg, rec.act)
			if !ok {
				return fail("explore: shard seal level %d record %d: action not applicable", level, idx)
			}
			crashes := parent.crashes
			if rec.act.Crash {
				crashes++
			}
			key := e.key(cfg, int(crashes))
			if !vis.Insert(key) {
				e.release(cfg)
				return fail("explore: shard seal level %d record %d: key %#x already sealed", level, idx, key)
			}
			next = append(next, shardEnt{cfg: cfg, crashes: crashes, key: key})
		}
		releaseFrontier()
		frontier = next
		visited += limit
		level++
	}
	releaseFrontier()
	return nil
}

// LocalShardHub is the in-process rendezvous implementing both sides of
// the exchange protocol: blocking calls for goroutine workers (tests,
// experiment E15, and the root facade's in-process mode) plus non-blocking
// Try/Post variants the HTTP facade of internal/service maps request
// handlers onto — ksetd's write timeouts forbid handlers that park.
//
// Level state is keyed by (phase, level) because a slow worker may still be
// draining the previous phase's final seal while faster workers have
// entered the next phase at level 0. State retires deterministically:
// sealing level L deletes (phase, L-1) — posting winners for L proves every
// worker consumed seal L-1 — and starting phase P deletes everything from
// phases <= P-2, which every worker left before P-1's final exchange could
// complete.
type LocalShardHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards int
	err    error
	phases []ShardPhase
	done   bool
	levels map[hubLevelKey]*hubLevel
}

type hubLevelKey struct {
	phase, level int
}

// hubLevel is the rendezvous state of one exchange round.
type hubLevel struct {
	posted  []bool
	nposted int
	owned   [][]ShardCandidate
	winners [][]ShardCandidate
	won     []bool
	nwon    int
	sealed  bool
	seal    LevelSeal
}

// NewLocalShardHub creates a hub for the given number of worker shards.
func NewLocalShardHub(shards int) *LocalShardHub {
	h := &LocalShardHub{
		shards: shards,
		levels: make(map[hubLevelKey]*hubLevel),
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Shards returns the hub's worker count.
func (h *LocalShardHub) Shards() int { return h.shards }

// failLocked poisons the hub. Callers hold h.mu.
func (h *LocalShardHub) failLocked(err error) {
	if h.err == nil {
		h.err = err
	}
	h.cond.Broadcast()
}

// Fail poisons the hub: every pending and future call returns err.
func (h *LocalShardHub) Fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failLocked(err)
}

// Err returns the hub's poison error, if any.
func (h *LocalShardHub) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// StartPhase implements ShardHub.
func (h *LocalShardHub) StartPhase(kind string, rootHit bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	if h.done {
		return fmt.Errorf("explore: StartPhase after Finish")
	}
	h.phases = append(h.phases, ShardPhase{Kind: kind, RootHit: rootHit})
	for k := range h.levels {
		if k.phase <= len(h.phases)-3 {
			delete(h.levels, k)
		}
	}
	h.cond.Broadcast()
	return nil
}

// Finish implements ShardHub. Previously posted seals stay fetchable so a
// worker still draining the final level is not cut off.
func (h *LocalShardHub) Finish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done = true
	h.cond.Broadcast()
}

// levelLocked returns (creating on demand) the rendezvous state of one
// exchange round. Callers hold h.mu.
func (h *LocalShardHub) levelLocked(phase, level int) *hubLevel {
	k := hubLevelKey{phase: phase, level: level}
	hl := h.levels[k]
	if hl == nil {
		hl = &hubLevel{
			posted:  make([]bool, h.shards),
			owned:   make([][]ShardCandidate, h.shards),
			winners: make([][]ShardCandidate, h.shards),
			won:     make([]bool, h.shards),
		}
		h.levels[k] = hl
	}
	return hl
}

// checkShard validates a worker-supplied shard index. Callers hold h.mu.
func (h *LocalShardHub) checkShard(shard int) error {
	if shard < 0 || shard >= h.shards {
		err := fmt.Errorf("explore: shard index %d out of range [0,%d)", shard, h.shards)
		h.failLocked(err)
		return err
	}
	return nil
}

// PostBuckets records one worker's owner-batched candidates for a level.
// Aggregation order across workers is irrelevant: owners sort by ord before
// deduplicating.
func (h *LocalShardHub) PostBuckets(phase, level, shard int, byOwner [][]ShardCandidate) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	if err := h.checkShard(shard); err != nil {
		return err
	}
	if len(byOwner) != h.shards {
		err := fmt.Errorf("explore: shard %d posted %d buckets for %d shards", shard, len(byOwner), h.shards)
		h.failLocked(err)
		return err
	}
	hl := h.levelLocked(phase, level)
	if hl.posted[shard] {
		err := fmt.Errorf("explore: shard %d double-posted buckets for phase %d level %d", shard, phase, level)
		h.failLocked(err)
		return err
	}
	hl.posted[shard] = true
	hl.nposted++
	for o, cands := range byOwner {
		hl.owned[o] = append(hl.owned[o], cands...)
	}
	if hl.nposted == h.shards {
		h.cond.Broadcast()
	}
	return nil
}

// TryOwned returns the candidates owned by shard once every worker has
// posted its buckets; ok is false while the exchange is still filling.
func (h *LocalShardHub) TryOwned(phase, level, shard int) (cands []ShardCandidate, ok bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, false, h.err
	}
	if err := h.checkShard(shard); err != nil {
		return nil, false, err
	}
	hl := h.levelLocked(phase, level)
	if hl.nposted < h.shards {
		return nil, false, nil
	}
	return hl.owned[shard], true, nil
}

// PostWinners records one shard's deduplicated winner list for a level.
func (h *LocalShardHub) PostWinners(phase, level, shard int, winners []ShardCandidate) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	if err := h.checkShard(shard); err != nil {
		return err
	}
	hl := h.levelLocked(phase, level)
	if hl.won[shard] {
		err := fmt.Errorf("explore: shard %d double-posted winners for phase %d level %d", shard, phase, level)
		h.failLocked(err)
		return err
	}
	hl.won[shard] = true
	hl.nwon++
	hl.winners[shard] = winners
	if hl.nwon == h.shards {
		h.cond.Broadcast()
	}
	return nil
}

// TrySeal returns the level's seal once the coordinator has published it.
func (h *LocalShardHub) TrySeal(phase, level int) (seal LevelSeal, ok bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return LevelSeal{}, false, h.err
	}
	hl := h.levelLocked(phase, level)
	if !hl.sealed {
		return LevelSeal{}, false, nil
	}
	return hl.seal, true, nil
}

// TryPhase returns phase seq of the sequence once announced; a Done phase
// once the sequence is over.
func (h *LocalShardHub) TryPhase(seq int) (ph ShardPhase, ok bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return ShardPhase{}, false, h.err
	}
	if seq < len(h.phases) {
		return h.phases[seq], true, nil
	}
	if h.done {
		return ShardPhase{Done: true}, true, nil
	}
	return ShardPhase{}, false, nil
}

// GatherWinners implements ShardHub.
func (h *LocalShardHub) GatherWinners(level int) ([][]ShardCandidate, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	phase := len(h.phases) - 1
	hl := h.levelLocked(phase, level)
	for hl.nwon < h.shards && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return nil, h.err
	}
	return hl.winners, nil
}

// Seal implements ShardHub, retiring the previous level's rendezvous state:
// every worker consumed seal L-1 before its winners for L could arrive.
func (h *LocalShardHub) Seal(level int, seal LevelSeal) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	phase := len(h.phases) - 1
	hl := h.levelLocked(phase, level)
	hl.seal = seal
	hl.sealed = true
	if level > 0 {
		delete(h.levels, hubLevelKey{phase: phase, level: level - 1})
	}
	h.cond.Broadcast()
	return nil
}

// Exchange returns the blocking ShardExchange handle of one worker shard.
func (h *LocalShardHub) Exchange(shard int) ShardExchange {
	return &localExchange{hub: h, shard: shard, phase: -1}
}

// localExchange adapts the hub's blocking rendezvous to the stateful
// worker handle.
type localExchange struct {
	hub   *LocalShardHub
	shard int
	phase int // index of the phase currently executing; -1 before the first
}

func (x *localExchange) NextPhase() (ShardPhase, error) {
	h := x.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	seq := x.phase + 1
	for seq >= len(h.phases) && !h.done && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return ShardPhase{}, h.err
	}
	if seq < len(h.phases) {
		x.phase = seq
		return h.phases[seq], nil
	}
	return ShardPhase{Done: true}, nil
}

func (x *localExchange) Exchange(level int, byOwner [][]ShardCandidate) ([]ShardCandidate, error) {
	h := x.hub
	if err := h.PostBuckets(x.phase, level, x.shard, byOwner); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hl := h.levelLocked(x.phase, level)
	for hl.nposted < h.shards && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return nil, h.err
	}
	return hl.owned[x.shard], nil
}

func (x *localExchange) SubmitWinners(level int, winners []ShardCandidate) (LevelSeal, error) {
	h := x.hub
	if err := h.PostWinners(x.phase, level, x.shard, winners); err != nil {
		return LevelSeal{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hl := h.levelLocked(x.phase, level)
	for !hl.sealed && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return LevelSeal{}, h.err
	}
	return hl.seal, nil
}
