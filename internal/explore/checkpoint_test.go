package explore

import (
	"os"
	"path/filepath"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

// ckptInstance is the checkpoint test workhorse: a space large enough to
// truncate at interesting budgets, with reachable witnesses.
func ckptInstance() diffInstance {
	return diffInstance{"minwait-n3-crash", algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 1}
}

func ckptExplorer(d diffInstance, store Store, workers, maxConfigs int, ckptDir string) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		MaxConfigs: maxConfigs,
		Workers:    workers,
		Store:      store,
		Checkpoint: ckptDir,
	})
}

// TestCheckpointResumeParity is the acceptance gate of the checkpoint
// layer: a search truncated at an arbitrary budget — including mid-level
// cuts — and resumed from its checkpoint with a full budget must return the
// identical verdict, witness, and stats as an uninterrupted run, at every
// combination of truncating and resuming worker counts and for both bounded
// stores.
func TestCheckpointResumeParity(t *testing.T) {
	d := ckptInstance()
	const fullBudget = 100000
	refW, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if !refFound || refW.Stats.Truncated {
		t.Fatalf("reference search: found=%t stats=%+v", refFound, refW.Stats)
	}
	for _, store := range []Store{StoreFrontierOnly, StoreSpill} {
		// The reference witness surfaces at visited=31, so every cut below
		// that truncates; 25 cuts a BFS level mid-way.
		for _, cut := range []int{1, 3, 7, 25, 30} {
			for _, workers := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {4, 2}} {
				dir := t.TempDir()
				w1, found1, err := ckptExplorer(d, store, workers[0], cut, dir).FindDisagreement()
				if err != nil {
					t.Fatal(err)
				}
				if found1 || !w1.Stats.Truncated {
					t.Fatalf("store=%v cut=%d: expected truncation, got found=%t stats=%+v", store, cut, found1, w1.Stats)
				}
				if w1.Checkpoint == "" {
					t.Fatalf("store=%v cut=%d: no checkpoint path reported", store, cut)
				}
				if _, err := os.Stat(w1.Checkpoint); err != nil {
					t.Fatalf("store=%v cut=%d: checkpoint file missing: %v", store, cut, err)
				}
				if w1.Stats.Visited != cut {
					t.Fatalf("store=%v cut=%d: truncated at %d", store, cut, w1.Stats.Visited)
				}
				// Resume on a fresh explorer with the full budget.
				w2, found2, err := ckptExplorer(d, store, workers[1], fullBudget, dir).FindDisagreement()
				if err != nil {
					t.Fatal(err)
				}
				if found2 != refFound || w2.Stats != refW.Stats {
					t.Fatalf("store=%v cut=%d workers=%v: resumed found=%t stats=%+v, uninterrupted found=%t stats=%+v",
						store, cut, workers, found2, w2.Stats, refFound, refW.Stats)
				}
				if w2.Detail != refW.Detail || runSignature(w2.Run) != runSignature(refW.Run) {
					t.Fatalf("store=%v cut=%d workers=%v: resumed witness diverged", store, cut, workers)
				}
				// Completion must clear the checkpoint so nothing stale
				// resumes later.
				if _, err := os.Stat(w1.Checkpoint); !os.IsNotExist(err) {
					t.Fatalf("store=%v cut=%d: checkpoint not removed after completion (err=%v)", store, cut, err)
				}
			}
		}
	}
}

// TestCheckpointChainedResume pauses and resumes the same search through a
// ladder of growing budgets — checkpoint to checkpoint to completion — and
// asserts the final result still matches the uninterrupted run, and that
// intermediate stats stay on the sequential trajectory.
func TestCheckpointChainedResume(t *testing.T) {
	d := ckptInstance()
	const fullBudget = 100000
	refW, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, budget := range []int{2, 10, 25, 30} {
		w, found, err := ckptExplorer(d, StoreFrontierOnly, 1, budget, dir).FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		if found || !w.Stats.Truncated || w.Stats.Visited != budget {
			t.Fatalf("budget=%d: found=%t stats=%+v", budget, found, w.Stats)
		}
	}
	w, found, err := ckptExplorer(d, StoreFrontierOnly, 2, fullBudget, dir).FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found != refFound || w.Stats != refW.Stats || runSignature(w.Run) != runSignature(refW.Run) {
		t.Fatalf("chained resume diverged: found=%t stats=%+v, uninterrupted found=%t stats=%+v",
			found, w.Stats, refFound, refW.Stats)
	}
}

// TestSnapshotRestoreExplicit exercises the exported Snapshot/Restore pair
// without the automatic Options.Checkpoint flow: a spill search truncates
// (its level log is retained on disk), Snapshot writes the paused state,
// and a fresh explorer Restores and completes with the uninterrupted
// result. Exhaustive no-witness verification — the memory-bound workload
// the bounded store exists for — is the goal here.
func TestSnapshotRestoreExplicit(t *testing.T) {
	d := diffInstance{"minwait-n3-uniform", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0}, []sim.ProcessID{1, 2, 3}, 1}
	const fullBudget = 400000
	refW, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if refFound || refW.Stats.Truncated {
		t.Fatalf("uniform inputs cannot disagree and the space must be exhaustible: found=%t stats=%+v", refFound, refW.Stats)
	}

	e1 := ckptExplorer(d, StoreSpill, 1, refW.Stats.Visited/2, "")
	w1, found1, err := e1.FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found1 || !w1.Stats.Truncated {
		t.Fatalf("expected truncation, got found=%t stats=%+v", found1, w1.Stats)
	}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	if err := e1.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	e2 := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "")
	if err := e2.Restore(path); err != nil {
		t.Fatal(err)
	}
	w2, found2, err := e2.FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found2 != refFound || w2.Stats != refW.Stats {
		t.Fatalf("restored search diverged: found=%t stats=%+v, uninterrupted found=%t stats=%+v",
			found2, w2.Stats, refFound, refW.Stats)
	}
}

// TestSnapshotWithoutPause pins the error contract: Snapshot without a
// paused search must fail rather than write an empty file.
func TestSnapshotWithoutPause(t *testing.T) {
	d := ckptInstance()
	e := ckptExplorer(d, StoreFrontierOnly, 1, 0, "")
	if err := e.Snapshot(filepath.Join(t.TempDir(), "x.ckpt")); err == nil {
		t.Fatal("Snapshot succeeded with no paused search")
	}
}

// TestRestoreDigestMismatch asserts a checkpoint cannot be resumed by a
// search of a different instance: different inputs, different algorithm,
// different crash budget, or different reductions.
func TestRestoreDigestMismatch(t *testing.T) {
	d := ckptInstance()
	e1 := ckptExplorer(d, StoreSpill, 1, 10, "")
	if _, found, err := e1.FindDisagreement(); err != nil || found {
		t.Fatalf("setup: found=%t err=%v", found, err)
	}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	if err := e1.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	others := []diffInstance{
		{"other-inputs", d.alg, []sim.Value{0, 1, 3}, d.live, d.crashes},
		{"other-alg", algorithms.FirstHeard{}, d.inputs, d.live, d.crashes},
		{"other-budget", d.alg, d.inputs, d.live, 0},
	}
	for _, o := range others {
		e2 := ckptExplorer(o, StoreFrontierOnly, 1, 1000, "")
		if err := e2.Restore(path); err == nil {
			t.Fatalf("%s: Restore accepted a foreign checkpoint", o.name)
		}
	}
	// Same instance with symmetry enabled dedups under a different key
	// function: also incompatible.
	esym := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live: d.live, MaxCrashes: d.crashes, Store: StoreFrontierOnly, Symmetry: true,
	})
	if err := esym.Restore(path); err == nil {
		t.Fatal("Restore accepted a checkpoint across a reduction change")
	}
}

// TestRestoreCorruptFile asserts the checksum and structural validation
// reject tampered checkpoint bytes.
func TestRestoreCorruptFile(t *testing.T) {
	d := ckptInstance()
	e1 := ckptExplorer(d, StoreSpill, 1, 25, "")
	if _, _, err := e1.FindDisagreement(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	if err := e1.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		bad := path + ".bad"
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e2 := ckptExplorer(d, StoreFrontierOnly, 1, 1000, "")
		if err := e2.Restore(bad); err == nil {
			t.Fatalf("Restore accepted checkpoint with byte %d flipped", off)
		}
	}
	if err := os.WriteFile(path+".trunc", raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := ckptExplorer(d, StoreFrontierOnly, 1, 1000, "")
	if err := e2.Restore(path + ".trunc"); err == nil {
		t.Fatal("Restore accepted a truncated checkpoint")
	}
}

// TestRestoreTruncatedAtEveryByte simulates partial writes and disk-full
// cuts exhaustively: a valid checkpoint truncated at every byte boundary
// must be rejected cleanly by Restore — an error, never a panic and never a
// silent partial resume. (The atomic temp+rename write discipline means a
// real crash can only ever leave the previous complete file or none, but
// the decoder must not rely on that.)
func TestRestoreTruncatedAtEveryByte(t *testing.T) {
	d := ckptInstance()
	e1 := ckptExplorer(d, StoreSpill, 1, 25, "")
	if _, _, err := e1.FindDisagreement(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ckpt")
	if err := e1.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ckpt")
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(cut, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		e2 := ckptExplorer(d, StoreFrontierOnly, 1, 1000, "")
		if err := e2.Restore(cut); err == nil {
			t.Fatalf("Restore accepted a checkpoint truncated to %d of %d bytes", n, len(raw))
		}
	}
}

// TestAutoResumeQuarantinesCorruptCheckpoint is the recovery contract of
// the automatic Options.Checkpoint flow: a corrupt or truncated checkpoint
// file must not fail the search — it is renamed aside (".corrupt") and the
// search falls back to a fresh root, producing the exact uninterrupted
// verdict.
func TestAutoResumeQuarantinesCorruptCheckpoint(t *testing.T) {
	d := ckptInstance()
	ref, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, 100000, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func(raw []byte) []byte{
		"truncated": func(raw []byte) []byte { return raw[:len(raw)/2] },
		"bitflip":   func(raw []byte) []byte { m := append([]byte(nil), raw...); m[len(m)/2] ^= 0x40; return m },
		"garbage":   func(raw []byte) []byte { return []byte("not a checkpoint at all") },
		"empty":     func(raw []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w1, found1, err := ckptExplorer(d, StoreFrontierOnly, 1, 20, dir).FindDisagreement()
			if err != nil || found1 || w1.Checkpoint == "" {
				t.Fatalf("setup pause: found=%t ckpt=%q err=%v", found1, w1.Checkpoint, err)
			}
			raw, err := os.ReadFile(w1.Checkpoint)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(w1.Checkpoint, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			w2, found2, err := ckptExplorer(d, StoreFrontierOnly, 1, 100000, dir).FindDisagreement()
			if err != nil {
				t.Fatalf("resume over corrupt checkpoint errored instead of falling back: %v", err)
			}
			if found2 != refFound || w2.Stats != ref.Stats || w2.Detail != ref.Detail {
				t.Fatalf("fresh fallback diverged: found=%t stats=%+v, uninterrupted found=%t stats=%+v",
					found2, w2.Stats, refFound, ref.Stats)
			}
			if _, err := os.Stat(w1.Checkpoint + ".corrupt"); err != nil {
				t.Fatalf("corrupt checkpoint was not quarantined: %v", err)
			}
		})
	}
}

// TestAutoResumeQuarantinesInconsistentLog covers the corruption the
// checksum cannot catch: a checkpoint of a *different* instance copied onto
// this search's filename decodes fine but carries a foreign digest. The
// auto-resume path must quarantine it and fall back to a fresh search.
func TestAutoResumeQuarantinesInconsistentLog(t *testing.T) {
	d := ckptInstance()
	other := diffInstance{"other", d.alg, []sim.Value{0, 1, 3}, d.live, d.crashes}
	dir := t.TempDir()
	w1, found1, err := ckptExplorer(other, StoreFrontierOnly, 1, 20, dir).FindDisagreement()
	if err != nil || found1 || w1.Checkpoint == "" {
		t.Fatalf("setup pause: found=%t err=%v", found1, err)
	}
	e := ckptExplorer(d, StoreFrontierOnly, 1, 100000, dir)
	foreign := e.checkpointFile("disagreement")
	if err := os.Rename(w1.Checkpoint, foreign); err != nil {
		t.Fatal(err)
	}
	ref, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, 100000, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	w2, found2, err := e.FindDisagreement()
	if err != nil {
		t.Fatalf("resume over foreign checkpoint errored instead of falling back: %v", err)
	}
	if found2 != refFound || w2.Stats != ref.Stats {
		t.Fatalf("fresh fallback diverged: stats=%+v vs %+v", w2.Stats, ref.Stats)
	}
	if _, err := os.Stat(foreign + ".corrupt"); err != nil {
		t.Fatalf("foreign checkpoint was not quarantined: %v", err)
	}
}

// TestCheckpointEveryLevel proves the crash-safety property of the
// level-boundary snapshots: a checkpoint captured mid-run (here: copied
// aside at a level boundary, simulating the state a kill -9 would leave on
// disk) resumes to the exact verdict and stats of the uninterrupted run.
func TestCheckpointEveryLevel(t *testing.T) {
	d := diffInstance{"minwait-n3-uniform", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0}, []sim.ProcessID{1, 2, 3}, 1}
	ref, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, 400000, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if refFound || ref.Stats.Truncated {
		t.Fatalf("reference: found=%t stats=%+v", refFound, ref.Stats)
	}
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		saved := filepath.Join(dir, "killed-here.bin")
		e := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
			Live: d.live, MaxCrashes: d.crashes, MaxConfigs: 400000,
			Workers: workers, Store: StoreFrontierOnly, Checkpoint: dir,
			OnProgress: func(visited, level int) {
				// snapshotLevel runs before OnProgress at each sealed level:
				// the file on disk now is exactly what a kill here would
				// leave. Keep the level-2 snapshot.
				if level == 2 {
					raw, err := os.ReadFile(e2eCkptPath(dir, d))
					if err != nil {
						t.Errorf("level %d: no live checkpoint on disk: %v", level, err)
						return
					}
					if err := os.WriteFile(saved, raw, 0o644); err != nil {
						t.Error(err)
					}
				}
			},
		})
		w1, found1, err := e.FindDisagreement()
		if err != nil || found1 {
			t.Fatalf("workers=%d: found=%t err=%v", workers, found1, err)
		}
		if w1.Stats != ref.Stats {
			t.Fatalf("workers=%d: checkpointing run diverged: %+v vs %+v", workers, w1.Stats, ref.Stats)
		}
		// Completion must have cleared the live checkpoint.
		if _, err := os.Stat(e2eCkptPath(dir, d)); !os.IsNotExist(err) {
			t.Fatalf("workers=%d: live checkpoint not cleared after completion (err=%v)", workers, err)
		}
		raw, err := os.ReadFile(saved)
		if err != nil {
			t.Fatalf("workers=%d: no mid-run snapshot captured: %v", workers, err)
		}
		// "Restart" from the mid-run snapshot: the resumed search must land
		// on the uninterrupted verdict and stats bit for bit.
		if err := os.WriteFile(e2eCkptPath(dir, d), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, found2, err := ckptExplorer(d, StoreFrontierOnly, workers, 400000, dir).FindDisagreement()
		if err != nil || found2 {
			t.Fatalf("workers=%d: resumed: found=%t err=%v", workers, found2, err)
		}
		if w2.Stats != ref.Stats {
			t.Fatalf("workers=%d: resume from mid-run snapshot diverged: %+v vs %+v", workers, w2.Stats, ref.Stats)
		}
	}
}

// e2eCkptPath names the disagreement checkpoint file an explorer of d with
// the given checkpoint dir would use, without needing the explorer itself.
func e2eCkptPath(dir string, d diffInstance) string {
	e := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live: d.live, MaxCrashes: d.crashes, Store: StoreFrontierOnly, Checkpoint: dir,
	})
	return e.checkpointFile("disagreement")
}

// TestCheckpointRequiresBoundedStore pins the option-validation contract.
func TestCheckpointRequiresBoundedStore(t *testing.T) {
	d := ckptInstance()
	e := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live: d.live, MaxCrashes: d.crashes, Checkpoint: t.TempDir(),
	})
	if _, _, err := e.FindDisagreement(); err == nil {
		t.Fatal("in-memory store accepted Options.Checkpoint")
	}
	edfs := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live: d.live, MaxCrashes: d.crashes, Strategy: "dfs",
		Store: StoreFrontierOnly, Checkpoint: t.TempDir(),
	})
	if _, _, err := edfs.FindDisagreement(); err == nil {
		t.Fatal("DFS accepted Options.Checkpoint")
	}
}
