package explore

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for the shard exchange protocol: candidate lists (winner
// submissions and owned-candidate fetches), owner-batched candidate lists
// (bucket posts), and level seals. The format is length-prefixed
// little-endian binary with a magic/version header per message — compact
// enough that a bucket post costs ~25 bytes per candidate — and decoding is
// defensive throughout: any malformed input returns an error (never a
// panic, never an over-allocation), a robustness the FuzzShardCodec target
// hammers on.

// Message magics. The trailing digit versions the format.
var (
	shardCandsMagic   = [4]byte{'K', 'S', 'C', '1'}
	shardBatchesMagic = [4]byte{'K', 'S', 'B', '1'}
	shardSealMagic    = [4]byte{'K', 'S', 'S', '1'}
)

// maxShardDetail bounds a candidate's goal detail string on the wire.
const maxShardDetail = 1 << 16

// shardPrealloc caps slice preallocation from wire-supplied counts: a
// corrupt count cannot allocate more than this up front, and honest counts
// beyond it just grow by append.
const shardPrealloc = 1 << 16

func appendCands(buf []byte, cands []ShardCandidate) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cands)))
	for i := range cands {
		c := &cands[i]
		if len(c.Detail) >= maxShardDetail {
			return nil, fmt.Errorf("explore: candidate detail %d bytes exceeds wire limit", len(c.Detail))
		}
		buf = binary.LittleEndian.AppendUint64(buf, c.Key)
		buf = binary.LittleEndian.AppendUint64(buf, c.Ord)
		buf = binary.LittleEndian.AppendUint64(buf, c.Bits)
		flag := byte(0)
		if c.Goal {
			flag = 1
		}
		buf = append(buf, flag)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Detail)))
		buf = append(buf, c.Detail...)
	}
	return buf, nil
}

func decodeCands(data []byte) (cands []ShardCandidate, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("explore: shard codec: truncated candidate count")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	pre := int(n)
	if pre > shardPrealloc {
		pre = shardPrealloc
	}
	cands = make([]ShardCandidate, 0, pre)
	for i := uint32(0); i < n; i++ {
		if len(data) < 27 {
			return nil, nil, fmt.Errorf("explore: shard codec: truncated candidate %d of %d", i, n)
		}
		c := ShardCandidate{
			Key:  binary.LittleEndian.Uint64(data),
			Ord:  binary.LittleEndian.Uint64(data[8:]),
			Bits: binary.LittleEndian.Uint64(data[16:]),
		}
		switch data[24] {
		case 0:
		case 1:
			c.Goal = true
		default:
			return nil, nil, fmt.Errorf("explore: shard codec: bad goal flag %d", data[24])
		}
		dlen := int(binary.LittleEndian.Uint16(data[25:]))
		data = data[27:]
		if len(data) < dlen {
			return nil, nil, fmt.Errorf("explore: shard codec: truncated detail of candidate %d", i)
		}
		c.Detail = string(data[:dlen])
		data = data[dlen:]
		cands = append(cands, c)
	}
	return cands, data, nil
}

// EncodeShardCandidates serializes one candidate list (a winner submission
// or an owned-candidate response).
func EncodeShardCandidates(cands []ShardCandidate) ([]byte, error) {
	return appendCands(append([]byte(nil), shardCandsMagic[:]...), cands)
}

// DecodeShardCandidates reverses EncodeShardCandidates.
func DecodeShardCandidates(data []byte) ([]ShardCandidate, error) {
	if len(data) < 4 || [4]byte(data[:4]) != shardCandsMagic {
		return nil, fmt.Errorf("explore: shard codec: bad candidate-list header")
	}
	cands, rest, err := decodeCands(data[4:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("explore: shard codec: %d trailing bytes after candidate list", len(rest))
	}
	return cands, nil
}

// EncodeShardBatches serializes an owner-batched candidate list (one
// worker's bucket post: index = owning shard).
func EncodeShardBatches(batches [][]ShardCandidate) ([]byte, error) {
	buf := append([]byte(nil), shardBatchesMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batches)))
	var err error
	for _, b := range batches {
		if buf, err = appendCands(buf, b); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeShardBatches reverses EncodeShardBatches.
func DecodeShardBatches(data []byte) ([][]ShardCandidate, error) {
	if len(data) < 8 || [4]byte(data[:4]) != shardBatchesMagic {
		return nil, fmt.Errorf("explore: shard codec: bad batch-list header")
	}
	n := binary.LittleEndian.Uint32(data[4:])
	data = data[8:]
	pre := int(n)
	if pre > shardPrealloc {
		pre = shardPrealloc
	}
	batches := make([][]ShardCandidate, 0, pre)
	for i := uint32(0); i < n; i++ {
		cands, rest, err := decodeCands(data)
		if err != nil {
			return nil, fmt.Errorf("explore: shard codec: batch %d: %w", i, err)
		}
		batches = append(batches, cands)
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("explore: shard codec: %d trailing bytes after batch list", len(data))
	}
	return batches, nil
}

// EncodeLevelSeal serializes a level seal.
func EncodeLevelSeal(seal LevelSeal) []byte {
	buf := append([]byte(nil), shardSealMagic[:]...)
	flag := byte(0)
	if seal.Halt {
		flag = 1
	}
	buf = append(buf, flag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seal.Records)))
	for _, r := range seal.Records {
		buf = binary.LittleEndian.AppendUint64(buf, r)
	}
	return buf
}

// DecodeLevelSeal reverses EncodeLevelSeal.
func DecodeLevelSeal(data []byte) (LevelSeal, error) {
	if len(data) < 9 || [4]byte(data[:4]) != shardSealMagic {
		return LevelSeal{}, fmt.Errorf("explore: shard codec: bad seal header")
	}
	var seal LevelSeal
	switch data[4] {
	case 0:
	case 1:
		seal.Halt = true
	default:
		return LevelSeal{}, fmt.Errorf("explore: shard codec: bad halt flag %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:])
	data = data[9:]
	if uint64(len(data)) != uint64(n)*8 {
		return LevelSeal{}, fmt.Errorf("explore: shard codec: seal body %d bytes, want %d records", len(data), n)
	}
	if n > 0 {
		pre := int(n)
		if pre > shardPrealloc {
			pre = shardPrealloc
		}
		seal.Records = make([]uint64, 0, pre)
		for i := uint32(0); i < n; i++ {
			seal.Records = append(seal.Records, binary.LittleEndian.Uint64(data[i*8:]))
		}
	}
	return seal, nil
}
