package explore

// This file implements the compact visited set shared by every search
// engine in the package: a two-level, open-addressed hash set of 64-bit
// revisit keys. The first level is a fixed fan-out of 256 shards indexed by
// the key's top byte; the second level is a per-shard open-addressed,
// linear-probed slot array of raw keys, grown shard-locally at 3/4 load.
//
// The set replaces the former map[uint64]int32 visited map: no search path
// ever read the mapped arena index (revisit detection is pure membership),
// and a Go map burns ~50 B per uint64 entry in buckets, overflow pointers,
// and load slack. Here a sealed key costs one uint64 slot — between 10.7 B
// (just after a shard doubles) and 16 B (just before) per state — which is
// what makes the frontier-only store of bounded.go genuinely frontier-sized.
//
// Keys are splitmix64-diffused upstream (Explorer.key applies sim.HashMix),
// so the top byte shards uniformly and the low bits probe uniformly; the two
// bit ranges are disjoint, keeping shard choice and in-shard position
// independent. Shard growth rehashes one shard at a time, bounding the
// latency and the transient memory of any single insert to 1/256th of the
// table. The zero key — possible, though vanishingly unlikely, for a
// diffused fingerprint — is tracked by a dedicated flag because empty slots
// are encoded as zero.
//
// The set is not safe for concurrent writers. The parallel frontier engine
// needs no locks around it: during level expansion workers only read
// (sealed keys are immutable for the level), and all inserts happen in the
// sequential merge phase — the same discipline the arena's map used.

// visShards is the first-level fan-out. 256 keeps the per-shard slot arrays
// small enough that doubling one is cheap, while the fixed top-byte split
// adds no per-key memory.
const visShards = 256

// visitedSet is the two-level sharded visited-key set.
type visitedSet struct {
	shards [visShards]visShard
	// zero tracks membership of the zero key, which cannot live in the slot
	// arrays (zero encodes an empty slot).
	zero bool
	n    int
}

// visShard is one second-level open-addressed table.
type visShard struct {
	slots []uint64
	used  int
}

func newVisitedSet() *visitedSet { return &visitedSet{} }

// Len returns the number of distinct keys inserted.
func (v *visitedSet) Len() int { return v.n }

// Contains reports whether key was inserted.
func (v *visitedSet) Contains(key uint64) bool {
	if key == 0 {
		return v.zero
	}
	s := &v.shards[key>>56]
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := key & mask; ; i = (i + 1) & mask {
		switch s.slots[i] {
		case key:
			return true
		case 0:
			return false
		}
	}
}

// Insert adds key to the set, reporting whether it was fresh. It is the
// single mutation point: every search engine claims a configuration by
// Insert and drops it on false, so insertion order fully determines the
// visited semantics.
func (v *visitedSet) Insert(key uint64) bool {
	if key == 0 {
		if v.zero {
			return false
		}
		v.zero = true
		v.n++
		return true
	}
	s := &v.shards[key>>56]
	// Grow before probing at 3/4 load so the probe below always finds an
	// empty slot and chains stay short.
	if 4*(s.used+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	for i := key & mask; ; i = (i + 1) & mask {
		switch s.slots[i] {
		case key:
			return false
		case 0:
			s.slots[i] = key
			s.used++
			v.n++
			return true
		}
	}
}

// Range calls f for every key in the set (in unspecified order) until f
// returns false. Test and snapshot plumbing only; not on any hot path.
func (v *visitedSet) Range(f func(key uint64) bool) {
	if v.zero && !f(0) {
		return
	}
	for si := range v.shards {
		for _, k := range v.shards[si].slots {
			if k != 0 && !f(k) {
				return
			}
		}
	}
}

// grow doubles the shard's slot array (first allocation: 64 slots) and
// rehashes its keys.
func (s *visShard) grow() {
	ncap := 64
	if len(s.slots) > 0 {
		ncap = 2 * len(s.slots)
	}
	old := s.slots
	s.slots = make([]uint64, ncap)
	mask := uint64(ncap - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		for i := k & mask; ; i = (i + 1) & mask {
			if s.slots[i] == 0 {
				s.slots[i] = k
				break
			}
		}
	}
}
