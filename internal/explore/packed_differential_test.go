package explore

// Differential gate for the packed struct-of-arrays configuration engine
// (Options.Packed): for every instance shape the repository's searches care
// about — symmetry × POR × fault models × stores × worker counts — the
// packed engine must reproduce the pointer engine BIT FOR BIT: the same
// visited configuration sets in the same insertion order, the same found
// flags, witness details, scheduled witness runs, stats, and truncation
// points. Together with FuzzPackedParity this is the proof obligation that
// lets Options.Packed be a pure memory/speed regime, excluded from search
// digests and safe to flip on any cached or checkpointed search.

import (
	"fmt"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
	"kset/internal/testutil"
)

// packedDiffCell is one point of the packed differential matrix.
type packedDiffCell struct {
	inst     diffInstance
	symmetry bool
	por      bool
	faults   FaultAdversary
}

func (c packedDiffCell) explorer(packed bool, workers int, store Store) *Explorer {
	return New(sim.Restrict(c.inst.alg, c.inst.live), c.inst.inputs, Options{
		Live:       c.inst.live,
		MaxCrashes: c.inst.crashes,
		Workers:    workers,
		Symmetry:   c.symmetry,
		POR:        c.por,
		Faults:     c.faults,
		Store:      store,
		Packed:     packed,
	})
}

// packedDiffCells spans the handwritten instances across the reduction
// modes, plus fault-adversary arms on the cheapest instance (every fault
// model exercises a distinct packed code path: send omission drops packed
// sends, receive omission drops packed deliveries, Byzantine sets the
// Corrupt flag the packers must ignore and the byz hash chain must cover).
func packedDiffCells() []packedDiffCell {
	var cells []packedDiffCell
	for _, d := range diffInstances() {
		cells = append(cells,
			packedDiffCell{inst: d},
			packedDiffCell{inst: d, symmetry: true},
			packedDiffCell{inst: d, por: true},
			packedDiffCell{inst: d, symmetry: true, por: true},
		)
	}
	small := diffInstance{"minwait-n3-mixed", algorithms.MinWait{F: 1},
		[]sim.Value{0, 0, 1}, []sim.ProcessID{1, 2, 3}, 1}
	for _, model := range []sim.FaultModel{sim.FaultSendOmission, sim.FaultReceiveOmission, sim.FaultByzantine} {
		fa := FaultAdversary{Model: model, Budget: 1, MaxFaulty: 1}
		cells = append(cells,
			packedDiffCell{inst: small, faults: fa},
			packedDiffCell{inst: small, symmetry: true, faults: fa},
		)
	}
	return cells
}

func (c packedDiffCell) name() string {
	s := c.inst.name
	if c.symmetry {
		s += "+sym"
	}
	if c.por {
		s += "+por"
	}
	if c.faults.Model != sim.FaultCrash {
		s += "+" + c.faults.Model.String()
	}
	return s
}

// TestPackedEngineStandsDown pins the silent-fallback contract: Packed on
// an unpackable pair (an algorithm without NewPacker) searches on the
// pointer engine and still reaches the pointer verdict.
func TestPackedEngineStandsDown(t *testing.T) {
	d := diffInstances()[0]
	e := New(sim.Restrict(unpackable{d.alg}, d.live), d.inputs, Options{
		Live: d.live, Workers: 1, Packed: true,
	})
	if e.packed {
		t.Fatal("explorer claims packed for an unpackable algorithm")
	}
	cfg, err := e.initial()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Packed() {
		t.Fatal("initial configuration is packed for an unpackable algorithm")
	}
}

// unpackable hides an algorithm's NewPacker method.
type unpackable struct{ sim.Algorithm }

// TestPackedConfigurationLockstep drives the packed and pointer engines
// through the same breadth-first action tree and asserts, configuration by
// configuration, that every observable the search keys on is bit-identical:
// Key, Fingerprint, LiveFingerprint, and (under symmetry) Canonical64 and
// LiveCanonical64, plus decision vectors and buffer sizes.
func TestPackedConfigurationLockstep(t *testing.T) {
	for _, c := range packedDiffCells() {
		t.Run(c.name(), func(t *testing.T) {
			ptr := c.explorer(false, 1, StoreInMemory)
			pck := c.explorer(true, 1, StoreInMemory)
			if !pck.packed {
				t.Fatal("packed explorer did not resolve the packed engine")
			}
			p0, err := ptr.initial()
			if err != nil {
				t.Fatal(err)
			}
			k0, err := pck.initial()
			if err != nil {
				t.Fatal(err)
			}
			if !k0.Packed() {
				t.Fatal("packed initial configuration is not packed")
			}
			type pair struct {
				ptr, pck *sim.Configuration
				crashes  int
			}
			comparePair := func(path string, p pair) {
				t.Helper()
				if got, want := p.pck.Fingerprint(), p.ptr.Fingerprint(); got != want {
					t.Fatalf("%s: packed fingerprint %#x, pointer %#x", path, got, want)
				}
				if got, want := p.pck.LiveFingerprint(), p.ptr.LiveFingerprint(); got != want {
					t.Fatalf("%s: packed live fingerprint %#x, pointer %#x", path, got, want)
				}
				if c.symmetry {
					if got, want := p.pck.Canonical64(), p.ptr.Canonical64(); got != want {
						t.Fatalf("%s: packed canonical %#x, pointer %#x", path, got, want)
					}
					if got, want := p.pck.LiveCanonical64(), p.ptr.LiveCanonical64(); got != want {
						t.Fatalf("%s: packed live canonical %#x, pointer %#x", path, got, want)
					}
				}
				if got, want := p.pck.Key(), p.ptr.Key(); got != want {
					t.Fatalf("%s: packed key %q, pointer key %q", path, got, want)
				}
			}
			comparePair("initial", pair{ptr: p0, pck: k0})
			visited := map[uint64]bool{cfgKey(p0, 0): true}
			queue := []pair{{ptr: p0, pck: k0}}
			const maxConfigs = 60000
			for len(queue) > 0 {
				if len(visited) > maxConfigs {
					t.Fatalf("state space exceeds %d configurations; shrink the instance", maxConfigs)
				}
				cur := queue[0]
				queue = queue[1:]
				acts := append([]action(nil), ptr.actions(cur.ptr, cur.crashes)...)
				pacts := pck.actions(cur.pck, cur.crashes)
				if fmt.Sprint(acts) != fmt.Sprint(pacts) {
					t.Fatalf("action enumeration diverged:\npointer %v\npacked  %v", acts, pacts)
				}
				for _, act := range acts {
					np, okp := ptr.apply(cur.ptr, act)
					nk, okk := pck.apply(cur.pck, act)
					if okp != okk {
						t.Fatalf("apply(%+v): pointer ok=%t, packed ok=%t", act, okp, okk)
					}
					if !okp {
						continue
					}
					crashes := cur.crashes
					if act.Crash {
						crashes++
					}
					next := pair{ptr: np, pck: nk, crashes: crashes}
					comparePair(fmt.Sprintf("after %+v", act), next)
					if visited[cfgKey(np, crashes)] {
						ptr.release(np)
						pck.release(nk)
						continue
					}
					visited[cfgKey(np, crashes)] = true
					queue = append(queue, next)
				}
			}
		})
	}
}

// TestPackedSearchMatrix runs the production searches on both engines
// across stores and worker counts and asserts identical outcomes: found
// flag, stats (including truncation points), witness detail and scheduled
// run, with found witnesses revalidated as genuine violations.
func TestPackedSearchMatrix(t *testing.T) {
	goals := []struct {
		name string
		find func(*Explorer) (*Witness, bool, error)
	}{
		{"disagreement", (*Explorer).FindDisagreement},
		{"blocking", (*Explorer).FindBlocking},
	}
	stores := []struct {
		name  string
		store Store
	}{
		{"inmem", StoreInMemory},
		{"frontier", StoreFrontierOnly},
		{"spill", StoreSpill},
	}
	for _, c := range packedDiffCells() {
		for _, g := range goals {
			for _, s := range stores {
				t.Run(c.name()+"/"+g.name+"/"+s.name, func(t *testing.T) {
					ptrW, ptrFound, err := g.find(c.explorer(false, 1, s.store))
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 4} {
						pckW, pckFound, err := g.find(c.explorer(true, workers, s.store))
						if err != nil {
							t.Fatal(err)
						}
						if pckFound != ptrFound {
							t.Fatalf("workers=%d: packed found=%t, pointer found=%t", workers, pckFound, ptrFound)
						}
						if pckW.Stats != ptrW.Stats {
							t.Fatalf("workers=%d: packed stats %+v, pointer %+v", workers, pckW.Stats, ptrW.Stats)
						}
						if !pckFound {
							continue
						}
						if pckW.Detail != ptrW.Detail {
							t.Fatalf("workers=%d: packed detail %q, pointer %q", workers, pckW.Detail, ptrW.Detail)
						}
						if got, want := runSignature(pckW.Run), runSignature(ptrW.Run); got != want {
							t.Fatalf("workers=%d: witness run diverged:\n got %s\nwant %s", workers, got, want)
						}
						testutil.RevalidateWitness(t, pckW.Kind, pckW.Run)
					}
				})
			}
		}
	}
}

// TestPackedArenaVisitedSet asserts that on exhaustive arena searches the
// packed engine visits exactly the pointer engine's configuration set —
// equal visited-key sets, node counts, and truncation behaviour.
func TestPackedArenaVisitedSet(t *testing.T) {
	for _, c := range packedDiffCells() {
		t.Run(c.name(), func(t *testing.T) {
			_, ptrFound, ptrAr, err := c.explorer(false, 1, StoreInMemory).searchArena(disagreementGoal, "disagreement")
			if err != nil {
				t.Fatal(err)
			}
			_, pckFound, pckAr, err := c.explorer(true, 1, StoreInMemory).searchArena(disagreementGoal, "disagreement")
			if err != nil {
				t.Fatal(err)
			}
			if ptrFound != pckFound {
				t.Fatalf("packed found=%t, pointer found=%t", pckFound, ptrFound)
			}
			if ptrFound {
				return // arenas of found searches stop early; lockstep covers them
			}
			if pckAr.visited.Len() != ptrAr.visited.Len() || len(pckAr.nodes) != len(ptrAr.nodes) {
				t.Fatalf("packed visited %d nodes %d, pointer visited %d nodes %d",
					pckAr.visited.Len(), len(pckAr.nodes), ptrAr.visited.Len(), len(ptrAr.nodes))
			}
			ptrAr.visited.Range(func(key uint64) bool {
				if !pckAr.visited.Contains(key) {
					t.Fatalf("packed search missed visited key %#x", key)
				}
				return true
			})
		})
	}
}
