package explore

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func live(ids ...sim.ProcessID) []sim.ProcessID { return ids }

func vals(vs ...int) []sim.Value {
	out := make([]sim.Value, len(vs))
	for i, v := range vs {
		out[i] = sim.Value(v)
	}
	return out
}

// TestMinWaitDisagreementInSubsystem reproduces the heart of condition (C)
// for the MinWait baseline: restricted to a 3-process subsystem where it
// waits for only 2 values, adversarial delivery produces two different
// minima — MinWait|D does not solve consensus in <D>.
func TestMinWaitDisagreementInSubsystem(t *testing.T) {
	// Full system n=3, f=1 (waits for 2 of 3). All three processes live.
	alg := algorithms.MinWait{F: 1}
	e := New(alg, vals(0, 1, 2), Options{Live: live(1, 2, 3)})
	w, found, err := e.FindDisagreement()
	if err != nil {
		t.Fatalf("FindDisagreement: %v", err)
	}
	if !found {
		t.Fatalf("no disagreement found (visited %d, truncated %t)", w.Stats.Visited, w.Stats.Truncated)
	}
	if got := len(w.Run.DistinctDecisions()); got < 2 {
		t.Fatalf("witness run has %d distinct decisions", got)
	}
	// The witness replays deterministically.
	if len(w.Run.Events) == 0 {
		t.Fatal("empty witness run")
	}
}

// TestMinWaitNoDisagreementWhenWaitingForAll verifies the explorer is not
// trigger-happy: with f=0 MinWait waits for all three values and always
// decides the global minimum; no disagreement exists (without crashes).
func TestMinWaitNoDisagreementWhenWaitingForAll(t *testing.T) {
	alg := algorithms.MinWait{F: 0}
	e := New(alg, vals(0, 1, 2), Options{Live: live(1, 2, 3)})
	w, found, err := e.FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("spurious disagreement: %s", w.Detail)
	}
	if w.Stats.Truncated {
		t.Fatalf("search truncated after %d configs; raise budget", w.Stats.Visited)
	}
}

// TestFLPKSetBlockingWithLateCrash reproduces the Theorem 2 failure mode of
// the initial-crash protocol: one crash *during* the run (after the victim
// was counted in someone's stage-1 neighbourhood but before it sent its
// stage-2 message) blocks a correct process forever.
func TestFLPKSetBlockingWithLateCrash(t *testing.T) {
	// n=3, f=1: L=2, each waits for 1 other in stage 1.
	alg := algorithms.FLPKSet{F: 1}
	e := New(alg, vals(0, 1, 2), Options{Live: live(1, 2, 3), MaxCrashes: 1})
	w, found, err := e.FindBlocking()
	if err != nil {
		t.Fatalf("FindBlocking: %v", err)
	}
	if !found {
		t.Fatalf("no blocking witness (visited %d, truncated %t)", w.Stats.Visited, w.Stats.Truncated)
	}
	if len(w.Run.Blocked) == 0 {
		t.Fatal("witness run reports no blocked process")
	}
	// The witness must actually contain a crash.
	sawCrash := false
	for _, ev := range w.Run.Events {
		if ev.Crashed && !ev.Silent {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("blocking witness without a crash — FLPKSet should terminate crash-free")
	}
}

// TestFLPKSetNoBlockingWithoutCrashes confirms the initial-crash protocol
// never blocks when the adversary has no crash budget (Theorem 8
// possibility, here verified exhaustively for a small instance).
func TestFLPKSetNoBlockingWithoutCrashes(t *testing.T) {
	alg := algorithms.FLPKSet{F: 1}
	e := New(alg, vals(0, 1, 2), Options{Live: live(1, 2, 3), MaxCrashes: 0})
	w, found, err := e.FindBlocking()
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("spurious blocking witness: %s", w.Detail)
	}
	if w.Stats.Truncated {
		t.Skipf("state space truncated at %d configs; cannot claim exhaustiveness", w.Stats.Visited)
	}
}

// TestValenceBivalentInitialConfiguration reproduces the FLP-style initial
// bivalence: MinWait{F:1} on inputs (0,1,1) can reach decision 0 and
// decision 1 depending on scheduling alone.
func TestValenceBivalentInitialConfiguration(t *testing.T) {
	alg := algorithms.MinWait{F: 1}
	e := New(alg, vals(0, 1, 1), Options{Live: live(1, 2, 3)})
	vs, stats, err := e.Valence(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 2 {
		t.Fatalf("valence = %v (visited %d), want bivalent", vs, stats.Visited)
	}
}

// TestValenceUnivalentConfiguration: with all-equal inputs only one value is
// ever decidable (Validity), so the configuration is univalent.
func TestValenceUnivalentConfiguration(t *testing.T) {
	alg := algorithms.MinWait{F: 1}
	e := New(alg, vals(7, 7, 7), Options{Live: live(1, 2, 3)})
	vs, stats, err := e.Valence(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Skipf("truncated at %d configs", stats.Visited)
	}
	if len(vs) != 1 || vs[0] != 7 {
		t.Fatalf("valence = %v, want [7]", vs)
	}
}

// TestSubsystemRestrictsToLiveSet: processes outside Live are dead from the
// start and must not decide or step.
func TestSubsystemRestrictsToLiveSet(t *testing.T) {
	alg := algorithms.MinWait{F: 2}
	restricted := sim.Restrict(alg, live(1, 2))
	e := New(restricted, vals(0, 1, 2, 3), Options{Live: live(1, 2)})
	w, found, err := e.FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	// MinWait{F:2} on n=4 waits for 2 values; in the 2-process subsystem
	// both live processes always assemble {v1, v2} and decide min = 0:
	// no disagreement.
	if found {
		t.Fatalf("unexpected disagreement: %s", w.Detail)
	}
	if w.Stats.Truncated {
		t.Skipf("truncated at %d", w.Stats.Visited)
	}
}

// TestDecideOwnImmediateDisagreement: the trivially flawed candidate
// disagrees after two steps.
func TestDecideOwnImmediateDisagreement(t *testing.T) {
	e := New(algorithms.DecideOwn{}, vals(0, 1), Options{Live: live(1, 2)})
	w, found, err := e.FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("DecideOwn disagreement not found")
	}
	if len(w.Run.Events) > 4 {
		t.Fatalf("witness unexpectedly long: %d events", len(w.Run.Events))
	}
}

// TestWitnessReplayMatchesFailurePattern: blocked/decided bookkeeping on the
// replayed run must be self-consistent.
func TestWitnessReplayConsistency(t *testing.T) {
	alg := algorithms.MinWait{F: 1}
	e := New(alg, vals(0, 1, 2), Options{Live: live(1, 2, 3), MaxCrashes: 1})
	w, found, err := e.FindDisagreement()
	if err != nil || !found {
		t.Fatalf("found=%t err=%v", found, err)
	}
	run := w.Run
	if vs := sim.CheckAdmissible(run, sim.AdmissibilityOptions{}); len(vs) != 0 {
		t.Fatalf("witness run inadmissible: %v", vs)
	}
	// Every decided process's decision is among the proposals (Validity of
	// MinWait).
	proposed := map[sim.Value]bool{0: true, 1: true, 2: true}
	for _, v := range run.DistinctDecisions() {
		if !proposed[v] {
			t.Fatalf("unproposed decision %d", v)
		}
	}
}
