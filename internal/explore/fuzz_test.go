package explore

// FuzzExploreParity is the fuzzing arm of the reduction differential
// matrices: the fuzzer picks a small random instance — algorithm, system
// size, proposal vector, crash budget — and the target asserts that every
// reduction mode (symmetry, POR, both) reaches exactly the verdicts of the
// plain exhaustive search, with revalidating witnesses, equal valence sets,
// and no more visited configurations. The handwritten suites pin the known
// interesting shapes; the fuzzer hunts for input vectors nobody thought of.
// CI runs the target briefly (see the fuzz-smoke step); the seed corpus
// runs as ordinary tests on every `go test`.

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
	"kset/internal/testutil"
)

// fuzzInstance decodes the fuzzer's raw picks into an exhaustively
// explorable instance: 2-3 live processes, proposals from a 4-value
// universe, at most one crash.
func fuzzInstance(algPick, nPick, crashPick byte, inputBits uint16) diffInstance {
	n := 2 + int(nPick%2)
	inputs := make([]sim.Value, n)
	for i := range inputs {
		inputs[i] = sim.Value(int(inputBits>>(2*i)) & 3)
	}
	live := make([]sim.ProcessID, n)
	for i := range live {
		live[i] = sim.ProcessID(i + 1)
	}
	var alg sim.Algorithm
	var name string
	switch algPick % 4 {
	case 0:
		alg, name = algorithms.MinWait{F: 1}, "minwait"
	case 1:
		alg, name = algorithms.FLPKSet{F: 1}, "flpkset"
	case 2:
		alg, name = algorithms.FirstHeard{}, "firstheard"
	case 3:
		alg, name = algorithms.DecideOwn{}, "decideown"
	}
	return diffInstance{name, alg, inputs, live, int(crashPick % 2)}
}

// fuzzFaults decodes the fuzzer's fault pick into an adversary: the zero
// pick keeps the crash-only engine, the rest arm one non-crash model with
// the smallest budget (1 event, 1 faulty process) so the fuzzed state
// spaces stay exhaustively explorable.
func fuzzFaults(faultPick byte) FaultAdversary {
	switch faultPick % 4 {
	case 1:
		return FaultAdversary{Model: sim.FaultSendOmission, Budget: 1, MaxFaulty: 1}
	case 2:
		return FaultAdversary{Model: sim.FaultReceiveOmission, Budget: 1, MaxFaulty: 1}
	case 3:
		return FaultAdversary{Model: sim.FaultByzantine, Budget: 1, MaxFaulty: 1}
	}
	return FaultAdversary{}
}

func FuzzExploreParity(f *testing.F) {
	// One seed per algorithm, covering uniform and mixed inputs, with and
	// without a crash budget; the last three arm each non-crash fault model
	// so the reduction parity matrix fuzzes the fault-branching adversary
	// from the first corpus run.
	f.Add(byte(0), byte(1), byte(1), uint16(0b100100), byte(0)) // minwait n=3 mixed, crash
	f.Add(byte(0), byte(1), byte(0), uint16(0), byte(0))        // minwait n=3 uniform
	f.Add(byte(1), byte(0), byte(1), uint16(0b0100), byte(0))   // flpkset n=2 mixed, crash
	f.Add(byte(2), byte(1), byte(0), uint16(0b110000), byte(0)) // firstheard n=3
	f.Add(byte(3), byte(1), byte(1), uint16(0b010101), byte(0)) // decideown n=3 uniform, crash
	f.Add(byte(0), byte(1), byte(0), uint16(0b100100), byte(1)) // minwait n=3, send omission
	f.Add(byte(2), byte(1), byte(0), uint16(0b110000), byte(2)) // firstheard n=3, receive omission
	f.Add(byte(0), byte(0), byte(1), uint16(0b0100), byte(3))   // minwait n=2 crash, byzantine
	f.Fuzz(func(t *testing.T, algPick, nPick, crashPick byte, inputBits uint16, faultPick byte) {
		d := fuzzInstance(algPick, nPick, crashPick, inputBits)
		faults := fuzzFaults(faultPick)
		build := func(symmetry, por bool) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				// Keep each exec well under the fuzzer's per-input hang
				// limit: instances whose plain search exceeds this budget
				// (FLPKSet at n=3 with a crash runs past 40000 nodes) are
				// skipped here and pinned by the deterministic por_test
				// suite instead.
				MaxConfigs: 12000,
				Workers:    1,
				Symmetry:   symmetry,
				POR:        por,
				Faults:     faults,
			})
		}
		modes := []struct {
			name          string
			symmetry, por bool
		}{
			{"sym", true, false},
			{"por", false, true},
			{"por+sym", true, true},
		}

		goals := []struct {
			name string
			goal goalFunc
		}{
			{"disagreement", disagreementGoal},
			{"blocking", blockingGoal},
		}
		for _, g := range goals {
			plainW, plainFound, _, err := build(false, false).searchArena(g.goal, g.name)
			if err != nil {
				t.Fatal(err)
			}
			if plainW.Stats.Truncated {
				return // not exhaustively explorable; parity is not defined
			}
			for _, m := range modes {
				w, found, _, err := build(m.symmetry, m.por).searchArena(g.goal, g.name)
				if err != nil {
					t.Fatal(err)
				}
				if w.Stats.Truncated {
					t.Fatalf("%s/%s: reduced search truncated where plain was exhaustive", m.name, g.name)
				}
				if found != plainFound {
					t.Fatalf("%s/%s verdict diverged on %s %v crashes=%d: reduced found=%t, plain found=%t",
						m.name, g.name, d.name, d.inputs, d.crashes, found, plainFound)
				}
				if w.Stats.Visited > plainW.Stats.Visited {
					t.Fatalf("%s/%s: reduced visited %d > plain %d", m.name, g.name, w.Stats.Visited, plainW.Stats.Visited)
				}
				if found {
					testutil.RevalidateWitness(t, w.Kind, w.Run)
				}
			}
		}

		plainVals, plainStats, err := build(false, false).Valence(0)
		if err != nil {
			t.Fatal(err)
		}
		if plainStats.Truncated {
			return
		}
		for _, m := range modes {
			vals, _, err := build(m.symmetry, m.por).Valence(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != len(plainVals) {
				t.Fatalf("%s valence diverged on %s %v: reduced %v, plain %v", m.name, d.name, d.inputs, vals, plainVals)
			}
			for i := range vals {
				if vals[i] != plainVals[i] {
					t.Fatalf("%s valence diverged on %s %v: reduced %v, plain %v", m.name, d.name, d.inputs, vals, plainVals)
				}
			}
		}
	})
}

// FuzzFaultParity is the fuzzing arm of the fault-model substrate's
// robustness guarantees. For a random small instance and a random fault
// adversary it asserts the two load-bearing invariants of the layer:
// crash-only bit-identity (an explicitly crash-spelled adversary drives the
// exact engine of the zero value — stats, witness detail, and scheduled
// run), and fault monotonicity (arming a fault model strictly grows the
// adversary's power, so a crash-only witness implies a fault-model witness,
// and every found witness revalidates by concrete replay). CI runs the
// target briefly; the seed corpus runs as ordinary tests on every `go test`.
func FuzzFaultParity(f *testing.F) {
	f.Add(byte(0), byte(1), byte(1), uint16(0b100100), byte(1)) // minwait n=3 mixed crash, send omission
	f.Add(byte(2), byte(1), byte(0), uint16(0b110000), byte(2)) // firstheard n=3, receive omission
	f.Add(byte(3), byte(1), byte(0), uint16(0b010101), byte(3)) // decideown n=3, byzantine
	f.Add(byte(1), byte(0), byte(1), uint16(0b0100), byte(1))   // flpkset n=2 crash, send omission
	f.Fuzz(func(t *testing.T, algPick, nPick, crashPick byte, inputBits uint16, faultPick byte) {
		d := fuzzInstance(algPick, nPick, crashPick, inputBits)
		build := func(fa FaultAdversary) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				MaxConfigs: 12000,
				Workers:    1,
				Faults:     fa,
			})
		}
		crashSpelled, err := ParseFaults("crash")
		if err != nil {
			t.Fatal(err)
		}
		goals := []struct {
			name string
			find func(*Explorer) (*Witness, bool, error)
		}{
			{"disagreement", (*Explorer).FindDisagreement},
			{"blocking", (*Explorer).FindBlocking},
		}
		for _, g := range goals {
			plainW, plainFound, err := g.find(build(FaultAdversary{}))
			if err != nil {
				t.Fatal(err)
			}
			spelledW, spelledFound, err := g.find(build(crashSpelled))
			if err != nil {
				t.Fatal(err)
			}
			if spelledFound != plainFound || spelledW.Stats != plainW.Stats || spelledW.Detail != plainW.Detail {
				t.Fatalf("%s: crash-spelled adversary diverged on %s %v: %+v/%t %q, zero %+v/%t %q",
					g.name, d.name, d.inputs, spelledW.Stats, spelledFound, spelledW.Detail,
					plainW.Stats, plainFound, plainW.Detail)
			}
			if plainW.Stats.Truncated {
				continue // not exhaustively explorable; monotonicity is not checkable
			}
			fa := fuzzFaults(faultPick)
			if fa.Model == sim.FaultCrash {
				continue
			}
			faultW, faultFound, err := g.find(build(fa))
			if err != nil {
				t.Fatal(err)
			}
			if plainFound && !faultFound {
				t.Fatalf("%s: crash-only witness exists on %s %v but the %s adversary (a superset) found none",
					g.name, d.name, d.inputs, fa.Model)
			}
			if faultFound {
				testutil.RevalidateWitness(t, faultW.Kind, faultW.Run)
				for _, ev := range faultW.Run.Events {
					if ev.Fault != sim.FaultCrash && ev.Fault != fa.Model {
						t.Fatalf("%s: witness replayed a %s event under the %s adversary", g.name, ev.Fault, fa.Model)
					}
				}
			} else if !faultW.Stats.Truncated && faultW.Stats.Visited < plainW.Stats.Visited {
				t.Fatalf("%s: exhaustive %s search visited %d < crash-only %d; the fault space contains the plain space",
					g.name, fa.Model, faultW.Stats.Visited, plainW.Stats.Visited)
			}
		}
	})
}

// FuzzPackedParity is the fuzzing arm of the packed-engine differential
// gate (see packed_differential_test.go): for a random small instance, a
// random fault adversary, and a random reduction mode, the packed
// struct-of-arrays engine must reproduce the pointer engine's searches
// bit for bit — found flags, stats (truncation points included), witness
// details, and scheduled witness runs, with found witnesses revalidating
// by concrete replay. CI runs the target briefly (see the fuzz-smoke
// step); the seed corpus runs as ordinary tests on every `go test`.
func FuzzPackedParity(f *testing.F) {
	// One seed per algorithm, plus one per non-crash fault model and one
	// per reduction mode, so every packed code path (corrupt-flag hashing,
	// omission branching, orbit-canonical packer tables, crash-normalized
	// keys) fuzzes from the first corpus run.
	f.Add(byte(0), byte(1), byte(1), uint16(0b100100), byte(0), byte(0)) // minwait n=3 mixed, crash
	f.Add(byte(1), byte(0), byte(1), uint16(0b0100), byte(0), byte(0))   // flpkset n=2 mixed, crash
	f.Add(byte(2), byte(1), byte(0), uint16(0b110000), byte(0), byte(0)) // firstheard n=3
	f.Add(byte(3), byte(1), byte(1), uint16(0b010101), byte(0), byte(0)) // decideown n=3, crash
	f.Add(byte(0), byte(1), byte(0), uint16(0b100100), byte(1), byte(1)) // minwait, send omission, sym
	f.Add(byte(2), byte(1), byte(0), uint16(0b110000), byte(2), byte(2)) // firstheard, receive omission, por
	f.Add(byte(0), byte(0), byte(1), uint16(0b0100), byte(3), byte(1))   // minwait n=2, byzantine, sym
	f.Add(byte(0), byte(1), byte(1), uint16(0), byte(0), byte(3))        // minwait uniform, crash, por+sym
	f.Fuzz(func(t *testing.T, algPick, nPick, crashPick byte, inputBits uint16, faultPick, modePick byte) {
		d := fuzzInstance(algPick, nPick, crashPick, inputBits)
		faults := fuzzFaults(faultPick)
		symmetry := modePick&1 != 0
		por := modePick&2 != 0
		build := func(packed bool) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				MaxConfigs: 12000,
				Workers:    1,
				Symmetry:   symmetry,
				POR:        por,
				Faults:     faults,
				Packed:     packed,
			})
		}
		goals := []struct {
			name string
			find func(*Explorer) (*Witness, bool, error)
		}{
			{"disagreement", (*Explorer).FindDisagreement},
			{"blocking", (*Explorer).FindBlocking},
		}
		for _, g := range goals {
			ptrW, ptrFound, err := g.find(build(false))
			if err != nil {
				t.Fatal(err)
			}
			pckW, pckFound, err := g.find(build(true))
			if err != nil {
				t.Fatal(err)
			}
			if pckFound != ptrFound {
				t.Fatalf("%s verdict diverged on %s %v crashes=%d: packed found=%t, pointer found=%t",
					g.name, d.name, d.inputs, d.crashes, pckFound, ptrFound)
			}
			if pckW.Stats != ptrW.Stats {
				t.Fatalf("%s stats diverged on %s %v: packed %+v, pointer %+v",
					g.name, d.name, d.inputs, pckW.Stats, ptrW.Stats)
			}
			if !pckFound {
				continue
			}
			if pckW.Detail != ptrW.Detail {
				t.Fatalf("%s detail diverged: packed %q, pointer %q", g.name, pckW.Detail, ptrW.Detail)
			}
			if got, want := runSignature(pckW.Run), runSignature(ptrW.Run); got != want {
				t.Fatalf("%s witness run diverged:\n got %s\nwant %s", g.name, got, want)
			}
			testutil.RevalidateWitness(t, pckW.Kind, pckW.Run)
		}
	})
}
