package explore

import (
	"context"
	"os"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

// cancelInstance is the cancellation test workhorse: uniform inputs cannot
// disagree, so the space (1212 configurations) must be swept exhaustively —
// the search crosses the cancelInterval poll point mid-level exactly once,
// giving a deterministic cancellation cut.
func cancelInstance() diffInstance {
	return diffInstance{"minwait-n3-uniform", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0}, []sim.ProcessID{1, 2, 3}, 1}
}

func cancelExplorer(d diffInstance, ctx context.Context, onProgress func(int, int), store Store, workers, maxConfigs int, ckptDir string) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		MaxConfigs: maxConfigs,
		Workers:    workers,
		Store:      store,
		Checkpoint: ckptDir,
		Context:    ctx,
		OnProgress: onProgress,
	})
}

// TestCancelThenResumeParity is the acceptance gate of the cancellation
// layer: a search cancelled mid-flight with Options.Checkpoint set must pause
// through the exact truncation path — checkpoint file and all — and a later
// uncancelled search of the same instance must resume it and return the
// identical verdict and stats as an uninterrupted run.
func TestCancelThenResumeParity(t *testing.T) {
	d := cancelInstance()
	const fullBudget = 1000000
	refW, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if refFound || refW.Stats.Truncated {
		t.Fatalf("reference search: found=%t stats=%+v", refFound, refW.Stats)
	}
	for _, store := range []Store{StoreFrontierOnly, StoreSpill} {
		for _, workers := range [][2]int{{1, 1}, {1, 4}, {4, 1}} {
			dir := t.TempDir()
			// Cancel from the progress callback at the first sealed level:
			// the serial loop detects it at the next visited%cancelInterval
			// poll — visited 1024, strictly inside a level — so the pause is
			// a genuine mid-level cut, not a tidy level boundary.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			w1, found1, err := cancelExplorer(d, ctx, func(visited, level int) {
				if visited > 0 {
					cancel()
				}
			}, store, workers[0], fullBudget, dir).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			if found1 || !w1.Stats.Truncated || !w1.Stats.Cancelled {
				t.Fatalf("store=%v workers=%v: expected cancelled pause, got found=%t stats=%+v", store, workers, found1, w1.Stats)
			}
			if workers[0] == 1 && w1.Stats.Visited != cancelInterval {
				t.Fatalf("store=%v: serial cancellation landed at visited=%d, want %d (mid-level)", store, w1.Stats.Visited, cancelInterval)
			}
			if w1.Checkpoint == "" {
				t.Fatalf("store=%v workers=%v: cancelled search reported no checkpoint", store, workers)
			}
			if _, err := os.Stat(w1.Checkpoint); err != nil {
				t.Fatalf("store=%v workers=%v: checkpoint file missing: %v", store, workers, err)
			}
			// Resume without a context: the verdict and stats must be those
			// of the uninterrupted run, and the checkpoint must be cleared.
			w2, found2, err := ckptExplorer(d, store, workers[1], fullBudget, dir).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			if found2 != refFound || w2.Stats != refW.Stats {
				t.Fatalf("store=%v workers=%v: resumed found=%t stats=%+v, uninterrupted found=%t stats=%+v",
					store, workers, found2, w2.Stats, refFound, refW.Stats)
			}
			if _, err := os.Stat(w1.Checkpoint); !os.IsNotExist(err) {
				t.Fatalf("store=%v workers=%v: checkpoint not removed after completion (err=%v)", store, workers, err)
			}
		}
	}
}

// TestCancelBeforeStartResumesToWitness covers the witness side of the
// parity contract on the small crash instance: a pre-cancelled context pauses
// the search before any expansion, and the resumed search must deliver the
// reference witness bit for bit.
func TestCancelBeforeStartResumesToWitness(t *testing.T) {
	d := ckptInstance()
	const fullBudget = 100000
	refW, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, "").FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if !refFound {
		t.Fatalf("reference search found no witness: stats=%+v", refW.Stats)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	w1, found1, err := cancelExplorer(d, ctx, nil, StoreFrontierOnly, 1, fullBudget, dir).FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found1 || !w1.Stats.Cancelled || w1.Stats.Visited != 0 {
		t.Fatalf("pre-cancelled search: found=%t stats=%+v", found1, w1.Stats)
	}
	if w1.Checkpoint == "" {
		t.Fatal("pre-cancelled search reported no checkpoint")
	}
	w2, found2, err := ckptExplorer(d, StoreFrontierOnly, 1, fullBudget, dir).FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if found2 != refFound || w2.Stats != refW.Stats {
		t.Fatalf("resumed found=%t stats=%+v, uninterrupted found=%t stats=%+v", found2, w2.Stats, refFound, refW.Stats)
	}
	if w2.Detail != refW.Detail || runSignature(w2.Run) != runSignature(refW.Run) {
		t.Fatal("resumed witness diverged from the uninterrupted witness")
	}
}

// TestCancelWithoutCheckpointJustStops pins the non-resumable paths: a
// cancelled search without Options.Checkpoint — the in-memory arena engine,
// the bounded DFS, and a bounded BFS without a checkpoint directory — stops
// with Cancelled and Truncated set and no error, and reports no checkpoint.
func TestCancelWithoutCheckpointJustStops(t *testing.T) {
	d := cancelInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		opts Options
	}{
		{"arena-bfs", Options{Live: d.live, MaxCrashes: d.crashes, MaxConfigs: 1000000, Context: ctx}},
		{"arena-dfs", Options{Live: d.live, MaxCrashes: d.crashes, MaxConfigs: 1000000, Strategy: "dfs", Context: ctx}},
		{"bounded-dfs", Options{Live: d.live, MaxCrashes: d.crashes, MaxConfigs: 1000000, Strategy: "dfs", Store: StoreFrontierOnly, Context: ctx}},
		{"bounded-bfs", Options{Live: d.live, MaxCrashes: d.crashes, MaxConfigs: 1000000, Store: StoreFrontierOnly, Context: ctx}},
	}
	for _, tc := range cases {
		w, found, err := New(sim.Restrict(d.alg, d.live), d.inputs, tc.opts).FindDisagreement()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if found || !w.Stats.Cancelled || !w.Stats.Truncated {
			t.Fatalf("%s: found=%t stats=%+v", tc.name, found, w.Stats)
		}
		if w.Checkpoint != "" {
			t.Fatalf("%s: checkpoint %q reported without Options.Checkpoint", tc.name, w.Checkpoint)
		}
	}
}

// TestUncancelledContextChangesNothing pins the transparency contract: a
// live (never-cancelled) context must leave verdict, stats, and witness
// bit-identical to a context-free run.
func TestUncancelledContextChangesNothing(t *testing.T) {
	for _, d := range []diffInstance{cancelInstance(), ckptInstance()} {
		ref, refFound, err := ckptExplorer(d, StoreFrontierOnly, 1, 1000000, "").FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		w, found, err := cancelExplorer(d, context.Background(), nil, StoreFrontierOnly, 1, 1000000, "").FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		if found != refFound || w.Stats != ref.Stats || w.Detail != ref.Detail {
			t.Fatalf("%s: with context found=%t stats=%+v, without found=%t stats=%+v",
				d.name, found, w.Stats, refFound, ref.Stats)
		}
	}
}
