package explore

import (
	"reflect"
	"runtime"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

// TestParallelSearchDeterministic runs the parallel finders repeatedly with
// more workers than frontier entries and asserts that every run returns the
// identical witness: same detail, same scheduled run, same stats. This is
// the determinism guarantee of the claim-table design, independent of
// goroutine interleaving.
func TestParallelSearchDeterministic(t *testing.T) {
	d := diffInstances()[0] // minwait-n3: disagreement reachable
	var detail, sig string
	var stats Stats
	for i := 0; i < 5; i++ {
		w, found, err := d.explorerWorkers(8).FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatal("witness not found")
		}
		if i == 0 {
			detail, sig, stats = w.Detail, runSignature(w.Run), w.Stats
			continue
		}
		if w.Detail != detail || runSignature(w.Run) != sig || w.Stats != stats {
			t.Fatalf("run %d diverged: detail=%q stats=%+v", i, w.Detail, w.Stats)
		}
	}
}

// TestParallelTruncationParity sweeps MaxConfigs budgets — including values
// that cut a BFS level mid-way — and asserts the parallel search reports
// exactly the sequential search's found flag, stats, and truncation.
func TestParallelTruncationParity(t *testing.T) {
	d := diffInstances()[1] // minwait-n3-crash: larger space, witnesses exist
	for _, maxConfigs := range []int{1, 2, 3, 7, 25, 100, 999, 5000} {
		mk := func(workers int) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				MaxConfigs: maxConfigs,
				Workers:    workers,
			})
		}
		seqW, seqFound, err := mk(1).FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		parW, parFound, err := mk(4).FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		if parFound != seqFound || parW.Stats != seqW.Stats {
			t.Fatalf("maxConfigs=%d: parallel found=%t stats=%+v, sequential found=%t stats=%+v",
				maxConfigs, parFound, parW.Stats, seqFound, seqW.Stats)
		}
		if seqFound && runSignature(parW.Run) != runSignature(seqW.Run) {
			t.Fatalf("maxConfigs=%d: witness runs diverged", maxConfigs)
		}
	}
}

// TestParallelValenceMatchesSequential asserts that parallel valence
// computation — exhaustive and with early stop, where the per-parent gate
// emulation matters — returns the sequential values and stats.
func TestParallelValenceMatchesSequential(t *testing.T) {
	for _, d := range diffInstances() {
		for _, stopAt := range []int{0, 2} {
			seqVals, seqStats, err := d.explorerWorkers(1).Valence(stopAt)
			if err != nil {
				t.Fatal(err)
			}
			parVals, parStats, err := d.explorerWorkers(4).Valence(stopAt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(parVals, seqVals) || parStats != seqStats {
				t.Fatalf("%s stopAt=%d: parallel %v %+v, sequential %v %+v",
					d.name, stopAt, parVals, parStats, seqVals, seqStats)
			}
		}
	}
}

// TestParallelCriticalStepsMatchSequential asserts the full critical-step
// analysis — whose successor valences run on the parallel frontier — is
// unchanged by the worker count.
func TestParallelCriticalStepsMatchSequential(t *testing.T) {
	mk := func(workers int) *Explorer {
		return New(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 1}, Options{
			Live:    []sim.ProcessID{1, 2, 3},
			Workers: workers,
		})
	}
	seq, err := mk(1).AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	par, err := mk(4).AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("critical-step analyses diverged:\nparallel   %+v\nsequential %+v", par, seq)
	}
}

// TestSearchWorkersResolution checks the Workers knob: zero resolves to
// GOMAXPROCS, explicit values are respected, and the DFS strategy stays on
// the sequential engine regardless.
func TestSearchWorkersResolution(t *testing.T) {
	e := New(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, Options{Live: []sim.ProcessID{1, 2, 3}})
	if got, want := e.searchWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, want)
	}
	e = New(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, Options{Live: []sim.ProcessID{1, 2, 3}, Workers: 3})
	if got := e.searchWorkers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}

	// DFS with many workers must match DFS with one worker (it is the same
	// sequential engine; the knob only applies to breadth-first searches).
	mk := func(workers int) *Explorer {
		return New(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, Options{
			Live:     []sim.ProcessID{1, 2, 3},
			Strategy: "dfs",
			Workers:  workers,
		})
	}
	seqW, seqFound, err := mk(1).FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	parW, parFound, err := mk(4).FindDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	if parFound != seqFound || parW.Stats != seqW.Stats || runSignature(parW.Run) != runSignature(seqW.Run) {
		t.Fatal("DFS search changed behaviour under Workers > 1")
	}
}

// TestParallelSearchWithOracle exercises the parallel frontier under a
// failure-detector oracle (pure, concurrency-safe) and checks parity with
// the sequential search.
func TestParallelSearchWithOracle(t *testing.T) {
	oracle := stubOracle{}
	mk := func(workers int) *Explorer {
		return New(algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, Options{
			Live:    []sim.ProcessID{1, 2, 3},
			Oracle:  oracle,
			Workers: workers,
		})
	}
	seqW, seqFound, seqAr, err := mk(1).searchArena(disagreementGoal, "disagreement")
	if err != nil {
		t.Fatal(err)
	}
	parW, parFound, parAr, err := mk(4).searchArena(disagreementGoal, "disagreement")
	if err != nil {
		t.Fatal(err)
	}
	if parFound != seqFound || parW.Stats != seqW.Stats {
		t.Fatalf("oracle search diverged: parallel %+v/%t, sequential %+v/%t",
			parW.Stats, parFound, seqW.Stats, seqFound)
	}
	if seqFound {
		if runSignature(parW.Run) != runSignature(seqW.Run) {
			t.Fatal("oracle witness runs diverged")
		}
	} else if parAr.visited.Len() != seqAr.visited.Len() {
		t.Fatalf("oracle visited sets diverged: %d vs %d", parAr.visited.Len(), seqAr.visited.Len())
	}
}

// stubOracle is a pure, concurrency-safe oracle: a deterministic function of
// the query alone.
type stubOracle struct{}

func (stubOracle) Query(p sim.ProcessID, t int, _ *sim.Configuration) sim.FDValue {
	return nil
}
