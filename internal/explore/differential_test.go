package explore

import (
	"fmt"
	"strings"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
	"kset/internal/testutil"
)

// legacyKey is the seed implementation's string node key: crash budget spent
// plus the fully materialized configuration key.
func legacyKey(cfg *sim.Configuration, crashes int) string {
	return fmt.Sprintf("c%d|%s", crashes, cfg.Key())
}

// enumerate walks the full reachable space of e (which must be exhaustive
// within maxConfigs), deduplicating either by the legacy string key or by
// the fingerprint key, and returns the canonical (string) identity of every
// distinct configuration visited. Equal result sets across the two modes
// prove the fingerprint dedup neither merges distinct configurations
// (collision) nor re-expands equal ones (incrementality bug).
func enumerate(t *testing.T, e *Explorer, byFingerprint bool, maxConfigs int) map[string]bool {
	t.Helper()
	start, err := e.initial()
	if err != nil {
		t.Fatal(err)
	}
	type qent struct {
		cfg     *sim.Configuration
		crashes int
	}
	reached := map[string]bool{legacyKey(start, 0): true}
	visitedStr := map[string]bool{legacyKey(start, 0): true}
	visitedFP := map[uint64]bool{cfgKey(start, 0): true}
	queue := []qent{{cfg: start}}
	for len(queue) > 0 {
		if len(reached) > maxConfigs {
			t.Fatalf("state space exceeds %d configurations; shrink the instance", maxConfigs)
		}
		cur := queue[0]
		queue = queue[1:]
		for _, act := range e.actions(cur.cfg, cur.crashes) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			var seen bool
			if byFingerprint {
				seen = visitedFP[cfgKey(next, crashes)]
				visitedFP[cfgKey(next, crashes)] = true
			} else {
				seen = visitedStr[legacyKey(next, crashes)]
				visitedStr[legacyKey(next, crashes)] = true
			}
			if seen {
				e.release(next)
				continue
			}
			reached[legacyKey(next, crashes)] = true
			queue = append(queue, qent{cfg: next, crashes: crashes})
		}
	}
	return reached
}

// diffInstance is one small, exhaustively explorable system.
type diffInstance struct {
	name    string
	alg     sim.Algorithm
	inputs  []sim.Value
	live    []sim.ProcessID
	crashes int
}

func diffInstances() []diffInstance {
	return []diffInstance{
		{"minwait-n3", algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 0},
		{"minwait-n3-crash", algorithms.MinWait{F: 1}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 1},
		{"minwait-n4-sub3", algorithms.MinWait{F: 2}, []sim.Value{0, 1, 2, 3}, []sim.ProcessID{1, 2, 4}, 1},
		{"flpkset-n3", algorithms.FLPKSet{F: 1}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 0},
		{"firstheard-n4", algorithms.FirstHeard{}, []sim.Value{0, 1, 2, 3}, []sim.ProcessID{1, 2, 3, 4}, 0},
	}
}

func (d diffInstance) explorer() *Explorer {
	return d.explorerWorkers(1)
}

// explorerWorkers builds the instance's explorer with an explicit search
// worker count (1 = the sequential legacy engine).
func (d diffInstance) explorerWorkers(workers int) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Workers:    workers,
	})
}

// TestFingerprintDedupVisitsLegacySet asserts, per instance, that the
// fingerprint-keyed BFS reaches exactly the configuration set of the legacy
// string-keyed BFS.
func TestFingerprintDedupVisitsLegacySet(t *testing.T) {
	for _, d := range diffInstances() {
		t.Run(d.name, func(t *testing.T) {
			const maxConfigs = 400000
			legacy := enumerate(t, d.explorer(), false, maxConfigs)
			fp := enumerate(t, d.explorer(), true, maxConfigs)
			if len(legacy) != len(fp) {
				t.Fatalf("visited %d configurations with string dedup, %d with fingerprint dedup",
					len(legacy), len(fp))
			}
			for key := range legacy {
				if !fp[key] {
					t.Fatalf("fingerprint search missed configuration %s", key)
				}
			}
		})
	}
}

// TestFingerprintSearchFindsLegacyWitnesses asserts that the production
// searches find a witness exactly when the legacy string-keyed enumeration
// contains one, and that found witnesses replay to genuine violations.
func TestFingerprintSearchFindsLegacyWitnesses(t *testing.T) {
	for _, d := range diffInstances() {
		t.Run(d.name, func(t *testing.T) {
			wantDisagreement := legacyGoalReachable(t, d, func(cfg *sim.Configuration) bool {
				return cfg.Disagreement()
			})

			w, found, err := d.explorer().FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			if w.Stats.Truncated {
				t.Fatalf("instance not exhaustive (visited %d)", w.Stats.Visited)
			}
			if found != wantDisagreement {
				t.Fatalf("FindDisagreement found=%t, legacy exhaustive search says %t", found, wantDisagreement)
			}
			if found {
				testutil.RevalidateWitness(t, w.Kind, w.Run)
			}
		})
	}
}

// runSignature reduces a witness run to a comparable encoding: the scheduled
// step sequence plus the final configuration's canonical key.
func runSignature(r *sim.Run) string {
	var b strings.Builder
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "(p%d c%t s%t d%d)", ev.Proc, ev.Crashed, ev.Silent, len(ev.Delivered))
	}
	b.WriteString("|")
	b.WriteString(r.Final.Key())
	return b.String()
}

// TestParallelSearchVisitsSequentialSet asserts, per instance and per goal,
// that the level-synchronous parallel frontier search produces results
// bit-identical to the sequential search — same found flag, witness detail,
// scheduled witness run, and stats — and, on exhaustive searches, that it
// visits exactly the sequential search's configuration set (equal arena
// visited-key sets and node counts).
func TestParallelSearchVisitsSequentialSet(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	for _, d := range diffInstances() {
		for _, g := range goals {
			t.Run(d.name+"/"+g.name, func(t *testing.T) {
				seqW, seqFound, seqAr, err := d.explorerWorkers(1).searchArena(g.goal, g.name)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4} {
					parW, parFound, parAr, err := d.explorerWorkers(workers).searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					if parFound != seqFound {
						t.Fatalf("workers=%d: found=%t, sequential found=%t", workers, parFound, seqFound)
					}
					if parW.Stats != seqW.Stats {
						t.Fatalf("workers=%d: stats %+v, sequential %+v", workers, parW.Stats, seqW.Stats)
					}
					if seqFound {
						if parW.Detail != seqW.Detail {
							t.Fatalf("workers=%d: detail %q, sequential %q", workers, parW.Detail, seqW.Detail)
						}
						if got, want := runSignature(parW.Run), runSignature(seqW.Run); got != want {
							t.Fatalf("workers=%d: witness run diverged:\n got %s\nwant %s", workers, got, want)
						}
						continue
					}
					// Exhaustive search: the visited sets must be identical.
					if parAr.visited.Len() != seqAr.visited.Len() || len(parAr.nodes) != len(seqAr.nodes) {
						t.Fatalf("workers=%d: visited %d nodes %d, sequential visited %d nodes %d",
							workers, parAr.visited.Len(), len(parAr.nodes), seqAr.visited.Len(), len(seqAr.nodes))
					}
					seqAr.visited.Range(func(key uint64) bool {
						if !parAr.visited.Contains(key) {
							t.Fatalf("workers=%d: parallel search missed visited key %#x", workers, key)
						}
						return true
					})
				}
			})
		}
	}
}

// legacyGoalReachable reports whether some configuration reachable under
// string-keyed dedup satisfies goal.
func legacyGoalReachable(t *testing.T, d diffInstance, goal func(*sim.Configuration) bool) bool {
	t.Helper()
	e := d.explorer()
	start, err := e.initial()
	if err != nil {
		t.Fatal(err)
	}
	if goal(start) {
		return true
	}
	type qent struct {
		cfg     *sim.Configuration
		crashes int
	}
	visited := map[string]bool{legacyKey(start, 0): true}
	queue := []qent{{cfg: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, act := range e.actions(cur.cfg, cur.crashes) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			key := legacyKey(next, crashes)
			if visited[key] {
				e.release(next)
				continue
			}
			visited[key] = true
			if goal(next) {
				return true
			}
			queue = append(queue, qent{cfg: next, crashes: crashes})
		}
	}
	return false
}
