package explore

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func BenchmarkFindDisagreementBFS(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindDisagreementDFS(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}, Strategy: "dfs"})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindDisagreementDFSWide(b *testing.B) {
	// Five live processes: the regime where DFS beats BFS decisively.
	inputs := []sim.Value{0, 1, 2, 3, 4}
	live := []sim.ProcessID{1, 2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 2}, inputs, Options{Live: live, Strategy: "dfs"})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindBlockingLateCrash(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.FLPKSet{F: 1}, inputs, Options{
			Live:       []sim.ProcessID{1, 2, 3},
			MaxCrashes: 1,
			Strategy:   "dfs",
		})
		_, found, err := e.FindBlocking()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkValence(b *testing.B) {
	inputs := []sim.Value{0, 1, 1}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}})
		vals, _, err := e.Valence(2)
		if err != nil || len(vals) < 2 {
			b.Fatalf("vals=%v err=%v", vals, err)
		}
	}
}
