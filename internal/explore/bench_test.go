package explore

import (
	"runtime"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

func BenchmarkFindDisagreementBFS(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindDisagreementDFS(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}, Strategy: "dfs"})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindDisagreementDFSWide(b *testing.B) {
	// Five live processes: the regime where DFS beats BFS decisively.
	inputs := []sim.Value{0, 1, 2, 3, 4}
	live := []sim.ProcessID{1, 2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 2}, inputs, Options{Live: live, Strategy: "dfs"})
		_, found, err := e.FindDisagreement()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

func BenchmarkFindBlockingLateCrash(b *testing.B) {
	inputs := []sim.Value{0, 1, 2}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.FLPKSet{F: 1}, inputs, Options{
			Live:       []sim.ProcessID{1, 2, 3},
			MaxCrashes: 1,
			Strategy:   "dfs",
		})
		_, found, err := e.FindBlocking()
		if err != nil || !found {
			b.Fatalf("found=%t err=%v", found, err)
		}
	}
}

// BenchmarkParallelSearch times the same exhaustive breadth-first search
// (MinWait{F:1} on four processes with uniform proposals — no witness
// exists, so every one of its ~7800 configurations is visited) at worker
// counts 1, 2, and GOMAXPROCS, making the scaling curve of the
// level-synchronous parallel frontier visible in the benchmark output and
// the committed baseline. workers=1 is the sequential legacy engine, so the
// 1-vs-2 delta also shows the parallel bookkeeping overhead.
func BenchmarkParallelSearch(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: live, Workers: workers})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=2", func(b *testing.B) { run(b, 2) })
	b.Run("workers=gomaxprocs", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkSymmetrySearch times the same exhaustive uniform-input Theorem 2
// search (MinWait{F:1}, four interchangeable processes, one late crash — no
// disagreement exists, so the whole space is visited) with orbit-canonical
// symmetry reduction off and on. The "on" variant is gated in CI
// (cmd/benchgate); both report their visited-node count as nodes/op, and
// benchgate prints the node delta alongside ns/op.
func BenchmarkSymmetrySearch(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, symmetry bool) {
		visited := 0
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{
				Live:       live,
				MaxCrashes: 1,
				Workers:    1,
				Symmetry:   symmetry,
			})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
			visited = w.Stats.Visited
		}
		b.ReportMetric(float64(visited), "nodes/op")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkPORSearch times the same exhaustive uniform-input Theorem 2
// search as BenchmarkSymmetrySearch (MinWait{F:1}, four processes, one late
// crash — no disagreement exists, so the whole space is visited) with
// partial-order reduction off and on, symmetry off in both so the POR axis
// is measured alone (the composed POR+symmetry figure is pinned by
// TestPORStrictReductionUniformTheorem2). The "on" variant is gated in CI
// (cmd/benchgate); both report their visited-node count as nodes/op, and
// benchgate prints the node delta alongside ns/op.
func BenchmarkPORSearch(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, por bool) {
		visited := 0
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{
				Live:       live,
				MaxCrashes: 1,
				Workers:    1,
				POR:        por,
			})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
			visited = w.Stats.Visited
		}
		b.ReportMetric(float64(visited), "nodes/op")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkFrontierOnlySearch times the same exhaustive uniform-input
// Theorem 2 search (MinWait{F:1}, four interchangeable processes, one late
// crash — no witness exists, so all ~42683 configurations are visited)
// under the in-memory arena store and the frontier-only bounded store.
// Both variants are gated in CI (cmd/benchgate) with the -benchmem B/op and
// allocs/op columns: the pair pins the bounded engine's time overhead
// against the arena engine AND the per-state allocation profile of each —
// the bounded store's reason to exist is the B/op column. Both report
// nodes/op (identical by the bit-identity guarantee; benchgate shows the
// delta, which must be zero).
func BenchmarkFrontierOnlySearch(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, store Store) {
		b.ReportAllocs()
		visited := 0
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{
				Live:       live,
				MaxCrashes: 1,
				Workers:    1,
				Store:      store,
			})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
			visited = w.Stats.Visited
		}
		b.ReportMetric(float64(visited), "nodes/op")
	}
	b.Run("inmem", func(b *testing.B) { run(b, StoreInMemory) })
	b.Run("frontier", func(b *testing.B) { run(b, StoreFrontierOnly) })
}

// BenchmarkPackedExpansion times the same exhaustive uniform-input Theorem 2
// search as BenchmarkFrontierOnlySearch (MinWait{F:1}, four processes, one
// late crash, ~42683 configurations) on the pointer configuration engine
// ("off") and the packed struct-of-arrays engine ("on"). Both variants are
// gated in CI (cmd/benchgate) with the -benchmem columns: the pair pins the
// packed engine's speedup AND its per-state allocation profile — the packed
// engine's reason to exist is the B/op and allocs/op columns. Both report
// nodes/op (identical by the bit-identity guarantee; benchgate shows the
// delta, which must be zero).
func BenchmarkPackedExpansion(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, packed bool) {
		b.ReportAllocs()
		visited := 0
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{
				Live:       live,
				MaxCrashes: 1,
				Workers:    1,
				Packed:     packed,
			})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
			visited = w.Stats.Visited
		}
		b.ReportMetric(float64(visited), "nodes/op")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

func BenchmarkValence(b *testing.B) {
	inputs := []sim.Value{0, 1, 1}
	for i := 0; i < b.N; i++ {
		e := New(algorithms.MinWait{F: 1}, inputs, Options{Live: []sim.ProcessID{1, 2, 3}})
		vals, _, err := e.Valence(2)
		if err != nil || len(vals) < 2 {
			b.Fatalf("vals=%v err=%v", vals, err)
		}
	}
}

// BenchmarkOmissionSearch times the same exhaustive uniform-input Theorem 2
// search as BenchmarkSymmetrySearch (MinWait{F:1}, four processes, one late
// crash — uniform proposals, so no disagreement exists and the whole space
// is visited) with the fault substrate disarmed ("off": the crash-only
// adversary, which must stay bit-identical to the pre-fault engine) and
// with a budgeted send-omission adversary armed ("on": one omission event
// on one process). The "on" variant is gated in CI (cmd/benchgate); both
// report their visited-node count as nodes/op, so the baseline pins both
// the crash-only engine's unchanged node count and the exact size of the
// omission adversary's enlarged space alongside ns/op.
func BenchmarkOmissionSearch(b *testing.B) {
	inputs := []sim.Value{0, 0, 0, 0}
	live := []sim.ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, faults FaultAdversary) {
		visited := 0
		for i := 0; i < b.N; i++ {
			e := New(algorithms.MinWait{F: 1}, inputs, Options{
				Live:       live,
				MaxCrashes: 1,
				MaxConfigs: 1 << 20,
				Workers:    1,
				Faults:     faults,
			})
			w, found, err := e.FindDisagreement()
			if err != nil || found || w.Stats.Truncated {
				b.Fatalf("found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
			}
			visited = w.Stats.Visited
		}
		b.ReportMetric(float64(visited), "nodes/op")
	}
	b.Run("off", func(b *testing.B) { run(b, FaultAdversary{}) })
	b.Run("on", func(b *testing.B) {
		run(b, FaultAdversary{Model: sim.FaultSendOmission, Budget: 1, MaxFaulty: 1})
	})
}
