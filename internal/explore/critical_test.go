package explore

import (
	"testing"

	"kset/internal/algorithms"
)

// TestCriticalStepsBivalentMinWait reproduces the FLP Lemma 3 shape on the
// concrete protocol: from the bivalent configuration (0,1,1) of
// MinWait{F:1}, some single adversary actions force univalence.
func TestCriticalStepsBivalentMinWait(t *testing.T) {
	e := New(algorithms.MinWait{F: 1}, vals(0, 1, 1), Options{Live: live(1, 2, 3)})
	an, err := e.AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	if !an.Bivalent {
		t.Fatalf("initial valence %v, want bivalent", an.InitialValues)
	}
	if an.Stats.Truncated {
		t.Skipf("valence truncated after %d configs", an.Stats.Visited)
	}
	forcing := 0
	bivalentSuccessors := 0
	for _, s := range an.Steps {
		if s.Forcing {
			forcing++
		}
		if len(s.Values) >= 2 {
			bivalentSuccessors++
		}
	}
	// FLP Lemma 3: from a bivalent configuration the adversary can both
	// stay bivalent and (eventually) commit; at depth one of this protocol
	// both kinds of successor exist.
	if forcing == 0 {
		t.Fatal("no forcing (critical) steps found from the bivalent configuration")
	}
	if bivalentSuccessors == 0 {
		t.Fatal("no bivalence-preserving steps found: adversary could not stall")
	}
}

// TestCriticalStepsUnivalent: from a univalent configuration no action can
// be forcing, and every successor carries the same single value.
func TestCriticalStepsUnivalent(t *testing.T) {
	e := New(algorithms.MinWait{F: 1}, vals(7, 7, 7), Options{Live: live(1, 2, 3)})
	an, err := e.AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	if an.Bivalent {
		t.Fatalf("uniform inputs produced bivalence: %v", an.InitialValues)
	}
	for _, s := range an.Steps {
		if s.Forcing {
			t.Fatalf("forcing step from univalent configuration: %+v", s)
		}
		if len(s.Values) != 1 || s.Values[0] != 7 {
			t.Fatalf("successor valence %v, want [7]", s.Values)
		}
	}
}

// TestCriticalStepsWithCrashBudget: crash actions appear in the analysis
// when the budget allows them.
func TestCriticalStepsWithCrashBudget(t *testing.T) {
	e := New(algorithms.MinWait{F: 1}, vals(0, 1, 1), Options{Live: live(1, 2, 3), MaxCrashes: 1})
	an, err := e.AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	sawCrash := false
	for _, s := range an.Steps {
		if s.Crash {
			sawCrash = true
			break
		}
	}
	if !sawCrash {
		t.Fatal("no crash actions analyzed despite budget")
	}
}

// TestStepValenceDeliveryModes: the analysis covers delivery-mode choices
// distinctly (an empty buffer collapses Oldest/All into None, so at the
// very first configuration only DeliverNone applies per process).
func TestStepValenceFirstStepModes(t *testing.T) {
	e := New(algorithms.MinWait{F: 1}, vals(0, 1, 1), Options{Live: live(1, 2, 3)})
	an, err := e.AnalyzeCriticalSteps()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range an.Steps {
		if s.Mode != DeliverNone {
			t.Fatalf("unexpected mode %v at empty-buffer configuration", s.Mode)
		}
	}
	if len(an.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (one per live process)", len(an.Steps))
	}
}
