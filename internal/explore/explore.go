// Package explore performs bounded adversarial exploration of the
// configuration space of a message-passing algorithm, in the style of the
// FLP bivalence argument. It is the computational content behind condition
// (C) of Theorem 1 ("there is no algorithm that solves consensus in M'"):
// for a concrete algorithm restricted to the subsystem D-bar, the explorer
// searches the space of adversarial schedules — process-step order, message
// delivery subsets, and up to a budget of crashes — for
//
//   - disagreement witnesses: reachable configurations in which two
//     processes have decided different values (the algorithm does not solve
//     consensus in the subsystem), and
//   - blocking witnesses: reachable quiescent configurations in which some
//     correct process can never decide (a Termination violation), and
//   - valence classifications: whether a configuration is univalent or
//     bivalent, reproducing the FLP-style analysis for concrete protocols.
//
// Exploration is exact for protocols that send a bounded number of messages
// (the protocols in this repository broadcast a constant number of times per
// process), and budget-bounded otherwise.
//
// The search hot path is engineered around four ideas. Revisit detection
// uses the simulator's incremental 64-bit configuration fingerprint
// (sim.Configuration.Fingerprint) instead of materializing the O(n·|buffers|)
// string Key per candidate; parent chains live in a flat node arena indexed
// by int32 (see arena.go); the per-action configuration copies are recycled
// through per-context free lists (sim.ClonePool), so a steady-state search
// allocates almost nothing per visited configuration; and breadth-first
// searches expand each frontier level across Options.Workers goroutines
// (see parallel.go) with results bit-identical to the sequential order. An
// Explorer is NOT safe for concurrent use — run independent searches on
// independent Explorers (the experiment sweeps in the root package do
// exactly that, one Explorer per sweep cell).
//
// Two opt-in reductions shrink the explored space without changing any
// verdict: Options.Symmetry collapses configurations that are process
// renamings of each other (orbit-canonical revisit keys, see sim.Symmetry),
// and Options.POR prunes redundant interleavings of commuting actions
// (ample-set partial-order reduction, see por.go). They compose.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"kset/internal/sched"
	"kset/internal/sim"
)

// action is one adversarial choice: step process Proc delivering the
// messages selected by Mode, optionally crashing it. Omit makes the crash
// step drop all of its sends (MASYNC clause (2) allows omitting sends to
// any subset of receivers in the final step; the explorer uses the two
// extremes, none and all).
type action struct {
	Proc  sim.ProcessID
	Mode  DeliveryMode
	Crash bool
	Omit  bool
	// Fault marks the step as a fault action of Options.Faults' model
	// (FaultCrash — the zero value — for plain and crash steps; a fault
	// never combines with Crash).
	Fault sim.FaultModel
}

// DeliveryMode selects which pending messages a step delivers.
type DeliveryMode int

// Delivery modes available to the adversary.
const (
	// DeliverNone performs a step with an empty delivered set L.
	DeliverNone DeliveryMode = iota
	// DeliverOldest delivers only the oldest pending message.
	DeliverOldest
	// DeliverAll flushes the whole buffer.
	DeliverAll
)

func (m DeliveryMode) String() string {
	switch m {
	case DeliverNone:
		return "none"
	case DeliverOldest:
		return "oldest"
	case DeliverAll:
		return "all"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures an exploration.
type Options struct {
	// Live lists the processes the adversary schedules; all others are
	// silently crashed before exploration starts (the restricted system
	// <D-bar> with the rest of Pi initially dead).
	Live []sim.ProcessID
	// MaxCrashes is the crash budget among Live processes (e.g. 1 for the
	// single late crash of Theorem 2).
	MaxCrashes int
	// MaxConfigs bounds the number of distinct configurations visited;
	// 0 means DefaultMaxConfigs.
	MaxConfigs int
	// Oracle optionally supplies failure-detector values (deterministic per
	// (process, time, configuration)); nil for detector-free models.
	Oracle sched.Oracle
	// Faults configures non-crash fault injection (send/receive omission,
	// Byzantine value corruption) with per-process budgets; the zero value
	// keeps the crash-only engine, bit-identical to searches that predate
	// the knob. Spent budgets are part of the simulator fingerprint, so the
	// visited/claim keys need no extra salt; POR stands down under a
	// non-crash model (see the POR field), while Symmetry extends soundly —
	// fault counts fold into the per-slot orbit signatures.
	Faults FaultAdversary
	// Modes lists the delivery modes the adversary may use; nil means all
	// three.
	Modes []DeliveryMode
	// Strategy selects the search order: "bfs" (default) finds shortest
	// witnesses; "dfs" dives to complete executions first and scales to
	// larger subsystems where BFS drowns in breadth before any process can
	// decide.
	Strategy string
	// Symmetry enables orbit-canonical revisit detection: configurations
	// that are renamings of each other under process permutations fixing the
	// proposal assignment and the live set are explored once (see
	// sim.Symmetry and sim.Configuration.Canonical64). The search then
	// visits at most as many configurations as the plain search — up to
	// |stabilizer|-fold fewer on instances with repeated inputs — while
	// witnesses remain concrete, replayable runs. Sound when the algorithm
	// is value-equivariant under those renamings and when the Oracle, if
	// any, is symmetric under them too. Algorithms opt into collapsing by
	// implementing sim.SymHasher64 on their states and payloads, and must
	// only do so when equivariant: MinWait, QuorumMin, FirstHeard, and
	// DecideOwn qualify (their id-dependent choices never cross input
	// classes); FLPKSet deliberately does not — its decide step picks a
	// minimum concrete id whose class a renaming can change (see
	// algorithms.Stage1Payload.Hash64) — so it falls back to concrete
	// hashes and the flag is a sound no-op for it. Default off.
	Symmetry bool
	// POR enables commutativity-based partial-order reduction (see por.go):
	// once every live process's state proves — through the opt-in
	// sim.SendQuiescent interface — that it will never send again, actions of
	// distinct processes have disjoint effect footprints and commute, and
	// each expansion keeps only the actions of the smallest live process with
	// a non-empty buffer; everything else — crashes against the remaining
	// budget and pending decision steps included — is deferred by
	// commutation, never lost. Reduced searches additionally key revisits by
	// the crash-normalized fingerprint (a crashed process's absorbed state
	// and undelivered messages are behaviourally inert). Disagreement,
	// blocking, and valence verdicts are exactly those of the unreduced
	// search, witnesses remain concrete replayable runs, and the reduction
	// composes multiplicatively with Symmetry; it is a full, sound no-op for
	// searches with an Oracle (detector values may depend on global time and
	// other processes' crashes, which commutation would reorder). For
	// algorithms that do not implement sim.SendQuiescent the pruning stands
	// down, while the crashed-slot key quotient — sound for any algorithm,
	// it relies only on the simulator's crash semantics — stays active, so
	// visited counts may still shrink. Default off.
	POR bool
	// Store selects the memory regime of the search (see bounded.go):
	// StoreInMemory (the default) keeps the full node arena for parent-chain
	// witness replay; StoreFrontierOnly retains only the compact
	// fingerprint-keyed visited set plus the current and next BFS levels,
	// reconstructing witnesses by a bounded, deterministic re-search;
	// StoreSpill additionally streams each sealed level's generation records
	// to a disk file, from which witnesses are reconstructed by random-access
	// re-read and checkpoints are written without re-searching. Verdicts,
	// stats, and witnesses are bit-identical across all three stores at every
	// worker count; only the bytes retained per visited state differ.
	Store Store
	// SpillDir is the directory for StoreSpill's level-log file; empty means
	// the system temporary directory. The file is unlinked at creation where
	// the platform allows (the open descriptor keeps it readable), so spill
	// space is reclaimed however the search — or the process — ends.
	SpillDir string
	// Checkpoint, when non-empty, names a directory in which bounded
	// breadth-first searches persist their paused state: a search that
	// truncates at MaxConfigs writes a checkpoint file (keyed by the search's
	// digest and goal kind, so unrelated searches never collide) before
	// returning, and a later search of the same instance — typically with a
	// larger MaxConfigs — finds the file and resumes where it stopped instead
	// of starting over. While the search runs, the paused state is also
	// persisted at every sealed BFS level boundary (best-effort; see
	// snapshotLevel in bounded.go), so a process killed without warning
	// resumes from the last sealed level and loses at most the partial level
	// in flight. A checkpoint file that fails to load on the automatic resume
	// path is quarantined (renamed aside with a ".corrupt" suffix) and the
	// search starts fresh — corruption can cost re-exploration, never a
	// verdict. Requires a bounded store and the (default) BFS strategy; see
	// checkpoint.go.
	Checkpoint string
	// Context, when non-nil, cancels witness searches cooperatively: the
	// search loops poll it every cancelInterval visited configurations (and
	// at every BFS level boundary), and a cancelled search stops early with
	// Stats.Cancelled (and Stats.Truncated) set instead of returning an
	// error — for bounded breadth-first searches this takes the exact
	// truncation path, so a cancelled search with Options.Checkpoint set
	// snapshots its paused state mid-level and a later identical search
	// resumes where it stopped (see bounded.go). Until the first poll after
	// cancellation the search behaves exactly as without a context, so a
	// never-cancelled context changes nothing — verdicts, stats, and
	// witnesses remain bit-identical. Valence analyses do not poll the
	// context; they are bounded by MaxConfigs alone.
	Context context.Context
	// OnProgress, when non-nil, receives (visited, level) updates while a
	// witness search runs: at every sealed BFS level boundary for
	// breadth-first searches, and every progressInterval visited
	// configurations with level -1 for depth-first searches (whose traversal
	// has no level structure). Calls are made from the goroutine driving the
	// search — never concurrently — and must return quickly: the search
	// blocks while the callback runs.
	OnProgress func(visited, level int)
	// OnSnapshotError, when non-nil, is called when a best-effort
	// level-boundary checkpoint snapshot fails (disk full, permissions):
	// the search continues — snapshots are an optimization, never a
	// correctness requirement — but later snapshots are skipped, so a
	// crash now costs a full re-exploration. The callback fires once per
	// search, from the goroutine driving it, at the moment durability
	// degrades; Stats.SnapshotFailed records the same fact at completion.
	OnSnapshotError func(error)
	// Packed selects the struct-of-arrays configuration engine: process
	// records live in flat uint64 slices and buffered messages in a flat
	// pool (see sim.Packer), so cloning a configuration is a handful of
	// memcpys instead of per-process allocations. Like Workers and Store it
	// is a memory/speed regime, not a search parameter: visited sets,
	// insertion order, tie-breaks, truncation points, witnesses, and stats
	// are bit-identical to the pointer engine (the packed differential
	// tests and FuzzPackedParity pin this), and it is deliberately excluded
	// from the search digest so checkpoints and cached verdicts interoperate
	// across the two engines. The knob stands down silently — exactly like
	// POR under an oracle — when the algorithm does not implement
	// sim.PackableAlgorithm or the system exceeds 64 processes. Default
	// off.
	Packed bool
	// Workers caps the number of goroutines expanding the BFS frontier.
	// Zero means GOMAXPROCS; 1 runs the exact sequential legacy search. Any
	// value above 1 enables the level-synchronous parallel frontier of
	// parallel.go, whose results — visited set, arena layout, witness, and
	// stats — are bit-identical to the sequential search's (see the
	// differential tests). DFS searches are always sequential: depth-first
	// order is inherently serial, and the engine relies on its action
	// ordering to reach complete executions quickly. Oracles queried from a
	// parallel search must be pure functions of (process, time,
	// configuration) and safe for concurrent use; the fd package's
	// pattern-based oracles are, the stateful ReplayOracle is not.
	Workers int
}

// DefaultMaxConfigs bounds exploration when Options.MaxConfigs is zero.
const DefaultMaxConfigs = 250000

// Explorer enumerates reachable configurations of an algorithm under
// adversarial scheduling. It is not safe for concurrent use: searches share
// the explorer's scratch buffers and configuration free list. (The parallel
// frontier search of parallel.go is internally concurrent but owns one
// searchCtx per worker; the Explorer itself still serves one search at a
// time.)
type Explorer struct {
	alg    sim.Algorithm
	inputs []sim.Value
	opts   Options

	// omitAll is the read-only full omission set shared by every
	// crash-with-omissions step request.
	omitAll map[sim.ProcessID]bool
	// sym is the input-stabilizer used for orbit-canonical revisit keys when
	// Options.Symmetry is set; nil otherwise.
	sym *sim.Symmetry
	// por reports that partial-order reduction is active: Options.POR was set
	// and the search is oracle-free (an oracle may observe global time and
	// other processes' crash flags — and in principle any crashed-slot
	// content — so both the commutation pruning and the crashed-slot key
	// normalization stand down when one is configured).
	por bool
	// packed reports that the packed engine is active: Options.Packed was
	// set and the algorithm/system pair supports it (sim.PackerFor).
	packed bool
	// sc is the explorer's own search context, used by sequential searches
	// and by the critical-step driver.
	sc searchCtx
	// pending is the paused state of the most recent truncated bounded
	// search with a retained level log, staged for Snapshot and for resuming
	// (see bounded.go and checkpoint.go).
	pending *pausedSearch
}

// searchCtx bundles the mutable per-goroutine scratch state of a search:
// the configuration free list, the delivery-id and action-enumeration
// buffers, and the quiescence probe clone. The sequential search uses the
// explorer's own context; the parallel frontier search gives every worker
// its own, so the clone/release hot path never contends across workers.
type searchCtx struct {
	e *Explorer
	// pool recycles retired configurations as pooled-clone destinations.
	pool sim.ClonePool
	// scratch is the reusable delivery-id buffer for step requests.
	scratch []int64
	// actbuf is the reusable action-enumeration buffer (see actions).
	actbuf []action
	// probe is the reusable scratch clone of quiescentBlocked.
	probe *sim.Configuration
}

// New returns an explorer for the given algorithm and proposal vector.
// Inputs must cover all n processes of the full system; processes outside
// opts.Live are silently crashed at the start of every exploration.
func New(alg sim.Algorithm, inputs []sim.Value, opts Options) *Explorer {
	if len(opts.Modes) == 0 {
		opts.Modes = []DeliveryMode{DeliverNone, DeliverOldest, DeliverAll}
	}
	if opts.MaxConfigs <= 0 {
		opts.MaxConfigs = DefaultMaxConfigs
	}
	if opts.Faults.Model != sim.FaultCrash && opts.Faults.Budget <= 0 {
		opts.Faults.Budget = 1
	}
	live := append([]sim.ProcessID(nil), opts.Live...)
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	opts.Live = live
	omitAll := make(map[sim.ProcessID]bool, len(inputs))
	for p := 1; p <= len(inputs); p++ {
		omitAll[sim.ProcessID(p)] = true
	}
	e := &Explorer{
		alg:     alg,
		inputs:  append([]sim.Value(nil), inputs...),
		opts:    opts,
		omitAll: omitAll,
	}
	if opts.Symmetry {
		e.sym = sim.NewSymmetry(e.inputs, opts.Live)
	}
	// POR additionally requires DeliverAll among the enumerated modes: the
	// soundness argument's second case covers paths that never step the
	// leader by prepending a full flush of its buffer, and the
	// oldest-on-singleton duplicate prune identifies DeliverOldest with
	// DeliverAll — neither holds for a custom Modes list without DeliverAll,
	// so the reduction (pruning and key quotient alike) stands down there.
	// Non-crash fault models stand POR down the same way oracles do: the
	// commutation argument assumes a process's step footprint is its own
	// slot and buffer, but fault branching gives every step an adversary
	// choice whose availability (remaining budgets, the faulty-set cap)
	// other processes' fault steps can change, and the crashed-slot key
	// quotient would erase spent budgets of crashed processes.
	e.por = opts.POR && opts.Oracle == nil && hasMode(opts.Modes, DeliverAll) &&
		opts.Faults.Model == sim.FaultCrash
	// Packed stands down silently when the algorithm/system pair has no
	// packer; the verdict contract makes the fallback unobservable.
	if opts.Packed {
		_, _, ok := sim.PackerFor(alg, e.inputs)
		e.packed = ok
	}
	e.sc.e = e
	return e
}

func hasMode(modes []DeliveryMode, m DeliveryMode) bool {
	for _, x := range modes {
		if x == m {
			return true
		}
	}
	return false
}

// searchWorkers resolves Options.Workers: 0 means GOMAXPROCS.
func (e *Explorer) searchWorkers() int {
	w := e.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// initial builds the starting configuration — on the packed engine when
// the explorer resolved Options.Packed — with everyone outside Live
// silently crashed (initially dead).
func (e *Explorer) initial() (*sim.Configuration, error) {
	var cfg *sim.Configuration
	if e.packed {
		pcfg, ok := sim.NewPackedConfiguration(e.alg, e.inputs)
		if !ok {
			// PackerFor approved this pair in New; a refusal here means the
			// algorithm changed identity between calls.
			return nil, fmt.Errorf("explore: packed engine refused %s", e.alg.Name())
		}
		cfg = pcfg
	} else {
		cfg = sim.NewConfiguration(e.alg, e.inputs)
	}
	liveSet := make(map[sim.ProcessID]bool, len(e.opts.Live))
	for _, p := range e.opts.Live {
		liveSet[p] = true
	}
	for _, p := range cfg.ProcessIDs() {
		if !liveSet[p] {
			if _, err := cfg.Apply(sim.StepRequest{Proc: p, SilentCrash: true}); err != nil {
				return nil, fmt.Errorf("explore: initial silent crash of %d: %w", p, err)
			}
		}
	}
	if e.sym != nil {
		cfg.AttachSymmetry(e.sym)
	}
	return cfg, nil
}

// initialView builds the starting configuration on the pointer engine
// regardless of Options.Packed. Witness replay uses it: a replayed Run
// escapes to callers who inspect states, apply further steps, and expect
// the materialized event trail that the packed engine elides.
func (e *Explorer) initialView() (*sim.Configuration, error) {
	packed := e.packed
	e.packed = false
	cfg, err := e.initial()
	e.packed = packed
	return cfg, err
}

// cfgKey combines the configuration fingerprint with the crash budget
// spent, since the same configuration with different remaining budgets has
// different futures. It replaces the old string nodeKey on the search hot
// path; the string Key() remains for explain/debug output.
func cfgKey(cfg *sim.Configuration, crashes int) uint64 {
	return sim.HashMix(cfg.Fingerprint() ^ (uint64(crashes) * 0x9e3779b97f4a7c15))
}

// key is the visited/claim key of every search on this explorer: the plain
// fingerprint key, or the orbit-canonical one under Options.Symmetry (the
// crash budget spent is folded in either way — renamings preserve it, so
// it is orbit-invariant). Reduced searches use the crash-normalized
// variants (sim.Configuration.LiveFingerprint / LiveCanonical64), which
// additionally collapse configurations differing only in behaviourally
// inert crashed-slot content — a crashed process's absorbed state and
// undelivered messages can never influence a future step or verdict, so
// the quotient is sound independently of the commutation pruning.
func (e *Explorer) key(cfg *sim.Configuration, crashes int) uint64 {
	salt := uint64(crashes) * 0x9e3779b97f4a7c15
	switch {
	case e.sym != nil && e.por:
		return sim.HashMix(cfg.LiveCanonical64() ^ salt)
	case e.sym != nil:
		return sim.HashMix(cfg.Canonical64() ^ salt)
	case e.por:
		return sim.HashMix(cfg.LiveFingerprint() ^ salt)
	}
	return cfgKey(cfg, crashes)
}

// release returns a configuration to the context's free list. Callers must
// not touch it afterwards: its allocations are reused by the next pooled
// clone.
func (sc *searchCtx) release(c *sim.Configuration) {
	sc.pool.Put(c)
}

// apply performs an action on a pooled clone of cfg and returns the new
// configuration, or ok=false if the action is inapplicable. The result is
// owned by the caller; hand it back via release when it leaves the search.
func (sc *searchCtx) apply(cfg *sim.Configuration, act action) (*sim.Configuration, bool) {
	e := sc.e
	if cfg.Crashed(act.Proc) {
		return nil, false
	}
	next := cfg.CloneInto(sc.pool.Get())
	req := sim.StepRequest{Proc: act.Proc, Crash: act.Crash}
	if act.Crash && act.Omit {
		req.OmitTo = e.omitAll
	}
	faultRequest(&req, act.Fault)
	switch act.Mode {
	case DeliverNone:
	case DeliverOldest:
		id, ok := next.OldestMessageID(act.Proc)
		if !ok {
			sc.release(next)
			return nil, false // identical to DeliverNone; skip duplicate branch
		}
		sc.scratch = append(sc.scratch[:0], id)
		req.Deliver = sc.scratch
	case DeliverAll:
		sc.scratch = next.AppendDeliveryIDs(sc.scratch[:0], act.Proc)
		if len(sc.scratch) == 0 {
			sc.release(next)
			return nil, false // identical to DeliverNone
		}
		req.Deliver = sc.scratch
	}
	if e.opts.Oracle != nil {
		req.FD = e.opts.Oracle.Query(act.Proc, next.Time(), next)
	}
	if err := next.ApplyQuiet(req); err != nil {
		sc.release(next)
		return nil, false
	}
	return next, true
}

// actions enumerates the adversary's choices at cfg with the given crash
// budget already spent, filtered through the partial-order-reduction plan
// when Options.POR is active (see por.go; the plan is a pure function of
// the configuration, so every search path — serial, parallel, valence —
// enumerates identical slices). The returned slice aliases the context's
// reusable buffer and is invalidated by the next actions call; copy it when
// the caller explores recursively while iterating (critical.go does).
func (sc *searchCtx) actions(cfg *sim.Configuration, crashes int) []action {
	return sc.enumerate(cfg, crashes, sc.e.porPlan(cfg))
}

// actionsFull enumerates every adversary choice, bypassing the reduction:
// the critical-step analysis reports per-action data for each first step
// and must list them all regardless of Options.POR.
func (sc *searchCtx) actionsFull(cfg *sim.Configuration, crashes int) []action {
	return sc.enumerate(cfg, crashes, porPlan{})
}

func (sc *searchCtx) enumerate(cfg *sim.Configuration, crashes int, plan porPlan) []action {
	e := sc.e
	out := sc.actbuf[:0]
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		bufsize := cfg.BufferSize(p)
		// Crash variants first, plain steps last: DFS pops from the end of
		// the slice, so it drives ordinary full-delivery steps toward
		// decisions before spending the crash budget.
		if crashes < e.opts.MaxCrashes {
			for _, m := range e.opts.Modes {
				if plan.prunes(p, m, bufsize) {
					continue
				}
				out = append(out, action{Proc: p, Mode: m, Crash: true})
				if !plan.frozen {
					// In the send-quiescent cone the final step sends
					// nothing, so omitting its sends is the identity and the
					// omit variant duplicates the plain crash byte-for-byte.
					out = append(out, action{Proc: p, Mode: m, Crash: true, Omit: true})
				}
			}
		}
		// Fault variants between the crash block and the plain block: DFS
		// reaches plain progress steps first, then spends fault budgets,
		// then crash budgets. POR is off whenever these are enumerated (see
		// New), so plan is empty and no fault branch can be pruned away.
		if e.canFault(cfg, p) {
			for _, m := range e.opts.Modes {
				if m == DeliverNone && e.opts.Faults.Model == sim.FaultReceiveOmission {
					// Dropping an empty delivery is the identity; the
					// variant would duplicate the plain DeliverNone step.
					continue
				}
				out = append(out, action{Proc: p, Mode: m, Fault: e.opts.Faults.Model})
			}
		}
		for _, m := range e.opts.Modes {
			if plan.prunes(p, m, bufsize) {
				continue
			}
			out = append(out, action{Proc: p, Mode: m})
		}
	}
	sc.actbuf = out
	return out
}

// Explorer-level delegates to the explorer's own search context, used by the
// sequential search paths and the in-package tests.

func (e *Explorer) release(c *sim.Configuration) { e.sc.release(c) }

func (e *Explorer) apply(cfg *sim.Configuration, act action) (*sim.Configuration, bool) {
	return e.sc.apply(cfg, act)
}

func (e *Explorer) actions(cfg *sim.Configuration, crashes int) []action {
	return e.sc.actions(cfg, crashes)
}

// Stats reports exploration effort.
type Stats struct {
	// Visited is the number of distinct configurations explored.
	Visited int
	// Truncated reports that the MaxConfigs budget stopped the search, so a
	// negative answer ("no witness found") is not exhaustive.
	Truncated bool
	// Cancelled reports that Options.Context was cancelled before the search
	// finished. A cancelled search stopped early exactly like a truncated
	// one — Truncated is set alongside — so bounded searches pause and
	// checkpoint identically; Cancelled only records why the stop happened.
	Cancelled bool
	// SnapshotFailed reports that a best-effort level-boundary checkpoint
	// snapshot failed during the search (and later snapshots were skipped):
	// the verdict is unaffected, but crash durability degraded to the last
	// snapshot that succeeded. Only ever set when Options.Checkpoint is
	// configured; see Options.OnSnapshotError for mid-run notification.
	SnapshotFailed bool
}

// cancelInterval is the visited-count stride between Options.Context polls
// in the serial search loops: frequent enough that cancellation lands within
// milliseconds, sparse enough that the poll (a mutex acquisition inside
// context.Context.Err) stays off the per-configuration hot path.
const cancelInterval = 1024

// progressInterval is the visited-count stride between Options.OnProgress
// calls in search loops without level structure (DFS).
const progressInterval = 8192

// cancelled reports whether Options.Context has been cancelled. Callers poll
// it on a visited-count stride, not per configuration.
func (e *Explorer) cancelled() bool {
	return e.opts.Context != nil && e.opts.Context.Err() != nil
}

// progress delivers a (visited, level) update to Options.OnProgress; level
// is -1 for traversals without level structure.
func (e *Explorer) progress(visited, level int) {
	if e.opts.OnProgress != nil {
		e.opts.OnProgress(visited, level)
	}
}
