package explore

import (
	"testing"

	"kset/internal/sim"
	"kset/internal/testutil"
)

// explorerStore builds the instance's explorer with an explicit store mode,
// worker count, and reduction stack.
func (d diffInstance) explorerStore(store Store, workers int, symmetry, por bool) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Workers:    workers,
		Symmetry:   symmetry,
		POR:        por,
		Store:      store,
		SpillDir:   "", // system temp dir
	})
}

// TestBoundedStoreVerdictParity is the acceptance gate of the bounded
// engine: for every instance of the extended differential suite, both
// witness goals, both bounded stores, workers 1/2/4, and the reduction
// stack off and on, the bounded search must return bit-identical results to
// the sequential in-memory engine — found flag, stats, witness detail, and
// the scheduled witness run — and found witnesses must independently
// revalidate.
func TestBoundedStoreVerdictParity(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	for _, reduced := range []bool{false, true} {
		for _, d := range porInstances() {
			for _, g := range goals {
				name := d.name + "/" + g.name
				if reduced {
					name = "sym+por/" + name
				}
				t.Run(name, func(t *testing.T) {
					ref := New(sim.Restrict(d.alg, d.live), d.inputs, Options{
						Live: d.live, MaxCrashes: d.crashes, Workers: 1,
						Symmetry: reduced, POR: reduced,
					})
					refW, refFound, _, err := ref.searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					// Frontier-only runs the full worker matrix; spill — whose
					// only difference is the record sink — runs serial plus
					// one parallel width, and only on the unreduced pass, to
					// keep the race-detector wall clock sane.
					combos := []struct {
						store   Store
						workers int
					}{
						{StoreFrontierOnly, 1}, {StoreFrontierOnly, 2}, {StoreFrontierOnly, 4},
						{StoreSpill, 1}, {StoreSpill, 4},
					}
					if reduced {
						combos = combos[:3]
					}
					for _, c := range combos {
						store, workers := c.store, c.workers
						e := d.explorerStore(store, workers, reduced, reduced)
						w, found, err := e.search(g.goal, g.name)
						if err != nil {
							t.Fatal(err)
						}
						if found != refFound || w.Stats != refW.Stats {
							t.Fatalf("%v workers=%d: found=%t stats=%+v, in-memory found=%t stats=%+v",
								store, workers, found, w.Stats, refFound, refW.Stats)
						}
						if !found {
							continue
						}
						if w.Detail != refW.Detail {
							t.Fatalf("%v workers=%d: detail %q, in-memory %q", store, workers, w.Detail, refW.Detail)
						}
						if got, want := runSignature(w.Run), runSignature(refW.Run); got != want {
							t.Fatalf("%v workers=%d: witness run diverged:\n got %s\nwant %s", store, workers, got, want)
						}
						testutil.RevalidateWitness(t, w.Kind, w.Run)
					}
				})
			}
		}
	}
}

// TestBoundedTruncationParity sweeps MaxConfigs budgets — including values
// that cut a BFS level mid-way — and asserts the bounded stores report
// exactly the in-memory engine's found flag, stats, and truncation at
// workers 1 and 4.
func TestBoundedTruncationParity(t *testing.T) {
	d := diffInstances()[1] // minwait-n3-crash: larger space, witnesses exist
	for _, maxConfigs := range []int{1, 2, 3, 7, 25, 100, 999, 5000} {
		mk := func(store Store, workers int) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				MaxConfigs: maxConfigs,
				Workers:    workers,
				Store:      store,
			})
		}
		seqW, seqFound, err := mk(StoreInMemory, 1).FindDisagreement()
		if err != nil {
			t.Fatal(err)
		}
		for _, store := range []Store{StoreFrontierOnly, StoreSpill} {
			for _, workers := range []int{1, 4} {
				w, found, err := mk(store, workers).FindDisagreement()
				if err != nil {
					t.Fatal(err)
				}
				if found != seqFound || w.Stats != seqW.Stats {
					t.Fatalf("maxConfigs=%d %v workers=%d: found=%t stats=%+v, in-memory found=%t stats=%+v",
						maxConfigs, store, workers, found, w.Stats, seqFound, seqW.Stats)
				}
				if seqFound && runSignature(w.Run) != runSignature(seqW.Run) {
					t.Fatalf("maxConfigs=%d %v workers=%d: witness runs diverged", maxConfigs, store, workers)
				}
			}
		}
	}
}

// TestBoundedDFSParity asserts the cons-list depth-first twin matches the
// arena DFS exactly, including under the reduction stack.
func TestBoundedDFSParity(t *testing.T) {
	for _, reduced := range []bool{false, true} {
		for _, d := range porInstances() {
			mk := func(store Store) *Explorer {
				return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
					Live:       d.live,
					MaxCrashes: d.crashes,
					Strategy:   "dfs",
					Workers:    1,
					Symmetry:   reduced,
					POR:        reduced,
					Store:      store,
				})
			}
			refW, refFound, err := mk(StoreInMemory).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			w, found, err := mk(StoreFrontierOnly).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			if found != refFound || w.Stats != refW.Stats {
				t.Fatalf("%s reduced=%t: dfs bounded found=%t stats=%+v, in-memory found=%t stats=%+v",
					d.name, reduced, found, w.Stats, refFound, refW.Stats)
			}
			if found && runSignature(w.Run) != runSignature(refW.Run) {
				t.Fatalf("%s reduced=%t: dfs witness runs diverged", d.name, reduced)
			}
		}
	}
}

// TestBoundedValenceParity asserts valence classification under bounded
// stores matches the in-memory results (valence is frontier-only by
// construction; the store knob must not change anything).
func TestBoundedValenceParity(t *testing.T) {
	for _, d := range diffInstances() {
		for _, stopAt := range []int{0, 2} {
			refVals, refStats, err := d.explorerWorkers(1).Valence(stopAt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				e := d.explorerStore(StoreFrontierOnly, workers, false, false)
				vals, stats, err := e.Valence(stopAt)
				if err != nil {
					t.Fatal(err)
				}
				if stats != refStats || len(vals) != len(refVals) {
					t.Fatalf("%s stopAt=%d workers=%d: bounded %v %+v, in-memory %v %+v",
						d.name, stopAt, workers, vals, stats, refVals, refStats)
				}
				for i := range vals {
					if vals[i] != refVals[i] {
						t.Fatalf("%s stopAt=%d: bounded values %v, in-memory %v", d.name, stopAt, vals, refVals)
					}
				}
			}
		}
	}
}

// TestVisitedSetModel drives the compact visited set against a map model.
func TestVisitedSetModel(t *testing.T) {
	v := newVisitedSet()
	model := map[uint64]bool{}
	// A deterministic pseudo-random walk plus adversarial patterns: dense
	// low bits (one shard), the zero key, and re-insertions.
	keys := []uint64{0, 1, 2, 3, 1 << 56, 2 << 56, 0xffffffffffffffff}
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		keys = append(keys, x)
	}
	for i, k := range keys {
		if got, want := v.Contains(k), model[k]; got != want {
			t.Fatalf("step %d: Contains(%#x) = %t, want %t", i, k, got, want)
		}
		if got, want := v.Insert(k), !model[k]; got != want {
			t.Fatalf("step %d: Insert(%#x) fresh = %t, want %t", i, k, got, want)
		}
		model[k] = true
		if !v.Contains(k) {
			t.Fatalf("step %d: key %#x lost after insert", i, k)
		}
	}
	// Every key re-inserts as a duplicate.
	for _, k := range keys {
		if v.Insert(k) {
			t.Fatalf("key %#x re-inserted as fresh", k)
		}
	}
	if v.Len() != len(model) {
		t.Fatalf("Len() = %d, want %d", v.Len(), len(model))
	}
	seen := map[uint64]bool{}
	v.Range(func(k uint64) bool { seen[k] = true; return true })
	if len(seen) != len(model) {
		t.Fatalf("Range yielded %d keys, want %d", len(seen), len(model))
	}
	for k := range model {
		if !seen[k] {
			t.Fatalf("Range missed key %#x", k)
		}
	}
}

// FuzzVisitedSet differentially fuzzes the compact visited set against a
// map model over arbitrary insert/contains streams.
func FuzzVisitedSet(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xee})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := newVisitedSet()
		model := map[uint64]bool{}
		for len(data) >= 8 {
			var k uint64
			for i := 0; i < 8; i++ {
				k |= uint64(data[i]) << (8 * i)
			}
			data = data[8:]
			if got, want := v.Insert(k), !model[k]; got != want {
				t.Fatalf("Insert(%#x) fresh = %t, want %t", k, got, want)
			}
			model[k] = true
			if !v.Contains(k) {
				t.Fatalf("key %#x missing after insert", k)
			}
		}
		if v.Len() != len(model) {
			t.Fatalf("Len() = %d, want %d", v.Len(), len(model))
		}
	})
}
