package explore

import (
	"fmt"
	"strings"
	"testing"

	"kset/internal/sim"
	"kset/internal/testutil"
)

// minAllAlg decides the minimum proposal, but only after hearing a value
// from every process: it records its own proposal at init, broadcasts it
// once at its first step, and treats a Corrupted payload as the poisoned
// value 999. Fault-free (and with crash budget 0) every run decides the true
// minimum, so the crash-only adversary has no witness of either kind —
// every witness the fault tests below find exists only because of the armed
// fault model: an omitted or dropped broadcast starves a process forever
// (blocking), and a corrupted minimum splits the decisions (disagreement).
type minAllAlg struct{}

func (minAllAlg) Name() string { return "minall" }

func (minAllAlg) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	vals := make([]sim.Value, n+1)
	heard := make([]bool, n+1)
	vals[id], heard[id] = input, true
	return minAllState{id: id, n: n, own: input, vals: vals, heard: heard}
}

// poisonedValue is what a minAll process reads out of a Corrupted payload:
// larger than every test proposal, so corrupting the minimum's broadcast
// moves the receiver's minimum while the sender keeps its own.
const poisonedValue sim.Value = 999

// minAllPayload carries the sender's proposal.
type minAllPayload struct {
	From sim.ProcessID
	V    sim.Value
}

func (p minAllPayload) Key() string { return fmt.Sprintf("val(%d,%d)", p.From, p.V) }

type minAllState struct {
	id    sim.ProcessID
	n     int
	own   sim.Value
	sent  bool
	vals  []sim.Value
	heard []bool
}

func (s minAllState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := s
	next.vals = append([]sim.Value(nil), s.vals...)
	next.heard = append([]bool(nil), s.heard...)
	for _, m := range in.Delivered {
		v := poisonedValue
		if p, ok := m.Payload.(minAllPayload); ok {
			v = p.V
		}
		if !next.heard[m.From] {
			next.heard[m.From], next.vals[m.From] = true, v
		}
	}
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = sim.Broadcast(s.n, minAllPayload{From: s.id, V: s.own})
	}
	return next, sends
}

func (s minAllState) Decided() (sim.Value, bool) {
	min := s.vals[s.id]
	for p := 1; p <= s.n; p++ {
		if !s.heard[p] {
			return sim.NoValue, false
		}
		if s.vals[p] < min {
			min = s.vals[p]
		}
	}
	return min, true
}

func (s minAllState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "minall,%d,%t", s.id, s.sent)
	for p := 1; p <= s.n; p++ {
		if s.heard[p] {
			fmt.Fprintf(&b, ",%d", s.vals[p])
		} else {
			b.WriteString(",?")
		}
	}
	return b.String()
}

// minAllExplorer builds the 3-process minAll instance with crash budget 0
// and the given fault adversary.
func minAllExplorer(fa FaultAdversary, opts Options) *Explorer {
	opts.Live = []sim.ProcessID{1, 2, 3}
	opts.Faults = fa
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	return New(minAllAlg{}, []sim.Value{100, 101, 102}, opts)
}

// TestFaultModelsEnableNewWitnesses is the semantic core of the fault
// substrate: on an instance that is correct under the crash-only adversary,
// each non-crash model manufactures exactly the violation its definition
// promises, and the witness run replays with a concrete fault event in it.
func TestFaultModelsEnableNewWitnesses(t *testing.T) {
	// Crash-only baseline: no witness of either kind.
	plain := minAllExplorer(FaultAdversary{}, Options{})
	if w, found, err := plain.FindDisagreement(); err != nil || found || w.Stats.Truncated {
		t.Fatalf("crash-only disagreement: found=%t truncated=%t err=%v", found, w.Stats.Truncated, err)
	}
	plainBlock, found, err := minAllExplorer(FaultAdversary{}, Options{}).FindBlocking()
	if err != nil || found || plainBlock.Stats.Truncated {
		t.Fatalf("crash-only blocking: found=%t truncated=%t err=%v", found, plainBlock.Stats.Truncated, err)
	}

	cases := []struct {
		model sim.FaultModel
		kind  string
		find  func(*Explorer) (*Witness, bool, error)
	}{
		// An omitted broadcast starves the other processes of the omitter's
		// value: they stay undecided in a quiescent configuration.
		{sim.FaultSendOmission, "blocking", (*Explorer).FindBlocking},
		// A dropped delivery consumes the only copy of a value on its last
		// hop: the dropping process can never decide.
		{sim.FaultReceiveOmission, "blocking", (*Explorer).FindBlocking},
		// Corrupting the minimum's broadcast poisons every receiver's
		// minimum while the sender decides its own true value.
		{sim.FaultByzantine, "disagreement", (*Explorer).FindDisagreement},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			e := minAllExplorer(FaultAdversary{Model: tc.model, Budget: 1, MaxFaulty: 1}, Options{})
			w, found, err := tc.find(e)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("no %s witness under %s (visited %d, truncated %t)",
					tc.kind, tc.model, w.Stats.Visited, w.Stats.Truncated)
			}
			testutil.RevalidateWitness(t, w.Kind, w.Run)
			faultEvents := 0
			for _, ev := range w.Run.Events {
				if ev.Fault == tc.model {
					faultEvents++
				} else if ev.Fault != sim.FaultCrash {
					t.Fatalf("witness replayed a %s event under the %s adversary", ev.Fault, tc.model)
				}
			}
			if faultEvents != 1 {
				t.Fatalf("witness replayed %d effective %s events, want exactly 1 (budget)", faultEvents, tc.model)
			}
			for p := sim.ProcessID(1); p <= 3; p++ {
				if got := w.Run.Final.FaultsUsed(p); got > 1 {
					t.Fatalf("replayed final configuration charged %d fault events to process %d, budget is 1", got, p)
				}
			}
		})
	}
}

// TestFaultBudgetCapsWitnesses pins the budget accounting end to end: with
// MaxFaulty 1 the witness's fault events all charge one process, and the
// exhaustive no-witness verdicts stay exhaustive (the budgeted space is
// finite).
func TestFaultBudgetCapsWitnesses(t *testing.T) {
	e := minAllExplorer(FaultAdversary{Model: sim.FaultSendOmission, Budget: 2, MaxFaulty: 1}, Options{})
	w, found, err := e.FindBlocking()
	if err != nil || !found {
		t.Fatalf("found=%t err=%v", found, err)
	}
	faulty := map[sim.ProcessID]bool{}
	for _, ev := range w.Run.Events {
		if ev.Fault != sim.FaultCrash {
			faulty[ev.Proc] = true
		}
	}
	if len(faulty) > 1 {
		t.Fatalf("witness charged %d faulty processes, MaxFaulty is 1", len(faulty))
	}
	if got := w.Run.Final.FaultyProcesses(); got > 1 {
		t.Fatalf("replayed final configuration has %d faulty processes, MaxFaulty is 1", got)
	}
}

// TestPORStandsDownUnderFaults asserts the documented soundness rule: a
// non-crash fault model disables POR (fault branching availability depends
// on other processes' fault histories, which commutation would reorder), so
// POR on and off must run the identical engine — equal stats, not merely
// equal verdicts.
func TestPORStandsDownUnderFaults(t *testing.T) {
	fa := FaultAdversary{Model: sim.FaultSendOmission, Budget: 1, MaxFaulty: 1}
	off, foundOff, err := minAllExplorer(fa, Options{}).FindBlocking()
	if err != nil {
		t.Fatal(err)
	}
	on, foundOn, err := minAllExplorer(fa, Options{POR: true}).FindBlocking()
	if err != nil {
		t.Fatal(err)
	}
	if foundOn != foundOff || on.Stats != off.Stats {
		t.Fatalf("POR did not stand down under faults: on %+v/%t, off %+v/%t",
			on.Stats, foundOn, off.Stats, foundOff)
	}
}

// faultMatrixCell is one engine configuration of the crash-only bit-identity
// matrix.
type faultMatrixCell struct {
	name     string
	workers  int
	store    Store
	symmetry bool
	por      bool
}

// faultMatrix spans workers {1,2,4} x stores {inmem,frontier} x reductions
// {none, sym, por, both} — the acceptance matrix of the fault-model PR.
func faultMatrix() []faultMatrixCell {
	var cells []faultMatrixCell
	for _, workers := range []int{1, 2, 4} {
		for _, store := range []Store{StoreInMemory, StoreFrontierOnly} {
			for _, red := range []struct {
				name     string
				sym, por bool
			}{{"none", false, false}, {"sym", true, false}, {"por", false, true}, {"both", true, true}} {
				storeName := "inmem"
				if store == StoreFrontierOnly {
					storeName = "frontier"
				}
				cells = append(cells, faultMatrixCell{
					name:     fmt.Sprintf("w%d/%s/%s", workers, storeName, red.name),
					workers:  workers,
					store:    store,
					symmetry: red.sym,
					por:      red.por,
				})
			}
		}
	}
	return cells
}

// TestCrashOnlyFaultsBitIdentity is the robustness guarantee of the fault
// substrate: an explicitly-spelled crash-only adversary (ParseFaults
// "crash") and the zero Options.Faults value must drive bit-identical
// searches — same found flag, witness detail, scheduled witness run, and
// stats — in every cell of the workers x stores x reductions matrix, for
// both goals. The zero-value cells are the engine every pre-fault search
// ran; equality proves the fault layer is invisible until armed.
func TestCrashOnlyFaultsBitIdentity(t *testing.T) {
	crash, err := ParseFaults("crash")
	if err != nil {
		t.Fatal(err)
	}
	goals := []struct {
		name string
		find func(*Explorer) (*Witness, bool, error)
	}{
		{"disagreement", (*Explorer).FindDisagreement},
		{"blocking", (*Explorer).FindBlocking},
	}
	for _, d := range []diffInstance{
		{"minwait-n3-crash", diffInstances()[1].alg, diffInstances()[1].inputs, diffInstances()[1].live, 1},
		diffInstances()[3], // flpkset-n3
	} {
		build := func(c faultMatrixCell, fa FaultAdversary) *Explorer {
			return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
				Live:       d.live,
				MaxCrashes: d.crashes,
				Workers:    c.workers,
				Store:      c.store,
				Symmetry:   c.symmetry,
				POR:        c.por,
				Faults:     fa,
			})
		}
		for _, c := range faultMatrix() {
			for _, g := range goals {
				t.Run(d.name+"/"+c.name+"/"+g.name, func(t *testing.T) {
					zeroW, zeroFound, err := g.find(build(c, FaultAdversary{}))
					if err != nil {
						t.Fatal(err)
					}
					crashW, crashFound, err := g.find(build(c, crash))
					if err != nil {
						t.Fatal(err)
					}
					if crashFound != zeroFound || crashW.Stats != zeroW.Stats {
						t.Fatalf("crash-spelled adversary diverged: %+v/%t, zero value %+v/%t",
							crashW.Stats, crashFound, zeroW.Stats, zeroFound)
					}
					if zeroFound {
						if crashW.Detail != zeroW.Detail {
							t.Fatalf("witness detail diverged: %q vs %q", crashW.Detail, zeroW.Detail)
						}
						if got, want := runSignature(crashW.Run), runSignature(zeroW.Run); got != want {
							t.Fatalf("witness run diverged:\n got %s\nwant %s", got, want)
						}
					}
				})
			}
		}
	}
}

// TestCrashOnlyFaultsVisitSameSet extends the bit-identity guarantee from
// stats to the visited configuration set itself: under the legacy
// string-keyed enumeration, the crash-spelled adversary's action enumeration
// reaches exactly the zero-value engine's set.
func TestCrashOnlyFaultsVisitSameSet(t *testing.T) {
	crash, err := ParseFaults("crash")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffInstances() {
		t.Run(d.name, func(t *testing.T) {
			const maxConfigs = 400000
			mk := func(fa FaultAdversary) *Explorer {
				return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
					Live:       d.live,
					MaxCrashes: d.crashes,
					Workers:    1,
					Faults:     fa,
				})
			}
			zero := enumerate(t, mk(FaultAdversary{}), false, maxConfigs)
			withCrash := enumerate(t, mk(crash), false, maxConfigs)
			if len(zero) != len(withCrash) {
				t.Fatalf("visited %d configurations with zero faults, %d with crash-spelled faults",
					len(zero), len(withCrash))
			}
			for key := range zero {
				if !withCrash[key] {
					t.Fatalf("crash-spelled search missed configuration %s", key)
				}
			}
		})
	}
}

// TestParseFaultsRejectsBadSpecs pins the CLI surface's error cases.
func TestParseFaultsRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{
		"meteor", "send-omission:x", "send-omission:-1", "byzantine:1:x",
		"byzantine:1:-2", "crash:1", "crash:0:1", "send-omission:1:1:1",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) succeeded, want error", bad)
		}
	}
	for _, tc := range []struct {
		in   string
		want FaultAdversary
	}{
		{"", FaultAdversary{}},
		{"crash", FaultAdversary{}},
		{"send-omission", FaultAdversary{Model: sim.FaultSendOmission}},
		{"receive-omission:2", FaultAdversary{Model: sim.FaultReceiveOmission, Budget: 2}},
		{"byzantine:1:1", FaultAdversary{Model: sim.FaultByzantine, Budget: 1, MaxFaulty: 1}},
	} {
		got, err := ParseFaults(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFaults(%q) = (%+v, %v), want %+v", tc.in, got, err, tc.want)
		}
	}
}
