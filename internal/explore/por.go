package explore

// This file implements the commutativity-based partial-order reduction
// behind Options.POR: an ample-set layer that, at each expansion, prunes
// adversary actions whose effect footprint is independent of an
// already-chosen sibling, while provably preserving every verdict the
// explorer computes — disagreement reachability, blocking reachability, and
// the reachable decision-value set (valence).
//
// # Footprints and independence
//
// An action (Proc, Mode, Crash, Omit) has the effect footprint
//
//	reads:  Proc's local state, Proc's buffer (Mode resolves the delivered
//	        message set against it);
//	writes: Proc's state/decision/crash flag, Proc's buffer (delivered
//	        messages are removed), and the buffers of every receiver of the
//	        step's sends.
//
// Two actions of distinct processes are independent — they commute exactly,
// reaching the same configuration in either order, and neither enables,
// disables, or re-resolves the other — if and only if neither step sends:
// sends are the only cross-process edge in the footprint (a send into q's
// buffer changes what q's DeliverOldest/DeliverAll resolve to, and can
// enable a delivery that was inapplicable). The explorer cannot predict a
// state's future sends in general, so the reduction keys on the opt-in
// sim.SendQuiescent interface: a configuration is *send-quiescent* when
// every live, non-crashed process's state proves it will never send again.
// Send quiescence is monotone by the interface contract, so it holds across
// the entire cone of reachable successors, where every pair of actions of
// distinct processes is therefore independent: footprints touch disjoint
// per-process slots, delivery resolutions read only the stepping process's
// own buffer (appends cannot happen — nobody sends), and crash flags are
// local. Omission sets are vacuous in the cone (there is nothing to omit),
// so crash-with-omissions duplicates crash and is dropped, and a
// DeliverOldest against a one-message buffer duplicates DeliverAll and is
// dropped likewise — both prunings remove actions with byte-identical
// successors, not merely equivalent ones.
//
// # The ample rule
//
// In a send-quiescent configuration the layer picks the *leader*: the
// smallest-id live, non-crashed process with a non-empty buffer. Only the
// leader's actions — every delivery mode, with and without a crash — are
// expanded; every action of every other process is pruned at this
// configuration. Pruning defers, it never loses: goal-relevant choices are
// preserved by commutation rather than by exemption. A crash against the
// remaining budget stays available — it commutes across the leader's steps
// (the budget bounds a count, which reordering preserves) and is expanded
// at the next configuration where the rule stands down, ultimately at the
// fully-drained configurations where no process has a non-empty buffer and
// nothing is pruned. A pruned process's pending decision step likewise has
// a purely local footprint and remains enabled, with an identical
// successor, in every explored extension.
//
// # Why no verdict is lost
//
// Soundness is a two-case commutation argument over any full-graph path π
// from a send-quiescent configuration c to a goal configuration g, by
// well-founded induction on the pair (pending messages at c, |π|):
//
//  1. π contains an action of the leader p. Every earlier action belongs to
//     another process and is independent of it (see above), so the p-action
//     commutes to the front — same delivered messages, same sends (none),
//     same final configuration g, and an unchanged crash multiset. Budget
//     admissibility survives the reordering: each crash still sees fewer
//     than the total number of crashes on π before it, and that total is
//     within budget. The front action is in the ample set, and the
//     remaining path is shorter.
//  2. π contains no action of p. Then p's non-empty buffer is untouched
//     along π, so g is not quiescent and π proves no blocking verdict;
//     prepending the ample action (p, DeliverAll) yields a path to a
//     configuration g' that carries every decision of g (decisions are
//     write-once and p's extra step can only add one), so disagreement and
//     valence verdicts survive, and the prepended step strictly decreases
//     the pending-message measure (it delivers >= 1 message, sends none,
//     and consumes no budget).
//
// Blocking verdicts need no second case: a quiescent configuration has
// every live buffer empty, so any path to one must drain the leader's
// buffer and falls under case 1. The reduced graph is a subgraph of the
// full graph, so no spurious verdict can appear either. When no process has
// a non-empty buffer, or some live state has not proven send quiescence, or
// the search queries a failure-detector oracle, nothing is pruned: oracle
// values may depend on global time and on other processes' crash flags, so
// commuting a step past a crash could change the detector output it
// observes, and the reduction conservatively stands down (Options.POR is a
// sound no-op for oracle searches such as the E5 detector-border sweep).
//
// # The crashed-slot quotient
//
// Independently of the pruning, reduced searches key their visited sets by
// sim.Configuration.LiveFingerprint (LiveCanonical64 under symmetry)
// instead of the plain fingerprint: a crashed process never steps again, so
// its absorbed local state and its undelivered buffered messages are
// behaviourally inert — no future step, delivery resolution, quiescence
// probe, or verdict predicate reads them; only the crash flag and the
// write-once decision (which binds faulty processes under k-agreement)
// remain observable. Two configurations equal up to inert crashed-slot
// content therefore have identical futures, and collapsing them is a sound
// quotient that removes the crash-timing junk the plain key keeps apart
// (the same process crashed before, during, or after draining its buffer,
// with the same decision outcome). This quotient is what makes the crash
// dimension of the search cheap; the ample rule is what serializes the
// delivery dimension.
//
// # Determinism
//
// porPlan is a pure function of the configuration's content (crash flags,
// buffer sizes, states) — it reads neither the visited set nor any search
// order — so the serial BFS/DFS, the level-synchronous parallel frontier,
// and the valence/critical analyses all enumerate byte-identical action
// lists per configuration, and the PR 2 bit-identity guarantee (same
// visited set, arena layout, witness, and stats at every worker count)
// carries over to reduced searches unchanged. Composition with
// Options.Symmetry is sound for the same reason symmetry itself is: the
// commutation argument above is applied at each concretely explored
// configuration, the measure (pending messages) is orbit-invariant, and
// goal predicates are orbit-invariant for algorithms that opt into
// sim.SymHasher64.

import "kset/internal/sim"

// porPlan is the reduction decision for one expansion: whether the
// configuration is send-quiescent (enabling the duplicate-action prunings)
// and, if so, which process leads (NoProcess when every live buffer is
// empty — then nothing is pruned beyond duplicates).
type porPlan struct {
	frozen bool
	leader sim.ProcessID
}

// porPlan computes the reduction decision at cfg. It returns the inactive
// plan unless Options.POR is set, the search is oracle-free, and every
// live, non-crashed process has proven send quiescence.
func (e *Explorer) porPlan(cfg *sim.Configuration) porPlan {
	if !e.por {
		return porPlan{}
	}
	plan := porPlan{frozen: true}
	for _, p := range e.opts.Live {
		if cfg.Crashed(p) {
			continue
		}
		if !cfg.StateSendsDone(p) {
			return porPlan{}
		}
		if plan.leader == sim.NoProcess && cfg.BufferSize(p) > 0 {
			plan.leader = p
		}
	}
	return plan
}

// prunes reports whether the plan drops the action (p, mode) at a
// configuration where p's buffer holds bufsize messages. Duplicate-successor
// pruning (oldest == all on a one-message buffer) applies to every process;
// the ample pruning drops every action of every non-leader process — their
// crashes included, which deferral keeps reachable (see the file comment).
func (plan porPlan) prunes(p sim.ProcessID, mode DeliveryMode, bufsize int) bool {
	if !plan.frozen {
		return false
	}
	if mode == DeliverOldest && bufsize == 1 {
		return true
	}
	return plan.leader != sim.NoProcess && p != plan.leader
}
