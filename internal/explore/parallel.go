package explore

// This file implements the level-synchronous parallel frontier search: the
// parallel twin of the sequential BFS in search.go and critical.go, active
// when Options.Workers resolves to more than one.
//
// Each BFS level is processed in two phases.
//
//  1. Expansion (parallel). Workers claim frontier positions from an atomic
//     counter and expand them with their own searchCtx — private clone free
//     list, delivery scratch, action buffer, quiescence probe — so the hot
//     clone/step/hash cycle runs without shared mutable state. Candidates
//     whose fingerprint key was sealed in an earlier level are dropped
//     against the arena's visited map, which is immutable while workers run
//     and therefore read lock-free. Surviving candidates enter a 64-way
//     sharded claim table keyed by fingerprint: per-shard mutexes arbitrate
//     concurrent claims, and a claim is replaced when a candidate with a
//     smaller deterministic order (parent position, action index) arrives,
//     so each key's surviving candidate is the one the sequential search
//     would have kept — independent of goroutine interleaving. Losers are
//     recycled into the claiming worker's free list immediately.
//
//  2. Merge (sequential). The claim-table winners are drained, sorted by
//     their deterministic order, and appended to the flat node arena in
//     exactly the order the sequential search would have inserted them —
//     sealing their keys into the visited map, assigning identical int32
//     arena indices, and emitting the next frontier in identical order. Goal
//     hits short-circuit the merge at the first winner in order, and
//     Stats.Visited is reconstructed from the winner's parent position, so
//     witness, replayed run, stats, and truncation behaviour are all
//     bit-identical to the sequential search's. The differential tests
//     assert exactly this.
//
// The only intentional divergence is wasted speculative work: the parallel
// search expands a whole level before applying the goal/budget/stop gates
// that the sequential search applies per dequeued parent, so a level's tail
// may be explored and discarded. Results are unaffected.

import (
	"sort"
	"sync"
	"sync/atomic"

	"kset/internal/sim"
)

// ordShift packs a candidate's deterministic order as
// parentPosition<<ordShift | actionIndex. A parent's action enumeration is
// far smaller than 2^20 entries, and level positions stay far below 2^44.
const ordShift = 20

// candidate is one successor configuration produced during level expansion,
// carrying everything the merge phase needs to finish the sequential
// search's bookkeeping for it.
type candidate struct {
	cfg     *sim.Configuration
	key     uint64
	ord     uint64
	parent  int32
	crashes int32
	act     action
	goalOK  bool
	detail  string
}

// claimShards is the number of claim-table shards. Fingerprint keys are
// splitmix64-diffused, so the low bits index uniformly.
const claimShards = 64

// claimShard holds the pending within-level claims whose keys fall into the
// shard, guarded by the shard mutex.
type claimShard struct {
	mu sync.Mutex
	m  map[uint64]candidate
}

// claimTable is the sharded within-level claim table. Claims are written
// concurrently during expansion and drained sequentially during the merge.
type claimTable struct {
	shards [claimShards]claimShard
}

func newClaimTable() *claimTable {
	ct := &claimTable{}
	for i := range ct.shards {
		ct.shards[i].m = make(map[uint64]candidate, 64)
	}
	return ct
}

// claim records cand as the pending winner for its key unless a
// smaller-order candidate already holds the slot. It returns the
// configuration the caller should recycle: cand's own on loss, the evicted
// claimant's on replacement, nil when cand took an empty slot. Candidates
// for one key are behaviourally identical configurations (equal fingerprint
// keys), so replacement only re-parents the node — goal results carry over.
func (ct *claimTable) claim(cand candidate) *sim.Configuration {
	s := &ct.shards[cand.key%claimShards]
	s.mu.Lock()
	prev, ok := s.m[cand.key]
	if !ok || cand.ord < prev.ord {
		s.m[cand.key] = cand
		s.mu.Unlock()
		if !ok {
			return nil
		}
		return prev.cfg
	}
	s.mu.Unlock()
	return cand.cfg
}

// take drains every pending claim into buf (reused across levels) sorted by
// deterministic order — the exact insertion order of the sequential search.
func (ct *claimTable) take(buf []candidate) []candidate {
	buf = buf[:0]
	for i := range ct.shards {
		for _, c := range ct.shards[i].m {
			buf = append(buf, c)
		}
		clear(ct.shards[i].m)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].ord < buf[j].ord })
	return buf
}

// workerCtxs returns n search contexts for one parallel search. The first is
// the explorer's own, so its free list keeps warming across consecutive
// searches on the same Explorer, exactly as in the sequential path.
func (e *Explorer) workerCtxs(n int) []*searchCtx {
	ws := make([]*searchCtx, n)
	ws[0] = &e.sc
	for i := 1; i < n; i++ {
		ws[i] = &searchCtx{e: e}
	}
	return ws
}

// expandLevel expands frontier[lo:hi] across the worker contexts, leaving
// the deterministic winners in the claim table. Candidate order keys use the
// absolute frontier position, so expanding a level in several chunks (the
// bounded engine resumes mid-level after a checkpoint) yields the same
// winners as one pass. vis is the sealed visited set — immutable while
// workers run, hence read lock-free. goal, when non-nil, is evaluated on
// every candidate that survives the sealed-visited check, in parallel, so
// the merge only inspects the precomputed flag.
func (e *Explorer) expandLevel(ws []*searchCtx, frontier []qent, lo, hi int, vis *visitedSet, ct *claimTable, goal goalFunc) {
	workers := len(ws)
	if workers > hi-lo {
		workers = hi - lo
	}
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *searchCtx) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				parent := frontier[i]
				for ai, act := range sc.actions(parent.cfg, int(parent.crashes)) {
					cfg, ok := sc.apply(parent.cfg, act)
					if !ok {
						continue
					}
					crashes := parent.crashes
					if act.Crash {
						crashes++
					}
					cand := candidate{
						cfg:     cfg,
						key:     sc.e.key(cfg, int(crashes)),
						ord:     uint64(i)<<ordShift | uint64(ai),
						parent:  parent.idx,
						crashes: crashes,
						act:     act,
					}
					if vis.Contains(cand.key) {
						sc.release(cfg)
						continue
					}
					if goal != nil {
						cand.detail, cand.goalOK = goal(sc, cfg)
					}
					if dup := ct.claim(cand); dup != nil {
						sc.release(dup)
					}
				}
			}
		}(ws[w])
	}
	wg.Wait()
}

// releaseLevel recycles the expanded parents frontier[lo:hi] across the
// worker free lists, skipping keep (the caller-owned start configuration of
// a valence search).
func releaseLevel(ws []*searchCtx, frontier []qent, lo, hi int, keep *sim.Configuration) {
	for i := lo; i < hi; i++ {
		if frontier[i].cfg != keep {
			ws[i%len(ws)].release(frontier[i].cfg)
		}
	}
}

// searchParallel is the parallel frontier twin of the sequential BFS branch
// of searchArena, with identical results: visited set, arena layout,
// witness, stats, and truncation all match the sequential search exactly.
func (e *Explorer) searchParallel(goal goalFunc, kind string) (*Witness, bool, *arena, error) {
	start, err := e.initial()
	if err != nil {
		return nil, false, nil, err
	}
	ar := newArena()
	rootIdx := ar.root(e.key(start, 0))
	stats := Stats{}

	if detail, ok := goal(&e.sc, start); ok {
		run, err := e.replay(ar, rootIdx)
		if err != nil {
			return nil, false, nil, err
		}
		return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, ar, nil
	}

	ws := e.workerCtxs(e.searchWorkers())
	ct := newClaimTable()
	frontier := []qent{{cfg: start, idx: rootIdx}}
	var winners []candidate
	level := 0
	for len(frontier) > 0 {
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, ar, nil
		}
		if e.cancelled() {
			stats.Truncated = true
			stats.Cancelled = true
			return &Witness{Kind: kind, Stats: stats}, false, ar, nil
		}
		limit := len(frontier)
		if remaining := e.opts.MaxConfigs - stats.Visited; limit > remaining {
			limit = remaining
		}
		e.expandLevel(ws, frontier, 0, limit, ar.visited, ct, goal)
		winners = ct.take(winners)

		nextFrontier := make([]qent, 0, len(winners))
		for _, w := range winners {
			idx, fresh := ar.insert(w.key, w.parent, w.act)
			if !fresh {
				// Unreachable: sealed keys were dropped during expansion and
				// within-level duplicates were resolved by the claim table.
				ws[0].release(w.cfg)
				continue
			}
			if w.goalOK {
				// The sequential search finds this witness while expanding
				// the winner's parent, having dequeued every parent up to
				// and including it.
				stats.Visited += int(w.ord>>ordShift) + 1
				run, err := e.replay(ar, idx)
				if err != nil {
					return nil, false, nil, err
				}
				return &Witness{Kind: kind, Run: run, Detail: w.detail, Stats: stats}, true, ar, nil
			}
			nextFrontier = append(nextFrontier, qent{cfg: w.cfg, idx: idx, crashes: w.crashes})
		}
		stats.Visited += limit
		releaseLevel(ws, frontier, 0, limit, nil)
		if limit < len(frontier) {
			// The budget ran out mid-level: the sequential search truncates
			// with these parents still queued.
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, ar, nil
		}
		frontier = nextFrontier
		level++
		e.progress(stats.Visited, level)
	}
	return &Witness{Kind: kind, Stats: stats}, false, ar, nil
}

// valenceFromParallel is the parallel frontier twin of the sequential
// valenceFrom, emulating its per-parent stop and budget gates during the
// merge so that the returned values and stats match the sequential
// computation exactly — including early stops, where the level's remaining
// speculative work is discarded just like the sequential search abandons its
// queue.
func (e *Explorer) valenceFromParallel(start *sim.Configuration, crashesSpent, stopAt int) ([]sim.Value, Stats, error) {
	seenVals := map[sim.Value]bool{}
	collectDecisions(seenVals, start)
	stats := Stats{}
	// Valence only censuses decision values — no witness path is ever
	// reconstructed — so revisit detection needs the compact visited set
	// alone; no node arena is kept whatever the store mode.
	vis := newVisitedSet()
	vis.Insert(e.key(start, crashesSpent))
	ws := e.workerCtxs(e.searchWorkers())
	ct := newClaimTable()
	frontier := []qent{{cfg: start, crashes: int32(crashesSpent)}}
	var winners []candidate
	stopped := false
	for len(frontier) > 0 && !stopped {
		e.expandLevel(ws, frontier, 0, len(frontier), vis, ct, nil)
		winners = ct.take(winners)

		// Serial-gate emulation: dequeue the level's parents in order,
		// re-checking the stop and budget gates before each, and fold in the
		// decisions of each parent's fresh children as they are sealed.
		pos := -1 // highest parent position dequeued so far
		dequeueThrough := func(target int) bool {
			for pos < target {
				if stopAt > 0 && len(seenVals) >= stopAt {
					return false
				}
				if stats.Visited >= e.opts.MaxConfigs {
					stats.Truncated = true
					return false
				}
				pos++
				stats.Visited++
			}
			return true
		}
		nextFrontier := make([]qent, 0, len(winners))
		for _, w := range winners {
			if !dequeueThrough(int(w.ord >> ordShift)) {
				stopped = true
				break
			}
			if !vis.Insert(w.key) {
				ws[0].release(w.cfg) // unreachable, as in searchParallel
				continue
			}
			collectDecisions(seenVals, w.cfg)
			nextFrontier = append(nextFrontier, qent{cfg: w.cfg, crashes: w.crashes})
		}
		if !stopped && !dequeueThrough(len(frontier)-1) {
			stopped = true
		}
		releaseLevel(ws, frontier, 0, len(frontier), start)
		frontier = nextFrontier
	}
	vals := make([]sim.Value, 0, len(seenVals))
	for v := range seenVals {
		vals = append(vals, v)
	}
	sortValues(vals)
	return vals, stats, nil
}
