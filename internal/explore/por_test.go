package explore

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
	"kset/internal/testutil"
)

// explorerPOR builds the instance's explorer with partial-order reduction,
// an explicit worker count, and optionally symmetry reduction on top.
func (d diffInstance) explorerPOR(workers int, symmetry bool) *Explorer {
	return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
		Live:       d.live,
		MaxCrashes: d.crashes,
		Workers:    workers,
		Symmetry:   symmetry,
		POR:        true,
	})
}

// porInstances is the POR differential suite: the symmetry suite (distinct,
// uniform, and block inputs across MinWait, FirstHeard, FLPKSet, DecideOwn)
// plus a crash-budget FLPKSet instance, whose reachable blocking verdict
// exercises the only goal the commutation argument handles by buffer
// non-emptiness rather than by decision monotonicity, and an oracle-free
// QuorumMin instance pinning its SendsDone opt-in (no detector means no
// decisions — every search degenerates to the blocking question).
func porInstances() []diffInstance {
	return append(symInstances(),
		diffInstance{"flpkset-n3-crash", algorithms.FLPKSet{F: 1}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 1},
		diffInstance{"quorummin-n3-crash", algorithms.QuorumMin{}, []sim.Value{0, 1, 2}, []sim.ProcessID{1, 2, 3}, 1},
	)
}

// TestPORVerdictParity is the acceptance gate of the reduction layer: for
// every instance of the POR differential suite and both witness goals, the
// reduced search must (1) reach the same possible/impossible verdict as the
// plain search, (2) visit at most as many configurations, and (3) emit
// witnesses that independently revalidate — the replayed run concretely
// exhibits the violation. The same matrix runs with symmetry reduction
// stacked on both sides, proving the two reductions compose.
func TestPORVerdictParity(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	layers := []struct {
		name    string
		plain   func(diffInstance) *Explorer
		reduced func(diffInstance) *Explorer
	}{
		{"por-vs-plain",
			func(d diffInstance) *Explorer { return d.explorerWorkers(1) },
			func(d diffInstance) *Explorer { return d.explorerPOR(1, false) }},
		{"por+sym-vs-sym",
			func(d diffInstance) *Explorer { return d.explorerSym(1) },
			func(d diffInstance) *Explorer { return d.explorerPOR(1, true) }},
	}
	for _, l := range layers {
		for _, d := range porInstances() {
			for _, g := range goals {
				t.Run(l.name+"/"+d.name+"/"+g.name, func(t *testing.T) {
					plainW, plainFound, _, err := l.plain(d).searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					porW, porFound, _, err := l.reduced(d).searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					if plainW.Stats.Truncated || porW.Stats.Truncated {
						t.Fatalf("instance not exhaustive (plain %d, por %d)", plainW.Stats.Visited, porW.Stats.Visited)
					}
					if porFound != plainFound {
						t.Fatalf("verdict diverged: por found=%t, plain found=%t", porFound, plainFound)
					}
					if porW.Stats.Visited > plainW.Stats.Visited {
						t.Fatalf("por visited %d > plain %d", porW.Stats.Visited, plainW.Stats.Visited)
					}
					if porFound {
						testutil.RevalidateWitness(t, porW.Kind, porW.Run)
					}
				})
			}
		}
	}
}

// TestPORStrictReductionUniformTheorem2 pins the asymptotic payoff and the
// composition with symmetry: on the uniform-input Theorem 2 instance the
// reduced exhaustive search must visit at least 2x fewer configurations
// than the plain search, and stacking POR on the symmetry-reduced search
// must again cut at least 2x beyond symmetry alone.
func TestPORStrictReductionUniformTheorem2(t *testing.T) {
	d := diffInstance{"minwait-n4-uniform-t2", algorithms.MinWait{F: 1}, []sim.Value{0, 0, 0, 0}, []sim.ProcessID{1, 2, 3, 4}, 1}
	visited := func(e *Explorer) int {
		w, found, _, err := e.searchArena(disagreementGoal, "disagreement")
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("uniform inputs cannot disagree (validity)")
		}
		if w.Stats.Truncated {
			t.Fatal("search truncated; raise MaxConfigs")
		}
		return w.Stats.Visited
	}
	plain := visited(d.explorerWorkers(1))
	por := visited(d.explorerPOR(1, false))
	sym := visited(d.explorerSym(1))
	both := visited(d.explorerPOR(1, true))
	if 2*por > plain {
		t.Fatalf("expected >= 2x node reduction from POR alone: por visited %d, plain visited %d", por, plain)
	}
	if 2*both > sym {
		t.Fatalf("expected >= 2x node reduction beyond symmetry alone: por+sym visited %d, sym visited %d", both, sym)
	}
	t.Logf("uniform Theorem 2 instance: plain %d, por %d (%.1fx), sym %d, por+sym %d (%.1fx beyond sym, %.1fx total)",
		plain, por, float64(plain)/float64(por), sym, both,
		float64(sym)/float64(both), float64(plain)/float64(both))
}

// TestPORParallelMatchesSerial asserts that the level-synchronous parallel
// frontier with partial-order reduction produces results bit-identical to
// the serial reduced search at every worker count, with and without
// symmetry stacked on top: the reduction plan is a pure function of the
// configuration, so the PR 2 determinism guarantee carries over to reduced
// action enumerations. Run under -race in CI.
func TestPORParallelMatchesSerial(t *testing.T) {
	goals := []struct {
		name string
		goal goalFunc
	}{
		{"disagreement", disagreementGoal},
		{"blocking", blockingGoal},
	}
	for _, symmetry := range []bool{false, true} {
		name := "por"
		if symmetry {
			name = "por+sym"
		}
		for _, d := range porInstances() {
			for _, g := range goals {
				t.Run(name+"/"+d.name+"/"+g.name, func(t *testing.T) {
					seqW, seqFound, seqAr, err := d.explorerPOR(1, symmetry).searchArena(g.goal, g.name)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{2, 4} {
						parW, parFound, parAr, err := d.explorerPOR(workers, symmetry).searchArena(g.goal, g.name)
						if err != nil {
							t.Fatal(err)
						}
						if parFound != seqFound {
							t.Fatalf("workers=%d: found=%t, serial found=%t", workers, parFound, seqFound)
						}
						if parW.Stats != seqW.Stats {
							t.Fatalf("workers=%d: stats %+v, serial %+v", workers, parW.Stats, seqW.Stats)
						}
						if seqFound {
							if parW.Detail != seqW.Detail {
								t.Fatalf("workers=%d: detail %q, serial %q", workers, parW.Detail, seqW.Detail)
							}
							if got, want := runSignature(parW.Run), runSignature(seqW.Run); got != want {
								t.Fatalf("workers=%d: witness run diverged:\n got %s\nwant %s", workers, got, want)
							}
							continue
						}
						if parAr.visited.Len() != seqAr.visited.Len() || len(parAr.nodes) != len(seqAr.nodes) {
							t.Fatalf("workers=%d: visited %d nodes %d, serial visited %d nodes %d",
								workers, parAr.visited.Len(), len(parAr.nodes), seqAr.visited.Len(), len(seqAr.nodes))
						}
						seqAr.visited.Range(func(key uint64) bool {
							if !parAr.visited.Contains(key) {
								t.Fatalf("workers=%d: parallel search missed visited key %#x", workers, key)
							}
							return true
						})
					}
				})
			}
		}
	}
}

// TestPORDFSVerdictParity asserts verdict parity on the depth-first search
// order too: the reduction is a property of the action enumeration, not of
// the search order, so the DFS engine used by the Theorem 1 pipeline's
// condition-(C) default must reach the same verdicts reduced as plain.
func TestPORDFSVerdictParity(t *testing.T) {
	dfs := func(d diffInstance, por bool) *Explorer {
		return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
			Live:       d.live,
			MaxCrashes: d.crashes,
			Strategy:   "dfs",
			Workers:    1,
			POR:        por,
		})
	}
	for _, d := range porInstances() {
		t.Run(d.name, func(t *testing.T) {
			plainW, plainFound, err := dfs(d, false).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			porW, porFound, err := dfs(d, true).FindDisagreement()
			if err != nil {
				t.Fatal(err)
			}
			if plainW.Stats.Truncated || porW.Stats.Truncated {
				t.Fatal("instance not exhaustive")
			}
			if porFound != plainFound {
				t.Fatalf("dfs verdict diverged: por found=%t, plain found=%t", porFound, plainFound)
			}
			if porFound {
				testutil.RevalidateWitness(t, porW.Kind, porW.Run)
			}
		})
	}
}

// TestPORValenceParity asserts that valence classification — the engine
// behind E6 and the critical-step analysis — returns the same reachable
// decision values with and without the reduction (and with symmetry stacked
// on top), while visiting at most as many configurations.
func TestPORValenceParity(t *testing.T) {
	for _, d := range porInstances() {
		t.Run(d.name, func(t *testing.T) {
			plainVals, plainStats, err := d.explorerWorkers(1).Valence(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, symmetry := range []bool{false, true} {
				porVals, porStats, err := d.explorerPOR(1, symmetry).Valence(0)
				if err != nil {
					t.Fatal(err)
				}
				if len(plainVals) != len(porVals) {
					t.Fatalf("sym=%t: valence diverged: plain %v, por %v", symmetry, plainVals, porVals)
				}
				for i := range plainVals {
					if plainVals[i] != porVals[i] {
						t.Fatalf("sym=%t: valence diverged: plain %v, por %v", symmetry, plainVals, porVals)
					}
				}
				if porStats.Visited > plainStats.Visited {
					t.Fatalf("sym=%t: por valence visited %d > plain %d", symmetry, porStats.Visited, plainStats.Visited)
				}
			}
		})
	}
}

// TestPORStandsDownWithoutDeliverAll pins the Modes guard: the soundness
// argument needs DeliverAll among the enumerated modes (the commutation
// proof's second case prepends a full flush, and the oldest-on-singleton
// prune identifies DeliverOldest with DeliverAll), so with a custom Modes
// list lacking it the reduction must disable itself entirely — the POR
// search must be bit-identical to the plain one, not merely verdict-equal.
func TestPORStandsDownWithoutDeliverAll(t *testing.T) {
	modes := []DeliveryMode{DeliverNone, DeliverOldest}
	for _, d := range diffInstances() {
		t.Run(d.name, func(t *testing.T) {
			build := func(por bool) *Explorer {
				return New(sim.Restrict(d.alg, d.live), d.inputs, Options{
					Live:       d.live,
					MaxCrashes: d.crashes,
					Modes:      modes,
					Workers:    1,
					POR:        por,
				})
			}
			plainW, plainFound, plainAr, err := build(false).searchArena(disagreementGoal, "disagreement")
			if err != nil {
				t.Fatal(err)
			}
			porW, porFound, porAr, err := build(true).searchArena(disagreementGoal, "disagreement")
			if err != nil {
				t.Fatal(err)
			}
			if porFound != plainFound || porW.Stats != plainW.Stats {
				t.Fatalf("restricted-modes POR diverged: found=%t stats=%+v, plain found=%t stats=%+v",
					porFound, porW.Stats, plainFound, plainW.Stats)
			}
			if porAr.visited.Len() != plainAr.visited.Len() {
				t.Fatalf("restricted-modes POR visited %d keys, plain %d", porAr.visited.Len(), plainAr.visited.Len())
			}
			plainAr.visited.Range(func(key uint64) bool {
				if !porAr.visited.Contains(key) {
					t.Fatalf("restricted-modes POR missed visited key %#x", key)
				}
				return true
			})
		})
	}
}
