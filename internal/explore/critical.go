package explore

import (
	"fmt"

	"kset/internal/sim"
)

// StepValence describes one adversary action available at a configuration
// together with the valence of the configuration it leads to.
type StepValence struct {
	Proc  sim.ProcessID
	Mode  DeliveryMode
	Crash bool
	// Values are the decision values reachable after taking the action.
	Values []sim.Value
	// Forcing is true when the successor configuration is univalent while
	// the current configuration is bivalent — the action is a "critical
	// step" in the FLP sense: the adversary's choice at this configuration
	// decides the outcome.
	Forcing bool
}

// CriticalAnalysis classifies every available action at the initial
// configuration by the valence of its successor. For a bivalent initial
// configuration of a consensus algorithm this exhibits the FLP Lemma 3
// shape: some single steps commit the system to one value, so the
// adversary, by choosing among them, controls the decision — and by
// stalling the pivotal process it can defer commitment.
type CriticalAnalysis struct {
	// InitialValues is the valence of the initial configuration itself.
	InitialValues []sim.Value
	// Bivalent reports len(InitialValues) >= 2.
	Bivalent bool
	// Steps lists every applicable first action with its successor valence.
	Steps []StepValence
	// Stats aggregates the exploration effort across all successor
	// valence computations.
	Stats Stats
}

// AnalyzeCriticalSteps computes the valence of the initial configuration
// and of every one-step successor. Exploration budgets apply per successor;
// a truncated successor valence is reported as-is with Stats.Truncated set
// on the aggregate.
func (e *Explorer) AnalyzeCriticalSteps() (*CriticalAnalysis, error) {
	initVals, initStats, err := e.Valence(0)
	if err != nil {
		return nil, fmt.Errorf("explore: initial valence: %w", err)
	}
	out := &CriticalAnalysis{
		InitialValues: initVals,
		Bivalent:      len(initVals) >= 2,
		Stats:         initStats,
	}

	start, err := e.initial()
	if err != nil {
		return nil, err
	}
	// actionsFull returns the explorer's reusable buffer and valenceFrom
	// enumerates actions itself below, so take a copy before recursing. The
	// unreduced enumeration is deliberate: the analysis reports a StepValence
	// per available first action, and that list must not shrink under
	// Options.POR (the successor valence computations still prune).
	acts := append([]action(nil), e.sc.actionsFull(start, 0)...)
	for _, act := range acts {
		next, ok := e.apply(start, act)
		if !ok {
			continue
		}
		vals, stats, err := e.valenceFrom(next, boolToInt(act.Crash), 0)
		e.release(next)
		if err != nil {
			return nil, fmt.Errorf("explore: successor valence: %w", err)
		}
		out.Stats.Visited += stats.Visited
		if stats.Truncated {
			out.Stats.Truncated = true
		}
		out.Steps = append(out.Steps, StepValence{
			Proc:    act.Proc,
			Mode:    act.Mode,
			Crash:   act.Crash,
			Values:  vals,
			Forcing: out.Bivalent && len(vals) == 1,
		})
	}
	return out, nil
}

// valenceFrom computes the reachable decision values from an arbitrary
// configuration (with crashes already spent), stopping early once stopAt
// distinct values are found (0 = collect every value). It shares the
// arena-backed, fingerprint-keyed breadth-first expansion of search; the
// caller retains ownership of start, every other visited configuration is
// recycled through the explorer's free list.
func (e *Explorer) valenceFrom(start *sim.Configuration, crashesSpent, stopAt int) ([]sim.Value, Stats, error) {
	// Valence expansion is always breadth-first, so the parallel frontier
	// applies whenever more than one worker is configured, independent of
	// Options.Strategy (which only orders witness searches).
	if e.searchWorkers() > 1 {
		return e.valenceFromParallel(start, crashesSpent, stopAt)
	}
	seenVals := map[sim.Value]bool{}
	collectDecisions(seenVals, start)
	stats := Stats{}
	// Valence only censuses decision values — no witness path is ever
	// reconstructed — so revisit detection keeps the compact visited set
	// alone (see visited.go); the node arena would be dead weight here.
	vis := newVisitedSet()
	vis.Insert(e.key(start, crashesSpent))
	queue := []qent{{cfg: start, crashes: int32(crashesSpent)}}
	for len(queue) > 0 {
		if stopAt > 0 && len(seenVals) >= stopAt {
			break
		}
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			break
		}
		cur := queue[0]
		queue = queue[1:]
		stats.Visited++
		for _, act := range e.actions(cur.cfg, int(cur.crashes)) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			if !vis.Insert(e.key(next, int(crashes))) {
				e.release(next)
				continue
			}
			collectDecisions(seenVals, next)
			queue = append(queue, qent{cfg: next, crashes: crashes})
		}
		if cur.cfg != start {
			e.release(cur.cfg)
		}
	}
	vals := make([]sim.Value, 0, len(seenVals))
	for v := range seenVals {
		vals = append(vals, v)
	}
	sortValues(vals)
	return vals, stats, nil
}

func sortValues(vs []sim.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
