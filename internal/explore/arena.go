package explore

// This file holds the arena-backed search bookkeeping of the in-memory
// store (Options.Store == StoreInMemory), shared by the witness searches of
// search.go and parallel.go: visited detection inserts configuration
// fingerprints (plus crash budget) into the compact visitedSet of
// visited.go, and parent links live in a flat []node arena indexed by int32
// with the reaching action stored inline, so witness replay walks indices
// instead of re-deriving string chains. The bounded stores of bounded.go
// keep the visitedSet but drop the node arena entirely.

// node records how a configuration was reached: the arena index of its
// parent (-1 for the root) and the action that produced it.
type node struct {
	parent int32
	act    action
}

// arena is the flat node store plus the fingerprint-keyed visited set of one
// search.
type arena struct {
	nodes   []node
	visited *visitedSet
}

func newArena() *arena {
	return &arena{
		nodes:   make([]node, 0, 1024),
		visited: newVisitedSet(),
	}
}

// root registers the initial configuration under key and returns its index.
func (a *arena) root(key uint64) int32 {
	a.nodes = append(a.nodes, node{parent: -1})
	a.visited.Insert(key)
	return int32(len(a.nodes) - 1)
}

// insert records a configuration reached from parent by act. It returns the
// new node's index and true, or (0, false) when key was already visited.
func (a *arena) insert(key uint64, parent int32, act action) (int32, bool) {
	if !a.visited.Insert(key) {
		return 0, false
	}
	a.nodes = append(a.nodes, node{parent: parent, act: act})
	return int32(len(a.nodes) - 1), true
}

// path reconstructs the action sequence leading from the root to idx, in
// execution order.
func (a *arena) path(idx int32) []action {
	var acts []action
	for idx >= 0 {
		n := a.nodes[idx]
		if n.parent < 0 {
			break
		}
		acts = append(acts, n.act)
		idx = n.parent
	}
	for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
		acts[i], acts[j] = acts[j], acts[i]
	}
	return acts
}
