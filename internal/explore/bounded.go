package explore

// This file implements the memory-bounded search engines selected by
// Options.Store. The in-memory engines of search.go and parallel.go retain
// one arena node (parent index + action) per visited configuration so a
// witness replays by walking parent chains; on exhaustive verification
// workloads — the searches that visit millions of configurations precisely
// because no witness exists — that arena, not the frontier, dominates the
// footprint.
//
// The bounded breadth-first engine keeps, per visited configuration, only
// its revisit key in the compact visitedSet of visited.go (~16 B/state) plus
// the live configurations of the current and next BFS levels. What it drops
// is the per-node parentage, which is only ever needed when a witness is
// found — and parentage is redundant: the traversal is fully deterministic,
// so each level is a pure function of the previous one. The engine therefore
// records, per level, the sequence of generation records (parent position in
// the previous level, action) into a pluggable sink:
//
//   - StoreFrontierOnly discards them as levels seal. If a goal
//     configuration is found at depth d, the witness path is reconstructed
//     by a bounded re-search: the same deterministic traversal is re-run
//     with a recording sink and stops at the identical hit, after which the
//     path is read off the records. The re-search doubles the time to the
//     witness — never the memory — and verification runs that find nothing
//     (the memory-critical case) never pay it.
//
//   - StoreSpill streams sealed levels to a temporary disk file instead,
//     8 bytes per record. Witness reconstruction walks the file backwards by
//     random access and checkpoints are written by streaming re-read, both
//     without re-searching.
//
// Truncation at MaxConfigs becomes a pause instead of a dead end: with
// Options.Checkpoint set, the paused state (the level logs — everything
// else regenerates from them) is persisted and a later search of the same
// instance resumes exactly where this one stopped; see checkpoint.go.
//
// Both bounded engines — the serial loop below and the chunked parallel
// frontier built on expandLevel of parallel.go — visit configurations in
// exactly the sequential in-memory order, so verdicts, stats, truncation
// behaviour, and reconstructed witnesses are bit-identical to the arena
// engines at every worker count. The depth-first twin at the bottom of the
// file keeps witnesses as immutable cons-list paths hanging off the stack
// (dead branches are garbage-collected), which bounds DFS memory by the
// visited-key set plus the live stack.

import (
	"fmt"
	"os"

	"kset/internal/sim"
)

// Store selects the memory regime of a search; see Options.Store.
type Store int

// Store modes.
const (
	// StoreInMemory retains the full node arena (default).
	StoreInMemory Store = iota
	// StoreFrontierOnly retains only the compact visited-key set and the
	// current/next BFS levels; witnesses reconstruct by bounded re-search.
	StoreFrontierOnly
	// StoreSpill is StoreFrontierOnly plus sealed level logs streamed to a
	// temporary disk file, enabling re-search-free witness reconstruction
	// and cheap checkpoints.
	StoreSpill
)

func (s Store) String() string {
	switch s {
	case StoreInMemory:
		return "inmem"
	case StoreFrontierOnly:
		return "frontier"
	case StoreSpill:
		return "spill"
	default:
		return fmt.Sprintf("store(%d)", int(s))
	}
}

// ParseStore parses the CLI spelling of a store mode: "inmem" (or empty),
// "frontier", or "spill".
func ParseStore(s string) (Store, error) {
	switch s {
	case "", "inmem":
		return StoreInMemory, nil
	case "frontier":
		return StoreFrontierOnly, nil
	case "spill":
		return StoreSpill, nil
	default:
		return 0, fmt.Errorf("explore: unknown store %q (want inmem, frontier, or spill)", s)
	}
}

// ParsePacked parses the CLI spelling of the packed-engine knob: "" or
// "off" keeps the pointer engine, "on" (or "auto") selects the packed
// struct-of-arrays engine where the algorithm/system pair supports it,
// falling back silently otherwise (see Options.Packed).
func ParsePacked(s string) (bool, error) {
	switch s {
	case "", "off":
		return false, nil
	case "on", "auto":
		return true, nil
	default:
		return false, fmt.Errorf("explore: unknown packed mode %q (want off, on, or auto)", s)
	}
}

// levelRec is one generation record of a bounded search: frontier entry
// number pos of level l+1 was produced by applying act to entry parent of
// level l. Level logs are sequences of these, in frontier order.
type levelRec struct {
	parent int32
	act    action
}

// recBits packs a record into the fixed 8-byte on-disk encoding shared by
// the spill file and the checkpoint format: parent in the low 32 bits, then
// process id (16), delivery mode (8), and a flags byte — crash (bit 0),
// omit (bit 1), and the step's fault model (bits 2-3; 0 for non-fault
// steps, so crash-only encodings are unchanged from earlier versions).
func recBits(r levelRec) uint64 {
	var flags uint64
	if r.act.Crash {
		flags |= 1
	}
	if r.act.Omit {
		flags |= 2
	}
	flags |= uint64(r.act.Fault) << 2
	return uint64(uint32(r.parent)) |
		uint64(uint16(r.act.Proc))<<32 |
		uint64(uint8(r.act.Mode))<<48 |
		flags<<56
}

// recFromBits is the inverse of recBits.
func recFromBits(b uint64) levelRec {
	return levelRec{
		parent: int32(uint32(b)),
		act: action{
			Proc:  sim.ProcessID(uint16(b >> 32)),
			Mode:  DeliveryMode(uint8(b >> 48)),
			Crash: b>>56&1 != 0,
			Omit:  b>>56&2 != 0,
			Fault: sim.FaultModel(b >> 58 & 3),
		},
	}
}

// levelSink receives the generation records of a bounded search, one begun
// level at a time. Level l's records generate frontier level l+1.
type levelSink interface {
	// beginLevel opens the next level's record sequence.
	beginLevel() error
	// append adds a record to the most recently begun level.
	append(rec levelRec) error
	// levels returns the number of levels begun.
	levels() int
	// levelLen returns the number of records appended to level l.
	levelLen(l int) int
	// record returns the pos'th record of level l. Only retained sinks
	// support it.
	record(l, pos int) (levelRec, error)
	// retained reports whether records can be read back — the condition for
	// re-search-free witness reconstruction and for checkpointing.
	retained() bool
	// discard releases the sink's resources (no-op where there are none).
	discard()
}

// discardSink counts records without keeping them: the StoreFrontierOnly
// sink when no checkpoint directory is configured.
type discardSink struct {
	lens []int
}

func (d *discardSink) beginLevel() error { d.lens = append(d.lens, 0); return nil }
func (d *discardSink) append(levelRec) error {
	d.lens[len(d.lens)-1]++
	return nil
}
func (d *discardSink) levels() int        { return len(d.lens) }
func (d *discardSink) levelLen(l int) int { return d.lens[l] }
func (d *discardSink) record(l, pos int) (levelRec, error) {
	return levelRec{}, fmt.Errorf("explore: level records were discarded (frontier-only store)")
}
func (d *discardSink) retained() bool { return false }
func (d *discardSink) discard()       {}

// memSink retains records in memory, 8 bytes each in packed form: the
// recording sink of witness re-searches, of checkpoint-enabled
// frontier-only searches, and of restored checkpoints.
type memSink struct {
	recs [][]uint64
}

func (m *memSink) beginLevel() error { m.recs = append(m.recs, nil); return nil }
func (m *memSink) append(rec levelRec) error {
	m.recs[len(m.recs)-1] = append(m.recs[len(m.recs)-1], recBits(rec))
	return nil
}
func (m *memSink) levels() int        { return len(m.recs) }
func (m *memSink) levelLen(l int) int { return len(m.recs[l]) }
func (m *memSink) record(l, pos int) (levelRec, error) {
	return recFromBits(m.recs[l][pos]), nil
}
func (m *memSink) retained() bool { return true }
func (m *memSink) discard()       {}

// diskSink streams records to a temporary file: the StoreSpill sink. Writes
// go through an in-memory tail buffer flushed at level boundaries; record()
// reads are served from the tail when possible and by ReadAt otherwise, so
// backward witness walks touch the disk only for long-sealed levels.
type diskSink struct {
	f    *os.File
	offs []int64 // byte offset of each level's first record
	lens []int
	size int64  // bytes flushed to the file
	tail []byte // records not yet flushed (current level's)
	// rbuf caches one read block so the sequential record() walks of
	// checkpoint serialization and resume regeneration cost one pread per
	// 64 KiB instead of one per 8-byte record. Flushed bytes are immutable
	// (appends only extend the file), so the cache never invalidates.
	rbuf    []byte
	rbufOff int64
}

// newDiskSink creates the spill file in dir ("" = os.TempDir()) and
// immediately unlinks it where the platform allows (the open descriptor
// keeps the storage alive), so spill space is reclaimed by the OS no matter
// how the search — or the process — ends; discard closes the descriptor and
// re-removes the name for platforms where unlink-while-open fails.
func newDiskSink(dir string) (*diskSink, error) {
	f, err := os.CreateTemp(dir, "kset-spill-*.lvl")
	if err != nil {
		return nil, fmt.Errorf("explore: creating spill file: %w", err)
	}
	os.Remove(f.Name())
	return &diskSink{f: f}, nil
}

func (d *diskSink) beginLevel() error {
	if err := d.flush(); err != nil {
		return err
	}
	d.offs = append(d.offs, d.size)
	d.lens = append(d.lens, 0)
	return nil
}

func (d *diskSink) append(rec levelRec) error {
	bits := recBits(rec)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	d.tail = append(d.tail, buf[:]...)
	d.lens[len(d.lens)-1]++
	if len(d.tail) >= 1<<20 {
		return d.flush()
	}
	return nil
}

func (d *diskSink) flush() error {
	if len(d.tail) == 0 {
		return nil
	}
	if _, err := d.f.WriteAt(d.tail, d.size); err != nil {
		return fmt.Errorf("explore: spill write: %w", err)
	}
	d.size += int64(len(d.tail))
	d.tail = d.tail[:0]
	return nil
}

func (d *diskSink) levels() int        { return len(d.offs) }
func (d *diskSink) levelLen(l int) int { return d.lens[l] }

func (d *diskSink) record(l, pos int) (levelRec, error) {
	off := d.offs[l] + 8*int64(pos)
	if off >= d.size {
		// Not yet flushed: serve from the tail buffer.
		t := off - d.size
		return recFromBits(leUint64(d.tail[t : t+8])), nil
	}
	if off < d.rbufOff || off+8 > d.rbufOff+int64(len(d.rbuf)) {
		n := int64(1 << 16)
		if off+n > d.size {
			n = d.size - off
		}
		if int64(cap(d.rbuf)) < n {
			d.rbuf = make([]byte, n)
		}
		d.rbuf = d.rbuf[:n]
		if _, err := d.f.ReadAt(d.rbuf, off); err != nil {
			d.rbuf = d.rbuf[:0]
			return levelRec{}, fmt.Errorf("explore: spill read: %w", err)
		}
		d.rbufOff = off
	}
	t := off - d.rbufOff
	return recFromBits(leUint64(d.rbuf[t : t+8])), nil
}

func (d *diskSink) retained() bool { return true }

func (d *diskSink) discard() {
	name := d.f.Name()
	d.f.Close()
	os.Remove(name)
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// boundedState is the complete state of a (possibly paused) bounded
// breadth-first search. Everything except the live configurations of
// frontier/next is either in the visited set or regenerable from the sink's
// level logs, which is exactly what makes the search checkpointable.
type boundedState struct {
	vis      *visitedSet
	sink     levelSink
	frontier []qent // current level's configurations
	next     []qent // next level's, possibly partial
	pos      int    // next unexpanded parent position within frontier
	level    int    // depth of frontier (root = 0)
	stats    Stats
	// kind is the goal kind of the running search, so the level-boundary
	// snapshots of snapshotLevel can name their checkpoint file.
	kind string
	// snapErr latches the first level-boundary snapshot failure: periodic
	// snapshots are best-effort (a full disk must not fail a search that
	// would succeed without checkpointing), but after one failure further
	// attempts are skipped rather than hammering the same broken disk.
	snapErr error
	// quiet suppresses OnProgress: the witness re-search replays levels the
	// original pass already reported, and re-emitting them would make the
	// caller's counters jump backward.
	quiet bool
}

// boundedHit locates a goal configuration in the level structure: frontier
// entry pos of level (level >= 1; the root is handled before the loop).
type boundedHit struct {
	level  int
	pos    int
	detail string
}

// pausedSearch is a truncated bounded search reduced to its regenerable
// core: the retained level logs plus the scalar cursor. Explorer.Snapshot
// serializes it; boundedStart revives it (in-session or via Restore).
type pausedSearch struct {
	kind    string
	digest  uint64
	sink    levelSink
	level   int
	pos     int
	visited int
}

// newSink picks the level sink for a fresh bounded search: disk for
// StoreSpill, memory when a checkpoint directory demands retention,
// counting-only otherwise.
func (e *Explorer) newSink() (levelSink, error) {
	if e.opts.Store == StoreSpill {
		return newDiskSink(e.opts.SpillDir)
	}
	if e.opts.Checkpoint != "" {
		return &memSink{}, nil
	}
	return &discardSink{}, nil
}

// boundedStart builds the starting state of a bounded search: a resumed one
// when a matching paused search is pending (in-session from a previous
// truncation, or auto-restored from the checkpoint directory), a fresh root
// state otherwise. fresh reports which, so the caller knows whether the
// root configuration still needs its goal check.
//
// The automatic resume path treats checkpoints as purely an optimization: a
// file that fails to decode, carries a foreign digest, or replays
// inconsistently (a partial write the checksum happened to miss, manual
// tampering, fingerprint-encoding drift) is quarantined aside and the search
// falls back to a fresh root — it must never wedge a search that would
// succeed from scratch. The explicit Restore API keeps its strict error
// contract for callers that need to know.
func (e *Explorer) boundedStart(kind string) (st *boundedState, fresh bool, err error) {
	// A pending paused search of a different goal kind (the engine runs
	// disagreement then blocking on one explorer) must not mask this kind's
	// on-disk checkpoint; its own state was already persisted at pause time
	// when a checkpoint directory is configured, so overwriting the pending
	// slot loses nothing resumable.
	fromDisk := false
	if (e.pending == nil || e.pending.kind != kind) && e.opts.Checkpoint != "" {
		path := e.checkpointFile(kind)
		if _, statErr := os.Stat(path); statErr == nil {
			if err := e.Restore(path); err != nil {
				quarantineFile(path)
			} else {
				fromDisk = true
			}
		}
	}
	if p := e.pending; p != nil && p.kind == kind {
		e.pending = nil
		st, err := e.regenerate(p)
		if err != nil {
			p.sink.discard()
			if fromDisk {
				// The file passed its checksum but its log is inconsistent
				// with this search (it replays an inapplicable action or
				// revisits a sealed key): quarantine and start over.
				quarantineFile(e.checkpointFile(kind))
				return e.boundedFresh()
			}
			// An in-session pending state was produced by this very process;
			// failing to regenerate it is a bug, not file corruption.
			return nil, false, err
		}
		return st, false, nil
	}
	return e.boundedFresh()
}

// boundedFresh builds the root state of a bounded search.
func (e *Explorer) boundedFresh() (*boundedState, bool, error) {
	start, err := e.initial()
	if err != nil {
		return nil, false, err
	}
	sink, err := e.newSink()
	if err != nil {
		return nil, false, err
	}
	vis := newVisitedSet()
	vis.Insert(e.key(start, 0))
	return &boundedState{
		vis:      vis,
		sink:     sink,
		frontier: []qent{{cfg: start}},
	}, true, nil
}

// regenerate rebuilds the live search state of a paused search from its
// level logs: replaying the generation records level by level reconstructs
// the frontier configurations, their crash budgets, and the visited-key set
// in one O(visited) pass — nothing else was ever persisted.
func (e *Explorer) regenerate(p *pausedSearch) (*boundedState, error) {
	start, err := e.initial()
	if err != nil {
		return nil, err
	}
	vis := newVisitedSet()
	vis.Insert(e.key(start, 0))
	frontier := []qent{{cfg: start}}
	st := &boundedState{
		vis:   vis,
		sink:  p.sink,
		pos:   p.pos,
		level: p.level,
		stats: Stats{Visited: p.visited},
	}
	for l := 0; l < p.sink.levels(); l++ {
		n := p.sink.levelLen(l)
		next := make([]qent, 0, n)
		for j := 0; j < n; j++ {
			rec, err := p.sink.record(l, j)
			if err != nil {
				return nil, err
			}
			if int(rec.parent) >= len(frontier) {
				return nil, fmt.Errorf("explore: corrupt checkpoint: level %d record %d parent %d out of range", l, j, rec.parent)
			}
			parent := frontier[rec.parent]
			cfg, ok := e.sc.apply(parent.cfg, rec.act)
			if !ok {
				return nil, fmt.Errorf("explore: corrupt checkpoint: level %d record %d action inapplicable", l, j)
			}
			crashes := parent.crashes
			if rec.act.Crash {
				crashes++
			}
			if !vis.Insert(e.key(cfg, int(crashes))) {
				return nil, fmt.Errorf("explore: corrupt checkpoint: level %d record %d revisits a sealed key", l, j)
			}
			next = append(next, qent{cfg: cfg, crashes: crashes})
		}
		if l == p.level {
			// The partial log of the level currently being expanded: the
			// frontier stays, the regenerated entries are the partial next
			// level.
			st.frontier = frontier
			st.next = next
			return st, nil
		}
		for i := range frontier {
			e.sc.release(frontier[i].cfg)
		}
		frontier = next
	}
	// The logs end exactly at a level boundary: the last regenerated level
	// is the frontier and no partial next level exists.
	st.frontier = frontier
	return st, nil
}

// searchBounded is the bounded-store twin of searchArena's BFS branch:
// identical verdicts, stats, truncation behaviour, and witnesses at every
// worker count, with only the visited-key set and two frontier levels
// retained.
func (e *Explorer) searchBounded(goal goalFunc, kind string) (*Witness, bool, error) {
	st, fresh, err := e.boundedStart(kind)
	if err != nil {
		return nil, false, err
	}
	st.kind = kind
	if fresh {
		if detail, ok := goal(&e.sc, st.frontier[0].cfg); ok {
			st.sink.discard()
			run, err := e.replayActions(nil)
			if err != nil {
				return nil, false, err
			}
			return &Witness{Kind: kind, Run: run, Detail: detail, Stats: st.stats}, true, nil
		}
	}
	hit, err := e.runBounded(st, goal)
	if err != nil {
		return nil, false, err
	}
	if hit == nil {
		if st.stats.Truncated {
			return e.pauseBounded(st, kind)
		}
		st.sink.discard()
		e.clearCheckpoint(kind)
		return &Witness{Kind: kind, Stats: st.stats}, false, nil
	}
	if !st.sink.retained() {
		// Bounded re-search: the traversal is deterministic, so re-running
		// it with a recording sink reproduces the identical hit — this time
		// with the generation records needed to read the path off.
		stats := st.stats
		st2, _, err := e.boundedFresh()
		if err != nil {
			return nil, false, err
		}
		st2.sink = &memSink{}
		st2.quiet = true
		hit2, err := e.runBounded(st2, goal)
		if err != nil {
			return nil, false, err
		}
		if hit2 == nil && st2.stats.Cancelled {
			// The witness re-search was cancelled before re-reaching the hit.
			// The original sink was discarded, so the witness is lost; report
			// the cancellation rather than a spurious divergence.
			return nil, false, fmt.Errorf("explore: search cancelled during witness re-search: %w", e.opts.Context.Err())
		}
		if hit2 == nil || *hit2 != *hit || st2.stats != stats {
			return nil, false, fmt.Errorf("explore: witness re-search diverged (hit %+v vs %+v); the search is not deterministic", hit2, hit)
		}
		st = st2
	}
	w, err := e.boundedWitness(st.sink, hit, kind, st.stats)
	st.sink.discard()
	if err != nil {
		return nil, false, err
	}
	e.clearCheckpoint(kind)
	return w, true, nil
}

// snapshotLevel persists the search's paused state at a sealed level
// boundary when a checkpoint directory is configured: the crash-safety
// complement of the pause-time checkpoint of pauseBounded. A process killed
// without warning (kill -9, OOM, power loss) between two boundaries resumes
// from the last sealed level, so the kill costs at most one level of
// re-exploration plus the O(visited) log replay — and since resume is
// bit-exact, the eventual verdict is identical to an uninterrupted run's.
// Snapshots are best-effort: a write failure (disk full) latches snapErr and
// disables further attempts, but never fails the search itself — the final
// truncation pause, whose checkpoint callers rely on, still reports its own
// errors through pauseBounded. The degradation is surfaced rather than
// swallowed: Stats.SnapshotFailed marks the completed search and
// Options.OnSnapshotError fires as it happens.
func (e *Explorer) snapshotLevel(st *boundedState) {
	if e.opts.Checkpoint == "" || st.kind == "" || st.snapErr != nil || !st.sink.retained() {
		return
	}
	p := &pausedSearch{
		kind:    st.kind,
		digest:  e.searchDigest(st.kind),
		sink:    st.sink,
		level:   st.level,
		pos:     st.pos,
		visited: st.stats.Visited,
	}
	if err := writeCheckpoint(e.checkpointFile(st.kind), p); err != nil {
		// Latch the failure: later snapshots are skipped (the condition
		// that broke the disk rarely heals mid-search, and retrying every
		// level would stall it), and the degradation is surfaced — in
		// Stats for the final verdict, through OnSnapshotError right now —
		// instead of waiting for the next kill -9 to reveal it.
		st.snapErr = err
		st.stats.SnapshotFailed = true
		if e.opts.OnSnapshotError != nil {
			e.opts.OnSnapshotError(err)
		}
	}
}

// runBounded drives the bounded BFS from st until a goal hit, exhaustion,
// or truncation (hit == nil, st.stats distinguishes the latter two). The
// serial path mirrors the sequential arena search parent by parent; more
// than one worker runs the chunked parallel frontier on expandLevel.
func (e *Explorer) runBounded(st *boundedState, goal goalFunc) (*boundedHit, error) {
	if e.searchWorkers() > 1 {
		return e.runBoundedParallel(st, goal)
	}
	for len(st.frontier) > 0 {
		if st.sink.levels() == st.level {
			if err := st.sink.beginLevel(); err != nil {
				return nil, err
			}
		}
		for st.pos < len(st.frontier) {
			if st.stats.Visited >= e.opts.MaxConfigs {
				st.stats.Truncated = true
				return nil, nil
			}
			if st.stats.Visited%cancelInterval == 0 && e.cancelled() {
				// Cancellation takes the truncation path: the caller pauses
				// (and checkpoints) the search exactly as if the budget ran
				// out here, so a killed search resumes mid-level.
				st.stats.Truncated = true
				st.stats.Cancelled = true
				return nil, nil
			}
			parent := st.frontier[st.pos]
			st.stats.Visited++
			for _, act := range e.actions(parent.cfg, int(parent.crashes)) {
				next, ok := e.apply(parent.cfg, act)
				if !ok {
					continue
				}
				crashes := parent.crashes
				if act.Crash {
					crashes++
				}
				if !st.vis.Insert(e.key(next, int(crashes))) {
					e.release(next)
					continue
				}
				if err := st.sink.append(levelRec{parent: int32(st.pos), act: act}); err != nil {
					return nil, err
				}
				if detail, ok := goal(&e.sc, next); ok {
					return &boundedHit{
						level:  st.level + 1,
						pos:    st.sink.levelLen(st.level) - 1,
						detail: detail,
					}, nil
				}
				st.next = append(st.next, qent{cfg: next, crashes: crashes})
			}
			e.release(parent.cfg)
			st.pos++
		}
		st.frontier, st.next = st.next, nil
		st.pos = 0
		st.level++
		e.snapshotLevel(st)
		if !st.quiet {
			e.progress(st.stats.Visited, st.level)
		}
	}
	return nil, nil
}

// runBoundedParallel is runBounded on the level-synchronous parallel
// frontier: expansion chunks run on expandLevel exactly as in
// searchParallel, and the sequential merge appends generation records
// instead of arena nodes. Chunk boundaries (a resumed search starts
// mid-level) cannot change results: candidate order keys are absolute
// frontier positions, and earlier chunks' children are sealed in the
// visited set before later chunks expand.
func (e *Explorer) runBoundedParallel(st *boundedState, goal goalFunc) (*boundedHit, error) {
	ws := e.workerCtxs(e.searchWorkers())
	ct := newClaimTable()
	var winners []candidate
	for len(st.frontier) > 0 {
		if st.sink.levels() == st.level {
			if err := st.sink.beginLevel(); err != nil {
				return nil, err
			}
		}
		for st.pos < len(st.frontier) {
			remaining := e.opts.MaxConfigs - st.stats.Visited
			if remaining <= 0 {
				st.stats.Truncated = true
				return nil, nil
			}
			if e.cancelled() {
				// As in runBounded: cancellation pauses via the truncation
				// path, at a chunk boundary here.
				st.stats.Truncated = true
				st.stats.Cancelled = true
				return nil, nil
			}
			limit := len(st.frontier) - st.pos
			if limit > remaining {
				limit = remaining
			}
			e.expandLevel(ws, st.frontier, st.pos, st.pos+limit, st.vis, ct, goal)
			winners = ct.take(winners)
			for _, w := range winners {
				if !st.vis.Insert(w.key) {
					// Unreachable: sealed keys were dropped during expansion
					// and within-level duplicates were resolved by the claim
					// table.
					ws[0].release(w.cfg)
					continue
				}
				if err := st.sink.append(levelRec{parent: int32(w.ord >> ordShift), act: w.act}); err != nil {
					return nil, err
				}
				if w.goalOK {
					// The sequential search finds this witness while
					// expanding the winner's parent, having counted every
					// parent up to and including it.
					st.stats.Visited += int(w.ord>>ordShift) + 1 - st.pos
					return &boundedHit{
						level:  st.level + 1,
						pos:    st.sink.levelLen(st.level) - 1,
						detail: w.detail,
					}, nil
				}
				st.next = append(st.next, qent{cfg: w.cfg, crashes: w.crashes})
			}
			st.stats.Visited += limit
			releaseLevel(ws, st.frontier, st.pos, st.pos+limit, nil)
			st.pos += limit
		}
		st.frontier, st.next = st.next, nil
		st.pos = 0
		st.level++
		e.snapshotLevel(st)
		if !st.quiet {
			e.progress(st.stats.Visited, st.level)
		}
	}
	return nil, nil
}

// pauseBounded finalizes a truncated bounded search: with a retained sink
// the paused state stays pending on the explorer (resumable in-session and
// snapshottable), and with a checkpoint directory configured it is
// persisted immediately; the frontier configurations — regenerable from the
// logs — are recycled either way.
func (e *Explorer) pauseBounded(st *boundedState, kind string) (*Witness, bool, error) {
	w := &Witness{Kind: kind, Stats: st.stats}
	if st.sink.retained() {
		p := &pausedSearch{
			kind:    kind,
			digest:  e.searchDigest(kind),
			sink:    st.sink,
			level:   st.level,
			pos:     st.pos,
			visited: st.stats.Visited,
		}
		if e.opts.Checkpoint != "" {
			path := e.checkpointFile(kind)
			if err := writeCheckpoint(path, p); err != nil {
				return nil, false, err
			}
			w.Checkpoint = path
		}
		// Replacing a previously pending paused search drops its level log;
		// release that log's resources rather than stranding them (its state
		// was persisted at its own pause when checkpointing is configured).
		if e.pending != nil {
			e.pending.sink.discard()
		}
		e.pending = p
	} else {
		st.sink.discard()
	}
	for i := st.pos; i < len(st.frontier); i++ {
		e.sc.release(st.frontier[i].cfg)
	}
	for i := range st.next {
		e.sc.release(st.next[i].cfg)
	}
	return w, false, nil
}

// boundedWitness reconstructs the action path to a hit from the retained
// level logs — a backward walk reading one record per level — and replays
// it into a recorded run.
func (e *Explorer) boundedWitness(sink levelSink, hit *boundedHit, kind string, stats Stats) (*Witness, error) {
	acts := make([]action, hit.level)
	pos := hit.pos
	for l := hit.level; l >= 1; l-- {
		rec, err := sink.record(l-1, pos)
		if err != nil {
			return nil, err
		}
		acts[l-1] = rec.act
		pos = int(rec.parent)
	}
	run, err := e.replayActions(acts)
	if err != nil {
		return nil, err
	}
	return &Witness{Kind: kind, Run: run, Detail: hit.detail, Stats: stats}, nil
}

// searchBoundedDFS is the bounded-store twin of the sequential DFS branch:
// the same traversal with revisit detection on the compact visited set and
// the parent chains replaced by immutable cons-list paths hanging off the
// stack, so memory is bounded by the visited keys plus the live stack —
// abandoned branches are garbage-collected. Checkpointing is a BFS feature:
// a DFS pause would have to persist the entire stack of full
// configurations, which is precisely the footprint the bounded store
// exists to avoid.
func (e *Explorer) searchBoundedDFS(goal goalFunc, kind string) (*Witness, bool, error) {
	if e.opts.Checkpoint != "" {
		return nil, false, fmt.Errorf("explore: checkpointing requires the breadth-first strategy")
	}
	start, err := e.initial()
	if err != nil {
		return nil, false, err
	}
	stats := Stats{}
	if detail, ok := goal(&e.sc, start); ok {
		run, err := e.replayActions(nil)
		if err != nil {
			return nil, false, err
		}
		return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, nil
	}
	type pathNode struct {
		parent *pathNode
		act    action
	}
	type dent struct {
		cfg     *sim.Configuration
		path    *pathNode
		crashes int32
	}
	vis := newVisitedSet()
	vis.Insert(e.key(start, 0))
	stack := []dent{{cfg: start}}
	for len(stack) > 0 {
		if stats.Visited >= e.opts.MaxConfigs {
			stats.Truncated = true
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		if stats.Visited%cancelInterval == 0 && e.cancelled() {
			// DFS has no pause path; a cancelled DFS just stops (truncated,
			// not resumable).
			stats.Truncated = true
			stats.Cancelled = true
			return &Witness{Kind: kind, Stats: stats}, false, nil
		}
		if stats.Visited > 0 && stats.Visited%progressInterval == 0 {
			e.progress(stats.Visited, -1)
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stats.Visited++
		for _, act := range e.actions(cur.cfg, int(cur.crashes)) {
			next, ok := e.apply(cur.cfg, act)
			if !ok {
				continue
			}
			crashes := cur.crashes
			if act.Crash {
				crashes++
			}
			if !vis.Insert(e.key(next, int(crashes))) {
				e.release(next)
				continue
			}
			node := &pathNode{parent: cur.path, act: act}
			if detail, ok := goal(&e.sc, next); ok {
				var acts []action
				for n := node; n != nil; n = n.parent {
					acts = append(acts, n.act)
				}
				for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
					acts[i], acts[j] = acts[j], acts[i]
				}
				run, err := e.replayActions(acts)
				if err != nil {
					return nil, false, err
				}
				return &Witness{Kind: kind, Run: run, Detail: detail, Stats: stats}, true, nil
			}
			stack = append(stack, dent{cfg: next, path: node, crashes: crashes})
		}
		e.release(cur.cfg)
	}
	return &Witness{Kind: kind, Stats: stats}, false, nil
}
