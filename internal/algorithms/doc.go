// Package algorithms implements the agreement protocols the paper uses,
// proposes, or vets:
//
//   - FLPKSet: the generalized FLP two-stage protocol of Section VI, which
//     solves k-set agreement with up to f initially dead processes whenever
//     kn > (k+1)f (Theorem 8). This is the paper's own constructive
//     contribution.
//   - MinWait: the classic f-resilient asynchronous protocol (broadcast,
//     wait for n-f values, decide the minimum), which solves k-set agreement
//     for f < k and is the baseline the impossibility side is compared
//     against.
//   - SigmaOmega: ballot-based consensus from the failure-detector pair
//     (Sigma, Omega) — the k = 1 endpoint of Corollary 13.
//   - The candidates subpackage: deliberately flawed k-set candidates used
//     to demonstrate Theorem 1 as an algorithm-vetting tool (Section III's
//     remark: "if (dec-D) can be satisfied in some runs ... the algorithm is
//     very likely flawed").
//
// All state machines are pure: Step returns a fresh state. Payload and state
// Key methods produce deterministic encodings used for indistinguishability
// checking and bounded exploration.
package algorithms
