package algorithms

import (
	"testing"

	"kset/internal/sched"
	"kset/internal/sim"
)

func distinctCount(r *sim.Run) int { return len(r.DistinctDecisions()) }

func inputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i) // all distinct, as Theorem 1 assumes
	}
	return out
}

func TestMinWaitFailureFreeDecidesMinimum(t *testing.T) {
	n := 5
	run, err := sim.Execute(MinWait{F: 2}, inputs(n), sched.NewFair(sched.CrashPlan{}), sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	for p, v := range run.Decisions() {
		// Each decision is a min over >= n-f values, so it is at most the
		// (f+1)-th smallest input; with a fair prompt schedule every process
		// sees all values and decides the global minimum.
		if v != 100 {
			t.Errorf("process %d decided %d, want 100", p+1, v)
		}
	}
}

func TestMinWaitInitialCrashesWithinBudget(t *testing.T) {
	// n=6, f=2: crash 2 initially; correct processes must decide and the
	// distinct-decision count must stay <= f+1 <= k for any k > f.
	n := 6
	cp := sched.CrashPlan{InitialDead: []sim.ProcessID{3, 5}}
	run, err := sim.Execute(MinWait{F: 2}, inputs(n), sched.NewFair(cp), sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := distinctCount(run); got > 3 {
		t.Fatalf("distinct decisions = %d, want <= f+1 = 3", got)
	}
	for _, p := range []sim.ProcessID{3, 5} {
		if _, decided := run.Final.Decision(p); decided {
			t.Errorf("initially dead process %d decided", p)
		}
	}
}

func TestMinWaitAdversarialDelayBound(t *testing.T) {
	// Adversary: split into two halves; deliver only intra-group messages
	// until the watched group decides. With f=3 < n-f the isolated group of
	// size 4 >= n-f=4 can decide alone; distinct decisions stay <= f+1.
	n := 7
	f := 3
	g1 := []sim.ProcessID{1, 2, 3, 4}
	g2 := []sim.ProcessID{5, 6, 7}
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash: cp,
		Gate:  sched.PartitionUntilDecidedGate([][]sim.ProcessID{g1, g2}, g1),
		Stop:  sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(MinWait{F: f}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := distinctCount(run); got > f+1 {
		t.Fatalf("distinct decisions = %d, want <= %d", got, f+1)
	}
}

func TestMinWaitBlocksWhenTooManyCrash(t *testing.T) {
	// f=1 tolerated but 3 initially dead: waiting for n-f=4 of 5 values can
	// never complete with only 2 alive.
	n := 5
	cp := sched.CrashPlan{InitialDead: []sim.ProcessID{1, 2, 3}}
	s := sched.NewFair(cp)
	run, err := sim.Execute(MinWait{F: 1}, inputs(n), s, sim.Options{MaxSteps: 2000})
	if err == nil {
		// The scheduler never stops on its own since correct processes
		// cannot decide; reaching here means the run ended unexpectedly.
		if len(run.Blocked) == 0 {
			t.Fatal("expected blocked processes")
		}
		return
	}
	if len(run.Blocked) != 2 {
		t.Fatalf("blocked = %v, want the two live processes", run.Blocked)
	}
}

func TestMinWaitStateKeyDeterministic(t *testing.T) {
	s1 := MinWait{F: 1}.Init(3, 1, 7)
	s2 := MinWait{F: 1}.Init(3, 1, 7)
	if s1.Key() != s2.Key() {
		t.Fatal("equal states have different keys")
	}
	next1, _ := s1.Step(sim.Input{})
	if next1.Key() == s1.Key() {
		t.Fatal("step that broadcasts should change the state key")
	}
}

func TestMinWaitPurity(t *testing.T) {
	s := MinWait{F: 1}.Init(3, 1, 7)
	before := s.Key()
	_, _ = s.Step(sim.Input{})
	if s.Key() != before {
		t.Fatal("Step mutated the receiver")
	}
}

func TestValuePayloadKey(t *testing.T) {
	a := ValuePayload{From: 1, Value: 5}
	b := ValuePayload{From: 1, Value: 5}
	c := ValuePayload{From: 2, Value: 5}
	if a.Key() != b.Key() {
		t.Fatal("equal payloads differ")
	}
	if a.Key() == c.Key() {
		t.Fatal("distinct payloads collide")
	}
}
