package algorithms

import (
	"fmt"

	"kset/internal/sim"
)

// OriginPayload carries a proposal tagged with its original proposer, for
// SingletonQuorum's gossip.
type OriginPayload struct {
	From   sim.ProcessID // forwarder
	Origin sim.ProcessID // original proposer
	Value  sim.Value     // the origin's proposal
}

// Key implements sim.Payload.
func (p OriginPayload) Key() string {
	return fmt.Sprintf("OR(%d,%d,%d)", p.From, p.Origin, p.Value)
}

// SingletonQuorum is an (n-1)-set agreement protocol from Sigma_{n-1},
// included as the library's construction for the k = n-1 endpoint of
// Corollary 13 (the paper cites Bonnet-Raynal for it; this is an
// independent protocol with an elementary safety proof and a documented
// liveness condition).
//
// Rules (process p_i with proposal v_i):
//
//	(a) adopt: upon learning any origin-tagged pair (j, v_j) with j < i,
//	    decide v_j (and forward the pair, helping others);
//	(b) self: upon querying Sigma_{n-1} and receiving the *singleton*
//	    quorum {i}, decide own v_i.
//
// Safety ((n-1)-agreement, unconditional): suppose all n processes decide
// pairwise distinct values. Decisions have the form d_i = v_{o(i)} with
// o(i) < i for (a)-deciders and o(i) = i for (b)-deciders; distinctness
// makes o injective, and o(i) <= i forces o to be the identity, so every
// process (b)-decided — giving n singleton quorums {1}, ..., {n} at the n
// decision times. They are pairwise disjoint, contradicting the
// Intersection property of Sigma_{n-1} (Definition 4 with k+1 = n: some
// two of any n quorums must intersect). Hence at most n-1 distinct values.
// Validity is immediate (every decision is some proposal).
//
// Liveness (documented condition, not unconditional): p_i decides once a
// smaller-origin pair reaches it or its quorum output becomes exactly
// {p_i}. The smallest-id correct process can only take the second route,
// so Termination needs the environment's Sigma histories to eventually
// output the singleton at it — admissible behaviour (the singleton {p}
// intersects every other quorum that trusts p) but not forced by
// Definition 4. This is precisely the gap the paper's Discussion points
// at: Sigma_k alone cannot force consensus-grade convergence inside a
// partition; whatever is added to it must. The tests exercise both an
// environment providing the singleton (full termination) and the plain
// alive-set environment (everyone but the minimum-id process decides).
type SingletonQuorum struct{}

// Name implements sim.Algorithm.
func (SingletonQuorum) Name() string { return "singletonquorum" }

// Init implements sim.Algorithm.
func (SingletonQuorum) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &sqState{n: n, id: id, input: input, decision: sim.NoValue}
}

type sqState struct {
	n        int
	id       sim.ProcessID
	input    sim.Value
	sent     bool
	helped   bool
	decision sim.Value
	adopted  OriginPayload // the pair that triggered rule (a), if any
}

// Step implements sim.State.
func (s *sqState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := *s
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = append(sends, sim.Broadcast(next.n, OriginPayload{
			From: next.id, Origin: next.id, Value: next.input,
		})...)
	}
	for _, m := range in.Delivered {
		op, ok := m.Payload.(OriginPayload)
		if !ok || op.Origin >= next.id {
			continue
		}
		if next.decision == sim.NoValue {
			next.decision = op.Value
			next.adopted = op
		}
		// Forward the winning pair once, helping processes that have not
		// heard a small origin yet (decided processes may keep helping
		// per Definition 2's "until decision" semantics).
		if !next.helped {
			next.helped = true
			sends = append(sends, sim.Broadcast(next.n, OriginPayload{
				From: next.id, Origin: op.Origin, Value: op.Value,
			})...)
		}
	}
	if next.decision == sim.NoValue {
		if q, ok := quorumFromFD(in.FD); ok && len(q.IDs) == 1 && q.IDs[0] == next.id {
			next.decision = next.input
		}
	}
	return &next, sends
}

// Decided implements sim.State.
func (s *sqState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// Key implements sim.State.
func (s *sqState) Key() string {
	return fmt.Sprintf("sq{id=%d in=%d sent=%t helped=%t dec=%d adopt=%d/%d}",
		s.id, s.input, s.sent, s.helped, s.decision, s.adopted.Origin, s.adopted.Value)
}
