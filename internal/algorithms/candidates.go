package algorithms

import (
	"fmt"

	"kset/internal/fd"
	"kset/internal/sim"
)

// This file contains deliberately flawed k-set agreement candidates. The
// paper remarks (Section III) that Theorem 1 doubles as a vetting tool:
// "if (dec-D) can be satisfied in some runs, i.e., (A) holds, the algorithm
// is very likely flawed, as the remaining conditions are typically easy to
// construct in sufficiently asynchronous systems." The candidates below are
// plausible-looking protocols whose partitioned runs the reduction engine
// finds mechanically; the experiments feed them to the Theorem 1 pipeline
// and report the witnesses.

// DecideOwn is the trivially wrong candidate: every process decides its own
// proposal immediately. It satisfies Validity and Termination but allows n
// distinct decisions, so it solves k-set agreement for no k < n. The
// reduction engine finds (dec-D) runs for it instantly.
type DecideOwn struct{}

// Name implements sim.Algorithm.
func (DecideOwn) Name() string { return "decideown" }

// Init implements sim.Algorithm.
func (DecideOwn) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return decideOwnState{input: input}
}

type decideOwnState struct {
	input   sim.Value
	stepped bool
}

// Step implements sim.State.
func (s decideOwnState) Step(in sim.Input) (sim.State, []sim.Send) {
	return decideOwnState{input: s.input, stepped: true}, nil
}

// Decided implements sim.State.
func (s decideOwnState) Decided() (sim.Value, bool) { return s.input, s.stepped }

// Key implements sim.State.
func (s decideOwnState) Key() string { return fmt.Sprintf("own{%d,%t}", s.input, s.stepped) }

// SendsDone implements sim.SendQuiescent: DecideOwn never sends.
func (s decideOwnState) SendsDone() bool { return true }

// Hash64 implements sim.Hasher64.
func (s decideOwnState) Hash64() uint64 {
	return sim.HashUint(sim.HashUint(sim.HashSeed(), uint64(s.input)), boolBit(s.stepped))
}

// SymHash64 implements sim.SymHasher64 (the state embeds no process ids).
func (s decideOwnState) SymHash64(func(sim.ProcessID) uint64) uint64 { return s.Hash64() }

// QuorumMin is the natural — and flawed — attempt at k-set agreement from
// Sigma_k alone: broadcast your value, remember everything received, and
// decide the minimum value you hold as soon as every member of the quorum
// currently output by Sigma_k is among the processes you heard from.
//
// It looks plausible because quorum intersection seems to force shared
// values between deciders. It is wrong: in a run where every process's
// quorums contain only processes holding large values (e.g. everyone trusts
// only p_n, whose proposal is the maximum), every process decides its own
// value — n distinct decisions. This is precisely the kind of candidate
// Section III's remark targets, and the partition adversary exhibits the
// violating runs for any k < n.
type QuorumMin struct{}

// Name implements sim.Algorithm.
func (QuorumMin) Name() string { return "quorummin" }

// Init implements sim.Algorithm.
func (QuorumMin) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &quorumMinState{
		n: n, id: id, input: input,
		vals:     map[sim.ProcessID]sim.Value{id: input},
		decision: sim.NoValue,
	}
}

type quorumMinState struct {
	n        int
	id       sim.ProcessID
	input    sim.Value
	sent     bool
	vals     map[sim.ProcessID]sim.Value
	decision sim.Value
}

func (s *quorumMinState) clone() *quorumMinState {
	cp := *s
	cp.vals = make(map[sim.ProcessID]sim.Value, len(s.vals))
	for p, v := range s.vals {
		cp.vals[p] = v
	}
	return &cp
}

// Step implements sim.State.
func (s *quorumMinState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := s.clone()
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = sim.Broadcast(next.n, ValuePayload{From: next.id, Value: next.input})
	}
	for _, m := range in.Delivered {
		if vp, ok := m.Payload.(ValuePayload); ok {
			next.vals[vp.From] = vp.Value
		}
	}
	if next.decision == sim.NoValue {
		if q, ok := quorumFromFD(in.FD); ok && len(q.IDs) > 0 {
			covered := true
			for _, id := range q.IDs {
				if _, have := next.vals[id]; !have {
					covered = false
					break
				}
			}
			if covered {
				minV := next.input
				for _, v := range next.vals {
					if v < minV {
						minV = v
					}
				}
				next.decision = minV
			}
		}
	}
	return next, sends
}

// Decided implements sim.State.
func (s *quorumMinState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// SendsDone implements sim.SendQuiescent: QuorumMin broadcasts exactly once,
// on its first step.
func (s *quorumMinState) SendsDone() bool { return s.sent }

// Key implements sim.State.
func (s *quorumMinState) Key() string {
	return fmt.Sprintf("qm{id=%d in=%d sent=%t dec=%d vals=%s}",
		s.id, s.input, s.sent, s.decision, encodeVals(s.vals))
}

// Hash64 implements sim.Hasher64.
func (s *quorumMinState) Hash64() uint64 {
	h := sim.HashString(sim.HashSeed(), "qm")
	h = sim.HashUint(h, uint64(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	h = sim.HashUint(h, hashVals(s.vals))
	return h
}

// SymHash64 implements sim.SymHasher64. Symmetry searches over QuorumMin
// additionally require an oracle that is itself symmetric under the same
// renamings (see explore.Options.Symmetry).
func (s *quorumMinState) SymHash64(relabel func(sim.ProcessID) uint64) uint64 {
	h := sim.HashString(sim.HashSeed(), "qm")
	h = sim.HashUint(h, relabel(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	h = sim.HashUint(h, symHashVals(s.vals, relabel))
	return h
}

func quorumFromFD(v sim.FDValue) (fd.TrustSet, bool) {
	switch x := v.(type) {
	case fd.TrustSet:
		return x, true
	case fd.Combined:
		return x.Quorum, true
	default:
		return fd.TrustSet{}, false
	}
}

// FirstHeard is a flawed "fast" candidate: broadcast your value and decide
// the minimum of your own value and the first value received. It decides in
// one message delay and in fact guarantees at most n-1 distinct decisions
// when every process decides via reception (the holder of the maximum input
// always adopts a smaller value). It is nevertheless not an f-resilient
// k-set algorithm for k < n-1: partitioned pairs each produce their own
// minimum, so k partitions force k distinct values while the rest of the
// system is still undecided — the exact shape of (dec-D).
type FirstHeard struct{}

// Name implements sim.Algorithm.
func (FirstHeard) Name() string { return "firstheard" }

// Init implements sim.Algorithm.
func (FirstHeard) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &firstHeardState{n: n, id: id, input: input, decision: sim.NoValue}
}

type firstHeardState struct {
	n        int
	id       sim.ProcessID
	input    sim.Value
	sent     bool
	decision sim.Value
}

// Step implements sim.State.
func (s *firstHeardState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := *s
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = sim.Broadcast(next.n, ValuePayload{From: next.id, Value: next.input})
	}
	for _, m := range in.Delivered {
		vp, ok := m.Payload.(ValuePayload)
		if !ok || vp.From == next.id {
			continue
		}
		if next.decision == sim.NoValue {
			if vp.Value < next.input {
				next.decision = vp.Value
			} else {
				next.decision = next.input
			}
		}
	}
	return &next, sends
}

// Decided implements sim.State.
func (s *firstHeardState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// SendsDone implements sim.SendQuiescent: FirstHeard broadcasts exactly
// once, on its first step.
func (s *firstHeardState) SendsDone() bool { return s.sent }

// Key implements sim.State.
func (s *firstHeardState) Key() string {
	return fmt.Sprintf("fh{id=%d in=%d sent=%t dec=%d}", s.id, s.input, s.sent, s.decision)
}

// Hash64 implements sim.Hasher64.
func (s *firstHeardState) Hash64() uint64 {
	h := sim.HashString(sim.HashSeed(), "fh")
	h = sim.HashUint(h, uint64(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	return h
}

// SymHash64 implements sim.SymHasher64.
func (s *firstHeardState) SymHash64(relabel func(sim.ProcessID) uint64) uint64 {
	h := sim.HashString(sim.HashSeed(), "fh")
	h = sim.HashUint(h, relabel(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	return h
}
