package algorithms

import (
	"fmt"

	"kset/internal/sim"
)

// FloodPayload carries a round-tagged estimate for RoundFlood.
type FloodPayload struct {
	From  sim.ProcessID
	Round int
	Est   sim.Value
}

// Key implements sim.Payload.
func (p FloodPayload) Key() string { return fmt.Sprintf("FL(%d,%d,%d)", p.From, p.Round, p.Est) }

// RoundFlood is the classic synchronous FloodSet consensus: processes
// proceed in rounds, each round broadcasting their current minimum
// estimate and adopting the minimum received; after F+1 rounds they decide.
//
// The algorithm is correct in the fully synchronous model (lock-step
// processes AND prompt reliable communication): with at most F crashes,
// some round among the first F+1 is crash-free, after which all estimates
// coincide. It counts its own steps as rounds, which is sound exactly when
// the scheduler is the Lockstep one with an open gate.
//
// Run under asynchronous communication — Theorem 2's setting — the round
// counter decouples from real message arrivals and the protocol is flawed:
// the partition adversary lets each group "complete" its F+1 rounds in
// isolation, and the Theorem 1 engine constructs the violation run. The
// pair (correct synchronously, refuted asynchronously) is the sharpest
// illustration of what Theorem 2's "communication is asynchronous"
// hypothesis does.
type RoundFlood struct {
	// F is the crash tolerance; decision happens after F+1 rounds.
	F int
}

// Name implements sim.Algorithm.
func (a RoundFlood) Name() string { return fmt.Sprintf("roundflood(f=%d)", a.F) }

// Init implements sim.Algorithm.
func (a RoundFlood) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return roundFloodState{n: n, f: a.F, id: id, est: input, round: 0}
}

type roundFloodState struct {
	n, f  int
	id    sim.ProcessID
	est   sim.Value
	round int // completed own rounds
}

// Step implements sim.State.
func (s roundFloodState) Step(in sim.Input) (sim.State, []sim.Send) {
	if _, done := s.Decided(); done {
		// Decided states are quiescent: late deliveries are absorbed
		// without changing the state, so configuration spaces stay finite.
		return s, nil
	}
	next := s
	for _, m := range in.Delivered {
		if fp, ok := m.Payload.(FloodPayload); ok && fp.Est < next.est {
			next.est = fp.Est
		}
	}
	var sends []sim.Send
	if next.round <= next.f {
		sends = sim.Broadcast(next.n, FloodPayload{From: next.id, Round: next.round, Est: next.est})
	}
	next.round++
	return next, sends
}

// Decided implements sim.State.
func (s roundFloodState) Decided() (sim.Value, bool) {
	if s.round > s.f+1 {
		return s.est, true
	}
	return sim.NoValue, false
}

// Key implements sim.State.
func (s roundFloodState) Key() string {
	return fmt.Sprintf("rf{%d,%d,%d}", s.id, s.est, s.round)
}
