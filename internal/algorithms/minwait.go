package algorithms

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/sim"
)

// ValuePayload carries a process's proposal value; it is the single message
// type of MinWait and of several candidate algorithms.
type ValuePayload struct {
	From  sim.ProcessID
	Value sim.Value
}

// Key implements sim.Payload.
func (p ValuePayload) Key() string { return fmt.Sprintf("VAL(%d,%d)", p.From, p.Value) }

// Hash64 implements sim.Hasher64.
func (p ValuePayload) Hash64() uint64 {
	return sim.HashUint(sim.HashUint(sim.HashSeed(), uint64(p.From)), uint64(p.Value))
}

// SymHash64 implements sim.SymHasher64: Hash64 with the sender id folded
// through the relabeling.
func (p ValuePayload) SymHash64(relabel func(sim.ProcessID) uint64) uint64 {
	return sim.HashUint(sim.HashUint(sim.HashSeed(), relabel(p.From)), uint64(p.Value))
}

// MinWait is the classic f-resilient asynchronous k-set agreement protocol:
// every process broadcasts its proposal, waits until it holds values from
// n-f processes (its own included), and decides the minimum value it holds.
//
// With at most f crash failures the wait terminates, and the decided minima
// can take at most f+1 distinct values (each decided value is among the f+1
// smallest proposals), so MinWait solves k-set agreement whenever f < k.
// It is the standard possibility counterpoint to the paper's impossibility
// results: Theorem 2's bound k <= (n-1)/(n-f) never overlaps f <= k-1.
type MinWait struct {
	// F is the number of crash failures tolerated.
	F int
}

// Name implements sim.Algorithm.
func (a MinWait) Name() string { return fmt.Sprintf("minwait(f=%d)", a.F) }

// Init implements sim.Algorithm.
func (a MinWait) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &minWaitState{
		n: n, f: a.F, id: id, input: input,
		vals:     map[sim.ProcessID]sim.Value{id: input},
		decision: sim.NoValue,
	}
}

type minWaitState struct {
	n, f     int
	id       sim.ProcessID
	input    sim.Value
	sent     bool
	vals     map[sim.ProcessID]sim.Value
	decision sim.Value
}

func (s *minWaitState) clone() *minWaitState {
	cp := *s
	cp.vals = make(map[sim.ProcessID]sim.Value, len(s.vals))
	for p, v := range s.vals {
		cp.vals[p] = v
	}
	return &cp
}

// Step implements sim.State.
func (s *minWaitState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := s.clone()
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = sim.Broadcast(next.n, ValuePayload{From: next.id, Value: next.input})
	}
	for _, m := range in.Delivered {
		if vp, ok := m.Payload.(ValuePayload); ok {
			next.vals[vp.From] = vp.Value
		}
	}
	if next.decision == sim.NoValue && len(next.vals) >= next.n-next.f {
		minV := sim.Value(0)
		first := true
		for _, v := range next.vals {
			if first || v < minV {
				minV = v
				first = false
			}
		}
		next.decision = minV
	}
	return next, sends
}

// Decided implements sim.State.
func (s *minWaitState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// SendsDone implements sim.SendQuiescent: MinWait broadcasts exactly once,
// on its first step, so after the sent flag is set no successor state ever
// sends again (Step only emits when !sent, and sent is never cleared).
func (s *minWaitState) SendsDone() bool { return s.sent }

// Key implements sim.State.
func (s *minWaitState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mw{id=%d in=%d sent=%t dec=%d vals=", s.id, s.input, s.sent, s.decision)
	b.WriteString(encodeVals(s.vals))
	b.WriteString("}")
	return b.String()
}

// Hash64 implements sim.Hasher64: the same fields Key encodes, with the
// value map folded as a commutative sum so no sorting is needed.
func (s *minWaitState) Hash64() uint64 {
	h := sim.HashString(sim.HashSeed(), "mw")
	h = sim.HashUint(h, uint64(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	h = sim.HashUint(h, hashVals(s.vals))
	return h
}

// SymHash64 implements sim.SymHasher64: the same fields as Hash64 with
// every embedded process id folded through the relabeling, so renaming
// interchangeable processes leaves the hash unchanged.
func (s *minWaitState) SymHash64(relabel func(sim.ProcessID) uint64) uint64 {
	h := sim.HashString(sim.HashSeed(), "mw")
	h = sim.HashUint(h, relabel(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, boolBit(s.sent))
	h = sim.HashUint(h, uint64(s.decision))
	h = sim.HashUint(h, symHashVals(s.vals, relabel))
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// hashVals folds a proposal map into one order-independent term.
func hashVals(vals map[sim.ProcessID]sim.Value) uint64 {
	var sum uint64
	for p, v := range vals {
		sum += sim.HashMix(sim.HashUint(sim.HashUint(sim.HashSeed(), uint64(p)), uint64(v)))
	}
	return sum
}

// symHashVals is hashVals with the map keys folded through the relabeling.
func symHashVals(vals map[sim.ProcessID]sim.Value, relabel func(sim.ProcessID) uint64) uint64 {
	var sum uint64
	for p, v := range vals {
		sum += sim.HashMix(sim.HashUint(sim.HashUint(sim.HashSeed(), relabel(p)), uint64(v)))
	}
	return sum
}

func encodeVals(vals map[sim.ProcessID]sim.Value) string {
	ids := make([]int, 0, len(vals))
	for p := range vals {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = fmt.Sprintf("%d:%d", p, vals[sim.ProcessID(p)])
	}
	return "[" + strings.Join(parts, " ") + "]"
}
