package algorithms

import (
	"testing"

	"kset/internal/sched"
	"kset/internal/sim"
)

func lockstepRun(t *testing.T, alg sim.Algorithm, n int, cp sched.CrashPlan) *sim.Run {
	t.Helper()
	ls := &sched.Lockstep{Crash: cp, Stop: sched.AllCorrectDecided(cp)}
	run, err := sim.Execute(alg, inputs(n), ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return run
}

func TestRoundFloodSynchronousConsensusFailureFree(t *testing.T) {
	run := lockstepRun(t, RoundFlood{F: 2}, 5, sched.CrashPlan{})
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := len(run.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1 (synchronous consensus)", got)
	}
	if run.DistinctDecisions()[0] != 100 {
		t.Fatalf("decision = %v, want the global minimum 100", run.DistinctDecisions())
	}
}

func TestRoundFloodSynchronousConsensusWithCrashes(t *testing.T) {
	// The minimum holder crashes mid-protocol, omitting sends to half the
	// system; FloodSet with F=2 still reaches agreement after F+1 rounds.
	cp := sched.CrashPlan{
		CrashAtTime: map[sim.ProcessID]int{1: 5},
		OmitTo:      map[sim.ProcessID][]sim.ProcessID{1: {4, 5}},
	}
	run := lockstepRun(t, RoundFlood{F: 2}, 5, cp)
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := len(run.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1 (uniform agreement with crash)", got)
	}
}

func TestRoundFloodInitialCrashes(t *testing.T) {
	cp := sched.CrashPlan{InitialDead: []sim.ProcessID{1, 2}}
	run := lockstepRun(t, RoundFlood{F: 2}, 5, cp)
	if got := len(run.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1", got)
	}
	// The dead minimum holders never spoke: survivors agree on 102.
	if run.DistinctDecisions()[0] != 102 {
		t.Fatalf("decision = %v, want 102", run.DistinctDecisions())
	}
}

// TestRoundFloodBrokenUnderAsynchrony: the same protocol under the
// asynchronous partition adversary splits — rounds decouple from message
// arrivals, each isolated group completes its F+1 rounds alone. This is the
// Theorem 2 hypothesis at work: process synchrony without communication
// synchrony does not help.
func TestRoundFloodBrokenUnderAsynchrony(t *testing.T) {
	n := 6
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash: cp,
		Gate:  sched.IntraGroupGate(groups),
		Stop:  sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(RoundFlood{F: 1}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := len(run.DistinctDecisions()); got != 3 {
		t.Fatalf("distinct = %d, want 3 (one per isolated pair)", got)
	}
}

func TestRoundFloodStatePurity(t *testing.T) {
	s := RoundFlood{F: 1}.Init(3, 1, 7)
	before := s.Key()
	_, _ = s.Step(sim.Input{})
	if s.Key() != before {
		t.Fatal("Step mutated the receiver")
	}
}

func TestFloodPayloadKey(t *testing.T) {
	a := FloodPayload{From: 1, Round: 2, Est: 3}
	b := FloodPayload{From: 1, Round: 2, Est: 4}
	if a.Key() == b.Key() {
		t.Fatal("distinct payloads collide")
	}
}
