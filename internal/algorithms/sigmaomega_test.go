package algorithms

import (
	"testing"

	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

func sigmaOmegaOracle(pattern *fd.Pattern, gst int) sched.Oracle {
	return fd.CombinedOracle{
		Sigma: fd.SigmaOracle{K: 1, Pattern: pattern},
		Omega: fd.OmegaOracle{K: 1, Pattern: pattern, GST: gst},
	}
}

func runSigmaOmega(t *testing.T, n int, cp sched.CrashPlan, pattern *fd.Pattern, gst int) *sim.Run {
	t.Helper()
	s := &sched.Fair{
		Crash:  cp,
		Oracle: sigmaOmegaOracle(pattern, gst),
		Stop:   sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(SigmaOmega{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	return run
}

func TestSigmaOmegaFailureFreeConsensus(t *testing.T) {
	n := 4
	run := runSigmaOmega(t, n, sched.CrashPlan{}, fd.NewPattern(n), 0)
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct decisions = %d, want 1", got)
	}
	// Validity: the decided value is some process's input.
	dec := run.DistinctDecisions()[0]
	valid := false
	for _, v := range inputs(n) {
		if v == dec {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decided unproposed value %d", dec)
	}
}

func TestSigmaOmegaToleratesMinorityOfAnySize(t *testing.T) {
	// (Sigma, Omega) consensus is (n-1)-resilient: crash all but one.
	n := 4
	dead := []sim.ProcessID{2, 3, 4}
	cp := sched.CrashPlan{InitialDead: dead}
	pattern := fd.NewPattern(n).WithInitiallyDead(dead...)
	run := runSigmaOmega(t, n, cp, pattern, 0)
	v, decided := run.Final.Decision(1)
	if !decided {
		t.Fatal("lone survivor did not decide")
	}
	if v != inputs(n)[0] {
		t.Fatalf("lone survivor decided %d, want its own input %d", v, inputs(n)[0])
	}
}

func TestSigmaOmegaLateCrashUniformAgreement(t *testing.T) {
	// p1 crashes mid-run at time 6; uniform agreement must bind any
	// decision it made before crashing.
	n := 5
	cp := sched.CrashPlan{CrashAtTime: map[sim.ProcessID]int{1: 6}}
	pattern := fd.NewPattern(n).WithCrash(1, 6)
	run := runSigmaOmega(t, n, cp, pattern, 8)
	if got := distinctCount(run); got > 1 {
		t.Fatalf("distinct decisions = %d, want <= 1 (uniform)", got)
	}
}

func TestSigmaOmegaLateGSTStillDecides(t *testing.T) {
	// Rotating leaders before GST = 40 may duel; after stabilization the
	// unique leader must drive a decision.
	n := 4
	run := runSigmaOmega(t, n, sched.CrashPlan{}, fd.NewPattern(n), 40)
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct decisions = %d, want 1", got)
	}
}

func TestSigmaOmegaDelayedMessages(t *testing.T) {
	// Withhold every message until global time 25: no decision can happen
	// before communication resumes, and consensus must still be reached.
	n := 4
	cp := sched.CrashPlan{}
	pattern := fd.NewPattern(n)
	s := &sched.Fair{
		Crash:  cp,
		Gate:   sched.DelayUntilTimeGate(25),
		Oracle: sigmaOmegaOracle(pattern, 0),
		Stop:   sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(SigmaOmega{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct decisions = %d, want 1", got)
	}
	for _, ev := range run.Events {
		if ev.Decided && ev.Time < 25 {
			t.Fatalf("decision at time %d despite total message delay", ev.Time)
		}
	}
}

func TestSigmaOmegaHistoriesAreAdmissible(t *testing.T) {
	// The oracle-produced history must satisfy Definitions 4 and 5 with
	// k = 1 — cross-validating oracles against checkers.
	n := 5
	cp := sched.CrashPlan{CrashAtTime: map[sim.ProcessID]int{5: 4}}
	pattern := fd.NewPattern(n).WithCrash(5, 4)
	run := runSigmaOmega(t, n, cp, pattern, 10)
	h := fd.HistoryFromRun(run)
	if err := fd.CheckSigmaIntersection(h, 1); err != nil {
		t.Errorf("Sigma intersection: %v", err)
	}
	if err := fd.CheckSigmaLiveness(h, pattern); err != nil {
		t.Errorf("Sigma liveness: %v", err)
	}
	if err := fd.CheckOmegaValidity(h, 1); err != nil {
		t.Errorf("Omega validity: %v", err)
	}
	if err := fd.CheckOmegaEventualLeadership(h, pattern); err != nil {
		t.Errorf("Omega leadership: %v", err)
	}
}

func TestSigmaOmegaStatePurity(t *testing.T) {
	s := SigmaOmega{}.Init(3, 1, 7)
	before := s.Key()
	_, _ = s.Step(sim.Input{FD: fd.Combined{
		Quorum:  fd.NewTrustSet(1, 2, 3),
		Leaders: fd.NewLeaders(1),
	}})
	if s.Key() != before {
		t.Fatal("Step mutated the receiver")
	}
}

func TestBallotOwner(t *testing.T) {
	n := 4
	for id := 1; id <= n; id++ {
		for round := 0; round < 3; round++ {
			b := Ballot(id + round*n)
			if got := b.Owner(n); got != sim.ProcessID(id) {
				t.Errorf("Ballot(%d).Owner = %d, want %d", b, got, id)
			}
		}
	}
}

func TestDecideOwnAlwaysSplits(t *testing.T) {
	n := 4
	run, err := sim.Execute(DecideOwn{}, inputs(n), sched.NewFair(sched.CrashPlan{}), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := distinctCount(run); got != n {
		t.Fatalf("distinct = %d, want %d", got, n)
	}
}

func TestQuorumMinTrustMaxWorldViolation(t *testing.T) {
	// The adversarial Sigma history "everyone trusts only p_n" is
	// admissible (all quorums share p_n, liveness holds when p_n is
	// correct), yet QuorumMin then decides n distinct values — the flaw the
	// vetting pipeline is meant to catch.
	n := 4
	cp := sched.CrashPlan{}
	trustMax := sched.OracleFunc(func(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue {
		return fd.NewTrustSet(sim.ProcessID(n))
	})
	// The adversary delays every message not sent by p_n until all have
	// decided (asynchrony permits this).
	onlyFromMax := func(m sim.Message, c *sim.Configuration) bool {
		return m.From == sim.ProcessID(n) || c.AllDecided(fd.AllProcesses(n))
	}
	s := &sched.Fair{Crash: cp, Gate: onlyFromMax, Oracle: trustMax, Stop: sched.AllCorrectDecided(cp)}
	run, err := sim.Execute(QuorumMin{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inputs ascend with id, so p_n holds the maximum: everyone decides
	// its own value.
	if got := distinctCount(run); got != n {
		t.Fatalf("distinct = %d, want %d (the violation)", got, n)
	}
	// The history is nevertheless Sigma_1-admissible.
	h := fd.HistoryFromRun(run)
	if err := fd.CheckSigmaIntersection(h, 1); err != nil {
		t.Fatalf("trust-max history should satisfy intersection: %v", err)
	}
	if err := fd.CheckSigmaLiveness(h, fd.NewPattern(n)); err != nil {
		t.Fatalf("trust-max history should satisfy liveness: %v", err)
	}
}

func TestFirstHeardPairPartitions(t *testing.T) {
	// Partition into pairs: each pair decides its own minimum, producing
	// n/2 distinct values — the (dec-D) shape for k = n/2.
	n := 6
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash: cp,
		Gate:  sched.IntraGroupGate(groups),
		Stop:  sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(FirstHeard{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := distinctCount(run); got != 3 {
		t.Fatalf("distinct = %d, want 3 (one per pair)", got)
	}
}
