package algorithms

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/graph"
	"kset/internal/sim"
)

// Stage1Payload is the first-stage message of the FLP-style protocol: it
// carries only the sender's identity.
type Stage1Payload struct {
	From sim.ProcessID
}

// Key implements sim.Payload.
func (p Stage1Payload) Key() string { return fmt.Sprintf("S1(%d)", p.From) }

// Hash64 implements sim.Hasher64.
//
// Neither the FLPKSet payloads nor flpState implement sim.SymHasher64 on
// purpose: FLPKSet's decide step selects the proposal of the *minimum-id*
// member of the minimum source component, and that minimum can fall into
// different input classes under an input-preserving renaming (e.g. inputs
// [0,1,0]: component {1,2} decides process 1's value 0, its renaming {3,2}
// decides process 2's value 1). The protocol is therefore not
// value-equivariant under stabilizer renamings, and collapsing its orbits
// would lose reachable decision values. Without SymHash64 the symmetry
// layer falls back to concrete hashes for states and payloads alike, which
// keeps Options.Symmetry sound (and collapse-free) for FLPKSet.
func (p Stage1Payload) Hash64() uint64 {
	return sim.HashUint(sim.HashString(sim.HashSeed(), "S1"), uint64(p.From))
}

// Stage2Payload is the second-stage message: the sender's identity, its
// proposal value, and the list of processes it heard from in stage 1.
type Stage2Payload struct {
	From  sim.ProcessID
	Value sim.Value
	Heard []sim.ProcessID // sorted ascending
}

// Key implements sim.Payload.
func (p Stage2Payload) Key() string {
	parts := make([]string, len(p.Heard))
	for i, q := range p.Heard {
		parts[i] = fmt.Sprintf("%d", q)
	}
	return fmt.Sprintf("S2(%d,%d,[%s])", p.From, p.Value, strings.Join(parts, " "))
}

// Hash64 implements sim.Hasher64 (no SymHash64 — see Stage1Payload.Hash64).
func (p Stage2Payload) Hash64() uint64 {
	h := sim.HashString(sim.HashSeed(), "S2")
	h = sim.HashUint(h, uint64(p.From))
	h = sim.HashUint(h, uint64(p.Value))
	h = hashIDs(h, p.Heard)
	return h
}

// hashIDs folds an ordered id slice (length included) into h.
func hashIDs(h uint64, ids []sim.ProcessID) uint64 {
	h = sim.HashUint(h, uint64(len(ids)))
	for _, q := range ids {
		h = sim.HashUint(h, uint64(q))
	}
	return h
}

// FLPKSet is the generalized Fischer-Lynch-Paterson initial-crash protocol
// of Section VI, solving k-set agreement in an asynchronous system with up
// to f initially dead processes whenever kn > (k+1)f (Theorem 8).
//
// Stage 1: broadcast your id; wait until you have received stage-1 messages
// from L-1 distinct other processes, where L = n-f; the senders heard form
// your in-neighbourhood in the communication graph G (edge u -> w iff w
// received from u in stage 1).
//
// Stage 2: broadcast (id, proposal, heard-list); wait until you have
// received a stage-2 message from every process you heard from in stage 1
// and from every process mentioned in any list you receive. After this
// closure completes, every source component of G that reaches you is fully
// known (an in-neighbour of an ancestor is an ancestor), so you can pick the
// source component with the smallest member id among those reaching you and
// decide the proposal of its smallest member.
//
// Since every node of G has in-degree >= L-1, Lemma 6 bounds the number of
// source components by floor(n/L), so at most floor(n/L) <= k distinct
// values are decided system-wide.
type FLPKSet struct {
	// F is the number of initial crashes tolerated; L = n - F.
	F int
}

// Name implements sim.Algorithm.
func (a FLPKSet) Name() string { return fmt.Sprintf("flpkset(f=%d)", a.F) }

// Init implements sim.Algorithm.
func (a FLPKSet) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &flpState{
		n: n, f: a.F, id: id, input: input,
		stage:    1,
		s1seen:   map[sim.ProcessID]bool{},
		lists:    map[sim.ProcessID][]sim.ProcessID{},
		vals:     map[sim.ProcessID]sim.Value{id: input},
		decision: sim.NoValue,
	}
}

type flpState struct {
	n, f  int
	id    sim.ProcessID
	input sim.Value

	stage  int // 1 = collecting ids, 2 = collecting lists, 3 = decided
	sentS1 bool
	sentS2 bool

	s1seen map[sim.ProcessID]bool            // stage-1 senders received so far
	heard  []sim.ProcessID                   // frozen stage-1 in-neighbourhood (sorted)
	lists  map[sim.ProcessID][]sim.ProcessID // stage-2 lists received (plus own after freeze)
	vals   map[sim.ProcessID]sim.Value       // proposals learned (own included)

	decision sim.Value
}

func (s *flpState) l() int { return s.n - s.f }

func (s *flpState) clone() *flpState {
	cp := *s
	cp.s1seen = make(map[sim.ProcessID]bool, len(s.s1seen))
	for p := range s.s1seen {
		cp.s1seen[p] = true
	}
	cp.heard = append([]sim.ProcessID(nil), s.heard...)
	cp.lists = make(map[sim.ProcessID][]sim.ProcessID, len(s.lists))
	for p, l := range s.lists {
		cp.lists[p] = l // lists are never mutated after storing
	}
	cp.vals = make(map[sim.ProcessID]sim.Value, len(s.vals))
	for p, v := range s.vals {
		cp.vals[p] = v
	}
	return &cp
}

// Step implements sim.State.
func (s *flpState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := s.clone()
	var sends []sim.Send

	if !next.sentS1 {
		next.sentS1 = true
		sends = append(sends, sim.Broadcast(next.n, Stage1Payload{From: next.id})...)
	}

	for _, m := range in.Delivered {
		switch p := m.Payload.(type) {
		case Stage1Payload:
			if p.From != next.id && next.stage == 1 {
				next.s1seen[p.From] = true
			}
		case Stage2Payload:
			if p.From == next.id {
				continue
			}
			if _, known := next.lists[p.From]; !known {
				next.lists[p.From] = append([]sim.ProcessID(nil), p.Heard...)
				next.vals[p.From] = p.Value
			}
		}
	}

	if next.stage == 1 && len(next.s1seen) >= next.l()-1 {
		// Freeze the in-neighbourhood and enter stage 2.
		next.heard = make([]sim.ProcessID, 0, len(next.s1seen))
		for p := range next.s1seen {
			next.heard = append(next.heard, p)
		}
		sort.Slice(next.heard, func(i, j int) bool { return next.heard[i] < next.heard[j] })
		next.lists[next.id] = next.heard
		next.stage = 2
	}

	if next.stage == 2 && !next.sentS2 {
		next.sentS2 = true
		sends = append(sends, sim.Broadcast(next.n, Stage2Payload{
			From:  next.id,
			Value: next.input,
			Heard: next.heard,
		})...)
	}

	if next.stage == 2 && next.closureComplete() {
		next.decide()
		next.stage = 3
	}

	return next, sends
}

// closureComplete reports whether a stage-2 message has arrived from every
// process the protocol is waiting for: everyone in the frozen stage-1
// in-neighbourhood and everyone mentioned in any received list.
func (s *flpState) closureComplete() bool {
	for _, list := range s.lists {
		for _, q := range list {
			if q == s.id {
				continue
			}
			if _, ok := s.lists[q]; !ok {
				return false
			}
		}
	}
	return true
}

// decide builds the known part of the communication graph G, finds the
// source components reaching this process, and decides the proposal of the
// smallest-id member of the smallest such component.
func (s *flpState) decide() {
	g := graph.New()
	g.AddNode(int(s.id))
	for w, list := range s.lists {
		g.AddNode(int(w))
		for _, u := range list {
			if u == w {
				continue
			}
			// Simple graph with u != w, so AddEdge cannot fail.
			_ = g.AddEdge(int(u), int(w))
		}
	}
	comps := g.SourceComponentsReaching(int(s.id))
	if len(comps) == 0 {
		// Unreachable: a node is always reached by at least its own
		// component. Kept as a defensive decision on own input.
		s.decision = s.input
		return
	}
	c := comps[0]
	root := sim.ProcessID(c[0])
	if v, ok := s.vals[root]; ok {
		s.decision = v
		return
	}
	// The root's value is unknown only if the root never sent stage 2,
	// which the closure wait rules out; decide own input defensively.
	s.decision = s.input
}

// Decided implements sim.State.
func (s *flpState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// SendsDone implements sim.SendQuiescent: FLPKSet sends exactly two
// broadcasts — stage 1 on the first step and stage 2 on the step that
// freezes the in-neighbourhood — and both flags are monotone, so once both
// are set no successor state ever sends again. (This is independent of the
// deliberate SymHash64 opt-out above: send quiescence is a property of the
// concrete state, not of renaming equivariance.)
func (s *flpState) SendsDone() bool { return s.sentS1 && s.sentS2 }

// Key implements sim.State.
func (s *flpState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flp{id=%d in=%d st=%d s1=%t s2=%t dec=%d seen=", s.id, s.input, s.stage, s.sentS1, s.sentS2, s.decision)
	b.WriteString(encodeIDSet(s.s1seen))
	b.WriteString(" heard=")
	b.WriteString(encodeIDs(s.heard))
	b.WriteString(" lists=")
	b.WriteString(encodeLists(s.lists))
	b.WriteString(" vals=")
	b.WriteString(encodeVals(s.vals))
	b.WriteString("}")
	return b.String()
}

// Hash64 implements sim.Hasher64: the same fields Key encodes, with the
// maps folded as commutative sums so no sorting is needed.
func (s *flpState) Hash64() uint64 {
	h := sim.HashString(sim.HashSeed(), "flp")
	h = sim.HashUint(h, uint64(s.id))
	h = sim.HashUint(h, uint64(s.input))
	h = sim.HashUint(h, uint64(s.stage))
	h = sim.HashUint(h, boolBit(s.sentS1)|boolBit(s.sentS2)<<1)
	h = sim.HashUint(h, uint64(s.decision))
	var seen uint64
	for p := range s.s1seen {
		seen += sim.HashMix(uint64(p))
	}
	h = sim.HashUint(h, seen)
	h = hashIDs(h, s.heard)
	var lists uint64
	for p, list := range s.lists {
		lists += sim.HashMix(hashIDs(sim.HashUint(sim.HashSeed(), uint64(p)), list))
	}
	h = sim.HashUint(h, lists)
	h = sim.HashUint(h, hashVals(s.vals))
	return h
}

func encodeIDs(ids []sim.ProcessID) string {
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func encodeIDSet(set map[sim.ProcessID]bool) string {
	ids := make([]sim.ProcessID, 0, len(set))
	for p := range set {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return encodeIDs(ids)
}

func encodeLists(lists map[sim.ProcessID][]sim.ProcessID) string {
	ids := make([]sim.ProcessID, 0, len(lists))
	for p := range lists {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = fmt.Sprintf("%d:%s", p, encodeIDs(lists[p]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
