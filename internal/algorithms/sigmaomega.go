package algorithms

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/fd"
	"kset/internal/sim"
)

// Ballot is a Paxos-style ballot number. Ballot b is owned by process
// ((b-1) mod n) + 1, so distinct processes never reuse each other's ballots.
type Ballot int64

// Owner returns the process owning ballot b in an n-process system.
func (b Ballot) Owner(n int) sim.ProcessID {
	return sim.ProcessID((int64(b)-1)%int64(n) + 1)
}

// The message kinds of SigmaOmega consensus.
type (
	// PreparePayload opens ballot B (phase 1a).
	PreparePayload struct {
		From sim.ProcessID
		B    Ballot
	}
	// PromisePayload answers a prepare (phase 1b) with the acceptor's
	// previously accepted ballot/value (AccB = 0 when none).
	PromisePayload struct {
		From sim.ProcessID
		B    Ballot
		AccB Ballot
		AccV sim.Value
	}
	// AcceptPayload asks acceptors to accept V at ballot B (phase 2a).
	AcceptPayload struct {
		From sim.ProcessID
		B    Ballot
		V    sim.Value
	}
	// AcceptedPayload is an acceptor's vote (phase 2b), broadcast to all.
	AcceptedPayload struct {
		From sim.ProcessID
		B    Ballot
		V    sim.Value
	}
	// DecidePayload propagates a decision reliably.
	DecidePayload struct {
		From sim.ProcessID
		V    sim.Value
	}
)

// Key implements sim.Payload.
func (p PreparePayload) Key() string { return fmt.Sprintf("P1A(%d,%d)", p.From, p.B) }

// Key implements sim.Payload.
func (p PromisePayload) Key() string {
	return fmt.Sprintf("P1B(%d,%d,%d,%d)", p.From, p.B, p.AccB, p.AccV)
}

// Key implements sim.Payload.
func (p AcceptPayload) Key() string { return fmt.Sprintf("P2A(%d,%d,%d)", p.From, p.B, p.V) }

// Key implements sim.Payload.
func (p AcceptedPayload) Key() string { return fmt.Sprintf("P2B(%d,%d,%d)", p.From, p.B, p.V) }

// Key implements sim.Payload.
func (p DecidePayload) Key() string { return fmt.Sprintf("DEC(%d,%d)", p.From, p.V) }

// SigmaOmega is ballot-based uniform consensus from the failure-detector
// pair (Sigma, Omega) — the k = 1 endpoint of Corollary 13 ("(Sigma_1,
// Omega_1) is sufficient for solving consensus", citing Delporte-Gallet et
// al.). It is a Paxos-style protocol in which the classical "majority" is
// replaced by the detector's quorums:
//
//   - a process that trusts itself to be the leader (its Omega output
//     contains its own id) runs prepare/accept phases for ballots it owns;
//   - a phase completes when answers have arrived from every member of some
//     quorum currently output by Sigma; the Intersection property of
//     Definition 4 (k = 1: any two quorums taken at any two times
//     intersect) gives the standard Paxos safety argument, and Liveness
//     makes waiting for a full quorum of correct processes eventually
//     succeed;
//   - decisions are flooded with DECIDE messages, so every correct process
//     decides once any process does.
//
// Validity holds because any chosen value traces back to some proposer's
// input; uniform agreement holds by quorum intersection over phase-2 votes.
type SigmaOmega struct{}

// Name implements sim.Algorithm.
func (SigmaOmega) Name() string { return "sigmaomega" }

// Init implements sim.Algorithm.
func (SigmaOmega) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &soState{
		n: n, id: id, input: input,
		accV:     sim.NoValue,
		decision: sim.NoValue,
	}
}

type promiseInfo struct {
	accB Ballot
	accV sim.Value
}

type soState struct {
	n     int
	id    sim.ProcessID
	input sim.Value

	// Acceptor.
	maxB Ballot    // highest ballot promised or accepted
	accB Ballot    // ballot of last accepted value (0 = none)
	accV sim.Value // last accepted value

	// Leader.
	curB     Ballot // ballot this process is currently driving (0 = none)
	phase    int    // 0 idle, 1 collecting promises, 2 collecting votes
	promises map[sim.ProcessID]promiseInfo
	proposal sim.Value // value being driven in phase 2

	// Learner: votes[p] = (ballot, value) of p's latest ACCEPTED.
	votes map[sim.ProcessID]promiseInfo

	decision sim.Value
	decSent  bool
}

func (s *soState) clone() *soState {
	cp := *s
	cp.promises = clonePromises(s.promises)
	cp.votes = clonePromises(s.votes)
	return &cp
}

func clonePromises(m map[sim.ProcessID]promiseInfo) map[sim.ProcessID]promiseInfo {
	if m == nil {
		return nil
	}
	cp := make(map[sim.ProcessID]promiseInfo, len(m))
	for p, v := range m {
		cp[p] = v
	}
	return cp
}

// nextOwnBallot returns the smallest ballot owned by s.id that is strictly
// greater than b.
func (s *soState) nextOwnBallot(b Ballot) Ballot {
	base := Ballot(s.id)
	for base <= b {
		base += Ballot(s.n)
	}
	return base
}

// Step implements sim.State.
func (s *soState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := s.clone()
	var sends []sim.Send

	quorum, leaders, haveFD := splitFD(in.FD)

	// 1. Process incoming messages.
	for _, m := range in.Delivered {
		sends = append(sends, next.handle(m)...)
	}

	// 2. Decision flooding: decide as soon as any DECIDE arrived (handled
	// in handle) or a quorum of votes for one (ballot, value) exists.
	if next.decision == sim.NoValue && haveFD {
		if v, ok := next.quorumVoted(quorum); ok {
			next.decision = v
		}
	}
	if next.decision != sim.NoValue && !next.decSent {
		next.decSent = true
		sends = append(sends, sim.Broadcast(next.n, DecidePayload{From: next.id, V: next.decision})...)
	}
	if next.decision != sim.NoValue {
		return next, sends
	}

	if !haveFD {
		return next, sends
	}

	// 3. Leader logic: start a ballot when Omega nominates us and we are
	// not driving a live ballot.
	if leaders.Contains(next.id) {
		if next.curB == 0 || next.maxB > next.curB {
			// Our previous ballot (if any) was superseded: start afresh.
			next.curB = next.nextOwnBallot(next.maxB)
			next.phase = 1
			next.promises = make(map[sim.ProcessID]promiseInfo)
			next.proposal = sim.NoValue
			sends = append(sends, sim.Broadcast(next.n, PreparePayload{From: next.id, B: next.curB})...)
		}
	}

	// 4. Phase completion checks against the *current* quorum.
	if next.phase == 1 && next.curB != 0 && coversQuorum(next.promises, quorum) {
		// Choose the accepted value of the highest ballot among promises,
		// or our own input when none.
		v := next.input
		best := Ballot(0)
		for _, pi := range next.promises {
			if pi.accB > best {
				best = pi.accB
				v = pi.accV
			}
		}
		next.phase = 2
		next.proposal = v
		sends = append(sends, sim.Broadcast(next.n, AcceptPayload{From: next.id, B: next.curB, V: v})...)
	}

	return next, sends
}

// handle processes one message, returning any immediate replies.
func (s *soState) handle(m sim.Message) []sim.Send {
	switch p := m.Payload.(type) {
	case PreparePayload:
		if p.B > s.maxB {
			s.maxB = p.B
		}
		if p.B >= s.maxB {
			return []sim.Send{{To: p.From, Payload: PromisePayload{
				From: s.id, B: p.B, AccB: s.accB, AccV: s.accV,
			}}}
		}
	case PromisePayload:
		if p.B == s.curB && s.phase == 1 {
			if s.promises == nil {
				s.promises = make(map[sim.ProcessID]promiseInfo)
			}
			s.promises[p.From] = promiseInfo{accB: p.AccB, accV: p.AccV}
		}
	case AcceptPayload:
		if p.B >= s.maxB {
			s.maxB = p.B
			s.accB = p.B
			s.accV = p.V
			return sim.Broadcast(s.n, AcceptedPayload{From: s.id, B: p.B, V: p.V})
		}
	case AcceptedPayload:
		if s.votes == nil {
			s.votes = make(map[sim.ProcessID]promiseInfo)
		}
		if cur, ok := s.votes[p.From]; !ok || p.B > cur.accB {
			s.votes[p.From] = promiseInfo{accB: p.B, accV: p.V}
		}
	case DecidePayload:
		if s.decision == sim.NoValue {
			s.decision = p.V
		}
	}
	return nil
}

// quorumVoted reports whether every member of the current quorum has voted
// for one common (ballot, value).
func (s *soState) quorumVoted(q fd.TrustSet) (sim.Value, bool) {
	if len(q.IDs) == 0 || len(s.votes) == 0 {
		return sim.NoValue, false
	}
	// Group by ballot: all quorum members must have their latest vote on
	// the same ballot.
	first := true
	var b Ballot
	var v sim.Value
	for _, id := range q.IDs {
		vote, ok := s.votes[id]
		if !ok {
			return sim.NoValue, false
		}
		if first {
			b, v = vote.accB, vote.accV
			first = false
			continue
		}
		if vote.accB != b || vote.accV != v {
			return sim.NoValue, false
		}
	}
	return v, true
}

func coversQuorum(got map[sim.ProcessID]promiseInfo, q fd.TrustSet) bool {
	if len(q.IDs) == 0 {
		return false
	}
	for _, id := range q.IDs {
		if _, ok := got[id]; !ok {
			return false
		}
	}
	return true
}

// splitFD extracts the quorum and leader parts of the detector output.
func splitFD(v sim.FDValue) (fd.TrustSet, fd.Leaders, bool) {
	switch x := v.(type) {
	case fd.Combined:
		return x.Quorum, x.Leaders, true
	case fd.TrustSet:
		return x, fd.Leaders{}, true
	case fd.Leaders:
		return fd.TrustSet{}, x, true
	default:
		return fd.TrustSet{}, fd.Leaders{}, false
	}
}

// Decided implements sim.State.
func (s *soState) Decided() (sim.Value, bool) {
	return s.decision, s.decision != sim.NoValue
}

// Key implements sim.State.
func (s *soState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "so{id=%d in=%d maxB=%d accB=%d accV=%d curB=%d ph=%d prop=%d dec=%d sent=%t",
		s.id, s.input, s.maxB, s.accB, s.accV, s.curB, s.phase, s.proposal, s.decision, s.decSent)
	b.WriteString(" prom=")
	b.WriteString(encodePromises(s.promises))
	b.WriteString(" votes=")
	b.WriteString(encodePromises(s.votes))
	b.WriteString("}")
	return b.String()
}

func encodePromises(m map[sim.ProcessID]promiseInfo) string {
	ids := make([]int, 0, len(m))
	for p := range m {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, p := range ids {
		pi := m[sim.ProcessID(p)]
		parts[i] = fmt.Sprintf("%d:(%d,%d)", p, pi.accB, pi.accV)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
