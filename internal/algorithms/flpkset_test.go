package algorithms

import (
	"math/rand"
	"testing"

	"kset/internal/sched"
	"kset/internal/sim"
)

func runFLP(t *testing.T, n, f int, dead []sim.ProcessID) *sim.Run {
	t.Helper()
	cp := sched.CrashPlan{InitialDead: dead}
	run, err := sim.Execute(FLPKSet{F: f}, inputs(n), sched.NewFair(cp), sim.Options{})
	if err != nil {
		t.Fatalf("Execute(n=%d f=%d dead=%v): %v", n, f, dead, err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked processes %v (n=%d f=%d dead=%v)", run.Blocked, n, f, dead)
	}
	return run
}

func TestFLPConsensusFailureFree(t *testing.T) {
	// k=1 configuration: n=5, f=2, L=3; kn > (k+1)f iff 5 > 4: solvable.
	run := runFLP(t, 5, 2, nil)
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct decisions = %d, want 1 (consensus)", got)
	}
}

func TestFLPConsensusWithInitialCrashes(t *testing.T) {
	// Majority alive: n=5, f=2, two initially dead.
	run := runFLP(t, 5, 2, []sim.ProcessID{2, 4})
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct decisions = %d, want 1", got)
	}
	for _, p := range []sim.ProcessID{2, 4} {
		if _, decided := run.Final.Decision(p); decided {
			t.Errorf("dead process %d decided", p)
		}
	}
}

func TestFLPKSetBound(t *testing.T) {
	// n=6, f=3, L=3: k-set agreement for k >= floor(6/3) = 2.
	run := runFLP(t, 6, 3, []sim.ProcessID{6})
	if got := distinctCount(run); got > 2 {
		t.Fatalf("distinct decisions = %d, want <= 2", got)
	}
}

func TestFLPValidity(t *testing.T) {
	in := inputs(7)
	proposed := make(map[sim.Value]bool, len(in))
	for _, v := range in {
		proposed[v] = true
	}
	run := runFLP(t, 7, 2, []sim.ProcessID{1})
	for p, v := range run.Decisions() {
		if v == sim.NoValue {
			continue
		}
		if !proposed[v] {
			t.Errorf("process %d decided unproposed value %d", p+1, v)
		}
	}
}

// TestFLPTheorem8Sweep sweeps the solvable region kn > (k+1)f and checks
// Termination and k-Agreement under random initial-crash patterns and a
// fair schedule. This is the possibility half of Theorem 8.
func TestFLPTheorem8Sweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 3; n <= 8; n++ {
		for f := 0; f < n; f++ {
			l := n - f
			k := n / l // floor(n/L): the algorithm decides <= k values
			if k*n <= (k+1)*f {
				continue // outside the solvable region for this k
			}
			// Random initial-crash set of size <= f.
			var dead []sim.ProcessID
			perm := rng.Perm(n)
			for i := 0; i < f && i < len(perm); i++ {
				dead = append(dead, sim.ProcessID(perm[i]+1))
			}
			run := runFLP(t, n, f, dead)
			if got := distinctCount(run); got > k {
				t.Errorf("n=%d f=%d: distinct=%d > k=%d", n, f, got, k)
			}
		}
	}
}

// TestFLPAgreementUnderAdversarialDelay delays messages between two halves
// until the first half decides; the bound floor(n/L) <= k must still hold
// because it follows from the stage-1 graph structure, not from timing.
func TestFLPAgreementUnderAdversarialDelay(t *testing.T) {
	n, f := 6, 3 // L=3, k=2
	g1 := []sim.ProcessID{1, 2, 3}
	g2 := []sim.ProcessID{4, 5, 6}
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash: cp,
		Gate:  sched.PartitionUntilDecidedGate([][]sim.ProcessID{g1, g2}, g1),
		Stop:  sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(FLPKSet{F: f}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := distinctCount(run); got > 2 {
		t.Fatalf("distinct = %d, want <= 2", got)
	}
}

// TestFLPPartitionedGroupsDecideSeparately drives each group of size L in
// isolation (others' messages gated): each group decides on its own and the
// total distinct count is exactly n/L — the runs that make the Section VI
// bound tight.
func TestFLPPartitionedGroupsDecideSeparately(t *testing.T) {
	n, f := 6, 3 // L = 3, two groups
	g1 := []sim.ProcessID{1, 2, 3}
	g2 := []sim.ProcessID{4, 5, 6}
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash: cp,
		Gate:  sched.IntraGroupGate([][]sim.ProcessID{g1, g2}),
		Stop:  sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(FLPKSet{F: f}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := distinctCount(run); got != 2 {
		t.Fatalf("distinct = %d, want exactly 2 (one per isolated group)", got)
	}
}

func TestFLPPayloadKeys(t *testing.T) {
	s2a := Stage2Payload{From: 1, Value: 5, Heard: []sim.ProcessID{2, 3}}
	s2b := Stage2Payload{From: 1, Value: 5, Heard: []sim.ProcessID{2, 3}}
	s2c := Stage2Payload{From: 1, Value: 5, Heard: []sim.ProcessID{2, 4}}
	if s2a.Key() != s2b.Key() {
		t.Fatal("equal stage-2 payloads differ")
	}
	if s2a.Key() == s2c.Key() {
		t.Fatal("different heard lists collide")
	}
	if (Stage1Payload{From: 3}).Key() == (Stage1Payload{From: 4}).Key() {
		t.Fatal("stage-1 keys collide")
	}
}

func TestFLPStatePurity(t *testing.T) {
	s := FLPKSet{F: 1}.Init(3, 1, 7)
	before := s.Key()
	_, _ = s.Step(sim.Input{})
	if s.Key() != before {
		t.Fatal("Step mutated the receiver")
	}
}

func TestFLPDegenerateFZero(t *testing.T) {
	// f=0: L=n, every process waits for everyone; consensus.
	run := runFLP(t, 4, 0, nil)
	if got := distinctCount(run); got != 1 {
		t.Fatalf("distinct = %d, want 1", got)
	}
}
