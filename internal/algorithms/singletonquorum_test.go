package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

// singletonEventually is an admissible Sigma_{n-1} oracle that outputs the
// alive set until time gst and the querying process's own singleton
// afterwards at the smallest-id correct process: the environment that makes
// SingletonQuorum fully live.
func singletonEventually(pattern *fd.Pattern, gst int) sched.Oracle {
	return sched.OracleFunc(func(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue {
		correct := pattern.Correct()
		if t >= gst && len(correct) > 0 && p == correct[0] {
			return fd.NewTrustSet(p)
		}
		return fd.NewTrustSet(pattern.Alive(t)...)
	})
}

func TestSingletonQuorumFullTermination(t *testing.T) {
	n := 5
	pattern := fd.NewPattern(n)
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash:  cp,
		Oracle: singletonEventually(pattern, 3),
		Stop:   sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(SingletonQuorum{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := len(run.DistinctDecisions()); got > n-1 {
		t.Fatalf("distinct = %d, want <= n-1 = %d", got, n-1)
	}
	// p1 self-decides its own value; everyone else adopts origin 1 (prompt
	// delivery): exactly one value.
	if got := len(run.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d under prompt delivery, want 1", got)
	}
}

// TestSingletonQuorumAliveSetEnvironment: with the plain alive-set oracle
// the smallest-id process never sees its singleton; the documented liveness
// gap appears (p1 blocked), but everyone else decides and the agreement
// bound holds — exactly the behaviour the algorithm's doc comment states.
func TestSingletonQuorumAliveSetEnvironment(t *testing.T) {
	n := 4
	pattern := fd.NewPattern(n)
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash:  cp,
		Oracle: fd.SigmaOracle{K: n - 1, Pattern: pattern},
		Stop: func(c *sim.Configuration) bool {
			// Everyone except p1 can decide.
			for p := sim.ProcessID(2); int(p) <= n; p++ {
				if _, ok := c.Decision(p); !ok {
					return false
				}
			}
			return true
		},
	}
	run, err := sim.Execute(SingletonQuorum{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if _, decided := run.Final.Decision(1); decided {
		t.Fatal("p1 decided without singleton or smaller origin")
	}
	for p := sim.ProcessID(2); int(p) <= n; p++ {
		v, decided := run.Final.Decision(p)
		if !decided {
			t.Fatalf("p%d undecided", p)
		}
		if v != 100 {
			t.Fatalf("p%d decided %d, want adopted origin-1 value 100", p, v)
		}
	}
}

// TestSingletonQuorumSafetyUnderAdversarialHistories is the property test
// of the safety proof: under random admissible Sigma_{n-1} histories
// (random quorums that always contain some fixed pivot process, plus
// occasional own-singletons — both intersection-compliant) and random
// schedules, the number of distinct decisions never reaches n.
func TestSingletonQuorumSafetyUnderAdversarialHistories(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		pivot := sim.ProcessID(1 + rng.Intn(n))
		oracle := sched.OracleFunc(func(p sim.ProcessID, tm int, c *sim.Configuration) sim.FDValue {
			// Quorums always contain the pivot, except that each process
			// may sometimes legally see its own singleton only if p ==
			// pivot (singletons other than the pivot's would need care to
			// stay admissible; the pivot's singleton intersects every
			// pivot-containing quorum).
			if p == pivot && rng.Intn(3) == 0 {
				return fd.NewTrustSet(pivot)
			}
			ids := []sim.ProcessID{pivot}
			for q := 1; q <= n; q++ {
				if rng.Intn(2) == 0 {
					ids = append(ids, sim.ProcessID(q))
				}
			}
			return fd.NewTrustSet(ids...)
		})
		s := &oracleDecorator{
			inner:  &randomizedScheduler{rng: rng, max: 30 * n},
			oracle: oracle,
		}
		run, err := sim.Execute(SingletonQuorum{}, inputs(n), s, sim.Options{})
		if err != nil {
			return false
		}
		return len(run.DistinctDecisions()) <= n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSingletonQuorumAllSingletonWorldIsInadmissible documents why the
// dangerous environment (every process seeing its own singleton) cannot
// occur: such a history violates the Sigma_{n-1} Intersection property, and
// the package's own checker rejects it.
func TestSingletonQuorumAllSingletonWorldIsInadmissible(t *testing.T) {
	n := 4
	h := fd.NewHistory(n)
	for p := 1; p <= n; p++ {
		h.Add(sim.ProcessID(p), p, fd.NewTrustSet(sim.ProcessID(p)))
	}
	if err := fd.CheckSigmaIntersection(h, n-1); err == nil {
		t.Fatal("pairwise-disjoint singleton history accepted as Sigma_{n-1}")
	}
}

func TestSingletonQuorumValidity(t *testing.T) {
	n := 5
	pattern := fd.NewPattern(n)
	cp := sched.CrashPlan{}
	s := &sched.Fair{
		Crash:  cp,
		Oracle: singletonEventually(pattern, 0),
		Stop:   sched.AllCorrectDecided(cp),
	}
	run, err := sim.Execute(SingletonQuorum{}, inputs(n), s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proposed := map[sim.Value]bool{}
	for _, v := range inputs(n) {
		proposed[v] = true
	}
	for _, v := range run.DistinctDecisions() {
		if !proposed[v] {
			t.Fatalf("unproposed decision %d", v)
		}
	}
}

func TestSingletonQuorumStatePurity(t *testing.T) {
	s := SingletonQuorum{}.Init(3, 2, 7)
	before := s.Key()
	_, _ = s.Step(sim.Input{FD: fd.NewTrustSet(2)})
	if s.Key() != before {
		t.Fatal("Step mutated the receiver")
	}
}

func TestOriginPayloadKey(t *testing.T) {
	a := OriginPayload{From: 1, Origin: 2, Value: 3}
	b := OriginPayload{From: 1, Origin: 2, Value: 4}
	if a.Key() == b.Key() {
		t.Fatal("distinct payloads collide")
	}
}
