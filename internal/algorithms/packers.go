package algorithms

// This file implements the packed encodings (sim.Packer) of the five
// repository algorithms, making each a sim.PackableAlgorithm. A packer
// replaces the interface-typed state of its algorithm with a fixed-width
// record of uint64 words — bitmasks standing in for the id-keyed maps — and
// must reproduce the pointer implementation BIT FOR BIT: the same state
// evolution, the same sends in the same order, and hash chains identical to
// the states' Hash64/SymHash64 and the payloads' chains. The equivalences
// the encodings rest on:
//
//   - A genuine ValuePayload/Stage2Payload always carries the sender's own
//     proposal (Value == inputs[From-1]), so a value map learned from
//     genuine messages is fully determined by the set of senders learned
//     from — a bitmask — and per-sender hash terms are precomputable.
//   - Corrupted payloads fail every receiver's type assertion in the
//     pointer engine, so packers ignore messages with the Corrupt flag and
//     the value-map invariant above survives Byzantine fault injection.
//   - FLPKSet's heard-lists are always sorted ascending, so a list is
//     recoverable from its membership bitmask, and the per-sender stored
//     lists are the senders' frozen stage-1 neighbourhoods — one Aux word
//     per stage-2 message carries the whole list.
//
// The packed-vs-pointer differential tests and FuzzPackedParity in package
// explore pin the bit-identity of fingerprints, canonical fingerprints,
// keys, and visited sets across every reduction, fault model, store, and
// worker count.

import (
	"math/bits"

	"kset/internal/graph"
	"kset/internal/sim"
)

// noValueWord is sim.NoValue as a record word (two's-complement uint64).
var noValueWord = func() uint64 { v := sim.NoValue; return uint64(v) }()

// maskIDs iterates a process bitmask in ascending id order.
func maskIDs(mask uint64, fn func(p sim.ProcessID)) {
	for m := mask; m != 0; m &= m - 1 {
		fn(sim.ProcessID(bits.TrailingZeros64(m) + 1))
	}
}

// hashIDsMask folds the ascending id list encoded by mask (length first)
// into h — bit-identical to hashIDs over the materialized slice.
func hashIDsMask(h uint64, mask uint64) uint64 {
	h = sim.HashUint(h, uint64(bits.OnesCount64(mask)))
	for m := mask; m != 0; m &= m - 1 {
		h = sim.HashUint(h, uint64(bits.TrailingZeros64(m)+1))
	}
	return h
}

// idsFromMask materializes the ascending id slice of mask.
func idsFromMask(mask uint64) []sim.ProcessID {
	ids := make([]sim.ProcessID, 0, bits.OnesCount64(mask))
	maskIDs(mask, func(p sim.ProcessID) { ids = append(ids, p) })
	return ids
}

// valsFromMask materializes the proposal map {p: inputs[p-1]} of mask.
func valsFromMask(mask uint64, inputs []sim.Value) map[sim.ProcessID]sim.Value {
	vals := make(map[sim.ProcessID]sim.Value, bits.OnesCount64(mask))
	maskIDs(mask, func(p sim.ProcessID) { vals[p] = inputs[p-1] })
	return vals
}

// symTables caches the relabeled per-process hash terms of one Symmetry for
// the broadcast-your-value packers. Built once by AttachSymmetry before the
// search shares the packer across goroutines; SymHash64 falls back to
// computing terms on the fly when handed a different Symmetry.
type symTables struct {
	sym *sim.Symmetry
	// prefix[i]: the state-hash chain through (tag, relabel(id), input).
	prefix []uint64
	// valHash[j]: ValuePayload{j+1, inputs[j]}.SymHash64.
	valHash []uint64
	// valTerm[j]: symHashVals' commutative term for entry (j+1, inputs[j]).
	valTerm []uint64
}

func buildSymTables(tag string, n int, inputs []sim.Value, sym *sim.Symmetry) *symTables {
	t := &symTables{sym: sym, prefix: make([]uint64, n), valHash: make([]uint64, n), valTerm: make([]uint64, n)}
	for i := 0; i < n; i++ {
		label := sym.Label(sim.ProcessID(i + 1))
		h := sim.HashString(sim.HashSeed(), tag)
		h = sim.HashUint(h, label)
		h = sim.HashUint(h, uint64(inputs[i]))
		t.prefix[i] = h
		t.valHash[i] = sim.HashUint(sim.HashUint(sim.HashSeed(), label), uint64(inputs[i]))
		t.valTerm[i] = sim.HashMix(t.valHash[i])
	}
	return t
}

// valPacker is the shared encoding core of MinWait, QuorumMin, and
// FirstHeard: one "broadcast ValuePayload once" algorithm family with
// per-instance precomputed hash tables.
//
// Record layout (MinWait/QuorumMin; FirstHeard uses words 0-1 only):
//
//	word 0: flags (bit 0: sent)
//	word 1: decision (uint64(sim.Value))
//	word 2: vals bitmask (bit j: a value from process j+1 is held)
type valPacker struct {
	tag    string
	n      int
	inputs []sim.Value
	// prefix[i]: concrete state-hash chain through (tag, id, input).
	prefix []uint64
	// valHash[j]: ValuePayload{j+1, inputs[j]}.Hash64.
	valHash []uint64
	// valTerm[j]: hashVals' commutative term for entry (j+1, inputs[j]).
	valTerm []uint64
	symtab  *symTables
}

const valSentBit = 1

// kindVal tags the single message type of the valPacker family.
const kindVal uint8 = 1

func newValPacker(tag string, n int, inputs []sim.Value) valPacker {
	p := valPacker{
		tag: tag, n: n, inputs: append([]sim.Value(nil), inputs...),
		prefix:  make([]uint64, n),
		valHash: make([]uint64, n),
		valTerm: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		h := sim.HashString(sim.HashSeed(), tag)
		h = sim.HashUint(h, uint64(i+1))
		h = sim.HashUint(h, uint64(inputs[i]))
		p.prefix[i] = h
		p.valHash[i] = sim.HashUint(sim.HashUint(sim.HashSeed(), uint64(i+1)), uint64(inputs[i]))
		p.valTerm[i] = sim.HashMix(p.valHash[i])
	}
	return p
}

func (p *valPacker) attachSym(sym *sim.Symmetry) {
	if t := p.symtab; t != nil && t.sym == sym {
		return
	}
	p.symtab = buildSymTables(p.tag, p.n, p.inputs, sym)
}

// sumValTerms sums the concrete hashVals terms over mask.
func (p *valPacker) sumValTerms(mask uint64) uint64 {
	var sum uint64
	for m := mask; m != 0; m &= m - 1 {
		sum += p.valTerm[bits.TrailingZeros64(m)]
	}
	return sum
}

// symSumValTerms sums the relabeled symHashVals terms over mask under sym.
func (p *valPacker) symSumValTerms(mask uint64, sym *sim.Symmetry) uint64 {
	if t := p.symtab; t != nil && t.sym == sym {
		var sum uint64
		for m := mask; m != 0; m &= m - 1 {
			sum += t.valTerm[bits.TrailingZeros64(m)]
		}
		return sum
	}
	var sum uint64
	for m := mask; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		sum += sim.HashMix(sim.HashUint(sim.HashUint(sim.HashSeed(), sym.Label(sim.ProcessID(j+1))), uint64(p.inputs[j])))
	}
	return sum
}

// hashTail folds the (sent, decision, valsSum) tail shared by the mw/qm
// state hash chains.
func hashTail(prefix uint64, sent bool, decision sim.Value, valsSum uint64) uint64 {
	h := prefix
	var sentBit uint64
	if sent {
		sentBit = 1
	}
	h = sim.HashUint(h, sentBit)
	h = sim.HashUint(h, uint64(decision))
	h = sim.HashUint(h, valsSum)
	return h
}

func (p *valPacker) symPrefix(i int, sym *sim.Symmetry) uint64 {
	if t := p.symtab; t != nil && t.sym == sym {
		return t.prefix[i]
	}
	h := sim.HashString(sim.HashSeed(), p.tag)
	h = sim.HashUint(h, sym.Label(sim.ProcessID(i+1)))
	h = sim.HashUint(h, uint64(p.inputs[i]))
	return h
}

func (p *valPacker) payloadHash(m sim.PackedMsg) uint64 {
	return p.valHash[m.From-1]
}

func (p *valPacker) payloadSymHash(m sim.PackedMsg, sym *sim.Symmetry) uint64 {
	if t := p.symtab; t != nil && t.sym == sym {
		return t.valHash[m.From-1]
	}
	return sim.HashUint(sim.HashUint(sim.HashSeed(), sym.Label(m.From)), uint64(p.inputs[m.From-1]))
}

// minWaitPacker packs MinWait (see minwait.go).
type minWaitPacker struct {
	valPacker
	f int
}

// NewPacker implements sim.PackableAlgorithm.
func (a MinWait) NewPacker(n int, inputs []sim.Value) sim.Packer {
	return &minWaitPacker{valPacker: newValPacker("mw", n, inputs), f: a.F}
}

func (p *minWaitPacker) Words() int { return 3 }

func (p *minWaitPacker) Init(rec []uint64, i int) {
	rec[0] = 0
	rec[1] = noValueWord
	rec[2] = 1 << uint(i) // vals = {own proposal}
}

func (p *minWaitPacker) Step(rec []uint64, i int, in sim.PackedInput, em *sim.PackedEmitter) {
	if rec[0]&valSentBit == 0 {
		rec[0] |= valSentBit
		em.Broadcast(kindVal, 0)
	}
	for _, m := range in.Delivered {
		if m.Corrupt || m.Kind != kindVal {
			continue
		}
		rec[2] |= 1 << uint(m.From-1)
	}
	if sim.Value(rec[1]) == sim.NoValue && bits.OnesCount64(rec[2]) >= p.n-p.f {
		minV := sim.Value(0)
		first := true
		maskIDs(rec[2], func(q sim.ProcessID) {
			if v := p.inputs[q-1]; first || v < minV {
				minV = v
				first = false
			}
		})
		rec[1] = uint64(minV)
	}
}

func (p *minWaitPacker) Decided(rec []uint64, i int) (sim.Value, bool) {
	v := sim.Value(rec[1])
	return v, v != sim.NoValue
}

func (p *minWaitPacker) SendsDone(rec []uint64, i int) bool { return rec[0]&valSentBit != 0 }

func (p *minWaitPacker) Hash64(rec []uint64, i int) uint64 {
	return hashTail(p.prefix[i], rec[0]&valSentBit != 0, sim.Value(rec[1]), p.sumValTerms(rec[2]))
}

func (p *minWaitPacker) SymHash64(rec []uint64, i int, sym *sim.Symmetry) uint64 {
	return hashTail(p.symPrefix(i, sym), rec[0]&valSentBit != 0, sim.Value(rec[1]), p.symSumValTerms(rec[2], sym))
}

func (p *minWaitPacker) AttachSymmetry(sym *sim.Symmetry) { p.attachSym(sym) }

func (p *minWaitPacker) PayloadHash64(m sim.PackedMsg) uint64 { return p.payloadHash(m) }

func (p *minWaitPacker) PayloadSymHash64(m sim.PackedMsg, sym *sim.Symmetry) (uint64, bool) {
	return p.payloadSymHash(m, sym), true
}

func (p *minWaitPacker) Unpack(rec []uint64, i int) sim.State {
	return &minWaitState{
		n: p.n, f: p.f, id: sim.ProcessID(i + 1), input: p.inputs[i],
		sent:     rec[0]&valSentBit != 0,
		vals:     valsFromMask(rec[2], p.inputs),
		decision: sim.Value(rec[1]),
	}
}

func (p *minWaitPacker) UnpackPayload(m sim.PackedMsg) sim.Payload {
	return ValuePayload{From: m.From, Value: p.inputs[m.From-1]}
}

// quorumMinPacker packs QuorumMin (see candidates.go).
type quorumMinPacker struct {
	valPacker
}

// NewPacker implements sim.PackableAlgorithm.
func (QuorumMin) NewPacker(n int, inputs []sim.Value) sim.Packer {
	return &quorumMinPacker{valPacker: newValPacker("qm", n, inputs)}
}

func (p *quorumMinPacker) Words() int { return 3 }

func (p *quorumMinPacker) Init(rec []uint64, i int) {
	rec[0] = 0
	rec[1] = noValueWord
	rec[2] = 1 << uint(i)
}

func (p *quorumMinPacker) Step(rec []uint64, i int, in sim.PackedInput, em *sim.PackedEmitter) {
	if rec[0]&valSentBit == 0 {
		rec[0] |= valSentBit
		em.Broadcast(kindVal, 0)
	}
	for _, m := range in.Delivered {
		if m.Corrupt || m.Kind != kindVal {
			continue
		}
		rec[2] |= 1 << uint(m.From-1)
	}
	if sim.Value(rec[1]) == sim.NoValue {
		if q, ok := quorumFromFD(in.FD); ok && len(q.IDs) > 0 {
			covered := true
			for _, id := range q.IDs {
				if id < 1 || int(id) > p.n || rec[2]&(1<<uint(id-1)) == 0 {
					covered = false
					break
				}
			}
			if covered {
				minV := p.inputs[i]
				maskIDs(rec[2], func(qid sim.ProcessID) {
					if v := p.inputs[qid-1]; v < minV {
						minV = v
					}
				})
				rec[1] = uint64(minV)
			}
		}
	}
}

func (p *quorumMinPacker) Decided(rec []uint64, i int) (sim.Value, bool) {
	v := sim.Value(rec[1])
	return v, v != sim.NoValue
}

func (p *quorumMinPacker) SendsDone(rec []uint64, i int) bool { return rec[0]&valSentBit != 0 }

func (p *quorumMinPacker) Hash64(rec []uint64, i int) uint64 {
	return hashTail(p.prefix[i], rec[0]&valSentBit != 0, sim.Value(rec[1]), p.sumValTerms(rec[2]))
}

func (p *quorumMinPacker) SymHash64(rec []uint64, i int, sym *sim.Symmetry) uint64 {
	return hashTail(p.symPrefix(i, sym), rec[0]&valSentBit != 0, sim.Value(rec[1]), p.symSumValTerms(rec[2], sym))
}

func (p *quorumMinPacker) AttachSymmetry(sym *sim.Symmetry) { p.attachSym(sym) }

func (p *quorumMinPacker) PayloadHash64(m sim.PackedMsg) uint64 { return p.payloadHash(m) }

func (p *quorumMinPacker) PayloadSymHash64(m sim.PackedMsg, sym *sim.Symmetry) (uint64, bool) {
	return p.payloadSymHash(m, sym), true
}

func (p *quorumMinPacker) Unpack(rec []uint64, i int) sim.State {
	return &quorumMinState{
		n: p.n, id: sim.ProcessID(i + 1), input: p.inputs[i],
		sent:     rec[0]&valSentBit != 0,
		vals:     valsFromMask(rec[2], p.inputs),
		decision: sim.Value(rec[1]),
	}
}

func (p *quorumMinPacker) UnpackPayload(m sim.PackedMsg) sim.Payload {
	return ValuePayload{From: m.From, Value: p.inputs[m.From-1]}
}

// firstHeardPacker packs FirstHeard (see candidates.go). The record needs
// no vals mask — FirstHeard keeps nothing but the sent flag and the
// decision.
type firstHeardPacker struct {
	valPacker
}

// NewPacker implements sim.PackableAlgorithm.
func (FirstHeard) NewPacker(n int, inputs []sim.Value) sim.Packer {
	return &firstHeardPacker{valPacker: newValPacker("fh", n, inputs)}
}

func (p *firstHeardPacker) Words() int { return 2 }

func (p *firstHeardPacker) Init(rec []uint64, i int) {
	rec[0] = 0
	rec[1] = noValueWord
}

func (p *firstHeardPacker) Step(rec []uint64, i int, in sim.PackedInput, em *sim.PackedEmitter) {
	if rec[0]&valSentBit == 0 {
		rec[0] |= valSentBit
		em.Broadcast(kindVal, 0)
	}
	for _, m := range in.Delivered {
		if m.Corrupt || m.Kind != kindVal || int(m.From) == i+1 {
			continue
		}
		if sim.Value(rec[1]) == sim.NoValue {
			if v := p.inputs[m.From-1]; v < p.inputs[i] {
				rec[1] = uint64(v)
			} else {
				rec[1] = uint64(p.inputs[i])
			}
		}
	}
}

func (p *firstHeardPacker) Decided(rec []uint64, i int) (sim.Value, bool) {
	v := sim.Value(rec[1])
	return v, v != sim.NoValue
}

func (p *firstHeardPacker) SendsDone(rec []uint64, i int) bool { return rec[0]&valSentBit != 0 }

// fhHash folds the fh chain (no vals sum).
func fhHash(prefix uint64, sent bool, decision sim.Value) uint64 {
	h := prefix
	var sentBit uint64
	if sent {
		sentBit = 1
	}
	h = sim.HashUint(h, sentBit)
	h = sim.HashUint(h, uint64(decision))
	return h
}

func (p *firstHeardPacker) Hash64(rec []uint64, i int) uint64 {
	return fhHash(p.prefix[i], rec[0]&valSentBit != 0, sim.Value(rec[1]))
}

func (p *firstHeardPacker) SymHash64(rec []uint64, i int, sym *sim.Symmetry) uint64 {
	return fhHash(p.symPrefix(i, sym), rec[0]&valSentBit != 0, sim.Value(rec[1]))
}

func (p *firstHeardPacker) AttachSymmetry(sym *sim.Symmetry) { p.attachSym(sym) }

func (p *firstHeardPacker) PayloadHash64(m sim.PackedMsg) uint64 { return p.payloadHash(m) }

func (p *firstHeardPacker) PayloadSymHash64(m sim.PackedMsg, sym *sim.Symmetry) (uint64, bool) {
	return p.payloadSymHash(m, sym), true
}

func (p *firstHeardPacker) Unpack(rec []uint64, i int) sim.State {
	return &firstHeardState{
		n: p.n, id: sim.ProcessID(i + 1), input: p.inputs[i],
		sent:     rec[0]&valSentBit != 0,
		decision: sim.Value(rec[1]),
	}
}

func (p *firstHeardPacker) UnpackPayload(m sim.PackedMsg) sim.Payload {
	return ValuePayload{From: m.From, Value: p.inputs[m.From-1]}
}

// decideOwnPacker packs DecideOwn: one word holding the stepped bit.
type decideOwnPacker struct {
	inputs []sim.Value
	// hash[i][b]: decideOwnState{inputs[i], b==1}.Hash64 (== SymHash64).
	hash [][2]uint64
}

// NewPacker implements sim.PackableAlgorithm.
func (DecideOwn) NewPacker(n int, inputs []sim.Value) sim.Packer {
	p := &decideOwnPacker{inputs: append([]sim.Value(nil), inputs...), hash: make([][2]uint64, n)}
	for i := 0; i < n; i++ {
		h := sim.HashUint(sim.HashSeed(), uint64(inputs[i]))
		p.hash[i][0] = sim.HashUint(h, 0)
		p.hash[i][1] = sim.HashUint(h, 1)
	}
	return p
}

func (p *decideOwnPacker) Words() int { return 1 }

func (p *decideOwnPacker) Init(rec []uint64, i int) { rec[0] = 0 }

func (p *decideOwnPacker) Step(rec []uint64, i int, in sim.PackedInput, em *sim.PackedEmitter) {
	rec[0] = 1
}

func (p *decideOwnPacker) Decided(rec []uint64, i int) (sim.Value, bool) {
	return p.inputs[i], rec[0] != 0
}

func (p *decideOwnPacker) SendsDone(rec []uint64, i int) bool { return true }

func (p *decideOwnPacker) Hash64(rec []uint64, i int) uint64 { return p.hash[i][rec[0]&1] }

func (p *decideOwnPacker) SymHash64(rec []uint64, i int, sym *sim.Symmetry) uint64 {
	return p.hash[i][rec[0]&1]
}

func (p *decideOwnPacker) AttachSymmetry(*sim.Symmetry) {}

// PayloadHash64 is unreachable — DecideOwn never sends — but must satisfy
// the interface.
func (p *decideOwnPacker) PayloadHash64(m sim.PackedMsg) uint64 { return 0 }

func (p *decideOwnPacker) PayloadSymHash64(m sim.PackedMsg, sym *sim.Symmetry) (uint64, bool) {
	return 0, false
}

func (p *decideOwnPacker) Unpack(rec []uint64, i int) sim.State {
	return decideOwnState{input: p.inputs[i], stepped: rec[0] != 0}
}

func (p *decideOwnPacker) UnpackPayload(m sim.PackedMsg) sim.Payload { return nil }

// flpPacker packs FLPKSet (see flpkset.go).
//
// Record layout (5 + n words):
//
//	word 0: stage (bits 0-7), sentS1 (bit 8), sentS2 (bit 9)
//	word 1: s1seen bitmask
//	word 2: heard bitmask (valid once stage >= 2; the frozen stage-1
//	        neighbourhood, ascending order == ascending bits)
//	word 3: lists bitmask (senders whose stage-2 list is stored; own bit
//	        set at the freeze). The vals map is implied: lists | own.
//	word 4: decision
//	word 5+j: process j+1's stored list bitmask (valid when bit j of
//	        word 3 is set)
//
// FLPKSet deliberately opts out of SymHasher64 (its min-id decide rule is
// not renaming-equivariant), so SymHash64 returns the concrete hash and
// PayloadSymHash64 reports ok=false — reproducing the pointer fallback.
type flpPacker struct {
	n, f   int
	inputs []sim.Value
	// prefix[i]: hash chain through ("flp", id, input).
	prefix []uint64
	// mixID[j]: the s1seen sum term HashMix(j+1).
	mixID []uint64
	// valTerm[j]: hashVals' term for (j+1, inputs[j]).
	valTerm []uint64
	// s1Hash[j]: Stage1Payload{j+1}.Hash64.
	s1Hash []uint64
	// s2Prefix[j]: Stage2Payload chain through ("S2", j+1, inputs[j]).
	s2Prefix []uint64
	// listPrefix[j]: the lists-sum inner chain seed HashUint(seed, j+1).
	listPrefix []uint64
}

const (
	flpStageMask       = 0xff
	flpSentS1Bit       = 1 << 8
	flpSentS2Bit       = 1 << 9
	kindS1       uint8 = 1
	kindS2       uint8 = 2
	flpListBase        = 5
)

// NewPacker implements sim.PackableAlgorithm.
func (a FLPKSet) NewPacker(n int, inputs []sim.Value) sim.Packer {
	p := &flpPacker{
		n: n, f: a.F, inputs: append([]sim.Value(nil), inputs...),
		prefix:     make([]uint64, n),
		mixID:      make([]uint64, n),
		valTerm:    make([]uint64, n),
		s1Hash:     make([]uint64, n),
		s2Prefix:   make([]uint64, n),
		listPrefix: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		h := sim.HashString(sim.HashSeed(), "flp")
		h = sim.HashUint(h, uint64(i+1))
		h = sim.HashUint(h, uint64(inputs[i]))
		p.prefix[i] = h
		p.mixID[i] = sim.HashMix(uint64(i + 1))
		p.valTerm[i] = sim.HashMix(sim.HashUint(sim.HashUint(sim.HashSeed(), uint64(i+1)), uint64(inputs[i])))
		p.s1Hash[i] = sim.HashUint(sim.HashString(sim.HashSeed(), "S1"), uint64(i+1))
		s2 := sim.HashString(sim.HashSeed(), "S2")
		s2 = sim.HashUint(s2, uint64(i+1))
		s2 = sim.HashUint(s2, uint64(inputs[i]))
		p.s2Prefix[i] = s2
		p.listPrefix[i] = sim.HashUint(sim.HashSeed(), uint64(i+1))
	}
	return p
}

func (p *flpPacker) Words() int { return flpListBase + p.n }

func (p *flpPacker) l() int { return p.n - p.f }

func (p *flpPacker) Init(rec []uint64, i int) {
	for j := range rec {
		rec[j] = 0
	}
	rec[0] = 1 // stage 1
	rec[4] = noValueWord
}

func (p *flpPacker) Step(rec []uint64, i int, in sim.PackedInput, em *sim.PackedEmitter) {
	own := uint64(1) << uint(i)
	if rec[0]&flpSentS1Bit == 0 {
		rec[0] |= flpSentS1Bit
		em.Broadcast(kindS1, 0)
	}
	for _, m := range in.Delivered {
		if m.Corrupt {
			continue
		}
		from := uint64(1) << uint(m.From-1)
		switch m.Kind {
		case kindS1:
			if int(m.From) != i+1 && rec[0]&flpStageMask == 1 {
				rec[1] |= from
			}
		case kindS2:
			if int(m.From) == i+1 {
				continue
			}
			if rec[3]&from == 0 {
				rec[3] |= from
				rec[flpListBase+int(m.From)-1] = m.Aux
			}
		}
	}
	if rec[0]&flpStageMask == 1 && bits.OnesCount64(rec[1]) >= p.l()-1 {
		rec[2] = rec[1]
		rec[flpListBase+i] = rec[2]
		rec[3] |= own
		rec[0] = rec[0]&^flpStageMask | 2
	}
	if rec[0]&flpStageMask == 2 && rec[0]&flpSentS2Bit == 0 {
		rec[0] |= flpSentS2Bit
		em.Broadcast(kindS2, rec[2])
	}
	if rec[0]&flpStageMask == 2 && p.closureComplete(rec, i) {
		p.decide(rec, i)
		rec[0] = rec[0]&^flpStageMask | 3
	}
}

// closureComplete mirrors flpState.closureComplete: every process mentioned
// in any stored list (own id excepted) must have a stored list.
func (p *flpPacker) closureComplete(rec []uint64, i int) bool {
	var union uint64
	for m := rec[3]; m != 0; m &= m - 1 {
		union |= rec[flpListBase+bits.TrailingZeros64(m)]
	}
	own := uint64(1) << uint(i)
	return union&^own&^rec[3] == 0
}

// decide mirrors flpState.decide, building the known communication graph
// and picking the smallest source component reaching this process.
func (p *flpPacker) decide(rec []uint64, i int) {
	id := i + 1
	g := graph.New()
	g.AddNode(id)
	for m := rec[3]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m) + 1
		g.AddNode(w)
		for lm := rec[flpListBase+w-1]; lm != 0; lm &= lm - 1 {
			u := bits.TrailingZeros64(lm) + 1
			if u == w {
				continue
			}
			_ = g.AddEdge(u, w)
		}
	}
	comps := g.SourceComponentsReaching(id)
	if len(comps) == 0 {
		rec[4] = uint64(p.inputs[i])
		return
	}
	root := comps[0][0]
	valsMask := rec[3] | uint64(1)<<uint(i)
	if root >= 1 && root <= p.n && valsMask&(1<<uint(root-1)) != 0 {
		rec[4] = uint64(p.inputs[root-1])
		return
	}
	rec[4] = uint64(p.inputs[i])
}

func (p *flpPacker) Decided(rec []uint64, i int) (sim.Value, bool) {
	v := sim.Value(rec[4])
	return v, v != sim.NoValue
}

func (p *flpPacker) SendsDone(rec []uint64, i int) bool {
	return rec[0]&flpSentS1Bit != 0 && rec[0]&flpSentS2Bit != 0
}

func (p *flpPacker) Hash64(rec []uint64, i int) uint64 {
	h := p.prefix[i]
	h = sim.HashUint(h, rec[0]&flpStageMask)
	var sent uint64
	if rec[0]&flpSentS1Bit != 0 {
		sent |= 1
	}
	if rec[0]&flpSentS2Bit != 0 {
		sent |= 2
	}
	h = sim.HashUint(h, sent)
	h = sim.HashUint(h, rec[4])
	var seen uint64
	for m := rec[1]; m != 0; m &= m - 1 {
		seen += p.mixID[bits.TrailingZeros64(m)]
	}
	h = sim.HashUint(h, seen)
	// heard is nil (length 0) until the freeze sets stage 2.
	var heard uint64
	if rec[0]&flpStageMask >= 2 {
		heard = rec[2]
	}
	h = hashIDsMask(h, heard)
	var lists uint64
	for m := rec[3]; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		lists += sim.HashMix(hashIDsMask(p.listPrefix[j], rec[flpListBase+j]))
	}
	h = sim.HashUint(h, lists)
	var vals uint64
	for m := rec[3] | uint64(1)<<uint(i); m != 0; m &= m - 1 {
		vals += p.valTerm[bits.TrailingZeros64(m)]
	}
	h = sim.HashUint(h, vals)
	return h
}

func (p *flpPacker) SymHash64(rec []uint64, i int, sym *sim.Symmetry) uint64 {
	// flpState has no SymHash64 on purpose; the symmetry layer falls back
	// to the concrete hash.
	return p.Hash64(rec, i)
}

func (p *flpPacker) AttachSymmetry(*sim.Symmetry) {}

func (p *flpPacker) PayloadHash64(m sim.PackedMsg) uint64 {
	if m.Kind == kindS1 {
		return p.s1Hash[m.From-1]
	}
	return hashIDsMask(p.s2Prefix[m.From-1], m.Aux)
}

func (p *flpPacker) PayloadSymHash64(m sim.PackedMsg, sym *sim.Symmetry) (uint64, bool) {
	return 0, false
}

func (p *flpPacker) Unpack(rec []uint64, i int) sim.State {
	s := &flpState{
		n: p.n, f: p.f, id: sim.ProcessID(i + 1), input: p.inputs[i],
		stage:    int(rec[0] & flpStageMask),
		sentS1:   rec[0]&flpSentS1Bit != 0,
		sentS2:   rec[0]&flpSentS2Bit != 0,
		s1seen:   make(map[sim.ProcessID]bool, bits.OnesCount64(rec[1])),
		lists:    make(map[sim.ProcessID][]sim.ProcessID, bits.OnesCount64(rec[3])),
		vals:     valsFromMask(rec[3]|uint64(1)<<uint(i), p.inputs),
		decision: sim.Value(rec[4]),
	}
	maskIDs(rec[1], func(q sim.ProcessID) { s.s1seen[q] = true })
	if s.stage >= 2 {
		s.heard = idsFromMask(rec[2])
	}
	maskIDs(rec[3], func(q sim.ProcessID) {
		s.lists[q] = idsFromMask(rec[flpListBase+int(q)-1])
	})
	return s
}

func (p *flpPacker) UnpackPayload(m sim.PackedMsg) sim.Payload {
	if m.Kind == kindS1 {
		return Stage1Payload{From: m.From}
	}
	return Stage2Payload{From: m.From, Value: p.inputs[m.From-1], Heard: idsFromMask(m.Aux)}
}
