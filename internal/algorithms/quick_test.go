package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kset/internal/sched"
	"kset/internal/sim"
)

// randomizedScheduler steps random live processes delivering random
// prefixes of their buffers — a chaotic but admissible asynchronous
// schedule for property tests.
type randomizedScheduler struct {
	rng   *rand.Rand
	crash sched.CrashPlan
	steps int
	max   int
}

func (s *randomizedScheduler) Next(c *sim.Configuration) (sim.StepRequest, bool) {
	if s.steps >= s.max {
		return sim.StepRequest{}, false
	}
	s.steps++
	var live []sim.ProcessID
	for _, p := range c.Processes() {
		if !c.Crashed(p) && !s.crash.IsInitialDead(p) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return sim.StepRequest{}, false
	}
	// Silent-crash the initially dead first.
	for _, p := range s.crash.InitialDead {
		if !c.Crashed(p) {
			return sim.StepRequest{Proc: p, SilentCrash: true}, true
		}
	}
	p := live[s.rng.Intn(len(live))]
	buf := c.Buffer(p)
	var deliver []int64
	if len(buf) > 0 {
		cut := s.rng.Intn(len(buf) + 1)
		for i := 0; i < cut; i++ {
			deliver = append(deliver, buf[i].ID)
		}
	}
	return sim.StepRequest{Proc: p, Deliver: deliver}, true
}

// TestQuickMinWaitInvariants: under arbitrary admissible schedules with up
// to f initial crashes, MinWait never decides more than f+1 distinct
// values, never decides an unproposed value, and decided processes never
// flip (the kernel enforces write-once, so reaching the end is the check).
func TestQuickMinWaitInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		f := rng.Intn(n)
		var dead []sim.ProcessID
		perm := rng.Perm(n)
		for i := 0; i < rng.Intn(f+1); i++ {
			dead = append(dead, sim.ProcessID(perm[i]+1))
		}
		in := inputs(n)
		s := &randomizedScheduler{
			rng:   rng,
			crash: sched.CrashPlan{InitialDead: dead},
			max:   40 * n,
		}
		run, err := sim.Execute(MinWait{F: f}, in, s, sim.Options{})
		if err != nil {
			return false
		}
		if len(run.DistinctDecisions()) > f+1 {
			return false
		}
		proposed := map[sim.Value]bool{}
		for _, v := range in {
			proposed[v] = true
		}
		for _, v := range run.DistinctDecisions() {
			if !proposed[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFLPKSetInvariants: under arbitrary admissible schedules with up
// to f initial crashes, the Section VI protocol never exceeds floor(n/L)
// distinct decisions and satisfies Validity.
func TestQuickFLPKSetInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		f := rng.Intn(n)
		l := n - f
		k := n / l
		var dead []sim.ProcessID
		perm := rng.Perm(n)
		for i := 0; i < rng.Intn(f+1); i++ {
			dead = append(dead, sim.ProcessID(perm[i]+1))
		}
		in := inputs(n)
		s := &randomizedScheduler{
			rng:   rng,
			crash: sched.CrashPlan{InitialDead: dead},
			max:   60 * n,
		}
		run, err := sim.Execute(FLPKSet{F: f}, in, s, sim.Options{})
		if err != nil {
			return false
		}
		if len(run.DistinctDecisions()) > k {
			return false
		}
		proposed := map[sim.Value]bool{}
		for _, v := range in {
			proposed[v] = true
		}
		for _, v := range run.DistinctDecisions() {
			if !proposed[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSigmaOmegaUniformAgreement: under randomized schedules with
// admissible detector histories, the ballot protocol never produces two
// distinct decisions (uniform agreement), even among processes that crash
// later.
func TestQuickSigmaOmegaUniformAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		pattern := fdPatternForTest(n)
		oracle := sigmaOmegaOracleForTest(pattern)
		s := &randomizedScheduler{rng: rng, max: 80 * n}
		// Wrap with the oracle: randomizedScheduler has no oracle hook, so
		// decorate its requests.
		run, err := sim.Execute(SigmaOmega{}, inputs(n), &oracleDecorator{inner: s, oracle: oracle}, sim.Options{})
		if err != nil {
			return false
		}
		return len(run.DistinctDecisions()) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type oracleDecorator struct {
	inner  sim.Scheduler
	oracle sched.Oracle
}

func (d *oracleDecorator) Next(c *sim.Configuration) (sim.StepRequest, bool) {
	req, ok := d.inner.Next(c)
	if ok && !req.SilentCrash {
		req.FD = d.oracle.Query(req.Proc, c.Time(), c)
	}
	return req, ok
}

func BenchmarkMinWaitFairRun(b *testing.B) {
	in := inputs(8)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(MinWait{F: 3}, in, sched.NewFair(sched.CrashPlan{}), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFLPKSetFairRun(b *testing.B) {
	in := inputs(8)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(FLPKSet{F: 3}, in, sched.NewFair(sched.CrashPlan{}), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigmaOmegaFairRun(b *testing.B) {
	n := 6
	pattern := fdPatternForTest(n)
	oracle := sigmaOmegaOracleForTest(pattern)
	in := inputs(n)
	cp := sched.CrashPlan{}
	for i := 0; i < b.N; i++ {
		s := &sched.Fair{Crash: cp, Oracle: oracle, Stop: sched.AllCorrectDecided(cp)}
		if _, err := sim.Execute(SigmaOmega{}, in, s, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
