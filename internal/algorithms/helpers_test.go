package algorithms

import (
	"kset/internal/fd"
	"kset/internal/sched"
)

// fdPatternForTest returns a failure-free pattern for an n-process system.
func fdPatternForTest(n int) *fd.Pattern { return fd.NewPattern(n) }

// sigmaOmegaOracleForTest returns a (Sigma, Omega) oracle with immediate
// stabilization for the given pattern.
func sigmaOmegaOracleForTest(pattern *fd.Pattern) sched.Oracle {
	return fd.CombinedOracle{
		Sigma: fd.SigmaOracle{K: 1, Pattern: pattern},
		Omega: fd.OmegaOracle{K: 1, Pattern: pattern, GST: 0},
	}
}
