package quarantine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The first quarantine of a path takes the historical ".corrupt" name;
// repeats take numbered suffixes instead of overwriting earlier evidence.
func TestAsideUniqueNames(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	for i, want := range []string{
		path + ".corrupt",
		path + ".corrupt.1",
		path + ".corrupt.2",
	} {
		content := fmt.Sprintf("incident %d", i)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Aside(path)
		if err != nil {
			t.Fatalf("incident %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("incident %d quarantined to %s, want %s", i, got, want)
		}
		if data, err := os.ReadFile(got); err != nil || string(data) != content {
			t.Fatalf("incident %d specimen: %q err=%v", i, data, err)
		}
		if _, err := os.Lstat(path); !os.IsNotExist(err) {
			t.Fatalf("incident %d: live path still present", i)
		}
	}
}

// A vanished source is the one real error.
func TestAsideMissingSource(t *testing.T) {
	if _, err := Aside(filepath.Join(t.TempDir(), "never-existed")); err == nil {
		t.Fatal("quarantining a missing file succeeded")
	}
}

// Past the probe bound the newest evidence still lands somewhere instead of
// failing the caller.
func TestAsideProbeBound(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hot")
	if err := os.WriteFile(path+".corrupt", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= maxProbes; i++ {
		// Only a handful of probes are exercised for real; stat is cheap
		// but creating 10000 files is not, so pre-create just the first
		// few and verify the fallthrough logic on a reduced surface.
		if i > 3 {
			break
		}
		if err := os.WriteFile(fmt.Sprintf("%s.corrupt.%d", path, i), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Aside(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != path+".corrupt.4" {
		t.Fatalf("quarantined to %s, want %s", got, path+".corrupt.4")
	}
}
