// Package quarantine renames corrupt files aside so they are never read as
// live data again but stay available for post-mortem inspection. It is the
// shared quarantine policy of the checkpoint, journal, and verdict-cache
// layers.
//
// Names are unique per incident: the first quarantine of a path lands at
// path + ".corrupt" (the historical name, which operators and tests grep
// for), and subsequent quarantines of the same path take numbered suffixes
// (".corrupt.1", ".corrupt.2", ...) instead of silently overwriting the
// evidence of the previous incident — a repeated-corruption pattern is
// exactly the case where the earlier specimens matter most.
package quarantine

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// maxProbes bounds the search for an unused quarantine name. Past the
// bound — thousands of corruptions of one path — the final candidate is
// used even if it overwrites: preserving the newest evidence beats failing
// the caller, for whom quarantine is always best-effort.
const maxProbes = 10000

// Aside renames path to an unused quarantine name and returns the name
// chosen. The only errors are from the rename itself (e.g. path vanished);
// callers for whom quarantine is best-effort evidence preservation may
// ignore them.
func Aside(path string) (string, error) {
	dst := path + ".corrupt"
	for i := 1; i <= maxProbes; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = fmt.Sprintf("%s.corrupt.%d", path, i)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", err
	}
	return dst, nil
}
