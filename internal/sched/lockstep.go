package sched

import "kset/internal/sim"

// Lockstep models the partially synchronous processes of Theorem 2: process
// execution proceeds in rounds, and in every round each live process takes
// exactly one atomic step (in id order). Communication remains asynchronous:
// the Gate may withhold messages arbitrarily, which is precisely the
// combination "processes synchronous, communication asynchronous" whose
// impossibility border Theorem 2 establishes. A step both receives whatever
// the gate admits and broadcasts, matching the theorem's "receiving and
// sending are part of the same atomic step".
type Lockstep struct {
	Crash  CrashPlan
	Faults FaultPlan
	Gate   Gate
	Oracle Oracle
	Stop   StopWhen

	// MaxRounds bounds the run; 0 means DefaultMaxRounds.
	MaxRounds int

	round   int
	pending []sim.ProcessID
}

// DefaultMaxRounds is the round bound used when MaxRounds is zero.
const DefaultMaxRounds = 10000

// Next implements sim.Scheduler.
func (s *Lockstep) Next(c *sim.Configuration) (sim.StepRequest, bool) {
	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	if req, ok := pendingSilentCrash(c, s.Crash); ok {
		return req, true
	}
	for {
		if len(s.pending) == 0 {
			if s.Stop != nil && s.Stop(c) {
				return sim.StepRequest{}, false
			}
			if s.round >= maxRounds {
				return sim.StepRequest{}, false
			}
			s.pending = liveProcesses(c, s.Crash)
			s.round++
			if len(s.pending) == 0 {
				return sim.StepRequest{}, false
			}
		}
		p := s.pending[0]
		s.pending = s.pending[1:]
		if c.Crashed(p) {
			continue
		}
		req := sim.StepRequest{Proc: p, Deliver: deliverable(c, p, s.Gate)}
		if s.Oracle != nil {
			req.FD = s.Oracle.Query(p, c.Time(), c)
		}
		if s.Crash.ShouldCrash(p, c.Time()) {
			req.Crash = true
			req.OmitTo = s.Crash.omitSet(p)
		}
		s.Faults.apply(&req, c)
		return req, true
	}
}

// Round returns the number of completed rounds.
func (s *Lockstep) Round() int { return s.round }
