package sched

import (
	"testing"

	"kset/internal/algorithms"
	"kset/internal/sim"
)

// These tests exercise Theorem 2's model explicitly: processes are
// synchronous (lock-step rounds — every live process takes exactly one
// atomic broadcast step per round) while communication stays asynchronous
// (gates may withhold messages arbitrarily long). The theorem's point is
// that process synchrony does not help: the partition adversary needs only
// communication asynchrony.

func lockstepInputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

// TestLockstepPartitionForcesDistinctDecisions: under lock-step process
// scheduling with the Lemma 3 partition gate, the f-resilient algorithm's
// groups decide independently — the (dec-D) runs of Theorem 2 exist even
// with fully synchronous processes.
func TestLockstepPartitionForcesDistinctDecisions(t *testing.T) {
	n, f := 6, 4 // l = n-f = 2; groups of size 2
	groups := [][]sim.ProcessID{{1, 2}, {3, 4}, {5, 6}}
	cp := CrashPlan{}
	ls := &Lockstep{
		Crash: cp,
		Gate:  IntraGroupGate(groups),
		Stop:  AllCorrectDecided(cp),
	}
	run, err := sim.Execute(algorithms.MinWait{F: f}, lockstepInputs(n), ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := len(run.DistinctDecisions()); got != 3 {
		t.Fatalf("distinct = %d, want 3 (one per isolated group)", got)
	}
}

// TestLockstepFairRunDecidesQuickly: without a gate, lock-step rounds give
// the most synchronous schedule the model allows; the protocol converges to
// a single minimum.
func TestLockstepFairRunDecides(t *testing.T) {
	cp := CrashPlan{}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp)}
	run, err := sim.Execute(algorithms.MinWait{F: 2}, lockstepInputs(5), ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := len(run.DistinctDecisions()); got != 1 {
		t.Fatalf("distinct = %d, want 1", got)
	}
}

// TestLockstepLateCrashOmission: the "one crash during execution" of
// Theorem 2, with send omissions in the final step, under lock-step
// scheduling.
func TestLockstepLateCrashOmission(t *testing.T) {
	n := 4
	cp := CrashPlan{
		CrashAtTime: map[sim.ProcessID]int{1: 1},
		OmitTo:      map[sim.ProcessID][]sim.ProcessID{1: {3, 4}},
	}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp)}
	run, err := sim.Execute(algorithms.MinWait{F: 1}, lockstepInputs(n), ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !run.Final.Crashed(1) {
		t.Fatal("p1 did not crash")
	}
	// p1's first (and final) step broadcast its value only to {1, 2}: the
	// survivors still decide (they wait for n-f = 3 of 4 values), but may
	// disagree — which is fine for 2-set agreement, f=1 < k=2.
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if got := len(run.DistinctDecisions()); got > 2 {
		t.Fatalf("distinct = %d, want <= f+1 = 2", got)
	}
}

// TestLockstepSilentInitialDead: initial crashes combine with lock-step
// rounds.
func TestLockstepSilentInitialDead(t *testing.T) {
	cp := CrashPlan{InitialDead: []sim.ProcessID{2}}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp)}
	run, err := sim.Execute(algorithms.MinWait{F: 1}, lockstepInputs(3), ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	for _, ev := range run.Events {
		if ev.Proc == 2 && !ev.Silent {
			t.Fatal("initially dead process stepped")
		}
	}
}
