package sched

import (
	"fmt"
	"testing"

	"kset/internal/sim"
)

// countAlg broadcasts once and counts received messages; decides its input
// after hearing from `quorum` processes (itself included).
type countAlg struct{ quorum int }

func (a countAlg) Name() string { return fmt.Sprintf("count(%d)", a.quorum) }

func (a countAlg) Init(n int, id sim.ProcessID, input sim.Value) sim.State {
	return &countState{n: n, id: id, input: input, quorum: a.quorum, heard: map[sim.ProcessID]bool{id: true}}
}

type countState struct {
	n, quorum int
	id        sim.ProcessID
	input     sim.Value
	sent      bool
	heard     map[sim.ProcessID]bool
	decided   bool
}

type ping struct{ From sim.ProcessID }

func (p ping) Key() string { return fmt.Sprintf("ping(%d)", p.From) }

func (s *countState) Step(in sim.Input) (sim.State, []sim.Send) {
	next := &countState{n: s.n, quorum: s.quorum, id: s.id, input: s.input, sent: s.sent, decided: s.decided}
	next.heard = make(map[sim.ProcessID]bool, len(s.heard))
	for p := range s.heard {
		next.heard[p] = true
	}
	var sends []sim.Send
	if !next.sent {
		next.sent = true
		sends = sim.Broadcast(next.n, ping{From: next.id})
	}
	for _, m := range in.Delivered {
		if p, ok := m.Payload.(ping); ok {
			next.heard[p.From] = true
		}
	}
	if len(next.heard) >= next.quorum {
		next.decided = true
	}
	return next, sends
}

func (s *countState) Decided() (sim.Value, bool) {
	if s.decided {
		return s.input, true
	}
	return sim.NoValue, false
}

func (s *countState) Key() string {
	return fmt.Sprintf("cnt{%d,%t,%d,%t}", s.id, s.sent, len(s.heard), s.decided)
}

func TestFairDeliversPromptly(t *testing.T) {
	// Quorum of all 3: needs full message exchange; the fair scheduler must
	// finish it.
	run, err := sim.Execute(countAlg{quorum: 3}, []sim.Value{1, 2, 3}, NewFair(CrashPlan{}), sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
}

func TestFairInitialDeadNeverStep(t *testing.T) {
	cp := CrashPlan{InitialDead: []sim.ProcessID{2}}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, NewFair(cp), sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for _, ev := range run.Events {
		if ev.Proc == 2 && !ev.Silent {
			t.Fatalf("initially dead process stepped at %d", ev.Time)
		}
	}
	if !run.Final.Crashed(2) {
		t.Fatal("initially dead process not marked crashed")
	}
	if run.CrashTime(2) != 0 {
		t.Fatalf("CrashTime = %d, want 0", run.CrashTime(2))
	}
}

func TestFairCrashAtTime(t *testing.T) {
	cp := CrashPlan{
		CrashAtTime: map[sim.ProcessID]int{1: 2},
		OmitTo:      map[sim.ProcessID][]sim.ProcessID{1: {2}},
	}
	allDone := AllCorrectDecided(cp)
	s := &Fair{Crash: cp, Stop: func(c *sim.Configuration) bool {
		// Run until the survivors decided AND the scheduled crash happened.
		return allDone(c) && c.Crashed(1)
	}}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	ct := run.CrashTime(1)
	if ct < 2 {
		t.Fatalf("crash time %d before schedule", ct)
	}
	for _, ev := range run.Events {
		if ev.Proc == 1 && ev.Time > ct {
			t.Fatal("process stepped after crash")
		}
	}
}

func TestFairOnlyRestrictsStepping(t *testing.T) {
	s := &Fair{Only: []sim.ProcessID{1, 3}, Stop: SetDecided([]sim.ProcessID{1, 3})}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for _, ev := range run.Events {
		if ev.Proc == 2 {
			t.Fatal("process outside Only stepped")
		}
	}
	// p2 is alive, just never scheduled.
	if run.Final.Crashed(2) {
		t.Fatal("Only marked p2 crashed")
	}
}

func TestSoloSchedulerIsolation(t *testing.T) {
	// Solo run of {1,2}: quorum 2 reachable inside the group.
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3, 4}, Solo(4, []sim.ProcessID{1, 2}, nil), sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !run.Final.AllDecided([]sim.ProcessID{1, 2}) {
		t.Fatal("solo group undecided")
	}
	for _, ev := range run.Events {
		if ev.Silent {
			continue
		}
		for _, m := range ev.Delivered {
			if m.From != 1 && m.From != 2 {
				t.Fatalf("solo group received outside message from %d", m.From)
			}
		}
	}
}

func TestIntraGroupGate(t *testing.T) {
	g := IntraGroupGate([][]sim.ProcessID{{1, 2}, {3}})
	cfg := sim.NewConfiguration(countAlg{quorum: 1}, []sim.Value{1, 2, 3})
	if !g(sim.Message{From: 1, To: 2}, cfg) {
		t.Error("intra-group message blocked")
	}
	if g(sim.Message{From: 1, To: 3}, cfg) {
		t.Error("cross-group message passed")
	}
	if g(sim.Message{From: 4, To: 1}, cfg) {
		t.Error("ungrouped sender passed")
	}
}

func TestPartitionUntilDecidedGate(t *testing.T) {
	groups := [][]sim.ProcessID{{1}, {2}}
	gate := PartitionUntilDecidedGate(groups, []sim.ProcessID{1})
	cfg := sim.NewConfiguration(countAlg{quorum: 1}, []sim.Value{1, 2})
	if gate(sim.Message{From: 1, To: 2}, cfg) {
		t.Error("cross message passed before decisions")
	}
	// Let p1 decide (quorum 1: decides on first step).
	if _, err := cfg.Apply(sim.StepRequest{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	if !gate(sim.Message{From: 1, To: 2}, cfg) {
		t.Error("cross message blocked after await set decided")
	}
}

func TestSilenceGate(t *testing.T) {
	gate := SilenceGate([]sim.ProcessID{1}, []sim.ProcessID{2})
	if gate(sim.Message{From: 1, To: 2}, nil) {
		t.Error("silenced message passed")
	}
	if !gate(sim.Message{From: 2, To: 1}, nil) {
		t.Error("reverse direction blocked")
	}
	if !gate(sim.Message{From: 1, To: 3}, nil) {
		t.Error("other receiver blocked")
	}
}

func TestAndGates(t *testing.T) {
	always := Gate(func(sim.Message, *sim.Configuration) bool { return true })
	never := Gate(func(sim.Message, *sim.Configuration) bool { return false })
	if AndGates(always, never)(sim.Message{}, nil) {
		t.Error("AND with never passed")
	}
	if !AndGates(always, nil, always)(sim.Message{}, nil) {
		t.Error("AND with nil gates blocked")
	}
}

func TestDelayUntilTimeGate(t *testing.T) {
	gate := DelayUntilTimeGate(2)
	cfg := sim.NewConfiguration(countAlg{quorum: 3}, []sim.Value{1, 2, 3})
	if gate(sim.Message{}, cfg) {
		t.Error("message passed before time")
	}
	_, _ = cfg.Apply(sim.StepRequest{Proc: 1})
	_, _ = cfg.Apply(sim.StepRequest{Proc: 2})
	if !gate(sim.Message{}, cfg) {
		t.Error("message blocked after time")
	}
}

func TestLockstepRounds(t *testing.T) {
	cp := CrashPlan{}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp)}
	run, err := sim.Execute(countAlg{quorum: 3}, []sim.Value{1, 2, 3}, ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	// Within each round, every live process steps exactly once: the first
	// three events must be processes 1, 2, 3 in order.
	for i, want := range []sim.ProcessID{1, 2, 3} {
		if run.Events[i].Proc != want {
			t.Fatalf("event %d proc = %d, want %d", i, run.Events[i].Proc, want)
		}
	}
}

func TestLockstepWithCrash(t *testing.T) {
	cp := CrashPlan{CrashAtTime: map[sim.ProcessID]int{2: 3}}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp)}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !run.Final.Crashed(2) {
		t.Fatal("p2 did not crash")
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
}

func TestLockstepMaxRounds(t *testing.T) {
	// Quorum 4 of 3 processes: never decides; MaxRounds must stop the run.
	cp := CrashPlan{}
	ls := &Lockstep{Crash: cp, Stop: AllCorrectDecided(cp), MaxRounds: 5}
	run, err := sim.Execute(countAlg{quorum: 4}, []sim.Value{1, 2, 3}, ls, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Events) != 15 {
		t.Fatalf("events = %d, want 5 rounds x 3 processes", len(run.Events))
	}
	if ls.Round() != 5 {
		t.Fatalf("rounds = %d, want 5", ls.Round())
	}
}

func TestCrashPlanHelpers(t *testing.T) {
	cp := CrashPlan{
		InitialDead: []sim.ProcessID{1},
		CrashAtTime: map[sim.ProcessID]int{2: 5},
	}
	if !cp.IsInitialDead(1) || cp.IsInitialDead(2) {
		t.Error("IsInitialDead wrong")
	}
	if cp.ShouldCrash(2, 4) || !cp.ShouldCrash(2, 5) {
		t.Error("ShouldCrash wrong")
	}
	if got := cp.FaultBudget(); got != 2 {
		t.Errorf("FaultBudget = %d, want 2", got)
	}
}

func TestDrainAfterStop(t *testing.T) {
	cp := CrashPlan{}
	s := &Fair{
		Crash:          cp,
		Stop:           AllCorrectDecided(cp),
		DrainAfterStop: true,
	}
	run, err := sim.Execute(countAlg{quorum: 1}, []sim.Value{1, 2}, s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// After draining, no messages remain anywhere.
	for _, p := range run.Final.Processes() {
		if run.Final.BufferSize(p) != 0 {
			t.Fatalf("pending messages for %d after drain", p)
		}
	}
}
