package sched

import "kset/internal/sim"

// IntraGroupGate returns a gate that only lets a message through when its
// sender and receiver belong to the same group. Messages between groups (or
// touching a process in no group) are withheld for the whole run. Use it
// together with a stop predicate that ends the run once the interesting
// processes decided; the withheld messages then count as "delivered after
// the prefix", which MASYNC admits.
func IntraGroupGate(groups [][]sim.ProcessID) Gate {
	group := groupIndex(groups)
	return func(m sim.Message, _ *sim.Configuration) bool {
		gf, okf := group[m.From]
		gt, okt := group[m.To]
		return okf && okt && gf == gt
	}
}

// PartitionUntilDecidedGate is the paper's central adversary (Theorem 2
// condition (B), Lemmas 11 and 12): all communication between the groups is
// delayed until every process in `await` has decided or crashed; afterwards
// everything flows.
func PartitionUntilDecidedGate(groups [][]sim.ProcessID, await []sim.ProcessID) Gate {
	group := groupIndex(groups)
	watch := append([]sim.ProcessID(nil), await...)
	return func(m sim.Message, c *sim.Configuration) bool {
		gf, okf := group[m.From]
		gt, okt := group[m.To]
		if okf && okt && gf == gt {
			return true
		}
		return c.AllDecided(watch)
	}
}

// SilenceGate withholds every message whose sender is in froms and receiver
// is in tos, forever. It realizes (dec-D-bar): processes in D-bar receive no
// messages from D until after every process in D-bar has decided — combine
// with a stop predicate on D-bar's decisions.
func SilenceGate(froms, tos []sim.ProcessID) Gate {
	fromSet := idSet(froms)
	toSet := idSet(tos)
	return func(m sim.Message, _ *sim.Configuration) bool {
		return !(fromSet[m.From] && toSet[m.To])
	}
}

// AndGates returns a gate that passes a message only if every given gate
// passes it. Nil gates are ignored.
func AndGates(gates ...Gate) Gate {
	kept := make([]Gate, 0, len(gates))
	for _, g := range gates {
		if g != nil {
			kept = append(kept, g)
		}
	}
	return func(m sim.Message, c *sim.Configuration) bool {
		for _, g := range kept {
			if !g(m, c) {
				return false
			}
		}
		return true
	}
}

// DelayUntilTimeGate withholds every message until the configuration's
// global time reaches t.
func DelayUntilTimeGate(t int) Gate {
	return func(_ sim.Message, c *sim.Configuration) bool {
		return c.Time() >= t
	}
}

func groupIndex(groups [][]sim.ProcessID) map[sim.ProcessID]int {
	group := make(map[sim.ProcessID]int)
	for gi, g := range groups {
		for _, p := range g {
			group[p] = gi
		}
	}
	return group
}

func idSet(ps []sim.ProcessID) map[sim.ProcessID]bool {
	set := make(map[sim.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return set
}
