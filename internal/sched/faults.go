package sched

import (
	"fmt"

	"kset/internal/sim"
)

// PlanError is the typed error returned by plan validation: which plan type,
// which field, and why it is invalid. Callers that construct plans from user
// input (flags, experiment parameters) can test for it with errors.As.
type PlanError struct {
	Plan   string // "CrashPlan" or "FaultPlan"
	Field  string // the offending field
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("sched: invalid %s.%s: %s", e.Plan, e.Field, e.Reason)
}

// FaultPlan schedules non-crash fault events the way CrashPlan schedules
// crashes: From maps a process to the global time at or after which every
// step it takes is a fault step of the plan's Model (all sends omitted,
// all deliveries dropped, or all sends corrupted), and Budget caps how many
// fault events each planned process may be charged (0 = unbounded). The
// zero FaultPlan — Model FaultCrash — schedules nothing.
type FaultPlan struct {
	Model  sim.FaultModel
	From   map[sim.ProcessID]int
	Budget int
}

// Active reports whether p's step at global time t is a fault step under the
// plan given the budget already spent in c.
func (fp FaultPlan) Active(c *sim.Configuration, p sim.ProcessID, t int) bool {
	if fp.Model == sim.FaultCrash {
		return false
	}
	at, ok := fp.From[p]
	if !ok || t < at {
		return false
	}
	return fp.Budget <= 0 || c.FaultsUsed(p) < fp.Budget
}

// apply marks req as a fault step of the plan's model when the plan is
// active for its process. Crash directives win: the simulator rejects steps
// that combine a fault action with a crash, and a process the crash plan
// fails now has no later steps for the fault plan to claim.
func (fp FaultPlan) apply(req *sim.StepRequest, c *sim.Configuration) {
	if req.Crash || req.SilentCrash || !fp.Active(c, req.Proc, c.Time()) {
		return
	}
	switch fp.Model {
	case sim.FaultSendOmission:
		req.OmitSends = true
	case sim.FaultReceiveOmission:
		req.DropDeliver = true
	case sim.FaultByzantine:
		req.Corrupt = true
	}
}

// Validate checks the plan against a system of n processes with fault bound
// f: process ids must be in 1..n, activation times non-negative, the Budget
// non-negative, the model known, and — when f >= 0 — the number of planned
// faulty processes must not exceed f. Pass f < 0 to skip the bound check.
func (fp FaultPlan) Validate(n, f int) error {
	if _, err := sim.ParseFaultModel(fp.Model.String()); err != nil {
		return &PlanError{Plan: "FaultPlan", Field: "Model", Reason: fmt.Sprintf("unknown model %d", int(fp.Model))}
	}
	for p, at := range fp.From {
		if p < 1 || int(p) > n {
			return &PlanError{Plan: "FaultPlan", Field: "From", Reason: fmt.Sprintf("process %d out of range 1..%d", p, n)}
		}
		if at < 0 {
			return &PlanError{Plan: "FaultPlan", Field: "From", Reason: fmt.Sprintf("process %d activates at negative time %d", p, at)}
		}
	}
	if fp.Budget < 0 {
		return &PlanError{Plan: "FaultPlan", Field: "Budget", Reason: fmt.Sprintf("negative budget %d", fp.Budget)}
	}
	if fp.Model != sim.FaultCrash && f >= 0 && len(fp.From) > f {
		return &PlanError{Plan: "FaultPlan", Field: "From", Reason: fmt.Sprintf("%d faulty processes exceed the fault bound f=%d", len(fp.From), f)}
	}
	return nil
}

// Validate checks the crash plan against a system of n processes with fault
// bound f: every process id (initially dead, crash-at-time, omission sender
// and receiver) must be in 1..n, InitialDead must not repeat a process or
// overlap CrashAtTime, omission lists may only be attached to processes the
// plan crashes and must not repeat receivers, and — when f >= 0 — the
// plan's FaultBudget must not exceed f. Pass f < 0 to skip the bound check.
func (cp CrashPlan) Validate(n, f int) error {
	seen := make(map[sim.ProcessID]bool, len(cp.InitialDead))
	for _, p := range cp.InitialDead {
		if p < 1 || int(p) > n {
			return &PlanError{Plan: "CrashPlan", Field: "InitialDead", Reason: fmt.Sprintf("process %d out of range 1..%d", p, n)}
		}
		if seen[p] {
			return &PlanError{Plan: "CrashPlan", Field: "InitialDead", Reason: fmt.Sprintf("process %d listed twice", p)}
		}
		seen[p] = true
	}
	for p, at := range cp.CrashAtTime {
		if p < 1 || int(p) > n {
			return &PlanError{Plan: "CrashPlan", Field: "CrashAtTime", Reason: fmt.Sprintf("process %d out of range 1..%d", p, n)}
		}
		if at < 0 {
			return &PlanError{Plan: "CrashPlan", Field: "CrashAtTime", Reason: fmt.Sprintf("process %d crashes at negative time %d", p, at)}
		}
		if seen[p] {
			return &PlanError{Plan: "CrashPlan", Field: "CrashAtTime", Reason: fmt.Sprintf("process %d is already initially dead", p)}
		}
	}
	for p, list := range cp.OmitTo {
		if _, crashes := cp.CrashAtTime[p]; !crashes {
			return &PlanError{Plan: "CrashPlan", Field: "OmitTo", Reason: fmt.Sprintf("process %d has omissions but no scheduled crash", p)}
		}
		rcv := make(map[sim.ProcessID]bool, len(list))
		for _, q := range list {
			if q < 1 || int(q) > n {
				return &PlanError{Plan: "CrashPlan", Field: "OmitTo", Reason: fmt.Sprintf("receiver %d out of range 1..%d", q, n)}
			}
			if rcv[q] {
				return &PlanError{Plan: "CrashPlan", Field: "OmitTo", Reason: fmt.Sprintf("receiver %d listed twice for process %d", q, p)}
			}
			rcv[q] = true
		}
	}
	if f >= 0 {
		if b := cp.FaultBudget(); b > f {
			return &PlanError{Plan: "CrashPlan", Field: "FaultBudget", Reason: fmt.Sprintf("%d crashed processes exceed the fault bound f=%d", b, f)}
		}
	}
	return nil
}
